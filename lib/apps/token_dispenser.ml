module Device = Renaming_device.Counting_device
module Sample = Renaming_rng.Sample

type t = {
  capacity : int;
  tau : int;
  devices : Device.t array;
  (* capacity of the last device may be smaller than tau *)
  token_owner : int array;  (* token id -> pid, -1 when ungranted; the
                               id space is [device_count · 2 · tau], so a
                               flat array doubles as a deterministic,
                               iteration-order-stable ledger *)
  mutable ledger : int;  (* granted tokens according to the ledger *)
}

let create ?rule ?(tau = 16) ~capacity () =
  if capacity < 1 then invalid_arg "Token_dispenser.create: capacity must be >= 1";
  if tau < 1 || tau > 31 then invalid_arg "Token_dispenser.create: tau must be in [1, 31]";
  let device_count = (capacity + tau - 1) / tau in
  let devices =
    Array.init device_count (fun d ->
        let this_tau = min tau (capacity - (d * tau)) in
        Device.create ?rule ~width:(2 * this_tau) ~threshold:this_tau ())
  in
  { capacity; tau; devices; token_owner = Array.make (device_count * 2 * tau) (-1); ledger = 0 }

let capacity t = t.capacity
let device_count t = Array.length t.devices

let granted t =
  Array.fold_left (fun acc d -> acc + Device.accepted_count d) 0 t.devices

let remaining t = t.capacity - granted t

let is_exhausted t = remaining t = 0

type grant = { token : int; probes : int }

(* One probe: submit a single-request cycle for a random free-looking
   bit of device [d]; a Confirmed outcome is a token. *)
let probe_device t ~pid d =
  let device = t.devices.(d) in
  if Device.is_full device then None
  else begin
    let width = Device.width device in
    (* Deterministically target the first unset bit: with one request
       per cycle there is no race to lose, only the threshold check. *)
    let in_reg = Device.in_reg device in
    let rec first_free bit = if bit >= width then None else
        if not (Renaming_bitops.Word.test_bit in_reg bit) then Some bit
        else first_free (bit + 1)
    in
    match first_free 0 with
    | None -> None
    | Some bit ->
      let outcomes = Device.tick device ~requests:[| (pid, bit) |] in
      (match outcomes.(0) with
      | Device.Confirmed ->
        (* A bit is won at most once, so (device, bit) is a unique
           token id; ids are sparse but stable. *)
        Some ((d * 2 * t.tau) + bit)
      | Device.Lost | Device.Revoked -> None)
  end

let try_acquire t ~pid ~rng =
  let n_dev = Array.length t.devices in
  let probes = ref 0 in
  (* Random probing phase: up to 2·devices random attempts. *)
  let rec random_phase attempts =
    if attempts = 0 then None
    else begin
      incr probes;
      match probe_device t ~pid (Sample.uniform_int rng n_dev) with
      | Some token -> Some token
      | None -> random_phase (attempts - 1)
    end
  in
  let sweep_phase () =
    let rec go d =
      if d >= n_dev then None
      else begin
        incr probes;
        match probe_device t ~pid d with Some token -> Some token | None -> go (d + 1)
      end
    in
    go 0
  in
  let token =
    match random_phase (2 * n_dev) with Some tok -> Some tok | None -> sweep_phase ()
  in
  match token with
  | Some token ->
    if t.token_owner.(token) >= 0 then
      invalid_arg "Token_dispenser: duplicate token grant (bug)"
    else begin
      t.token_owner.(token) <- pid;
      t.ledger <- t.ledger + 1;
      Some { token; probes = !probes }
    end
  | None -> None

let check_invariants t =
  if granted t > t.capacity then Error "granted more tokens than capacity"
  else if t.ledger <> granted t then Error "token ledger disagrees with device state"
  else begin
    let bad = ref None in
    Array.iter
      (fun d -> match Device.check_invariants d with Ok () -> () | Error e -> bad := Some e)
      t.devices;
    match !bad with Some e -> Error e | None -> Ok ()
  end
