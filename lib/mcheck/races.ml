module Op = Renaming_sched.Op
module Footprint = Renaming_analysis.Footprint

(* The dependence relation source-DPOR reverses races over: exactly the
   negation of the commutation-audited independence table.  Keeping the
   definition here (and nowhere else) lets `renaming analyze` audit the
   checker's actual race relation against the executable commutation
   oracle rather than a copy of it. *)
let dependent a b = not (Footprint.independent a b)

(* One executed scheduling decision.  [ev_op = None] marks a scheduling
   barrier — crash, recovery or transient-fault injection — which is
   conservatively dependent on everything: races are never detected
   across an injection, and injection subtrees are enumerated
   exhaustively by the explorer instead. *)
type event = { ev_pid : int; ev_op : Op.t option }

let step ~pid op = { ev_pid = pid; ev_op = Some op }
let barrier ~pid = { ev_pid = pid; ev_op = None }

type race = { r_first : int; r_second : int }

let direct ~dependent a b =
  a.ev_pid = b.ev_pid
  ||
  match (a.ev_op, b.ev_op) with
  | None, _ | _, None -> true
  | Some oa, Some ob -> dependent oa ob

(* Vector clocks over pids: [clocks.(j).(p)] is the largest index of a
   pid-[p] event that happens-before event [j] (inclusive of [j]
   itself), or [-1].  [i] happens-before [j] iff
   [clocks.(j).(ev_pid i) >= i]: joining the clock of *every* direct
   predecessor gives the full transitive closure because predecessors
   are processed in execution order. *)
let clocks ?(dependent = dependent) ~pids (events : event array) =
  let len = Array.length events in
  let clocks = Array.make len [||] in
  for j = 0 to len - 1 do
    let c = Array.make pids (-1) in
    for i = 0 to j - 1 do
      if direct ~dependent events.(i) events.(j) then
        Array.iteri (fun p v -> if v > c.(p) then c.(p) <- v) clocks.(i)
    done;
    c.(events.(j).ev_pid) <- j;
    clocks.(j) <- c
  done;
  clocks

let happens_before ~clocks (events : event array) i j =
  i = j || (i < j && clocks.(j).(events.(i).ev_pid) >= i)

(* A *reversible* race (i, j): two dependent steps of different pids
   with no intervening event on a happens-before path between them —
   executing [j]'s reordering witness from the state before [i] puts
   the two in the opposite order without disturbing anything either
   depends on. *)
let races ?(dependent = dependent) ?(from = 0) ~pids (events : event array) =
  let len = Array.length events in
  let clocks = clocks ~dependent ~pids events in
  let hb = happens_before ~clocks events in
  let out = ref [] in
  for j = len - 1 downto max 1 from do
    match events.(j).ev_op with
    | None -> ()
    | Some opj ->
      (* Per other pid, only the *last* dependent step before [j] can be
         a reversible race: any earlier one reaches [j] through it. *)
      let seen = Array.make pids false in
      for i = j - 1 downto 0 do
        let e = events.(i) in
        if e.ev_pid <> events.(j).ev_pid && not seen.(e.ev_pid) then
          match e.ev_op with
          | None -> seen.(e.ev_pid) <- true (* a barrier blocks everything behind it *)
          | Some opi ->
            if dependent opi opj then begin
              seen.(e.ev_pid) <- true;
              let blocked = ref false in
              for k = i + 1 to j - 1 do
                if (not !blocked) && hb i k && hb k j then blocked := true
              done;
              if not !blocked then out := { r_first = i; r_second = j } :: !out
            end
      done
  done;
  (clocks, List.rev !out)

(* The reordering witness of race (i, j): the events strictly between
   them that do not happen-after [i], then [j] itself — an execution of
   these from the state before [i] reaches an equivalent state with the
   race reversed ([j]'s operation executes before [i]'s).  Returned as
   event indices; program order of every pid is preserved by
   construction. *)
let witness ~clocks (events : event array) { r_first = i; r_second = j } =
  let hb = happens_before ~clocks events in
  let out = ref [ j ] in
  for k = j - 1 downto i + 1 do
    if not (hb i k) then out := k :: !out
  done;
  !out
