module Op = Renaming_sched.Op

(* Ordered, append-only trees of *wakeup sequences*: each branch is a
   step event (pid × operation) with a subtree of continuations.  The
   order of branches is insertion order and is never rearranged — the
   explorer consumes branches left to right, so insertion order is
   exploration order and the no-revisit guarantee rests on the
   insertion rules below. *)

type t = { mutable bs : branch list }
and branch = { b_pid : int; b_op : Op.t; b_sub : t }

type status = Covered | Inserted

let create () = { bs = [] }
let is_empty t = t.bs = []
let branches t = t.bs

let pop t =
  match t.bs with
  | [] -> None
  | b :: rest ->
    t.bs <- rest;
    Some b

(* The *weak initials* of a sequence [v]: events that could equivalently
   execute first — the first event of a pid, independent with everything
   before it in [v]. *)
let weak_initials ?(dependent = Races.dependent) v =
  let rec go prefix acc = function
    | [] -> List.rev acc
    | ((p, o) as e) :: rest ->
      let first = not (List.exists (fun (q, _) -> q = p) prefix) in
      let indep = List.for_all (fun (_, o') -> not (dependent o' o)) prefix in
      go (e :: prefix) (if first && indep then e :: acc else acc) rest
  in
  go [] [] v

let weak_initial_mem ?dependent v ~pid ~op =
  List.exists (fun (p, o) -> p = pid && o = op) (weak_initials ?dependent v)

let rec remove_first pid = function
  | [] -> []
  | (p, _) :: rest when p = pid -> rest
  | e :: rest -> e :: remove_first pid rest

let rec chain = function
  | [] -> invalid_arg "Wakeup.chain: empty sequence"
  | [ (p, o) ] -> { b_pid = p; b_op = o; b_sub = create () }
  | (p, o) :: rest -> { b_pid = p; b_op = o; b_sub = { bs = [ chain rest ] } }

(* Insert a wakeup sequence.  Recurse into the leftmost branch whose
   key is a weak initial of the remainder (executing that branch first
   reaches an equivalent state), dropping the matched event; an
   exhausted sequence or an existing leaf means some already-scheduled
   sequence reaches an equivalent state first — covered, nothing to do.
   No match anywhere: append the whole remainder as a new rightmost
   branch, preserving the exploration order of existing branches. *)
let rec insert ?dependent t v =
  match v with
  | [] -> Covered
  | _ -> (
    let wi = weak_initials ?dependent v in
    match
      List.find_opt (fun b -> List.exists (fun (p, o) -> p = b.b_pid && o = b.b_op) wi) t.bs
    with
    | Some b ->
      if is_empty b.b_sub then Covered else insert ?dependent b.b_sub (remove_first b.b_pid v)
    | None ->
      t.bs <- t.bs @ [ chain v ];
      Inserted)

let rec size t = List.fold_left (fun acc b -> acc + 1 + size b.b_sub) 0 t.bs

let rec pp fmt t =
  Format.fprintf fmt "[";
  List.iteri
    (fun i b ->
      if i > 0 then Format.fprintf fmt "; ";
      Format.fprintf fmt "%d:%a%a" b.b_pid Op.pp b.b_op
        (fun fmt sub -> if not (is_empty sub) then pp fmt sub)
        b.b_sub)
    t.bs;
  Format.fprintf fmt "]"
