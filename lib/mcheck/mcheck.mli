(** Bounded model checking of renaming instances: systematic DFS over
    every adversary decision — who steps next, transient-fault
    injections, crashes, recoveries — with the online safety
    {!Renaming_faults.Monitor} checking every interleaving.

    The exploration is *stateless* in the CHESS style: a schedule is a
    {!Renaming_sched.Directed.choice} prefix, re-executed from scratch
    on a fresh deterministic instance; alternatives are enumerated at
    the decision points the run recorded past its own prefix, so each
    complete execution is visited exactly once.  Two reductions keep
    small instances tractable:

    - {b preemption bounding}: switching away from a still-runnable
      process costs one unit of [b_preemptions]; switches forced by a
      finish or crash are free, as is the non-preemptive default tail.
      Most concurrency bugs need very few preemptions (CHESS), and the
      bound turns an exponential tree into a polynomial one.
    - {b sleep sets}: after exploring [Step q] at a decision point, [q]
      is put to sleep in the sibling subtrees until a *dependent*
      operation runs, pruning interleavings that merely commute
      independent steps.  Independence is judged statically from the
      {!Renaming_analysis.Footprint} table (region, index, read/write);
      τ-register operations are position-sensitive (device cadence) and
      never commute.  The table is machine-checked against the concrete
      semantics of [Memory.apply] by [renaming analyze]
      ({!Renaming_analysis.Commute}).  Crash, recover and fault
      decisions conservatively reset the sleep set.

    Each violation is recorded and (by default) handed to
    {!Renaming_faults.Shrink} for 1-minimal counterexample reduction. *)

type target = {
  t_name : string;
  t_build : unit -> Renaming_sched.Executor.instance;
      (** fresh deterministic instance per call (exploration re-executes
          constantly) *)
  t_check_ownership : bool;  (** see {!Renaming_faults.Monitor.create} *)
}

type bounds = {
  b_preemptions : int;  (** preemption budget per schedule *)
  b_crashes : int;  (** crash injections per schedule *)
  b_recoveries : int;  (** recovery injections per schedule *)
  b_faults : int;  (** transient-fault injections per schedule *)
  b_max_ticks : int;  (** livelock guard per execution *)
  b_max_schedules : int;  (** hard cap on executions; sets [s_capped] *)
  b_sleep : bool;  (** enable sleep-set pruning *)
}

val default_bounds : bounds
(** [{ b_preemptions = 2; b_crashes = 0; b_recoveries = 0; b_faults = 0;
      b_max_ticks = 50_000; b_max_schedules = 200_000; b_sleep = true }] *)

type case = {
  v_kind : string;  (** {!Renaming_faults.Monitor.violation} kind (or ["livelock"] / ["exception:..."]) *)
  v_message : string;
  v_prefix : Renaming_sched.Directed.choice list;
      (** the decisions of the failing execution, up to the failure *)
  v_shrunk : Renaming_faults.Shrink.result option;
      (** 1-minimal reduction (present unless shrinking was disabled or
          the failure stopped reproducing) *)
}

type stats = {
  s_target : string;
  s_schedules : int;  (** complete executions checked *)
  s_points : int;  (** decision points expanded *)
  s_slept : int;  (** alternatives pruned by sleep sets *)
  s_livelocks : int;  (** executions cut off by [b_max_ticks] *)
  s_violations : int;  (** total failing executions *)
  s_capped : bool;  (** exploration stopped at [b_max_schedules] *)
  s_cases : case list;  (** first few violations, in discovery order *)
}

val check :
  ?bounds:bounds ->
  ?shrink:bool ->
  ?max_cases:int ->
  ?obs:Renaming_obs.Obs.t ->
  target ->
  stats
(** Exhaustively explores [target] within [bounds].  [shrink] (default
    [true]): minimise each recorded violation.  [max_cases] (default
    [8]) caps the number of *recorded* cases ([s_violations] still
    counts all of them).  With [obs], the final stats are accumulated
    onto the [mcheck/targets], [mcheck/schedules], [mcheck/points],
    [mcheck/slept], [mcheck/violations] and [mcheck/livelocks]
    counters.  The exploration itself never sees [obs], so the visited
    schedule space is identical either way. *)

val pp_stats : Format.formatter -> stats -> unit

val to_json : stats list -> string
(** The [results/mcheck.json] payload: per-target schedule counts and
    violations, plus aggregate totals. *)
