(** Bounded model checking of renaming instances: systematic
    exploration of every adversary decision — who steps next,
    transient-fault injections, crashes, recoveries — with the online
    safety {!Renaming_faults.Monitor} checking every interleaving.

    The exploration is *stateless* in the CHESS style: a schedule is a
    {!Renaming_sched.Directed.choice} prefix, re-executed from scratch
    on a fresh deterministic instance.  Two engines share that
    substrate:

    - {b [`Dpor]} (default): source-DPOR with wakeup trees.  After each
      completed execution, *reversible races* — pairs of dependent
      steps of different processes with no happens-before path between
      them, computed with vector clocks over the
      {!Renaming_analysis.Footprint} dependence relation
      ({!Races.dependent}) — each yield a reordering witness, inserted
      into the wakeup tree ({!Wakeup}) of the race's first decision
      point unless a sleep-set entry, an existing branch or the
      preemption budget already covers it.  Alternatives at a point are
      exactly those committed branches (plus exhaustively enumerated
      injections), so redundant interleavings of independent steps are
      never scheduled at all and no explored schedule is revisited.
      Injections are treated as dependence barriers: races are never
      detected across them.  The default tail runs under the
      [b_yield_rotate] fairness bound so retry/backoff loops in the
      handoff services terminate instead of burning the livelock guard.

    - {b [`Legacy_dfs]}: the previous sleep-set DFS, kept byte-identical
      as an escape hatch ([renaming mcheck --legacy-dfs]) for
      differential runs; it enumerates every enabled alternative at
      every point, pruned by sleep sets and preemption bounding.

    Both engines bound preemptions with the same cost model (switching
    away from a still-runnable process costs one unit of
    [b_preemptions]), so they explore the same bounded schedule
    universe.  Independence is judged statically from the audited
    {!Renaming_analysis.Footprint} table, machine-checked against the
    concrete semantics of [Memory.apply] by [renaming analyze]
    ({!Renaming_analysis.Commute}), including agreement with
    {!Races.dependent}.  Under a *finite* preemption bound, both engines
    are heuristic: a race whose reversal needs more preemptions than
    remain is skipped (counted in [s_budget_skipped]), mirroring the
    legacy engine's budget gating.  With generous bounds both are
    exhaustive up to Mazurkiewicz-trace equivalence, which is sound for
    the monitor's trace-invariant verdicts.

    Each violation is recorded with its condensed rendering
    ({!Renaming_sched.Directed.condensed}) and (by default) handed to
    {!Renaming_faults.Shrink} for 1-minimal counterexample reduction. *)

type target = {
  t_name : string;
  t_build : unit -> Renaming_sched.Executor.instance;
      (** fresh deterministic instance per call (exploration re-executes
          constantly) *)
  t_check_ownership : bool;  (** see {!Renaming_faults.Monitor.create} *)
}

type engine = [ `Dpor | `Legacy_dfs ]

val engine_name : engine -> string
(** ["dpor"] / ["legacy-dfs"] — the [s_engine] stats field. *)

type bounds = {
  b_preemptions : int;  (** preemption budget per schedule *)
  b_crashes : int;  (** crash injections per schedule *)
  b_recoveries : int;  (** recovery injections per schedule *)
  b_faults : int;  (** transient-fault injections per schedule *)
  b_max_ticks : int;  (** livelock guard per execution *)
  b_max_schedules : int;  (** hard cap on executions; sets [s_capped] *)
  b_sleep : bool;  (** sleep-set pruning — legacy engine only (DPOR
                       requires sleep sets for its no-revisit guarantee
                       and always keeps them) *)
  b_yield_rotate : int option;
      (** fairness bound of the default tail — DPOR engine only (the
          legacy engine's tail must stay byte-identical); see
          {!Renaming_sched.Directed.run} *)
}

val default_bounds : bounds
(** [{ b_preemptions = 2; b_crashes = 0; b_recoveries = 0; b_faults = 0;
      b_max_ticks = 50_000; b_max_schedules = 200_000; b_sleep = true;
      b_yield_rotate = Some 32 }] *)

type case = {
  v_kind : string;  (** {!Renaming_faults.Monitor.violation} kind (or ["livelock"] / ["exception:..."]) *)
  v_message : string;
  v_prefix : Renaming_sched.Directed.choice list;
      (** the decisions of the failing execution, up to the failure *)
  v_condensed : string;
      (** dejafu-style condensed rendering of [v_prefix], e.g.
          [S0x2--P1--S2] *)
  v_shrunk : Renaming_faults.Shrink.result option;
      (** 1-minimal reduction (present unless shrinking was disabled or
          the failure stopped reproducing) *)
}

type stats = {
  s_target : string;
  s_engine : string;  (** {!engine_name} of the engine that ran *)
  s_schedules : int;  (** distinct complete executions checked *)
  s_points : int;  (** decision points expanded *)
  s_races : int;  (** reversible races detected (DPOR) *)
  s_wakeups : int;  (** reordering witnesses committed to wakeup trees (DPOR) *)
  s_pruned : int;
      (** alternatives skipped as redundant: sleep-set hits (both
          engines) and witnesses already covered by a pending branch
          (DPOR) *)
  s_budget_skipped : int;
      (** witnesses or runs discarded by the preemption budget or an
          infeasible wakeup descent (DPOR) *)
  s_livelocks : int;  (** executions cut off by [b_max_ticks] *)
  s_violations : int;  (** total failing executions *)
  s_capped : bool;  (** exploration stopped at [b_max_schedules] *)
  s_baseline : int option;
      (** sleep-set baseline schedule count for this target, when known
          (from the roster) — the denominator of the reduction ratio *)
  s_cases : case list;  (** first few violations, in discovery order *)
}

val reduction : stats -> float option
(** [s_schedules / s_baseline], when a positive baseline is known. *)

val check :
  ?engine:engine ->
  ?bounds:bounds ->
  ?shrink:bool ->
  ?max_cases:int ->
  ?baseline:int ->
  ?on_schedule:(Renaming_sched.Directed.choice array -> unit) ->
  ?obs:Renaming_obs.Obs.t ->
  ?refine:(unit -> Renaming_sched.Executor.event -> unit) ->
  target ->
  stats
(** Exhaustively explores [target] within [bounds] using [engine]
    (default [`Dpor]).  [shrink] (default [true]): minimise each
    recorded violation.  [max_cases] (default [8]) caps the number of
    *recorded* cases ([s_violations] still counts all of them).
    [baseline] is stored in [s_baseline] for reduction-ratio reporting.
    [on_schedule] is invoked with the full decision sequence of every
    counted execution — a debugging/testing hook (e.g. asserting that no
    schedule is ever revisited).  With [obs], the final stats are
    accumulated onto the [mcheck/targets], [mcheck/schedules],
    [mcheck/points], [mcheck/races], [mcheck/wakeups], [mcheck/pruned],
    [mcheck/violations] and [mcheck/livelocks] counters.  The
    exploration itself never sees [obs], so the visited schedule space
    is identical either way.

    [refine] builds one extra event hook per executed schedule (fresh
    refinement-checker state each time), composed after the safety
    monitor's hook at both engines and through shrinking replays; a
    [Monitor.Violation] it raises registers like any other kind
    (["refine:..."]).  On a violation-free target the visited schedule
    space is identical with or without it (a violation aborts its
    execution early, exactly as a monitor violation does). *)

val pp_stats : Format.formatter -> stats -> unit

val to_json : stats list -> string
(** The [results/mcheck.json] payload (schema [renaming.mcheck/2]):
    per-target engine, schedule/race/wakeup/pruned counts, baseline and
    reduction ratio, violations with condensed traces, plus aggregate
    totals. *)
