(** Race detection for source-DPOR: vector-clock happens-before over an
    executed schedule, reversible-race enumeration, and reordering
    witnesses.

    Events are the executed scheduling decisions of one directed run.
    An event either carries the operation a pid executed ([Some op]) or
    is a *barrier* ([None]) — a crash, recovery or transient-fault
    injection, conservatively dependent on everything, so no race is
    ever detected across an injection (the explorer enumerates
    injection subtrees exhaustively instead). *)

module Op = Renaming_sched.Op

val dependent : Op.t -> Op.t -> bool
(** [not (Renaming_analysis.Footprint.independent a b)] — the single
    definition of the dependence relation the checker reverses races
    over, exported so [renaming analyze] can audit it against the
    executable commutation oracle. *)

type event = { ev_pid : int; ev_op : Op.t option }

val step : pid:int -> Op.t -> event
val barrier : pid:int -> event

type race = { r_first : int; r_second : int }
(** Indices into the event array, [r_first < r_second]. *)

val clocks : ?dependent:(Op.t -> Op.t -> bool) -> pids:int -> event array -> int array array
(** [clocks.(j).(p)] is the largest index of a pid-[p] event that
    happens-before event [j] (inclusive of [j] itself), or [-1].
    [pids] bounds the pid space. *)

val happens_before : clocks:int array array -> event array -> int -> int -> bool
(** [happens_before ~clocks events i j] — reflexive; requires [i <= j]
    to be meaningful (events later in the execution never happen-before
    earlier ones). *)

val races :
  ?dependent:(Op.t -> Op.t -> bool) ->
  ?from:int ->
  pids:int ->
  event array ->
  int array array * race list
(** All *reversible* races of the execution: pairs [(i, j)] of dependent
    steps of different pids with no intervening happens-before path, [j
    >= from] (pass the first index past the already-explored prefix to
    skip redundant re-detection).  Per [(j, p)] only the last dependent
    pid-[p] event before [j] is reported.  Also returns the computed
    clocks for reuse with {!witness}. *)

val witness : clocks:int array array -> event array -> race -> int list
(** The reordering witness of a race [(i, j)]: indices, in execution
    order, of the events in [(i, j)) that do not happen-after [i],
    followed by [j] — executing these from the state before [i] reverses
    the race.  All witness events are steps (barriers are dependent with
    everything, hence happen-after [i]). *)
