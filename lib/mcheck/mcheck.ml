module Executor = Renaming_sched.Executor
module Directed = Renaming_sched.Directed
module Report = Renaming_sched.Report
module Op = Renaming_sched.Op
module Monitor = Renaming_faults.Monitor
module Shrink = Renaming_faults.Shrink
module Obs = Renaming_obs.Obs
module Metrics = Renaming_obs.Metrics

type target = {
  t_name : string;
  t_build : unit -> Executor.instance;
  t_check_ownership : bool;
}

type engine = [ `Dpor | `Legacy_dfs ]

let engine_name = function `Dpor -> "dpor" | `Legacy_dfs -> "legacy-dfs"

type bounds = {
  b_preemptions : int;
  b_crashes : int;
  b_recoveries : int;
  b_faults : int;
  b_max_ticks : int;
  b_max_schedules : int;
  b_sleep : bool;
  b_yield_rotate : int option;
}

let default_bounds =
  {
    b_preemptions = 2;
    b_crashes = 0;
    b_recoveries = 0;
    b_faults = 0;
    b_max_ticks = 50_000;
    b_max_schedules = 200_000;
    b_sleep = true;
    b_yield_rotate = Some 32;
  }

type case = {
  v_kind : string;
  v_message : string;
  v_prefix : Directed.choice list;
  v_condensed : string;
  v_shrunk : Shrink.result option;
}

type stats = {
  s_target : string;
  s_engine : string;
  s_schedules : int;
  s_points : int;
  s_races : int;
  s_wakeups : int;
  s_pruned : int;
  s_budget_skipped : int;
  s_livelocks : int;
  s_violations : int;
  s_capped : bool;
  s_baseline : int option;
  s_cases : case list;
}

(* Static independence of operations lives in the audited
   Renaming_analysis.Footprint table: both engines below are only sound
   if that table never claims independence for a non-commuting pair,
   and `renaming analyze` machine-checks exactly that (pairwise
   commutation + dynamic access-set coverage + agreement with the
   {!Races.dependent} relation DPOR reverses races over). *)
let independent = Renaming_analysis.Footprint.independent

exception Capped

(* Mutable accumulators shared by both engines. *)
type acc = {
  a_schedules : int ref;
  a_points : int ref;
  a_races : int ref;
  a_wakeups : int ref;
  a_pruned : int ref;
  a_budget_skipped : int ref;
  a_livelocks : int ref;
  a_violations : int ref;
  a_cases : case list ref;
  a_register : kind:string -> message:string -> Directed.result -> unit;
  a_on_schedule : (Directed.choice array -> unit) option;
}

let notify acc (run : Directed.result) =
  match acc.a_on_schedule with None -> () | Some f -> f run.Directed.taken

(* ------------------------------------------------------------------ *)
(* Legacy engine: CHESS-style DFS with sleep sets.  Kept verbatim as
   the [--legacy-dfs] escape hatch for differential runs against the
   DPOR engine; its schedule enumeration must stay byte-identical. *)

(* Compose the per-execution event hook: the monitor first (existing
   violation kinds stay stable), then a fresh refinement checker when
   one is attached. *)
let monitored_hook ?refine monitor =
  match refine with
  | None -> Monitor.hook monitor
  | Some make ->
    let rhook = make () and mhook = Monitor.hook monitor in
    fun ev ->
      mhook ev;
      rhook ev

let check_legacy ?refine ~bounds ~acc target =
  let schedules = acc.a_schedules in
  let points = acc.a_points in
  let slept = acc.a_pruned in
  let livelocks = acc.a_livelocks in
  let capped = ref false in
  (* One stateless exploration step: execute [prefix] (plus the
     non-preemptive default tail), check it, then branch on every
     alternative at every decision point past the prefix.  Each complete
     execution differs from its parent's at exactly the branched index,
     so no interleaving is visited twice. *)
  let rec explore prefix ~sleep ~preemptions ~crashes ~recoveries ~faults =
    if !schedules >= bounds.b_max_schedules then raise Capped;
    incr schedules;
    let inst = target.t_build () in
    let monitor =
      Monitor.create ~check_ownership:target.t_check_ownership ~memory:inst.Executor.memory
        ~processes:(Array.length inst.Executor.programs) ()
    in
    let run =
      Directed.run ~max_ticks:bounds.b_max_ticks ~record_from:(List.length prefix)
        ~on_event:(monitored_hook ?refine monitor) ~prefix inst
    in
    notify acc run;
    (match run.Directed.outcome with
    | Directed.Raised (Monitor.Violation v) ->
      acc.a_register ~kind:v.Monitor.kind ~message:v.Monitor.message run
    | Directed.Raised e ->
      acc.a_register
        ~kind:("exception:" ^ Printexc.exn_slot_name e)
        ~message:(Printexc.to_string e) run
    | Directed.Finished report ->
      if Report.is_livelock report then incr livelocks
      else (
        try Monitor.finalize monitor report
        with Monitor.Violation v ->
          acc.a_register ~kind:v.Monitor.kind ~message:v.Monitor.message run));
    let cur_sleep = ref sleep in
    Array.iter
      (fun (pt : Directed.point) ->
        incr points;
        (* The default tail only ever schedules, so every recorded point
           past the prefix was taken as a Step. *)
        let taken_pid =
          match pt.Directed.taken with
          | Directed.Step p -> p
          | Directed.Fault _ | Directed.Crash _ | Directed.Recover _ -> assert false
        in
        let taken_op =
          let k = ref (-1) in
          Array.iteri (fun i q -> if q = taken_pid then k := i) pt.Directed.runnable;
          pt.Directed.ops.(!k)
        in
        let base = Array.to_list (Array.sub run.Directed.taken 0 pt.Directed.index) in
        let prev_runnable =
          pt.Directed.prev >= 0 && Array.exists (fun q -> q = pt.Directed.prev) pt.Directed.runnable
        in
        let step_cost q = if prev_runnable && q <> pt.Directed.prev then 1 else 0 in
        let explored = ref [] in
        (* Alternative schedules of other runnable processes. *)
        Array.iteri
          (fun k q ->
            if q <> taken_pid then begin
              let opq = pt.Directed.ops.(k) in
              if
                bounds.b_sleep
                && List.exists (fun (r, opr) -> r = q && opr = opq) !cur_sleep
              then incr slept
              else begin
                let cost = step_cost q in
                if cost <= preemptions then begin
                  let child_sleep =
                    if not bounds.b_sleep then []
                    else
                      List.filter
                        (fun (r, opr) -> r <> q && independent opr opq)
                        (!explored @ !cur_sleep)
                  in
                  explore
                    (base @ [ Directed.Step q ])
                    ~sleep:child_sleep ~preemptions:(preemptions - cost) ~crashes ~recoveries
                    ~faults;
                  explored := (q, opq) :: !explored
                end
              end
            end)
          pt.Directed.runnable;
        (* Transient-fault injections (including on the taken pid). *)
        if faults > 0 then
          Array.iteri
            (fun k q ->
              let opq = pt.Directed.ops.(k) in
              if Op.faultable opq then begin
                let cost = step_cost q in
                if cost <= preemptions then
                  explore
                    (base @ [ Directed.Fault q ])
                    ~sleep:[] ~preemptions:(preemptions - cost) ~crashes ~recoveries
                    ~faults:(faults - 1)
              end)
            pt.Directed.runnable;
        (* Crash / recovery injections. *)
        if crashes > 0 then
          Array.iter
            (fun q ->
              explore
                (base @ [ Directed.Crash q ])
                ~sleep:[] ~preemptions ~crashes:(crashes - 1) ~recoveries ~faults)
            pt.Directed.runnable;
        if recoveries > 0 then
          Array.iter
            (fun q ->
              explore
                (base @ [ Directed.Recover q ])
                ~sleep:[] ~preemptions ~crashes ~recoveries:(recoveries - 1) ~faults)
            pt.Directed.crashed;
        (* Walk into the taken branch: wake sleepers dependent on the
           taken operation, put the explored alternatives to sleep. *)
        cur_sleep :=
          if not bounds.b_sleep then []
          else
            List.filter
              (fun (r, opr) -> r <> taken_pid && independent opr taken_op)
              (!explored @ !cur_sleep))
      run.Directed.points
  in
  (try
     explore [] ~sleep:[] ~preemptions:bounds.b_preemptions ~crashes:bounds.b_crashes
       ~recoveries:bounds.b_recoveries ~faults:bounds.b_faults
   with Capped -> capped := true);
  !capped

(* ------------------------------------------------------------------ *)
(* Source-DPOR engine with wakeup trees.

   The exploration is still stateless CHESS-style re-execution, but the
   alternatives at a decision point are no longer "every other enabled
   process": they come exclusively from *reversible races* detected on
   completed executions (plus the exhaustively enumerated fault /
   crash / recovery injections).  After each run, every race (i, j) —
   two dependent steps of different pids with no happens-before path
   between them — yields a reordering witness that is inserted into the
   wakeup tree of node [i] unless an already-explored branch (sleep
   set), a pending branch (tree cover) or the preemption budget rules
   it out.  Sleep sets record fully-explored branches per node, so a
   committed branch is never re-inserted: no explored schedule is ever
   revisited. *)

type nd = {
  nd_point : Directed.point;
  nd_preempt : int;
  nd_crashes : int;
  nd_recoveries : int;
  nd_faults : int;
  mutable nd_chosen : Directed.choice;
  mutable nd_event : Races.event;
  mutable nd_sleep : (int * Op.t) list;
  nd_w : Wakeup.t;  (* pending race-reversal branches, exploration order *)
  mutable nd_inj : Directed.choice list;  (* pending injection branches *)
  mutable nd_next : Wakeup.t;  (* continuation subtree for the child under [nd_chosen] *)
}

let op_at (pt : Directed.point) pid =
  let r = ref None in
  Array.iteri (fun k q -> if q = pid then r := Some pt.Directed.ops.(k)) pt.Directed.runnable;
  match !r with
  | Some o -> o
  | None -> invalid_arg (Printf.sprintf "Mcheck.op_at: pid %d not runnable" pid)

let prev_runnable (pt : Directed.point) =
  pt.Directed.prev >= 0 && Array.exists (fun q -> q = pt.Directed.prev) pt.Directed.runnable

(* Switching away from a still-runnable process costs one preemption —
   the exact cost model of the legacy engine, so both engines bound the
   same schedule universe (the differential tests rely on this). *)
let switch_cost (pt : Directed.point) pid =
  if prev_runnable pt && pt.Directed.prev <> pid then 1
  else 0

let event_of_choice (pt : Directed.point) = function
  | Directed.Step pid -> Races.step ~pid (op_at pt pid)
  | Directed.Fault pid | Directed.Crash pid | Directed.Recover pid -> Races.barrier ~pid

exception Budget_exceeded

let check_dpor ?refine ~bounds ~acc target =
  let path_rev = ref [] in
  (* path head = deepest node *)
  let depth = ref 0 in
  let push nd =
    path_rev := nd :: !path_rev;
    incr depth
  in
  let pop_node () =
    match !path_rev with
    | [] -> ()
    | _ :: rest ->
      path_rev := rest;
      decr depth
  in
  let mk_node ~parent (pt : Directed.point) =
    let preempt, crashes, recoveries, faults, sleep, w, next =
      match parent with
      | None ->
        ( bounds.b_preemptions,
          bounds.b_crashes,
          bounds.b_recoveries,
          bounds.b_faults,
          [],
          Wakeup.create (),
          Wakeup.create () )
      | Some p ->
        let pre = ref p.nd_preempt in
        let cr = ref p.nd_crashes in
        let re = ref p.nd_recoveries in
        let fa = ref p.nd_faults in
        let sleep =
          match (p.nd_chosen, p.nd_event.Races.ev_op) with
          | Directed.Step q, Some o ->
            pre := !pre - switch_cost p.nd_point q;
            List.filter (fun (r, opr) -> r <> q && not (Races.dependent opr o)) p.nd_sleep
          | Directed.Fault q, _ ->
            pre := !pre - switch_cost p.nd_point q;
            decr fa;
            []
          | Directed.Crash _, _ ->
            decr cr;
            []
          | Directed.Recover _, _ ->
            decr re;
            []
          | Directed.Step _, None -> assert false
        in
        if !pre < 0 then raise Budget_exceeded;
        (* Thread the wakeup continuation: the prefix is descending the
           leftmost chain of the branch taken at the parent, so the
           child inherits the branch's remaining siblings as pending. *)
        let w, next =
          if Wakeup.is_empty p.nd_next then (Wakeup.create (), Wakeup.create ())
          else begin
            match Wakeup.pop p.nd_next with
            | None -> assert false
            | Some b ->
              (match pt.Directed.taken with
              | Directed.Step q when q = b.Wakeup.b_pid -> ()
              | _ -> assert false);
              let w = p.nd_next in
              p.nd_next <- Wakeup.create ();
              (w, b.Wakeup.b_sub)
          end
        in
        (!pre, !cr, !re, !fa, sleep, w, next)
    in
    (* Injection alternatives at this point, enumerated exhaustively
       (budget-gated), exactly as the legacy engine does. *)
    let inj = ref [] in
    if recoveries > 0 then Array.iter (fun q -> inj := Directed.Recover q :: !inj) pt.Directed.crashed;
    if crashes > 0 then Array.iter (fun q -> inj := Directed.Crash q :: !inj) pt.Directed.runnable;
    if faults > 0 then
      Array.iteri
        (fun k q ->
          if Op.faultable pt.Directed.ops.(k) && switch_cost pt q <= preempt then
            inj := Directed.Fault q :: !inj)
        pt.Directed.runnable;
    {
      nd_point = pt;
      nd_preempt = preempt;
      nd_crashes = crashes;
      nd_recoveries = recoveries;
      nd_faults = faults;
      nd_chosen = pt.Directed.taken;
      nd_event = event_of_choice pt pt.Directed.taken;
      nd_sleep = sleep;
      nd_w = w;
      nd_inj = !inj;
      nd_next = next;
    }
  in
  let rec leftmost t =
    match Wakeup.branches t with
    | [] -> []
    | b :: _ -> Directed.Step b.Wakeup.b_pid :: leftmost b.Wakeup.b_sub
  in
  let capped = ref false in
  let continue_ = ref true in
  while !continue_ do
    if !(acc.a_schedules) >= bounds.b_max_schedules then begin
      capped := true;
      continue_ := false
    end
    else begin
      (* Events at indices >= [from] are new in this execution (the
         re-chosen backtrack node and everything after it). *)
      let from = if !depth = 0 then 0 else !depth - 1 in
      let prefix =
        List.rev_map (fun nd -> nd.nd_chosen) !path_rev
        @ (match !path_rev with [] -> [] | nd :: _ -> leftmost nd.nd_next)
      in
      let inst = target.t_build () in
      let monitor =
        Monitor.create ~check_ownership:target.t_check_ownership ~memory:inst.Executor.memory
          ~processes:(Array.length inst.Executor.programs) ()
      in
      let run =
        Directed.run ~max_ticks:bounds.b_max_ticks ~record_from:0
          ?yield_rotate:bounds.b_yield_rotate ~on_event:(monitored_hook ?refine monitor)
          ~prefix inst
      in
      let livelocked =
        match run.Directed.outcome with
        | Directed.Finished report -> Report.is_livelock report
        | Directed.Raised _ -> false
      in
      let depth0 = !depth in
      let ok =
        if run.Directed.dropped > 0 then false
        else if livelocked then true
          (* a livelocked tail can be tens of thousands of points long:
             count it, but do not expand nodes or detect races on it *)
        else
          try
            Array.iteri
              (fun k pt ->
                if k >= depth0 then
                  push (mk_node ~parent:(match !path_rev with [] -> None | p :: _ -> Some p) pt))
              run.Directed.points;
            true
          with Budget_exceeded ->
            while !depth > depth0 do
              pop_node ()
            done;
            false
      in
      if not ok then incr acc.a_budget_skipped
      else begin
        incr acc.a_schedules;
        notify acc run;
        (match run.Directed.outcome with
        | Directed.Raised (Monitor.Violation v) ->
          acc.a_register ~kind:v.Monitor.kind ~message:v.Monitor.message run
        | Directed.Raised e ->
          acc.a_register
            ~kind:("exception:" ^ Printexc.exn_slot_name e)
            ~message:(Printexc.to_string e) run
        | Directed.Finished report ->
          if Report.is_livelock report then incr acc.a_livelocks
          else (
            try Monitor.finalize monitor report
            with Monitor.Violation v ->
              acc.a_register ~kind:v.Monitor.kind ~message:v.Monitor.message run));
        if not livelocked then begin
          acc.a_points := !(acc.a_points) + (!depth - depth0);
          (* Race detection on the completed execution, and witness
             insertion at each race's first node. *)
          let nodes = Array.of_list (List.rev !path_rev) in
          let events = Array.map (fun nd -> nd.nd_event) nodes in
          let pids = Array.length inst.Executor.programs in
          let clocks, races = Races.races ~pids ~from events in
          let try_insert nd v =
            if
              List.exists (fun (q, oq) -> Wakeup.weak_initial_mem v ~pid:q ~op:oq) nd.nd_sleep
            then incr acc.a_pruned
            else
              match Wakeup.insert nd.nd_w v with
              | Wakeup.Inserted -> incr acc.a_wakeups
              | Wakeup.Covered -> incr acc.a_pruned
          in
          List.iter
            (fun r ->
              incr acc.a_races;
              let v =
                List.map
                  (fun k ->
                    match events.(k) with
                    | { Races.ev_pid; ev_op = Some o } -> (ev_pid, o)
                    | { Races.ev_op = None; _ } -> assert false)
                  (Races.witness ~clocks events r)
              in
              let nd = nodes.(r.Races.r_first) in
              let p0, _ = List.hd v in
              if switch_cost nd.nd_point p0 <= nd.nd_preempt then try_insert nd v
              else begin
                (* Bounded-DPOR conservative backtrack point: the
                   reversal needs a preemption the budget no longer
                   allows.  Dropping it outright would lose even the
                   free reorderings a bounded run can reach (at budget 0
                   the legacy engine still explores every
                   run-to-completion order), so fall back to the one
                   switch that is always free — scheduling the racing
                   process first, at the root.  Deliberately lazy:
                   reversals needing a mid-trace preemption the budget
                   cannot pay stay skipped, mirroring the legacy
                   engine's budget gating. *)
                let nd0 = nodes.(0) in
                if
                  Array.exists (fun q -> q = p0) nd0.nd_point.Directed.runnable
                  && switch_cost nd0.nd_point p0 = 0
                then
                  match nd0.nd_chosen with
                  | Directed.Step q when q = p0 ->
                    (* the subtree below the root already schedules
                       [p0] first — inserting it again would duplicate
                       that whole subtree *)
                    incr acc.a_pruned
                  | _ -> try_insert nd0 [ (p0, op_at nd0.nd_point p0) ]
                else incr acc.a_budget_skipped
              end)
            races
        end
      end;
      (* Backtrack to the deepest node with a pending alternative; the
         branch just finished joins that node's sleep set. *)
      let rec backtrack () =
        match !path_rev with
        | [] -> continue_ := false
        | nd :: _ -> (
          (match (nd.nd_chosen, nd.nd_event.Races.ev_op) with
          | Directed.Step p, Some o -> nd.nd_sleep <- (p, o) :: nd.nd_sleep
          | _ -> ());
          match Wakeup.pop nd.nd_w with
          | Some b ->
            nd.nd_chosen <- Directed.Step b.Wakeup.b_pid;
            nd.nd_event <- Races.step ~pid:b.Wakeup.b_pid b.Wakeup.b_op;
            nd.nd_next <- b.Wakeup.b_sub
          | None -> (
            match nd.nd_inj with
            | c :: tl ->
              nd.nd_inj <- tl;
              nd.nd_chosen <- c;
              nd.nd_event <- event_of_choice nd.nd_point c;
              nd.nd_next <- Wakeup.create ()
            | [] ->
              pop_node ();
              backtrack ()))
      in
      backtrack ()
    end
  done;
  !capped

(* ------------------------------------------------------------------ *)

let check ?(engine = `Dpor) ?(bounds = default_bounds) ?(shrink = true) ?(max_cases = 8)
    ?baseline ?on_schedule ?obs ?refine target =
  let schedules = ref 0 in
  let points = ref 0 in
  let races = ref 0 in
  let wakeups = ref 0 in
  let pruned = ref 0 in
  let budget_skipped = ref 0 in
  let livelocks = ref 0 in
  let violations = ref 0 in
  let cases = ref [] in
  let register ~kind ~message (run : Directed.result) =
    incr violations;
    if List.length !cases < max_cases then begin
      let prefix = Array.to_list run.Directed.taken in
      let shrunk =
        if not shrink then None
        else
          Shrink.shrink ?extra:refine
            {
              Shrink.label = target.t_name;
              build = target.t_build;
              check_ownership = target.t_check_ownership;
              choices = prefix;
              max_ticks = bounds.b_max_ticks;
              tau_cadence = 1;
            }
      in
      cases :=
        {
          v_kind = kind;
          v_message = message;
          v_prefix = prefix;
          v_condensed = Directed.condensed ~points:run.Directed.points run.Directed.taken;
          v_shrunk = shrunk;
        }
        :: !cases
    end
  in
  let acc =
    {
      a_schedules = schedules;
      a_points = points;
      a_races = races;
      a_wakeups = wakeups;
      a_pruned = pruned;
      a_budget_skipped = budget_skipped;
      a_livelocks = livelocks;
      a_violations = violations;
      a_cases = cases;
      a_register = register;
      a_on_schedule = on_schedule;
    }
  in
  let capped =
    match engine with
    | `Legacy_dfs -> check_legacy ?refine ~bounds ~acc target
    | `Dpor -> check_dpor ?refine ~bounds ~acc target
  in
  let stats =
    {
      s_target = target.t_name;
      s_engine = engine_name engine;
      s_schedules = !schedules;
      s_points = !points;
      s_races = !races;
      s_wakeups = !wakeups;
      s_pruned = !pruned;
      s_budget_skipped = !budget_skipped;
      s_livelocks = !livelocks;
      s_violations = !violations;
      s_capped = capped;
      s_baseline = baseline;
      s_cases = List.rev !cases;
    }
  in
  (match obs with
  | None -> ()
  | Some o ->
    Metrics.add (Obs.counter o "mcheck/targets") 1;
    Metrics.add (Obs.counter o "mcheck/schedules") stats.s_schedules;
    Metrics.add (Obs.counter o "mcheck/points") stats.s_points;
    Metrics.add (Obs.counter o "mcheck/races") stats.s_races;
    Metrics.add (Obs.counter o "mcheck/wakeups") stats.s_wakeups;
    Metrics.add (Obs.counter o "mcheck/pruned") stats.s_pruned;
    Metrics.add (Obs.counter o "mcheck/violations") stats.s_violations;
    Metrics.add (Obs.counter o "mcheck/livelocks") stats.s_livelocks);
  stats

let reduction s =
  match s.s_baseline with
  | Some b when b > 0 -> Some (float_of_int s.s_schedules /. float_of_int b)
  | _ -> None

let pp_stats fmt s =
  Format.fprintf fmt
    "@[<v>%-28s %8d schedules %8d points %6d pruned %4d wakeups %3d livelocks %3d violations%s%s@ "
    s.s_target s.s_schedules s.s_points s.s_pruned s.s_wakeups s.s_livelocks s.s_violations
    (match reduction s with
    | Some r -> Printf.sprintf "  [%.0f%% of %d-schedule baseline]" (100. *. r) (Option.get s.s_baseline)
    | None -> "")
    (if s.s_capped then " (CAPPED)" else "");
  List.iter
    (fun c ->
      Format.fprintf fmt "  violation [%s]: prefix %d choices (%s)" c.v_kind
        (List.length c.v_prefix) c.v_condensed;
      (match c.v_shrunk with
      | Some r ->
        Format.fprintf fmt " -> shrunk to %d (%d replays): %s"
          (List.length r.Shrink.r_choices)
          r.Shrink.r_replays
          (String.concat "; " (List.map Directed.choice_to_string r.Shrink.r_choices))
      | None -> ());
      Format.pp_print_cut fmt ())
    s.s_cases;
  Format.fprintf fmt "@]"

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let choices_json cs =
  String.concat ","
    (List.map (fun c -> "\"" ^ json_escape (Directed.choice_to_string c) ^ "\"") cs)

let case_to_json c =
  Printf.sprintf "{\"kind\":\"%s\",\"prefix_length\":%d,\"condensed\":\"%s\",\"shrunk\":%s}"
    (json_escape c.v_kind)
    (List.length c.v_prefix)
    (json_escape c.v_condensed)
    (match c.v_shrunk with
    | None -> "null"
    | Some r ->
      Printf.sprintf "{\"length\":%d,\"replays\":%d,\"choices\":[%s]}"
        (List.length r.Shrink.r_choices)
        r.Shrink.r_replays
        (choices_json r.Shrink.r_choices))

let stats_to_json s =
  Printf.sprintf
    "{\"target\":\"%s\",\"engine\":\"%s\",\"schedules\":%d,\"points\":%d,\"races\":%d,\"wakeups\":%d,\"pruned\":%d,\"budget_skipped\":%d,\"livelocks\":%d,\"violations\":%d,\"capped\":%b,\"baseline\":%s,\"reduction\":%s,\"cases\":[%s]}"
    (json_escape s.s_target) (json_escape s.s_engine) s.s_schedules s.s_points s.s_races
    s.s_wakeups s.s_pruned s.s_budget_skipped s.s_livelocks s.s_violations s.s_capped
    (match s.s_baseline with None -> "null" | Some b -> string_of_int b)
    (match reduction s with None -> "null" | Some r -> Printf.sprintf "%.4f" r)
    (String.concat "," (List.map case_to_json s.s_cases))

let to_json all =
  let total field = List.fold_left (fun acc s -> acc + field s) 0 all in
  Printf.sprintf
    "{\"schema\":\"renaming.mcheck/2\",\"instances\":%d,\"schedules\":%d,\"violations\":%d,\"livelocks\":%d,\"targets\":[\n%s\n]}"
    (List.length all)
    (total (fun s -> s.s_schedules))
    (total (fun s -> s.s_violations))
    (total (fun s -> s.s_livelocks))
    (String.concat ",\n" (List.map stats_to_json all))
