module Executor = Renaming_sched.Executor
module Directed = Renaming_sched.Directed
module Report = Renaming_sched.Report
module Op = Renaming_sched.Op
module Monitor = Renaming_faults.Monitor
module Shrink = Renaming_faults.Shrink
module Obs = Renaming_obs.Obs
module Metrics = Renaming_obs.Metrics

type target = {
  t_name : string;
  t_build : unit -> Executor.instance;
  t_check_ownership : bool;
}

type bounds = {
  b_preemptions : int;
  b_crashes : int;
  b_recoveries : int;
  b_faults : int;
  b_max_ticks : int;
  b_max_schedules : int;
  b_sleep : bool;
}

let default_bounds =
  {
    b_preemptions = 2;
    b_crashes = 0;
    b_recoveries = 0;
    b_faults = 0;
    b_max_ticks = 50_000;
    b_max_schedules = 200_000;
    b_sleep = true;
  }

type case = {
  v_kind : string;
  v_message : string;
  v_prefix : Directed.choice list;
  v_shrunk : Shrink.result option;
}

type stats = {
  s_target : string;
  s_schedules : int;
  s_points : int;
  s_slept : int;
  s_livelocks : int;
  s_violations : int;
  s_capped : bool;
  s_cases : case list;
}

(* Static independence of operations lives in the audited
   Renaming_analysis.Footprint table: the sleep sets below are only
   sound if that table never claims independence for a non-commuting
   pair, and `renaming analyze` machine-checks exactly that (pairwise
   commutation + dynamic access-set coverage). *)
let independent = Renaming_analysis.Footprint.independent

exception Capped

let check ?(bounds = default_bounds) ?(shrink = true) ?(max_cases = 8) ?obs target =
  let schedules = ref 0 in
  let points = ref 0 in
  let slept = ref 0 in
  let livelocks = ref 0 in
  let violations = ref 0 in
  let cases = ref [] in
  let capped = ref false in
  let register ~kind ~message (run : Directed.result) =
    incr violations;
    if List.length !cases < max_cases then begin
      let prefix = Array.to_list run.Directed.taken in
      let shrunk =
        if not shrink then None
        else
          Shrink.shrink
            {
              Shrink.label = target.t_name;
              build = target.t_build;
              check_ownership = target.t_check_ownership;
              choices = prefix;
              max_ticks = bounds.b_max_ticks;
              tau_cadence = 1;
            }
      in
      cases := { v_kind = kind; v_message = message; v_prefix = prefix; v_shrunk = shrunk } :: !cases
    end
  in
  (* One stateless exploration step: execute [prefix] (plus the
     non-preemptive default tail), check it, then branch on every
     alternative at every decision point past the prefix.  Each complete
     execution differs from its parent's at exactly the branched index,
     so no interleaving is visited twice. *)
  let rec explore prefix ~sleep ~preemptions ~crashes ~recoveries ~faults =
    if !schedules >= bounds.b_max_schedules then raise Capped;
    incr schedules;
    let inst = target.t_build () in
    let monitor =
      Monitor.create ~check_ownership:target.t_check_ownership ~memory:inst.Executor.memory
        ~processes:(Array.length inst.Executor.programs) ()
    in
    let run =
      Directed.run ~max_ticks:bounds.b_max_ticks ~record_from:(List.length prefix)
        ~on_event:(Monitor.hook monitor) ~prefix inst
    in
    (match run.Directed.outcome with
    | Directed.Raised (Monitor.Violation v) ->
      register ~kind:v.Monitor.kind ~message:v.Monitor.message run
    | Directed.Raised e ->
      register ~kind:("exception:" ^ Printexc.exn_slot_name e) ~message:(Printexc.to_string e)
        run
    | Directed.Finished report ->
      if Report.is_livelock report then incr livelocks
      else (
        try Monitor.finalize monitor report
        with Monitor.Violation v -> register ~kind:v.Monitor.kind ~message:v.Monitor.message run));
    let cur_sleep = ref sleep in
    Array.iter
      (fun (pt : Directed.point) ->
        incr points;
        (* The default tail only ever schedules, so every recorded point
           past the prefix was taken as a Step. *)
        let taken_pid =
          match pt.Directed.taken with
          | Directed.Step p -> p
          | Directed.Fault _ | Directed.Crash _ | Directed.Recover _ -> assert false
        in
        let taken_op =
          let k = ref (-1) in
          Array.iteri (fun i q -> if q = taken_pid then k := i) pt.Directed.runnable;
          pt.Directed.ops.(!k)
        in
        let base = Array.to_list (Array.sub run.Directed.taken 0 pt.Directed.index) in
        let prev_runnable =
          pt.Directed.prev >= 0 && Array.exists (fun q -> q = pt.Directed.prev) pt.Directed.runnable
        in
        let step_cost q = if prev_runnable && q <> pt.Directed.prev then 1 else 0 in
        let explored = ref [] in
        (* Alternative schedules of other runnable processes. *)
        Array.iteri
          (fun k q ->
            if q <> taken_pid then begin
              let opq = pt.Directed.ops.(k) in
              if
                bounds.b_sleep
                && List.exists (fun (r, opr) -> r = q && opr = opq) !cur_sleep
              then incr slept
              else begin
                let cost = step_cost q in
                if cost <= preemptions then begin
                  let child_sleep =
                    if not bounds.b_sleep then []
                    else
                      List.filter
                        (fun (r, opr) -> r <> q && independent opr opq)
                        (!explored @ !cur_sleep)
                  in
                  explore
                    (base @ [ Directed.Step q ])
                    ~sleep:child_sleep ~preemptions:(preemptions - cost) ~crashes ~recoveries
                    ~faults;
                  explored := (q, opq) :: !explored
                end
              end
            end)
          pt.Directed.runnable;
        (* Transient-fault injections (including on the taken pid). *)
        if faults > 0 then
          Array.iteri
            (fun k q ->
              let opq = pt.Directed.ops.(k) in
              if Op.faultable opq then begin
                let cost = step_cost q in
                if cost <= preemptions then
                  explore
                    (base @ [ Directed.Fault q ])
                    ~sleep:[] ~preemptions:(preemptions - cost) ~crashes ~recoveries
                    ~faults:(faults - 1)
              end)
            pt.Directed.runnable;
        (* Crash / recovery injections. *)
        if crashes > 0 then
          Array.iter
            (fun q ->
              explore
                (base @ [ Directed.Crash q ])
                ~sleep:[] ~preemptions ~crashes:(crashes - 1) ~recoveries ~faults)
            pt.Directed.runnable;
        if recoveries > 0 then
          Array.iter
            (fun q ->
              explore
                (base @ [ Directed.Recover q ])
                ~sleep:[] ~preemptions ~crashes ~recoveries:(recoveries - 1) ~faults)
            pt.Directed.crashed;
        (* Walk into the taken branch: wake sleepers dependent on the
           taken operation, put the explored alternatives to sleep. *)
        cur_sleep :=
          if not bounds.b_sleep then []
          else
            List.filter
              (fun (r, opr) -> r <> taken_pid && independent opr taken_op)
              (!explored @ !cur_sleep))
      run.Directed.points
  in
  (try
     explore [] ~sleep:[] ~preemptions:bounds.b_preemptions ~crashes:bounds.b_crashes
       ~recoveries:bounds.b_recoveries ~faults:bounds.b_faults
   with Capped -> capped := true);
  let stats =
    {
      s_target = target.t_name;
      s_schedules = !schedules;
      s_points = !points;
      s_slept = !slept;
      s_livelocks = !livelocks;
      s_violations = !violations;
      s_capped = !capped;
      s_cases = List.rev !cases;
    }
  in
  (match obs with
  | None -> ()
  | Some o ->
    Metrics.add (Obs.counter o "mcheck/targets") 1;
    Metrics.add (Obs.counter o "mcheck/schedules") stats.s_schedules;
    Metrics.add (Obs.counter o "mcheck/points") stats.s_points;
    Metrics.add (Obs.counter o "mcheck/slept") stats.s_slept;
    Metrics.add (Obs.counter o "mcheck/violations") stats.s_violations;
    Metrics.add (Obs.counter o "mcheck/livelocks") stats.s_livelocks);
  stats

let pp_stats fmt s =
  Format.fprintf fmt "@[<v>%-28s %8d schedules %8d points %6d slept %3d livelocks %3d violations%s@ "
    s.s_target s.s_schedules s.s_points s.s_slept s.s_livelocks s.s_violations
    (if s.s_capped then " (CAPPED)" else "");
  List.iter
    (fun c ->
      Format.fprintf fmt "  violation [%s]: prefix %d choices" c.v_kind (List.length c.v_prefix);
      (match c.v_shrunk with
      | Some r ->
        Format.fprintf fmt " -> shrunk to %d (%d replays): %s"
          (List.length r.Shrink.r_choices)
          r.Shrink.r_replays
          (String.concat "; " (List.map Directed.choice_to_string r.Shrink.r_choices))
      | None -> ());
      Format.pp_print_cut fmt ())
    s.s_cases;
  Format.fprintf fmt "@]"

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let choices_json cs =
  String.concat ","
    (List.map (fun c -> "\"" ^ json_escape (Directed.choice_to_string c) ^ "\"") cs)

let case_to_json c =
  Printf.sprintf "{\"kind\":\"%s\",\"prefix_length\":%d,\"shrunk\":%s}" (json_escape c.v_kind)
    (List.length c.v_prefix)
    (match c.v_shrunk with
    | None -> "null"
    | Some r ->
      Printf.sprintf "{\"length\":%d,\"replays\":%d,\"choices\":[%s]}"
        (List.length r.Shrink.r_choices)
        r.Shrink.r_replays
        (choices_json r.Shrink.r_choices))

let stats_to_json s =
  Printf.sprintf
    "{\"target\":\"%s\",\"schedules\":%d,\"points\":%d,\"slept\":%d,\"livelocks\":%d,\"violations\":%d,\"capped\":%b,\"cases\":[%s]}"
    (json_escape s.s_target) s.s_schedules s.s_points s.s_slept s.s_livelocks s.s_violations
    s.s_capped
    (String.concat "," (List.map case_to_json s.s_cases))

let to_json all =
  let total field = List.fold_left (fun acc s -> acc + field s) 0 all in
  Printf.sprintf
    "{\"instances\":%d,\"schedules\":%d,\"violations\":%d,\"livelocks\":%d,\"targets\":[\n%s\n]}"
    (List.length all)
    (total (fun s -> s.s_schedules))
    (total (fun s -> s.s_violations))
    (total (fun s -> s.s_livelocks))
    (String.concat ",\n" (List.map stats_to_json all))
