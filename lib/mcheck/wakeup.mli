(** Wakeup trees for source-DPOR: ordered, append-only trees of
    reordering sequences pending at a decision point.

    Branch order is insertion order and is never rearranged; the
    explorer consumes branches left to right.  {!insert} guarantees a
    sequence is added only when no existing branch already leads to an
    equivalent state, which is what makes the exploration revisit-free:
    every committed branch starts a distinct Mazurkiewicz trace. *)

module Op = Renaming_sched.Op

type t
(** Mutable; one per decision point. *)

type branch = { b_pid : int; b_op : Op.t; b_sub : t }

type status = Covered | Inserted

val create : unit -> t
val is_empty : t -> bool

val branches : t -> branch list
(** In exploration (= insertion) order. *)

val pop : t -> branch option
(** Remove and return the leftmost branch. *)

val weak_initials : ?dependent:(Op.t -> Op.t -> bool) -> (int * Op.t) list -> (int * Op.t) list
(** The events of the sequence that could equivalently execute first:
    the first event of a pid, independent with everything before it.
    [dependent] defaults to {!Races.dependent}. *)

val weak_initial_mem :
  ?dependent:(Op.t -> Op.t -> bool) -> (int * Op.t) list -> pid:int -> op:Op.t -> bool

val insert : ?dependent:(Op.t -> Op.t -> bool) -> t -> (int * Op.t) list -> status
(** Insert a wakeup sequence: recurse into the leftmost branch whose
    key is a weak initial of the remainder (dropping the matched
    event); an exhausted sequence or an existing leaf is [Covered]
    (some already-scheduled sequence reaches an equivalent state
    first); otherwise append the remainder as a new rightmost branch
    and report [Inserted].  The empty sequence is [Covered]. *)

val size : t -> int
(** Total number of branches, recursively. *)

val pp : Format.formatter -> t -> unit
