(** Injectable monotonic clocks.

    Library code must never read the wall clock directly (the
    [wall-clock] lint rule of {!Renaming_analysis.Lint} enforces this):
    time is a capability passed in from the edge.  Simulated components
    use {!virtual_} (deterministic, replayable), the [bin/] entry points
    construct a real clock from [Unix.gettimeofday] — the only place a
    real time source is allowed to appear — and tests can inject
    whatever ticking behaviour the scenario needs.

    A clock is just a labelled [unit -> float] returning monotone
    non-decreasing seconds; nothing here depends on the unit actually
    being a second, only on monotonicity. *)

type t

val of_fn : label:string -> (unit -> float) -> t
(** Wrap an arbitrary time source.  The function must be monotone
    non-decreasing. *)

val label : t -> string

val now : t -> float

val none : t
(** The absent clock: always reads [0.].  Deadlines measured against it
    never expire; durations come out as [0.].  The default everywhere a
    clock is optional, so simulator behaviour is bit-for-bit identical
    whether or not a caller threads one through. *)

val virtual_ : ?step:float -> unit -> t
(** A deterministic virtual clock: every read advances it by [step]
    (default [1.0]) and returns the pre-advance value, so the k-th read
    observes [(k-1) * step].  Under the simulator this makes time a pure
    function of how often it is consulted — replayable and
    schedule-independent. *)

val elapsed_since : t -> float -> float
(** [elapsed_since t t0] is [now t -. t0]. *)
