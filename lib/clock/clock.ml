type t = { label : string; now : unit -> float }

let of_fn ~label now = { label; now }

let label t = t.label

let now t = t.now ()

let none = { label = "none"; now = (fun () -> 0.) }

let virtual_ ?(step = 1.0) () =
  if step <= 0. then invalid_arg "Clock.virtual_: step must be > 0";
  let ticks = ref 0 in
  {
    label = "virtual";
    now =
      (fun () ->
        let t = float_of_int !ticks *. step in
        incr ticks;
        t);
  }

let elapsed_since t t0 = now t -. t0
