(** The standard chaos-campaign roster: the paper's algorithms wired
    into {!Renaming_faults.Campaign}.

    [lib/faults] is generic over instance builders (it sits below
    [lib/core] in the dependency order); this module supplies the
    concrete cross-product — every TAS-claiming algorithm, the adversary
    suite, the crash/recovery patterns and the default fault rates —
    used by [renaming chaos], [make chaos] and the tier-1 subset in the
    test suite. *)

val algorithms : n:int -> Renaming_faults.Campaign.algorithm list
(** loose-geometric, loose-clustered, combined-geometric, tight,
    adaptive, uniform-probing, linear-scan — all with the ownership
    check enabled.  [n] must be ≥ 8 (the tight schedule's minimum). *)

val adversaries : unit -> Renaming_faults.Campaign.adversary_spec list
(** round-robin, uniform, adaptive-contention, colluding. *)

val patterns : n:int -> Renaming_faults.Campaign.pattern list
(** none, crash-permanent, crash-recovery, burst-recovery; n/4 failures
    over a 2n-tick horizon, recovery n/2 ticks after each crash. *)

val default_fault_rates : float list

val spec :
  ?n:int ->
  ?seed_count:int ->
  ?fault_rates:float list ->
  ?max_ticks:int ->
  unit ->
  Renaming_faults.Campaign.spec
(** The full deterministic campaign (defaults: n=48, 3 seeds, rates
    0/0.02/0.1) behind [make chaos]. *)

val tier1_spec : unit -> Renaming_faults.Campaign.spec
(** The fast subset run on every [dune runtest]: 3 algorithms × 3
    adversaries × {crash-recovery, burst-recovery} × rate 0.05 × 2
    seeds at n=20. *)
