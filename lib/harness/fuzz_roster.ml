module Fuzz = Renaming_fuzz.Fuzz
module Executor = Renaming_sched.Executor
module Memory = Renaming_sched.Memory
module Program = Renaming_sched.Program
module Tau_register = Renaming_device.Tau_register
module Stream = Renaming_rng.Stream

let target ~name ~n ?(check_ownership = true) ?(allow_faults = false) ?(allow_crashes = false)
    ?(tau_cadence = 1) ?(max_ticks = 50_000) ?(expect_violation = false) build =
  {
    Fuzz.fz_name = name;
    fz_n = n;
    fz_build = build;
    fz_check_ownership = check_ownership;
    fz_allow_faults = allow_faults;
    fz_allow_crashes = allow_crashes;
    fz_tau_cadence = tau_cadence;
    fz_max_ticks = max_ticks;
    fz_expect_violation = expect_violation;
  }

(* --- clean targets: small instances of the real algorithms.  All route
   namespace traffic through the fault-aware retry primitives, so fault
   mutations are sound; crash-recovery soundness is covered by the chaos
   campaign, so crash injection is enabled too. --- *)

let loose_geometric ~n ~seed =
  Renaming_core.Loose_geometric.instance
    { Renaming_core.Loose_geometric.n; ell = 2 }
    ~stream:(Stream.create seed)

let combined_geometric ~n ~seed =
  Renaming_core.Combined.instance
    { Renaming_core.Combined.n; variant = Renaming_core.Combined.Geometric { ell = 2 } }
    ~stream:(Stream.create seed)

let uniform_probing ~n ~seed =
  Renaming_baselines.Uniform_probing.instance
    (Renaming_baselines.Uniform_probing.make_config ~max_probes:4 ~n ~m:n ())
    ~stream:(Stream.create seed)

let linear_scan ~n ~seed:_ =
  Renaming_baselines.Linear_scan.instance { Renaming_baselines.Linear_scan.n; m = n }

let grant_model ~n ~seed = Renaming_refine.Grant_model.instance ~n ~seed

let grant_model_regrant ~n ~seed = Renaming_refine.Grant_model.instance_regrant ~n ~seed

(* --- seeded mutants: deliberately broken programs whose bugs need an
   adversarial schedule.  Each is clean under the fair round-robin
   baseline (so the plain test suite cannot see the bug) and breaks only
   under a rare interleaving of bounded depth — the fuzzing analogue of
   `renaming analyze --inject broken-footprint`. --- *)

(* Double-claim in the loose-geometric probe path: the prober "optimises"
   a probe into read-then-TAS and trusts the read — if the register
   looked free, it claims the name without checking that its own TAS
   actually won.  Clean until some other process's TAS lands between the
   read and the TAS (bug depth 2: one preemption of the buggy process at
   one specific point). *)
let mutant_double_claim ~seed:_ =
  let n = 3 in
  let memory = Memory.create ~namespace:n () in
  let open Program.Syntax in
  let buggy_prober =
    (* read 0; if free, TAS 0 and claim it regardless of the answer *)
    let* taken = Program.read_name 0 in
    if taken then Program.scan_names ~first:1 ~count:(n - 1)
    else
      let* _won = Program.tas_name 0 in
      Program.return (Some 0)
  in
  let rival =
    (* parks one yield, then races for register 0 the honest way *)
    let* () = Program.yield in
    let* won = Program.tas_name 0 in
    if won then Program.return (Some 0) else Program.scan_names ~first:1 ~count:(n - 1)
  in
  (* The leading yield keeps the honest process alive through the race
     window: round-robin here cycles over *runnable indices*, so a
     process finishing early shifts everyone else's turn order, and
     without the yield that shift alone lets the rival's TAS beat the
     prober's.  With it, the fair baseline is clean and the bug needs a
     genuine depth-2 preemption of the prober between its read and TAS. *)
  let honest =
    let* () = Program.yield in
    Program.scan_names ~first:2 ~count:1
  in
  { Executor.memory; programs = [| buggy_prober; rival; honest |]; label = "mutant-double-claim" }

(* τ-device over-admit: the τ-register protocol admits at most τ
   processes through the counting device, which is what guarantees every
   admitted process a name slot.  The mutant polls once and treats
   [Pending] as admission; when the schedule lets both processes submit
   and poll before their device cycles run, τ+1 processes enter the
   slot scan, and the loser "knows" the guarantee holds — so it claims
   the slot anyway (bug depth 1, but invisible to round-robin, whose
   interleaving always resolves the polls). *)
let mutant_tau_over_admit ~seed:_ =
  let n = 2 in
  let tau = Tau_register.create ~base:0 ~tau:1 ~width:2 () in
  let memory = Memory.create ~namespace:2 ~taus:[| tau |] () in
  let open Program.Syntax in
  let program pid =
    let* () = Program.tau_submit ~reg:0 ~bit:pid in
    let* answer = Program.tau_poll 0 in
    let admitted = answer <> Tau_register.Lost_bit in
    if admitted then
      (* scan the τ slot slice; "cannot fail" for a real admittee *)
      let* slot = Program.scan_names ~first:0 ~count:1 in
      match slot with
      | Some s -> Program.return (Some s)
      | None -> Program.return (Some 0) (* the over-admitted loser's unbacked claim *)
    else
      let* won = Program.tas_name 1 in
      Program.return (if won then Some 1 else None)
  in
  {
    Executor.memory;
    programs = Array.init n program;
    label = "mutant-tau-over-admit";
  }

(* Dropped straggler in the Combined shape: stragglers register in the
   backup extension by incrementing a shared counter and taking the
   extension slot it indexes.  The mutant keeps the lost-update race
   (read and increment are separate steps) and, worse, trusts the
   reservation: the TAS on the computed slot is executed but its answer
   ignored.  Two stragglers whose read-increment windows interleave
   compute the same slot and both claim it.  The second straggler
   arrives late (yields first), so round-robin serialises the windows
   and stays clean (bug depth 2). *)
let mutant_dropped_straggler ~seed:_ =
  let memory = Memory.create ~namespace:4 ~words:1 () in
  let open Program.Syntax in
  let main_winner =
    let* won = Program.tas_name 0 in
    if won then Program.return (Some 0) else Program.scan_names ~first:1 ~count:3
  in
  let straggler ~late =
    let rec yields k = if k = 0 then Program.return () else Program.bind Program.yield (fun () -> yields (k - 1)) in
    let* () = yields (if late then 4 else 0) in
    let* c = Program.read_word 0 in
    let* () = Program.write_word ~idx:0 ~value:(c + 1) in
    let slot = 2 + min c 1 in
    let* _won = Program.tas_name slot in
    Program.return (Some slot)
  in
  {
    Executor.memory;
    programs = [| main_winner; straggler ~late:false; straggler ~late:true |];
    label = "mutant-dropped-straggler";
  }

let clean () =
  [
    target ~name:"loose-geometric-n4" ~n:4 ~allow_faults:true ~allow_crashes:true
      (fun ~seed -> loose_geometric ~n:4 ~seed);
    (* Lease-handoff fencing (Renaming_service.Handoff): the returned
       name is guarded by aux-register locks, not a namespace TAS, so
       ownership checking is off; uniqueness of the returned name is the
       property under test.  All traffic goes through Retry, so fault
       mutation is sound. *)
    target ~name:"lease-handoff-n4" ~n:4 ~check_ownership:false ~allow_faults:true
      ~allow_crashes:true
      (fun ~seed -> Renaming_service.Handoff.instance ~n:4 ~seed);
    (* Slice-handoff fencing (Renaming_service.Shard_handoff): the
       router's slice-transfer core — every name of the old epoch is
       fenced by a settle-lock TAS before the epoch bumps and the new
       epoch regrants.  Property: global uniqueness across epochs. *)
    target ~name:"shard-handoff-n4" ~n:4 ~check_ownership:false ~allow_faults:true
      ~allow_crashes:true
      (fun ~seed -> Renaming_service.Shard_handoff.instance ~n:4 ~seed);
    (* At-most-once dedup eviction fencing (Renaming_service.Net_dedup):
       duplicate deliveries of one rid race a fenced evictor; the
       property is that the rid's name is granted by exactly one
       delivery across both dedup epochs. *)
    target ~name:"net-dedup-n4" ~n:4 ~check_ownership:false ~allow_faults:true
      ~allow_crashes:true
      (fun ~seed -> Renaming_service.Net_dedup.instance ~n:4 ~seed);
    target ~name:"combined-geometric-n8" ~n:8 ~allow_faults:true ~allow_crashes:true
      (fun ~seed -> combined_geometric ~n:8 ~seed);
    target ~name:"uniform-probing-n3" ~n:3 ~allow_faults:true ~allow_crashes:true
      (fun ~seed -> uniform_probing ~n:3 ~seed);
    target ~name:"linear-scan-n4" ~n:4 ~allow_faults:true ~allow_crashes:true
      (fun ~seed -> linear_scan ~n:4 ~seed);
    (* Grant/reclaim announce model (Renaming_refine.Grant_model): every
       protocol action is self-reported on the announce word, so this is
       the one target whose whole observable behaviour the refinement
       checker sees verbatim.  Grants live in announces, not namespace
       TASes, so ownership checking is off; settle locks make it legal
       under every schedule and crash.  Transient faults stay off: a
       faulted announce write silently drops an event, and refining an
       incomplete observable trace is meaningless (the spec would blame
       the next legitimate event). *)
    target ~name:"refine-grant-n2" ~n:2 ~check_ownership:false ~allow_crashes:true
      (fun ~seed -> grant_model ~n:2 ~seed);
  ]

let mutants () =
  [
    target ~name:"mutant-double-claim" ~n:3 ~expect_violation:true
      (fun ~seed -> mutant_double_claim ~seed);
    target ~name:"mutant-tau-over-admit" ~n:2 ~tau_cadence:3 ~expect_violation:true
      (fun ~seed -> mutant_tau_over_admit ~seed);
    target ~name:"mutant-dropped-straggler" ~n:3 ~expect_violation:true
      (fun ~seed -> mutant_dropped_straggler ~seed);
    (* Stale-write handoff: the holder validates its lease by re-reading
       the epoch register instead of taking the settle lock — the
       time-of-check/time-of-use bug epoch fencing exists to prevent.
       Round-robin resolves the race benignly; a priority schedule that
       parks the reclaimer until the holder's validation read, then lets
       the claimant commit at the next epoch, yields a double grant. *)
    target ~name:"mutant-lease-stale-write" ~n:3 ~check_ownership:false
      ~expect_violation:true
      (fun ~seed -> Renaming_service.Handoff.instance_stale_write ~n:3 ~seed);
    (* Unfenced slice handoff: the taker hands the slice to the next
       epoch after merely *reading* the old epoch's settle locks — the
       slice moves without the coupled fence.  An owner parked in its
       hold window still commits at the old epoch while the published
       transfer-freedom flag lets the new epoch regrant the same name:
       a cross-epoch double grant reachable at preemption depth 2. *)
    target ~name:"mutant-shard-unfenced-handoff" ~n:3 ~check_ownership:false
      ~expect_violation:true
      (fun ~seed -> Renaming_service.Shard_handoff.instance_unfenced ~n:3 ~seed);
    (* Unfenced dedup eviction: the evictor *reads* the settle lock
       instead of TASing it, then evicts the rid's dedup entry while a
       duplicate delivery is still parked in its hold window — the
       old-epoch commit and the new-epoch re-execution both grant the
       same name.  Clean under fair round-robin (the evictor parks past
       the original's commit); the double grant needs a preemption
       inside the hold window. *)
    target ~name:"mutant-net-dedup-evict" ~n:3 ~check_ownership:false
      ~expect_violation:true
      (fun ~seed -> Renaming_service.Net_dedup.instance_evict ~n:3 ~seed);
  ]

let refine_mutants () =
  [
    (* Post-reclaim double grant: the reclaimer announces the reclaim
       and then re-announces the grant for a session that never
       re-invoked.  Invisible to the safety monitor (no name is ever
       double-held in memory) and to the fair baseline (clients settle
       before the reclaimer's sweep); only the refinement checker, fed
       the announce stream, can flag it — so this mutant belongs to the
       fuzz roster only when the campaign runs with [~refine]. *)
    target ~name:"mutant-refine-regrant" ~n:2 ~check_ownership:false ~allow_crashes:true
      ~expect_violation:true
      (fun ~seed -> grant_model_regrant ~n:2 ~seed);
  ]

let roster () = clean () @ mutants ()

let builder ~name ~n =
  match
    List.find_opt
      (fun t -> String.equal t.Fuzz.fz_name name && t.Fuzz.fz_n = n)
      (roster () @ refine_mutants ())
  with
  | Some t -> Some t.Fuzz.fz_build
  | None -> None
