module Mcheck = Renaming_mcheck.Mcheck
module Shrink = Renaming_faults.Shrink
module Campaign = Renaming_faults.Campaign
module Stream = Renaming_rng.Stream
module Params = Renaming_core.Params

type entry = {
  e_name : string;
  e_n : int;
  e_seed : int64;
  e_check_ownership : bool;
  e_build : seed:int64 -> Renaming_sched.Executor.instance;
  e_bounds : Mcheck.bounds;
  e_baseline : int option;
}

let bounds ?(preemptions = 2) ?(crashes = 0) ?(recoveries = 0) ?(faults = 0)
    ?(max_schedules = 200_000) () =
  {
    Mcheck.default_bounds with
    Mcheck.b_preemptions = preemptions;
    b_crashes = crashes;
    b_recoveries = recoveries;
    b_faults = faults;
    b_max_schedules = max_schedules;
  }

let seed = 0x5EED_2015L

let loose_geometric ~n ~seed =
  Renaming_core.Loose_geometric.instance
    { Renaming_core.Loose_geometric.n; ell = 2 }
    ~stream:(Stream.create seed)

(* max_probes = 2 keeps traces short; the deterministic sweep after the
   probe phase still guarantees termination. *)
let uniform_probing ~n ~seed =
  Renaming_baselines.Uniform_probing.instance
    (Renaming_baselines.Uniform_probing.make_config ~max_probes:2 ~n ~m:n ())
    ~stream:(Stream.create seed)

let linear_scan ~n ~seed:_ =
  Renaming_baselines.Linear_scan.instance { Renaming_baselines.Linear_scan.n; m = n }

let tight ~n ~seed =
  let params = Params.make ~policy:Params.Mass_conserving ~n () in
  Renaming_core.Tight.instance ~params ~stream:(Stream.create seed) ()

let grant_model ~n ~seed = Renaming_refine.Grant_model.instance ~n ~seed

let entry ?(check_ownership = true) ?baseline ~name ~n ~build ~bounds () =
  {
    e_name = name;
    e_n = n;
    e_seed = seed;
    e_check_ownership = check_ownership;
    e_build = build;
    e_bounds = bounds;
    e_baseline = baseline;
  }

(* [baseline] is the sleep-set (legacy-dfs) schedule count of the entry,
   measured once and frozen: the denominator of the DPOR reduction ratio
   reported in results/mcheck.json.  Entries added after the DPOR switch
   (the n5 configurations, infeasible under the legacy engine's budget)
   have no baseline. *)
let roster () =
  [
    (* Schedule-only exploration, preemption bound 2. *)
    entry ~name:"loose-geometric-n4" ~n:4 ~baseline:8
      ~build:(fun ~seed -> loose_geometric ~n:4 ~seed)
      ~bounds:(bounds ~preemptions:2 ()) ();
    entry ~name:"uniform-probing-n3" ~n:3 ~baseline:5
      ~build:(fun ~seed -> uniform_probing ~n:3 ~seed)
      ~bounds:(bounds ~preemptions:2 ()) ();
    entry ~name:"linear-scan-n3" ~n:3 ~baseline:18
      ~build:(fun ~seed -> linear_scan ~n:3 ~seed)
      ~bounds:(bounds ~preemptions:2 ()) ();
    (* Four entries run at a preemption bound one notch above the
       pre-DPOR roster (raised when DPOR landed): at very low bounds
       sleep-set pruning under a preemption budget is lossy in both
       directions — it revisits some Mazurkiewicz classes and misses
       others outright — so the legacy count there understates the work
       an exhaustive-per-class engine must do.  The deeper bounds are
       affordable under DPOR, and the baselines are re-frozen legacy
       counts at the same (new) bounds. *)
    entry ~name:"linear-scan-n4" ~n:4 ~baseline:376
      ~build:(fun ~seed -> linear_scan ~n:4 ~seed)
      ~bounds:(bounds ~preemptions:3 ()) ();
    (* Tight needs n >= 8 (Params.make), so its traces are an order of
       magnitude longer; one preemption keeps it in budget. *)
    entry ~name:"tight-n8" ~n:8 ~baseline:40320
      ~build:(fun ~seed -> tight ~n:8 ~seed)
      ~bounds:(bounds ~preemptions:0 ()) ();
    (* The lease-handoff fencing protocol (Renaming_service.Handoff):
       no process TASes a namespace register for the name it returns, so
       ownership checking is off — the property is uniqueness of the
       returned name, which the monitor checks regardless. *)
    entry ~name:"lease-handoff-n3" ~n:3 ~check_ownership:false ~baseline:44
      ~build:(fun ~seed -> Renaming_service.Handoff.instance ~n:3 ~seed)
      ~bounds:(bounds ~preemptions:3 ()) ();
    entry ~name:"lease-handoff-n4" ~n:4 ~check_ownership:false ~baseline:76
      ~build:(fun ~seed -> Renaming_service.Handoff.instance ~n:4 ~seed)
      ~bounds:(bounds ~preemptions:2 ()) ();
    entry ~name:"lease-handoff-n5" ~n:5 ~check_ownership:false
      ~build:(fun ~seed -> Renaming_service.Handoff.instance ~n:5 ~seed)
      ~bounds:(bounds ~preemptions:2 ()) ();
    (* The slice-handoff fencing protocol (Renaming_service.Shard_handoff):
       the router's ownership-transfer core — a whole slice of names is
       fenced name-by-name and re-granted under a bumped epoch.  Same
       aux-register guard structure as lease-handoff, so ownership
       checking is off; the property is global uniqueness of every
       returned name across both epochs. *)
    entry ~name:"shard-handoff-n3" ~n:3 ~check_ownership:false ~baseline:130
      ~build:(fun ~seed -> Renaming_service.Shard_handoff.instance ~n:3 ~seed)
      ~bounds:(bounds ~preemptions:5 ()) ();
    entry ~name:"shard-handoff-n4" ~n:4 ~check_ownership:false ~baseline:212
      ~build:(fun ~seed -> Renaming_service.Shard_handoff.instance ~n:4 ~seed)
      ~bounds:(bounds ~preemptions:3 ()) ();
    entry ~name:"shard-handoff-n5" ~n:5 ~check_ownership:false
      ~build:(fun ~seed -> Renaming_service.Shard_handoff.instance ~n:5 ~seed)
      ~bounds:(bounds ~preemptions:2 ()) ();
    (* The at-most-once retry/dedup/fence protocol (Renaming_service.Net_dedup):
       one request delivered several times, eviction fenced by the same
       settle lock the fresh execution commits through.  Grants live in
       aux locks, so ownership checking is off; the property is that the
       rid's name is returned by exactly one delivery across both dedup
       epochs.  Post-DPOR addition, so no legacy baseline. *)
    entry ~name:"net-dedup-n3" ~n:3 ~check_ownership:false
      ~build:(fun ~seed -> Renaming_service.Net_dedup.instance ~n:3 ~seed)
      ~bounds:(bounds ~preemptions:4 ()) ();
    entry ~name:"net-dedup-n4" ~n:4 ~check_ownership:false
      ~build:(fun ~seed -> Renaming_service.Net_dedup.instance ~n:4 ~seed)
      ~bounds:(bounds ~preemptions:3 ()) ();
    (* The grant/reclaim announce model (Renaming_refine.Grant_model):
       every protocol action is self-reported on the announce word, so
       under [renaming mcheck]'s refinement ride-along this entry proves
       the model spec-legal on *every* schedule within bounds — crashes
       and recoveries included, which is exactly where the spec's
       crash-abandons-claims rule earns its keep.  Post-DPOR addition,
       so no legacy baseline. *)
    entry ~name:"refine-grant-n2" ~n:2 ~check_ownership:false
      ~build:(fun ~seed -> grant_model ~n:2 ~seed)
      ~bounds:(bounds ~preemptions:3 ~crashes:1 ~recoveries:1 ()) ();
    (* Crash/recovery and transient-fault injection variants. *)
    entry ~name:"uniform-probing-n3-crash" ~n:3 ~baseline:173
      ~build:(fun ~seed -> uniform_probing ~n:3 ~seed)
      ~bounds:(bounds ~preemptions:1 ~crashes:1 ~recoveries:1 ()) ();
    entry ~name:"linear-scan-n3-crash" ~n:3 ~baseline:468
      ~build:(fun ~seed -> linear_scan ~n:3 ~seed)
      ~bounds:(bounds ~preemptions:2 ~crashes:1 ~recoveries:1 ()) ();
    entry ~name:"uniform-probing-n3-fault" ~n:3 ~baseline:59
      ~build:(fun ~seed -> uniform_probing ~n:3 ~seed)
      ~bounds:(bounds ~preemptions:1 ~faults:1 ()) ();
    entry ~name:"loose-geometric-n4-fault" ~n:4 ~baseline:207
      ~build:(fun ~seed -> loose_geometric ~n:4 ~seed)
      ~bounds:(bounds ~preemptions:1 ~faults:1 ()) ();
    entry ~name:"lease-handoff-n3-fault" ~n:3 ~check_ownership:false ~baseline:106
      ~build:(fun ~seed -> Renaming_service.Handoff.instance ~n:3 ~seed)
      ~bounds:(bounds ~preemptions:1 ~faults:1 ()) ();
    entry ~name:"shard-handoff-n3-fault" ~n:3 ~check_ownership:false ~baseline:269
      ~build:(fun ~seed -> Renaming_service.Shard_handoff.instance ~n:3 ~seed)
      ~bounds:(bounds ~preemptions:1 ~faults:1 ()) ();
  ]

let tier1 () =
  let keep =
    [
      "uniform-probing-n3"; "linear-scan-n3"; "uniform-probing-n3-crash";
      "lease-handoff-n3"; "lease-handoff-n4"; "shard-handoff-n3"; "shard-handoff-n4";
      "shard-handoff-n5"; "net-dedup-n3"; "refine-grant-n2";
    ]
  in
  List.filter (fun e -> List.mem e.e_name keep) (roster ())

let target e =
  {
    Mcheck.t_name = e.e_name;
    t_build = (fun () -> e.e_build ~seed:e.e_seed);
    t_check_ownership = e.e_check_ownership;
  }

let run_entry ?engine ?obs ?refine e =
  let refine =
    Option.map
      (fun make ->
        let namespace =
          Renaming_sched.Memory.namespace
            (e.e_build ~seed:e.e_seed).Renaming_sched.Executor.memory
        in
        fun () -> make ~name:e.e_name ~namespace)
      refine
  in
  Mcheck.check ?engine ~bounds:e.e_bounds ?baseline:e.e_baseline ?obs ?refine (target e)

let repro_of_case e (c : Mcheck.case) =
  match c.Mcheck.v_shrunk with
  | None -> None
  | Some r ->
    Some
      {
        Shrink.rp_algorithm = e.e_name;
        rp_n = e.e_n;
        rp_seed = e.e_seed;
        rp_check_ownership = e.e_check_ownership;
        rp_max_ticks = e.e_bounds.Mcheck.b_max_ticks;
        rp_tau_cadence = 1;
        rp_kind = c.Mcheck.v_kind;
        rp_trace_format = Shrink.Condensed;
        rp_choices = r.Shrink.r_choices;
      }

let builder ~name ~n =
  match List.find_opt (fun e -> String.equal e.e_name name && e.e_n = n) (roster ()) with
  | Some e -> Some e.e_build
  | None -> (
    match
      List.find_opt
        (fun (a : Campaign.algorithm) -> String.equal a.Campaign.algo_name name)
        (Chaos.algorithms ~n)
    with
    | Some a -> Some a.Campaign.build
    | None -> Fuzz_roster.builder ~name ~n)

let check_ownership_of ~name =
  (* Handoff-protocol targets return a name they never TASed in the
     namespace (the grant lives in aux registers), so ownership checking
     would misfire; uniqueness is still checked. *)
  let prefixed p = String.length name >= String.length p && String.sub name 0 (String.length p) = p in
  not
    (prefixed "lease-handoff" || prefixed "mutant-lease" || prefixed "shard-handoff"
   || prefixed "mutant-shard" || prefixed "net-dedup" || prefixed "mutant-net"
   || prefixed "refine-grant" || prefixed "mutant-refine")
