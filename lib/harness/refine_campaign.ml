module Campaign = Renaming_faults.Campaign
module Shrink = Renaming_faults.Shrink
module Mcheck = Renaming_mcheck.Mcheck
module Fuzz = Renaming_fuzz.Fuzz
module Check = Renaming_refine.Check
module Exec_adapter = Renaming_refine.Exec_adapter
module Lease_adapter = Renaming_refine.Lease_adapter
module Longlived = Renaming_longlived.Longlived
module Churn = Renaming_service.Churn
module Shard_churn = Renaming_service.Shard_churn
module Net_churn = Renaming_service.Net_churn
module Router = Renaming_service.Router

type backend_report = {
  b_name : string;
  b_backend : string;  (* executor | service | router | net *)
  b_runs : int;
  b_events : int;
  b_steps : int;
  b_stutters : int;
  b_violations : int;
  b_first : string option;
}

type mutant_report = {
  m_name : string;
  m_found : bool;
  m_kind : string option;
  m_shrunk : bool;
  m_choices : int;  (* length of the 1-minimal prefix *)
  m_roundtrip : bool;  (* repro survives to_string/of_string *)
  m_repro : Shrink.repro option;
}

type summary = { smoke : bool; backends : backend_report list; mutant : mutant_report }

let backend_ok b = b.b_violations = 0

let mutant_ok m = m.m_found && m.m_shrunk && m.m_roundtrip

let ok s = List.for_all backend_ok s.backends && mutant_ok s.mutant

(* --- checker bookkeeping: every adapter a stage creates is retained so
   its per-trace counts can be totalled after the stage returns --- *)

type tally = { mutable checks : Check.t list }

let tally () = { checks = [] }

let remember tally check = tally.checks <- check :: tally.checks

let report ~name ~backend ~runs tally =
  let sum f = List.fold_left (fun acc c -> acc + f c) 0 tally.checks in
  let first =
    List.fold_left
      (fun acc c ->
        match acc with
        | Some _ -> acc
        | None ->
            Option.map (fun v -> Format.asprintf "%a" Check.pp_violation v) (Check.first_violation c))
      None (List.rev tally.checks)
  in
  {
    b_name = name;
    b_backend = backend;
    b_runs = runs;
    b_events = sum Check.events;
    b_steps = sum Check.steps;
    b_stutters = sum Check.stutters;
    b_violations = sum Check.violations;
    b_first = first;
  }

(* The executor-side factory shape shared by the chaos / mcheck / fuzz
   [?refine] hooks: fresh adapter per run, retained for counting. *)
let exec_factory ?obs tally ~name ~namespace =
  let adapter = Exec_adapter.create ?obs ~mode:(Exec_adapter.mode_of_name name) ~namespace () in
  remember tally (Exec_adapter.check adapter);
  Exec_adapter.hook adapter

(* --- executor backend, chaos leg: the tier-1 cross-product (trimmed to
   one seed and two algorithms in smoke mode) with the refinement hook
   riding every run --- *)

let chaos_stage ?obs ~smoke () =
  let spec = Chaos.tier1_spec () in
  let spec =
    if smoke then
      {
        spec with
        Campaign.algorithms = (match spec.Campaign.algorithms with a :: b :: _ -> [ a; b ] | l -> l);
        adversaries = (match spec.Campaign.adversaries with a :: b :: _ -> [ a; b ] | l -> l);
        seeds = Array.sub spec.Campaign.seeds 0 1;
      }
    else spec
  in
  let t = tally () in
  let summary = Campaign.run ?obs ~refine:(exec_factory ?obs t) spec in
  report ~name:"executor-chaos" ~backend:"executor" ~runs:summary.Campaign.total_runs t

(* --- executor backend, mcheck leg: systematic exploration of the
   announce model (crashes included — the spec's crash rule is load
   bearing there) plus a handoff protocol and a paper algorithm --- *)

let mcheck_stage ?obs ~smoke () =
  let keep =
    if smoke then [ "refine-grant-n2" ]
    else [ "refine-grant-n2"; "lease-handoff-n3"; "net-dedup-n3"; "uniform-probing-n3"; "linear-scan-n3" ]
  in
  let entries =
    List.filter (fun e -> List.mem e.Mcheck_roster.e_name keep) (Mcheck_roster.roster ())
  in
  let t = tally () in
  let runs =
    List.fold_left
      (fun acc e ->
        let stats =
          Mcheck.check ~bounds:e.Mcheck_roster.e_bounds
            ~refine:(fun () ->
              exec_factory ?obs t ~name:e.Mcheck_roster.e_name
                ~namespace:
                  (Renaming_sched.Memory.namespace
                     (e.Mcheck_roster.e_build ~seed:e.Mcheck_roster.e_seed).Renaming_sched.Executor.memory))
            ?obs (Mcheck_roster.target e)
        in
        acc + stats.Mcheck.s_schedules)
      0 entries
  in
  report ~name:"executor-mcheck" ~backend:"executor" ~runs t

(* --- executor backend, fuzz leg: the clean roster under PCT + mutation
   schedules, refinement hook on every run and every shrink replay --- *)

let fuzz_stage ?obs ~smoke () =
  let targets =
    if smoke then
      List.filter
        (fun tg -> List.mem tg.Fuzz.fz_name [ "refine-grant-n2"; "lease-handoff-n4" ])
        (Fuzz_roster.clean ())
    else Fuzz_roster.clean ()
  in
  let t = tally () in
  let summary =
    Fuzz.run ?obs ~refine:(exec_factory ?obs t) ~seed:0x5EEDL
      ~iterations:(if smoke then 40 else 200)
      targets
  in
  let runs = List.fold_left (fun acc r -> acc + r.Fuzz.r_iterations + 1) 0 summary.Fuzz.s_results in
  report ~name:"executor-fuzz" ~backend:"executor" ~runs t

(* --- lease-service backend: closed-loop churn with crash-restart and
   stale ghosts, observed through the audit tap --- *)

let service_stage ?obs ~smoke () =
  let cfg =
    Churn.make_config
      ~clients:(if smoke then 24 else 64)
      ~sessions_target:(if smoke then 300 else 2_000)
      ~capacity:32 ()
  in
  let namespace = Longlived.namespace_for ~sessions:cfg.Churn.capacity ~epsilon:cfg.Churn.epsilon in
  let t = tally () in
  let seeds = if smoke then [ 0x5EED_11L ] else [ 0x5EED_11L; 0x5EED_12L ] in
  List.iter
    (fun seed ->
      let adapter = Lease_adapter.create ?obs ~namespace () in
      remember t (Lease_adapter.check adapter);
      ignore (Churn.run ~tap:(Lease_adapter.service_tap adapter) cfg ~seed))
    seeds;
  report ~name:"service-churn" ~backend:"service" ~runs:(List.length seeds) t

(* --- sharded-router backend: slice handoffs (some crashed mid-transit),
   shard stalls and bursts; absorbs arrive as [Tap_absorb] and refine to
   reclaims of every name the spec still believes held in the slice --- *)

let router_stage ?obs ~smoke () =
  let cfg =
    Shard_churn.make_config
      ~clients:(if smoke then 24 else 64)
      ~sessions_target:(if smoke then 300 else 2_000)
      ~handoff:{ Shard_churn.h_every = 6.0; h_crash_src = 0.1; h_crash_dst = 0.1 }
      ~stall:{ Shard_churn.st_every = 11.0; st_duration = 9.0 }
      ()
  in
  let rcfg = cfg.Shard_churn.router in
  let slice_width =
    Longlived.namespace_for ~sessions:rcfg.Router.slice_capacity ~epsilon:rcfg.Router.epsilon
  in
  let namespace = rcfg.Router.slices * slice_width in
  let t = tally () in
  let seeds = if smoke then [ 0x5EED_21L ] else [ 0x5EED_21L; 0x5EED_22L ] in
  List.iter
    (fun seed ->
      let adapter = Lease_adapter.create ?obs ~namespace () in
      remember t (Lease_adapter.check adapter);
      ignore (Shard_churn.run ~tap:(Lease_adapter.router_tap adapter ~slice_width) cfg ~seed))
    seeds;
  report ~name:"router-churn" ~backend:"router" ~runs:(List.length seeds) t

(* --- net backend: the same router observed through an unreliable
   transport — retransmits, dedup replays and fenced ghosts never reach
   the audit tap, so they refine to stutters by construction --- *)

let net_stage ?obs ~smoke () =
  let cfg =
    Net_churn.make_config
      ~clients:(if smoke then 24 else 64)
      ~sessions_target:(if smoke then 300 else 1_500)
      ~partition:{ Net_churn.p_every = 40.0; p_duration = 4.0; p_both = 0.5 }
      ~shard_crash:{ Net_churn.c_every = 60.0; c_restart = 10.0 }
      ()
  in
  let rcfg = cfg.Net_churn.router in
  let slice_width =
    Longlived.namespace_for ~sessions:rcfg.Router.slice_capacity ~epsilon:rcfg.Router.epsilon
  in
  let namespace = rcfg.Router.slices * slice_width in
  let t = tally () in
  let seeds = if smoke then [ 0x5EED_31L ] else [ 0x5EED_31L; 0x5EED_32L ] in
  List.iter
    (fun seed ->
      let adapter = Lease_adapter.create ?obs ~namespace () in
      remember t (Lease_adapter.check adapter);
      ignore (Net_churn.run ~tap:(Lease_adapter.router_tap adapter ~slice_width) cfg ~seed))
    seeds;
  report ~name:"net-churn" ~backend:"net" ~runs:(List.length seeds) t

(* --- seeded-mutant self-test: the post-reclaim double grant must be
   found by the refinement-aware fuzzer, shrink to a 1-minimal [.repro],
   and survive the artifact round-trip --- *)

let mutant_stage ?obs () =
  let t = tally () in
  let summary =
    Fuzz.run ?obs ~refine:(exec_factory ?obs t) ~seed:1L ~iterations:200
      (Fuzz_roster.refine_mutants ())
  in
  let name = "mutant-refine-regrant" in
  let violation =
    List.concat_map (fun r -> r.Fuzz.r_violations) summary.Fuzz.s_results
    |> List.find_opt (fun v ->
           String.length v.Fuzz.v_kind >= 7 && String.sub v.Fuzz.v_kind 0 7 = "refine:")
  in
  match violation with
  | None -> { m_name = name; m_found = false; m_kind = None; m_shrunk = false; m_choices = 0; m_roundtrip = false; m_repro = None }
  | Some v ->
      let repro = v.Fuzz.v_repro in
      let roundtrip =
        match repro with
        | None -> false
        | Some r -> (
            match Shrink.repro_of_string (Shrink.repro_to_string r) with
            | Ok r' ->
                r'.Shrink.rp_algorithm = r.Shrink.rp_algorithm
                && r'.Shrink.rp_kind = r.Shrink.rp_kind
                && r'.Shrink.rp_choices = r.Shrink.rp_choices
            | Error _ -> false)
      in
      {
        m_name = name;
        m_found = true;
        m_kind = Some v.Fuzz.v_kind;
        m_shrunk = repro <> None;
        m_choices = (match repro with Some r -> List.length r.Shrink.rp_choices | None -> 0);
        m_roundtrip = roundtrip;
        m_repro = repro;
      }

let run ?obs ?(progress = fun (_ : string) -> ()) ?(smoke = false) () =
  progress "executor-chaos";
  let chaos = chaos_stage ?obs ~smoke () in
  progress "executor-mcheck";
  let mcheck = mcheck_stage ?obs ~smoke () in
  progress "executor-fuzz";
  let fuzz = fuzz_stage ?obs ~smoke () in
  progress "service-churn";
  let service = service_stage ?obs ~smoke () in
  progress "router-churn";
  let router = router_stage ?obs ~smoke () in
  progress "net-churn";
  let net = net_stage ?obs ~smoke () in
  progress "mutant-self-test";
  let mutant = mutant_stage ?obs () in
  { smoke; backends = [ chaos; mcheck; fuzz; service; router; net ]; mutant }

(* --- JSON (hand-rolled; the toolchain has no JSON library and the
   driver forbids adding one) --- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let backend_to_json b =
  Printf.sprintf
    "{\"name\":\"%s\",\"backend\":\"%s\",\"ok\":%b,\"runs\":%d,\"events\":%d,\"steps\":%d,\"stutters\":%d,\"violations\":%d,\"first_violation\":%s}"
    (json_escape b.b_name) (json_escape b.b_backend) (backend_ok b) b.b_runs b.b_events b.b_steps
    b.b_stutters b.b_violations
    (match b.b_first with None -> "null" | Some s -> "\"" ^ json_escape s ^ "\"")

let mutant_to_json m =
  Printf.sprintf
    "{\"name\":\"%s\",\"ok\":%b,\"found\":%b,\"kind\":%s,\"shrunk\":%b,\"minimal_choices\":%d,\"roundtrip\":%b}"
    (json_escape m.m_name) (mutant_ok m) m.m_found
    (match m.m_kind with None -> "null" | Some k -> "\"" ^ json_escape k ^ "\"")
    m.m_shrunk m.m_choices m.m_roundtrip

let to_json s =
  Printf.sprintf
    "{\"schema\":\"renaming.refine/1\",\"smoke\":%b,\"ok\":%b,\"backends\":[\n%s\n],\"mutant\":%s}"
    s.smoke (ok s)
    (String.concat ",\n" (List.map backend_to_json s.backends))
    (mutant_to_json s.mutant)

let pp fmt s =
  Format.fprintf fmt "@[<v>refinement harness (%s):@ " (if s.smoke then "smoke" else "full");
  Format.fprintf fmt "%-16s %-8s %6s %9s %9s %9s %5s  %s@ " "stage" "backend" "runs" "events"
    "steps" "stutters" "viol" "status";
  List.iter
    (fun b ->
      Format.fprintf fmt "%-16s %-8s %6d %9d %9d %9d %5d  %s@ " b.b_name b.b_backend b.b_runs
        b.b_events b.b_steps b.b_stutters b.b_violations
        (match b.b_first with
        | None -> "clean"
        | Some v -> Printf.sprintf "VIOLATION: %s" v))
    s.backends;
  Format.fprintf fmt "mutant %s: %s@ " s.mutant.m_name
    (if mutant_ok s.mutant then
       Printf.sprintf "caught (%s), shrunk to %d choices, artifact round-trips"
         (Option.value ~default:"?" s.mutant.m_kind)
         s.mutant.m_choices
     else if not s.mutant.m_found then "MISSED (no refine violation found)"
     else if not s.mutant.m_shrunk then "found but NOT SHRUNK"
     else "found but artifact does NOT round-trip");
  Format.fprintf fmt "@]"
