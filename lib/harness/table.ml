(* Careful with to_json below: rows and notes are stored reversed. *)
type t = {
  title : string;
  columns : string list;
  mutable rows : string list list;  (* reversed *)
  mutable notes : string list;  (* reversed *)
}

let create ~title ~columns = { title; columns; rows = []; notes = [] }

let add_row t row =
  if List.length row <> List.length t.columns then
    invalid_arg "Table.add_row: row width mismatch";
  t.rows <- row :: t.rows

let add_note t note = t.notes <- note :: t.notes

let render t =
  let rows = List.rev t.rows in
  let all = t.columns :: rows in
  let widths =
    List.fold_left
      (fun acc row -> List.map2 (fun w cell -> max w (String.length cell)) acc row)
      (List.map (fun _ -> 0) t.columns)
      all
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  let pad cell width = cell ^ String.make (width - String.length cell) ' ' in
  let emit_row row =
    let cells = List.map2 pad row widths in
    Buffer.add_string buf ("  " ^ String.concat "  " cells ^ "\n")
  in
  emit_row t.columns;
  let rule = List.map (fun w -> String.make w '-') widths in
  emit_row rule;
  List.iter emit_row rows;
  List.iter (fun note -> Buffer.add_string buf ("  * " ^ note ^ "\n")) (List.rev t.notes);
  Buffer.contents buf

let escape_csv cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let to_csv t =
  let buf = Buffer.create 1024 in
  let emit row = Buffer.add_string buf (String.concat "," (List.map escape_csv row) ^ "\n") in
  emit t.columns;
  List.iter emit (List.rev t.rows);
  Buffer.contents buf

let to_json t =
  let module Json = Renaming_obs.Json in
  let strings l = Json.List (List.map (fun s -> Json.String s) l) in
  Json.Obj
    [
      ("title", Json.String t.title);
      ("columns", strings t.columns);
      ("rows", Json.List (List.map strings (List.rev t.rows)));
      ("notes", strings (List.rev t.notes));
    ]

let cell_int = string_of_int

let cell_float ?(decimals = 2) v = Printf.sprintf "%.*f" decimals v

let cell_bool b = if b then "yes" else "NO"
