(** Column-aligned text tables — how every experiment reports its
    rows, and the CSV serialisation used for offline plotting. *)

type t

val create : title:string -> columns:string list -> t

val add_row : t -> string list -> unit
(** Raises [Invalid_argument] if the row width differs from the
    header. *)

val add_note : t -> string -> unit
(** Free-form annotation rendered after the table (claims, fits,
    verdicts). *)

val render : t -> string

val to_csv : t -> string

val to_json : t -> Renaming_obs.Json.t
(** [{"title", "columns", "rows", "notes"}] — rows in display order;
    the payload `make bench` embeds in results/bench.json. *)

val cell_int : int -> string
val cell_float : ?decimals:int -> float -> string
val cell_bool : bool -> string
