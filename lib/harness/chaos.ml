module Campaign = Renaming_faults.Campaign
module Crash_pattern = Renaming_workload.Crash_pattern
module Adversary = Renaming_sched.Adversary
module Stream = Renaming_rng.Stream
module Params = Renaming_core.Params

(* Every roster algorithm claims names exclusively by winning namespace
   TAS registers, so the monitor's ownership check is valid for all of
   them. *)
let algorithms ~n : Campaign.algorithm list =
  [
    {
      Campaign.algo_name = "loose-geometric";
      build =
        (fun ~seed ->
          Renaming_core.Loose_geometric.instance
            { Renaming_core.Loose_geometric.n; ell = 2 }
            ~stream:(Stream.create seed));
      check_ownership = true;
    };
    {
      Campaign.algo_name = "loose-clustered";
      build =
        (fun ~seed ->
          Renaming_core.Loose_clustered.instance
            { Renaming_core.Loose_clustered.n; ell = 2 }
            ~stream:(Stream.create seed));
      check_ownership = true;
    };
    {
      Campaign.algo_name = "combined-geometric";
      build =
        (fun ~seed ->
          Renaming_core.Combined.instance
            { Renaming_core.Combined.n; variant = Renaming_core.Combined.Geometric { ell = 2 } }
            ~stream:(Stream.create seed));
      check_ownership = true;
    };
    {
      Campaign.algo_name = "tight";
      build =
        (fun ~seed ->
          let params = Params.make ~policy:Params.Mass_conserving ~n () in
          Renaming_core.Tight.instance ~params ~stream:(Stream.create seed) ());
      check_ownership = true;
    };
    {
      Campaign.algo_name = "adaptive";
      build =
        (fun ~seed ->
          Renaming_core.Adaptive.instance
            (Renaming_core.Adaptive.make_config ~k:n ())
            ~stream:(Stream.create seed));
      check_ownership = true;
    };
    {
      Campaign.algo_name = "uniform-probing";
      build =
        (fun ~seed ->
          Renaming_baselines.Uniform_probing.instance
            (Renaming_baselines.Uniform_probing.make_config ~n ~m:n ())
            ~stream:(Stream.create seed));
      check_ownership = true;
    };
    {
      Campaign.algo_name = "linear-scan";
      build =
        (fun ~seed:_ -> Renaming_baselines.Linear_scan.instance { Renaming_baselines.Linear_scan.n; m = n });
      check_ownership = true;
    };
  ]

let adversaries () : Campaign.adversary_spec list =
  [
    { Campaign.adv_name = "round-robin"; make_adversary = (fun ~seed:_ -> Adversary.round_robin ()) };
    {
      Campaign.adv_name = "uniform";
      make_adversary =
        (fun ~seed -> Adversary.uniform (Stream.fork_named (Stream.create seed) ~name:"chaos-adv"));
    };
    { Campaign.adv_name = "adaptive-contention"; make_adversary = (fun ~seed:_ -> Adversary.adaptive_contention) };
    { Campaign.adv_name = "colluding"; make_adversary = (fun ~seed:_ -> Adversary.colluding) };
  ]

let crash_rng seed = Stream.fork_named (Stream.create seed) ~name:"chaos-crashes"

(* Crashes sized to bite: a quarter of the processes, spread over a
   horizon on the order of the fault-free run length. *)
let failures n = max 1 (n / 4)

let patterns ~n : Campaign.pattern list =
  let horizon = max 2 (2 * n) in
  let recover ~n = Some (max 1 (n / 2)) in
  [
    Campaign.no_crashes;
    {
      Campaign.pat_name = "crash-permanent";
      schedule =
        (fun ~seed ~n -> Crash_pattern.random ~rng:(crash_rng seed) ~n ~failures:(failures n) ~horizon);
      recover_after = (fun ~n:_ -> None);
    };
    {
      Campaign.pat_name = "crash-recovery";
      schedule =
        (fun ~seed ~n -> Crash_pattern.random ~rng:(crash_rng seed) ~n ~failures:(failures n) ~horizon);
      recover_after = recover;
    };
    {
      Campaign.pat_name = "burst-recovery";
      schedule =
        (fun ~seed ~n ->
          Crash_pattern.burst ~rng:(crash_rng seed) ~n ~failures:(failures n) ~at:(horizon / 4)
            ~width:(max 1 (n / 8)));
      recover_after = recover;
    };
  ]

let default_fault_rates = [ 0.; 0.02; 0.1 ]

let spec ?(n = 48) ?(seed_count = 3) ?(fault_rates = default_fault_rates) ?(max_ticks = 2_000_000)
    () : Campaign.spec =
  {
    Campaign.algorithms = algorithms ~n;
    adversaries = adversaries ();
    patterns = patterns ~n;
    fault_rates;
    seeds = Seeds.take seed_count;
    max_ticks;
  }

(* The fast deterministic subset wired into `dune runtest`: three
   algorithms, three adversaries, recovery + transient faults, small n. *)
let tier1_spec () : Campaign.spec =
  let n = 20 in
  let keep names xs ~name_of = List.filter (fun x -> List.mem (name_of x) names) xs in
  {
    Campaign.algorithms =
      keep
        [ "loose-geometric"; "uniform-probing"; "linear-scan" ]
        (algorithms ~n)
        ~name_of:(fun a -> a.Campaign.algo_name);
    adversaries =
      keep
        [ "round-robin"; "adaptive-contention"; "colluding" ]
        (adversaries ())
        ~name_of:(fun a -> a.Campaign.adv_name);
    patterns =
      keep
        [ "crash-recovery"; "burst-recovery" ]
        (patterns ~n)
        ~name_of:(fun p -> p.Campaign.pat_name);
    fault_rates = [ 0.05 ];
    seeds = Seeds.take 2;
    max_ticks = 200_000;
  }
