(** The refinement harness behind [renaming refine] / [make refine]:
    every backend's observable trace checked against the one centralized
    {!Renaming_refine.Spec}, plus the seeded spec-divergence self-test.

    Six stages over the four backends:

    - {b executor} (three legs): the tier-1 chaos cross-product, a
      bounded-model-checking subset (crashes included — systematic
      coverage of the spec's crash-abandons-claims rule), and the clean
      fuzz roster — each with the {!Renaming_refine.Exec_adapter} hook
      riding every run;
    - {b service}: lease-service churn observed through the audit tap
      ({!Renaming_refine.Lease_adapter});
    - {b router}: sharded churn with slice handoffs, stalls and
      mid-transit crashes;
    - {b net}: the same router over the unreliable transport —
      retransmits, dedup replays and fenced ghosts never reach the
      audit tap, so they refine to stutters by construction.

    The mutant self-test runs the refinement-aware fuzzer over
    {!Fuzz_roster.refine_mutants} and demands the post-reclaim double
    grant be caught, ddmin-shrunk and round-tripped through the
    [.repro] format.

    Fully deterministic: every stage's seeds are pinned. *)

type backend_report = {
  b_name : string;  (** stage name, e.g. ["executor-chaos"] *)
  b_backend : string;  (** ["executor"] / ["service"] / ["router"] / ["net"] *)
  b_runs : int;  (** traces checked *)
  b_events : int;  (** adapted events fed to the spec *)
  b_steps : int;
  b_stutters : int;
  b_violations : int;  (** must be 0 *)
  b_first : string option;  (** first inexplicable event, rendered *)
}

type mutant_report = {
  m_name : string;
  m_found : bool;
  m_kind : string option;  (** the ["refine:..."] violation kind *)
  m_shrunk : bool;
  m_choices : int;  (** length of the 1-minimal prefix *)
  m_roundtrip : bool;  (** artifact survives [repro_to_string]/[of_string] *)
  m_repro : Renaming_faults.Shrink.repro option;
}

type summary = { smoke : bool; backends : backend_report list; mutant : mutant_report }

val run :
  ?obs:Renaming_obs.Obs.t ->
  ?progress:(string -> unit) ->
  ?smoke:bool ->
  unit ->
  summary
(** [smoke] (default [false]) trims every stage to a seconds-long
    subset.  [progress] is called with each stage name as it starts.
    With [obs], the shared [refine/events], [refine/stutters] and
    [refine/violations] counters accumulate across all stages (plus the
    usual per-campaign counters of the underlying runners). *)

val ok : summary -> bool
(** Zero violations on every backend {e and} the mutant caught, shrunk
    and round-tripped. *)

val backend_ok : backend_report -> bool
val mutant_ok : mutant_report -> bool

val to_json : summary -> string
(** The [results/refine.json] payload (schema [renaming.refine/1]). *)

val pp : Format.formatter -> summary -> unit
