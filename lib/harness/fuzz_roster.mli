(** The fuzzing roster: what [renaming fuzz] runs.

    Two halves:

    - {!clean}: small instances of real algorithms (loose-geometric,
      combined-geometric, uniform-probing, linear-scan).  The fuzzer
      must report zero violations here — any hit is a real bug (or a
      monitor blind spot) and fails the campaign.
    - {!mutants}: deliberately seeded schedule-depth bugs — a
      double-claim in the loose-geometric probe path, a τ-device
      over-admit, and a dropped straggler in the Combined backup path.
      Each is clean under the fair round-robin baseline and breaks only
      under a rare bounded-depth interleaving; the fuzzer {e must} find
      and shrink every one within its budget, or the campaign fails.
      This is the fuzzing analogue of
      [renaming analyze --inject broken-footprint]. *)

val clean : unit -> Renaming_fuzz.Fuzz.target list

val mutants : unit -> Renaming_fuzz.Fuzz.target list

val refine_mutants : unit -> Renaming_fuzz.Fuzz.target list
(** Mutants only the refinement checker can see (their bug is a
    spec-inexplicable announce, not a memory-level safety violation):
    today the post-reclaim double grant of
    {!Renaming_refine.Grant_model.instance_regrant}.  Append them to the
    campaign only when {!Renaming_fuzz.Fuzz.run} gets [~refine] — without
    it they can never be found and would fail the campaign vacuously. *)

val roster : unit -> Renaming_fuzz.Fuzz.target list
(** [clean () @ mutants ()] — the refine-blind campaign;
    {!refine_mutants} ride along only under [~refine]. *)

val builder :
  name:string ->
  n:int ->
  (seed:int64 -> Renaming_sched.Executor.instance) option
(** Resolve a roster target by repro header, for [renaming shrink]
    replay of fuzz-written artifacts. *)
