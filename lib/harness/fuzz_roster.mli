(** The fuzzing roster: what [renaming fuzz] runs.

    Two halves:

    - {!clean}: small instances of real algorithms (loose-geometric,
      combined-geometric, uniform-probing, linear-scan).  The fuzzer
      must report zero violations here — any hit is a real bug (or a
      monitor blind spot) and fails the campaign.
    - {!mutants}: deliberately seeded schedule-depth bugs — a
      double-claim in the loose-geometric probe path, a τ-device
      over-admit, and a dropped straggler in the Combined backup path.
      Each is clean under the fair round-robin baseline and breaks only
      under a rare bounded-depth interleaving; the fuzzer {e must} find
      and shrink every one within its budget, or the campaign fails.
      This is the fuzzing analogue of
      [renaming analyze --inject broken-footprint]. *)

val clean : unit -> Renaming_fuzz.Fuzz.target list

val mutants : unit -> Renaming_fuzz.Fuzz.target list

val roster : unit -> Renaming_fuzz.Fuzz.target list
(** [clean () @ mutants ()]. *)

val builder :
  name:string ->
  n:int ->
  (seed:int64 -> Renaming_sched.Executor.instance) option
(** Resolve a roster target by repro header, for [renaming shrink]
    replay of fuzz-written artifacts. *)
