(** The standard bounded-model-checking roster: small instances of the
    core and baseline algorithms wired into {!Renaming_mcheck.Mcheck}.

    Exhaustive exploration only scales to tiny instances, so every entry
    pins a small [n], a fixed seed and per-entry bounds tuned so the
    whole roster finishes in seconds.  Entry names encode the
    configuration (e.g. ["uniform-probing-n3"] probes at most twice) and
    are what repro artifacts record, so {!builder} can rebuild the exact
    instance for replay. *)

type entry = {
  e_name : string;  (** unique roster key; goes into repro artifacts *)
  e_n : int;
  e_seed : int64;
  e_check_ownership : bool;
  e_build : seed:int64 -> Renaming_sched.Executor.instance;
  e_bounds : Renaming_mcheck.Mcheck.bounds;
  e_baseline : int option;
      (** frozen sleep-set ([`Legacy_dfs]) schedule count — the
          denominator of the DPOR reduction ratio; [None] for entries
          that were infeasible before DPOR (the n5 configurations) *)
}

val roster : unit -> entry list
(** Every entry: schedule-only exploration of loose-geometric (n=4),
    uniform-probing (n=3), linear-scan (n=3/4), tight (n=8, its
    minimum) and the lease/shard handoff protocols up to n=5, plus
    crash/recovery and transient-fault variants with one injection
    each. *)

val tier1 : unit -> entry list
(** The fast subset exercised on every [dune runtest] — since the DPOR
    engine it includes the n4 handoff entries and [shard-handoff-n5]. *)

val target : entry -> Renaming_mcheck.Mcheck.target

val run_entry :
  ?engine:Renaming_mcheck.Mcheck.engine ->
  ?obs:Renaming_obs.Obs.t ->
  ?refine:(name:string -> namespace:int -> (Renaming_sched.Executor.event -> unit)) ->
  entry ->
  Renaming_mcheck.Mcheck.stats
(** [engine] defaults to [`Dpor]; the entry's frozen [e_baseline] is
    threaded into the stats for reduction-ratio reporting.  [refine]
    (the campaign-factory shape, applied to the entry's name and
    namespace) attaches a fresh refinement checker to every explored
    schedule — see {!Renaming_mcheck.Mcheck.check}. *)

val repro_of_case :
  entry -> Renaming_mcheck.Mcheck.case -> Renaming_faults.Shrink.repro option
(** Persistable artifact for a violation's shrunk counterexample. *)

val builder :
  name:string -> n:int -> (seed:(int64) -> Renaming_sched.Executor.instance) option
(** Resolve a repro artifact's algorithm name back to an instance
    builder: roster entries first (exact name and [n] match), then the
    chaos roster ({!Chaos.algorithms}) by algorithm name. *)

val check_ownership_of : name:string -> bool
(** Whether the named algorithm supports the monitor's ownership check
    (true for every roster and chaos algorithm today). *)
