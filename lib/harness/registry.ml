type entry = {
  id : string;
  title : string;
  claim : string;
  run : Runcfg.scale -> Table.t;
}

let all =
  [
    {
      id = "T1";
      title = "Theorem 5: tight renaming step complexity";
      claim = "n processes, namespace n, O(log n) steps w.h.p. (mass-conserving schedule)";
      run = Exp_tight.t1;
    };
    {
      id = "T1b";
      title = "Definition 2 literal-schedule coverage";
      claim = "literal clusters cover only ~n/(2(2c-1)) names (reproduction finding)";
      run = Exp_tight.t1b;
    };
    {
      id = "T2";
      title = "Lemma 3: balls-into-bins empty-bin bound";
      claim = "2c log n balls into 2 log n bins leave < log n empty bins, failure <= 1/n^l";
      run = Exp_lemma3.t2;
    };
    {
      id = "T3";
      title = "Lemma 4(2): per-block request load";
      claim = "every block receives >= 2c log n requests in every round, w.h.p.";
      run = Exp_tight.t3;
    };
    {
      id = "T4";
      title = "Lemma 6: geometric-rounds loose renaming";
      claim = "unnamed <= 2n/(loglog n)^l after (loglog n)^l steps, w.h.p.";
      run = Exp_loose.t4;
    };
    {
      id = "T5";
      title = "Corollary 7: full loose renaming (geometric)";
      claim = "namespace n + 2n/(loglog n)^l, O((loglog n)^l) steps, complete w.h.p.";
      run = Exp_combined.t5;
    };
    {
      id = "T6";
      title = "Lemma 8: clustered loose renaming";
      claim = "unnamed <= n/(log n)^{2l} with step complexity 2l(loglog n)^2, w.h.p.";
      run = Exp_loose.t6;
    };
    {
      id = "T7";
      title = "Corollary 9: full loose renaming (clustered)";
      claim = "namespace n + 2n/(log n)^l, O((loglog n)^2) steps, complete w.h.p.";
      run = Exp_combined.t7;
    };
    {
      id = "T8";
      title = "Related-work comparison";
      claim = "tau-register tight renaming beats sorting-network renaming (log n vs log^2 n) and Theta(n) baselines";
      run = Exp_baselines.t8;
    };
    {
      id = "T9";
      title = "Adversary robustness";
      claim = "soundness under unfair/adaptive/crashing adversaries (model of sec. II-A)";
      run = Exp_adversary.t9;
    };
    {
      id = "T10";
      title = "Counting device contract";
      claim = "at most tau bits accepted, winners never revoked, literal procedure = reference";
      run = Exp_device.t10;
    };
    {
      id = "T11";
      title = "Adaptive renaming (unknown k)";
      claim = "doubling transform of sec. IV: namespace O((1+eps)k), steps O(log k (loglog k)^l)";
      run = Exp_adaptive.t11;
    };
    {
      id = "T12";
      title = "Deterministic read/write baseline (Moir-Anderson grid)";
      claim = "deterministic renaming from read/write registers: Theta(n) steps, Theta(n^2) names";
      run = Exp_splitter.t12;
    };
    {
      id = "T13";
      title = "Simulator vs multicore cross-check";
      claim = "both backends satisfy the same lemma bounds on real OCaml 5 domains";
      run = Exp_multicore.t13;
    };
    {
      id = "T14";
      title = "Device answer-delay ablation";
      claim = "the tau-register's clocked answering costs only a constant slowdown (sec. II-C)";
      run = Exp_cadence.t14;
    };
    {
      id = "T15";
      title = "Long-lived renaming under churn";
      claim = "releasable names with O((1+eps)/eps) amortized probes per acquire (related work [13] reproduced on hardware TAS)";
      run = Exp_longlived.t15;
    };
    {
      id = "T16";
      title = "Lemma 3 constant ablation";
      claim = "c >= 2l+2 buys the w.h.p. margin: smaller c means fewer steps but more reserve traffic";
      run = Exp_csweep.t16;
    };
    {
      id = "T17";
      title = "Lease-based renaming service under churn";
      claim =
        "crashed clients' names are reclaimed by lease expiry + epoch fencing with zero double-grants; overload degrades to structured shed/timeout outcomes";
      run = Exp_service.t17;
    };
    {
      id = "F1";
      title = "Scaling shape fits";
      claim = "measured curves match the predicted asymptotic shapes";
      run = Exp_baselines.f1;
    };
    {
      id = "F2";
      title = "Lemma 6 round decay";
      claim = "unnamed after round i is at most n/2^i";
      run = Exp_loose.f2;
    };
    {
      id = "F3";
      title = "Namespace/step trade-off";
      claim = "l sweeps trade namespace slack against steps (Cor 7/9)";
      run = Exp_combined.f3;
    };
    {
      id = "F4";
      title = "Lemmas 6/8 at a million processes";
      claim = "the poly-double-logarithmic step budgets hold at n = 2^20 .. 2^22";
      run = Exp_fastsim.f4;
    };
  ]

let find id =
  let id = String.lowercase_ascii id in
  List.find_opt (fun e -> String.lowercase_ascii e.id = id) all

let run_all ~scale ~out =
  List.iter
    (fun e ->
      Format.fprintf out "@.[%s] %s@.claim: %s@.@.%s@." e.id e.title e.claim
        (Table.render (e.run scale)))
    all
