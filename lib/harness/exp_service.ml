module Churn = Renaming_service.Churn
module Service = Renaming_service.Service
module Hist = Renaming_obs.Hist

(* T17: the lease service under closed-loop crash-restart churn.  Each
   row is one churn simulation; the claim under measurement is graceful
   degradation — grants keep flowing, crashed clients' names come back
   via lease reclamation (never a double grant), overload is resolved by
   structured shedding/timeouts rather than collapse. *)
let t17 scale =
  let table =
    Table.create ~title:"T17: lease-based renaming service under churn (crash/reclaim/shed)"
      ~columns:
        [
          "cell"; "sessions"; "crash%"; "grants"; "reclaims"; "sheds"; "expired";
          "stale fenced"; "probes/grant"; "reclaim p-mean"; "peak held"; "safe";
        ]
  in
  let sessions =
    match scale with Runcfg.Quick -> 20_000 | Runcfg.Full -> 150_000
  in
  let cells =
    [
      ("steady", Churn.make_config ~sessions_target:sessions ~crash_rate:0.2 ());
      ( "queue-only",
        Churn.make_config ~sessions_target:sessions ~crash_rate:0.2 ~high_water:1.5
          ~queue_limit:32 ~request_timeout:2.0 ~clients:192 () );
      ( "hot-zipf",
        Churn.make_config ~sessions_target:sessions ~crash_rate:0.35 ~zipf_s:1.4
          ~mean_think:1.5 () );
    ]
  in
  List.iter
    (fun (name, cfg) ->
      let s = Churn.run cfg ~seed:(Seeds.take 1).(0) in
      let sv = s.Churn.service in
      Table.add_row table
        [
          name;
          Table.cell_int s.Churn.sessions;
          Table.cell_float ~decimals:0 (100. *. cfg.Churn.crash_rate);
          Table.cell_int sv.Service.grants;
          Table.cell_int sv.Service.reclaims;
          Table.cell_int (sv.Service.sheds_high_water + sv.Service.sheds_queue_full);
          Table.cell_int sv.Service.expired_requests;
          Table.cell_int s.Churn.stale_rejected;
          Table.cell_float (Hist.mean s.Churn.h_probes);
          Table.cell_float (Hist.mean s.Churn.h_reclaim);
          Table.cell_int s.Churn.peak_held;
          Table.cell_bool
            (s.Churn.violation = None && (not s.Churn.livelocked)
            && s.Churn.stale_rejected = s.Churn.stale_ops
            && s.Churn.unexpected_fenced = 0);
        ])
    cells;
  Table.add_note table
    "safe = no audit violation, no livelock, every stale (crashed-then-woken) operation fenced; reclaim p-mean is mean centiticks between lease expiry and reclamation";
  table
