(** The shared memory of one simulation: the namespace registers, an
    auxiliary TAS-bit region, and the τ-registers (if the algorithm uses
    them). *)

type t

(** The shared-state regions of a simulation, as seen by the access
    instrumentation: the namespace TAS array, the auxiliary TAS array,
    the plain read/write word registers, and the τ-register device. *)
type region = Names | Aux | Words | Device

(** One concrete cell access performed by an executed operation.
    [acc_write] distinguishes reads from writes; [acc_pid_sensitive]
    marks accesses whose effect or result depends on the calling pid
    (ownership tests, TAS wins that record the winner, device queues).
    The static-analysis audit ({!Renaming_analysis.Commute}) compares
    these against the static footprint table the model checker prunes
    with. *)
type access = {
  acc_region : region;
  acc_idx : int;
  acc_write : bool;
  acc_pid_sensitive : bool;
}

val pp_access : Format.formatter -> access -> unit

val create :
  namespace:int ->
  ?aux:int ->
  ?words:int ->
  ?taus:Renaming_device.Tau_register.t array ->
  unit ->
  t

val names : t -> Renaming_shm.Tas_array.t
(** The namespace, one TAS register per name. *)

val aux : t -> Renaming_shm.Tas_array.t
(** Auxiliary TAS bits (the loose algorithms use none). *)

val taus : t -> Renaming_device.Tau_register.t array

val words : t -> int array
(** Plain atomic read/write registers (all start at 0) — the substrate
    of read/write constructions such as splitters. *)

val namespace : t -> int

val apply : t -> pid:int -> Op.t -> Op.response
(** Executes one operation atomically (the executor serialises
    operations, so atomicity is by construction). *)

val set_access_logger : t -> (pid:int -> Op.t -> access list -> unit) option -> unit
(** Attach (or detach, with [None]) an access logger: [apply] will
    report the concrete access set of every executed operation,
    reflecting what actually happened (a losing TAS logs no write).
    [None] by default; the only cost when detached is one field test
    per operation. *)

val tick_taus : t -> unit
(** Run one device clock cycle on every τ-register that has queued
    requests. *)

val assignment_of_returns : t -> int option array -> Renaming_shm.Assignment.t
(** Build the final assignment from per-process return values,
    validating against the namespace size. *)
