module Vec = Renaming_stats.Vec

type choice =
  | Step of int
  | Fault of int
  | Crash of int
  | Recover of int

let pp_choice fmt = function
  | Step pid -> Format.fprintf fmt "step %d" pid
  | Fault pid -> Format.fprintf fmt "fault %d" pid
  | Crash pid -> Format.fprintf fmt "crash %d" pid
  | Recover pid -> Format.fprintf fmt "recover %d" pid

let choice_to_string c = Format.asprintf "%a" pp_choice c

let choice_of_string s =
  match String.split_on_char ' ' (String.trim s) with
  | [ verb; pid ] -> (
    match (verb, int_of_string_opt pid) with
    | _, None -> Error (Printf.sprintf "bad pid in choice %S" s)
    | "step", Some p -> Ok (Step p)
    | "fault", Some p -> Ok (Fault p)
    | "crash", Some p -> Ok (Crash p)
    | "recover", Some p -> Ok (Recover p)
    | _ -> Error (Printf.sprintf "unknown choice verb in %S" s))
  | _ -> Error (Printf.sprintf "malformed choice %S (want \"<verb> <pid>\")" s)

type point = {
  index : int;
  time : int;
  prev : int;
  runnable : int array;
  crashed : int array;
  ops : Op.t array;
  taken : choice;
}

type outcome = Finished of Report.t | Raised of exn

type result = {
  points : point array;
  taken : choice array;
  dropped : int;
  outcome : outcome;
}

let expected_of_choice : choice -> Trace.expected = function
  | Step pid -> `Schedule pid
  | Fault pid -> `Fault pid
  | Crash pid -> `Crash pid
  | Recover pid -> `Recover pid

let run ?obs ?(max_ticks = 100_000) ?(tau_cadence = 1) ?(strict = false) ?(record_from = 0)
    ?yield_rotate ?on_event ~prefix instance =
  let n = Array.length instance.Executor.programs in
  let remaining = ref prefix in
  let points = Vec.create () in
  let taken = Vec.create () in
  let dropped = ref 0 in
  let prev = ref (-1) in
  let run_len = ref 0 in
  let index = ref 0 in
  let fault_next = ref false in
  let inject ~time:_ ~pid:_ ~op:_ =
    if !fault_next then begin
      fault_next := false;
      true
    end
    else false
  in
  let feasible (view : Adversary.view) = function
    | Step pid | Crash pid -> view.is_runnable pid
    | Fault pid -> view.is_runnable pid && Op.faultable (view.pending_op pid)
    | Recover pid -> view.is_crashed pid
  in
  let sorted_runnable (view : Adversary.view) =
    let arr = Array.init view.runnable_count view.runnable_nth in
    Array.sort compare arr;
    arr
  in
  let crashed_pids (view : Adversary.view) =
    let acc = ref [] in
    for pid = n - 1 downto 0 do
      if view.is_crashed pid then acc := pid :: !acc
    done;
    Array.of_list !acc
  in
  let diverge (view : Adversary.view) c =
    raise
      (Trace.Divergence
         {
           at = !index;
           expected = expected_of_choice c;
           time = view.time;
           runnable = Array.to_list (sorted_runnable view);
           crashed = Array.to_list (crashed_pids view);
         })
  in
  (* The fairness/yield bound: a pid at a [Yield] (deliberate backoff)
     point is waiting on somebody else's progress, so once it has run
     [yield_rotate] consecutive steps the default policy hands the
     processor to the cyclically next runnable pid at its next yield
     point instead of spinning the waiter against the livelock guard.
     Rotation only happens at yield points, so it never breaks into the
     middle of a protocol's critical section.  Off ([None]) by default —
     the legacy explorer's tail must stay byte-identical. *)
  let rotate_due (view : Adversary.view) =
    match yield_rotate with
    | None -> false
    | Some limit ->
      !prev >= 0 && !run_len >= limit && view.runnable_count > 1
      && view.is_runnable !prev
      && view.pending_op !prev = Op.Yield
  in
  let default (view : Adversary.view) =
    if !prev >= 0 && view.is_runnable !prev && not (rotate_due view) then Step !prev
    else begin
      (* Lowest runnable pid; under rotation, lowest runnable pid
         strictly above [prev], wrapping around. *)
      let best = ref max_int in
      let best_above = ref max_int in
      for i = 0 to view.runnable_count - 1 do
        let pid = view.runnable_nth i in
        if pid < !best then best := pid;
        if pid > !prev && pid < !best_above then best_above := pid
      done;
      if rotate_due view then Step (if !best_above < max_int then !best_above else !best)
      else Step !best
    end
  in
  let decide (view : Adversary.view) =
    let rec pick () =
      match !remaining with
      | [] -> default view
      | c :: rest ->
        if feasible view c then begin
          remaining := rest;
          c
        end
        else if strict then diverge view c
        else begin
          remaining := rest;
          incr dropped;
          pick ()
        end
    in
    let c = pick () in
    if !index >= record_from then begin
      let runnable = sorted_runnable view in
      Vec.add_last points
        {
          index = !index;
          time = view.time;
          prev = !prev;
          runnable;
          crashed = crashed_pids view;
          ops = Array.map view.pending_op runnable;
          taken = c;
        }
    end;
    Vec.add_last taken c;
    incr index;
    match c with
    | Step pid ->
      (if yield_rotate <> None then
         if pid = !prev then incr run_len else run_len := 1);
      prev := pid;
      Adversary.Schedule pid
    | Fault pid ->
      run_len := 0;
      prev := pid;
      fault_next := true;
      Adversary.Schedule pid
    | Crash pid -> Adversary.Crash pid
    | Recover pid -> Adversary.Recover pid
  in
  let adversary = { Adversary.name = "directed"; decide } in
  let outcome =
    try Finished (Executor.run ?obs ~max_ticks ~tau_cadence ~inject ?on_event ~adversary instance)
    with e -> Raised e
  in
  { points = Vec.to_array points; taken = Vec.to_array taken; dropped = !dropped; outcome }

(* --- condensed (dejafu-style) schedule rendering ---

   A schedule is rendered as `--`-joined segments: [S<pid>] starts or
   non-preemptively continues pid (the previous process finished,
   blocked or crashed), [P<pid>] preempts a still-runnable process,
   [F<pid>]/[C<pid>]/[R<pid>] are fault/crash/recover injections, and a
   run of k > 1 consecutive steps of one pid collapses to one segment
   with an [xk] suffix — so unlike dejafu's rendering the string stays
   replayable.  Example: [S0x2--P1--S2]. *)

let condensed ?(points = [||]) (taken : choice array) =
  let preemptive = Hashtbl.create 16 in
  Array.iter
    (fun (pt : point) ->
      match pt.taken with
      | Step pid | Fault pid ->
        if pt.prev >= 0 && pt.prev <> pid && Array.exists (fun q -> q = pt.prev) pt.runnable then
          Hashtbl.replace preemptive pt.index ()
      | Crash _ | Recover _ -> ())
    points;
  let have_points = Array.length points > 0 in
  let buf = Buffer.create 64 in
  let flush_segment ~kind ~pid ~count =
    if Buffer.length buf > 0 then Buffer.add_string buf "--";
    Buffer.add_char buf kind;
    Buffer.add_string buf (string_of_int pid);
    if count > 1 then Buffer.add_string buf (Printf.sprintf "x%d" count)
  in
  let seg = ref None in
  Array.iteri
    (fun i c ->
      let step_kind () =
        if have_points then if Hashtbl.mem preemptive i then 'P' else 'S'
        else if i = 0 then 'S'
        else 'P' (* no runnability info: label every switch preemptive *)
      in
      match (c, !seg) with
      | Step pid, Some (kind, p, count) when p = pid -> seg := Some (kind, p, count + 1)
      | Step pid, prev ->
        (match prev with Some (k, p, n) -> flush_segment ~kind:k ~pid:p ~count:n | None -> ());
        seg := Some (step_kind (), pid, 1)
      | (Fault pid | Crash pid | Recover pid), prev ->
        (match prev with Some (k, p, n) -> flush_segment ~kind:k ~pid:p ~count:n | None -> ());
        let kind = match c with Fault _ -> 'F' | Crash _ -> 'C' | _ -> 'R' in
        flush_segment ~kind ~pid ~count:1;
        seg := None)
    taken;
  (match !seg with Some (k, p, n) -> flush_segment ~kind:k ~pid:p ~count:n | None -> ());
  Buffer.contents buf

let split_on_string ~sep s =
  let slen = String.length sep and len = String.length s in
  let rec go acc start i =
    if i + slen > len then List.rev (String.sub s start (len - start) :: acc)
    else if String.sub s i slen = sep then go (String.sub s start (i - start) :: acc) (i + slen) (i + slen)
    else go acc start (i + 1)
  in
  go [] 0 0

let choices_of_condensed s =
  let ( let* ) = Result.bind in
  let segment seg =
    if String.length seg < 2 then Error (Printf.sprintf "malformed condensed segment %S" seg)
    else
      let kind = seg.[0] in
      let rest = String.sub seg 1 (String.length seg - 1) in
      let pid_str, count =
        match String.index_opt rest 'x' with
        | None -> (rest, Ok 1)
        | Some i ->
          ( String.sub rest 0 i,
            match int_of_string_opt (String.sub rest (i + 1) (String.length rest - i - 1)) with
            | Some c when c >= 1 -> Ok c
            | _ -> Error (Printf.sprintf "bad repeat count in condensed segment %S" seg) )
      in
      let* count in
      match (int_of_string_opt pid_str, kind) with
      | None, _ -> Error (Printf.sprintf "bad pid in condensed segment %S" seg)
      | Some pid, ('S' | 'P') -> Ok (List.init count (fun _ -> Step pid))
      | Some pid, 'F' -> Ok (List.init count (fun _ -> Fault pid))
      | Some pid, 'C' -> Ok (List.init count (fun _ -> Crash pid))
      | Some pid, 'R' -> Ok (List.init count (fun _ -> Recover pid))
      | Some _, k -> Error (Printf.sprintf "unknown condensed segment kind %C" k)
  in
  let s = String.trim s in
  if String.equal s "" then Ok []
  else
    List.fold_left
      (fun acc seg ->
        let* acc in
        let* cs = segment (String.trim seg) in
        Ok (acc @ cs))
      (Ok []) (split_on_string ~sep:"--" s)
