module Vec = Renaming_stats.Vec

type choice =
  | Step of int
  | Fault of int
  | Crash of int
  | Recover of int

let pp_choice fmt = function
  | Step pid -> Format.fprintf fmt "step %d" pid
  | Fault pid -> Format.fprintf fmt "fault %d" pid
  | Crash pid -> Format.fprintf fmt "crash %d" pid
  | Recover pid -> Format.fprintf fmt "recover %d" pid

let choice_to_string c = Format.asprintf "%a" pp_choice c

let choice_of_string s =
  match String.split_on_char ' ' (String.trim s) with
  | [ verb; pid ] -> (
    match (verb, int_of_string_opt pid) with
    | _, None -> Error (Printf.sprintf "bad pid in choice %S" s)
    | "step", Some p -> Ok (Step p)
    | "fault", Some p -> Ok (Fault p)
    | "crash", Some p -> Ok (Crash p)
    | "recover", Some p -> Ok (Recover p)
    | _ -> Error (Printf.sprintf "unknown choice verb in %S" s))
  | _ -> Error (Printf.sprintf "malformed choice %S (want \"<verb> <pid>\")" s)

type point = {
  index : int;
  time : int;
  prev : int;
  runnable : int array;
  crashed : int array;
  ops : Op.t array;
  taken : choice;
}

type outcome = Finished of Report.t | Raised of exn

type result = {
  points : point array;
  taken : choice array;
  dropped : int;
  outcome : outcome;
}

let expected_of_choice : choice -> Trace.expected = function
  | Step pid -> `Schedule pid
  | Fault pid -> `Fault pid
  | Crash pid -> `Crash pid
  | Recover pid -> `Recover pid

let run ?obs ?(max_ticks = 100_000) ?(tau_cadence = 1) ?(strict = false) ?(record_from = 0)
    ?on_event ~prefix instance =
  let n = Array.length instance.Executor.programs in
  let remaining = ref prefix in
  let points = Vec.create () in
  let taken = Vec.create () in
  let dropped = ref 0 in
  let prev = ref (-1) in
  let index = ref 0 in
  let fault_next = ref false in
  let inject ~time:_ ~pid:_ ~op:_ =
    if !fault_next then begin
      fault_next := false;
      true
    end
    else false
  in
  let feasible (view : Adversary.view) = function
    | Step pid | Crash pid -> view.is_runnable pid
    | Fault pid -> view.is_runnable pid && Op.faultable (view.pending_op pid)
    | Recover pid -> view.is_crashed pid
  in
  let sorted_runnable (view : Adversary.view) =
    let arr = Array.init view.runnable_count view.runnable_nth in
    Array.sort compare arr;
    arr
  in
  let crashed_pids (view : Adversary.view) =
    let acc = ref [] in
    for pid = n - 1 downto 0 do
      if view.is_crashed pid then acc := pid :: !acc
    done;
    Array.of_list !acc
  in
  let diverge (view : Adversary.view) c =
    raise
      (Trace.Divergence
         {
           at = !index;
           expected = expected_of_choice c;
           time = view.time;
           runnable = Array.to_list (sorted_runnable view);
           crashed = Array.to_list (crashed_pids view);
         })
  in
  let default (view : Adversary.view) =
    if !prev >= 0 && view.is_runnable !prev then Step !prev
    else begin
      let best = ref max_int in
      for i = 0 to view.runnable_count - 1 do
        let pid = view.runnable_nth i in
        if pid < !best then best := pid
      done;
      Step !best
    end
  in
  let decide (view : Adversary.view) =
    let rec pick () =
      match !remaining with
      | [] -> default view
      | c :: rest ->
        if feasible view c then begin
          remaining := rest;
          c
        end
        else if strict then diverge view c
        else begin
          remaining := rest;
          incr dropped;
          pick ()
        end
    in
    let c = pick () in
    if !index >= record_from then begin
      let runnable = sorted_runnable view in
      Vec.add_last points
        {
          index = !index;
          time = view.time;
          prev = !prev;
          runnable;
          crashed = crashed_pids view;
          ops = Array.map view.pending_op runnable;
          taken = c;
        }
    end;
    Vec.add_last taken c;
    incr index;
    match c with
    | Step pid ->
      prev := pid;
      Adversary.Schedule pid
    | Fault pid ->
      prev := pid;
      fault_next := true;
      Adversary.Schedule pid
    | Crash pid -> Adversary.Crash pid
    | Recover pid -> Adversary.Recover pid
  in
  let adversary = { Adversary.name = "directed"; decide } in
  let outcome =
    try Finished (Executor.run ?obs ~max_ticks ~tau_cadence ~inject ?on_event ~adversary instance)
    with e -> Raised e
  in
  { points = Vec.to_array points; taken = Vec.to_array taken; dropped = !dropped; outcome }
