module Vec = Renaming_stats.Vec

type event =
  | Scheduled of { time : int; pid : int; op : Op.t }
  | Crashed of { time : int; pid : int }
  | Recovered of { time : int; pid : int }

type expected =
  [ `Schedule of int | `Fault of int | `Crash of int | `Recover of int | `Exhausted ]

type divergence = {
  at : int;
  expected : expected;
  time : int;
  runnable : int list;
  crashed : int list;
}

exception Divergence of divergence

let pp_expected fmt = function
  | `Schedule pid -> Format.fprintf fmt "schedule p%d" pid
  | `Fault pid -> Format.fprintf fmt "fault p%d" pid
  | `Crash pid -> Format.fprintf fmt "crash p%d" pid
  | `Recover pid -> Format.fprintf fmt "recover p%d" pid
  | `Exhausted -> Format.fprintf fmt "trace exhausted"

let pp_divergence fmt d =
  let pp_pids fmt pids =
    Format.fprintf fmt "{%s}" (String.concat "," (List.map string_of_int pids))
  in
  Format.fprintf fmt
    "replay diverged at decision %d (t=%d): wanted %a but runnable=%a crashed=%a" d.at d.time
    pp_expected d.expected pp_pids d.runnable pp_pids d.crashed

let () =
  Printexc.register_printer (function
    | Divergence d -> Some (Format.asprintf "Trace.Divergence: %a" pp_divergence d)
    | _ -> None)

type t = { events : event Vec.t; mutable cursor : int }

let create () = { events = Vec.create (); cursor = 0 }

let length t = Vec.length t.events

let events t = Array.to_list (Vec.to_array t.events)

let recording t ~base =
  {
    Adversary.name = base.Adversary.name ^ "+recorded";
    decide =
      (fun view ->
        let decision = base.Adversary.decide view in
        (match decision with
        | Adversary.Schedule pid ->
          Vec.add_last t.events
            (Scheduled { time = view.Adversary.time; pid; op = view.Adversary.pending_op pid })
        | Adversary.Crash pid -> Vec.add_last t.events (Crashed { time = view.Adversary.time; pid })
        | Adversary.Recover pid ->
          Vec.add_last t.events (Recovered { time = view.Adversary.time; pid }));
        decision);
  }

(* The replayer does not know the instance size, so the crashed set in a
   divergence is reconstructed over the pids the trace mentions. *)
let max_pid t =
  let m = ref (-1) in
  Vec.iter
    (fun e ->
      let pid =
        match e with Scheduled { pid; _ } | Crashed { pid; _ } | Recovered { pid; _ } -> pid
      in
      if pid > !m then m := pid)
    t.events;
  !m

let diverge t view expected =
  let runnable =
    List.sort compare
      (List.init view.Adversary.runnable_count (fun i -> view.Adversary.runnable_nth i))
  in
  let crashed =
    List.filter view.Adversary.is_crashed (List.init (max_pid t + 1) (fun pid -> pid))
  in
  raise
    (Divergence { at = t.cursor; expected; time = view.Adversary.time; runnable; crashed })

let replaying t =
  t.cursor <- 0;
  {
    Adversary.name = "replay";
    decide =
      (fun view ->
        if t.cursor >= Vec.length t.events then diverge t view `Exhausted;
        let event = Vec.get t.events t.cursor in
        let pid =
          match event with Scheduled { pid; _ } | Crashed { pid; _ } | Recovered { pid; _ } -> pid
        in
        (match event with
        | Recovered _ ->
          if not (view.Adversary.is_crashed pid) then diverge t view (`Recover pid)
        | Scheduled _ ->
          if not (view.Adversary.is_runnable pid) then diverge t view (`Schedule pid)
        | Crashed _ -> if not (view.Adversary.is_runnable pid) then diverge t view (`Crash pid));
        t.cursor <- t.cursor + 1;
        match event with
        | Scheduled _ -> Adversary.Schedule pid
        | Crashed _ -> Adversary.Crash pid
        | Recovered _ -> Adversary.Recover pid);
  }

let op_kind op =
  match (op : Op.t) with
  | Tas_name _ -> "tas-name"
  | Tas_aux _ -> "tas-aux"
  | Read_name _ -> "read-name"
  | Read_aux _ -> "read-aux"
  | Tau_submit _ -> "tau-submit"
  | Tau_poll _ -> "tau-poll"
  | Owned_name _ -> "owned-name"
  | Read_word _ -> "read-word"
  | Write_word _ -> "write-word"
  | Release_name _ -> "release-name"
  | Yield -> "yield"

let census t =
  let counts = Hashtbl.create 16 in
  let bump key = Hashtbl.replace counts key (1 + Option.value (Hashtbl.find_opt counts key) ~default:0) in
  Vec.iter
    (function
      | Scheduled { op; _ } -> bump (op_kind op)
      | Crashed _ -> bump "crash"
      | Recovered _ -> bump "recover")
    t.events;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let pp_summary fmt t =
  Format.fprintf fmt "@[<v>trace: %d events@ " (length t);
  List.iter (fun (kind, count) -> Format.fprintf fmt "%-12s %d@ " kind count) (census t);
  Format.fprintf fmt "@]"

let glyph_of_op (op : Op.t) =
  match op with
  | Tas_name _ | Tas_aux _ -> 't'
  | Read_name _ | Read_aux _ -> 'r'
  | Owned_name _ -> 'm'
  | Tau_submit _ -> 's'
  | Tau_poll _ -> 'p'
  | Write_word _ -> 'w'
  | Read_word _ -> 'o'
  | Release_name _ -> 'l'
  | Yield -> 'y'

let pp_timeline ?(max_pids = 16) ?(max_events = 72) fmt t =
  let events = Vec.to_array t.events in
  let shown = Array.sub events 0 (min max_events (Array.length events)) in
  let pids = Hashtbl.create 16 in
  Array.iter
    (fun e ->
      let pid = match e with Scheduled { pid; _ } | Crashed { pid; _ } | Recovered { pid; _ } -> pid in
      if not (Hashtbl.mem pids pid) then Hashtbl.add pids pid ())
    shown;
  let lanes = List.sort compare (Hashtbl.fold (fun pid () acc -> pid :: acc) pids []) in
  let lanes = List.filteri (fun i _ -> i < max_pids) lanes in
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun lane ->
      Format.fprintf fmt "p%-3d " lane;
      Array.iter
        (fun e ->
          let c =
            match e with
            | Scheduled { pid; op; _ } when pid = lane -> glyph_of_op op
            | Crashed { pid; _ } when pid = lane -> 'X'
            | Recovered { pid; _ } when pid = lane -> 'R'
            | Scheduled _ | Crashed _ | Recovered _ -> '.'
          in
          Format.pp_print_char fmt c)
        shown;
      Format.pp_print_cut fmt ())
    lanes;
  if Array.length events > Array.length shown then
    Format.fprintf fmt "(%d more events)@ " (Array.length events - Array.length shown);
  if List.length lanes = max_pids then Format.fprintf fmt "(lanes capped at %d pids)@ " max_pids;
  Format.fprintf fmt "@]"
