type 'a t =
  | Done of 'a
  | Step of Op.t * (Op.response -> 'a t)

let return v = Done v

let rec bind p f =
  match p with
  | Done v -> f v
  | Step (op, k) -> Step (op, fun resp -> bind (k resp) f)

let map f p = bind p (fun v -> Done (f v))

module Syntax = struct
  let ( let* ) = bind
  let ( let+ ) p f = map f p
end

let bad_response op resp =
  Format.kasprintf failwith "Program: operation %a got response %a" Op.pp op Op.pp_response resp

let bool_op op =
  Step
    ( op,
      function
      | Op.Bool b -> Done b
      | resp -> bad_response op resp )

let tas_name i = bool_op (Op.Tas_name i)
let tas_aux i = bool_op (Op.Tas_aux i)
let read_name i = bool_op (Op.Read_name i)
let read_aux i = bool_op (Op.Read_aux i)
let owned_name i = bool_op (Op.Owned_name i)

let yield =
  Step
    ( Op.Yield,
      function
      | Op.Unit -> Done ()
      | resp -> bad_response Op.Yield resp )

(* Fault-aware variants: [Ok b] on a normal response, [Error `Faulted]
   when the injected-fault layer ate the operation. *)
let try_bool_op op =
  Step
    ( op,
      function
      | Op.Bool b -> Done (Ok b)
      | Op.Faulted -> Done (Error `Faulted)
      | resp -> bad_response op resp )

let try_tas_name i = try_bool_op (Op.Tas_name i)
let try_tas_aux i = try_bool_op (Op.Tas_aux i)
let try_read_name i = try_bool_op (Op.Read_name i)
let try_read_aux i = try_bool_op (Op.Read_aux i)

let release_name i = bool_op (Op.Release_name i)

let read_word i =
  let op = Op.Read_word i in
  Step
    ( op,
      function
      | Op.Value v -> Done v
      | resp -> bad_response op resp )

let write_word ~idx ~value =
  let op = Op.Write_word { idx; value } in
  Step
    ( op,
      function
      | Op.Unit -> Done ()
      | resp -> bad_response op resp )

let tau_submit ~reg ~bit =
  let op = Op.Tau_submit { reg; bit } in
  Step
    ( op,
      function
      | Op.Unit -> Done ()
      | resp -> bad_response op resp )

let tau_poll reg =
  let op = Op.Tau_poll reg in
  Step
    ( op,
      function
      | Op.Tau a -> Done a
      | resp -> bad_response op resp )

let tau_await reg =
  let open Syntax in
  let rec loop () =
    let* answer = tau_poll reg in
    match answer with
    | Renaming_device.Tau_register.Pending -> loop ()
    | Renaming_device.Tau_register.Won_bit -> return true
    | Renaming_device.Tau_register.Lost_bit -> return false
  in
  loop ()

let scan_names ~first ~count =
  let open Syntax in
  let rec loop k =
    if k >= count then return None
    else
      let* won = tas_name (first + k) in
      if won then return (Some (first + k)) else loop (k + 1)
  in
  loop 0

let recover_owned ~namespace =
  let open Syntax in
  let rec loop i =
    if i >= namespace then return None
    else
      let* mine = owned_name i in
      if mine then return (Some i) else loop (i + 1)
  in
  loop 0

let run_local p =
  match p with
  | Done v -> Some v
  | Step _ -> None
