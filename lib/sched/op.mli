(** Shared-memory operations and their responses.

    One executed operation = one *step* in the paper's complexity
    measure.  Local computation (including coin flips) is free and runs
    eagerly inside the program continuations, so a parked process always
    exposes its next shared-memory operation — which is how the adaptive
    adversary gets to see the results of coin flips before scheduling. *)

type t =
  | Tas_name of int  (** test-and-set the namespace register; responds [Bool won] *)
  | Tas_aux of int  (** test-and-set an auxiliary TAS bit; responds [Bool won] *)
  | Read_name of int  (** read whether a namespace register is set; responds [Bool] *)
  | Read_aux of int
  | Owned_name of int
      (** does the calling process own namespace register [i]?  Responds
          [Bool owned].  The recovery primitive of the crash-recovery
          extension (docs/fault_model.md): a resurrected process uses it
          to re-discover a name it won before crashing.  Never faulted. *)
  | Tau_submit of { reg : int; bit : int }
      (** queue a request for TAS bit [bit] of τ-register [reg]; responds [Unit] *)
  | Tau_poll of int  (** poll τ-register [reg]; responds [Tau answer] *)
  | Read_word of int
      (** read an atomic read/write register (the splitter substrate);
          responds [Value v] *)
  | Write_word of { idx : int; value : int }  (** write it; responds [Unit] *)
  | Release_name of int
      (** free a namespace register the process owns (long-lived
          renaming only); responds [Bool released] *)
  | Yield
      (** a deliberate no-op step: burns one scheduling step without
          touching memory.  The backoff primitive of the transient-fault
          retry helpers ({!Renaming_faults.Retry}); responds [Unit]. *)

type response =
  | Bool of bool
  | Unit
  | Value of int
  | Tau of Renaming_device.Tau_register.answer
  | Faulted
      (** the operation was hit by an injected transient fault: it did
          not take effect and conveyed no information.  Produced by the
          executor's fault injector, never by {!Memory.apply}. *)

val pp : Format.formatter -> t -> unit

val pp_response : Format.formatter -> response -> unit

val target_name : t -> int option
(** The namespace register this operation touches, if any — used by
    adaptive adversaries to detect contention. *)

val faultable : t -> bool
(** Whether a transient fault may hit this operation: true exactly for
    the TAS and read operations on the namespace and auxiliary arrays.
    τ-register, word, release, recovery and yield operations are exempt
    (docs/fault_model.md discusses why). *)

val tag : t -> int
(** A dense constructor index in [0, n_tags).  Implemented as an
    exhaustive match so adding a constructor is a compile error here —
    which is how the static-analysis audit ({!Renaming_analysis})
    guarantees its pairwise commutation check covers every operation. *)

val n_tags : int
(** Number of constructors of {!t}. *)

val representatives : idx:int -> value:int -> t list
(** One operation per constructor, all targeting index/register [idx]
    ([value] seeds the [Write_word] payload).  The audit checks that the
    tags of this list cover [0, n_tags) exactly. *)
