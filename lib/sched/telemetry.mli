(** Telemetry sinks for the simulation layer.

    [attach obs memory] installs an access logger (the same
    {!Memory.set_access_logger} hook the analysis coverage audit and
    the fuzzer use) that counts every concrete shared-memory access
    into the obs registry ([mem/reads], [mem/writes], and per-region
    variants); with [~events:true] each access additionally becomes an
    instant trace event ([mem:names], [mem:device], ...) in the event
    ring.

    Only one logger can be attached to a memory at a time — attaching
    telemetry replaces any logger the analysis or fuzzing layers
    installed, so attach it only on runs you own end-to-end (the
    [renaming trace] and [renaming metrics] subcommands do). *)

val op_label : Op.t -> string
(** Short operation label without operands ("tas-name", "tau-submit",
    ...), used as trace event names. *)

val op_args : Op.t -> (string * int) list
(** The operation's operands as event args. *)

val access_logger :
  ?events:bool ->
  Renaming_obs.Obs.t ->
  pid:int ->
  Op.t ->
  Memory.access list ->
  unit
(** The raw logger, for composing with another logger by hand. *)

val attach : ?events:bool -> Renaming_obs.Obs.t -> Memory.t -> unit
