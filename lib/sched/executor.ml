type instance = {
  memory : Memory.t;
  programs : int option Program.t array;
  label : string;
}

type event =
  | Stepped of { time : int; pid : int; op : Op.t; response : Op.response }
  | Crashed of { time : int; pid : int }
  | Recovered of { time : int; pid : int }
  | Returned of { time : int; pid : int; value : int option }

let pp_event fmt = function
  | Stepped { time; pid; op; response } ->
    Format.fprintf fmt "t=%d p%d %a -> %a" time pid Op.pp op Op.pp_response response
  | Crashed { time; pid } -> Format.fprintf fmt "t=%d p%d CRASH" time pid
  | Recovered { time; pid } -> Format.fprintf fmt "t=%d p%d RECOVER" time pid
  | Returned { time; pid; value } ->
    Format.fprintf fmt "t=%d p%d return %s" time pid
      (match value with Some v -> string_of_int v | None -> "none")

type process_state =
  | Running of int option Program.t
  | Finished of int option
  | Crashed_state

(* The runnable set is a swap-compacted array: [arr.(0 .. len-1)] are the
   runnable pids and [pos.(pid)] is the index of [pid] in [arr] (or -1).
   Removal is O(1), which keeps fair schedulers O(1) per tick. *)
type live_set = { arr : int array; pos : int array; mutable len : int }

let live_create n = { arr = Array.init n (fun i -> i); pos = Array.init n (fun i -> i); len = n }

let live_remove t pid =
  let i = t.pos.(pid) in
  if i < 0 then invalid_arg "Executor: removing non-live pid";
  let last = t.arr.(t.len - 1) in
  t.arr.(i) <- last;
  t.pos.(last) <- i;
  t.pos.(pid) <- -1;
  t.len <- t.len - 1

let live_add t pid =
  if t.pos.(pid) >= 0 then invalid_arg "Executor: adding already-live pid";
  t.arr.(t.len) <- pid;
  t.pos.(pid) <- t.len;
  t.len <- t.len + 1

(* Per-run telemetry: counter handles are resolved once here so the
   per-step cost with a capability is two field increments plus one
   ring push, and without one is a single match on [None]. *)
type obs_hooks = {
  h_obs : Renaming_obs.Obs.t;
  h_steps : Renaming_obs.Metrics.counter;
}

let run ?obs ?(tau_cadence = 1) ?(max_ticks = 1_000_000_000) ?on_tick ?on_event ?inject ?recover
    ~adversary instance =
  if tau_cadence < 1 then invalid_arg "Executor.run: tau_cadence must be >= 1";
  let n = Array.length instance.programs in
  let states = Array.map (fun p -> Running p) instance.programs in
  let live = live_create n in
  let ledger = Renaming_shm.Step_ledger.create ~processes:n in
  let crashed = Array.make n false in
  let ever_recovered = Array.make n false in
  let time = ref 0 in
  let outcome = ref Report.Completed in
  let hooks =
    match obs with
    | None -> None
    | Some o ->
      Renaming_obs.Obs.set_now o (fun () -> !time);
      Some { h_obs = o; h_steps = Renaming_obs.Obs.counter o (instance.label ^ "/executor.steps") }
  in
  let emit e =
    (match hooks with
    | None -> ()
    | Some h -> (
      match e with
      | Stepped { pid; op; _ } ->
        Renaming_obs.Metrics.incr h.h_steps;
        Renaming_obs.Obs.instant h.h_obs ~pid ~args:(Telemetry.op_args op)
          (Telemetry.op_label op)
      | Crashed { pid; _ } -> Renaming_obs.Obs.span_begin h.h_obs ~pid "crashed"
      | Recovered { pid; _ } -> Renaming_obs.Obs.span_end h.h_obs ~pid "crashed"
      | Returned { pid; value; _ } ->
        Renaming_obs.Obs.instant h.h_obs ~pid
          ~args:(match value with Some v -> [ ("name", v) ] | None -> [])
          "return"));
    match on_event with Some f -> f e | None -> ()
  in
  (* Restarting a crashed process: rediscover a name already won (so it
     is kept, not leaked), then rerun its program from the top.  An
     explicit [recover] hook supplies an algorithm-specific restart. *)
  let restart_program pid =
    match recover with
    | Some f -> f pid
    | None ->
      Program.bind (Program.recover_owned ~namespace:(Memory.namespace instance.memory))
        (function
          | Some nm -> Program.return (Some nm)
          | None -> instance.programs.(pid))
  in
  let pending_op pid =
    match states.(pid) with
    | Running (Program.Step (op, _)) -> op
    | Running (Program.Done _) | Finished _ | Crashed_state ->
      invalid_arg "Executor: pending_op on non-parked process"
  in
  (* A program may be Done without ever touching shared memory. *)
  let settle pid =
    match states.(pid) with
    | Running (Program.Done v) ->
      states.(pid) <- Finished v;
      live_remove live pid;
      emit (Returned { time = !time; pid; value = v })
    | Running (Program.Step _) | Finished _ | Crashed_state -> ()
  in
  for pid = 0 to n - 1 do
    settle pid
  done;
  let view =
    {
      Adversary.time = 0;
      runnable_count = 0;
      runnable_nth = (fun i -> live.arr.(i));
      is_runnable = (fun pid -> pid >= 0 && pid < n && live.pos.(pid) >= 0);
      is_crashed = (fun pid -> pid >= 0 && pid < n && crashed.(pid));
      pending_op;
      memory = instance.memory;
    }
  in
  while live.len > 0 && !outcome = Report.Completed do
    let view = { view with Adversary.time = !time; runnable_count = live.len } in
    match adversary.Adversary.decide view with
    | Adversary.Crash pid ->
      (match states.(pid) with
      | Running _ ->
        states.(pid) <- Crashed_state;
        crashed.(pid) <- true;
        live_remove live pid;
        emit (Crashed { time = !time; pid })
      | Finished _ | Crashed_state -> invalid_arg "Executor: adversary crashed a non-running process")
    | Adversary.Recover pid ->
      (match states.(pid) with
      | Crashed_state ->
        states.(pid) <- Running (restart_program pid);
        crashed.(pid) <- false;
        ever_recovered.(pid) <- true;
        live_add live pid;
        emit (Recovered { time = !time; pid });
        settle pid
      | Running _ | Finished _ ->
        invalid_arg "Executor: adversary recovered a non-crashed process")
    | Adversary.Schedule pid ->
      (match states.(pid) with
      | Running (Program.Step (op, k)) ->
        let faulted =
          match inject with Some f -> f ~time:!time ~pid ~op | None -> false
        in
        let response = if faulted then Op.Faulted else Memory.apply instance.memory ~pid op in
        Renaming_shm.Step_ledger.record ledger ~pid;
        (match on_tick with Some f -> f ~time:!time ~pid ~op | None -> ());
        emit (Stepped { time = !time; pid; op; response });
        states.(pid) <- Running (k response);
        settle pid;
        incr time;
        if !time mod tau_cadence = 0 then Memory.tick_taus instance.memory;
        if !time > max_ticks then outcome := Report.Livelock { max_ticks }
      | Running (Program.Done _) | Finished _ | Crashed_state ->
        invalid_arg "Executor: adversary scheduled a non-runnable process")
  done;
  let returns =
    Array.map
      (function
        | Finished v -> v
        | Crashed_state -> None
        | Running _ -> None)
      states
  in
  let pids_where flags =
    let acc = ref [] in
    for pid = n - 1 downto 0 do
      if flags.(pid) then acc := pid :: !acc
    done;
    !acc
  in
  (match hooks with
  | None -> ()
  | Some h ->
    let o = h.h_obs in
    let steps_hist = Renaming_obs.Obs.histogram o (instance.label ^ "/steps") in
    for pid = 0 to n - 1 do
      Renaming_obs.Hist.observe steps_hist (Renaming_shm.Step_ledger.steps_of ledger ~pid)
    done;
    let named =
      Array.fold_left (fun acc v -> match v with Some _ -> acc + 1 | None -> acc) 0 returns
    in
    Renaming_obs.Metrics.add (Renaming_obs.Obs.counter o (instance.label ^ "/named")) named;
    Renaming_obs.Metrics.add
      (Renaming_obs.Obs.counter o (instance.label ^ "/crashed"))
      (Array.fold_left (fun acc c -> if c then acc + 1 else acc) 0 crashed);
    Renaming_obs.Metrics.add
      (Renaming_obs.Obs.counter o (instance.label ^ "/recovered"))
      (Array.fold_left (fun acc c -> if c then acc + 1 else acc) 0 ever_recovered));
  {
    Report.assignment = Memory.assignment_of_returns instance.memory returns;
    ledger;
    ticks = !time;
    outcome = !outcome;
    crashed = pids_where crashed;
    recovered = pids_where ever_recovered;
    adversary = adversary.Adversary.name;
    counters = [];
  }
