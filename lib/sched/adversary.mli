(** Adversaries: scheduling (and crash) policies.

    The model of §II-A gives the adversary full control over the order
    of steps and crashes, with complete knowledge of process states
    including coin-flip results.  Here an adversary sees, at every tick,
    the set of runnable processes together with the operation each would
    perform next (which encodes its coin flips), and the entire shared
    memory; it picks the process to step, or crashes one.

    The runnable set is exposed as an indexed accessor rather than an
    array so that fair schedulers cost O(1) per tick; the adaptive
    adversaries that scan the whole set are O(count) per tick and are
    used at moderate [n]. *)

type view = {
  time : int;  (** executed steps so far *)
  runnable_count : int;
  runnable_nth : int -> int;  (** pid by index in [0, runnable_count); arbitrary stable order *)
  is_runnable : int -> bool;  (** by pid *)
  is_crashed : int -> bool;  (** by pid: crashed and not since recovered *)
  pending_op : int -> Op.t;  (** next operation of a runnable pid *)
  memory : Memory.t;
}

type decision =
  | Schedule of int  (** execute this pid's pending operation *)
  | Crash of int  (** crash this pid (costs the adversary nothing) *)
  | Recover of int
      (** resurrect a crashed pid: it restarts its program from the top
          (crash-recovery mode, docs/fault_model.md).  Only valid for a
          currently crashed pid. *)

type t = { name : string; decide : view -> decision }

val round_robin : unit -> t
(** Sweeps the runnable set cyclically — the fair baseline that makes
    the execution behave like the synchronous rounds the proofs reason
    about.  Returns a fresh (stateful) scheduler each call. *)

val uniform : Renaming_rng.Xoshiro.t -> t
(** Uniformly random runnable pid each tick. *)

val lifo : t
(** Always steps the highest-numbered runnable pid: an extreme unfair
    schedule that starves low pids. *)

val adaptive_contention : t
(** Adaptive heuristic: preferentially schedules processes whose pending
    operation targets an *already set* namespace register, wasting their
    step.  This maximises lost TAS operations, the main lever an
    adaptive adversary has against renaming algorithms.  O(count) per
    tick. *)

val colluding : t
(** Adaptive heuristic that maximises same-register collisions: when
    several runnable processes target the same free register it runs
    them back-to-back so all but one lose.  O(count) per tick. *)

val with_crashes : base:t -> crash_times:(int * int) list -> t
(** [with_crashes ~base ~crash_times] behaves like [base] but crashes
    pid [p] at the first tick at or after time [s] for every [(s, p)] in
    [crash_times].  Entries whose pid already finished are skipped. *)

val with_crash_recovery : base:t -> crashes:(int * int) list -> recover_after:int -> t
(** Crash-recovery schedule: behaves like {!with_crashes} for the
    [(time, pid)] entries of [crashes], and additionally resurrects each
    successfully crashed pid [recover_after] ticks after its crash (the
    executor restarts its program from the top, behind the recovery
    preamble — see {!Executor.run}).  Crashes that would kill the last
    runnable process are skipped, so pending recoveries are never
    stranded. *)

val crash_random : fraction:float -> rng:Renaming_rng.Xoshiro.t -> base:t -> t
(** Randomly crashes processes during the run (roughly [fraction] of
    scheduling decisions become crashes while more than one process
    remains); stresses tolerance to names burnt by dead processes. *)
