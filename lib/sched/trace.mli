(** Schedule traces: record the adversary's decisions during a run and
    replay them later as a deterministic adversary.

    Because algorithm randomness is already pinned by the seed, a
    recorded trace makes the *entire* execution reproducible — the
    missing nondeterminism (who stepped when, who crashed) is captured
    here.  Replaying a trace against a fresh instance with the same
    seeds must yield an identical report; the test suite checks this
    for every adversary, which pins down the executor's determinism.

    Traces also feed the analysis helpers: per-process step timelines
    and operation census. *)

type event =
  | Scheduled of { time : int; pid : int; op : Op.t }
  | Crashed of { time : int; pid : int }
  | Recovered of { time : int; pid : int }

(** What a replay (or a directed run, {!Directed}) was about to do when
    the instance diverged from the recording.  [`Exhausted] means the
    trace ran out while processes were still runnable. *)
type expected =
  [ `Schedule of int | `Fault of int | `Crash of int | `Recover of int | `Exhausted ]

type divergence = {
  at : int;  (** decision index at which replay failed (= events consumed so far) *)
  expected : expected;
  time : int;  (** executor time at the failing decision *)
  runnable : int list;  (** pids runnable at that point, ascending *)
  crashed : int list;  (** pids crashed at that point, ascending (best effort: pids the replayer knows about) *)
}

exception Divergence of divergence
(** Raised by {!replaying} (and by {!Directed.run} in strict mode) when
    a decision cannot be applied: the named pid is not runnable (for
    schedule/fault/crash), not crashed (for recover), or the trace is
    exhausted while processes still run.  Structured so shrinkers and
    users can act on it instead of parsing a [Failure] string. *)

val pp_divergence : Format.formatter -> divergence -> unit

type t

val create : unit -> t

val length : t -> int

val events : t -> event list
(** In execution order. *)

val recording : t -> base:Adversary.t -> Adversary.t
(** Wraps [base]; every decision it makes is appended to the trace
    (with the operation the scheduled process was about to perform). *)

val replaying : t -> Adversary.t
(** An adversary that replays the recorded decisions verbatim.  Raises
    {!Divergence} if the instance diverges from the recording (a
    decision names a process that is not in the required state) or the
    trace is exhausted while processes still run. *)

val census : t -> (string * int) list
(** Operation counts by kind (["tas-name", 812; ...]), sorted by kind
    name; crashes appear as ["crash"]. *)

val pp_summary : Format.formatter -> t -> unit

val pp_timeline :
  ?max_pids:int -> ?max_events:int -> Format.formatter -> t -> unit
(** ASCII timeline: one lane per process (lowest pids first), one column
    per recorded event.  Lane glyphs: [t] TAS, [r] read, [m] owned-name,
    [s] τ-submit, [p] τ-poll, [w] word write, [o] word read, [l]
    release, [y] yield, [X] crash, [R] recover, [.] idle.  Intended for
    eyeballing small adversarial executions. *)
