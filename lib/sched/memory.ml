module Tas_array = Renaming_shm.Tas_array
module Tau_register = Renaming_device.Tau_register

type region = Names | Aux | Words | Device

type access = {
  acc_region : region;
  acc_idx : int;
  acc_write : bool;
  acc_pid_sensitive : bool;
}

let pp_access fmt a =
  Format.fprintf fmt "%s %s[%d]%s"
    (if a.acc_write then "write" else "read")
    (match a.acc_region with Names -> "names" | Aux -> "aux" | Words -> "words" | Device -> "tau")
    a.acc_idx
    (if a.acc_pid_sensitive then " (pid-sensitive)" else "")

type t = {
  names : Tas_array.t;
  aux : Tas_array.t;
  taus : Tau_register.t array;
  words : int array;  (* atomic read/write registers, init 0 *)
  (* τ-registers with queued requests, so a device tick only visits
     registers that actually have work. *)
  mutable dirty : int list;
  dirty_flag : bool array;
  (* Optional instrumentation: the static-analysis audit attaches a
     logger here and [apply] reports the concrete cells each executed
     operation read and wrote.  [None] (the default) costs one mutable
     field test per operation. *)
  mutable logger : (pid:int -> Op.t -> access list -> unit) option;
}

let create ~namespace ?(aux = 0) ?(words = 0) ?(taus = [||]) () =
  {
    names = Tas_array.create namespace;
    aux = Tas_array.create aux;
    taus;
    words = Array.make words 0;
    dirty = [];
    dirty_flag = Array.make (Array.length taus) false;
    logger = None;
  }

let names t = t.names
let aux t = t.aux
let taus t = t.taus
let words t = t.words

let namespace t = Tas_array.size t.names

let set_access_logger t logger = t.logger <- logger

let read region idx = { acc_region = region; acc_idx = idx; acc_write = false; acc_pid_sensitive = false }
let write region idx = { acc_region = region; acc_idx = idx; acc_write = true; acc_pid_sensitive = false }
let pid_sensitive a = { a with acc_pid_sensitive = true }

(* The concrete access set of one executed operation, reflecting what
   actually happened: a TAS that lost records no write, a release by a
   non-owner records no write.  Only computed when a logger is
   attached. *)
let accesses_of ~pid:_ (op : Op.t) (response : Op.response) =
  match (op, response) with
  | Tas_name i, Bool won ->
    read Names i :: (if won then [ pid_sensitive (write Names i) ] else [])
  | Tas_aux i, Bool won -> read Aux i :: (if won then [ pid_sensitive (write Aux i) ] else [])
  | Read_name i, _ -> [ read Names i ]
  | Read_aux i, _ -> [ read Aux i ]
  | Owned_name i, _ -> [ pid_sensitive (read Names i) ]
  | Release_name i, Bool released ->
    pid_sensitive (read Names i) :: (if released then [ write Names i ] else [])
  | Read_word i, _ -> [ read Words i ]
  | Write_word { idx; _ }, _ -> [ write Words idx ]
  | Yield, _ -> []
  | Tau_submit { reg; _ }, _ -> [ pid_sensitive (write Device reg) ]
  | Tau_poll reg, _ -> [ pid_sensitive (read Device reg) ]
  | (Tas_name _ | Tas_aux _ | Release_name _), _ ->
    (* [apply] below always answers these with [Bool]. *)
    assert false

let apply t ~pid (op : Op.t) : Op.response =
  let response : Op.response =
    match op with
    | Tas_name i -> Bool (Tas_array.test_and_set t.names ~idx:i ~pid)
    | Tas_aux i -> Bool (Tas_array.test_and_set t.aux ~idx:i ~pid)
    | Read_name i -> Bool (Tas_array.is_set t.names i)
    | Read_aux i -> Bool (Tas_array.is_set t.aux i)
    | Owned_name i -> Bool (Tas_array.owner t.names i = Some pid)
    | Yield -> Unit
    | Tau_submit { reg; bit } ->
      Tau_register.submit t.taus.(reg) ~pid ~bit;
      if not t.dirty_flag.(reg) then begin
        t.dirty_flag.(reg) <- true;
        t.dirty <- reg :: t.dirty
      end;
      Unit
    | Tau_poll reg -> Tau (Tau_register.poll t.taus.(reg) ~pid)
    | Release_name i -> Bool (Tas_array.release t.names ~idx:i ~pid)
    | Read_word i -> Value t.words.(i)
    | Write_word { idx; value } ->
      t.words.(idx) <- value;
      Unit
  in
  (match t.logger with
  | None -> ()
  | Some log -> log ~pid op (accesses_of ~pid op response));
  response

let tick_taus t =
  let dirty = t.dirty in
  t.dirty <- [];
  List.iter
    (fun reg ->
      t.dirty_flag.(reg) <- false;
      Tau_register.run_cycle t.taus.(reg) ~resolve_order:(fun _ -> ()))
    dirty

let assignment_of_returns t returns =
  Renaming_shm.Assignment.make ~namespace:(namespace t) returns
