module Tas_array = Renaming_shm.Tas_array
module Tau_register = Renaming_device.Tau_register

type t = {
  names : Tas_array.t;
  aux : Tas_array.t;
  taus : Tau_register.t array;
  words : int array;  (* atomic read/write registers, init 0 *)
  (* τ-registers with queued requests, so a device tick only visits
     registers that actually have work. *)
  mutable dirty : int list;
  dirty_flag : bool array;
}

let create ~namespace ?(aux = 0) ?(words = 0) ?(taus = [||]) () =
  {
    names = Tas_array.create namespace;
    aux = Tas_array.create aux;
    taus;
    words = Array.make words 0;
    dirty = [];
    dirty_flag = Array.make (Array.length taus) false;
  }

let names t = t.names
let aux t = t.aux
let taus t = t.taus
let words t = t.words

let namespace t = Tas_array.size t.names

let apply t ~pid (op : Op.t) : Op.response =
  match op with
  | Tas_name i -> Bool (Tas_array.test_and_set t.names ~idx:i ~pid)
  | Tas_aux i -> Bool (Tas_array.test_and_set t.aux ~idx:i ~pid)
  | Read_name i -> Bool (Tas_array.is_set t.names i)
  | Read_aux i -> Bool (Tas_array.is_set t.aux i)
  | Owned_name i -> Bool (Tas_array.owner t.names i = Some pid)
  | Yield -> Unit
  | Tau_submit { reg; bit } ->
    Tau_register.submit t.taus.(reg) ~pid ~bit;
    if not t.dirty_flag.(reg) then begin
      t.dirty_flag.(reg) <- true;
      t.dirty <- reg :: t.dirty
    end;
    Unit
  | Tau_poll reg -> Tau (Tau_register.poll t.taus.(reg) ~pid)
  | Release_name i -> Bool (Tas_array.release t.names ~idx:i ~pid)
  | Read_word i -> Value t.words.(i)
  | Write_word { idx; value } ->
    t.words.(idx) <- value;
    Unit

let tick_taus t =
  let dirty = t.dirty in
  t.dirty <- [];
  List.iter
    (fun reg ->
      t.dirty_flag.(reg) <- false;
      Tau_register.run_cycle t.taus.(reg) ~resolve_order:(fun _ -> ()))
    dirty

let assignment_of_returns t returns =
  Renaming_shm.Assignment.make ~namespace:(namespace t) returns
