(** Directed executions: drive {!Executor.run} through an explicit list
    of adversary choices, then fall back to a deterministic
    non-preemptive default, recording every decision point along the
    way.

    This is the substrate of systematic schedule exploration
    ([Renaming_mcheck]) and counterexample shrinking
    ([Renaming_faults.Shrink]): a schedule is identified by its [choice]
    prefix — everything after the prefix is filled in by the default
    policy (keep running the previous process; when it finishes or
    blocks, run the lowest-numbered runnable pid), which never crashes,
    recovers or injects faults.  Given a deterministic instance builder,
    the same prefix always reproduces the same execution. *)

type choice =
  | Step of int  (** schedule this pid's pending operation *)
  | Fault of int
      (** schedule this pid but make the operation fault transiently
          (respond {!Op.Faulted} without touching memory); only feasible
          when the pending operation is {!Op.faultable} *)
  | Crash of int
  | Recover of int

val pp_choice : Format.formatter -> choice -> unit

val choice_to_string : choice -> string
(** ["step 3"], ["fault 1"], ["crash 0"], ["recover 2"] — the repro
    artifact line format, inverse of {!choice_of_string}. *)

val choice_of_string : string -> (choice, string) result

(** One decision point of the recorded execution. *)
type point = {
  index : int;  (** 0-based decision index *)
  time : int;  (** executor time (executed steps so far) *)
  prev : int;  (** pid whose operation executed last, [-1] before the first step *)
  runnable : int array;  (** runnable pids, ascending *)
  crashed : int array;  (** currently crashed pids, ascending *)
  ops : Op.t array;  (** [ops.(i)] is the pending operation of [runnable.(i)] *)
  taken : choice;  (** the decision actually applied here *)
}

type outcome =
  | Finished of Report.t
  | Raised of exn
      (** an exception escaped the run — typically a monitor violation
          raised from the [on_event] hook, or {!Trace.Divergence} in
          strict mode *)

type result = {
  points : point array;  (** decision points with [index >= record_from] *)
  taken : choice array;  (** every decision applied, in order, from index 0 *)
  dropped : int;  (** prefix choices skipped as infeasible (permissive mode only) *)
  outcome : outcome;
}

val run :
  ?obs:Renaming_obs.Obs.t ->
  ?max_ticks:int ->
  ?tau_cadence:int ->
  ?strict:bool ->
  ?record_from:int ->
  ?yield_rotate:int ->
  ?on_event:(Executor.event -> unit) ->
  prefix:choice list ->
  Executor.instance ->
  result
(** Replays [prefix], then extends with the default policy until the
    run ends.  A choice is *feasible* when its pid is in the required
    state ([Step]/[Crash]: runnable; [Fault]: runnable with a faultable
    pending op; [Recover]: crashed).

    [strict] (default [false]): an infeasible choice raises
    {!Trace.Divergence} (carrying the decision index, the expected
    action and the runnable/crashed sets).  In permissive mode it is
    skipped and counted in [dropped] — the mode shrinkers use, because
    deleting events from a prefix legitimately invalidates later ones.

    [record_from] (default 0): skip materialising [points] below this
    index — exploration only expands alternatives past its own prefix,
    and not recording the prefix keeps deep DFS cheap.  [taken] is
    always complete.

    Any exception escaping the underlying {!Executor.run} (including
    violations raised by an [on_event] monitor hook) is captured in
    [outcome] so the caller still gets the partial record.
    [max_ticks] defaults to [100_000] — directed runs are small by
    design and the guard turns accidental livelock into a structured
    {!Report.Livelock} outcome.

    [yield_rotate] (default: off) is the *fairness/yield bound* of the
    default tail: once one pid has run that many consecutive steps, the
    default policy hands the processor to the cyclically next runnable
    pid at the spinning pid's next [Yield] (deliberate backoff) point
    instead of spinning the waiter against the livelock guard.
    Retry/backoff loops ([Renaming_faults.Retry], the service handoff
    protocols) yield while waiting for another process's progress; an
    unfair tail would burn the whole [max_ticks] budget there.  The
    bound only redirects the deterministic *default* policy — explicit
    prefix choices are never overridden — so directed replays stay
    deterministic. *)

val condensed : ?points:point array -> choice array -> string
(** Dejafu-style condensed rendering of a schedule, e.g. [S0x2--P1--S2]:
    [S] starts or non-preemptively continues a pid, [P] preempts a
    still-runnable one, [F]/[C]/[R] are fault/crash/recover injections,
    and [xk] collapses [k] consecutive steps of one pid (so the string
    remains replayable, unlike dejafu's).  With [points] (matching the
    recorded decision points) the [S]/[P] distinction is exact;
    without, every switch after the first segment is conservatively
    rendered [P]. *)

val choices_of_condensed : string -> (choice list, string) Stdlib.result
(** Inverse of {!condensed} ([S]/[P] both parse as steps — the
    distinction is derivable from the replay, not trusted from the
    artifact). *)
