type t =
  | Tas_name of int
  | Tas_aux of int
  | Read_name of int
  | Read_aux of int
  | Owned_name of int
  | Tau_submit of { reg : int; bit : int }
  | Tau_poll of int
  | Read_word of int
  | Write_word of { idx : int; value : int }
  | Release_name of int
  | Yield

type response =
  | Bool of bool
  | Unit
  | Value of int
  | Tau of Renaming_device.Tau_register.answer
  | Faulted

let pp fmt = function
  | Tas_name i -> Format.fprintf fmt "tas-name[%d]" i
  | Tas_aux i -> Format.fprintf fmt "tas-aux[%d]" i
  | Read_name i -> Format.fprintf fmt "read-name[%d]" i
  | Read_aux i -> Format.fprintf fmt "read-aux[%d]" i
  | Owned_name i -> Format.fprintf fmt "owned-name[%d]" i
  | Tau_submit { reg; bit } -> Format.fprintf fmt "tau-submit[%d].bit[%d]" reg bit
  | Tau_poll reg -> Format.fprintf fmt "tau-poll[%d]" reg
  | Read_word i -> Format.fprintf fmt "read-word[%d]" i
  | Write_word { idx; value } -> Format.fprintf fmt "write-word[%d]<-%d" idx value
  | Release_name i -> Format.fprintf fmt "release-name[%d]" i
  | Yield -> Format.fprintf fmt "yield"

let pp_response fmt = function
  | Bool b -> Format.fprintf fmt "bool:%b" b
  | Unit -> Format.fprintf fmt "unit"
  | Value v -> Format.fprintf fmt "value:%d" v
  | Tau Renaming_device.Tau_register.Pending -> Format.fprintf fmt "tau:pending"
  | Tau Renaming_device.Tau_register.Won_bit -> Format.fprintf fmt "tau:won"
  | Tau Renaming_device.Tau_register.Lost_bit -> Format.fprintf fmt "tau:lost"
  | Faulted -> Format.fprintf fmt "faulted"

let target_name = function
  | Tas_name i | Read_name i | Release_name i -> Some i
  | Owned_name _ | Tas_aux _ | Read_aux _ | Tau_submit _ | Tau_poll _ | Read_word _ | Write_word _
  | Yield ->
    None

let faultable = function
  | Tas_name _ | Tas_aux _ | Read_name _ | Read_aux _ -> true
  | Owned_name _ | Tau_submit _ | Tau_poll _ | Read_word _ | Write_word _ | Release_name _ | Yield
    ->
    false

(* The tag/representatives pair lets the static-analysis audit prove it
   exercised every constructor: [tag] is an exhaustive match (adding a
   constructor is a compile error here), and the audit checks that
   [representatives] hits all [n_tags] tags. *)

let tag = function
  | Tas_name _ -> 0
  | Tas_aux _ -> 1
  | Read_name _ -> 2
  | Read_aux _ -> 3
  | Owned_name _ -> 4
  | Tau_submit _ -> 5
  | Tau_poll _ -> 6
  | Read_word _ -> 7
  | Write_word _ -> 8
  | Release_name _ -> 9
  | Yield -> 10

let n_tags = 11

let representatives ~idx ~value =
  [
    Tas_name idx;
    Tas_aux idx;
    Read_name idx;
    Read_aux idx;
    Owned_name idx;
    Tau_submit { reg = idx; bit = 0 };
    Tau_poll idx;
    Read_word idx;
    Write_word { idx; value };
    Release_name idx;
    Yield;
  ]
