(* Telemetry sinks for the simulation layer: adapters that turn the
   existing instrumentation hooks into first-class obs signals.

   The main one reuses {!Memory.set_access_logger} — the same hook the
   static-analysis coverage audit and the fuzzer's interleaving
   coverage attach to — so every concrete shared-memory access becomes
   a counter increment and (optionally) a trace event. *)

module Obs = Renaming_obs.Obs
module Metrics = Renaming_obs.Metrics

let op_label (op : Op.t) =
  match op with
  | Op.Tas_name _ -> "tas-name"
  | Op.Tas_aux _ -> "tas-aux"
  | Op.Read_name _ -> "read-name"
  | Op.Read_aux _ -> "read-aux"
  | Op.Owned_name _ -> "owned-name"
  | Op.Tau_submit _ -> "tau-submit"
  | Op.Tau_poll _ -> "tau-poll"
  | Op.Read_word _ -> "read-word"
  | Op.Write_word _ -> "write-word"
  | Op.Release_name _ -> "release-name"
  | Op.Yield -> "yield"

let op_args (op : Op.t) =
  match op with
  | Op.Tas_name i | Op.Tas_aux i | Op.Read_name i | Op.Read_aux i | Op.Owned_name i
  | Op.Release_name i | Op.Tau_poll i | Op.Read_word i ->
    [ ("idx", i) ]
  | Op.Tau_submit { reg; bit } -> [ ("reg", reg); ("bit", bit) ]
  | Op.Write_word { idx; value } -> [ ("idx", idx); ("value", value) ]
  | Op.Yield -> []

let region_name = function
  | Memory.Names -> "names"
  | Memory.Aux -> "aux"
  | Memory.Words -> "words"
  | Memory.Device -> "device"

(* Counter handles are resolved once per attachment, so the logger body
   is field increments only. *)
let access_logger ?(events = false) obs =
  let reads = Obs.counter obs "mem/reads" in
  let writes = Obs.counter obs "mem/writes" in
  let region_counters =
    List.map
      (fun region ->
        ( region,
          Obs.counter obs (Printf.sprintf "mem/%s-reads" (region_name region)),
          Obs.counter obs (Printf.sprintf "mem/%s-writes" (region_name region)) ))
      [ Memory.Names; Memory.Aux; Memory.Words; Memory.Device ]
  in
  fun ~pid (op : Op.t) accesses ->
    List.iter
      (fun (a : Memory.access) ->
        let _, region_reads, region_writes =
          List.find (fun (r, _, _) -> r = a.Memory.acc_region) region_counters
        in
        if a.Memory.acc_write then begin
          Metrics.incr writes;
          Metrics.incr region_writes
        end
        else begin
          Metrics.incr reads;
          Metrics.incr region_reads
        end;
        if events then
          Obs.instant obs ~pid
            ~args:[ ("idx", a.Memory.acc_idx); ("write", if a.Memory.acc_write then 1 else 0) ]
            ("mem:" ^ region_name a.Memory.acc_region))
      accesses;
    ignore op

let attach ?events obs memory = Memory.set_access_logger memory (Some (access_logger ?events obs))
