(** The asynchronous execution engine.

    Repeatedly asks the adversary which runnable process takes the next
    step (or which process crashes, or which crashed process recovers),
    executes that process's pending shared-memory operation, resumes its
    continuation (local computation runs eagerly until the next
    operation), and ticks the τ-register device clocks at a fixed
    cadence.  Terminates when every process has returned or crashed, or
    when the livelock guard trips.

    An *instance* bundles the shared memory with one program per
    process; each program returns the name it acquired ([Some name]) or
    [None] (almost-tight algorithms give up by design; a sound algorithm
    must never *claim* a name it did not win). *)

type instance = {
  memory : Memory.t;
  programs : int option Program.t array;  (** index = pid *)
  label : string;  (** algorithm name, for reports *)
}

(** Everything observable about a run, in execution order — the feed of
    the online safety monitor ({!Renaming_faults.Monitor}). *)
type event =
  | Stepped of { time : int; pid : int; op : Op.t; response : Op.response }
  | Crashed of { time : int; pid : int }
  | Recovered of { time : int; pid : int }
  | Returned of { time : int; pid : int; value : int option }

val pp_event : Format.formatter -> event -> unit

val run :
  ?obs:Renaming_obs.Obs.t ->
  ?tau_cadence:int ->
  ?max_ticks:int ->
  ?on_tick:(time:int -> pid:int -> op:Op.t -> unit) ->
  ?on_event:(event -> unit) ->
  ?inject:(time:int -> pid:int -> op:Op.t -> bool) ->
  ?recover:(int -> int option Program.t) ->
  adversary:Adversary.t ->
  instance ->
  Report.t
(** [obs] attaches a telemetry capability: every event is mirrored into
    its ring (steps as instants, crash windows as spans, returns), the
    per-pid step counts land in the [<label>/steps] histogram, and
    [<label>/executor.steps], [<label>/named], [<label>/crashed] and
    [<label>/recovered] counters are updated.  Omitting it costs a
    single branch per event (docs/observability.md).

    [tau_cadence] (default 1): device cycles run after every [cadence]
    executed steps — the paper's constant answer delay.

    [max_ticks] guards against livelock (default [10^9]); exceeding it
    ends the run with outcome {!Report.Livelock} (still-running
    processes count as unnamed) instead of raising, so sweeps can record
    it.

    [on_tick] is the lightweight instrumentation hook (scheduled
    operations only); [on_event] additionally sees responses, crashes,
    recoveries and returns.

    [inject ~time ~pid ~op] returning [true] makes that operation fail
    transiently: it does not touch memory and responds {!Op.Faulted}
    (the op still costs a step).  Injectors should only fault
    {!Op.faultable} operations — programs built from the plain
    primitives treat [Faulted] on other ops as a protocol error.

    [recover pid] builds the program a crashed process restarts with
    when the adversary issues {!Adversary.Recover}.  The default
    restarts [programs.(pid)] from the top behind a
    {!Program.recover_owned} preamble, so a process that crashed after
    winning a register re-discovers and keeps that name rather than
    leaking it. *)
