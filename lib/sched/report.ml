module Assignment = Renaming_shm.Assignment

type outcome = Completed | Livelock of { max_ticks : int }

type t = {
  assignment : Assignment.t;
  ledger : Renaming_shm.Step_ledger.t;
  ticks : int;
  outcome : outcome;
  crashed : int list;
  recovered : int list;
  adversary : string;
  counters : (string * float) list;
}

let max_steps t = Renaming_shm.Step_ledger.max_steps t.ledger

let named_count t = Assignment.named_count t.assignment

let surviving_unnamed t =
  let crashed = t.crashed in
  List.filter (fun pid -> not (List.mem pid crashed)) (Assignment.unnamed t.assignment)

let is_sound t = Assignment.is_valid t.assignment

let is_livelock t = match t.outcome with Livelock _ -> true | Completed -> false

let outcome_name t = match t.outcome with Completed -> "completed" | Livelock _ -> "livelock"

let pp fmt t =
  Format.fprintf fmt
    "@[<v>adversary: %s@ named: %d/%d  crashed: %d  recovered: %d  unnamed survivors: %d@ steps: max=%d total=%d ticks=%d@ outcome: %s  sound: %b@]"
    t.adversary (named_count t)
    (Array.length t.assignment.Assignment.names)
    (List.length t.crashed) (List.length t.recovered)
    (List.length (surviving_unnamed t))
    (max_steps t)
    (Renaming_shm.Step_ledger.total t.ledger)
    t.ticks (outcome_name t) (is_sound t)
