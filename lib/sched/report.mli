(** Result of executing one renaming instance. *)

type outcome =
  | Completed  (** every process returned or is crashed *)
  | Livelock of { max_ticks : int }
      (** the run was cut off after [max_ticks] executed steps with
          processes still running — the structured form of the livelock
          guard, so chaos campaigns can record it instead of aborting *)

type t = {
  assignment : Renaming_shm.Assignment.t;
  ledger : Renaming_shm.Step_ledger.t;
  ticks : int;  (** total executed operations across all processes *)
  outcome : outcome;
  crashed : int list;
      (** pids crashed by the adversary and still dead at the end
          (recovered pids are not listed), ascending *)
  recovered : int list;  (** pids resurrected at least once, ascending *)
  adversary : string;
  counters : (string * float) list;
      (** algorithm-specific metrics appended by instrumentation hooks,
          e.g. per-round request counts in the tight algorithm *)
}

val max_steps : t -> int
(** Step complexity of the run: max steps over all processes (crashed
    ones included — their steps count until the crash). *)

val named_count : t -> int

val surviving_unnamed : t -> int list
(** Processes that neither crashed nor obtained a name — these are the
    failures the w.h.p. statements bound. *)

val is_sound : t -> bool
(** No duplicate or out-of-range names. *)

val is_livelock : t -> bool

val outcome_name : t -> string

val pp : Format.formatter -> t -> unit
