(** Processes as resumable programs over shared-memory operations.

    A program is a free monad over {!Op.t}: it is either [Done v] or
    parked at a shared-memory operation with a continuation awaiting the
    response.  The executor advances one parked operation per scheduled
    step; everything between two operations (arithmetic, coin flips) is
    local computation and costs nothing, per the model of §II-A. *)

type 'a t =
  | Done of 'a
  | Step of Op.t * (Op.response -> 'a t)

val return : 'a -> 'a t

val bind : 'a t -> ('a -> 'b t) -> 'b t

val map : ('a -> 'b) -> 'a t -> 'b t

module Syntax : sig
  val ( let* ) : 'a t -> ('a -> 'b t) -> 'b t
  val ( let+ ) : 'a t -> ('a -> 'b) -> 'b t
end

(** {2 Primitive operations} *)

val tas_name : int -> bool t
(** Try to win namespace register [i]; [true] iff won. *)

val tas_aux : int -> bool t
val read_name : int -> bool t
val read_aux : int -> bool t
val release_name : int -> bool t
(** Free a namespace register this process owns; [true] iff it did own
    it (long-lived renaming only). *)

val owned_name : int -> bool t
(** Does this process own namespace register [i]?  The crash-recovery
    primitive: a resurrected process re-discovers a name it won before
    crashing.  Costs one step; never faulted. *)

val yield : unit t
(** One deliberate no-op step — the backoff unit of the transient-fault
    retry helpers. *)

(** {2 Fault-aware primitives}

    Like their plain counterparts, but surface an injected transient
    fault as [Error `Faulted] instead of raising.  The plain primitives
    treat [Faulted] as a protocol error ([Failure]) so that code not
    written for the fault model fails fast rather than misbehaving;
    fault-tolerant retry loops ({!Renaming_faults.Retry}) build on these
    variants. *)

val try_tas_name : int -> (bool, [ `Faulted ]) result t
val try_tas_aux : int -> (bool, [ `Faulted ]) result t
val try_read_name : int -> (bool, [ `Faulted ]) result t
val try_read_aux : int -> (bool, [ `Faulted ]) result t

val read_word : int -> int t
(** Read an atomic read/write register. *)

val write_word : idx:int -> value:int -> unit t

val tau_submit : reg:int -> bit:int -> unit t

val tau_poll : int -> Renaming_device.Tau_register.answer t

val tau_await : int -> bool t
(** Poll τ-register [reg] until the answer is no longer [Pending];
    [true] iff the bit was won.  Each poll is a step; the executor's
    device cadence bounds the number of polls by a constant. *)

(** {2 Composite helpers used by several algorithms} *)

val scan_names : first:int -> count:int -> int option t
(** TAS registers [first .. first+count-1] in order until one is won;
    returns the won name, or [None] if all were taken. *)

val recover_owned : namespace:int -> int option t
(** Sweep the namespace with {!owned_name} and return the register this
    process already owns, if any.  The standard recovery preamble: run
    after a crash-restart so a process that won a name before crashing
    keeps it instead of leaking it.  Costs up to [namespace] steps. *)

val run_local : 'a t -> 'a option
(** Runs a program only if it performs no shared-memory operation;
    [None] if it parks.  Used in unit tests. *)
