module Sample = Renaming_rng.Sample

type view = {
  time : int;
  runnable_count : int;
  runnable_nth : int -> int;
  is_runnable : int -> bool;
  is_crashed : int -> bool;
  pending_op : int -> Op.t;
  memory : Memory.t;
}

type decision = Schedule of int | Crash of int | Recover of int

type t = { name : string; decide : view -> decision }

let round_robin () =
  let cursor = ref 0 in
  {
    name = "round-robin";
    decide =
      (fun view ->
        let i = !cursor mod view.runnable_count in
        cursor := i + 1;
        Schedule (view.runnable_nth i));
  }

let uniform rng =
  {
    name = "uniform";
    decide = (fun view -> Schedule (view.runnable_nth (Sample.uniform_int rng view.runnable_count)));
  }

let fold_runnable view ~init ~f =
  let acc = ref init in
  for i = 0 to view.runnable_count - 1 do
    acc := f !acc (view.runnable_nth i)
  done;
  !acc

let lifo =
  {
    name = "lifo";
    decide = (fun view -> Schedule (fold_runnable view ~init:(-1) ~f:max));
  }

let min_runnable view = fold_runnable view ~init:max_int ~f:min

let op_is_wasted view pid =
  match view.pending_op pid with
  | Op.Tas_name i -> Renaming_shm.Tas_array.is_set (Memory.names view.memory) i
  | Op.Tas_aux i -> Renaming_shm.Tas_array.is_set (Memory.aux view.memory) i
  | Op.Read_name _ | Op.Read_aux _ | Op.Owned_name _ | Op.Tau_submit _ | Op.Tau_poll _
  | Op.Read_word _ | Op.Write_word _ | Op.Release_name _ | Op.Yield ->
    false

(* The adaptive heuristics inspect at most this many runnable processes
   per tick, keeping them usable at large n; the model allows full
   inspection, this is purely a simulation-cost bound. *)
let adaptive_scan_window = 512

let adaptive_contention =
  {
    name = "adaptive-contention";
    decide =
      (fun view ->
        (* Schedule a process whose TAS is doomed, if any; otherwise the
           lowest pid (delaying everyone else equally). *)
        let doomed = ref (-1) in
        (try
           for i = 0 to min adaptive_scan_window view.runnable_count - 1 do
             let pid = view.runnable_nth i in
             if op_is_wasted view pid then begin
               doomed := pid;
               raise Exit
             end
           done
         with Exit -> ());
        if !doomed <> -1 then Schedule !doomed else Schedule (min_runnable view));
  }

let colluding =
  {
    name = "colluding";
    decide =
      (fun view ->
        (* Prefer a process whose target register is shared with another
           runnable process, so running the group back-to-back makes all
           but one lose. *)
        let targets = Hashtbl.create 16 in
        let best = ref (-1) and best_count = ref 1 in
        for i = 0 to min adaptive_scan_window view.runnable_count - 1 do
          let pid = view.runnable_nth i in
          match Op.target_name (view.pending_op pid) with
          | Some reg ->
            let count, lowest =
              match Hashtbl.find_opt targets reg with
              | Some (c, p) -> (c + 1, min p pid)
              | None -> (1, pid)
            in
            Hashtbl.replace targets reg (count, lowest);
            if count > !best_count then begin
              best := lowest;
              best_count := count
            end
          | None -> ()
        done;
        if !best <> -1 then Schedule !best else Schedule (min_runnable view));
  }

let with_crashes ~base ~crash_times =
  let pendingr = ref (List.sort compare crash_times) in
  {
    name = base.name ^ "+crashes";
    decide =
      (fun view ->
        let rec try_crash () =
          match !pendingr with
          | (at, pid) :: rest when at <= view.time ->
            pendingr := rest;
            if view.is_runnable pid && view.runnable_count > 1 then Some (Crash pid)
            else try_crash ()
          | _ -> None
        in
        match try_crash () with
        | Some d -> d
        | None -> base.decide view);
  }

let with_crash_recovery ~base ~crashes ~recover_after =
  if recover_after < 1 then invalid_arg "Adversary.with_crash_recovery: recover_after must be >= 1";
  let pending_crashes = ref (List.sort compare crashes) in
  (* Filled as crashes actually land; times are monotone because crashes
     are processed in time order and all get the same recovery delay. *)
  let pending_recoveries = ref [] in
  {
    name = base.name ^ "+crash-recovery";
    decide =
      (fun view ->
        let rec try_recover () =
          match !pending_recoveries with
          | (at, pid) :: rest when at <= view.time ->
            pending_recoveries := rest;
            if view.is_crashed pid then Some (Recover pid) else try_recover ()
          | _ -> None
        in
        let rec try_crash () =
          match !pending_crashes with
          | (at, pid) :: rest when at <= view.time ->
            pending_crashes := rest;
            (* Never kill the last runnable process: the executor stops
               when nobody can step, which would strand the pending
               recoveries forever. *)
            if view.is_runnable pid && view.runnable_count > 1 then begin
              pending_recoveries := !pending_recoveries @ [ (view.time + recover_after, pid) ];
              Some (Crash pid)
            end
            else try_crash ()
          | _ -> None
        in
        match try_recover () with
        | Some d -> d
        | None -> (
          match try_crash () with
          | Some d -> d
          | None -> base.decide view));
  }

let crash_random ~fraction ~rng ~base =
  {
    name = Printf.sprintf "%s+crash(%.2f)" base.name fraction;
    decide =
      (fun view ->
        if view.runnable_count > 1 && Sample.bernoulli rng fraction then
          Crash (view.runnable_nth (Sample.uniform_int rng view.runnable_count))
        else base.decide view);
  }
