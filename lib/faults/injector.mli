(** Transient-fault injectors for {!Renaming_sched.Executor.run}'s
    [inject] hook.

    Every injector here only ever faults {!Renaming_sched.Op.faultable}
    operations (namespace/auxiliary TAS and reads), so recovery sweeps,
    τ-register traffic and backoff yields are never eaten — see
    docs/fault_model.md for the rationale.  Determinism comes from the
    caller-supplied RNG: same seed, same faults. *)

type t = time:int -> pid:int -> op:Renaming_sched.Op.t -> bool

val none : t

val bernoulli : rate:float -> rng:Renaming_rng.Xoshiro.t -> t
(** Each faultable operation faults independently with probability
    [rate]. *)

val window : from_:int -> until:int -> rate:float -> rng:Renaming_rng.Xoshiro.t -> t
(** Bernoulli faults confined to ticks [from_, until) — a transient
    event (EMI burst, failing DIMM before replacement). *)

val targeting : pids:int list -> rate:float -> rng:Renaming_rng.Xoshiro.t -> t
(** Bernoulli faults that only hit the given processes. *)

val any : t list -> t
(** Faults when any component injector faults. *)

val counting : t -> t * (unit -> int)
(** Wraps an injector with a hit counter (for reports). *)
