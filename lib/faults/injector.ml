module Op = Renaming_sched.Op
module Sample = Renaming_rng.Sample

type t = time:int -> pid:int -> op:Op.t -> bool

let none : t = fun ~time:_ ~pid:_ ~op:_ -> false

let bernoulli ~rate ~rng : t =
  if rate < 0. || rate > 1. then invalid_arg "Injector.bernoulli: rate must be in [0, 1]";
  if rate = 0. then none
  else fun ~time:_ ~pid:_ ~op -> Op.faultable op && Sample.bernoulli rng rate

let window ~from_ ~until ~rate ~rng : t =
  if from_ > until then invalid_arg "Injector.window: empty window";
  let inner = bernoulli ~rate ~rng in
  fun ~time ~pid ~op -> time >= from_ && time < until && inner ~time ~pid ~op

let targeting ~pids ~rate ~rng : t =
  let victims = Hashtbl.create (List.length pids) in
  List.iter (fun pid -> Hashtbl.replace victims pid ()) pids;
  let inner = bernoulli ~rate ~rng in
  fun ~time ~pid ~op -> Hashtbl.mem victims pid && inner ~time ~pid ~op

let any injectors : t =
  fun ~time ~pid ~op -> List.exists (fun i -> i ~time ~pid ~op) injectors

let counting inner =
  let count = ref 0 in
  let injector ~time ~pid ~op =
    let hit = inner ~time ~pid ~op in
    if hit then incr count;
    hit
  in
  (injector, fun () -> !count)
