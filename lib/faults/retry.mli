(** Bounded retry with exponential backoff over transient memory faults.

    Transient faults (docs/fault_model.md) make a TAS or read respond
    {!Renaming_sched.Op.Faulted} instead of taking effect.  These
    combinators retry the operation up to [attempts] times, idling
    [base_delay * 2^(k-1)] steps (capped at [max_delay]) before the
    k+1-th attempt via explicit {!Renaming_sched.Op.Yield} steps — in an
    asynchronous model, backing off can only mean burning scheduled
    steps.

    In a fault-free run every combinator behaves exactly like its
    {!Renaming_sched.Program} counterpart at identical step cost, so the
    core algorithms route all namespace traffic through here
    unconditionally.

    Exhaustion is resolved in the safe direction: a TAS that faults
    every attempt reports *lost* (the process never claims an unproven
    name), a read reports *set* (the scanner moves on).

    Retry time can additionally be bounded with a [time_budget] measured
    on an injected {!Renaming_clock.Clock.t} — a virtual clock under the
    simulator, a real one only at the [bin/] edge.  The default clock is
    {!Renaming_clock.Clock.none}, under which the budget never binds, so
    untimed callers are unaffected. *)

type policy = {
  attempts : int;
  base_delay : int;
  max_delay : int;
  time_budget : float option;
      (** Give up retrying (in the safe direction) once this much clock
          time has elapsed since the combinator started, even if
          attempts remain.  [None] (the default) disables the bound. *)
}

val make_policy :
  ?attempts:int -> ?base_delay:int -> ?max_delay:int -> ?time_budget:float -> unit -> policy
(** Defaults: 8 attempts, base delay 1, delay cap 64, no time budget. *)

val default : policy

val backoff_delay : policy -> attempt:int -> int
(** Yield steps inserted after failed attempt [attempt] (1-based). *)

val jittered_delay : policy -> rng:Renaming_rng.Xoshiro.t -> prev:int -> int
(** Decorrelated-jitter backoff: uniform on
    [[base_delay, min (max_delay, 3 * prev)]], always within
    [[base_delay, max_delay]].  Thread the returned value back as the
    next [prev] (start from [base_delay]); each caller walks its own
    delay chain, so synchronized retry herds spread out instead of
    colliding on the deterministic exponential ladder.  Used for
    transport resends and churn re-admission; the deterministic
    {!backoff_delay} remains for the yield-step program combinators,
    which must stay schedule-reproducible. *)

val tas_name :
  ?policy:policy -> ?clock:Renaming_clock.Clock.t -> int -> bool Renaming_sched.Program.t

val tas_aux :
  ?policy:policy -> ?clock:Renaming_clock.Clock.t -> int -> bool Renaming_sched.Program.t

val read_name :
  ?policy:policy -> ?clock:Renaming_clock.Clock.t -> int -> bool Renaming_sched.Program.t

val read_aux :
  ?policy:policy -> ?clock:Renaming_clock.Clock.t -> int -> bool Renaming_sched.Program.t

val scan_names :
  ?policy:policy ->
  ?clock:Renaming_clock.Clock.t ->
  first:int ->
  count:int ->
  unit ->
  int option Renaming_sched.Program.t
(** Fault-tolerant {!Renaming_sched.Program.scan_names}: registers whose
    retries exhaust are skipped as if taken. *)
