module Executor = Renaming_sched.Executor
module Memory = Renaming_sched.Memory
module Report = Renaming_sched.Report
module Tas_array = Renaming_shm.Tas_array
module Step_ledger = Renaming_shm.Step_ledger

type violation = { kind : string; message : string }

exception Violation of violation

let () =
  Printexc.register_printer (function
    | Violation { kind; message } -> Some (Printf.sprintf "Monitor.Violation[%s]: %s" kind message)
    | _ -> None)

type t = {
  memory : Memory.t;
  namespace : int;
  processes : int;
  check_ownership : bool;
  steps : int array;
  mutable total_steps : int;
  crashed : bool array;
  has_returned : bool array;
  claimed : (int, int) Hashtbl.t;  (* name -> pid *)
  (* Ring buffer of recent events, for the fail-fast trace excerpt. *)
  ring : string array;
  mutable ring_filled : int;
  mutable ring_next : int;
  mutable violations : int;
}

let create ?(check_ownership = false) ?(window = 24) ~memory ~processes () =
  if processes < 0 then invalid_arg "Monitor.create: negative processes";
  if window < 1 then invalid_arg "Monitor.create: window must be >= 1";
  {
    memory;
    namespace = Memory.namespace memory;
    processes;
    check_ownership;
    steps = Array.make processes 0;
    total_steps = 0;
    crashed = Array.make processes false;
    has_returned = Array.make processes false;
    claimed = Hashtbl.create (max 16 processes);
    ring = Array.make window "";
    ring_filled = 0;
    ring_next = 0;
    violations = 0;
  }

let remember t event =
  t.ring.(t.ring_next) <- Format.asprintf "%a" Executor.pp_event event;
  t.ring_next <- (t.ring_next + 1) mod Array.length t.ring;
  if t.ring_filled < Array.length t.ring then t.ring_filled <- t.ring_filled + 1

let excerpt t =
  let w = Array.length t.ring in
  let buf = Buffer.create 256 in
  Buffer.add_string buf "trace excerpt (oldest first):";
  for i = 0 to t.ring_filled - 1 do
    let idx = (t.ring_next - t.ring_filled + i + w) mod w in
    Buffer.add_string buf "\n  ";
    Buffer.add_string buf t.ring.(idx)
  done;
  Buffer.contents buf

let violation_count t = t.violations

let fail t ~kind fmt =
  Format.kasprintf
    (fun msg ->
      t.violations <- t.violations + 1;
      raise
        (Violation
           { kind; message = Printf.sprintf "safety violation: %s\n%s" msg (excerpt t) }))
    fmt

let check_pid t pid =
  if pid < 0 || pid >= t.processes then fail t ~kind:"unknown-pid" "unknown pid %d" pid

let hook t (event : Executor.event) =
  remember t event;
  match event with
  | Executor.Stepped { pid; time; op; _ } ->
    check_pid t pid;
    if t.crashed.(pid) then
      fail t ~kind:"step-after-crash" "process %d stepped (%a) at t=%d after crashing" pid
        Renaming_sched.Op.pp op time;
    if t.has_returned.(pid) then
      fail t ~kind:"step-after-return" "process %d stepped (%a) at t=%d after returning" pid
        Renaming_sched.Op.pp op time;
    t.steps.(pid) <- t.steps.(pid) + 1;
    t.total_steps <- t.total_steps + 1
  | Executor.Crashed { pid; time } ->
    check_pid t pid;
    if t.crashed.(pid) then fail t ~kind:"double-crash" "process %d crashed twice (t=%d)" pid time;
    if t.has_returned.(pid) then
      fail t ~kind:"crash-after-return" "process %d crashed at t=%d after returning" pid time;
    t.crashed.(pid) <- true
  | Executor.Recovered { pid; time } ->
    check_pid t pid;
    if not t.crashed.(pid) then
      fail t ~kind:"recover-of-live" "process %d recovered at t=%d without being crashed" pid time;
    t.crashed.(pid) <- false
  | Executor.Returned { pid; value; time } ->
    check_pid t pid;
    if t.has_returned.(pid) then
      fail t ~kind:"double-return" "process %d returned twice (t=%d)" pid time;
    if t.crashed.(pid) then
      fail t ~kind:"return-while-crashed" "process %d returned at t=%d while crashed" pid time;
    t.has_returned.(pid) <- true;
    (match value with
    | None -> ()
    | Some name ->
      if name < 0 || name >= t.namespace then
        fail t ~kind:"out-of-range-name" "process %d claimed out-of-range name %d (namespace %d)"
          pid name t.namespace;
      (match Hashtbl.find_opt t.claimed name with
      | Some other ->
        fail t ~kind:"duplicate-name" "duplicate name %d: claimed by both %d and %d" name other pid
      | None -> Hashtbl.add t.claimed name pid);
      if t.check_ownership then
        match Tas_array.owner (Memory.names t.memory) name with
        | Some owner when owner = pid -> ()
        | Some owner ->
          fail t ~kind:"unbacked-claim" "process %d claimed name %d owned by process %d" pid name
            owner
        | None ->
          fail t ~kind:"unbacked-claim" "process %d claimed name %d whose register is free" pid
            name)

let finalize t (report : Report.t) =
  for pid = 0 to t.processes - 1 do
    let ledger_steps = Step_ledger.steps_of report.Report.ledger ~pid in
    if ledger_steps <> t.steps.(pid) then
      fail t ~kind:"ledger-mismatch"
        "step-ledger mismatch for process %d: ledger says %d, monitor counted %d" pid ledger_steps
        t.steps.(pid)
  done;
  if report.Report.ticks <> t.total_steps then
    fail t ~kind:"tick-mismatch" "tick mismatch: report says %d, monitor counted %d"
      report.Report.ticks t.total_steps;
  Array.iteri
    (fun pid value ->
      match value with
      | None -> ()
      | Some name ->
        if Hashtbl.find_opt t.claimed name <> Some pid then
          fail t ~kind:"assignment-mismatch"
            "final assignment gives %d to process %d but the monitor never saw that return" name
            pid)
    report.Report.assignment.Renaming_shm.Assignment.names
