module Executor = Renaming_sched.Executor
module Memory = Renaming_sched.Memory
module Adversary = Renaming_sched.Adversary
module Report = Renaming_sched.Report
module Trace = Renaming_sched.Trace
module Directed = Renaming_sched.Directed
module Stream = Renaming_rng.Stream
module Obs = Renaming_obs.Obs
module Metrics = Renaming_obs.Metrics

type algorithm = {
  algo_name : string;
  build : seed:int64 -> Executor.instance;
  check_ownership : bool;
}

type adversary_spec = { adv_name : string; make_adversary : seed:int64 -> Adversary.t }

type pattern = {
  pat_name : string;
  schedule : seed:int64 -> n:int -> (int * int) list;
  recover_after : n:int -> int option;
}

let no_crashes =
  { pat_name = "none"; schedule = (fun ~seed:_ ~n:_ -> []); recover_after = (fun ~n:_ -> None) }

type spec = {
  algorithms : algorithm list;
  adversaries : adversary_spec list;
  patterns : pattern list;
  fault_rates : float list;
  seeds : int64 array;
  max_ticks : int;
}

type cell = {
  c_algorithm : string;
  c_adversary : string;
  c_pattern : string;
  c_rate : float;
  c_runs : int;
  c_violations : int;
  c_messages : string list;
  c_livelocks : int;
  c_injected : int;
  c_crashed : int;
  c_recovered : int;
  c_unnamed : int;
  c_mean_max_steps : float;
  c_baseline_max_steps : float;
  c_repros : Shrink.repro list;
}

let degradation cell =
  if cell.c_baseline_max_steps > 0. then cell.c_mean_max_steps /. cell.c_baseline_max_steps
  else 1.

type summary = {
  cells : cell list;
  total_runs : int;
  total_violations : int;
  total_livelocks : int;
  total_injected : int;
}

let wrap_adversary ~pattern ~seed ~n base =
  match pattern.schedule ~seed ~n with
  | [] -> base
  | crashes -> (
    match pattern.recover_after ~n with
    | Some recover_after -> Adversary.with_crash_recovery ~base ~crashes ~recover_after
    | None -> Adversary.with_crashes ~base ~crash_times:crashes)

(* Fault-free fair-schedule step complexity per algorithm, the
   denominator of the degradation column. *)
let baseline ~max_ticks ~seeds algo =
  let total = ref 0. in
  Array.iter
    (fun seed ->
      let report =
        Executor.run ~max_ticks ~adversary:(Adversary.round_robin ()) (algo.build ~seed)
      in
      total := !total +. float_of_int (Report.max_steps report))
    seeds;
  !total /. float_of_int (max 1 (Array.length seeds))

(* Rebuild the run's decision sequence from its recorded trace: every
   scheduled step whose execution drew an injected fault becomes a
   [Fault] choice, so a directed replay reproduces the injection without
   the RNG. *)
let choices_of_trace trace ~faulted =
  List.mapi
    (fun i event ->
      match event with
      | Trace.Scheduled { pid; _ } ->
        if List.mem i faulted then Directed.Fault pid else Directed.Step pid
      | Trace.Crashed { pid; _ } -> Directed.Crash pid
      | Trace.Recovered { pid; _ } -> Directed.Recover pid)
    (Trace.events trace)

let run_cell ?refine ~max_ticks ~seeds ~baseline_max_steps algo adv pattern rate =
  let violations = ref 0 in
  let messages = ref [] in
  let repros = ref [] in
  let livelocks = ref 0 in
  let injected = ref 0 in
  let crashed = ref 0 in
  let recovered = ref 0 in
  let unnamed = ref 0 in
  let steps_total = ref 0. in
  let completed_runs = ref 0 in
  Array.iter
    (fun seed ->
      let inst = algo.build ~seed in
      let n = Array.length inst.Executor.programs in
      let base = adv.make_adversary ~seed in
      let trace = Trace.create () in
      let adversary = Trace.recording trace ~base:(wrap_adversary ~pattern ~seed ~n base) in
      let fault_rng = Stream.fork_named (Stream.create seed) ~name:"campaign-faults" in
      let base_inject, injected_count =
        Injector.counting (Injector.bernoulli ~rate ~rng:fault_rng)
      in
      (* The executor consults [inject] while executing the decision the
         adversary just recorded, so a hit belongs to the last trace
         event. *)
      let faulted = ref [] in
      let inject ~time ~pid ~op =
        let hit = base_inject ~time ~pid ~op in
        if hit then faulted := (Trace.length trace - 1) :: !faulted;
        hit
      in
      let monitor =
        Monitor.create ~check_ownership:algo.check_ownership ~memory:inst.Executor.memory
          ~processes:n ()
      in
      (* The refinement checker (when attached) runs after the monitor,
         with a fresh state per run. *)
      let on_event =
        match refine with
        | None -> Monitor.hook monitor
        | Some make ->
          let rhook =
            make ~name:algo.algo_name ~namespace:(Memory.namespace inst.Executor.memory)
          and mhook = Monitor.hook monitor in
          fun ev ->
            mhook ev;
            rhook ev
      in
      (try
         let report = Executor.run ~max_ticks ~inject ~on_event ~adversary inst in
         Monitor.finalize monitor report;
         (* Belt and braces: the monitor already checks uniqueness and
            bounds online; a post-hoc failure here means the monitor has
            a blind spot. *)
         if not (Report.is_sound report) then begin
           incr violations;
           messages := "post-hoc soundness check failed (monitor blind spot?)" :: !messages
         end;
         if Report.is_livelock report then incr livelocks
         else begin
           incr completed_runs;
           steps_total := !steps_total +. float_of_int (Report.max_steps report)
         end;
         crashed := !crashed + List.length report.Report.crashed;
         recovered := !recovered + List.length report.Report.recovered;
         unnamed := !unnamed + List.length (Report.surviving_unnamed report)
       with Monitor.Violation v ->
         incr violations;
         messages := v.Monitor.message :: !messages;
         (* Auto-shrink every violation to a 1-minimal replayable repro. *)
         let shrink_input =
           {
             Shrink.label = algo.algo_name;
             build = (fun () -> algo.build ~seed);
             check_ownership = algo.check_ownership;
             choices = choices_of_trace trace ~faulted:!faulted;
             max_ticks;
             tau_cadence = 1;
           }
         in
         let extra =
           Option.map
             (fun make () ->
               make ~name:algo.algo_name ~namespace:(Memory.namespace inst.Executor.memory))
             refine
         in
         (match Shrink.shrink ?extra shrink_input with
         | Some r ->
           repros :=
             {
               Shrink.rp_algorithm = algo.algo_name;
               rp_n = n;
               rp_seed = seed;
               rp_check_ownership = algo.check_ownership;
               rp_max_ticks = max_ticks;
               rp_tau_cadence = 1;
               rp_kind = r.Shrink.r_failure.Shrink.f_kind;
               rp_trace_format = Shrink.Condensed;
               rp_choices = r.Shrink.r_choices;
             }
             :: !repros
         | None -> ()));
      injected := !injected + injected_count ())
    seeds;
  {
    c_algorithm = algo.algo_name;
    c_adversary = adv.adv_name;
    c_pattern = pattern.pat_name;
    c_rate = rate;
    c_runs = Array.length seeds;
    c_violations = !violations;
    c_messages = List.rev !messages;
    c_livelocks = !livelocks;
    c_injected = !injected;
    c_crashed = !crashed;
    c_recovered = !recovered;
    c_unnamed = !unnamed;
    c_mean_max_steps =
      (if !completed_runs > 0 then !steps_total /. float_of_int !completed_runs else 0.);
    c_baseline_max_steps = baseline_max_steps;
    c_repros = List.rev !repros;
  }

let run ?progress ?obs ?refine spec =
  let report_progress =
    match progress with Some f -> f | None -> fun ~done_:_ ~total:_ -> ()
  in
  let total_cells =
    List.length spec.algorithms * List.length spec.adversaries * List.length spec.patterns
    * List.length spec.fault_rates
  in
  let done_cells = ref 0 in
  let cells =
    List.concat_map
      (fun algo ->
        let baseline_max_steps = baseline ~max_ticks:spec.max_ticks ~seeds:spec.seeds algo in
        List.concat_map
          (fun adv ->
            List.concat_map
              (fun pattern ->
                List.map
                  (fun rate ->
                    let cell =
                      run_cell ?refine ~max_ticks:spec.max_ticks ~seeds:spec.seeds
                        ~baseline_max_steps algo adv pattern rate
                    in
                    incr done_cells;
                    report_progress ~done_:!done_cells ~total:total_cells;
                    cell)
                  spec.fault_rates)
              spec.patterns)
          spec.adversaries)
      spec.algorithms
  in
  let summary =
    {
      cells;
      total_runs = List.fold_left (fun acc c -> acc + c.c_runs) 0 cells;
      total_violations = List.fold_left (fun acc c -> acc + c.c_violations) 0 cells;
      total_livelocks = List.fold_left (fun acc c -> acc + c.c_livelocks) 0 cells;
      total_injected = List.fold_left (fun acc c -> acc + c.c_injected) 0 cells;
    }
  in
  (match obs with
  | None -> ()
  | Some o ->
    Metrics.add (Obs.counter o "chaos/cells") (List.length summary.cells);
    Metrics.add (Obs.counter o "chaos/runs") summary.total_runs;
    Metrics.add (Obs.counter o "chaos/violations") summary.total_violations;
    Metrics.add (Obs.counter o "chaos/livelocks") summary.total_livelocks;
    Metrics.add (Obs.counter o "chaos/injected_faults") summary.total_injected);
  summary

(* --- JSON emission (hand-rolled: the toolchain has no JSON library and
   the driver forbids adding one) --- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let repro_to_json (r : Shrink.repro) =
  Printf.sprintf "{\"algorithm\":\"%s\",\"n\":%d,\"seed\":\"%Ld\",\"kind\":\"%s\",\"choices\":[%s]}"
    (json_escape r.Shrink.rp_algorithm) r.Shrink.rp_n r.Shrink.rp_seed
    (json_escape r.Shrink.rp_kind)
    (String.concat ","
       (List.map
          (fun c -> "\"" ^ json_escape (Renaming_sched.Directed.choice_to_string c) ^ "\"")
          r.Shrink.rp_choices))

let cell_to_json c =
  Printf.sprintf
    "{\"algorithm\":\"%s\",\"adversary\":\"%s\",\"pattern\":\"%s\",\"fault_rate\":%g,\"runs\":%d,\"violations\":%d,\"livelocks\":%d,\"injected_faults\":%d,\"crashed\":%d,\"recovered\":%d,\"unnamed_survivors\":%d,\"mean_max_steps\":%.2f,\"baseline_max_steps\":%.2f,\"degradation\":%.3f,\"messages\":[%s],\"repros\":[%s]}"
    (json_escape c.c_algorithm) (json_escape c.c_adversary) (json_escape c.c_pattern) c.c_rate
    c.c_runs c.c_violations c.c_livelocks c.c_injected c.c_crashed c.c_recovered c.c_unnamed
    c.c_mean_max_steps c.c_baseline_max_steps (degradation c)
    (String.concat "," (List.map (fun m -> "\"" ^ json_escape m ^ "\"") c.c_messages))
    (String.concat "," (List.map repro_to_json c.c_repros))

let to_json summary =
  Printf.sprintf
    "{\"total_runs\":%d,\"total_violations\":%d,\"total_livelocks\":%d,\"total_injected_faults\":%d,\"cells\":[\n%s\n]}"
    summary.total_runs summary.total_violations summary.total_livelocks summary.total_injected
    (String.concat ",\n" (List.map cell_to_json summary.cells))

let pp fmt summary =
  Format.fprintf fmt "@[<v>chaos campaign: %d runs, %d violations, %d livelocks, %d injected faults@ "
    summary.total_runs summary.total_violations summary.total_livelocks summary.total_injected;
  Format.fprintf fmt "%-20s %-20s %-16s %6s %5s %5s %5s %8s %6s@ " "algorithm" "adversary"
    "pattern" "rate" "viol" "live" "recov" "steps" "degr";
  List.iter
    (fun c ->
      Format.fprintf fmt "%-20s %-20s %-16s %6g %5d %5d %5d %8.1f %6.2f@ " c.c_algorithm
        c.c_adversary c.c_pattern c.c_rate c.c_violations c.c_livelocks c.c_recovered
        c.c_mean_max_steps (degradation c))
    summary.cells;
  Format.fprintf fmt "@]"
