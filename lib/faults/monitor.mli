(** Online safety monitor: checks the paper's safety invariants on every
    executor event and fails fast with a trace excerpt.

    Wire {!hook} into {!Renaming_sched.Executor.run}'s [on_event]; call
    {!finalize} on the resulting report.  Invariants checked
    incrementally, the moment they break:

    - name uniqueness: no two processes return the same name;
    - namespace bounds: every returned name is in [0, namespace);
    - ownership (optional): a returned name's TAS register is owned by
      the returning process — the claim is backed by a win;
    - crash discipline: no step, return or second crash by a crashed
      process; recovery only of crashed processes; no activity after
      returning;
    - step-ledger consistency (at {!finalize}): the report's per-process
      ledger and tick count match the monitor's own event counts, and
      the final assignment contains exactly the returns the monitor
      observed.

    A violation raises {!Violation} carrying a stable [kind] tag (used
    by the model checker and shrinker to decide whether two failures are
    "the same") and a [message] embedding the last few events — the
    failure is caught at the offending step, not discovered in a
    post-hoc report diff. *)

type violation = {
  kind : string;
      (** stable machine-readable tag, e.g. ["duplicate-name"],
          ["step-after-crash"], ["unbacked-claim"], ["ledger-mismatch"] *)
  message : string;  (** human-readable description plus trace excerpt *)
}

exception Violation of violation

type t

val create :
  ?check_ownership:bool ->
  ?window:int ->
  memory:Renaming_sched.Memory.t ->
  processes:int ->
  unit ->
  t
(** [check_ownership] (default false): enable the register-ownership
    check — valid for algorithms that claim names exclusively by winning
    namespace TAS registers (all of [lib/core] and [lib/baselines]'
    probing/scanning ones; not the splitter grid, which derives names
    from read/write registers).  [window] (default 24) is the trace
    excerpt length. *)

val hook : t -> Renaming_sched.Executor.event -> unit
(** Feed one event; raises {!Violation} on the first broken invariant. *)

val finalize : t -> Renaming_sched.Report.t -> unit
(** Post-run consistency checks; raises {!Violation} on mismatch. *)

val violation_count : t -> int
(** Number of violations raised through this monitor so far. *)
