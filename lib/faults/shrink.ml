module Executor = Renaming_sched.Executor
module Directed = Renaming_sched.Directed
module Report = Renaming_sched.Report

type failure = { f_kind : string; f_message : string }

type input = {
  label : string;
  build : unit -> Executor.instance;
  check_ownership : bool;
  choices : Directed.choice list;
  max_ticks : int;
  tau_cadence : int;
}

type result = {
  r_label : string;
  r_failure : failure;
  r_original : Directed.choice list;
  r_choices : Directed.choice list;
  r_replays : int;
}

let execute ?extra input prefix =
  let inst = input.build () in
  let monitor =
    Monitor.create ~check_ownership:input.check_ownership ~memory:inst.Executor.memory
      ~processes:(Array.length inst.Executor.programs) ()
  in
  (* The extra hook gets a fresh state per replay and runs after the
     monitor, so a failure the monitor can already see keeps its kind. *)
  let on_event =
    match extra with
    | None -> Monitor.hook monitor
    | Some make ->
      let hook = make () and mhook = Monitor.hook monitor in
      fun ev ->
        mhook ev;
        hook ev
  in
  let run =
    Directed.run ~max_ticks:input.max_ticks ~tau_cadence:input.tau_cadence ~on_event ~prefix
      inst
  in
  let failure =
    match run.Directed.outcome with
    | Directed.Raised (Monitor.Violation v) ->
      Some { f_kind = v.Monitor.kind; f_message = v.Monitor.message }
    | Directed.Raised e ->
      Some
        {
          f_kind = "exception:" ^ Printexc.exn_slot_name e;
          f_message = Printexc.to_string e;
        }
    | Directed.Finished report ->
      if Report.is_livelock report then
        Some
          {
            f_kind = "livelock";
            f_message =
              Printf.sprintf "run hit the %d-tick livelock guard" input.max_ticks;
          }
      else (
        try
          Monitor.finalize monitor report;
          None
        with Monitor.Violation v ->
          Some { f_kind = v.Monitor.kind; f_message = v.Monitor.message })
  in
  (run, failure)

let choice_pid = function
  | Directed.Step p | Directed.Fault p | Directed.Crash p | Directed.Recover p -> p

(* Delta debugging, complement-removal half: drop one of [n] chunks at a
   time; on success restart with coarser granularity, otherwise refine.
   Exits only once every single-choice removal has been tried and failed
   (granularity = length), i.e. the survivor is 1-minimal — unless [test]
   starts refusing because the replay budget ran out. *)
let rec ddmin test lst n =
  let len = List.length lst in
  if len <= 1 then lst
  else begin
    let chunk = (len + n - 1) / n in
    let rec drop_chunks i =
      if i * chunk >= len then None
      else
        let cand = List.filteri (fun j _ -> j < i * chunk || j >= (i + 1) * chunk) lst in
        if List.length cand < len && test cand then Some cand else drop_chunks (i + 1)
    in
    match drop_chunks 0 with
    | Some cand -> ddmin test cand (max 2 (n - 1))
    | None -> if n < len then ddmin test lst (min len (2 * n)) else lst
  end

let shrink ?(max_replays = 4000) ?extra input =
  let replays = ref 1 in
  let run0, fail0 = execute ?extra input input.choices in
  match fail0 with
  | None -> None
  | Some f0 ->
    let kind = f0.f_kind in
    let last_failure = ref f0 in
    let test candidate =
      if !replays >= max_replays then false
      else begin
        incr replays;
        match execute ?extra input candidate with
        | _, Some f when String.equal f.f_kind kind ->
          last_failure := f;
          true
        | _ -> false
      end
    in
    let cur = ref input.choices in
    let adopt cand = if List.length cand < List.length !cur && test cand then cur := cand in
    (* Truncate to decisions the failing run actually took: later prefix
       entries were never consumed (or were dropped as infeasible). *)
    let taken_len = Array.length run0.Directed.taken in
    if List.length !cur > taken_len then
      adopt (List.filteri (fun i _ -> i < taken_len) !cur);
    (* Semantic passes: whole classes of decisions at once. *)
    adopt (List.filter (function Directed.Fault _ -> false | _ -> true) !cur);
    adopt
      (List.filter
         (function Directed.Crash _ | Directed.Recover _ -> false | _ -> true)
         !cur);
    let pids = List.sort_uniq compare (List.map choice_pid !cur) in
    List.iter (fun p -> adopt (List.filter (fun c -> choice_pid c <> p) !cur)) pids;
    (* Structure-blind ddmin down to single-choice granularity. *)
    cur := ddmin test !cur 2;
    Some
      {
        r_label = input.label;
        r_failure = !last_failure;
        r_original = input.choices;
        r_choices = !cur;
        r_replays = !replays;
      }

(* --- repro artifacts --- *)

type trace_format = Choices | Condensed

type repro = {
  rp_algorithm : string;
  rp_n : int;
  rp_seed : int64;
  rp_check_ownership : bool;
  rp_max_ticks : int;
  rp_tau_cadence : int;
  rp_kind : string;
  rp_trace_format : trace_format;
  rp_choices : Directed.choice list;
}

let trace_format_name = function Choices -> "choices" | Condensed -> "condensed"

let repro_to_string r =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "algorithm: %s\n" r.rp_algorithm);
  Buffer.add_string buf (Printf.sprintf "n: %d\n" r.rp_n);
  Buffer.add_string buf (Printf.sprintf "seed: %Ld\n" r.rp_seed);
  Buffer.add_string buf (Printf.sprintf "check-ownership: %b\n" r.rp_check_ownership);
  Buffer.add_string buf (Printf.sprintf "max-ticks: %d\n" r.rp_max_ticks);
  Buffer.add_string buf (Printf.sprintf "tau-cadence: %d\n" r.rp_tau_cadence);
  Buffer.add_string buf (Printf.sprintf "kind: %s\n" r.rp_kind);
  Buffer.add_string buf (Printf.sprintf "trace-format: %s\n" (trace_format_name r.rp_trace_format));
  Buffer.add_string buf "trace:\n";
  (match r.rp_trace_format with
  | Choices ->
    List.iter
      (fun c -> Buffer.add_string buf (Directed.choice_to_string c ^ "\n"))
      r.rp_choices
  | Condensed ->
    (* [rp_choices] stays the single source of truth; without decision
       points every switch renders as a [P] segment, which replays
       identically ([choices_of_condensed] treats [S] and [P] alike). *)
    Buffer.add_string buf (Directed.condensed (Array.of_list r.rp_choices) ^ "\n"));
  Buffer.contents buf

let repro_of_string s =
  let ( let* ) = Stdlib.Result.bind in
  let lines = String.split_on_char '\n' s in
  let rec headers acc = function
    | [] -> Error "missing \"trace:\" section"
    | line :: rest -> (
      let line = String.trim line in
      if String.equal line "" then headers acc rest
      else if String.equal line "trace:" then Ok (acc, rest)
      else
        match String.index_opt line ':' with
        | None -> Error (Printf.sprintf "malformed header line %S" line)
        | Some i ->
          let key = String.trim (String.sub line 0 i) in
          let value = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
          headers ((key, value) :: acc) rest)
  in
  let* hdrs, body = headers [] lines in
  let field key parse =
    match List.assoc_opt key hdrs with
    | None -> Error (Printf.sprintf "missing header %S" key)
    | Some v -> (
      match parse v with
      | Some x -> Ok x
      | None -> Error (Printf.sprintf "bad value %S for header %S" v key))
  in
  let* rp_algorithm = field "algorithm" Option.some in
  let* rp_n = field "n" int_of_string_opt in
  let* rp_seed = field "seed" Int64.of_string_opt in
  let* rp_check_ownership = field "check-ownership" bool_of_string_opt in
  let* rp_max_ticks = field "max-ticks" int_of_string_opt in
  (* Optional header (pre-τ artifacts lack it): cadence 1 is the
     executor default those artifacts were recorded under. *)
  let* rp_tau_cadence =
    match List.assoc_opt "tau-cadence" hdrs with
    | None -> Ok 1
    | Some v -> (
      match int_of_string_opt v with
      | Some x -> Ok x
      | None -> Error (Printf.sprintf "bad value %S for header %S" v "tau-cadence"))
  in
  let* rp_kind = field "kind" Option.some in
  (* Optional header: artifacts predating the condensed format carry no
     [trace-format] and default to the legacy one-choice-per-line body. *)
  let* rp_trace_format =
    match List.assoc_opt "trace-format" hdrs with
    | None | Some "choices" -> Ok Choices
    | Some "condensed" -> Ok Condensed
    | Some v -> Error (Printf.sprintf "bad value %S for header %S" v "trace-format")
  in
  let* rp_choices =
    match rp_trace_format with
    | Choices ->
      let rec choices acc = function
        | [] -> Ok (List.rev acc)
        | line :: rest ->
          let line = String.trim line in
          if String.equal line "" then choices acc rest
          else
            let* c = Directed.choice_of_string line in
            choices (c :: acc) rest
      in
      choices [] body
    | Condensed ->
      List.fold_left
        (fun acc line ->
          let* acc in
          let line = String.trim line in
          if String.equal line "" then Ok acc
          else
            let* cs = Directed.choices_of_condensed line in
            Ok (acc @ cs))
        (Ok []) body
  in
  Ok
    {
      rp_algorithm;
      rp_n;
      rp_seed;
      rp_check_ownership;
      rp_max_ticks;
      rp_tau_cadence;
      rp_kind;
      rp_trace_format;
      rp_choices;
    }
