module Program = Renaming_sched.Program
module Op = Renaming_sched.Op
module Clock = Renaming_clock.Clock

type policy = {
  attempts : int;
  base_delay : int;
  max_delay : int;
  time_budget : float option;
}

let make_policy ?(attempts = 8) ?(base_delay = 1) ?(max_delay = 64) ?time_budget () =
  if attempts < 1 then invalid_arg "Retry.make_policy: attempts must be >= 1";
  if base_delay < 0 then invalid_arg "Retry.make_policy: base_delay must be >= 0";
  if max_delay < base_delay then invalid_arg "Retry.make_policy: max_delay < base_delay";
  (match time_budget with
  | Some b when b <= 0. -> invalid_arg "Retry.make_policy: time_budget must be > 0"
  | _ -> ());
  { attempts; base_delay; max_delay; time_budget }

let default = make_policy ()

let backoff_delay policy ~attempt =
  (* attempt is 1-based: the delay before attempt k+1 is base * 2^(k-1),
     capped.  Shift guarded so huge attempt counts cannot overflow. *)
  let exp = min 20 (attempt - 1) in
  min policy.max_delay (policy.base_delay * (1 lsl exp))

(* Decorrelated jitter: the next delay is uniform on
   [base_delay, min (max_delay, 3 * prev)].  Unlike full jitter over the
   exponential ladder, the walk decorrelates competing clients (each
   one's next delay depends on its own previous draw, not on a shared
   attempt counter) while the 3x growth bound keeps the expected delay
   rising toward the cap under persistent contention.  [prev] is the
   caller-threaded state: pass [base_delay] (or a previous return value)
   — it is clamped into [max 1 base_delay, max_delay] so a degenerate
   seed cannot pin the walk at zero. *)
let jittered_delay policy ~rng ~prev =
  let lo = policy.base_delay in
  let prev = min policy.max_delay (max prev (max 1 lo)) in
  let hi = max lo (min policy.max_delay (3 * prev)) in
  Renaming_rng.Sample.uniform_in_range rng ~lo ~hi

let rec idle k = if k <= 0 then Program.return () else Program.bind Program.yield (fun () -> idle (k - 1))

(* Run a Bool-responding operation with bounded retry: [Some b] on a
   normal response, [None] when every attempt was eaten by a transient
   fault.  The clock bounds total retry time: once the policy's
   [time_budget] is spent (measured on the injected clock, so virtual
   under the simulator), further faults exhaust immediately instead of
   backing off again.  With the default {!Clock.none} the budget never
   binds and behaviour is unchanged. *)
let bool_result ?(clock = Clock.none) ~policy op =
  let t0 = Clock.now clock in
  let budget_spent () =
    match policy.time_budget with
    | None -> false
    | Some budget -> Clock.elapsed_since clock t0 >= budget
  in
  let rec go attempt =
    Program.Step
      ( op,
        function
        | Op.Bool b -> Program.Done (Some b)
        | Op.Faulted ->
          if attempt >= policy.attempts || budget_spent () then Program.Done None
          else
            Program.bind (idle (backoff_delay policy ~attempt)) (fun () -> go (attempt + 1))
        | resp ->
          Format.kasprintf failwith "Retry: operation %a got response %a" Op.pp op Op.pp_response
            resp )
  in
  go 1

(* Giving up must stay on the safe side of every invariant:
   - a TAS that keeps faulting counts as *lost* — the process never
     claims a name it cannot prove it won;
   - a read that keeps faulting counts as *set* — a scanner skips the
     register instead of fighting for information it cannot get. *)
let tas_name ?(policy = default) ?clock i =
  Program.map (function Some b -> b | None -> false) (bool_result ?clock ~policy (Op.Tas_name i))

let tas_aux ?(policy = default) ?clock i =
  Program.map (function Some b -> b | None -> false) (bool_result ?clock ~policy (Op.Tas_aux i))

let read_name ?(policy = default) ?clock i =
  Program.map (function Some b -> b | None -> true) (bool_result ?clock ~policy (Op.Read_name i))

let read_aux ?(policy = default) ?clock i =
  Program.map (function Some b -> b | None -> true) (bool_result ?clock ~policy (Op.Read_aux i))

let scan_names ?(policy = default) ?clock ~first ~count () =
  let open Program.Syntax in
  let rec loop k =
    if k >= count then Program.return None
    else
      let* won = tas_name ~policy ?clock (first + k) in
      if won then Program.return (Some (first + k)) else loop (k + 1)
  in
  loop 0
