(** Counterexample shrinking: delta-debugging minimisation of directed
    schedules that trigger a {!Monitor} violation.

    Given a deterministic instance builder and a failing
    {!Renaming_sched.Directed.choice} prefix, {!shrink} searches for a
    1-minimal prefix that still triggers the *same* failure — same
    {!Monitor.violation} [kind] (or livelock) — by re-replaying the
    instance from scratch after every candidate cut.  Passes, in order:

    + truncate to the decisions the failing run actually took;
    + drop all transient-fault injections;
    + drop all crash/recover events;
    + drop every choice touching one pid (per pid);
    + ddmin chunk removal down to granularity 1 (1-minimality: removing
      any single remaining choice no longer reproduces the failure).

    Minimised counterexamples are persisted as replayable [repro]
    artifacts (plain text, [repro_to_string]/[repro_of_string]) under
    [results/repros/] by the chaos campaign and [renaming mcheck], and
    replayed by [renaming shrink]. *)

type failure = {
  f_kind : string;  (** {!Monitor.violation} kind, or ["livelock"], or ["exception:<name>"] *)
  f_message : string;
}

type input = {
  label : string;  (** algorithm name, for reporting *)
  build : unit -> Renaming_sched.Executor.instance;
      (** must return a fresh, deterministic instance — same memory and
          programs every call — or replays diverge *)
  check_ownership : bool;  (** see {!Monitor.create} *)
  choices : Renaming_sched.Directed.choice list;  (** the failing prefix *)
  max_ticks : int;  (** livelock guard per replay *)
  tau_cadence : int;
      (** τ-device cycle cadence the failure was observed under (see
          {!Renaming_sched.Executor.run}); replays must match it or
          device-timing failures do not reproduce.  Use [1] for
          algorithms without τ-registers (the executor default). *)
}

type result = {
  r_label : string;
  r_failure : failure;  (** failure of the minimised prefix *)
  r_original : Renaming_sched.Directed.choice list;  (** the input prefix *)
  r_choices : Renaming_sched.Directed.choice list;  (** minimised, 1-minimal *)
  r_replays : int;  (** executions spent, including the initial check *)
}

val execute :
  ?extra:(unit -> Renaming_sched.Executor.event -> unit) ->
  input ->
  Renaming_sched.Directed.choice list ->
  Renaming_sched.Directed.result * failure option
(** One monitored replay of a candidate prefix (permissive mode):
    builds a fresh instance, runs it under the safety monitor, and
    classifies the outcome.  [None] means the run completed cleanly.

    [extra] builds an additional per-replay event hook, composed after
    the monitor's — the refinement checker rides replays this way.  A
    violation it raises as {!Monitor.Violation} classifies like any
    other (so ["refine:..."] kinds shrink with exact-kind matching);
    the monitor runs first so failures both can see keep their
    original kind. *)

val shrink :
  ?max_replays:int ->
  ?extra:(unit -> Renaming_sched.Executor.event -> unit) ->
  input ->
  result option
(** [None] if [input.choices] does not fail in the first place.
    [max_replays] (default [4000]) caps total executions; if the budget
    runs out the result is still a valid counterexample, just not
    necessarily 1-minimal.  [extra] as in {!execute}. *)

type trace_format =
  | Choices  (** one {!Renaming_sched.Directed.choice_to_string} line per choice *)
  | Condensed
      (** a single dejafu-style {!Renaming_sched.Directed.condensed}
          line, e.g. [S0x2--P1--S2] *)

type repro = {
  rp_algorithm : string;
  rp_n : int;
  rp_seed : int64;
  rp_check_ownership : bool;
  rp_max_ticks : int;
  rp_tau_cadence : int;
  rp_kind : string;
  rp_trace_format : trace_format;  (** how the [trace:] body is rendered *)
  rp_choices : Renaming_sched.Directed.choice list;
}

val repro_to_string : repro -> string
(** Plain-text artifact: [key: value] headers ([algorithm], [n], [seed],
    [check-ownership], [max-ticks], [tau-cadence], [kind],
    [trace-format]) followed by a [trace:] section rendered per
    [rp_trace_format].  [rp_choices] is the single source of truth —
    the condensed body is derived from it on the way out. *)

val repro_of_string : string -> (repro, string) Stdlib.result
(** Inverse of {!repro_to_string}.  The [tau-cadence] and [trace-format]
    headers are optional ([1] and [Choices] respectively) so artifacts
    written before they existed still parse. *)
