(** Chaos campaign runner: sweep the cross-product of
    {algorithm × adversary × crash/recovery pattern × fault rate × seeds},
    run every cell under the online safety {!Monitor}, and summarise
    safety violations, livelocks and step-complexity degradation versus
    the fault-free fair-schedule baseline.

    The runner is generic over instance builders, so it lives below
    [lib/core]; the standard roster of paper algorithms is assembled in
    {!Renaming_harness.Chaos} and driven by [renaming chaos] / [make
    chaos]. *)

type algorithm = {
  algo_name : string;
  build : seed:int64 -> Renaming_sched.Executor.instance;
      (** must return a fresh instance; all algorithm randomness derives
          from [seed] so campaigns are deterministic *)
  check_ownership : bool;  (** see {!Monitor.create} *)
}

type adversary_spec = {
  adv_name : string;
  make_adversary : seed:int64 -> Renaming_sched.Adversary.t;
}

type pattern = {
  pat_name : string;
  schedule : seed:int64 -> n:int -> (int * int) list;  (** crash times, {!Renaming_workload.Crash_pattern} *)
  recover_after : n:int -> int option;
      (** [Some d]: each crashed pid is resurrected [d] ticks later
          (crash-recovery mode); [None]: crashes are permanent *)
}

val no_crashes : pattern

type spec = {
  algorithms : algorithm list;
  adversaries : adversary_spec list;
  patterns : pattern list;
  fault_rates : float list;  (** transient-fault probability per faultable op *)
  seeds : int64 array;
  max_ticks : int;  (** livelock guard per run *)
}

type cell = {
  c_algorithm : string;
  c_adversary : string;
  c_pattern : string;
  c_rate : float;
  c_runs : int;
  c_violations : int;  (** monitor violations + post-hoc soundness failures *)
  c_messages : string list;  (** one per violating run *)
  c_livelocks : int;  (** runs cut off by [max_ticks] *)
  c_injected : int;  (** transient faults actually injected *)
  c_crashed : int;  (** processes dead at end, summed over runs *)
  c_recovered : int;
  c_unnamed : int;  (** surviving unnamed processes, summed over runs *)
  c_mean_max_steps : float;  (** over completed (non-livelock, non-violating) runs *)
  c_baseline_max_steps : float;
  c_repros : Shrink.repro list;
      (** every monitor violation in the cell, auto-shrunk to a
          1-minimal replayable counterexample (see {!Shrink}) *)
}

val degradation : cell -> float
(** Step-complexity degradation: mean max-steps of the cell over the
    algorithm's fault-free round-robin baseline. *)

type summary = {
  cells : cell list;
  total_runs : int;
  total_violations : int;
  total_livelocks : int;
  total_injected : int;
}

val run :
  ?progress:(done_:int -> total:int -> unit) ->
  ?obs:Renaming_obs.Obs.t ->
  ?refine:(name:string -> namespace:int -> (Renaming_sched.Executor.event -> unit)) ->
  spec ->
  summary
(** Runs every cell; a monitor violation aborts only that run and is
    recorded in the cell.  Deterministic given [spec.seeds].  With
    [obs], campaign totals are recorded on the registry as the
    [chaos/cells], [chaos/runs], [chaos/violations], [chaos/livelocks]
    and [chaos/injected_faults] counters.

    [refine] attaches the refinement checker to every run: the factory
    is applied once per run (fresh checker state) with the algorithm
    name and instance namespace, and its hook runs after the monitor's
    on every event — including shrinking replays, so ["refine:..."]
    violations reduce to replayable repros like any monitor kind. *)

val to_json : summary -> string

val pp : Format.formatter -> summary -> unit
