module Sample = Renaming_rng.Sample

type t = { count : int; weights : float array; cdf : float array }

let create ?(s = 1.0) ~n () =
  if n < 1 then invalid_arg "Zipf.create: n must be >= 1";
  if s < 0. then invalid_arg "Zipf.create: s must be >= 0";
  let weights = Array.init n (fun k -> 1. /. (float_of_int (k + 1) ** s)) in
  let total = Array.fold_left ( +. ) 0. weights in
  Array.iteri (fun k w -> weights.(k) <- w /. total) weights;
  let cdf = Array.make n 0. in
  let acc = ref 0. in
  Array.iteri
    (fun k w ->
      acc := !acc +. w;
      cdf.(k) <- !acc)
    weights;
  cdf.(n - 1) <- 1.0;
  { count = n; weights; cdf }

let n t = t.count

let draw t ~rng =
  let u = Sample.float_unit rng in
  (* Smallest rank whose cumulative probability covers [u]. *)
  let lo = ref 0 and hi = ref (t.count - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cdf.(mid) < u then lo := mid + 1 else hi := mid
  done;
  !lo

let weight t k =
  if k < 0 || k >= t.count then invalid_arg "Zipf.weight: rank out of range";
  t.weights.(k)

let relative_pressure t k = weight t k /. t.weights.(t.count - 1)
