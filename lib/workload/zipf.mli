(** Zipf-distributed skew for workload generation.

    Real client populations are not uniform: a few hot clients issue
    most of the traffic.  A [Zipf.t] precomputes the CDF of the
    Zipf(s) distribution over ranks [0..n-1] (probability of rank [k]
    proportional to [1/(k+1)^s]) so the churn driver can draw skewed
    client identities, and exposes the per-rank weight so per-client
    think times can be scaled (hot clients re-arrive sooner). *)

type t

val create : ?s:float -> n:int -> unit -> t
(** [s] is the skew exponent, default 1.0; [s = 0.] degenerates to
    uniform.  [n] must be >= 1. *)

val n : t -> int

val draw : t -> rng:Renaming_rng.Xoshiro.t -> int
(** A rank in [0, n), hot ranks (low indices) more likely; inverse-CDF
    by binary search, O(log n). *)

val weight : t -> int -> float
(** Normalized probability of rank [k]; decreasing in [k]. *)

val relative_pressure : t -> int -> float
(** [weight k / weight (n-1)] — how much hotter rank [k] is than the
    coldest rank; >= 1, used to scale think times down for hot
    clients. *)
