module Sample = Renaming_rng.Sample

let validate ~n ~failures =
  if failures < 0 || failures >= n then
    invalid_arg "Crash_pattern: failures must be in [0, n)"

let random ~rng ~n ~failures ~horizon =
  validate ~n ~failures;
  if horizon < 1 then invalid_arg "Crash_pattern.random: horizon must be >= 1";
  let pids = Array.sub (Sample.permutation rng n) 0 failures in
  Array.to_list (Array.map (fun pid -> (Sample.uniform_int rng horizon, pid)) pids)

let early_half ~n ~failures =
  validate ~n ~failures;
  List.init failures (fun pid -> (0, pid))

let burst ~rng ~n ~failures ~at ~width =
  validate ~n ~failures;
  (* A "burst" of zero crashes is a contradiction in terms: it only ever
     arises from an integer-division underflow at small [n] (e.g.
     [~failures:(n / 8)]), and silently returning [] would make the
     campaign report a crash cell that never crashed anything.  Fail
     loudly instead; genuinely optional crashes belong to [random] or
     [spread], which document [failures = 0]. *)
  if failures = 0 then invalid_arg "Crash_pattern.burst: failures must be >= 1";
  if at < 0 then invalid_arg "Crash_pattern.burst: at must be >= 0";
  if width < 1 then invalid_arg "Crash_pattern.burst: width must be >= 1";
  let pids = Array.sub (Sample.permutation rng n) 0 failures in
  Array.to_list (Array.map (fun pid -> (at + Sample.uniform_int rng width, pid)) pids)

let spread ~n ~failures ~horizon =
  validate ~n ~failures;
  if failures = 0 then []
  else
    List.init failures (fun k ->
        let pid = k * n / failures in
        let time = k * horizon / failures in
        (time, pid))
