(** Crash patterns for the fault-tolerance experiments (T9).

    Produce [(time, pid)] schedules for
    {!Renaming_sched.Adversary.with_crashes}. *)

val random :
  rng:Renaming_rng.Xoshiro.t -> n:int -> failures:int -> horizon:int -> (int * int) list
(** [failures] distinct pids crash at uniform times in [0, horizon). *)

val early_half :
  n:int -> failures:int -> (int * int) list
(** The first [failures] pids crash at time 0 — the adversary kills a
    prefix before anyone moves.  Surviving processes must still rename
    correctly within the full namespace. *)

val spread :
  n:int -> failures:int -> horizon:int -> (int * int) list
(** [failures] evenly spaced pids crash at evenly spaced times. *)

val burst :
  rng:Renaming_rng.Xoshiro.t -> n:int -> failures:int -> at:int -> width:int -> (int * int) list
(** All [failures] crashes land in the short window [at, at + width):
    [failures] distinct uniform pids at uniform times inside the window.
    The burst adversary of the chaos campaigns — a correlated failure
    (rack power loss) rather than independent attrition. *)
