(** Crash patterns for the fault-tolerance experiments (T9).

    Produce [(time, pid)] schedules for
    {!Renaming_sched.Adversary.with_crashes}. *)

val random :
  rng:Renaming_rng.Xoshiro.t -> n:int -> failures:int -> horizon:int -> (int * int) list
(** [failures] distinct pids crash at uniform times in [0, horizon).
    [failures = 0] is allowed and yields the empty schedule. *)

val early_half :
  n:int -> failures:int -> (int * int) list
(** The first [failures] pids crash at time 0 — the adversary kills a
    prefix before anyone moves.  Surviving processes must still rename
    correctly within the full namespace. *)

val spread :
  n:int -> failures:int -> horizon:int -> (int * int) list
(** [failures] evenly spaced pids crash at evenly spaced times.
    [failures = 0] is allowed and yields the empty schedule. *)

val burst :
  rng:Renaming_rng.Xoshiro.t -> n:int -> failures:int -> at:int -> width:int -> (int * int) list
(** All [failures] crashes land in the short window [at, at + width):
    [failures] distinct uniform pids at uniform times inside the window.
    The burst adversary of the chaos campaigns — a correlated failure
    (rack power loss) rather than independent attrition.

    Raises [Invalid_argument] when [failures = 0]: an empty burst is
    always a caller bug (typically [n / k] underflowing to 0 at small
    [n]) that would silently turn a crash cell into a fault-free run —
    unlike {!random} and {!spread}, which accept 0. *)
