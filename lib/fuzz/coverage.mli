(** Interleaving-coverage signatures from concrete memory accesses.

    Hooks into {!Renaming_sched.Memory.set_access_logger} and distils an
    execution into a set of *conflict edges*: ordered pairs of accesses
    to the same cell by different processes where at least one access is
    a write — the access pairs whose relative order distinguishes one
    interleaving from another (the same pairs the happens-before relation
    and the independence oracle of [Renaming_analysis] are built on).

    Each edge is identified by a self-contained FNV-1a 64-bit hash of
    (region, cell index, previous operation tag, previous write flag,
    current operation tag, current write flag).  Process identities are
    deliberately excluded so pid permutations do not masquerade as new
    coverage.  A schedule that produces an edge no earlier execution
    produced has exercised a new conflict shape — that is the signal the
    fuzzing corpus ({!Corpus}) keeps prefixes for. *)

type t

val create : unit -> t

val attach : t -> Renaming_sched.Memory.t -> unit
(** Install this collector as the memory's access logger (replacing any
    other logger — the memory has a single logger slot). *)

val detach : Renaming_sched.Memory.t -> unit
(** Remove whatever access logger is installed. *)

val reset : t -> unit
(** Forget all cells and edges; keep the collector attachable. *)

val edge_count : t -> int
(** Number of distinct edges recorded since creation/reset. *)

val edges : t -> int64 list
(** The distinct edge hashes in first-seen order. *)

val record : t -> pid:int -> Renaming_sched.Op.t -> Renaming_sched.Memory.access list -> unit
(** Feed one executed operation's access set directly (what {!attach}
    wires up; exposed for tests). *)
