module Memory = Renaming_sched.Memory
module Op = Renaming_sched.Op

(* FNV-1a 64-bit over a sequence of ints, same constants as
   Renaming_rng.Stream.hash_name.  Self-contained: edge identities are
   part of corpus determinism, so no polymorphic or stdlib hash. *)
let fnv_offset = 0xCBF29CE484222325L
let fnv_prime = 0x100000001B3L

let mix h x =
  let h = ref h in
  let x = ref (Int64.of_int x) in
  for _ = 0 to 7 do
    h := Int64.mul (Int64.logxor !h (Int64.logand !x 0xFFL)) fnv_prime;
    x := Int64.shift_right_logical !x 8
  done;
  !h

let region_tag = function
  | Memory.Names -> 0
  | Memory.Aux -> 1
  | Memory.Words -> 2
  | Memory.Device -> 3

(* The last access seen on a cell: who, with which operation, was it a
   write.  One slot per cell — a coverage signature, not a full
   happens-before graph. *)
type last = { l_pid : int; l_tag : int; l_write : bool }

type t = {
  cells : (int * int, last) Hashtbl.t;  (* (region tag, index) -> last access *)
  edges : (int64, unit) Hashtbl.t;
  mutable order : int64 list;  (* edge hashes in first-seen order (reversed) *)
}

let create () = { cells = Hashtbl.create 64; edges = Hashtbl.create 64; order = [] }

let reset t =
  Hashtbl.reset t.cells;
  Hashtbl.reset t.edges;
  t.order <- []

let edge_count t = Hashtbl.length t.edges

let edges t = List.rev t.order

(* An interleaving-coverage edge: two accesses to the same cell by
   different processes, at least one a write — the conflicting-access
   pairs whose order is the schedule's fingerprint.  Process identity is
   deliberately abstracted away (only the operation shapes enter the
   hash) so permuting pids does not inflate coverage. *)
let edge_hash ~region ~idx ~(prev : last) ~tag ~write =
  let h = fnv_offset in
  let h = mix h region in
  let h = mix h idx in
  let h = mix h prev.l_tag in
  let h = mix h (if prev.l_write then 1 else 0) in
  let h = mix h tag in
  let h = mix h (if write then 1 else 0) in
  h

let record t ~pid op (accesses : Memory.access list) =
  let tag = Op.tag op in
  List.iter
    (fun (a : Memory.access) ->
      let region = region_tag a.Memory.acc_region in
      let key = (region, a.Memory.acc_idx) in
      (match Hashtbl.find_opt t.cells key with
      | Some prev when prev.l_pid <> pid && (prev.l_write || a.Memory.acc_write) ->
        let h = edge_hash ~region ~idx:a.Memory.acc_idx ~prev ~tag ~write:a.Memory.acc_write in
        if not (Hashtbl.mem t.edges h) then begin
          Hashtbl.add t.edges h ();
          t.order <- h :: t.order
        end
      | _ -> ());
      Hashtbl.replace t.cells key { l_pid = pid; l_tag = tag; l_write = a.Memory.acc_write })
    accesses

let attach t memory =
  Memory.set_access_logger memory (Some (fun ~pid op accesses -> record t ~pid op accesses))

let detach memory = Memory.set_access_logger memory None
