module Executor = Renaming_sched.Executor
module Memory = Renaming_sched.Memory
module Adversary = Renaming_sched.Adversary
module Directed = Renaming_sched.Directed
module Report = Renaming_sched.Report
module Trace = Renaming_sched.Trace
module Monitor = Renaming_faults.Monitor
module Shrink = Renaming_faults.Shrink
module Stream = Renaming_rng.Stream
module Sample = Renaming_rng.Sample
module Clock = Renaming_clock.Clock
module Obs = Renaming_obs.Obs
module Metrics = Renaming_obs.Metrics

type target = {
  fz_name : string;
  fz_n : int;
  fz_build : seed:int64 -> Executor.instance;
  fz_check_ownership : bool;
  fz_allow_faults : bool;
      (* Fault mutations are only sound for programs routing namespace
         traffic through the fault-aware retry primitives; plain
         primitives treat [Faulted] as a protocol error. *)
  fz_allow_crashes : bool;
  fz_tau_cadence : int;
  fz_max_ticks : int;
  fz_expect_violation : bool;  (* seeded-mutant self-test entries *)
}

type violation = {
  v_kind : string;
  v_message : string;
  v_iteration : int;  (* -1 = the round-robin baseline run *)
  v_mode : string;  (* "baseline", "pct-d<k>", "pct-crash-d<k>", "mutation" *)
  v_repro : Shrink.repro option;
}

type growth_point = { g_iteration : int; g_edges : int }

type target_result = {
  r_target : string;
  r_n : int;
  r_expect_violation : bool;
  r_iterations : int;  (* executed, baseline excluded *)
  r_livelocks : int;
  r_corpus_size : int;
  r_edges : int;
  r_growth : growth_point list;  (* coverage-growth curve, ascending iterations *)
  r_violations : violation list;
}

type summary = {
  s_seed : int64;
  s_depth : int;
  s_iteration_budget : int;
  s_stopped_early : bool;  (* the wall-clock budget cut the campaign short *)
  s_results : target_result list;
}

let target_ok r =
  if r.r_expect_violation then
    r.r_violations <> [] && List.for_all (fun v -> v.v_repro <> None) r.r_violations
  else r.r_violations = []

let ok s = List.for_all target_ok s.s_results

let repros s =
  List.concat_map
    (fun r -> List.filter_map (fun v -> v.v_repro) r.r_violations)
    s.s_results

(* The failing run's decision sequence, replayable through the directed
   executor (same mapping as the chaos campaign's). *)
let choices_of_trace trace =
  List.map
    (function
      | Trace.Scheduled { pid; _ } -> Directed.Step pid
      | Trace.Crashed { pid; _ } -> Directed.Crash pid
      | Trace.Recovered { pid; _ } -> Directed.Recover pid)
    (Trace.events trace)

type outcome_class =
  | Clean
  | Livelocked
  | Violated of { kind : string; message : string }

(* One monitored, coverage-instrumented execution of [target] under
   [drive].  Detaches the logger before returning so instances never
   leak a collector. *)
let observe_run ?refine target ~tseed ~drive =
  let inst = target.fz_build ~seed:tseed in
  let cov = Coverage.create () in
  Coverage.attach cov inst.Executor.memory;
  let monitor =
    Monitor.create ~check_ownership:target.fz_check_ownership ~memory:inst.Executor.memory
      ~processes:(Array.length inst.Executor.programs) ()
  in
  let on_event =
    match refine with
    | None -> Monitor.hook monitor
    | Some make ->
      let rhook = make ~name:target.fz_name ~namespace:(Memory.namespace inst.Executor.memory)
      and mhook = Monitor.hook monitor in
      fun ev ->
        mhook ev;
        rhook ev
  in
  let classify_report report =
    if Report.is_livelock report then Livelocked
    else (
      try
        Monitor.finalize monitor report;
        Clean
      with Monitor.Violation v -> Violated { kind = v.Monitor.kind; message = v.Monitor.message })
  in
  let outcome =
    match drive ~inst ~on_event with
    | report -> classify_report report
    | exception Monitor.Violation v ->
      Violated { kind = v.Monitor.kind; message = v.Monitor.message }
  in
  Coverage.detach inst.Executor.memory;
  (outcome, Coverage.edges cov)

let shrink_violation ?refine target ~tseed ~prefix =
  let extra =
    Option.map
      (fun make ->
        let namespace = Memory.namespace (target.fz_build ~seed:tseed).Executor.memory in
        fun () -> make ~name:target.fz_name ~namespace)
      refine
  in
  match
    Shrink.shrink ?extra
      {
        Shrink.label = target.fz_name;
        build = (fun () -> target.fz_build ~seed:tseed);
        check_ownership = target.fz_check_ownership;
        choices = prefix;
        max_ticks = target.fz_max_ticks;
        tau_cadence = target.fz_tau_cadence;
      }
  with
  | None -> None
  | Some r ->
    Some
      {
        Shrink.rp_algorithm = target.fz_name;
        rp_n = target.fz_n;
        rp_seed = tseed;
        rp_check_ownership = target.fz_check_ownership;
        rp_max_ticks = target.fz_max_ticks;
        rp_tau_cadence = target.fz_tau_cadence;
        rp_kind = r.Shrink.r_failure.Shrink.f_kind;
        rp_trace_format = Shrink.Condensed;
        rp_choices = r.Shrink.r_choices;
      }

let fuzz_target ?refine ~master ~depth ~iterations ~should_stop target =
  (* The instance seed is fixed per target (derived from the campaign
     seed and the target name): corpus prefixes then stay meaningful
     across iterations — only the schedule varies, exactly the
     nondeterminism the fuzzer owns. *)
  let tseed = Int64.logxor (Stream.seed master) (Stream.hash_name target.fz_name) in
  let rng = Stream.fork_named master ~name:("fuzz-" ^ target.fz_name) in
  let corpus = Corpus.create () in
  let growth = ref [] in
  let livelocks = ref 0 in
  let violations = ref [] in
  let executed = ref 0 in
  let record_coverage ~iteration ~prefix edges =
    if Corpus.observe corpus ~iteration ~prefix edges > 0 then
      growth := { g_iteration = iteration; g_edges = Corpus.seen_edges corpus } :: !growth
  in
  let record_violation ~iteration ~mode ~prefix kind message =
    let repro = shrink_violation ?refine target ~tseed ~prefix in
    violations := { v_kind = kind; v_message = message; v_iteration = iteration; v_mode = mode; v_repro = repro } :: !violations
  in
  (* Baseline: one fair round-robin run.  It estimates k (the expected
     decision count PCT spreads its change points over) and seeds the
     corpus with the fair schedule's coverage. *)
  let traced_executor_run adversary trace ~inst ~on_event =
    Executor.run ~tau_cadence:target.fz_tau_cadence ~max_ticks:target.fz_max_ticks ~on_event
      ~adversary:(Trace.recording trace ~base:adversary)
      inst
  in
  let k = ref 32 in
  let baseline_trace = Trace.create () in
  (match
     observe_run ?refine target ~tseed
       ~drive:(fun ~inst ~on_event ->
         let report = traced_executor_run (Adversary.round_robin ()) baseline_trace ~inst ~on_event in
         k := max 8 report.Report.ticks;
         report)
   with
  | Clean, edges -> record_coverage ~iteration:(-1) ~prefix:(choices_of_trace baseline_trace) edges
  | Livelocked, _ -> incr livelocks
  | Violated { kind; message }, _ ->
    record_violation ~iteration:(-1) ~mode:"baseline"
      ~prefix:(choices_of_trace baseline_trace) kind message);
  let i = ref 0 in
  while !violations = [] && !i < iterations && not (should_stop ()) do
    let iteration = !i in
    incr i;
    incr executed;
    let mutation_round = iteration mod 4 = 3 && Corpus.size corpus > 0 in
    if mutation_round then begin
      let parent = Corpus.pick corpus rng in
      let child =
        Corpus.mutate ~rng ~n:target.fz_n ~allow_faults:target.fz_allow_faults
          ~allow_crashes:target.fz_allow_crashes parent
      in
      let taken = ref [||] in
      let outcome, edges =
        observe_run ?refine target ~tseed ~drive:(fun ~inst ~on_event ->
            let r =
              Directed.run ~max_ticks:target.fz_max_ticks ~tau_cadence:target.fz_tau_cadence
                ~on_event ~prefix:child inst
            in
            taken := r.Directed.taken;
            match r.Directed.outcome with
            | Directed.Finished report -> report
            | Directed.Raised e -> raise e)
      in
      match outcome with
      | Clean -> record_coverage ~iteration ~prefix:child edges
      | Livelocked ->
        incr livelocks;
        record_coverage ~iteration ~prefix:child edges
      | Violated { kind; message } ->
        record_violation ~iteration ~mode:"mutation" ~prefix:(Array.to_list !taken) kind message
    end
    else begin
      (* PCT round: sweep depths 1..depth, alternating the plain and the
         crash-spending variants (crashes only where the target's
         recovery path is meant to be exercised). *)
      let d = 1 + (iteration / 2 mod depth) in
      let crashing = iteration mod 2 = 1 && target.fz_allow_crashes in
      let adversary =
        if crashing then
          Pct.with_crashes ~depth:d ~n:target.fz_n ~k:!k ~failures:1
            ~recover_after:(max 4 (!k / 4)) ~rng ()
        else Pct.adversary ~depth:d ~n:target.fz_n ~k:!k ~rng ()
      in
      let mode = adversary.Adversary.name in
      let trace = Trace.create () in
      let outcome, edges =
        observe_run ?refine target ~tseed ~drive:(traced_executor_run adversary trace)
      in
      let prefix = choices_of_trace trace in
      match outcome with
      | Clean -> record_coverage ~iteration ~prefix edges
      | Livelocked ->
        incr livelocks;
        record_coverage ~iteration ~prefix edges
      | Violated { kind; message } -> record_violation ~iteration ~mode ~prefix kind message
    end
  done;
  {
    r_target = target.fz_name;
    r_n = target.fz_n;
    r_expect_violation = target.fz_expect_violation;
    r_iterations = !executed;
    r_livelocks = !livelocks;
    r_corpus_size = Corpus.size corpus;
    r_edges = Corpus.seen_edges corpus;
    r_growth = List.rev !growth;
    r_violations = List.rev !violations;
  }

let run ?(clock = Clock.none) ?(depth = 3) ?max_seconds ?progress ?obs ?refine ~seed ~iterations targets =
  if depth < 1 then invalid_arg "Fuzz.run: depth must be >= 1";
  if iterations < 0 then invalid_arg "Fuzz.run: iterations must be >= 0";
  let master = Stream.create seed in
  let t0 = Clock.now clock in
  let stopped_early = ref false in
  let should_stop () =
    match max_seconds with
    | None -> false
    | Some budget ->
      let stop = Clock.elapsed_since clock t0 >= budget in
      if stop then stopped_early := true;
      stop
  in
  let report_progress = match progress with Some f -> f | None -> fun ~target:_ ~done_:_ ~total:_ -> () in
  let total = List.length targets in
  let results =
    List.mapi
      (fun idx target ->
        let r = fuzz_target ?refine ~master ~depth ~iterations ~should_stop target in
        report_progress ~target:target.fz_name ~done_:(idx + 1) ~total;
        r)
      targets
  in
  let summary =
    {
      s_seed = seed;
      s_depth = depth;
      s_iteration_budget = iterations;
      s_stopped_early = !stopped_early;
      s_results = results;
    }
  in
  (match obs with
  | None -> ()
  | Some o ->
    let sum f = List.fold_left (fun acc r -> acc + f r) 0 summary.s_results in
    Metrics.add (Obs.counter o "fuzz/targets") (List.length summary.s_results);
    Metrics.add (Obs.counter o "fuzz/iterations") (sum (fun r -> r.r_iterations));
    Metrics.add (Obs.counter o "fuzz/livelocks") (sum (fun r -> r.r_livelocks));
    Metrics.add (Obs.counter o "fuzz/corpus_entries") (sum (fun r -> r.r_corpus_size));
    Metrics.add (Obs.counter o "fuzz/coverage_edges") (sum (fun r -> r.r_edges));
    Metrics.add
      (Obs.counter o "fuzz/violations")
      (sum (fun r -> List.length r.r_violations)));
  summary

(* --- JSON emission (hand-rolled, same dialect as the chaos campaign:
   the toolchain has no JSON library and the driver forbids adding
   one) --- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let repro_to_json (r : Shrink.repro) =
  Printf.sprintf
    "{\"algorithm\":\"%s\",\"n\":%d,\"seed\":\"%Ld\",\"kind\":\"%s\",\"tau_cadence\":%d,\"choices\":[%s]}"
    (json_escape r.Shrink.rp_algorithm) r.Shrink.rp_n r.Shrink.rp_seed
    (json_escape r.Shrink.rp_kind) r.Shrink.rp_tau_cadence
    (String.concat ","
       (List.map
          (fun c -> "\"" ^ json_escape (Directed.choice_to_string c) ^ "\"")
          r.Shrink.rp_choices))

let violation_to_json v =
  Printf.sprintf "{\"kind\":\"%s\",\"iteration\":%d,\"mode\":\"%s\",\"shrunk\":%s,\"repro\":%s}"
    (json_escape v.v_kind) v.v_iteration (json_escape v.v_mode)
    (if v.v_repro <> None then "true" else "false")
    (match v.v_repro with None -> "null" | Some r -> repro_to_json r)

let growth_to_json g = Printf.sprintf "[%d,%d]" g.g_iteration g.g_edges

let result_to_json r =
  Printf.sprintf
    "{\"target\":\"%s\",\"n\":%d,\"expect_violation\":%b,\"found\":%b,\"ok\":%b,\"iterations\":%d,\"livelocks\":%d,\"corpus_size\":%d,\"coverage_edges\":%d,\"coverage_growth\":[%s],\"violations\":[%s]}"
    (json_escape r.r_target) r.r_n r.r_expect_violation
    (r.r_violations <> [])
    (target_ok r) r.r_iterations r.r_livelocks r.r_corpus_size r.r_edges
    (String.concat "," (List.map growth_to_json r.r_growth))
    (String.concat "," (List.map violation_to_json r.r_violations))

let to_json s =
  Printf.sprintf
    "{\"seed\":\"%Ld\",\"pct_depth\":%d,\"iteration_budget\":%d,\"stopped_early\":%b,\"ok\":%b,\"targets\":[\n%s\n]}"
    s.s_seed s.s_depth s.s_iteration_budget s.s_stopped_early (ok s)
    (String.concat ",\n" (List.map result_to_json s.s_results))

let pp fmt s =
  Format.fprintf fmt "@[<v>fuzz campaign: seed %Ld, depth %d, budget %d iterations/target%s@ "
    s.s_seed s.s_depth s.s_iteration_budget
    (if s.s_stopped_early then " (stopped early: time budget)" else "");
  Format.fprintf fmt "%-28s %6s %6s %7s %6s %5s  %s@ " "target" "iters" "edges" "corpus" "live"
    "viol" "status";
  List.iter
    (fun r ->
      let status =
        match (r.r_expect_violation, r.r_violations) with
        | true, [] -> "MISSED (mutant not found)"
        | true, v :: _ ->
          Printf.sprintf "found %s @%d via %s%s" v.v_kind v.v_iteration v.v_mode
            (if v.v_repro = None then " (unshrunk!)" else "")
        | false, [] -> "clean"
        | false, v :: _ -> Printf.sprintf "VIOLATION %s @%d via %s" v.v_kind v.v_iteration v.v_mode
      in
      Format.fprintf fmt "%-28s %6d %6d %7d %6d %5d  %s@ " r.r_target r.r_iterations r.r_edges
        r.r_corpus_size r.r_livelocks (List.length r.r_violations) status)
    s.s_results;
  Format.fprintf fmt "@]"
