module Directed = Renaming_sched.Directed
module Sample = Renaming_rng.Sample

type entry = {
  en_prefix : Directed.choice list;
  en_new_edges : int;  (* edges this entry contributed when admitted *)
  en_iteration : int;  (* campaign iteration that found it *)
}

type t = {
  seen : (int64, unit) Hashtbl.t;  (* global edge set across all executions *)
  mutable entries : entry array;
  mutable count : int;
}

let create () = { seen = Hashtbl.create 256; entries = [||]; count = 0 }

let size t = t.count

let seen_edges t = Hashtbl.length t.seen

let entries t = Array.to_list (Array.sub t.entries 0 t.count)

let push t entry =
  if t.count = Array.length t.entries then begin
    let cap = max 8 (2 * Array.length t.entries) in
    let grown = Array.make cap entry in
    Array.blit t.entries 0 grown 0 t.count;
    t.entries <- grown
  end;
  t.entries.(t.count) <- entry;
  t.count <- t.count + 1

(* Admit [prefix] iff the execution's edge set contains edges never seen
   by any earlier execution.  Returns the number of new edges (0 = not
   admitted).  Deduplication is against everything *seen*, not just
   admitted entries, so re-running an old schedule never re-qualifies. *)
let observe t ~iteration ~prefix edges =
  let fresh = List.filter (fun h -> not (Hashtbl.mem t.seen h)) edges in
  List.iter (fun h -> Hashtbl.replace t.seen h ()) fresh;
  let n = List.length fresh in
  if n > 0 then push t { en_prefix = prefix; en_new_edges = n; en_iteration = iteration };
  n

let pick t rng =
  if t.count = 0 then []
  else t.entries.(Sample.uniform_int rng t.count).en_prefix

(* --- mutation --- *)

let insert_at lst i x =
  let rec go j = function
    | rest when j = i -> x :: rest
    | [] -> [ x ]
    | y :: rest -> y :: go (j + 1) rest
  in
  go 0 lst

let swap_adjacent lst i =
  let arr = Array.of_list lst in
  if i + 1 < Array.length arr then begin
    let tmp = arr.(i) in
    arr.(i) <- arr.(i + 1);
    arr.(i + 1) <- tmp
  end;
  Array.to_list arr

let truncate lst i = List.filteri (fun j _ -> j < i) lst

(* One structural edit.  Infeasible results are fine: the directed
   executor is run in permissive mode downstream, which drops choices
   whose pid is not in the required state. *)
let mutate_once ~rng ~n ~allow_faults ~allow_crashes prefix =
  let len = List.length prefix in
  let pos bound = if bound <= 0 then 0 else Sample.uniform_int rng (bound + 1) in
  let pid () = Sample.uniform_int rng n in
  let n_kinds = 3 + (if allow_crashes then 1 else 0) + if allow_faults then 1 else 0 in
  match Sample.uniform_int rng n_kinds with
  | 0 -> if len = 0 then [ Directed.Step (pid ()) ] else truncate prefix (Sample.uniform_int rng len)
  | 1 -> if len < 2 then insert_at prefix (pos len) (Directed.Step (pid ())) else swap_adjacent prefix (Sample.uniform_int rng (len - 1))
  | 2 -> insert_at prefix (pos len) (Directed.Step (pid ()))
  | 3 when allow_crashes ->
    let p = pid () in
    let at = pos len in
    let with_crash = insert_at prefix at (Directed.Crash p) in
    (* Recover somewhere after the crash, so the default tail is not
       forced to leave the process dead. *)
    let at' = at + 1 + Sample.uniform_int rng (List.length with_crash - at) in
    insert_at with_crash at' (Directed.Recover p)
  | _ -> insert_at prefix (pos len) (Directed.Fault (pid ()))

let mutate ~rng ~n ~allow_faults ~allow_crashes prefix =
  let edits = 1 + Sample.uniform_int rng 3 in
  let rec go k acc =
    if k = 0 then acc else go (k - 1) (mutate_once ~rng ~n ~allow_faults ~allow_crashes acc)
  in
  go edits prefix
