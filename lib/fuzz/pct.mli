(** Probabilistic Concurrency Testing (PCT) schedulers, as
    {!Renaming_sched.Adversary}-compatible adversaries.

    PCT (Burckhardt et al., ASPLOS 2010) schedules the highest-priority
    runnable process, with priorities drawn as a random permutation and
    [depth - 1] priority *change points* sampled uniformly over the
    expected execution length [k]: at a change point the currently
    scheduled process is demoted below everyone else.  Any bug of depth
    [d] — one that some [d] ordering constraints suffice to trigger — is
    found with probability at least [1 / (n * k^(d-1))] per run, so
    repeated runs with fresh randomness find shallow schedule bugs
    quickly even when the schedule space is astronomically large.

    [depth = 1] is random stable priorities (no preemption at all, the
    adversary the model's non-preemptive default never plays); each
    extra level spends one more change point.

    Both constructors are deterministic given the [rng]: all state lives
    in the closure, nothing reads ambient randomness. *)

val adversary :
  ?depth:int -> n:int -> k:int -> rng:Renaming_rng.Xoshiro.t -> unit -> Renaming_sched.Adversary.t
(** [adversary ~n ~k ~rng ()] — [n] processes, expected run length [k]
    decisions (estimate it with a baseline run; precision only affects
    the bug-finding probability, not correctness).  [depth] defaults to
    3 (bugs needing at most two preemptions). *)

val with_crashes :
  ?depth:int ->
  n:int ->
  k:int ->
  failures:int ->
  recover_after:int ->
  rng:Renaming_rng.Xoshiro.t ->
  unit ->
  Renaming_sched.Adversary.t
(** Crash-aware PCT: change points double as crash injections.  While
    the [failures] budget lasts, a change point crashes the
    currently-prioritised process instead of merely demoting it (the
    crashed process recovers [recover_after] decisions later); once the
    budget is spent, change points demote as usual.  The last runnable
    process is never crashed. *)
