(** The fuzzing corpus: decision prefixes that earned their keep by
    producing new interleaving coverage ({!Coverage}), plus the
    structural mutations that breed new schedules from them.

    A corpus entry is a {!Renaming_sched.Directed.choice} prefix — the
    identity of a schedule under the prefix-directed executor (the
    deterministic default policy fills in the tail).  An execution is
    admitted iff its edge set contains at least one edge *no earlier
    execution of this campaign* produced; deduplication is against all
    edges ever seen, not just admitted entries, so replaying an old
    schedule never re-qualifies it. *)

type entry = {
  en_prefix : Renaming_sched.Directed.choice list;
  en_new_edges : int;  (** edges this entry contributed when admitted *)
  en_iteration : int;  (** campaign iteration that found it *)
}

type t

val create : unit -> t

val size : t -> int
(** Number of admitted entries. *)

val seen_edges : t -> int
(** Total distinct coverage edges observed across all executions. *)

val entries : t -> entry list
(** Admission order. *)

val observe :
  t -> iteration:int -> prefix:Renaming_sched.Directed.choice list -> int64 list -> int
(** [observe t ~iteration ~prefix edges] folds one execution's edge list
    into the global set and returns how many edges were new; when
    positive, [prefix] was admitted as an entry. *)

val pick : t -> Renaming_rng.Xoshiro.t -> Renaming_sched.Directed.choice list
(** A uniformly random entry's prefix ([[]] when the corpus is empty —
    mutating the empty prefix just grows fresh schedules). *)

val mutate :
  rng:Renaming_rng.Xoshiro.t ->
  n:int ->
  allow_faults:bool ->
  allow_crashes:bool ->
  Renaming_sched.Directed.choice list ->
  Renaming_sched.Directed.choice list
(** Apply 1–3 random structural edits: truncate at a random point, swap
    two adjacent choices, insert a [Step] of a random pid, insert a
    [Crash] with a matching later [Recover] (when [allow_crashes]), or
    insert a [Fault] (when [allow_faults] — only safe for targets whose
    programs route operations through the fault-aware retry
    primitives).  Mutants may be partly infeasible; the permissive
    directed executor drops infeasible choices, so every mutant still
    denotes a valid schedule. *)
