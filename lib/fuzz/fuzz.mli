(** Coverage-guided schedule fuzzing: the campaign runner behind
    [renaming fuzz] / [make fuzz].

    Each target is fuzzed independently with a fixed instance seed
    (derived from the campaign seed and the target name — algorithm coin
    flips are pinned; the schedule is the only nondeterminism the fuzzer
    owns).  Iterations alternate two generators:

    - {b PCT rounds}: a fresh {!Pct} adversary per run, sweeping depths
      [1..depth] and alternating the plain and crash-spending variants,
      with the expected run length [k] estimated from a fair round-robin
      baseline run;
    - {b mutation rounds} (every 4th iteration, once the corpus is
      non-empty): pick a corpus prefix, apply 1–3 structural edits
      ({!Corpus.mutate}), replay through the permissive prefix-directed
      executor.

    Every run executes under the online safety monitor and a fresh
    {!Coverage} collector; schedules producing new conflict edges are
    admitted to the corpus ({!Corpus.observe}).  The first violation per
    target ends that target's campaign: the failing decision sequence is
    ddmin-shrunk through {!Renaming_faults.Shrink} into a replayable
    repro.

    Determinism: given the same seed, targets and budgets (and no
    wall-clock budget), the whole campaign — iteration counts, coverage
    curves, violations, shrunk repros — is a pure function of its
    inputs. *)

type target = {
  fz_name : string;
  fz_n : int;
  fz_build : seed:int64 -> Renaming_sched.Executor.instance;
  fz_check_ownership : bool;  (** see {!Renaming_faults.Monitor.create} *)
  fz_allow_faults : bool;
      (** permit [Fault] mutations — only sound when the target's
          programs route namespace traffic through the fault-aware
          retry primitives *)
  fz_allow_crashes : bool;
      (** permit crash/recovery injection (PCT crash variant and
          corpus crash mutations) *)
  fz_tau_cadence : int;  (** τ-device cadence, 1 for device-free targets *)
  fz_max_ticks : int;  (** livelock guard per run *)
  fz_expect_violation : bool;
      (** seeded-mutant self-test entry: the fuzzer {e must} find a
          violation here, and a clean result is a campaign failure *)
}

type violation = {
  v_kind : string;
  v_message : string;
  v_iteration : int;  (** [-1] means the round-robin baseline run *)
  v_mode : string;  (** ["baseline"], ["pct-d<k>"], ["pct-crash-d<k>"], ["mutation"] *)
  v_repro : Renaming_faults.Shrink.repro option;
      (** the ddmin-shrunk replayable artifact; [None] only if shrinking
          could not reproduce the failure *)
}

type growth_point = { g_iteration : int; g_edges : int }

type target_result = {
  r_target : string;
  r_n : int;
  r_expect_violation : bool;
  r_iterations : int;  (** executed fuzz iterations (baseline excluded) *)
  r_livelocks : int;
  r_corpus_size : int;
  r_edges : int;  (** distinct coverage edges seen *)
  r_growth : growth_point list;
      (** the coverage-growth curve: one point per iteration that grew
          the edge set, ascending *)
  r_violations : violation list;
}

type summary = {
  s_seed : int64;
  s_depth : int;
  s_iteration_budget : int;
  s_stopped_early : bool;  (** the wall-clock budget cut the campaign short *)
  s_results : target_result list;
}

val run :
  ?clock:Renaming_clock.Clock.t ->
  ?depth:int ->
  ?max_seconds:float ->
  ?progress:(target:string -> done_:int -> total:int -> unit) ->
  ?obs:Renaming_obs.Obs.t ->
  ?refine:(name:string -> namespace:int -> (Renaming_sched.Executor.event -> unit)) ->
  seed:int64 ->
  iterations:int ->
  target list ->
  summary
(** [depth] (default 3) is the maximum PCT depth swept.  [max_seconds]
    bounds campaign wall time as measured on [clock] (default
    {!Renaming_clock.Clock.none}, under which the bound never trips —
    pass a real clock from the [bin/] edge to make it effective).

    With [obs], campaign totals are accumulated onto the
    [fuzz/targets], [fuzz/iterations], [fuzz/livelocks],
    [fuzz/corpus_entries], [fuzz/coverage_edges] and [fuzz/violations]
    counters; the fuzzing loop itself never sees [obs], so results are
    identical either way.

    [refine] attaches the refinement checker to every run: the factory
    is applied once per run (fresh checker state) with the target name
    and instance namespace, and its hook is composed after the safety
    monitor's — including shrinking replays, so ["refine:..."]
    violations ddmin-reduce like any monitor kind.  The schedules a
    campaign attempts are unchanged; on targets it never flags, results
    are identical with or without it. *)

val ok : summary -> bool
(** Every mutant target found (with a shrunk repro for each violation)
    {e and} every clean target violation-free. *)

val target_ok : target_result -> bool

val repros : summary -> Renaming_faults.Shrink.repro list
(** All shrunk artifacts, in target order. *)

val to_json : summary -> string
(** The [results/fuzz.json] document; schema in [docs/fuzzing.md]. *)

val pp : Format.formatter -> summary -> unit
