module Adversary = Renaming_sched.Adversary
module Sample = Renaming_rng.Sample

(* Sample [count] distinct decision indices from [1, horizon), sorted.
   [count] is tiny (d-1), so rejection against a list is fine. *)
let sample_change_points rng ~count ~horizon =
  let horizon = max 2 horizon in
  let count = min count (horizon - 1) in
  let picked = ref [] in
  let remaining = ref count in
  while !remaining > 0 do
    let c = 1 + Sample.uniform_int rng (horizon - 1) in
    if not (List.mem c !picked) then begin
      picked := c :: !picked;
      decr remaining
    end
  done;
  List.sort compare !picked

type state = {
  priorities : int array;  (* per pid; higher runs first *)
  mutable change_points : int list;  (* sorted ascending, consumed from the front *)
  mutable next_low : int;  (* next demotion priority: d-2, d-3, ..., 0 *)
  mutable decisions : int;  (* decisions made so far, the PCT step counter *)
}

let make_state rng ~n ~depth ~horizon =
  (* Initial priorities are a random permutation of [d-1, d-1+n): all
     above the demotion range [0, d-1), so a demoted process drops below
     every process that has not been demoted yet, and earlier demotions
     end up lower than later ones. *)
  let perm = Sample.permutation rng n in
  {
    priorities = Array.map (fun p -> p + depth - 1) perm;
    change_points = sample_change_points rng ~count:(depth - 1) ~horizon;
    next_low = depth - 2;
    decisions = 0;
  }

let top_runnable st (view : Adversary.view) =
  let best = ref (view.Adversary.runnable_nth 0) in
  for i = 1 to view.Adversary.runnable_count - 1 do
    let pid = view.Adversary.runnable_nth i in
    if st.priorities.(pid) > st.priorities.(!best) then best := pid
  done;
  !best

let at_change_point st =
  match st.change_points with
  | c :: rest when c <= st.decisions ->
    st.change_points <- rest;
    true
  | _ -> false

let demote st pid =
  st.priorities.(pid) <- st.next_low;
  st.next_low <- st.next_low - 1

let adversary ?(depth = 3) ~n ~k ~rng () =
  if depth < 1 then invalid_arg "Pct.adversary: depth must be >= 1";
  if n < 1 then invalid_arg "Pct.adversary: n must be >= 1";
  let st = make_state rng ~n ~depth ~horizon:k in
  {
    Adversary.name = Printf.sprintf "pct-d%d" depth;
    decide =
      (fun view ->
        st.decisions <- st.decisions + 1;
        if at_change_point st then demote st (top_runnable st view);
        Adversary.Schedule (top_runnable st view));
  }

let with_crashes ?(depth = 3) ~n ~k ~failures ~recover_after ~rng () =
  if depth < 1 then invalid_arg "Pct.with_crashes: depth must be >= 1";
  if n < 1 then invalid_arg "Pct.with_crashes: n must be >= 1";
  if failures < 0 then invalid_arg "Pct.with_crashes: failures must be >= 0";
  if recover_after < 1 then invalid_arg "Pct.with_crashes: recover_after must be >= 1";
  let st = make_state rng ~n ~depth ~horizon:k in
  let crashes_left = ref failures in
  let recoveries = ref [] in
  {
    Adversary.name = Printf.sprintf "pct-crash-d%d" depth;
    decide =
      (fun view ->
        st.decisions <- st.decisions + 1;
        let due_recovery =
          match !recoveries with
          | (at, pid) :: rest when at <= st.decisions && view.Adversary.is_crashed pid ->
            recoveries := rest;
            Some pid
          | _ -> None
        in
        match due_recovery with
        | Some pid -> Adversary.Recover pid
        | None ->
          if at_change_point st then begin
            let top = top_runnable st view in
            (* A change point either demotes the running process (plain
               PCT) or, while the crash budget lasts, crashes it — the
               strongest form of "take it off the CPU".  Never crash the
               last runnable process: the executor would stop with the
               recovery stranded. *)
            if !crashes_left > 0 && view.Adversary.runnable_count > 1 then begin
              decr crashes_left;
              demote st top;
              recoveries := !recoveries @ [ (st.decisions + recover_after, top) ];
              Adversary.Crash top
            end
            else begin
              demote st top;
              Adversary.Schedule (top_runnable st view)
            end
          end
          else Adversary.Schedule (top_runnable st view));
  }
