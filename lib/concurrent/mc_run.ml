module Stream = Renaming_rng.Stream
module Sample = Renaming_rng.Sample
module Clock = Renaming_clock.Clock
module Obs = Renaming_obs.Obs
module Metrics = Renaming_obs.Metrics

type result = {
  assignment : Renaming_shm.Assignment.t;
  steps : int array;
  wall_seconds : float;
  domains : int;
}

exception
  Stalled of {
    deadline : float;
    elapsed : float;
    per_domain_steps : int array;
    finished_domains : int;
    domains : int;
  }

let stalled_to_string = function
  | Stalled { deadline; elapsed; per_domain_steps; finished_domains; domains } ->
    let steps =
      String.concat ", "
        (Array.to_list (Array.mapi (fun d s -> Printf.sprintf "d%d=%d" d s) per_domain_steps))
    in
    Printf.sprintf
      "multicore run stalled: deadline %.3fs exceeded (elapsed %.3fs), %d/%d domains finished, \
       per-domain steps at timeout: [%s]"
      deadline elapsed finished_domains domains steps
  | _ -> invalid_arg "Mc_run.stalled_to_string: not a Stalled exception"

let () =
  Printexc.register_printer (function
    | Stalled _ as e -> Some (stalled_to_string e)
    | _ -> None)

let max_steps r = Array.fold_left max 0 r.steps

let unnamed_count r =
  Array.length r.assignment.Renaming_shm.Assignment.names
  - Renaming_shm.Assignment.named_count r.assignment

let recommended_domains () = max 1 (Domain.recommended_domain_count () - 1)

(* A process's life is a sequence of segments: random probes into a
   register range, or a deterministic sweep of a range. *)
type segment =
  | Probe of { base : int; size : int; count : int }
  | Sweep of { base : int; size : int }

type proc = {
  pid : int;
  rng : Renaming_rng.Xoshiro.t;
  schedule : segment array;
  mutable seg : int;
  mutable budget : int;  (* probes left in the current Probe segment *)
  mutable cursor : int;  (* position in the current Sweep segment *)
  mutable name : int option;
  mutable steps : int;
  mutable finished : bool;
}

let enter_segment p =
  if p.seg >= Array.length p.schedule then p.finished <- true
  else
    match p.schedule.(p.seg) with
    | Probe { count; _ } -> p.budget <- count
    | Sweep _ -> p.cursor <- 0

(* One shared-memory step (or retirement).  Returns [true] if the
   process is still active afterwards. *)
let rec step regs p =
  if p.finished then false
  else
    match p.schedule.(p.seg) with
    | Probe { base; size; count = _ } ->
      if p.budget = 0 then begin
        p.seg <- p.seg + 1;
        enter_segment p;
        step regs p
      end
      else begin
        p.budget <- p.budget - 1;
        let target = base + Sample.uniform_int p.rng size in
        p.steps <- p.steps + 1;
        if Atomic_tas.test_and_set regs ~idx:target ~pid:p.pid then begin
          p.name <- Some target;
          p.finished <- true;
          false
        end
        else true
      end
    | Sweep { base; size } ->
      if p.cursor >= size then begin
        p.seg <- p.seg + 1;
        enter_segment p;
        step regs p
      end
      else begin
        let target = base + p.cursor in
        p.cursor <- p.cursor + 1;
        p.steps <- p.steps + 1;
        if Atomic_tas.test_and_set regs ~idx:target ~pid:p.pid then begin
          p.name <- Some target;
          p.finished <- true;
          false
        end
        else true
      end

(* Obs recording happens strictly after the domains are joined: the
   registry is process-local mutable state and must not be touched from
   worker domains. *)
let record_result obs (r : result) =
  match obs with
  | None -> ()
  | Some o ->
    let h = Obs.histogram o "multicore/steps" in
    Array.iter (fun s -> Renaming_obs.Hist.observe h s) r.steps;
    Metrics.add (Obs.counter o "multicore/steps_total") (Array.fold_left ( + ) 0 r.steps);
    Metrics.add (Obs.counter o "multicore/runs") 1;
    Obs.gauge o "multicore/wall_seconds" (fun () -> r.wall_seconds);
    Obs.gauge o "multicore/domains" (fun () -> float_of_int r.domains)

let execute ?obs ?domains ?(clock = Clock.none) ?deadline ~n ~namespace ~schedule_of_pid ~seed
    () =
  let domains = match domains with Some d -> max 1 d | None -> recommended_domains () in
  (match deadline with
  | Some dl ->
    if dl <= 0. then invalid_arg "Mc_run.execute: deadline must be > 0";
    if Clock.label clock = Clock.label Clock.none then
      invalid_arg "Mc_run.execute: a deadline needs a ticking clock"
  | None -> ());
  let regs = Atomic_tas.create namespace in
  let stream = Stream.create seed in
  let make_proc pid =
    let p =
      {
        pid;
        rng = Stream.fork stream ~index:pid;
        schedule = schedule_of_pid pid;
        seg = 0;
        budget = 0;
        cursor = 0;
        name = None;
        steps = 0;
        finished = false;
      }
    in
    enter_segment p;
    p
  in
  let shards =
    Array.init domains (fun d ->
        let pids = ref [] in
        let pid = ref (n - 1) in
        while !pid >= 0 do
          if !pid mod domains = d then pids := !pid :: !pids;
          decr pid
        done;
        Array.of_list (List.map make_proc !pids))
  in
  (* Watchdog shared state: the workers publish progress, the watchdog
     publishes cancellation.  Everything crossing domains is Atomic. *)
  let cancel = Atomic.make false in
  let progress = Array.init domains (fun _ -> Atomic.make 0) in
  let done_flags = Array.init domains (fun _ -> Atomic.make false) in
  let run_shard d shard () =
    (* Interleave the shard's processes one step at a time so in-domain
       processes advance concurrently too. *)
    let active = ref (Array.length shard) in
    while !active > 0 && not (Atomic.get cancel) do
      active := 0;
      Array.iter (fun p -> if step regs p then incr active) shard;
      Atomic.set progress.(d) (Array.fold_left (fun acc p -> acc + p.steps) 0 shard)
    done;
    Atomic.set progress.(d) (Array.fold_left (fun acc p -> acc + p.steps) 0 shard);
    Atomic.set done_flags.(d) true
  in
  let t0 = Clock.now clock in
  (match deadline with
  | None ->
    let handles =
      Array.init (domains - 1) (fun i -> Domain.spawn (run_shard (i + 1) shards.(i + 1)))
    in
    run_shard 0 shards.(0) ();
    Array.iter Domain.join handles
  | Some deadline ->
    (* All shards run on spawned domains so this one is free to watch
       the clock; a livelocked run is cancelled cooperatively (workers
       poll [cancel] once per sweep) and reported with the per-domain
       step counts frozen at the timeout. *)
    let handles = Array.init domains (fun d -> Domain.spawn (run_shard d shards.(d))) in
    let all_done () = Array.for_all Atomic.get done_flags in
    let rec watch () =
      if all_done () then ()
      else
        let elapsed = Clock.elapsed_since clock t0 in
        if elapsed >= deadline then begin
          let per_domain_steps = Array.map Atomic.get progress in
          let finished_domains =
            Array.fold_left (fun acc f -> if Atomic.get f then acc + 1 else acc) 0 done_flags
          in
          Atomic.set cancel true;
          Array.iter Domain.join handles;
          raise
            (Stalled { deadline; elapsed; per_domain_steps; finished_domains; domains })
        end
        else begin
          (* Wall-clock watchdog on its own domain: every worker runs on
             a spawned domain, so nothing the scheduler multiplexes is
             behind this sleep.  lint: allow blocking-sleep *)
          Unix.sleepf 0.0005;
          watch ()
        end
    in
    watch ();
    Array.iter Domain.join handles);
  let wall_seconds = Clock.elapsed_since clock t0 in
  let steps = Array.make n 0 in
  let names = Array.make n None in
  Array.iter
    (Array.iter (fun p ->
         steps.(p.pid) <- p.steps;
         names.(p.pid) <- p.name))
    shards;
  let result =
    {
      assignment = Renaming_shm.Assignment.make ~namespace names;
      steps;
      wall_seconds;
      domains;
    }
  in
  record_result obs result;
  result

let pow2 e =
  let rec go acc e = if e = 0 then acc else go (acc * 2) (e - 1) in
  go 1 e

let log2_ceil n =
  let rec go acc p = if p >= n then acc else go (acc + 1) (p * 2) in
  go 0 1

let loglog_ceil n = max 1 (log2_ceil (max 2 (log2_ceil n)))

let logloglog_ceil n = max 1 (log2_ceil (max 2 (loglog_ceil n)))

let loose_geometric ?obs ?domains ?clock ?deadline ~n ~ell ~seed () =
  if n < 4 || ell < 1 then invalid_arg "Mc_run.loose_geometric: bad parameters";
  let rounds = ell * logloglog_ceil n in
  let schedule =
    Array.init rounds (fun i -> Probe { base = 0; size = n; count = pow2 (i + 1) })
  in
  execute ?obs ?domains ?clock ?deadline ~n ~namespace:n ~schedule_of_pid:(fun _ -> schedule)
    ~seed ()

let loose_clustered ?obs ?domains ?clock ?deadline ~n ~ell ~seed () =
  if n < 4 || ell < 1 then invalid_arg "Mc_run.loose_clustered: bad parameters";
  let phases = loglog_ceil n in
  let per_phase = 2 * ell * loglog_ceil n in
  let schedule = Array.make phases (Probe { base = 0; size = n; count = per_phase }) in
  let base = ref 0 in
  for j = 1 to phases do
    let size = if j = phases then n - !base else max 1 (n / pow2 j) in
    schedule.(j - 1) <- Probe { base = !base; size; count = per_phase };
    base := !base + size
  done;
  execute ?obs ?domains ?clock ?deadline ~n ~namespace:n ~schedule_of_pid:(fun _ -> schedule)
    ~seed ()

let uniform_probing ?obs ?domains ?clock ?deadline ~n ~m ~seed () =
  if n < 1 || m < n then invalid_arg "Mc_run.uniform_probing: bad parameters";
  let schedule = [| Probe { base = 0; size = m; count = 4 * m }; Sweep { base = 0; size = m } |] in
  execute ?obs ?domains ?clock ?deadline ~n ~namespace:m ~schedule_of_pid:(fun _ -> schedule)
    ~seed ()
