module Stream = Renaming_rng.Stream
module Sample = Renaming_rng.Sample

type result = {
  assignment : Renaming_shm.Assignment.t;
  steps : int array;
  wall_seconds : float;
  domains : int;
}

let max_steps r = Array.fold_left max 0 r.steps

let unnamed_count r =
  Array.length r.assignment.Renaming_shm.Assignment.names
  - Renaming_shm.Assignment.named_count r.assignment

let recommended_domains () = max 1 (Domain.recommended_domain_count () - 1)

(* A process's life is a sequence of segments: random probes into a
   register range, or a deterministic sweep of a range. *)
type segment =
  | Probe of { base : int; size : int; count : int }
  | Sweep of { base : int; size : int }

type proc = {
  pid : int;
  rng : Renaming_rng.Xoshiro.t;
  schedule : segment array;
  mutable seg : int;
  mutable budget : int;  (* probes left in the current Probe segment *)
  mutable cursor : int;  (* position in the current Sweep segment *)
  mutable name : int option;
  mutable steps : int;
  mutable finished : bool;
}

let enter_segment p =
  if p.seg >= Array.length p.schedule then p.finished <- true
  else
    match p.schedule.(p.seg) with
    | Probe { count; _ } -> p.budget <- count
    | Sweep _ -> p.cursor <- 0

(* One shared-memory step (or retirement).  Returns [true] if the
   process is still active afterwards. *)
let rec step regs p =
  if p.finished then false
  else
    match p.schedule.(p.seg) with
    | Probe { base; size; count = _ } ->
      if p.budget = 0 then begin
        p.seg <- p.seg + 1;
        enter_segment p;
        step regs p
      end
      else begin
        p.budget <- p.budget - 1;
        let target = base + Sample.uniform_int p.rng size in
        p.steps <- p.steps + 1;
        if Atomic_tas.test_and_set regs ~idx:target ~pid:p.pid then begin
          p.name <- Some target;
          p.finished <- true;
          false
        end
        else true
      end
    | Sweep { base; size } ->
      if p.cursor >= size then begin
        p.seg <- p.seg + 1;
        enter_segment p;
        step regs p
      end
      else begin
        let target = base + p.cursor in
        p.cursor <- p.cursor + 1;
        p.steps <- p.steps + 1;
        if Atomic_tas.test_and_set regs ~idx:target ~pid:p.pid then begin
          p.name <- Some target;
          p.finished <- true;
          false
        end
        else true
      end

let execute ?domains ~n ~namespace ~schedule_of_pid ~seed () =
  let domains = match domains with Some d -> max 1 d | None -> recommended_domains () in
  let regs = Atomic_tas.create namespace in
  let stream = Stream.create seed in
  let make_proc pid =
    let p =
      {
        pid;
        rng = Stream.fork stream ~index:pid;
        schedule = schedule_of_pid pid;
        seg = 0;
        budget = 0;
        cursor = 0;
        name = None;
        steps = 0;
        finished = false;
      }
    in
    enter_segment p;
    p
  in
  let shards =
    Array.init domains (fun d ->
        let pids = ref [] in
        let pid = ref (n - 1) in
        while !pid >= 0 do
          if !pid mod domains = d then pids := !pid :: !pids;
          decr pid
        done;
        Array.of_list (List.map make_proc !pids))
  in
  let run_shard shard () =
    (* Interleave the shard's processes one step at a time so in-domain
       processes advance concurrently too. *)
    let active = ref (Array.length shard) in
    while !active > 0 do
      active := 0;
      Array.iter (fun p -> if step regs p then incr active) shard
    done
  in
  (* lint: allow wall-clock — measuring real multicore wall time is the point here *)
  let t0 = Unix.gettimeofday () in
  let handles =
    Array.map (fun shard -> Domain.spawn (run_shard shard)) (Array.sub shards 1 (domains - 1))
  in
  run_shard shards.(0) ();
  Array.iter Domain.join handles;
  (* lint: allow wall-clock *)
  let wall_seconds = Unix.gettimeofday () -. t0 in
  let steps = Array.make n 0 in
  let names = Array.make n None in
  Array.iter
    (Array.iter (fun p ->
         steps.(p.pid) <- p.steps;
         names.(p.pid) <- p.name))
    shards;
  {
    assignment = Renaming_shm.Assignment.make ~namespace names;
    steps;
    wall_seconds;
    domains;
  }

let pow2 e =
  let rec go acc e = if e = 0 then acc else go (acc * 2) (e - 1) in
  go 1 e

let log2_ceil n =
  let rec go acc p = if p >= n then acc else go (acc + 1) (p * 2) in
  go 0 1

let loglog_ceil n = max 1 (log2_ceil (max 2 (log2_ceil n)))

let logloglog_ceil n = max 1 (log2_ceil (max 2 (loglog_ceil n)))

let loose_geometric ?domains ~n ~ell ~seed () =
  if n < 4 || ell < 1 then invalid_arg "Mc_run.loose_geometric: bad parameters";
  let rounds = ell * logloglog_ceil n in
  let schedule =
    Array.init rounds (fun i -> Probe { base = 0; size = n; count = pow2 (i + 1) })
  in
  execute ?domains ~n ~namespace:n ~schedule_of_pid:(fun _ -> schedule) ~seed ()

let loose_clustered ?domains ~n ~ell ~seed () =
  if n < 4 || ell < 1 then invalid_arg "Mc_run.loose_clustered: bad parameters";
  let phases = loglog_ceil n in
  let per_phase = 2 * ell * loglog_ceil n in
  let schedule = Array.make phases (Probe { base = 0; size = n; count = per_phase }) in
  let base = ref 0 in
  for j = 1 to phases do
    let size = if j = phases then n - !base else max 1 (n / pow2 j) in
    schedule.(j - 1) <- Probe { base = !base; size; count = per_phase };
    base := !base + size
  done;
  execute ?domains ~n ~namespace:n ~schedule_of_pid:(fun _ -> schedule) ~seed ()

let uniform_probing ?domains ~n ~m ~seed () =
  if n < 1 || m < n then invalid_arg "Mc_run.uniform_probing: bad parameters";
  let schedule = [| Probe { base = 0; size = m; count = 4 * m }; Sweep { base = 0; size = m } |] in
  execute ?domains ~n ~namespace:m ~schedule_of_pid:(fun _ -> schedule) ~seed ()
