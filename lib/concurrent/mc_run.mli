(** Multicore execution of the standard-model algorithms.

    Processes are partitioned over OCaml 5 domains; within a domain the
    per-process step loops are interleaved step-by-step (so in-domain
    processes progress concurrently too), while cross-domain contention
    on the {!Atomic_tas} registers is the real thing.  Step counts use
    the same accounting as the simulator, so the step-complexity tables
    can be cross-checked between backends.

    Per-process randomness is forked from the seed exactly like in the
    simulator ([Stream.fork ~index:pid]); scheduling nondeterminism is
    genuine, so only distribution-level quantities are comparable across
    backends, not individual runs.

    Time is injected as a {!Renaming_clock.Clock.t} capability: with the
    default {!Renaming_clock.Clock.none} the run measures no wall time
    ([wall_seconds = 0.]) and never expires; the [bin/] edge passes a
    real clock when timing matters.  Passing [?deadline] (which requires
    a ticking clock) arms a watchdog: instead of hanging forever, a
    livelocked run is cancelled cooperatively and reported as {!Stalled}
    with the per-domain step counts frozen at the timeout. *)

type result = {
  assignment : Renaming_shm.Assignment.t;
  steps : int array;  (** per process *)
  wall_seconds : float;
  domains : int;
}

exception
  Stalled of {
    deadline : float;  (** the configured deadline, in clock units *)
    elapsed : float;  (** clock units actually elapsed at cancellation *)
    per_domain_steps : int array;  (** total steps per domain at timeout *)
    finished_domains : int;  (** domains that had already finished *)
    domains : int;
  }
(** Raised by {!execute} (and the wrappers) when a [?deadline] expires
    before every domain finishes.  The workers are joined before the
    exception is raised, so no domain is leaked. *)

val stalled_to_string : exn -> string
(** Render a {!Stalled} diagnostic; raises [Invalid_argument] on any
    other exception.  Also installed as a [Printexc] printer. *)

val max_steps : result -> int
val unnamed_count : result -> int

(** A process's life is a sequence of segments: [Probe] makes [count]
    uniform random TAS probes into [\[base, base+size)]; [Sweep] walks
    the range deterministically.  Exposed so tests can build adversarial
    schedules (e.g. a probe loop on a taken register) directly. *)
type segment =
  | Probe of { base : int; size : int; count : int }
  | Sweep of { base : int; size : int }

val execute :
  ?obs:Renaming_obs.Obs.t ->
  ?domains:int ->
  ?clock:Renaming_clock.Clock.t ->
  ?deadline:float ->
  n:int ->
  namespace:int ->
  schedule_of_pid:(int -> segment array) ->
  seed:int64 ->
  unit ->
  result
(** Run [n] processes with the given per-pid segment schedules over the
    domain pool.  Raises [Invalid_argument] if [?deadline] is given
    without a ticking clock (it could never expire), and {!Stalled} if
    the deadline passes before all domains finish.

    With [obs], a completed run records — strictly after the worker
    domains are joined, since the registry is process-local state —
    the [multicore/steps] histogram (per-process step counts), the
    [multicore/steps_total] and [multicore/runs] counters, and
    [multicore/wall_seconds] / [multicore/domains] gauges.  A
    {!Stalled} run records nothing. *)

val loose_geometric :
  ?obs:Renaming_obs.Obs.t ->
  ?domains:int ->
  ?clock:Renaming_clock.Clock.t ->
  ?deadline:float ->
  n:int ->
  ell:int ->
  seed:int64 ->
  unit ->
  result
(** Lemma 6 on real domains: namespace [n], geometric rounds. *)

val loose_clustered :
  ?obs:Renaming_obs.Obs.t ->
  ?domains:int ->
  ?clock:Renaming_clock.Clock.t ->
  ?deadline:float ->
  n:int ->
  ell:int ->
  seed:int64 ->
  unit ->
  result
(** Lemma 8 on real domains (with the tail-absorbing last cluster). *)

val uniform_probing :
  ?obs:Renaming_obs.Obs.t ->
  ?domains:int ->
  ?clock:Renaming_clock.Clock.t ->
  ?deadline:float ->
  n:int ->
  m:int ->
  seed:int64 ->
  unit ->
  result
(** The naive baseline; probes until won (deterministic sweep after
    [4m] probes, as in the simulator backend). *)

val recommended_domains : unit -> int
