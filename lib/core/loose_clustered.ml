module Program = Renaming_sched.Program
module Executor = Renaming_sched.Executor
module Memory = Renaming_sched.Memory
module Adversary = Renaming_sched.Adversary
module Retry = Renaming_faults.Retry
module Stream = Renaming_rng.Stream
module Sample = Renaming_rng.Sample
module Obs = Renaming_obs.Obs
module Metrics = Renaming_obs.Metrics
open Program.Syntax

type config = { n : int; ell : int }

let validate { n; ell } =
  if n < 4 then invalid_arg "Loose_clustered: n must be >= 4";
  if ell < 1 then invalid_arg "Loose_clustered: ell must be >= 1"

let phases cfg =
  validate cfg;
  Mathx.loglog2_ceil cfg.n

let steps_per_phase cfg = 2 * cfg.ell * Mathx.loglog2_ceil cfg.n

let step_budget cfg = phases cfg * steps_per_phase cfg

let cluster_bounds cfg =
  let p = phases cfg in
  let bounds = Array.make p (0, 0) in
  let base = ref 0 in
  for j = 1 to p do
    (* Literally, cluster j holds n/2^j registers; summed over all
       phases that covers only n - n/2^p ≈ n - n/log n registers, which
       would put a structural floor of n/log n on the unnamed count —
       above Lemma 8's claimed n/(log n)^{2ℓ}.  Following the evident
       intent (DESIGN.md §3), the last cluster absorbs the tail so the
       clusters jointly cover the whole namespace. *)
    let size = if j = p then cfg.n - !base else max 1 (cfg.n / Mathx.pow_int 2 j) in
    bounds.(j - 1) <- (!base, size);
    base := !base + size
  done;
  assert (!base = cfg.n);
  bounds

let predicted_unnamed cfg =
  let logn = Mathx.log2f (float_of_int cfg.n) in
  float_of_int cfg.n /. (logn ** float_of_int (2 * cfg.ell))

type instrumentation = { named_in_phase : int array }

let create_instrumentation ?obs cfg =
  let instr = { named_in_phase = Array.make (phases cfg) 0 } in
  (match obs with
  | None -> ()
  | Some o -> Obs.vector o "loose-clustered/named_in_phase" instr.named_in_phase);
  instr

let program ?instr ?obs cfg ~rng =
  let bounds = cluster_bounds cfg in
  let per_phase = steps_per_phase cfg in
  let record j =
    match instr with
    | Some s -> s.named_in_phase.(j) <- s.named_in_phase.(j) + 1
    | None -> ()
  in
  let trace f = match obs with Some s -> f s | None -> () in
  let probes, wins =
    match obs with
    | None -> (None, None)
    | Some s ->
      let o = Obs.scoped_obs s in
      (Some (Obs.counter o "loose-clustered/probes"), Some (Obs.counter o "loose-clustered/wins"))
  in
  let bump = function Some c -> Metrics.incr c | None -> () in
  let rec phase j =
    if j >= Array.length bounds then begin
      trace (fun s -> Obs.s_instant s "give-up");
      Program.return None
    end
    else begin
      trace (fun s -> Obs.s_begin s ~args:[ ("phase", j) ] "phase");
      step j per_phase
    end
  and step j remaining =
    if remaining = 0 then begin
      trace (fun s -> Obs.s_end s "phase");
      phase (j + 1)
    end
    else begin
      let base, size = bounds.(j) in
      let target = base + Sample.uniform_int rng size in
      bump probes;
      trace (fun s -> Obs.s_instant s ~args:[ ("target", target) ] "probe");
      let* won = Retry.tas_name target in
      if won then begin
        record j;
        bump wins;
        trace (fun s ->
            Obs.s_instant s ~args:[ ("phase", j); ("name", target) ] "win";
            Obs.s_end s "phase");
        Program.return (Some target)
      end
      else step j (remaining - 1)
    end
  in
  phase 0

let instance ?instr ?obs cfg ~stream =
  validate cfg;
  let memory = Memory.create ~namespace:cfg.n () in
  let programs =
    Array.init cfg.n (fun pid ->
        let obs = Option.map (fun o -> Obs.scoped o ~pid) obs in
        program ?instr ?obs cfg ~rng:(Stream.fork stream ~index:pid))
  in
  { Executor.memory; programs; label = "loose-clustered" }

let run ?instr ?obs ?adversary cfg ~seed =
  let stream = Stream.create seed in
  let inst = instance ?instr ?obs cfg ~stream in
  let adversary = match adversary with Some a -> a | None -> Adversary.round_robin () in
  Executor.run ?obs ~adversary inst
