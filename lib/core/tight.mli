(** Tight renaming using (log n)-registers — the algorithm of Section III.

    Every process walks the round clusters: in round [i] it picks one
    uniform TAS bit of one uniform block of cluster [C_i], submits the
    request to that block's counting device, and awaits the verdict.  A
    confirmed winner scans the block's [τ = log n] name slots with plain
    TAS operations and must win one (at most τ winners per block).  A
    loser moves to round [i+1].  Processes that exhaust all rounds scan
    the reserve names directly; as an unconditional safety net they then
    scan the cluster-covered names too (relevant only under crashes,
    which can burn device capacity without consuming a name).

    Theorem 5's claims — namespace exactly [n], step complexity
    [O(log n)] w.h.p. — hold under the [Mass_conserving] schedule; the
    [Paper_literal] schedule exhibits the coverage gap documented in
    DESIGN.md §3 and is kept for the T1b experiment. *)

type instrumentation = {
  requests_per_tau : int array;  (** device requests received, per τ-register *)
  wins_per_round : int array;  (** confirmed device-bit wins, per round (0-based) *)
  losses_per_round : int array;  (** device-bit losses, per round *)
  mutable reserve_entries : int;  (** processes that fell through to the reserve *)
  mutable safety_net_entries : int;  (** processes that needed the full fallback scan *)
}

val create_instrumentation : ?obs:Renaming_obs.Obs.t -> Params.t -> instrumentation
(** With [obs], the private counters are additionally registered on the
    shared metrics registry ([tight/requests_per_tau],
    [tight/wins_per_round], [tight/losses_per_round] as read-through
    vectors; [tight/reserve_entries], [tight/safety_net_entries] as
    gauges), so metrics snapshots include them. *)

val instance :
  ?rule:Renaming_device.Counting_device.discard_rule ->
  ?instr:instrumentation ->
  ?obs:Renaming_obs.Obs.t ->
  params:Params.t ->
  stream:Renaming_rng.Stream.t ->
  unit ->
  Renaming_sched.Executor.instance
(** Builds memory (namespace [n], one τ-register per block) and one
    program per process.  Process [pid]'s coin flips come from
    [Stream.fork stream ~index:pid], so runs are replayable.

    With [obs], programs record [tight/probes]/[wins]/[losses] counters
    and per-pid round/probe/win/lose/reserve-scan/safety-net trace
    events; without it each recording site costs one branch. *)

val run :
  ?rule:Renaming_device.Counting_device.discard_rule ->
  ?instr:instrumentation ->
  ?obs:Renaming_obs.Obs.t ->
  ?adversary:Renaming_sched.Adversary.t ->
  params:Params.t ->
  seed:int64 ->
  unit ->
  Renaming_sched.Report.t
(** Convenience wrapper: build an instance from [seed] and execute it
    (default adversary: round-robin).  [obs] is threaded through both
    the programs and the executor. *)
