(** Full loose renaming — Corollaries 7 and 9.

    Runs an almost-tight first phase (Lemma 6 or Lemma 8) on the
    namespace [0, n); processes still unnamed afterwards move to the
    reserved extension [n, n+ext) and finish there with the backup
    algorithm.  Extension sizes follow the corollaries:

    - {!Geometric}: [ext = 2n/(log log n)^ℓ] (Corollary 7),
    - {!Clustered}: [ext = 2n/(log n)^ℓ] (Corollary 9).

    Every surviving process obtains a name: the extension always offers
    at least as many names as Lemma 6/8 leaves unnamed w.h.p., and the
    backup's final sweep is deterministic.  Should an adversarial run
    exceed the extension's capacity (a low-probability event the
    corollaries bound), stragglers sweep the main namespace as a safety
    net — with [m > n] a free name always exists. *)

type variant =
  | Geometric of { ell : int }  (** Corollary 7 on top of Lemma 6 *)
  | Clustered of { ell : int }  (** Corollary 9 on top of Lemma 8 *)

type config = { n : int; variant : variant }

val extension_size : config -> int

val namespace : config -> int
(** [n + extension_size]. *)

val predicted_steps : config -> float
(** The corollary's step bound: [O((log log n)^ℓ)] respectively
    [O((log log n)^2)], with explicit constants. *)

val instance :
  ?obs:Renaming_obs.Obs.t ->
  config ->
  stream:Renaming_rng.Stream.t ->
  Renaming_sched.Executor.instance
(** With [obs], the first-phase sub-programs record their own counters
    and spans, and the extension phase is wrapped in a per-pid
    ["backup"] span (with a ["main-sweep"] instant on the rare full
    fallback). *)

val run :
  ?obs:Renaming_obs.Obs.t ->
  ?adversary:Renaming_sched.Adversary.t ->
  config ->
  seed:int64 ->
  Renaming_sched.Report.t
