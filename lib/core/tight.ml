module Program = Renaming_sched.Program
module Executor = Renaming_sched.Executor
module Memory = Renaming_sched.Memory
module Adversary = Renaming_sched.Adversary
module Tau_register = Renaming_device.Tau_register
module Retry = Renaming_faults.Retry
module Stream = Renaming_rng.Stream
module Sample = Renaming_rng.Sample
module Obs = Renaming_obs.Obs
module Metrics = Renaming_obs.Metrics
open Program.Syntax

type instrumentation = {
  requests_per_tau : int array;
  wins_per_round : int array;
  losses_per_round : int array;
  mutable reserve_entries : int;
  mutable safety_net_entries : int;
}

let create_instrumentation ?obs (params : Params.t) =
  let instr =
    {
      requests_per_tau = Array.make params.Params.total_taus 0;
      wins_per_round = Array.make (Params.round_count params) 0;
      losses_per_round = Array.make (Params.round_count params) 0;
      reserve_entries = 0;
      safety_net_entries = 0;
    }
  in
  (* The private counters double as registry entries: vectors read the
     arrays in place, gauges read the scalars, so a metrics snapshot
     sees whatever the instrumented run has recorded so far. *)
  (match obs with
  | None -> ()
  | Some o ->
    Obs.vector o "tight/requests_per_tau" instr.requests_per_tau;
    Obs.vector o "tight/wins_per_round" instr.wins_per_round;
    Obs.vector o "tight/losses_per_round" instr.losses_per_round;
    Obs.gauge o "tight/reserve_entries" (fun () -> float_of_int instr.reserve_entries);
    Obs.gauge o "tight/safety_net_entries" (fun () -> float_of_int instr.safety_net_entries));
  instr

let build_taus ?rule (params : Params.t) =
  Array.map
    (fun (name_base, tau) ->
      Tau_register.create ?rule ~base:name_base ~tau ~width:params.Params.width ())
    (Params.tau_geometry params)

let program ?instr ?obs (params : Params.t) ~rng =
  let nrounds = Params.round_count params in
  let record f = match instr with Some i -> f i | None -> () in
  let trace f = match obs with Some s -> f s | None -> () in
  let probes, wins, losses =
    match obs with
    | None -> (None, None, None)
    | Some s ->
      let o = Obs.scoped_obs s in
      (* handles resolved once, at program construction *)
      ( Some (Obs.counter o "tight/probes"),
        Some (Obs.counter o "tight/wins"),
        Some (Obs.counter o "tight/losses") )
  in
  let bump = function Some c -> Metrics.incr c | None -> () in
  let rec rounds i =
    if i >= nrounds then reserve_scan ()
    else begin
      let round = params.Params.rounds.(i) in
      let tau_id = round.Params.first_tau + Sample.uniform_int rng round.Params.blocks in
      let bit = Sample.uniform_int rng params.Params.width in
      record (fun s -> s.requests_per_tau.(tau_id) <- s.requests_per_tau.(tau_id) + 1);
      bump probes;
      trace (fun s ->
          Obs.s_begin s ~args:[ ("round", i) ] "round";
          Obs.s_instant s ~args:[ ("tau", tau_id); ("bit", bit) ] "probe");
      let* () = Program.tau_submit ~reg:tau_id ~bit in
      let* won = Program.tau_await tau_id in
      if won then begin
        record (fun s -> s.wins_per_round.(i) <- s.wins_per_round.(i) + 1);
        bump wins;
        trace (fun s ->
            Obs.s_instant s ~args:[ ("round", i) ] "win";
            Obs.s_end s "round");
        let* name =
          Retry.scan_names ~first:(Params.block_of_tau params tau_id).Params.name_base
            ~count:params.Params.tau ()
        in
        match name with
        | Some nm -> Program.return (Some nm)
        | None ->
          (* Impossible without crashes: at most τ confirmed winners
             compete for exactly τ slots.  Stay safe and move on. *)
          rounds (i + 1)
      end
      else begin
        record (fun s -> s.losses_per_round.(i) <- s.losses_per_round.(i) + 1);
        bump losses;
        trace (fun s ->
            Obs.s_instant s ~args:[ ("round", i) ] "lose";
            Obs.s_end s "round");
        rounds (i + 1)
      end
    end
  and reserve_scan () =
    record (fun s -> s.reserve_entries <- s.reserve_entries + 1);
    trace (fun s -> Obs.s_begin s "reserve-scan");
    let* name =
      Retry.scan_names ~first:params.Params.reserve_base ~count:(Params.reserve_size params) ()
    in
    trace (fun s -> Obs.s_end s "reserve-scan");
    match name with
    | Some nm -> Program.return (Some nm)
    | None -> safety_net ()
  and safety_net () =
    (* Names burnt by crashed device winners live below reserve_base and
       are still free TAS registers; a full scan finds them. *)
    record (fun s -> s.safety_net_entries <- s.safety_net_entries + 1);
    trace (fun s -> Obs.s_begin s "safety-net");
    let* name = Retry.scan_names ~first:0 ~count:params.Params.reserve_base () in
    trace (fun s -> Obs.s_end s "safety-net");
    Program.return name
  in
  rounds 0

let instance ?rule ?instr ?obs ~params ~stream () =
  let n = params.Params.n in
  let taus = build_taus ?rule params in
  let memory = Memory.create ~namespace:n ~taus () in
  let programs =
    Array.init n (fun pid ->
        let rng = Stream.fork stream ~index:pid in
        let obs = Option.map (fun o -> Obs.scoped o ~pid) obs in
        program ?instr ?obs params ~rng)
  in
  { Executor.memory; programs; label = "tight" }

let run ?rule ?instr ?obs ?adversary ~params ~seed () =
  let stream = Stream.create seed in
  let inst = instance ?rule ?instr ?obs ~params ~stream () in
  let adversary =
    match adversary with Some a -> a | None -> Adversary.round_robin ()
  in
  Executor.run ?obs ~adversary inst
