module Program = Renaming_sched.Program
module Executor = Renaming_sched.Executor
module Memory = Renaming_sched.Memory
module Adversary = Renaming_sched.Adversary
module Retry = Renaming_faults.Retry
module Stream = Renaming_rng.Stream
module Sample = Renaming_rng.Sample
open Program.Syntax

type config = { n : int; ell : int }

let validate { n; ell } =
  if n < 4 then invalid_arg "Loose_geometric: n must be >= 4";
  if ell < 1 then invalid_arg "Loose_geometric: ell must be >= 1"

let rounds cfg =
  validate cfg;
  cfg.ell * Mathx.logloglog2_ceil cfg.n

let step_budget cfg = Mathx.pow_int 2 (rounds cfg + 1) - 2

let predicted_unnamed cfg =
  let loglog = Renaming_stats.Fit.eval_shape Renaming_stats.Fit.Log_log (float_of_int cfg.n) in
  2. *. float_of_int cfg.n /. (loglog ** float_of_int cfg.ell)

type instrumentation = { named_in_round : int array }

let create_instrumentation cfg = { named_in_round = Array.make (rounds cfg) 0 }

let program ?instr cfg ~rng =
  let total_rounds = rounds cfg in
  let record i = match instr with
    | Some s -> s.named_in_round.(i) <- s.named_in_round.(i) + 1
    | None -> ()
  in
  let rec round i =
    if i > total_rounds then Program.return None else step i (Mathx.pow_int 2 i)
  and step i remaining =
    if remaining = 0 then round (i + 1)
    else
      let target = Sample.uniform_int rng cfg.n in
      let* won = Retry.tas_name target in
      if won then begin
        record (i - 1);
        Program.return (Some target)
      end
      else step i (remaining - 1)
  in
  round 1

let instance ?instr cfg ~stream =
  validate cfg;
  let memory = Memory.create ~namespace:cfg.n () in
  let programs =
    Array.init cfg.n (fun pid -> program ?instr cfg ~rng:(Stream.fork stream ~index:pid))
  in
  { Executor.memory; programs; label = "loose-geometric" }

let run ?instr ?adversary cfg ~seed =
  let stream = Stream.create seed in
  let inst = instance ?instr cfg ~stream in
  let adversary = match adversary with Some a -> a | None -> Adversary.round_robin () in
  Executor.run ~adversary inst
