module Program = Renaming_sched.Program
module Executor = Renaming_sched.Executor
module Memory = Renaming_sched.Memory
module Adversary = Renaming_sched.Adversary
module Retry = Renaming_faults.Retry
module Stream = Renaming_rng.Stream
module Sample = Renaming_rng.Sample
module Obs = Renaming_obs.Obs
module Metrics = Renaming_obs.Metrics
open Program.Syntax

type config = { n : int; ell : int }

let validate { n; ell } =
  if n < 4 then invalid_arg "Loose_geometric: n must be >= 4";
  if ell < 1 then invalid_arg "Loose_geometric: ell must be >= 1"

let rounds cfg =
  validate cfg;
  cfg.ell * Mathx.logloglog2_ceil cfg.n

let step_budget cfg = Mathx.pow_int 2 (rounds cfg + 1) - 2

let predicted_unnamed cfg =
  let loglog = Renaming_stats.Fit.eval_shape Renaming_stats.Fit.Log_log (float_of_int cfg.n) in
  2. *. float_of_int cfg.n /. (loglog ** float_of_int cfg.ell)

type instrumentation = { named_in_round : int array }

let create_instrumentation ?obs cfg =
  let instr = { named_in_round = Array.make (rounds cfg) 0 } in
  (match obs with
  | None -> ()
  | Some o -> Obs.vector o "loose-geometric/named_in_round" instr.named_in_round);
  instr

let program ?instr ?obs cfg ~rng =
  let total_rounds = rounds cfg in
  let record i = match instr with
    | Some s -> s.named_in_round.(i) <- s.named_in_round.(i) + 1
    | None -> ()
  in
  let trace f = match obs with Some s -> f s | None -> () in
  let probes, wins =
    match obs with
    | None -> (None, None)
    | Some s ->
      let o = Obs.scoped_obs s in
      (Some (Obs.counter o "loose-geometric/probes"), Some (Obs.counter o "loose-geometric/wins"))
  in
  let bump = function Some c -> Metrics.incr c | None -> () in
  let rec round i =
    if i > total_rounds then begin
      trace (fun s -> Obs.s_instant s "give-up");
      Program.return None
    end
    else begin
      trace (fun s -> Obs.s_begin s ~args:[ ("round", i) ] "round");
      step i (Mathx.pow_int 2 i)
    end
  and step i remaining =
    if remaining = 0 then begin
      trace (fun s -> Obs.s_end s "round");
      round (i + 1)
    end
    else begin
      let target = Sample.uniform_int rng cfg.n in
      bump probes;
      trace (fun s -> Obs.s_instant s ~args:[ ("target", target) ] "probe");
      let* won = Retry.tas_name target in
      if won then begin
        record (i - 1);
        bump wins;
        trace (fun s ->
            Obs.s_instant s ~args:[ ("round", i); ("name", target) ] "win";
            Obs.s_end s "round");
        Program.return (Some target)
      end
      else step i (remaining - 1)
    end
  in
  round 1

let instance ?instr ?obs cfg ~stream =
  validate cfg;
  let memory = Memory.create ~namespace:cfg.n () in
  let programs =
    Array.init cfg.n (fun pid ->
        let obs = Option.map (fun o -> Obs.scoped o ~pid) obs in
        program ?instr ?obs cfg ~rng:(Stream.fork stream ~index:pid))
  in
  { Executor.memory; programs; label = "loose-geometric" }

let run ?instr ?obs ?adversary cfg ~seed =
  let stream = Stream.create seed in
  let inst = instance ?instr ?obs cfg ~stream in
  let adversary = match adversary with Some a -> a | None -> Adversary.round_robin () in
  Executor.run ?obs ~adversary inst
