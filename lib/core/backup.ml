module Program = Renaming_sched.Program
module Retry = Renaming_faults.Retry
module Sample = Renaming_rng.Sample
open Program.Syntax

let batch_cap size = 4 * size

let max_random_steps ~size =
  let cap = batch_cap size in
  let rec go total batch = if batch > cap then total else go (total + batch) (2 * batch) in
  go 0 1

let program ~base ~size ~rng =
  if size < 1 then invalid_arg "Backup.program: empty namespace slice";
  let cap = batch_cap size in
  let rec round batch =
    if batch > cap then
      (* Deterministic sweep: termination no matter what the adversary
         did to the random phase. *)
      Retry.scan_names ~first:base ~count:size ()
    else step batch batch
  and step batch remaining =
    if remaining = 0 then round (2 * batch)
    else
      let target = base + Sample.uniform_int rng size in
      let* won = Retry.tas_name target in
      if won then Program.return (Some target) else step batch (remaining - 1)
  in
  round 1
