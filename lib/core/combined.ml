module Program = Renaming_sched.Program
module Executor = Renaming_sched.Executor
module Memory = Renaming_sched.Memory
module Adversary = Renaming_sched.Adversary
module Retry = Renaming_faults.Retry
module Stream = Renaming_rng.Stream
module Obs = Renaming_obs.Obs
open Program.Syntax

type variant = Geometric of { ell : int } | Clustered of { ell : int }

type config = { n : int; variant : variant }

let extension_size cfg =
  let nf = float_of_int cfg.n in
  let raw =
    match cfg.variant with
    | Geometric { ell } ->
      let loglog = float_of_int (Mathx.loglog2_ceil cfg.n) in
      2. *. nf /. (loglog ** float_of_int ell)
    | Clustered { ell } ->
      let logn = Mathx.log2f nf in
      2. *. nf /. (logn ** float_of_int ell)
  in
  max 2 (int_of_float (ceil raw))

let namespace cfg = cfg.n + extension_size cfg

let predicted_steps cfg =
  match cfg.variant with
  | Geometric { ell } ->
    float_of_int (Loose_geometric.step_budget { Loose_geometric.n = cfg.n; ell })
    +. float_of_int (Mathx.loglog2_ceil cfg.n * 4)
  | Clustered { ell } ->
    float_of_int (Loose_clustered.step_budget { Loose_clustered.n = cfg.n; ell })
    +. float_of_int (Mathx.loglog2_ceil cfg.n * 4)

let program ?obs cfg ~rng =
  let ext = extension_size cfg in
  let trace f = match obs with Some s -> f s | None -> () in
  let first_phase =
    (* The sub-programs inherit the same scoped view, so their round /
       phase spans and counters land on the shared registry. *)
    match cfg.variant with
    | Geometric { ell } ->
      Loose_geometric.program ?obs { Loose_geometric.n = cfg.n; ell } ~rng
    | Clustered { ell } ->
      Loose_clustered.program ?obs { Loose_clustered.n = cfg.n; ell } ~rng
  in
  let* name = first_phase in
  match name with
  | Some nm -> Program.return (Some nm)
  | None ->
    trace (fun s -> Obs.s_begin s ~args:[ ("size", ext) ] "backup");
    let* name = Backup.program ~base:cfg.n ~size:ext ~rng in
    trace (fun s -> Obs.s_end s "backup");
    (match name with
    | Some nm -> Program.return (Some nm)
    | None ->
      (* Extension exhausted (possible only when the first phase left
         more than [ext] unnamed — the event the corollary bounds).
         With m > n a free main-namespace register must exist. *)
      trace (fun s -> Obs.s_instant s "main-sweep");
      Retry.scan_names ~first:0 ~count:cfg.n ())

let instance ?obs cfg ~stream =
  let memory = Memory.create ~namespace:(namespace cfg) () in
  let programs =
    Array.init cfg.n (fun pid ->
        let obs = Option.map (fun o -> Obs.scoped o ~pid) obs in
        program ?obs cfg ~rng:(Stream.fork stream ~index:pid))
  in
  let label =
    match cfg.variant with
    | Geometric { ell } -> Printf.sprintf "combined-geometric(l=%d)" ell
    | Clustered { ell } -> Printf.sprintf "combined-clustered(l=%d)" ell
  in
  { Executor.memory; programs; label }

let run ?obs ?adversary cfg ~seed =
  let stream = Stream.create seed in
  let inst = instance ?obs cfg ~stream in
  let adversary = match adversary with Some a -> a | None -> Adversary.round_robin () in
  Executor.run ?obs ~adversary inst
