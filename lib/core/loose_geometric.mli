(** Almost-tight loose renaming by geometric rounds — Lemma 6.

    With [n] TAS registers and [n] processes, the algorithm runs
    [ℓ·log log log n] rounds; round [i] consists of [2^i] steps, and in
    every step each still-unnamed process test-and-sets a uniformly
    random register (becoming inactive on a win).  Lemma 6: w.h.p. at
    most [2n/(log log n)^ℓ] processes remain unnamed, after a total of
    at most [(log log n)^ℓ] steps (up to the constant from the geometric
    sum). *)

type config = { n : int; ell : int }

val rounds : config -> int
(** [ℓ·⌈log log log n⌉]. *)

val step_budget : config -> int
(** Total steps a process can spend: [Σ_{i=1..rounds} 2^i]. *)

val predicted_unnamed : config -> float
(** Lemma 6's bound [2n/(log log n)^ℓ]. *)

type instrumentation = {
  named_in_round : int array;  (** wins per round, 1-based round index at [i-1] *)
}

val create_instrumentation : ?obs:Renaming_obs.Obs.t -> config -> instrumentation
(** With [obs], [named_in_round] is additionally registered as the
    read-through vector [loose-geometric/named_in_round]. *)

val program :
  ?instr:instrumentation ->
  ?obs:Renaming_obs.Obs.scoped ->
  config ->
  rng:Renaming_rng.Xoshiro.t ->
  int option Renaming_sched.Program.t
(** One process's program; returns the name won or [None] after
    exhausting the step budget.  Exposed so {!Combined} can sequence it
    with the backup phase.  [obs] is the per-pid scoped view (the
    caller fixes the pid); it records [loose-geometric/probes]/[wins]
    counters plus round spans and probe/win/give-up trace events. *)

val instance :
  ?instr:instrumentation ->
  ?obs:Renaming_obs.Obs.t ->
  config ->
  stream:Renaming_rng.Stream.t ->
  Renaming_sched.Executor.instance

val run :
  ?instr:instrumentation ->
  ?obs:Renaming_obs.Obs.t ->
  ?adversary:Renaming_sched.Adversary.t ->
  config ->
  seed:int64 ->
  Renaming_sched.Report.t
