(** Almost-tight loose renaming by register clusters — Lemma 8.

    The [n] registers are split into clusters; cluster [j]
    ([1 ≤ j ≤ log log n]) holds [n/2^j] registers.  The algorithm runs
    one phase per cluster, each of [2ℓ·log log n] steps; in every step
    each unnamed process test-and-sets a uniform register *of the
    current cluster*.  Lemma 8: w.h.p. at most [n/(log n)^{2ℓ}]
    processes remain unnamed, with step complexity [2ℓ·(log log n)²].

    Taken literally, the clusters cover only [n − n/2^{log log n} ≈
    n − n/log n] registers, which would floor the unnamed count at
    [n/log n] — above the lemma's claim.  As documented in DESIGN.md §3
    we follow the evident intent: the last cluster absorbs the tail, so
    the clusters jointly cover the whole namespace. *)

type config = { n : int; ell : int }

val phases : config -> int
(** [⌈log log n⌉]. *)

val steps_per_phase : config -> int
(** [2ℓ·⌈log log n⌉]. *)

val step_budget : config -> int

val cluster_bounds : config -> (int * int) array
(** Per phase (0-based), the [(base, size)] register range of its
    cluster. *)

val predicted_unnamed : config -> float
(** Lemma 8's expectation [n/(log n)^{2ℓ}]. *)

type instrumentation = { named_in_phase : int array }

val create_instrumentation : ?obs:Renaming_obs.Obs.t -> config -> instrumentation
(** With [obs], [named_in_phase] is additionally registered as the
    read-through vector [loose-clustered/named_in_phase]. *)

val program :
  ?instr:instrumentation ->
  ?obs:Renaming_obs.Obs.scoped ->
  config ->
  rng:Renaming_rng.Xoshiro.t ->
  int option Renaming_sched.Program.t
(** [obs] is the per-pid scoped view; it records
    [loose-clustered/probes]/[wins] counters plus phase spans and
    probe/win/give-up trace events. *)

val instance :
  ?instr:instrumentation ->
  ?obs:Renaming_obs.Obs.t ->
  config ->
  stream:Renaming_rng.Stream.t ->
  Renaming_sched.Executor.instance

val run :
  ?instr:instrumentation ->
  ?obs:Renaming_obs.Obs.t ->
  ?adversary:Renaming_sched.Adversary.t ->
  config ->
  seed:int64 ->
  Renaming_sched.Report.t
