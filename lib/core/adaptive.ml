module Program = Renaming_sched.Program
module Executor = Renaming_sched.Executor
module Memory = Renaming_sched.Memory
module Adversary = Renaming_sched.Adversary
module Retry = Renaming_faults.Retry
module Stream = Renaming_rng.Stream
module Sample = Renaming_rng.Sample
open Program.Syntax

type config = { k : int; ell : int; epsilon : float }

let make_config ?(ell = 2) ?(epsilon = 1.0) ~k () =
  if k < 1 then invalid_arg "Adaptive.make_config: k must be >= 1";
  if ell < 1 then invalid_arg "Adaptive.make_config: ell must be >= 1";
  if epsilon <= 0. then invalid_arg "Adaptive.make_config: epsilon must be positive";
  { k; ell; epsilon }

let levels cfg = Mathx.log2_ceil (max 2 cfg.k) + 3

let block_size cfg j =
  let est = Mathx.pow_int 2 j in
  max 2 (int_of_float (ceil ((1. +. cfg.epsilon) *. float_of_int est)))

let block_bounds cfg =
  let l = levels cfg in
  let bounds = Array.make l (0, 0) in
  let base = ref 0 in
  for j = 0 to l - 1 do
    let size = block_size cfg j in
    bounds.(j) <- (!base, size);
    base := !base + size
  done;
  bounds

let namespace cfg =
  let bounds = block_bounds cfg in
  let base, size = bounds.(Array.length bounds - 1) in
  base + size

let predicted_levels_used cfg = Mathx.log2_ceil (max 2 cfg.k) + 1

(* Budget for one level: the Lemma 6 step budget under the estimate
   2^j, i.e. sum of 2^i over ell * logloglog(2^j) rounds. *)
let level_budget cfg j =
  let est = max 4 (Mathx.pow_int 2 j) in
  let rounds = cfg.ell * Mathx.logloglog2_ceil est in
  Mathx.pow_int 2 (rounds + 1) - 2

let program cfg ~rng =
  let bounds = block_bounds cfg in
  let last = Array.length bounds - 1 in
  let rec level j =
    if j > last then
      (* Unconditional termination: sweep the final (oversized) block,
         then the whole namespace. *)
      let base, size = bounds.(last) in
      let* name = Retry.scan_names ~first:base ~count:size () in
      (match name with
      | Some nm -> Program.return (Some nm)
      | None -> Retry.scan_names ~first:0 ~count:base ())
    else begin
      let base, size = bounds.(j) in
      let budget = level_budget cfg j in
      let rec probe remaining =
        if remaining = 0 then level (j + 1)
        else
          let target = base + Sample.uniform_int rng size in
          let* won = Retry.tas_name target in
          if won then Program.return (Some target) else probe (remaining - 1)
      in
      probe budget
    end
  in
  level 0

let instance cfg ~stream =
  let memory = Memory.create ~namespace:(namespace cfg) () in
  let programs =
    Array.init cfg.k (fun pid -> program cfg ~rng:(Stream.fork stream ~index:pid))
  in
  { Executor.memory; programs; label = Printf.sprintf "adaptive(k=%d)" cfg.k }

let run ?adversary cfg ~seed =
  let stream = Stream.create seed in
  let inst = instance cfg ~stream in
  let adversary = match adversary with Some a -> a | None -> Adversary.round_robin () in
  Executor.run ~adversary inst

let max_name_used report =
  Array.fold_left
    (fun acc -> function Some name -> max acc name | None -> acc)
    (-1)
    report.Renaming_sched.Report.assignment.Renaming_shm.Assignment.names
