(* The telemetry capability: a metrics registry, a bounded event ring
   and a logical clock, passed explicitly (as [Obs.t option]) through
   the algorithms, executors and campaign runners.

   The disabled mode IS the [None] case: every instrumentation site is
   a single [match obs with None -> () | Some o -> ...] branch, so a
   run without a capability pays one predictable branch per recording
   site and allocates nothing.  bench/main.ml measures that bound and
   records it in results/bench.json. *)

type t = {
  metrics : Metrics.t;
  ring : Ring.t;
  mutable now : unit -> int;
}

let create ?ring_capacity () =
  { metrics = Metrics.create (); ring = Ring.create ?capacity:ring_capacity (); now = (fun () -> 0) }

let metrics t = t.metrics
let ring t = t.ring

(* The executor installs its tick counter here at run start, so events
   recorded from inside program continuations carry executor time. *)
let set_now t f = t.now <- f
let now t = t.now ()

let counter t name = Metrics.counter t.metrics name
let histogram ?bounds t name = Metrics.histogram ?bounds t.metrics name
let gauge t name f = Metrics.gauge t.metrics name f
let vector t name arr = Metrics.vector t.metrics name arr

let event t ~pid ~kind ?(args = []) name =
  Ring.add t.ring
    { Ring.ev_ts = t.now (); ev_pid = pid; ev_kind = kind; ev_name = name; ev_args = args }

let instant t ~pid ?args name = event t ~pid ~kind:Ring.Instant ?args name
let span_begin t ~pid ?args name = event t ~pid ~kind:Ring.Span_begin ?args name
let span_end t ~pid ?args name = event t ~pid ~kind:Ring.Span_end ?args name

let events t = Ring.to_list t.ring

(* A per-pid view, so algorithm programs (which know their pid only at
   instance-construction time) can record events without threading the
   pid through every recursive call. *)
type scoped = { sc_obs : t; sc_pid : int }

let scoped t ~pid = { sc_obs = t; sc_pid = pid }
let scoped_obs s = s.sc_obs
let scoped_pid s = s.sc_pid

let s_instant s ?args name = instant s.sc_obs ~pid:s.sc_pid ?args name
let s_begin s ?args name = span_begin s.sc_obs ~pid:s.sc_pid ?args name
let s_end s ?args name = span_end s.sc_obs ~pid:s.sc_pid ?args name
