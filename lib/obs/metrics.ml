(* The shared metrics registry: named counters, fixed-bucket
   histograms, read-through gauges and externally-owned counter
   vectors.  Handles are resolved once (get-or-create) so hot paths
   increment a plain mutable field; the registry is only walked at
   snapshot time, in sorted name order for deterministic output. *)

type counter = { mutable c : int }

type source =
  | Counter of counter
  | Histogram of Hist.t
  | Gauge of (unit -> float)
  | Vector of int array

type t = { tbl : (string, source) Hashtbl.t }

let create () = { tbl = Hashtbl.create 64 }

let kind_name = function
  | Counter _ -> "counter"
  | Histogram _ -> "histogram"
  | Gauge _ -> "gauge"
  | Vector _ -> "vector"

let clash name existing wanted =
  Format.kasprintf invalid_arg "Metrics: %S is already registered as a %s, not a %s" name
    (kind_name existing) wanted

let counter t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (Counter c) -> c
  | Some other -> clash name other "counter"
  | None ->
    let c = { c = 0 } in
    Hashtbl.replace t.tbl name (Counter c);
    c

let incr c = c.c <- c.c + 1
let add c v = c.c <- c.c + v
let value c = c.c

let histogram ?bounds t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (Histogram h) -> h
  | Some other -> clash name other "histogram"
  | None ->
    let h = Hist.create ?bounds () in
    Hashtbl.replace t.tbl name (Histogram h);
    h

(* Gauges and vectors are read-through views over state owned by the
   instrumented code (Tight.instrumentation's arrays, Mc_run's wall
   clock): registering the same name again rebinds the view, which is
   what a fresh run over a shared registry wants. *)
let gauge t name f = Hashtbl.replace t.tbl name (Gauge f)
let vector t name arr = Hashtbl.replace t.tbl name (Vector arr)

type value =
  | V_counter of int
  | V_histogram of Hist.t
  | V_gauge of float
  | V_vector of int array

let snapshot t =
  Hashtbl.fold
    (fun name source acc ->
      let v =
        match source with
        | Counter c -> V_counter c.c
        | Histogram h -> V_histogram h
        | Gauge f -> V_gauge (f ())
        | Vector arr -> V_vector (Array.copy arr)
      in
      (name, v) :: acc)
    t.tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let names t = List.map fst (snapshot t)

let find_counter t name =
  match Hashtbl.find_opt t.tbl name with Some (Counter c) -> Some c.c | _ -> None

let find_histogram t name =
  match Hashtbl.find_opt t.tbl name with Some (Histogram h) -> Some h | _ -> None
