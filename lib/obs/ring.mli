(** A bounded ring of trace events: span begin/end markers and instant
    events, stamped with the executor's logical time.  Adding to a full
    ring drops the oldest event and counts the drop, so a trace of an
    arbitrarily long run is always the most recent window. *)

type kind = Span_begin | Span_end | Instant

type event = {
  ev_ts : int;  (** logical time (executor ticks) *)
  ev_pid : int;
  ev_kind : kind;
  ev_name : string;
  ev_args : (string * int) list;
}

type t

val create : ?capacity:int -> unit -> t
(** Default capacity 65536 events. *)

val capacity : t -> int
val length : t -> int

val dropped : t -> int
(** Events evicted because the ring was full. *)

val add : t -> event -> unit
val to_list : t -> event list
(** Oldest first. *)

val clear : t -> unit

val kind_name : kind -> string
val kind_of_name : string -> kind option
