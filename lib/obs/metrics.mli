(** The metrics registry of one telemetry capability: named counters,
    fixed-bucket histograms, read-through gauges and externally-owned
    counter vectors.

    Handles ([counter], {!Hist.t}) are resolved once and incremented as
    plain mutable fields — no hashing on the hot path.  [snapshot]
    walks the registry in sorted name order, so snapshot output is
    deterministic. *)

type t

type counter

val create : unit -> t

val counter : t -> string -> counter
(** Get-or-create.  Raises [Invalid_argument] if [name] is already
    registered as a different kind. *)

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

val histogram : ?bounds:int array -> t -> string -> Hist.t
(** Get-or-create ({!Hist.default_bounds} unless [bounds] given). *)

val gauge : t -> string -> (unit -> float) -> unit
(** Register a read-through gauge; re-registering rebinds it. *)

val vector : t -> string -> int array -> unit
(** Register an externally-owned indexed counter array (for example
    [Tight.instrumentation]'s per-τ request counts); the snapshot reads
    the array's current contents.  Re-registering rebinds it. *)

type value =
  | V_counter of int
  | V_histogram of Hist.t
  | V_gauge of float
  | V_vector of int array

val snapshot : t -> (string * value) list
(** Current values, sorted by name. *)

val names : t -> string list

val find_counter : t -> string -> int option
val find_histogram : t -> string -> Hist.t option
