(* Fixed-bucket histograms for step-complexity and contention
   distributions.  Unlike Renaming_stats.Histogram (an exact hashtable
   keyed by value), buckets here are fixed at creation, so histograms
   from different runs, pids or domains merge by plain element-wise
   addition — the property the metrics snapshot and bench baseline
   diffs rely on. *)

type t = {
  bounds : int array;  (* strictly increasing inclusive upper bounds *)
  counts : int array;  (* length = Array.length bounds + 1 (last = overflow) *)
  mutable total : int;
  mutable sum : int;
  mutable max_seen : int;  (* -1 when empty *)
}

(* Powers of two up to 2^20: wide enough for every per-process step
   count this repository produces, and small enough to snapshot. *)
let default_bounds = Array.init 21 (fun i -> 1 lsl i)

let validate_bounds bounds =
  if Array.length bounds = 0 then invalid_arg "Hist.create: empty bounds";
  Array.iteri
    (fun i b ->
      if b < 0 then invalid_arg "Hist.create: negative bound";
      if i > 0 && bounds.(i - 1) >= b then
        invalid_arg "Hist.create: bounds must be strictly increasing")
    bounds

let create ?(bounds = default_bounds) () =
  validate_bounds bounds;
  {
    bounds = Array.copy bounds;
    counts = Array.make (Array.length bounds + 1) 0;
    total = 0;
    sum = 0;
    max_seen = -1;
  }

(* Index of the first bound >= v, or the overflow bucket. *)
let bucket_index t v =
  let lo = ref 0 and hi = ref (Array.length t.bounds) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.bounds.(mid) >= v then hi := mid else lo := mid + 1
  done;
  !lo

let observe_many t v ~count =
  if v < 0 then invalid_arg "Hist.observe: negative value";
  if count < 0 then invalid_arg "Hist.observe_many: negative count";
  if count > 0 then begin
    let i = bucket_index t v in
    t.counts.(i) <- t.counts.(i) + count;
    t.total <- t.total + count;
    t.sum <- t.sum + (v * count);
    if v > t.max_seen then t.max_seen <- v
  end

let observe t v = observe_many t v ~count:1

let count t = t.total
let sum t = t.sum
let max_value t = t.max_seen
let mean t = if t.total = 0 then nan else float_of_int t.sum /. float_of_int t.total
let bounds t = Array.copy t.bounds
let counts t = Array.copy t.counts

let bucket_label t i =
  if i = 0 then Printf.sprintf "<=%d" t.bounds.(0)
  else if i = Array.length t.bounds then Printf.sprintf ">%d" t.bounds.(i - 1)
  else Printf.sprintf "%d..%d" (t.bounds.(i - 1) + 1) t.bounds.(i)

let buckets t = Array.to_list (Array.mapi (fun i c -> (bucket_label t i, c)) t.counts)

let same_bounds a b =
  Array.length a.bounds = Array.length b.bounds
  && Array.for_all2 ( = ) a.bounds b.bounds

(* Element-wise addition: associative, commutative, and conserving —
   every bucket count (and total/sum) of the result is the sum of the
   operands'; max is the max.  test/test_obs.ml checks these laws. *)
let merge a b =
  if not (same_bounds a b) then invalid_arg "Hist.merge: bucket bounds differ";
  {
    bounds = Array.copy a.bounds;
    counts = Array.init (Array.length a.counts) (fun i -> a.counts.(i) + b.counts.(i));
    total = a.total + b.total;
    sum = a.sum + b.sum;
    max_seen = Stdlib.max a.max_seen b.max_seen;
  }

let equal a b =
  same_bounds a b
  && Array.for_all2 ( = ) a.counts b.counts
  && a.total = b.total && a.sum = b.sum && a.max_seen = b.max_seen
