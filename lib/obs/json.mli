(** Minimal JSON values: a deterministic emitter for the exporters and
    a small validating parser for self-checks and round-trip tests (no
    external JSON dependency). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering.  Emission is deterministic: object fields keep
    their construction order.  NaN and infinities render as [null]. *)

val of_string : string -> (t, string) result
(** Parse a complete JSON document; [Error] carries the offset and
    reason of the first syntax error. *)

val member : string -> t -> t option
(** Field lookup on an object; [None] on other values. *)

val to_int : t -> int option
val to_str : t -> string option
val to_items : t -> t list option
