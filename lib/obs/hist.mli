(** Fixed-bucket mergeable histograms.

    Bucket bounds are fixed at creation (default: powers of two up to
    2^20), so two histograms with the same bounds merge by element-wise
    addition — [merge] is associative and commutative, and conserves
    counts, which is what lets per-pid, per-domain and per-run
    distributions combine into the snapshots the exporters write.  For
    exact value-keyed histograms use {!Renaming_stats.Histogram}. *)

type t

val default_bounds : int array
(** [2^0 .. 2^20], inclusive upper bounds. *)

val create : ?bounds:int array -> unit -> t
(** [bounds] must be strictly increasing and non-negative; an overflow
    bucket above the last bound is added automatically. *)

val observe : t -> int -> unit
val observe_many : t -> int -> count:int -> unit

val count : t -> int
(** Total observations. *)

val sum : t -> int
val max_value : t -> int
(** Largest observed value; -1 when empty. *)

val mean : t -> float
(** [nan] when empty. *)

val bounds : t -> int array
val counts : t -> int array
(** Per-bucket counts, one more entry than [bounds] (the overflow
    bucket). *)

val buckets : t -> (string * int) list
(** Labelled per-bucket counts, e.g. [("<=8", 3); ("9..16", 1); ...]. *)

val merge : t -> t -> t
(** Fresh histogram with element-wise summed counts; raises
    [Invalid_argument] when the bucket bounds differ. *)

val equal : t -> t -> bool
