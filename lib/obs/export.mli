(** Exporters for the telemetry capability.  Schemas are documented in
    docs/observability.md; all output is deterministic for a
    deterministic run. *)

(** {2 JSONL event stream} *)

val event_to_json : Ring.event -> Json.t
val event_of_json : Json.t -> (Ring.event, string) result

val jsonl : Ring.event list -> string
(** One JSON object per line. *)

val events_of_jsonl : string -> (Ring.event list, string) result
(** Inverse of [jsonl] (blank lines ignored). *)

(** {2 Chrome trace_event} *)

val chrome_trace : ?process_name:string -> Ring.event list -> string
(** A [{"traceEvents": [...]}] document loadable in Perfetto or
    chrome://tracing: one thread track per simulated pid (named via
    thread_name metadata), spans as B/E pairs, instants as "i" events,
    logical executor ticks as the microsecond timestamps. *)

(** {2 Metrics snapshot} *)

val hist_json : Hist.t -> Json.t
val metrics_json : ?label:string -> Metrics.t -> Json.t
val metrics_to_string : ?label:string -> Metrics.t -> string
