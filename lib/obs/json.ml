(* Minimal JSON tree with a deterministic emitter and a small
   validating parser.  The exporters build values with this module; the
   parser exists so the trace self-check (`renaming trace --check`) and
   the JSONL round-trip tests need no external JSON dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- emission --- *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* JSON has no NaN/infinity; map them to null.  "%.17g" round-trips
   every float but "1." is not valid JSON, so integral floats are
   printed with an explicit fraction digit. *)
let float_repr f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        emit buf v)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape k);
        Buffer.add_string buf "\":";
        emit buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 1024 in
  emit buf v;
  Buffer.contents buf

(* --- accessors --- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function Int i -> Some i | _ -> None
let to_str = function String s -> Some s | _ -> None
let to_items = function List l -> Some l | _ -> None

(* --- parsing --- *)

exception Parse_error of string

let parse_error pos msg = raise (Parse_error (Printf.sprintf "at offset %d: %s" pos msg))

let of_string s =
  let len = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let advance () = incr pos in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> parse_error !pos (Printf.sprintf "expected %C" c)
  in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let literal word value =
    let n = String.length word in
    if !pos + n <= len && String.sub s !pos n = word then begin
      pos := !pos + n;
      value
    end
    else parse_error !pos (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= len then parse_error !pos "unterminated string";
      let c = s.[!pos] in
      advance ();
      if c = '"' then Buffer.contents buf
      else if c = '\\' then begin
        (if !pos >= len then parse_error !pos "unterminated escape");
        let e = s.[!pos] in
        advance ();
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
          if !pos + 4 > len then parse_error !pos "truncated \\u escape";
          let hex = String.sub s !pos 4 in
          pos := !pos + 4;
          let code =
            match int_of_string_opt ("0x" ^ hex) with
            | Some c -> c
            | None -> parse_error !pos "bad \\u escape"
          in
          (* Encode the code point as UTF-8 (surrogates are kept as-is
             bytes-wise; the exporters only emit ASCII). *)
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else if code < 0x800 then begin
            Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end
          else begin
            Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
            Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end
        | c -> parse_error !pos (Printf.sprintf "bad escape \\%C" c));
        go ()
      end
      else begin
        Buffer.add_char buf c;
        go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while !pos < len && is_num_char s.[!pos] do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> parse_error start (Printf.sprintf "bad number %S" text))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> parse_error !pos "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          fields := field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !fields)
      end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> len then parse_error !pos "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg
