(** The telemetry capability: a {!Metrics} registry, a bounded
    {!Ring} of trace events, and a logical clock.

    The capability is threaded explicitly — as [Obs.t option] — through
    the algorithms ([Tight], [Loose_geometric], ...), the executors
    ([Executor.run], [Directed.run], [Mc_run.execute]) and the campaign
    runners (chaos, mcheck, fuzz).  Disabled mode is the [None] case:
    every recording site is a single branch on the option, so runs
    without a capability pay one branch per site and allocate nothing
    (bench/main.ml measures the bound; docs/observability.md has the
    design rationale). *)

type t

val create : ?ring_capacity:int -> unit -> t

val metrics : t -> Metrics.t
val ring : t -> Ring.t

val set_now : t -> (unit -> int) -> unit
(** Install the logical clock; the executor does this at run start so
    events carry executor ticks. *)

val now : t -> int

(** {2 Metrics shorthands} *)

val counter : t -> string -> Metrics.counter
val histogram : ?bounds:int array -> t -> string -> Hist.t
val gauge : t -> string -> (unit -> float) -> unit
val vector : t -> string -> int array -> unit

(** {2 Events} *)

val event : t -> pid:int -> kind:Ring.kind -> ?args:(string * int) list -> string -> unit
val instant : t -> pid:int -> ?args:(string * int) list -> string -> unit
val span_begin : t -> pid:int -> ?args:(string * int) list -> string -> unit
val span_end : t -> pid:int -> ?args:(string * int) list -> string -> unit

val events : t -> Ring.event list
(** Oldest first. *)

(** {2 Per-pid views}

    Algorithm programs learn their pid at instance construction;
    [scoped] fixes it once so the program body records events without
    threading the pid through every recursive call. *)

type scoped

val scoped : t -> pid:int -> scoped
val scoped_obs : scoped -> t
val scoped_pid : scoped -> int

val s_instant : scoped -> ?args:(string * int) list -> string -> unit
val s_begin : scoped -> ?args:(string * int) list -> string -> unit
val s_end : scoped -> ?args:(string * int) list -> string -> unit
