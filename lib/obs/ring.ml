(* A bounded ring of trace events.  Writers never block and never
   allocate beyond the event itself: when the ring is full the oldest
   event is dropped and counted, so tracing a long run degrades to "the
   most recent window" instead of unbounded memory. *)

type kind = Span_begin | Span_end | Instant

type event = {
  ev_ts : int;  (* logical time (executor ticks) *)
  ev_pid : int;
  ev_kind : kind;
  ev_name : string;
  ev_args : (string * int) list;
}

type t = {
  buf : event array;
  capacity : int;
  mutable start : int;  (* index of the oldest event *)
  mutable len : int;
  mutable dropped : int;
}

let dummy = { ev_ts = 0; ev_pid = 0; ev_kind = Instant; ev_name = ""; ev_args = [] }

let create ?(capacity = 65536) () =
  if capacity < 1 then invalid_arg "Ring.create: capacity must be >= 1";
  { buf = Array.make capacity dummy; capacity; start = 0; len = 0; dropped = 0 }

let capacity t = t.capacity
let length t = t.len
let dropped t = t.dropped

let add t ev =
  if t.len = t.capacity then begin
    (* overwrite the oldest *)
    t.buf.(t.start) <- ev;
    t.start <- (t.start + 1) mod t.capacity;
    t.dropped <- t.dropped + 1
  end
  else begin
    t.buf.((t.start + t.len) mod t.capacity) <- ev;
    t.len <- t.len + 1
  end

let to_list t = List.init t.len (fun i -> t.buf.((t.start + i) mod t.capacity))

let clear t =
  t.start <- 0;
  t.len <- 0;
  t.dropped <- 0

let kind_name = function Span_begin -> "begin" | Span_end -> "end" | Instant -> "instant"

let kind_of_name = function
  | "begin" -> Some Span_begin
  | "end" -> Some Span_end
  | "instant" -> Some Instant
  | _ -> None
