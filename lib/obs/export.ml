(* Exporters: the three machine-readable views of a telemetry
   capability.

   - JSONL: one JSON object per event, append-friendly, round-trips
     through [events_of_jsonl] (tested in test/test_obs.ml);
   - Chrome trace_event: loads in Perfetto / chrome://tracing, one
     track per pid with span (B/E) and instant (i) events;
   - metrics snapshot: every counter/histogram/gauge/vector of the
     registry as one JSON object.

   All output is deterministic for a deterministic run: events are
   emitted in ring order and metrics in sorted name order. *)

(* --- events --- *)

let event_to_json (e : Ring.event) =
  Json.Obj
    [
      ("ts", Json.Int e.Ring.ev_ts);
      ("pid", Json.Int e.Ring.ev_pid);
      ("kind", Json.String (Ring.kind_name e.Ring.ev_kind));
      ("name", Json.String e.Ring.ev_name);
      ("args", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) e.Ring.ev_args));
    ]

let event_of_json j =
  let ( let* ) r f = Result.bind r f in
  let field name conv =
    match Option.bind (Json.member name j) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "event: missing or ill-typed field %S" name)
  in
  let* ts = field "ts" Json.to_int in
  let* pid = field "pid" Json.to_int in
  let* kind_s = field "kind" Json.to_str in
  let* kind =
    match Ring.kind_of_name kind_s with
    | Some k -> Ok k
    | None -> Error (Printf.sprintf "event: unknown kind %S" kind_s)
  in
  let* name = field "name" Json.to_str in
  let* args =
    match Json.member "args" j with
    | Some (Json.Obj fields) ->
      List.fold_left
        (fun acc (k, v) ->
          let* acc = acc in
          match Json.to_int v with
          | Some i -> Ok ((k, i) :: acc)
          | None -> Error (Printf.sprintf "event: non-integer arg %S" k))
        (Ok []) fields
      |> Result.map List.rev
    | Some _ -> Error "event: args is not an object"
    | None -> Ok []
  in
  Ok { Ring.ev_ts = ts; ev_pid = pid; ev_kind = kind; ev_name = name; ev_args = args }

let jsonl events =
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string buf (Json.to_string (event_to_json e));
      Buffer.add_char buf '\n')
    events;
  Buffer.contents buf

let events_of_jsonl s =
  let ( let* ) r f = Result.bind r f in
  String.split_on_char '\n' s
  |> List.filter (fun line -> String.trim line <> "")
  |> List.fold_left
       (fun acc line ->
         let* acc = acc in
         let* j = Json.of_string line in
         let* e = event_of_json j in
         Ok (e :: acc))
       (Ok [])
  |> Result.map List.rev

(* --- Chrome trace_event format --- *)

(* One Perfetto track per simulated process: the trace's single
   "process" is the run itself (pid 0) and each simulated pid becomes a
   thread (tid), named by a thread_name metadata record.  Logical
   executor ticks are reported as microseconds — Perfetto only needs a
   monotone integer timescale. *)
let chrome_trace ?(process_name = "renaming") events =
  let pids =
    List.sort_uniq compare (List.map (fun (e : Ring.event) -> e.Ring.ev_pid) events)
  in
  let meta =
    Json.Obj
      [
        ("name", Json.String "process_name");
        ("ph", Json.String "M");
        ("pid", Json.Int 0);
        ("tid", Json.Int 0);
        ("args", Json.Obj [ ("name", Json.String process_name) ]);
      ]
    :: List.map
         (fun pid ->
           Json.Obj
             [
               ("name", Json.String "thread_name");
               ("ph", Json.String "M");
               ("pid", Json.Int 0);
               ("tid", Json.Int pid);
               ("args", Json.Obj [ ("name", Json.String (Printf.sprintf "p%d" pid)) ]);
             ])
         pids
  in
  let of_event (e : Ring.event) =
    let common =
      [
        ("name", Json.String e.Ring.ev_name);
        ("pid", Json.Int 0);
        ("tid", Json.Int e.Ring.ev_pid);
        ("ts", Json.Int e.Ring.ev_ts);
      ]
    in
    let args =
      if e.Ring.ev_args = [] then []
      else [ ("args", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) e.Ring.ev_args)) ]
    in
    let ph =
      match e.Ring.ev_kind with
      | Ring.Span_begin -> [ ("ph", Json.String "B") ]
      | Ring.Span_end -> [ ("ph", Json.String "E") ]
      | Ring.Instant -> [ ("ph", Json.String "i"); ("s", Json.String "t") ]
    in
    Json.Obj (common @ ph @ args)
  in
  Json.to_string
    (Json.Obj
       [
         ("traceEvents", Json.List (meta @ List.map of_event events));
         ("displayTimeUnit", Json.String "ms");
       ])

(* --- metrics snapshot --- *)

let hist_json h =
  Json.Obj
    [
      ("type", Json.String "histogram");
      ("count", Json.Int (Hist.count h));
      ("sum", Json.Int (Hist.sum h));
      ("max", Json.Int (Hist.max_value h));
      ("mean", if Hist.count h = 0 then Json.Null else Json.Float (Hist.mean h));
      ("bounds", Json.List (Array.to_list (Array.map (fun b -> Json.Int b) (Hist.bounds h))));
      ("counts", Json.List (Array.to_list (Array.map (fun c -> Json.Int c) (Hist.counts h))));
      ("buckets", Json.Obj (List.map (fun (l, c) -> (l, Json.Int c)) (Hist.buckets h)));
    ]

let value_json = function
  | Metrics.V_counter v -> Json.Obj [ ("type", Json.String "counter"); ("value", Json.Int v) ]
  | Metrics.V_histogram h -> hist_json h
  | Metrics.V_gauge v -> Json.Obj [ ("type", Json.String "gauge"); ("value", Json.Float v) ]
  | Metrics.V_vector arr ->
    Json.Obj
      [
        ("type", Json.String "vector");
        ("values", Json.List (Array.to_list (Array.map (fun v -> Json.Int v) arr)));
      ]

let metrics_json ?(label = "") metrics =
  let snap = Metrics.snapshot metrics in
  Json.Obj
    [
      ("schema", Json.String "renaming.metrics/1");
      ("label", Json.String label);
      ("metrics", Json.Obj (List.map (fun (name, v) -> (name, value_json v)) snap));
    ]

let metrics_to_string ?label metrics = Json.to_string (metrics_json ?label metrics)
