module Program = Renaming_sched.Program
module Retry = Renaming_faults.Retry
module Executor = Renaming_sched.Executor
module Memory = Renaming_sched.Memory
module Adversary = Renaming_sched.Adversary

type config = { n : int; m : int }

let validate { n; m } =
  if n < 1 then invalid_arg "Linear_scan: n must be >= 1";
  if m < n then invalid_arg "Linear_scan: m must be >= n"

let program cfg =
  validate cfg;
  Retry.scan_names ~first:0 ~count:cfg.m ()

let instance cfg =
  validate cfg;
  let memory = Memory.create ~namespace:cfg.m () in
  let programs = Array.init cfg.n (fun _ -> program cfg) in
  { Executor.memory; programs; label = "linear-scan" }

let run ?adversary cfg =
  let inst = instance cfg in
  let adversary = match adversary with Some a -> a | None -> Adversary.round_robin () in
  Executor.run ~adversary inst
