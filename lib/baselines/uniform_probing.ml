module Program = Renaming_sched.Program
module Executor = Renaming_sched.Executor
module Memory = Renaming_sched.Memory
module Adversary = Renaming_sched.Adversary
module Retry = Renaming_faults.Retry
module Stream = Renaming_rng.Stream
module Sample = Renaming_rng.Sample
open Program.Syntax

type config = { n : int; m : int; max_probes : int }

let make_config ?max_probes ~n ~m () =
  if n < 1 then invalid_arg "Uniform_probing: n must be >= 1";
  if m < n then invalid_arg "Uniform_probing: m must be >= n";
  let max_probes = match max_probes with Some p -> p | None -> 4 * m in
  if max_probes < 1 then invalid_arg "Uniform_probing: max_probes must be >= 1";
  { n; m; max_probes }

let program cfg ~rng =
  let rec probe remaining =
    if remaining = 0 then Retry.scan_names ~first:0 ~count:cfg.m ()
    else
      let target = Sample.uniform_int rng cfg.m in
      let* won = Retry.tas_name target in
      if won then Program.return (Some target) else probe (remaining - 1)
  in
  probe cfg.max_probes

let instance cfg ~stream =
  let memory = Memory.create ~namespace:cfg.m () in
  let programs =
    Array.init cfg.n (fun pid -> program cfg ~rng:(Stream.fork stream ~index:pid))
  in
  { Executor.memory; programs; label = Printf.sprintf "uniform-probing(m=%d)" cfg.m }

let run ?adversary cfg ~seed =
  let stream = Stream.create seed in
  let inst = instance cfg ~stream in
  let adversary = match adversary with Some a -> a | None -> Adversary.round_robin () in
  Executor.run ~adversary inst
