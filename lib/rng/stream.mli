(** Named, reproducible streams of randomness.

    A {!t} owns a master generator derived from a single experiment seed;
    [fork] carves out per-purpose or per-process substreams whose contents
    do not depend on the order in which the other substreams are used.
    This is what makes simulation runs replayable: the stream for process
    [i] is a pure function of [(seed, i)]. *)

type t

(** [create seed] makes a master stream. *)
val create : int64 -> t

(** [fork t ~index] derives substream [index] deterministically; the same
    [(seed, index)] pair always yields the same generator regardless of
    other forks. *)
val fork : t -> index:int -> Xoshiro.t

(** [fork_named t ~name] derives a substream keyed by a string label
    (hashed with {!hash_name}); used for experiment-level streams such
    as ["workload"] or ["adversary"]. *)
val fork_named : t -> name:string -> Xoshiro.t

(** [hash_name name] is the self-contained FNV-1a 64-bit hash behind
    {!fork_named}.  Pinned by golden-value tests: unlike
    [Hashtbl.hash], its output is part of the replayability contract
    and must never change across OCaml versions or releases. *)
val hash_name : string -> int64

(** [seed t] returns the seed the stream was built from. *)
val seed : t -> int64
