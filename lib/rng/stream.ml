type t = { seed : int64 }

let create seed = { seed }

let seed t = t.seed

(* Mix the substream key into the seed through one SplitMix64 round so
   that substreams with nearby indices are decorrelated. *)
let derive base key =
  let sm = Splitmix64.create (Int64.logxor base (Int64.mul 0x9E3779B97F4A7C15L key)) in
  Xoshiro.create (Splitmix64.next sm)

let fork t ~index = derive t.seed (Int64.of_int (index + 1))

(* FNV-1a, 64-bit.  Self-contained so per-name streams are stable
   across OCaml versions — Hashtbl.hash makes no such promise and has
   changed between releases, which would silently reseed every named
   substream on a compiler upgrade. *)
let hash_name name =
  let fnv_offset_basis = 0xCBF29CE484222325L in
  let fnv_prime = 0x100000001B3L in
  let h = ref fnv_offset_basis in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    name;
  !h

let fork_named t ~name =
  (* Force a high bit so named keys stay disjoint from the small
     positive keys [fork] derives from indices. *)
  derive t.seed (Int64.logor (hash_name name) 0x4000000000000000L)
