module Json = Renaming_obs.Json
module Export = Renaming_obs.Export

type cell = { cell_name : string; cell_cfg : Churn.config }

type spec = { cells : cell list; seeds : int64 array }

let default_spec ?(sessions_per_cell = 150_000) ?(seeds = [| 0x5EED_2015L; 0xC0FFEEL |])
    () =
  let base = Churn.make_config ~sessions_target:sessions_per_cell in
  {
    seeds;
    cells =
      [
        (* Utilization shedding: the high-water mark refuses new work
           while reclaim churn eats the reserved headroom. *)
        { cell_name = "steady-shed"; cell_cfg = base ~crash_rate:0.25 () };
        (* Queue-only admission: shedding disabled (high_water > 1), so
           degradation happens through the bounded queue — waits,
           timeouts, queue-full refusals. *)
        {
          cell_name = "queue-degrade";
          cell_cfg =
            base ~crash_rate:0.25 ~high_water:1.5 ~queue_limit:32 ~request_timeout:2.0
              ~clients:192 ();
        };
        (* Correlated burst: a third of the population crashes inside a
           ten-tick window — reclamation has to recover a block of names
           at once. *)
        {
          cell_name = "burst-reclaim";
          cell_cfg =
            base ~crash_rate:0.25
              ~burst:{ Churn.b_at = 300; b_width = 10; b_failures = 42 }
              ();
        };
        (* Zipf-hot churn: skew 1.4 and short thinks concentrate arrivals
           on a few hot clients at a 35% crash rate. *)
        {
          cell_name = "hot-zipf";
          cell_cfg = base ~crash_rate:0.35 ~zipf_s:1.4 ~mean_think:1.5 ();
        };
      ];
  }

type cell_result = { cr_name : string; cr_seed : int64; cr_summary : Churn.summary }

type summary = {
  results : cell_result list;
  total_sessions : int;
  total_grants : int;
  total_reclaims : int;
  total_sheds : int;
  total_expired_requests : int;
  total_stale_ops : int;
  total_stale_rejected : int;
  total_crashes : int;
  total_abandoned : int;
  total_violations : int;
  total_livelocks : int;
  total_unexpected_fenced : int;
  total_audit_near_misses : int;
}

let summarize results =
  let add f = List.fold_left (fun acc r -> acc + f r.cr_summary) 0 results in
  {
    results;
    total_sessions = add (fun s -> s.Churn.sessions);
    total_grants = add (fun s -> s.Churn.service.Service.grants);
    total_reclaims = add (fun s -> s.Churn.service.Service.reclaims);
    total_sheds =
      add (fun s ->
          s.Churn.service.Service.sheds_high_water
          + s.Churn.service.Service.sheds_queue_full);
    total_expired_requests = add (fun s -> s.Churn.service.Service.expired_requests);
    total_stale_ops = add (fun s -> s.Churn.stale_ops);
    total_stale_rejected = add (fun s -> s.Churn.stale_rejected);
    total_crashes = add (fun s -> s.Churn.crashes);
    total_abandoned = add (fun s -> s.Churn.abandoned);
    total_violations =
      add (fun s -> match s.Churn.violation with Some _ -> 1 | None -> 0);
    total_livelocks = add (fun s -> if s.Churn.livelocked then 1 else 0);
    total_unexpected_fenced = add (fun s -> s.Churn.unexpected_fenced);
    total_audit_near_misses = add (fun s -> s.Churn.audit_near_misses);
  }

let run ?progress ?obs spec =
  let total = List.length spec.cells * Array.length spec.seeds in
  let done_ = ref 0 in
  let results =
    List.concat_map
      (fun cell ->
        Array.to_list
          (Array.map
             (fun seed ->
               let summary = Churn.run ?obs cell.cell_cfg ~seed in
               incr done_;
               (match progress with Some f -> f ~done_:!done_ ~total | None -> ());
               { cr_name = cell.cell_name; cr_seed = seed; cr_summary = summary })
             spec.seeds))
      spec.cells
  in
  let summary = summarize results in
  (match obs with
  | Some o ->
    let record name v =
      Renaming_obs.Metrics.add (Renaming_obs.Obs.counter o name) v
    in
    record "chaos_service/runs" (List.length results);
    record "chaos_service/sessions" summary.total_sessions;
    record "chaos_service/violations" summary.total_violations;
    record "chaos_service/livelocks" summary.total_livelocks;
    record "chaos_service/reclaims" summary.total_reclaims;
    record "chaos_service/sheds" summary.total_sheds
  | None -> ());
  summary

let result_json r =
  let s = r.cr_summary in
  let sv = s.Churn.service in
  Json.Obj
    [
      ("cell", Json.String r.cr_name);
      ("seed", Json.String (Printf.sprintf "0x%Lx" r.cr_seed));
      ("sessions", Json.Int s.Churn.sessions);
      ("events", Json.Int s.Churn.events);
      ("sim_time", Json.Float s.Churn.sim_time);
      ("grants", Json.Int sv.Service.grants);
      ("queued", Json.Int sv.Service.queued);
      ("renews", Json.Int sv.Service.renews);
      ("releases", Json.Int sv.Service.releases);
      ("reclaims", Json.Int sv.Service.reclaims);
      ("sheds_high_water", Json.Int sv.Service.sheds_high_water);
      ("sheds_queue_full", Json.Int sv.Service.sheds_queue_full);
      ("expired_requests", Json.Int sv.Service.expired_requests);
      ("fenced", Json.Int sv.Service.fenced);
      ("crashes", Json.Int s.Churn.crashes);
      ("restarts", Json.Int s.Churn.restarts);
      ("abandoned", Json.Int s.Churn.abandoned);
      ("retries", Json.Int s.Churn.retries);
      ("stale_ops", Json.Int s.Churn.stale_ops);
      ("stale_rejected", Json.Int s.Churn.stale_rejected);
      ("unexpected_fenced", Json.Int s.Churn.unexpected_fenced);
      ("audit_near_misses", Json.Int s.Churn.audit_near_misses);
      ("audit_violations", Json.Int s.Churn.audit_violations);
      ("peak_held", Json.Int s.Churn.peak_held);
      ("final_held", Json.Int s.Churn.final_held);
      ("livelocked", Json.Bool s.Churn.livelocked);
      ( "violation",
        match s.Churn.violation with
        | None -> Json.Null
        | Some (kind, message) ->
          Json.Obj [ ("kind", Json.String kind); ("message", Json.String message) ] );
      ("hist_probes", Export.hist_json s.Churn.h_probes);
      ("hist_reclaim_lateness", Export.hist_json s.Churn.h_reclaim);
      ("hist_queue_wait", Export.hist_json s.Churn.h_wait);
      ("hist_lease_lifetime", Export.hist_json s.Churn.h_lifetime);
    ]

let to_json summary =
  Json.to_string
    (Json.Obj
       [
         ("schema", Json.String "renaming.chaos-service/1");
         ("total_sessions", Json.Int summary.total_sessions);
         ("total_grants", Json.Int summary.total_grants);
         ("total_reclaims", Json.Int summary.total_reclaims);
         ("total_sheds", Json.Int summary.total_sheds);
         ("total_expired_requests", Json.Int summary.total_expired_requests);
         ("total_stale_ops", Json.Int summary.total_stale_ops);
         ("total_stale_rejected", Json.Int summary.total_stale_rejected);
         ("total_crashes", Json.Int summary.total_crashes);
         ("total_abandoned", Json.Int summary.total_abandoned);
         ("total_violations", Json.Int summary.total_violations);
         ("total_livelocks", Json.Int summary.total_livelocks);
         ("total_unexpected_fenced", Json.Int summary.total_unexpected_fenced);
         ("total_audit_near_misses", Json.Int summary.total_audit_near_misses);
         ("runs", Json.List (List.map result_json summary.results));
       ])

let pp fmt summary =
  Format.fprintf fmt
    "service chaos: %d runs, %d sessions, %d grants, %d reclaims, %d sheds, %d \
     expired, %d stale ops (%d fenced), %d crashes, %d violations, %d livelocks@."
    (List.length summary.results)
    summary.total_sessions summary.total_grants summary.total_reclaims
    summary.total_sheds summary.total_expired_requests summary.total_stale_ops
    summary.total_stale_rejected summary.total_crashes summary.total_violations
    summary.total_livelocks;
  List.iter
    (fun r ->
      let s = r.cr_summary in
      Format.fprintf fmt
        "  %-14s seed=0x%Lx sessions=%d grants=%d reclaims=%d sheds=%d+%d expired=%d \
         stale=%d/%d peak=%d%s%s@."
        r.cr_name r.cr_seed s.Churn.sessions s.Churn.service.Service.grants
        s.Churn.service.Service.reclaims s.Churn.service.Service.sheds_high_water
        s.Churn.service.Service.sheds_queue_full
        s.Churn.service.Service.expired_requests s.Churn.stale_rejected
        s.Churn.stale_ops s.Churn.peak_held
        (if s.Churn.livelocked then " LIVELOCK" else "")
        (match s.Churn.violation with
        | Some (kind, _) -> " VIOLATION:" ^ kind
        | None -> ""))
    summary.results
