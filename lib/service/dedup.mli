(** Per-shard at-most-once request deduplication.

    Clients tag every request with a strictly increasing sequence
    number; retransmits reuse the original number.  The table keeps, per
    client, the highest sequence executed and its cached reply:

    - a {e fresh} sequence (above the recorded one) executes — the
      caller must {!record} the reply it produced;
    - a retransmit of the recorded sequence {e replays} the cached reply
      without re-executing (at-most-once);
    - a sequence {e below} the recorded one is a stale duplicate that
      overtook newer traffic (reordering) — it is reported [Stale] and
      must be discarded, never executed: its client has already moved
      on, and re-executing it would double-grant.

    {b Bounded window, safe eviction.}  Entries idle longer than
    [window] are evicted by {!sweep}, bounding memory under client
    churn.  Eviction is {e safe} only once no duplicate of the entry's
    sequence can still arrive: the client has stopped retransmitting
    (its retry horizon passed) and the network holds nothing older than
    its delivery bound ({!Transport.max_delay}).  Callers must size
    [window] above [retry horizon + max network delay]; an entry evicted
    while a duplicate is still in flight lets that duplicate re-execute
    as fresh — the double-grant the [mutant-net-dedup-evict] fuzz target
    exhibits and docs/fault_model.md §8 derives the bound for. *)

type stats = {
  mutable fresh : int;  (** sequences admitted for execution *)
  mutable replays : int;  (** retransmits answered from the cache *)
  mutable stale : int;  (** reordered old duplicates discarded *)
  mutable evictions : int;  (** idle entries dropped by {!sweep} *)
}

type 'r t

val create : ?window:float -> unit -> 'r t
(** Default [window] is [infinity]: nothing is ever evicted unless the
    caller opts into a bounded window.  Raises if [window <= 0]. *)

type 'r verdict = Fresh | Replay of 'r | Stale

val admit : 'r t -> client:int -> seq:int -> now:float -> 'r verdict
(** Classify an arriving request and touch its client's entry.  [Fresh]
    obliges the caller to execute and then {!record} the reply. *)

val record : 'r t -> client:int -> seq:int -> now:float -> 'r -> unit
(** Cache [reply] as the outcome of [(client, seq)]; replaces the
    client's previous entry.  Re-recording the same sequence (a queued
    request completing after its provisional reply) overwrites the
    cached reply, so later retransmits replay the final outcome. *)

val sweep : 'r t -> now:float -> int
(** Evict entries idle longer than the window; returns how many. *)

val entries : 'r t -> int
val stats : 'r t -> stats
