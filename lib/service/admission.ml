type config = { queue_limit : int; request_timeout : float; high_water : float }

let make_config ?(queue_limit = 64) ?(request_timeout = 5.0) ?(high_water = 0.85) () =
  if queue_limit < 0 then invalid_arg "Admission.make_config: queue_limit must be >= 0";
  if request_timeout <= 0. then
    invalid_arg "Admission.make_config: request_timeout must be positive";
  if high_water <= 0. || high_water > 2. then
    invalid_arg "Admission.make_config: high_water must be in (0, 2]";
  { queue_limit; request_timeout; high_water }

type shed_reason = High_water | Queue_full

type waiting = { w_ticket : int; w_session : int; w_enqueued : float }

type t = {
  cfg : config;
  queue : waiting Queue.t;
  mutable next_ticket : int;
  mutable expired_total : int;
}

let create cfg = { cfg; queue = Queue.create (); next_ticket = 0; expired_total = 0 }

let depth t = Queue.length t.queue

let offer t ~session ~now ~utilization =
  if utilization >= t.cfg.high_water then Error High_water
  else if Queue.length t.queue >= t.cfg.queue_limit then Error Queue_full
  else begin
    let ticket = t.next_ticket in
    t.next_ticket <- ticket + 1;
    Queue.add { w_ticket = ticket; w_session = session; w_enqueued = now } t.queue;
    Ok ticket
  end

type expired = { x_ticket : int; x_session : int; x_waited : float }

let expire t ~now =
  let rec drain acc =
    match Queue.peek_opt t.queue with
    | Some w when now -. w.w_enqueued > t.cfg.request_timeout ->
      ignore (Queue.pop t.queue);
      t.expired_total <- t.expired_total + 1;
      drain ({ x_ticket = w.w_ticket; x_session = w.w_session; x_waited = now -. w.w_enqueued } :: acc)
    | _ -> List.rev acc
  in
  drain []

let expired_total t = t.expired_total

let take t ~now =
  match Queue.take_opt t.queue with
  | None -> None
  | Some w -> Some (w.w_ticket, w.w_session, now -. w.w_enqueued)
