(** Service chaos campaign: churn cells × seeds, with safety roll-up.

    Mirrors {!Renaming_faults.Campaign} one level up the stack: instead
    of schedules over a single algorithm run, each cell here is a full
    closed-loop churn simulation ({!Churn}) against the lease service,
    and the safety property is lease-safety (no double grant, fencing
    holds, capacity bound respected) as enforced by the in-run
    {!Audit} mirror.

    The default spec sweeps four degradation regimes — utilization
    shedding, queue-only admission, correlated crash bursts, Zipf-hot
    churn — at crash rates of 25–35%, totalling over 10^6 client
    sessions. *)

type cell = { cell_name : string; cell_cfg : Churn.config }

type spec = { cells : cell list; seeds : int64 array }

val default_spec : ?sessions_per_cell:int -> ?seeds:int64 array -> unit -> spec
(** [sessions_per_cell] defaults to 150_000 (×4 cells ×2 seeds ≥ 10^6
    sessions); pass something small for smoke runs. *)

type cell_result = { cr_name : string; cr_seed : int64; cr_summary : Churn.summary }

type summary = {
  results : cell_result list;
  total_sessions : int;
  total_grants : int;
  total_reclaims : int;
  total_sheds : int;
  total_expired_requests : int;
  total_stale_ops : int;
  total_stale_rejected : int;
  total_crashes : int;
  total_abandoned : int;
  total_violations : int;  (** audit violations across runs — must be 0 *)
  total_livelocks : int;  (** runs cut off by the event guard — must be 0 *)
  total_unexpected_fenced : int;
  total_audit_near_misses : int;  (** stale ops the audit mirrors saw correctly fenced *)
}

val run :
  ?progress:(done_:int -> total:int -> unit) ->
  ?obs:Renaming_obs.Obs.t ->
  spec ->
  summary

val to_json : summary -> string
(** Schema ["renaming.chaos-service/1"]: campaign totals, then one
    object per (cell, seed) run with its counters and the
    reclaim-lateness / queue-wait / probe / lease-lifetime
    histograms. *)

val pp : Format.formatter -> summary -> unit
