type 'a entry = { e_time : float; e_seq : int; e_value : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { data = [||]; size = 0; next_seq = 0 }

let less a b = a.e_time < b.e_time || (a.e_time = b.e_time && a.e_seq < b.e_seq)

let grow t entry =
  let cap = Array.length t.data in
  if t.size = cap then begin
    let ncap = max 16 (2 * cap) in
    let data = Array.make ncap entry in
    Array.blit t.data 0 data 0 t.size;
    t.data <- data
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less t.data.(i) t.data.(parent) then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(parent);
      t.data.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && less t.data.(l) t.data.(!smallest) then smallest := l;
  if r < t.size && less t.data.(r) t.data.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(!smallest);
    t.data.(!smallest) <- tmp;
    sift_down t !smallest
  end

let push t ~time value =
  let entry = { e_time = time; e_seq = t.next_seq; e_value = value } in
  t.next_seq <- t.next_seq + 1;
  grow t entry;
  t.data.(t.size) <- entry;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      sift_down t 0
    end;
    Some (top.e_time, top.e_value)
  end

let peek_time t = if t.size = 0 then None else Some t.data.(0).e_time

let size t = t.size

let is_empty t = t.size = 0

let compact t ~live =
  let j = ref 0 in
  for i = 0 to t.size - 1 do
    let e = t.data.(i) in
    if live ~time:e.e_time e.e_value then begin
      t.data.(!j) <- e;
      incr j
    end
  done;
  t.size <- !j;
  (* Floyd heapify: surviving entries keep their (time, seq) keys, so
     their relative pop order is unchanged. *)
  for i = (t.size / 2) - 1 downto 0 do
    sift_down t i
  done;
  (* Release the dead tail so week-long churn stays bounded. *)
  let cap = Array.length t.data in
  if cap > 16 && t.size * 4 < cap then begin
    let ncap = max 16 (2 * t.size) in
    let data = Array.sub t.data 0 ncap in
    t.data <- data
  end
