module Program = Renaming_sched.Program
module Executor = Renaming_sched.Executor
module Memory = Renaming_sched.Memory
module Retry = Renaming_faults.Retry
open Program.Syntax

let max_epoch = 2
let width = 2

(* Aux layout: per epoch [e], [width] grant locks then [width] settle
   locks; after those, one transfer-freedom flag per name.  Word 0 is
   the slice-epoch register. *)
let grant_lock e k = (2 * width * e) + k
let settle_lock e k = (2 * width * e) + width + k
let free_flag k = (2 * width * max_epoch) + k

let read_epoch =
  let* v = Program.read_word 0 in
  Program.return (max 0 (min v (max_epoch - 1)))

(* A grantor routed by the slice epoch.  At the old epoch it is the
   classic claim: grant lock, hold window, settle-lock commit.  At the
   new epoch it may grant a name only if the taker's fence proved the
   name transferred free (the flag is set-once and only ever set after
   the taker won the old epoch's settle lock, so reading it is safe —
   a set flag can never coexist with an old-epoch commit). *)
let rec grantor ~name ~tries =
  if tries <= 0 then Program.return None
  else
    let* e = read_epoch in
    if e = 0 then
      let* won = Retry.tas_aux (grant_lock 0 name) in
      if not won then grantor ~name ~tries:(tries - 1)
      else
        (* Hold window: one observable step between grant and commit, so
           the adversary can interleave the slice taker here. *)
        let* _ = Retry.read_aux (grant_lock 0 name) in
        let* committed = Retry.tas_aux (settle_lock 0 name) in
        if committed then Program.return (Some name) else grantor ~name ~tries:(tries - 1)
    else
      let* free = Retry.read_aux (free_flag name) in
      if not free then Program.return None
      else
        let* won = Retry.tas_aux (grant_lock 1 name) in
        if not won then grantor ~name ~tries:(tries - 1)
        else
          let* _ = Retry.read_aux (grant_lock 1 name) in
          let* committed = Retry.tas_aux (settle_lock 1 name) in
          if committed then Program.return (Some name)
          else grantor ~name ~tries:(tries - 1)

let owner = grantor ~name:0 ~tries:1

(* The slice taker: fence every slot of the old epoch — the settle-lock
   TAS per name; winning means that name was never committed at epoch 0
   and transfers free (publish the flag), losing means a live lease
   transfers and must never be regranted — then bump the slice epoch
   and regrant name 0 through the normal new-epoch path. *)
let fence_slot k =
  let* won = Retry.tas_aux (settle_lock 0 k) in
  if won then
    let* _ = Retry.tas_aux (free_flag k) in
    Program.return won
  else Program.return won

let taker =
  let* _ = fence_slot 0 in
  let* _ = fence_slot 1 in
  let* () = Program.write_word ~idx:0 ~value:1 in
  grantor ~name:0 ~tries:1

(* Mutant: the taker *reads* the old epoch's settle lock instead of
   TASing it — the slice is handed to the next epoch without actually
   fencing the old one.  An owner caught in its hold window can still
   commit at epoch 0 while the published flag lets the new epoch
   regrant the same name: two processes return name 0.  The leading
   yields let fair round-robin land the owner's commit before the
   taker's validation read, so the baseline schedule is clean and the
   bug needs a genuine preemption of the owner inside its hold
   window. *)
let rec park k = if k = 0 then Program.return () else Program.bind Program.yield (fun () -> park (k - 1))

let unfenced_fence_slot k =
  let* settled = Retry.read_aux (settle_lock 0 k) in
  if not settled then
    let* _ = Retry.tas_aux (free_flag k) in
    Program.return true
  else Program.return false

let unfenced_taker =
  let* () = park 4 in
  let* _ = unfenced_fence_slot 0 in
  let* _ = unfenced_fence_slot 1 in
  let* () = Program.write_word ~idx:0 ~value:1 in
  grantor ~name:0 ~tries:1

let build ~taker:take ~n =
  if n < 2 then invalid_arg "Shard_handoff.instance: n must be >= 2";
  let memory =
    Memory.create ~namespace:width ~aux:((2 * width * max_epoch) + width) ~words:1 ()
  in
  let programs =
    Array.init n (fun pid ->
        if pid = 0 then owner
        else if pid = 1 then take
        else grantor ~name:((pid - 2) mod width) ~tries:2)
  in
  { Executor.memory; programs; label = Printf.sprintf "shard-handoff(n=%d)" n }

let instance ~n ~seed:_ = build ~taker ~n

let instance_unfenced ~n ~seed:_ = build ~taker:unfenced_taker ~n
