module Clock = Renaming_clock.Clock
module Obs = Renaming_obs.Obs
module Metrics = Renaming_obs.Metrics
module Hist = Renaming_obs.Hist

type config = { lease : Lease.config; admission : Admission.config }

let make_config ?lease ?admission () =
  let lease = match lease with Some l -> l | None -> Lease.make_config ~capacity:64 () in
  let admission = match admission with Some a -> a | None -> Admission.make_config () in
  { lease; admission }

type stats = {
  mutable grants : int;
  mutable queued : int;
  mutable renews : int;
  mutable releases : int;
  mutable fenced : int;
  mutable sheds_high_water : int;
  mutable sheds_queue_full : int;
  mutable expired_requests : int;
  mutable reclaims : int;
  mutable validates : int;
}

type counters = {
  c_grants : Metrics.counter;
  c_renews : Metrics.counter;
  c_releases : Metrics.counter;
  c_fenced : Metrics.counter;
  c_sheds : Metrics.counter;
  c_expired : Metrics.counter;
  c_deadline : Metrics.counter;
      (* the admission queue's own deadline-miss count, distinct from
         the service-outcome counter so queue-health dashboards need not
         reverse-engineer it from Timed_out completions *)
  c_reclaims : Metrics.counter;
}

type t = {
  cfg : config;
  clock : Clock.t;
  rng : Renaming_rng.Xoshiro.t;
  lease : Lease.t;
  admission : Admission.t;
  audit : Audit.t;
  tap : (now:float -> Audit.event -> unit) option;
  st : stats;
  counters : counters option;
  h_probes : Hist.t;
  h_reclaim : Hist.t;
  h_wait : Hist.t;
  h_lifetime : Hist.t;
}

let centiticks x = if x <= 0. then 0 else int_of_float ((x *. 100.) +. 0.5)

let create ?obs ?tap ~clock ~rng (cfg : config) =
  let lease = Lease.create cfg.lease in
  let hist name = match obs with Some o -> Obs.histogram o name | None -> Hist.create () in
  let counters =
    Option.map
      (fun o ->
        {
          c_grants = Obs.counter o "service/grants";
          c_renews = Obs.counter o "service/renews";
          c_releases = Obs.counter o "service/releases";
          c_fenced = Obs.counter o "service/fenced";
          c_sheds = Obs.counter o "service/sheds";
          c_expired = Obs.counter o "service/expired_requests";
          c_deadline = Obs.counter o "admission/deadline_expired";
          c_reclaims = Obs.counter o "service/reclaims";
        })
      obs
  in
  {
    cfg;
    clock;
    rng;
    lease;
    admission = Admission.create cfg.admission;
    audit = Audit.create ?obs ~capacity:cfg.lease.Lease.capacity ~slots:(Lease.slots lease) ();
    tap;
    st =
      {
        grants = 0;
        queued = 0;
        renews = 0;
        releases = 0;
        fenced = 0;
        sheds_high_water = 0;
        sheds_queue_full = 0;
        expired_requests = 0;
        reclaims = 0;
        validates = 0;
      };
    counters;
    h_probes = hist "service/probes";
    h_reclaim = hist "service/reclaim_lateness";
    h_wait = hist "service/queue_wait";
    h_lifetime = hist "service/lease_lifetime";
  }

let bump t f = match t.counters with Some c -> Metrics.incr (f c) | None -> ()

(* The audit mirror sees every event first (it may raise); the optional
   tap then hears the same stream — the sharded router uses this to feed
   its cross-shard global-uniqueness mirror. *)
let observe t ~now event =
  Audit.observe t.audit ~now event;
  match t.tap with Some f -> f ~now event | None -> ()

let capacity t = t.cfg.lease.Lease.capacity
let ttl t = t.cfg.lease.Lease.ttl

(* Every entry point reclaims first: expiry work is driven by whoever
   touches the service, so no background thread is needed and the
   auditor always sees reclaims before any operation at the same
   instant could observe the freed slot. *)
let reclaim t ~now =
  List.iter
    (fun (r : Lease.reclaimed) ->
      observe t ~now
        (Audit.Reclaimed { fence = r.Lease.r_fence; expired_at = r.Lease.r_expired_at });
      t.st.reclaims <- t.st.reclaims + 1;
      bump t (fun c -> c.c_reclaims);
      Hist.observe t.h_reclaim (centiticks r.Lease.r_lateness))
    (Lease.reclaim_expired t.lease ~now)

(* Callers must ensure [held < capacity]; the lease table then cannot
   refuse (the probe cap falls back to a sweep over a non-full table). *)
let do_grant t ~session ~now =
  match Lease.acquire t.lease ~session ~now ~rng:t.rng with
  | Error `At_capacity -> invalid_arg "Service.do_grant: called at capacity"
  | Ok grant ->
    observe t ~now
      (Audit.Granted { fence = grant.Lease.g_fence; expires = now +. ttl t });
    t.st.grants <- t.st.grants + 1;
    bump t (fun c -> c.c_grants);
    Hist.observe t.h_probes grant.Lease.g_probes;
    grant

type outcome =
  | Granted of Lease.grant
  | Queued of int
  | Shed of Admission.shed_reason

let acquire t ~session =
  let now = Clock.now t.clock in
  reclaim t ~now;
  let util = Lease.utilization t.lease in
  if
    Admission.depth t.admission = 0
    && util < t.cfg.admission.Admission.high_water
    && Lease.held t.lease < capacity t
  then Granted (do_grant t ~session ~now)
  else
    match Admission.offer t.admission ~session ~now ~utilization:util with
    | Error reason ->
      (match reason with
      | Admission.High_water -> t.st.sheds_high_water <- t.st.sheds_high_water + 1
      | Admission.Queue_full -> t.st.sheds_queue_full <- t.st.sheds_queue_full + 1);
      bump t (fun c -> c.c_sheds);
      Shed reason
    | Ok ticket ->
      t.st.queued <- t.st.queued + 1;
      Queued ticket

let renew t ~fence =
  let now = Clock.now t.clock in
  reclaim t ~now;
  let result = Lease.renew t.lease ~fence ~now in
  let accepted = Result.is_ok result in
  let expires = match result with Ok e -> e | Error `Fenced -> 0. in
  observe t ~now (Audit.Renewed { fence; expires; accepted });
  if accepted then begin
    t.st.renews <- t.st.renews + 1;
    bump t (fun c -> c.c_renews)
  end
  else begin
    t.st.fenced <- t.st.fenced + 1;
    bump t (fun c -> c.c_fenced)
  end;
  result

let use t ~fence =
  let now = Clock.now t.clock in
  reclaim t ~now;
  let result = Lease.validate t.lease ~fence in
  let accepted = Result.is_ok result in
  observe t ~now (Audit.Validated { fence; accepted });
  t.st.validates <- t.st.validates + 1;
  if not accepted then begin
    t.st.fenced <- t.st.fenced + 1;
    bump t (fun c -> c.c_fenced)
  end;
  result

let release t ~fence =
  let now = Clock.now t.clock in
  reclaim t ~now;
  let result = Lease.release t.lease ~fence ~now in
  let accepted = Result.is_ok result in
  observe t ~now (Audit.Released { fence; accepted });
  (match result with
  | Ok held_for ->
    t.st.releases <- t.st.releases + 1;
    bump t (fun c -> c.c_releases);
    Hist.observe t.h_lifetime (centiticks held_for)
  | Error `Fenced ->
    t.st.fenced <- t.st.fenced + 1;
    bump t (fun c -> c.c_fenced));
  result

type completion =
  | Done of { ticket : int; session : int; grant : Lease.grant; waited : float }
  | Timed_out of { ticket : int; session : int; waited : float }

let pump t =
  let now = Clock.now t.clock in
  reclaim t ~now;
  let timed_out =
    List.map
      (fun (x : Admission.expired) ->
        t.st.expired_requests <- t.st.expired_requests + 1;
        bump t (fun c -> c.c_expired);
        bump t (fun c -> c.c_deadline);
        Hist.observe t.h_wait (centiticks x.Admission.x_waited);
        Timed_out
          {
            ticket = x.Admission.x_ticket;
            session = x.Admission.x_session;
            waited = x.Admission.x_waited;
          })
      (Admission.expire t.admission ~now)
  in
  let rec drain acc =
    if Lease.held t.lease >= capacity t then List.rev acc
    else
      match Admission.take t.admission ~now with
      | None -> List.rev acc
      | Some (ticket, session, waited) ->
        let grant = do_grant t ~session ~now in
        Hist.observe t.h_wait (centiticks waited);
        drain (Done { ticket; session; grant; waited } :: acc)
  in
  timed_out @ drain []

let stats t = t.st
let held t = Lease.held t.lease
let utilization t = Lease.utilization t.lease
let slots t = Lease.slots t.lease
let queue_depth t = Admission.depth t.admission
let deadline_expired t = Admission.expired_total t.admission
let audit_live t = Audit.live t.audit
let audit_near_misses t = Audit.near_misses t.audit
let audit_violations t = Audit.violations t.audit
let probes_hist t = t.h_probes
let reclaim_lateness_hist t = t.h_reclaim
let queue_wait_hist t = t.h_wait
let lifetime_hist t = t.h_lifetime
