module Clock = Renaming_clock.Clock
module Stream = Renaming_rng.Stream
module Obs = Renaming_obs.Obs
module Metrics = Renaming_obs.Metrics
module Longlived = Renaming_longlived.Longlived

type config = {
  shards : int;
  slices : int;
  slice_capacity : int;
  epsilon : float;
  ttl : float;
  queue_limit : int;
  request_timeout : float;
  high_water : float;
  grace : float;
  hot_util : float;
  cold_util : float;
  auto_rebalance : bool;
}

let make_config ?(shards = 4) ?(slices = 8) ?(slice_capacity = 16) ?(epsilon = 0.5)
    ?(ttl = 10.0) ?(queue_limit = 16) ?(request_timeout = 5.0) ?(high_water = 0.9)
    ?grace ?(hot_util = 0.7) ?(cold_util = 0.55) ?(auto_rebalance = true) () =
  if shards < 2 then invalid_arg "Router.make_config: shards must be >= 2";
  if slices < shards then invalid_arg "Router.make_config: slices must be >= shards";
  if slice_capacity < 1 then invalid_arg "Router.make_config: slice_capacity must be >= 1";
  if ttl <= 0. then invalid_arg "Router.make_config: ttl must be positive";
  let grace = match grace with Some g -> g | None -> 1.5 *. ttl in
  (* Absorbing a dead shard's slice before every lease it could have
     issued has expired would regrant live names: the grace period is
     the safety argument, so it is a hard config invariant. *)
  if grace < ttl then invalid_arg "Router.make_config: grace must be >= ttl";
  {
    shards;
    slices;
    slice_capacity;
    epsilon;
    ttl;
    queue_limit;
    request_timeout;
    high_water;
    grace;
    hot_util;
    cold_util;
    auto_rebalance;
  }

(* The slice-ownership directory entry: the single source of truth for
   who serves a slice.  Epochs are bumped on *every* ownership
   transition (handoff completion, abort, adoption), so a body whose
   recorded epoch does not match the directory is stale and unreachable. *)
type entry =
  | Owned of { shard : int; epoch : int }
  | In_transit of { from_ : int; to_ : int; epoch : int; since : float }
  | Orphaned of { last : int; epoch : int; since : float }

(* Cross-shard mirror of global name ownership, fed by every slice
   service's audit tap.  Independent of the lease tables and of the
   per-slice auditors: it is the only component that can see two shards
   both granting the same global name. *)
module Gaudit = struct
  type t = {
    width : int;
    grace : float;
    holders : int array;  (* global slot -> session, -1 when free *)
    mutable violations : int;
    mutable absorbs : int;
  }

  let create ~slices ~width ~grace =
    { width; grace; holders = Array.make (slices * width) (-1); violations = 0; absorbs = 0 }

  let fail g ~kind fmt =
    Printf.ksprintf
      (fun message ->
        g.violations <- g.violations + 1;
        raise (Audit.Violation { kind; message }))
      fmt

  let on_event g ~slice (ev : Audit.event) =
    let idx (f : Lease.fence) = (slice * g.width) + f.Lease.f_name in
    match ev with
    | Audit.Granted { fence; _ } ->
      let i = idx fence in
      if g.holders.(i) >= 0 then
        fail g ~kind:"global-double-grant"
          "slice %d name %d granted to session %d while session %d holds it globally"
          slice fence.Lease.f_name fence.Lease.f_session g.holders.(i)
      else g.holders.(i) <- fence.Lease.f_session
    | Audit.Released { fence; accepted = true } ->
      g.holders.(idx fence) <- -1
    | Audit.Reclaimed { fence; _ } -> g.holders.(idx fence) <- -1
    | Audit.Renewed _ | Audit.Validated _ | Audit.Released { accepted = false; _ } -> ()

  (* Clearing a slice's global slots is only sound once every lease the
     lost body could have issued has expired — the absorb-after-expiry
     rule, enforced here so a too-eager router is itself a violation. *)
  let absorb g ~slice ~now ~since =
    if now -. since < g.grace then
      fail g ~kind:"early-absorb"
        "slice %d absorbed %.3f after orphaning; grace is %.3f" slice (now -. since)
        g.grace;
    for k = slice * g.width to ((slice + 1) * g.width) - 1 do
      g.holders.(k) <- -1
    done;
    g.absorbs <- g.absorbs + 1

  let live g =
    Array.fold_left (fun acc h -> if h >= 0 then acc + 1 else acc) 0 g.holders
end

type stats = {
  mutable handoffs_started : int;
  mutable handoffs_completed : int;
  mutable handoffs_aborted : int;
  mutable handoffs_orphaned : int;
  mutable adoptions : int;
  mutable redirects : int;
  mutable shard_downs : int;
  mutable in_handoff_busy : int;
  mutable fenced_ops : int;
}

(* {2 Failure detection}

   With a detector enabled the router stops consulting shard status
   directly for routing: a shard is available iff its last heartbeat is
   within [suspicion].  Suspicion is conservative in the safe direction
   — a falsely suspected shard merely goes dark (availability loss)
   until its heartbeats resume, at which point any slices orphaned in
   the meantime are handed back intact (same epoch, leases alive)
   provided they have not been adopted yet.  A heartbeat carrying a
   {e higher incarnation} proves the shard restarted amnesiac: every
   slice the directory still maps to it is orphaned from the last
   heartbeat of the dead incarnation (the latest instant its leases
   could still have been renewed, up to the delivery bound the caller
   accounts for in [grace]). *)

type detector_stats = {
  mutable suspicions : int;
  mutable recoveries : int;  (** suspicions cleared by a late heartbeat *)
  mutable reowns : int;  (** orphaned slices handed back on recovery *)
  mutable incarnation_orphans : int;  (** slices orphaned by a restart heartbeat *)
}

type detector = {
  d_suspicion : float;
  d_last : float array;  (* shard -> last heartbeat arrival *)
  d_incarnation : int array;
  d_flag : bool array;  (* suspicion edge state, for counting + re-own *)
  d_st : detector_stats;
}

type counters = {
  c_redirects : Metrics.counter;
  c_shard_down : Metrics.counter;
  c_handoffs : Metrics.counter;
  c_adoptions : Metrics.counter;
}

(* External observation of the audit-relevant surface: every per-slice
   audit event (after the global mirror has accepted it) plus every
   slice absorb.  The refinement harness's cross-backend checker rides
   this; clean handoffs move slice bodies intact and are deliberately
   invisible here. *)
type tap_event =
  | Tap_audit of { slice : int; now : float; ev : Audit.event }
  | Tap_absorb of { slice : int; now : float }

type t = {
  cfg : config;
  clock : Clock.t;
  stream : Stream.t;
  shards : Shard.t array;
  dir : entry array;
  gaudit : Gaudit.t;
  slice_width : int;
  st : stats;
  obs : Obs.t option;
  counters : counters option;
  tap : (tap_event -> unit) option;
  mutable fd : detector option;
}

let bump t f = match t.counters with Some c -> Metrics.incr (f c) | None -> ()

let slice_service t ~slice ~epoch =
  let rng =
    Stream.fork_named t.stream ~name:(Printf.sprintf "slice-%d-epoch-%d" slice epoch)
  in
  let lease =
    Lease.make_config ~epsilon:t.cfg.epsilon ~ttl:t.cfg.ttl ~capacity:t.cfg.slice_capacity
      ()
  in
  let admission =
    Admission.make_config ~queue_limit:t.cfg.queue_limit
      ~request_timeout:t.cfg.request_timeout ~high_water:t.cfg.high_water ()
  in
  Service.create ?obs:t.obs
    ~tap:(fun ~now ev ->
      Gaudit.on_event t.gaudit ~slice ev;
      match t.tap with Some f -> f (Tap_audit { slice; now; ev }) | None -> ())
    ~clock:t.clock ~rng
    { Service.lease; admission }

let create ?obs ?tap ~clock ~seed cfg =
  let slice_width = Longlived.namespace_for ~sessions:cfg.slice_capacity ~epsilon:cfg.epsilon in
  let counters =
    Option.map
      (fun o ->
        {
          c_redirects = Obs.counter o "router/redirects";
          c_shard_down = Obs.counter o "router/shard_down";
          c_handoffs = Obs.counter o "router/handoffs";
          c_adoptions = Obs.counter o "router/adoptions";
        })
      obs
  in
  let t =
    {
      cfg;
      clock;
      stream = Stream.create seed;
      shards = Array.init cfg.shards (fun id -> Shard.create ~id);
      dir = Array.make cfg.slices (Owned { shard = 0; epoch = 0 });
      gaudit = Gaudit.create ~slices:cfg.slices ~width:slice_width ~grace:cfg.grace;
      slice_width;
      st =
        {
          handoffs_started = 0;
          handoffs_completed = 0;
          handoffs_aborted = 0;
          handoffs_orphaned = 0;
          adoptions = 0;
          redirects = 0;
          shard_downs = 0;
          in_handoff_busy = 0;
          fenced_ops = 0;
        };
      obs;
      counters;
      tap;
      fd = None;
    }
  in
  (* Initial placement: contiguous slice ranges per shard, so a Zipf-hot
     key range lands on one shard and rebalancing has work to do. *)
  for slice = 0 to cfg.slices - 1 do
    let shard = slice * cfg.shards / cfg.slices in
    t.dir.(slice) <- Owned { shard; epoch = 0 };
    Shard.attach t.shards.(shard)
      { Shard.sl_id = slice; sl_epoch = 0; sl_svc = slice_service t ~slice ~epoch:0 }
  done;
  t

let slices t = t.cfg.slices
let slice_width t = t.slice_width
let stats t = t.st
let shard t ~id = t.shards.(id)

let slice_of_key t ~key =
  let m = key mod t.cfg.slices in
  if m < 0 then m + t.cfg.slices else m

let owner t ~slice =
  match t.dir.(slice) with Owned { shard; _ } -> Some shard | _ -> None

let slice_epoch t ~slice =
  match t.dir.(slice) with
  | Owned { epoch; _ } | In_transit { epoch; _ } | Orphaned { epoch; _ } -> epoch

let in_transit t =
  let acc = ref [] in
  Array.iteri
    (fun slice entry ->
      match entry with
      | In_transit { from_; to_; _ } -> acc := (slice, from_, to_) :: !acc
      | _ -> ())
    t.dir;
  List.rev !acc

let alive_shards t ~now =
  Array.fold_left (fun acc sh -> if Shard.alive sh ~now then acc + 1 else acc) 0 t.shards

let total_held t = Array.fold_left (fun acc sh -> acc + Shard.held sh) 0 t.shards

let audit_near_misses t =
  Array.fold_left
    (fun acc sh ->
      List.fold_left
        (fun acc (sl : Shard.slice) -> acc + Service.audit_near_misses sl.Shard.sl_svc)
        acc (Shard.slices sh))
    0 t.shards

let gaudit_violations t = t.gaudit.Gaudit.violations
let gaudit_live t = Gaudit.live t.gaudit

(* Routing availability: the detector's view when one is enabled (the
   router then has no direct knowledge of shard status), the shard's
   actual status otherwise. *)
let shard_available t ~shard ~now =
  match t.fd with
  | None -> Shard.alive t.shards.(shard) ~now
  | Some d -> now -. d.d_last.(shard) <= d.d_suspicion

let orphan_entry t ~slice ~last ~epoch ~since =
  t.dir.(slice) <- Orphaned { last; epoch; since }

let enable_detector t ~suspicion =
  if suspicion <= 0. then invalid_arg "Router.enable_detector: suspicion must be > 0";
  let now = Clock.now t.clock in
  t.fd <-
    Some
      {
        d_suspicion = suspicion;
        d_last = Array.make t.cfg.shards now;
        d_incarnation = Array.make t.cfg.shards 0;
        d_flag = Array.make t.cfg.shards false;
        d_st = { suspicions = 0; recoveries = 0; reowns = 0; incarnation_orphans = 0 };
      }

let detector_stats t = Option.map (fun d -> d.d_st) t.fd
let suspected t ~shard = match t.fd with Some d -> d.d_flag.(shard) | None -> false

(* Orphan every slice the directory maps to [shard], from [since]; a
   slice in transit *from* it is orphaned from the earlier of the two
   timestamps so the grace clock never restarts in the slice's favour. *)
let orphan_mapped t ~shard ~since =
  let n = ref 0 in
  Array.iteri
    (fun slice entry ->
      match entry with
      | Owned { shard = s; epoch } when s = shard ->
        orphan_entry t ~slice ~last:shard ~epoch ~since;
        incr n
      | In_transit { from_; epoch; since = hs; _ } when from_ = shard ->
        orphan_entry t ~slice ~last:shard ~epoch ~since:(min since hs);
        t.st.handoffs_orphaned <- t.st.handoffs_orphaned + 1;
        incr n
      | _ -> ())
    t.dir;
  !n

let heartbeat t ~shard ~incarnation =
  match t.fd with
  | None -> ()
  | Some d ->
    let now = Clock.now t.clock in
    if incarnation > d.d_incarnation.(shard) then begin
      (* Restarted amnesiac: everything it owned died with the previous
         incarnation.  Orphan from that incarnation's last heartbeat —
         the latest instant the router can prove it still served. *)
      d.d_st.incarnation_orphans <-
        d.d_st.incarnation_orphans + orphan_mapped t ~shard ~since:d.d_last.(shard);
      d.d_incarnation.(shard) <- incarnation
    end;
    d.d_last.(shard) <- now;
    if d.d_flag.(shard) then begin
      d.d_flag.(shard) <- false;
      d.d_st.recoveries <- d.d_st.recoveries + 1;
      (* False suspicion healed: hand back any slice orphaned under it
         whose body survived at the directory epoch.  Nothing served the
         slice while orphaned (resolution refuses), so same-epoch
         re-ownership resumes service with every lease intact. *)
      Array.iteri
        (fun slice entry ->
          match entry with
          | Orphaned { last; epoch; _ }
            when last = shard && Shard.alive t.shards.(shard) ~now -> (
            match Shard.find_slice t.shards.(shard) ~slice with
            | Some sl when sl.Shard.sl_epoch = epoch ->
              t.dir.(slice) <- Owned { shard; epoch };
              d.d_st.reowns <- d.d_st.reowns + 1
            | _ -> ())
          | _ -> ())
        t.dir
    end

(* Suspicion sweep (from {!pump}): flag shards whose heartbeats went
   quiet and orphan their slices.  The orphan clock starts at
   [last + suspicion] — the instant routing stopped forwarding renews —
   so adoption after [grace] is safe provided
   [grace >= ttl + max in-flight delay] (callers enforce the stronger
   network-aware bound; docs/fault_model.md §8). *)
let detector_sweep t ~now =
  match t.fd with
  | None -> ()
  | Some d ->
    Array.iteri
      (fun shard last ->
        if (not d.d_flag.(shard)) && now -. last > d.d_suspicion then begin
          d.d_flag.(shard) <- true;
          d.d_st.suspicions <- d.d_st.suspicions + 1;
          ignore (orphan_mapped t ~shard ~since:(last +. d.d_suspicion))
        end)
      d.d_last

(* {2 Routing} *)

type busy =
  | Shard_down of { shard : int }
  | In_handoff of { slice : int }
  | Redirected of { shard : int }

type sgrant = { sg_slice : int; sg_shard : int; sg_epoch : int; sg_grant : Lease.grant }

type gfence = { gf_slice : int; gf_fence : Lease.fence }

let fence_of_grant g = { gf_slice = g.sg_slice; gf_fence = g.sg_grant.Lease.g_fence }

type outcome =
  | Granted of sgrant
  | Queued of { slice : int; shard : int; ticket : int }
  | Shed of Admission.shed_reason
  | Busy of busy

(* Directory + detector view only — what a real router can know without
   reaching into a shard's memory.  The network path forwards on this
   and lets the shard itself refuse epoch-mismatched or missing bodies
   at delivery time. *)
let route t ~slice =
  let now = Clock.now t.clock in
  match t.dir.(slice) with
  | In_transit _ -> Error (In_handoff { slice })
  | Orphaned { last; _ } -> Error (Shard_down { shard = last })
  | Owned { shard; epoch } ->
    if shard_available t ~shard ~now then Ok (shard, epoch)
    else Error (Shard_down { shard })

let resolve t ~slice ~now =
  match t.dir.(slice) with
  | In_transit _ -> Error (In_handoff { slice })
  | Orphaned { last; _ } -> Error (Shard_down { shard = last })
  | Owned { shard; epoch } -> (
    let sh = t.shards.(shard) in
    if not (shard_available t ~shard ~now) then Error (Shard_down { shard })
    else
      match Shard.find_slice sh ~slice with
      | Some sl when sl.Shard.sl_epoch = epoch -> Ok (shard, epoch, sl)
      | _ -> Error (Shard_down { shard }))

let count_busy t busy =
  (match busy with
  | Shard_down _ ->
    t.st.shard_downs <- t.st.shard_downs + 1;
    bump t (fun c -> c.c_shard_down)
  | In_handoff _ -> t.st.in_handoff_busy <- t.st.in_handoff_busy + 1
  | Redirected _ ->
    t.st.redirects <- t.st.redirects + 1;
    bump t (fun c -> c.c_redirects));
  busy

let acquire ?hint t ~session ~key =
  let now = Clock.now t.clock in
  let slice = slice_of_key t ~key in
  match t.dir.(slice) with
  | Owned { shard; _ } when (match hint with Some h -> h <> shard | None -> false) ->
    Busy (count_busy t (Redirected { shard }))
  | _ -> (
    match resolve t ~slice ~now with
    | Error busy -> Busy (count_busy t busy)
    | Ok (shard, epoch, sl) -> (
      match Service.acquire sl.Shard.sl_svc ~session with
      | Service.Granted grant ->
        Granted { sg_slice = slice; sg_shard = shard; sg_epoch = epoch; sg_grant = grant }
      | Service.Queued ticket -> Queued { slice; shard; ticket }
      | Service.Shed reason -> Shed reason))

let fenced_op t ~fence f =
  let now = Clock.now t.clock in
  match resolve t ~slice:fence.gf_slice ~now with
  | Error busy -> Error (`Busy (count_busy t busy))
  | Ok (_, _, sl) -> (
    match f sl.Shard.sl_svc ~fence:fence.gf_fence with
    | Ok v -> Ok v
    | Error `Fenced ->
      t.st.fenced_ops <- t.st.fenced_ops + 1;
      Error `Fenced)

let renew t ~fence = fenced_op t ~fence Service.renew
let use t ~fence = fenced_op t ~fence Service.use
let release t ~fence = fenced_op t ~fence Service.release

(* {2 Fault injection} *)

let crash_shard t ~id =
  let now = Clock.now t.clock in
  Shard.crash t.shards.(id) ~now;
  Array.iteri
    (fun slice entry ->
      match entry with
      | Owned { shard; epoch } when shard = id ->
        orphan_entry t ~slice ~last:id ~epoch ~since:now
      | _ -> ())
    t.dir

let restart_shard t ~id = Shard.restart t.shards.(id)

let stall_shard t ~id ~until =
  let now = Clock.now t.clock in
  Shard.stall t.shards.(id) ~now ~until

(* {2 Ownership handoff} *)

let begin_handoff t ~slice ~to_ =
  let now = Clock.now t.clock in
  match t.dir.(slice) with
  | Owned { shard = from_; epoch }
    when from_ <> to_
         && Shard.alive t.shards.(from_) ~now
         && Shard.alive t.shards.(to_) ~now
         && Shard.find_slice t.shards.(from_) ~slice <> None ->
    t.dir.(slice) <- In_transit { from_; to_; epoch; since = now };
    t.st.handoffs_started <- t.st.handoffs_started + 1;
    bump t (fun c -> c.c_handoffs);
    Ok ()
  | _ -> Error `Unavailable

let shard_util t sh =
  Shard.utilization sh ~slice_capacity:t.cfg.slice_capacity

(* Least-loaded available shard, lowest id on ties; [except] excludes a
   shard (the handoff source).  Availability is the detector's view when
   one is enabled, and the shard must also actually be alive — the
   adopting shard acks the adoption in a real deployment, so a crashed
   shard that still looks available never receives slices. *)
let coldest_alive t ~now ?except () =
  let best = ref None in
  Array.iter
    (fun sh ->
      if
        Shard.alive sh ~now
        && shard_available t ~shard:(Shard.id sh) ~now
        && (match except with Some e -> Shard.id sh <> e | None -> true)
      then
        let u = shard_util t sh in
        match !best with
        | Some (bu, _) when bu <= u -> ()
        | _ -> best := Some (u, Shard.id sh))
    t.shards;
  !best

let maybe_rebalance t ~now =
  if t.cfg.auto_rebalance && in_transit t = [] then begin
    let hot = ref None in
    Array.iter
      (fun sh ->
        if Shard.alive sh ~now && Shard.slices sh <> [] then
          let u = shard_util t sh in
          match !hot with
          | Some (hu, _) when hu >= u -> ()
          | _ -> hot := Some (u, Shard.id sh))
      t.shards;
    match !hot with
    | Some (hu, hot_id) when hu >= t.cfg.hot_util -> (
      match coldest_alive t ~now ~except:hot_id () with
      | Some (cu, cold_id) when cu <= t.cfg.cold_util ->
        (* Move the hot shard's most-held slice: load follows the slice. *)
        let busiest =
          List.fold_left
            (fun acc (sl : Shard.slice) ->
              let h = Service.held sl.Shard.sl_svc in
              match acc with Some (bh, _) when bh >= h -> acc | _ -> Some (h, sl.Shard.sl_id))
            None
            (Shard.slices t.shards.(hot_id))
        in
        (match busiest with
        | Some (_, slice) -> ignore (begin_handoff t ~slice ~to_:cold_id)
        | None -> ())
      | _ -> ())
    | _ -> ()
  end

(* {2 The maintenance + grant pump} *)

type completion = { c_slice : int; c_shard : int; c_done : Service.completion }

let validate_bodies t ~now =
  Array.iter
    (fun sh ->
      if Shard.alive sh ~now then
        List.iter
          (fun (sl : Shard.slice) ->
            let stale =
              match t.dir.(sl.Shard.sl_id) with
              | Owned { shard; epoch } ->
                shard <> Shard.id sh || epoch <> sl.Shard.sl_epoch
              | In_transit { from_; epoch; _ } ->
                from_ <> Shard.id sh || epoch <> sl.Shard.sl_epoch
              | Orphaned { last; epoch; _ } ->
                (* Under a failure detector an orphan may be a false
                   suspicion: the surviving body is kept so recovery can
                   re-own it.  Adoption bumps the epoch, which turns the
                   body stale here the moment the slice is re-served. *)
                (match t.fd with
                | None -> true
                | Some _ -> last <> Shard.id sh || epoch <> sl.Shard.sl_epoch)
            in
            if stale then Shard.drop sh ~slice:sl.Shard.sl_id)
          (Shard.slices sh))
    t.shards

let step_transits t ~now =
  Array.iteri
    (fun slice entry ->
      match entry with
      | In_transit { from_; to_; epoch; since } -> (
        let src = t.shards.(from_) and dst = t.shards.(to_) in
        match (Shard.status src ~now, Shard.status dst ~now) with
        | Shard.Crashed { since = c }, _ ->
          (* Source died mid-handoff, taking the body with it.  The
             slice is orphaned from the *earlier* of the two events so
             the grace clock never restarts in the slice's favour. *)
          orphan_entry t ~slice ~last:from_ ~epoch ~since:(min since c);
          t.st.handoffs_orphaned <- t.st.handoffs_orphaned + 1
        | _, Shard.Crashed _ -> (
          (* Destination died before taking ownership: the source keeps
             the body under a bumped epoch, fencing anything the dead
             destination might have observed about the transfer. *)
          match Shard.find_slice src ~slice with
          | Some sl ->
            sl.Shard.sl_epoch <- epoch + 1;
            t.dir.(slice) <- Owned { shard = from_; epoch = epoch + 1 };
            t.st.handoffs_aborted <- t.st.handoffs_aborted + 1
          | None ->
            orphan_entry t ~slice ~last:from_ ~epoch ~since;
            t.st.handoffs_orphaned <- t.st.handoffs_orphaned + 1)
        | Shard.Stalled { since = s; _ }, _ when now -. s >= t.cfg.grace ->
          orphan_entry t ~slice ~last:from_ ~epoch ~since:s;
          t.st.handoffs_orphaned <- t.st.handoffs_orphaned + 1
        | Shard.Alive, Shard.Alive when now > since -> (
          match Shard.detach src ~slice with
          | Some sl ->
            sl.Shard.sl_epoch <- epoch + 1;
            Shard.attach dst sl;
            t.dir.(slice) <- Owned { shard = to_; epoch = epoch + 1 };
            t.st.handoffs_completed <- t.st.handoffs_completed + 1
          | None ->
            orphan_entry t ~slice ~last:from_ ~epoch ~since;
            t.st.handoffs_orphaned <- t.st.handoffs_orphaned + 1)
        | _ -> ())
      | _ -> ())
    t.dir

let orphan_stalled t ~now =
  (* With a detector enabled the router cannot see stalls directly: a
     stalled shard simply stops heartbeating and {!detector_sweep}
     orphans it from the (later, still-safe) suspicion instant. *)
  if t.fd = None then
  Array.iter
    (fun sh ->
      match Shard.status sh ~now with
      | Shard.Stalled { since; _ } when now -. since >= t.cfg.grace ->
        Array.iteri
          (fun slice entry ->
            match entry with
            | Owned { shard; epoch } when shard = Shard.id sh ->
              (* Orphan from the stall start: leases could last have
                 been renewed then, so the grace clock must too. *)
              orphan_entry t ~slice ~last:shard ~epoch ~since
            | _ -> ())
          t.dir
      | _ -> ())
    t.shards

let adopt_orphans t ~now =
  Array.iteri
    (fun slice entry ->
      match entry with
      | Orphaned { last = _; epoch; since } when now -. since >= t.cfg.grace -> (
        match coldest_alive t ~now () with
        | None -> ()  (* nobody left: the slice stays dark, never unsafe *)
        | Some (_, adopter) ->
          Gaudit.absorb t.gaudit ~slice ~now ~since;
          (match t.tap with Some f -> f (Tap_absorb { slice; now }) | None -> ());
          let sl =
            {
              Shard.sl_id = slice;
              sl_epoch = epoch + 1;
              sl_svc = slice_service t ~slice ~epoch:(epoch + 1);
            }
          in
          Shard.attach t.shards.(adopter) sl;
          t.dir.(slice) <- Owned { shard = adopter; epoch = epoch + 1 };
          t.st.adoptions <- t.st.adoptions + 1;
          bump t (fun c -> c.c_adoptions))
      | _ -> ())
    t.dir

let pump t =
  let now = Clock.now t.clock in
  detector_sweep t ~now;
  orphan_stalled t ~now;
  step_transits t ~now;
  validate_bodies t ~now;
  adopt_orphans t ~now;
  maybe_rebalance t ~now;
  let completions = ref [] in
  Array.iteri
    (fun slice entry ->
      match entry with
      | Owned { shard; epoch } when Shard.alive t.shards.(shard) ~now -> (
        match Shard.find_slice t.shards.(shard) ~slice with
        | Some sl when sl.Shard.sl_epoch = epoch ->
          List.iter
            (fun d -> completions := { c_slice = slice; c_shard = shard; c_done = d } :: !completions)
            (Service.pump sl.Shard.sl_svc)
        | _ -> ())
      | _ -> ())
    t.dir;
  List.rev !completions
