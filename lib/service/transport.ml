module Sample = Renaming_rng.Sample

type addr = Client of int | Router | Shard of int

type faults = {
  drop : float;
  duplicate : float;
  delay_min : float;
  delay_max : float;
  reorder : float;
  reorder_extra : float;
}

let make_faults ?(drop = 0.) ?(duplicate = 0.) ?(delay_min = 0.01) ?(delay_max = 0.05)
    ?(reorder = 0.) ?(reorder_extra = 0.) () =
  let prob name p =
    if p < 0. || p > 1. then
      invalid_arg (Printf.sprintf "Transport.make_faults: %s must be in [0, 1]" name)
  in
  prob "drop" drop;
  prob "duplicate" duplicate;
  prob "reorder" reorder;
  if delay_min < 0. then invalid_arg "Transport.make_faults: delay_min must be >= 0";
  if delay_max < delay_min then
    invalid_arg "Transport.make_faults: delay_max must be >= delay_min";
  if reorder_extra < 0. then
    invalid_arg "Transport.make_faults: reorder_extra must be >= 0";
  { drop; duplicate; delay_min; delay_max; reorder; reorder_extra }

let perfect =
  { drop = 0.; duplicate = 0.; delay_min = 0.; delay_max = 0.; reorder = 0.;
    reorder_extra = 0. }

type stats = {
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable duplicated : int;
  mutable reordered : int;
  mutable blocked : int;
}

type 'a msg = { m_src : addr; m_dst : addr; m_payload : 'a }

type 'a t = {
  faults : faults;
  rng : Renaming_rng.Xoshiro.t;
  flight : 'a msg Heap.t;
  mutable partitions : (addr * addr * float) list;
  st : stats;
}

let create ?(faults = perfect) ~rng () =
  {
    faults;
    rng;
    flight = Heap.create ();
    partitions = [];
    st =
      { sent = 0; delivered = 0; dropped = 0; duplicated = 0; reordered = 0; blocked = 0 };
  }

let max_delay t = t.faults.delay_max +. t.faults.reorder_extra

let partition t ~src ~dst ~until =
  t.partitions <-
    (src, dst, until) :: List.filter (fun (s, d, _) -> (s, d) <> (src, dst)) t.partitions

let heal t ~src ~dst =
  t.partitions <- List.filter (fun (s, d, _) -> (s, d) <> (src, dst)) t.partitions

let partitioned t ~now ~src ~dst =
  List.exists (fun (s, d, until) -> s = src && d = dst && now < until) t.partitions

let sample_delay t =
  let f = t.faults in
  let base = f.delay_min +. (Sample.float_unit t.rng *. (f.delay_max -. f.delay_min)) in
  if f.reorder > 0. && Sample.bernoulli t.rng f.reorder then begin
    t.st.reordered <- t.st.reordered + 1;
    base +. (Sample.float_unit t.rng *. f.reorder_extra)
  end
  else base

let send t ~now ~src ~dst payload =
  if partitioned t ~now ~src ~dst then t.st.blocked <- t.st.blocked + 1
  else if t.faults.drop > 0. && Sample.bernoulli t.rng t.faults.drop then
    t.st.dropped <- t.st.dropped + 1
  else begin
    let msg = { m_src = src; m_dst = dst; m_payload = payload } in
    Heap.push t.flight ~time:(now +. sample_delay t) msg;
    t.st.sent <- t.st.sent + 1;
    if t.faults.duplicate > 0. && Sample.bernoulli t.rng t.faults.duplicate then begin
      Heap.push t.flight ~time:(now +. sample_delay t) msg;
      t.st.duplicated <- t.st.duplicated + 1
    end
  end

let next_delivery t = Heap.peek_time t.flight

let deliver t ~now =
  let rec drain acc =
    match Heap.peek_time t.flight with
    | Some time when time <= now -> (
      match Heap.pop t.flight with
      | Some (_, m) ->
        t.st.delivered <- t.st.delivered + 1;
        drain ((m.m_src, m.m_dst, m.m_payload) :: acc)
      | None -> List.rev acc)
    | _ -> List.rev acc
  in
  drain []

let in_flight t = Heap.size t.flight
let stats t = t.st
