module Json = Renaming_obs.Json

type cell = { cell_name : string; cell_cfg : Shard_churn.config }

type spec = { cells : cell list; seeds : int64 array }

let default_spec ?(sessions_per_cell = 60_000) ?(seeds = [| 0x5EED_2015L; 0xC0FFEEL |])
    () =
  let base = Shard_churn.make_config ~sessions_target:sessions_per_cell in
  let router = Router.make_config in
  {
    seeds;
    cells =
      [
        (* Zipf skew concentrates the hot slices on shard 0; the
           auto-rebalancer must move slices off it, and every clean
           handoff must keep live leases alive (unexpected_fenced = 0). *)
        {
          cell_name = "hot-rebalance";
          cell_cfg =
            base ~zipf_s:1.4 ~mean_think:1.5 ~crash_rate:0.1
              ~router:(router ~auto_rebalance:true ~hot_util:0.55 ~cold_util:0.45 ())
              ();
        };
        (* Correlated shard crashes: half the fleet dies inside a short
           window; survivors absorb the orphaned slices after grace and
           the doomed leases come back only as expected fences.  Holds
           longer than the grace keep victims renewing through the dark
           period so they actually observe the (expected) fence after
           adoption instead of giving up first. *)
        {
          cell_name = "shard-crash";
          cell_cfg =
            base ~crash_rate:0.15 ~mean_hold:20.0
              ~shard_burst:{ Shard_churn.b_at = 120; b_width = 8; b_failures = 2 }
              ~shard_restart_delay:40.0 ();
        };
        (* Crash-during-handoff: forced slice transfers where source or
           destination dies in the in-transit window.  The epoch fence
           must turn every such crash into an orphan or an abort — never
           a double-served slice. *)
        {
          cell_name = "handoff-crash";
          cell_cfg =
            base ~crash_rate:0.1
              ~handoff:{ Shard_churn.h_every = 12.0; h_crash_src = 0.3; h_crash_dst = 0.2 }
              ~shard_restart_delay:35.0 ();
        };
        (* Stall routing: shards pause in rotation, some stalls shorter
           than the grace (the shard serves again on wake), one cadence
           longer (the router reassigns under it and the woken shard
           must drop its stale bodies). *)
        {
          cell_name = "stall-routing";
          cell_cfg =
            base ~crash_rate:0.1
              ~stall:{ Shard_churn.st_every = 25.0; st_duration = 18.0 }
              ();
        };
      ];
  }

type cell_result = { cr_name : string; cr_seed : int64; cr_summary : Shard_churn.summary }

type summary = {
  results : cell_result list;
  total_sessions : int;
  total_handoffs_started : int;
  total_handoffs_completed : int;
  total_handoffs_aborted : int;
  total_handoffs_orphaned : int;
  total_adoptions : int;
  total_redirects : int;
  total_shard_down_busy : int;
  total_in_handoff_busy : int;
  total_shard_crashes : int;
  total_shard_stalls : int;
  total_expected_fenced : int;
  total_unexpected_fenced : int;
  total_lost_tickets : int;
  total_stale_ops : int;
  total_stale_ok : int;
  total_audit_near_misses : int;
  total_violations : int;
  total_livelocks : int;
}

let summarize results =
  let add f = List.fold_left (fun acc r -> acc + f r.cr_summary) 0 results in
  {
    results;
    total_sessions = add (fun s -> s.Shard_churn.sessions);
    total_handoffs_started =
      add (fun s -> s.Shard_churn.router.Router.handoffs_started);
    total_handoffs_completed =
      add (fun s -> s.Shard_churn.router.Router.handoffs_completed);
    total_handoffs_aborted =
      add (fun s -> s.Shard_churn.router.Router.handoffs_aborted);
    total_handoffs_orphaned =
      add (fun s -> s.Shard_churn.router.Router.handoffs_orphaned);
    total_adoptions = add (fun s -> s.Shard_churn.router.Router.adoptions);
    total_redirects = add (fun s -> s.Shard_churn.redirects);
    total_shard_down_busy = add (fun s -> s.Shard_churn.shard_down_busy);
    total_in_handoff_busy = add (fun s -> s.Shard_churn.in_handoff_busy);
    total_shard_crashes = add (fun s -> s.Shard_churn.shard_crashes);
    total_shard_stalls = add (fun s -> s.Shard_churn.shard_stalls);
    total_expected_fenced = add (fun s -> s.Shard_churn.expected_fenced);
    total_unexpected_fenced = add (fun s -> s.Shard_churn.unexpected_fenced);
    total_lost_tickets = add (fun s -> s.Shard_churn.lost_tickets);
    total_stale_ops = add (fun s -> s.Shard_churn.stale_ops);
    total_stale_ok = add (fun s -> s.Shard_churn.stale_ok);
    total_audit_near_misses = add (fun s -> s.Shard_churn.audit_near_misses);
    total_violations =
      add (fun s ->
          s.Shard_churn.gaudit_violations
          + (match s.Shard_churn.violation with Some _ -> 1 | None -> 0));
    total_livelocks = add (fun s -> if s.Shard_churn.livelocked then 1 else 0);
  }

let run ?progress ?obs spec =
  let total = List.length spec.cells * Array.length spec.seeds in
  let done_ = ref 0 in
  let results =
    List.concat_map
      (fun cell ->
        Array.to_list
          (Array.map
             (fun seed ->
               let summary = Shard_churn.run ?obs cell.cell_cfg ~seed in
               incr done_;
               (match progress with Some f -> f ~done_:!done_ ~total | None -> ());
               { cr_name = cell.cell_name; cr_seed = seed; cr_summary = summary })
             spec.seeds))
      spec.cells
  in
  let summary = summarize results in
  (match obs with
  | Some o ->
    let record name v =
      Renaming_obs.Metrics.add (Renaming_obs.Obs.counter o name) v
    in
    record "chaos_sharded/runs" (List.length results);
    record "chaos_sharded/sessions" summary.total_sessions;
    record "chaos_sharded/handoffs" summary.total_handoffs_started;
    record "chaos_sharded/adoptions" summary.total_adoptions;
    record "chaos_sharded/violations" summary.total_violations;
    record "chaos_sharded/livelocks" summary.total_livelocks
  | None -> ());
  summary

let result_json r =
  let s = r.cr_summary in
  let rt = s.Shard_churn.router in
  Json.Obj
    [
      ("cell", Json.String r.cr_name);
      ("seed", Json.String (Printf.sprintf "0x%Lx" r.cr_seed));
      ("sessions", Json.Int s.Shard_churn.sessions);
      ("events", Json.Int s.Shard_churn.events);
      ("sim_time", Json.Float s.Shard_churn.sim_time);
      ("handoffs_started", Json.Int rt.Router.handoffs_started);
      ("handoffs_completed", Json.Int rt.Router.handoffs_completed);
      ("handoffs_aborted", Json.Int rt.Router.handoffs_aborted);
      ("handoffs_orphaned", Json.Int rt.Router.handoffs_orphaned);
      ("adoptions", Json.Int rt.Router.adoptions);
      ("fenced_ops", Json.Int rt.Router.fenced_ops);
      ("shard_crashes", Json.Int s.Shard_churn.shard_crashes);
      ("shard_restarts", Json.Int s.Shard_churn.shard_restarts);
      ("shard_stalls", Json.Int s.Shard_churn.shard_stalls);
      ("client_crashes", Json.Int s.Shard_churn.client_crashes);
      ("redirects", Json.Int s.Shard_churn.redirects);
      ("shard_down_busy", Json.Int s.Shard_churn.shard_down_busy);
      ("in_handoff_busy", Json.Int s.Shard_churn.in_handoff_busy);
      ("retries", Json.Int s.Shard_churn.retries);
      ("abandoned", Json.Int s.Shard_churn.abandoned);
      ("expected_fenced", Json.Int s.Shard_churn.expected_fenced);
      ("unexpected_fenced", Json.Int s.Shard_churn.unexpected_fenced);
      ("releases_dropped", Json.Int s.Shard_churn.releases_dropped);
      ("lost_tickets", Json.Int s.Shard_churn.lost_tickets);
      ("stale_ops", Json.Int s.Shard_churn.stale_ops);
      ("stale_rejected", Json.Int s.Shard_churn.stale_rejected);
      ("stale_ok", Json.Int s.Shard_churn.stale_ok);
      ("audit_near_misses", Json.Int s.Shard_churn.audit_near_misses);
      ("gaudit_violations", Json.Int s.Shard_churn.gaudit_violations);
      ("gaudit_live", Json.Int s.Shard_churn.gaudit_live);
      ("peak_held", Json.Int s.Shard_churn.peak_held);
      ("final_held", Json.Int s.Shard_churn.final_held);
      ("livelocked", Json.Bool s.Shard_churn.livelocked);
      ( "violation",
        match s.Shard_churn.violation with
        | None -> Json.Null
        | Some (kind, message) ->
          Json.Obj [ ("kind", Json.String kind); ("message", Json.String message) ] );
    ]

let to_json summary =
  Json.to_string
    (Json.Obj
       [
         ("schema", Json.String "renaming.chaos-sharded/1");
         ("total_sessions", Json.Int summary.total_sessions);
         ("total_handoffs_started", Json.Int summary.total_handoffs_started);
         ("total_handoffs_completed", Json.Int summary.total_handoffs_completed);
         ("total_handoffs_aborted", Json.Int summary.total_handoffs_aborted);
         ("total_handoffs_orphaned", Json.Int summary.total_handoffs_orphaned);
         ("total_adoptions", Json.Int summary.total_adoptions);
         ("total_redirects", Json.Int summary.total_redirects);
         ("total_shard_down_busy", Json.Int summary.total_shard_down_busy);
         ("total_in_handoff_busy", Json.Int summary.total_in_handoff_busy);
         ("total_shard_crashes", Json.Int summary.total_shard_crashes);
         ("total_shard_stalls", Json.Int summary.total_shard_stalls);
         ("total_expected_fenced", Json.Int summary.total_expected_fenced);
         ("total_unexpected_fenced", Json.Int summary.total_unexpected_fenced);
         ("total_lost_tickets", Json.Int summary.total_lost_tickets);
         ("total_stale_ops", Json.Int summary.total_stale_ops);
         ("total_stale_ok", Json.Int summary.total_stale_ok);
         ("total_audit_near_misses", Json.Int summary.total_audit_near_misses);
         ("total_violations", Json.Int summary.total_violations);
         ("total_livelocks", Json.Int summary.total_livelocks);
         ("runs", Json.List (List.map result_json summary.results));
       ])

let pp fmt summary =
  Format.fprintf fmt
    "sharded chaos: %d runs, %d sessions, handoffs %d (%d done, %d aborted, %d \
     orphaned), %d adoptions, %d shard crashes, %d stalls, fenced %d expected / %d \
     unexpected, %d violations, %d livelocks@."
    (List.length summary.results)
    summary.total_sessions summary.total_handoffs_started
    summary.total_handoffs_completed summary.total_handoffs_aborted
    summary.total_handoffs_orphaned summary.total_adoptions summary.total_shard_crashes
    summary.total_shard_stalls summary.total_expected_fenced
    summary.total_unexpected_fenced summary.total_violations summary.total_livelocks;
  List.iter
    (fun r ->
      let s = r.cr_summary in
      let rt = s.Shard_churn.router in
      Format.fprintf fmt
        "  %-14s seed=0x%Lx sessions=%d handoffs=%d/%d/%d/%d adoptions=%d \
         redirects=%d down=%d fenced=%d/%d peak=%d%s%s@."
        r.cr_name r.cr_seed s.Shard_churn.sessions rt.Router.handoffs_started
        rt.Router.handoffs_completed rt.Router.handoffs_aborted
        rt.Router.handoffs_orphaned rt.Router.adoptions s.Shard_churn.redirects
        s.Shard_churn.shard_down_busy s.Shard_churn.expected_fenced
        s.Shard_churn.unexpected_fenced s.Shard_churn.peak_held
        (if s.Shard_churn.livelocked then " LIVELOCK" else "")
        (match s.Shard_churn.violation with
        | Some (kind, _) -> " VIOLATION:" ^ kind
        | None -> ""))
    summary.results
