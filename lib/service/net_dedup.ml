module Program = Renaming_sched.Program
module Executor = Renaming_sched.Executor
module Memory = Renaming_sched.Memory
module Retry = Renaming_faults.Retry
open Program.Syntax

let max_epoch = 2

(* Aux layout: per dedup epoch [e], a grant lock then a settle lock;
   after those, the transfer-freedom flag.  Word 0 is the rid's dedup
   epoch — bumped when the entry is evicted and re-armed. *)
let grant_lock e = 2 * e
let settle_lock e = (2 * e) + 1
let free_flag = 2 * max_epoch

let read_epoch =
  let* v = Program.read_word 0 in
  Program.return (max 0 (min v (max_epoch - 1)))

(* One delivery of the request (original or network duplicate), routed
   by the dedup epoch.  At epoch 0 the grant-lock TAS is Dedup.admit:
   the winner is the fresh execution, every loser is a replay and grants
   nothing; the hold window is the grant sitting in the reply cache
   before Dedup.record commits it via the settle lock.  At epoch 1 — the
   entry was evicted and re-armed — a delivery may execute as fresh only
   if the evictor's fence proved no epoch-0 commit exists (the flag is
   set-once, and only after winning the old settle lock, so reading it
   is safe). *)
let rec handler ~tries =
  if tries <= 0 then Program.return None
  else
    let* e = read_epoch in
    if e = 0 then
      let* won = Retry.tas_aux (grant_lock 0) in
      if not won then handler ~tries:(tries - 1)
      else
        (* Hold window: one observable step between execution and
           Dedup.record, where the adversary can interleave the
           evictor. *)
        let* _ = Retry.read_aux (grant_lock 0) in
        let* committed = Retry.tas_aux (settle_lock 0) in
        if committed then Program.return (Some 0) else handler ~tries:(tries - 1)
    else
      let* free = Retry.read_aux free_flag in
      if not free then Program.return None
      else
        let* won = Retry.tas_aux (grant_lock 1) in
        if not won then handler ~tries:(tries - 1)
        else
          let* _ = Retry.read_aux (grant_lock 1) in
          let* committed = Retry.tas_aux (settle_lock 1) in
          if committed then Program.return (Some 0)
          else handler ~tries:(tries - 1)

let original = handler ~tries:1

(* Safe eviction: TAS the old epoch's settle lock.  Winning proves no
   delivery committed at epoch 0 AND forecloses every in-flight
   duplicate from committing there later — only then is the rid free to
   re-execute, so publish the flag.  Losing means a commit exists and
   the entry must keep absorbing replays: no flag, the new epoch stays
   dark.  Either way the epoch bumps (the window expired) and the
   evictor handles one late duplicate through the normal new-epoch
   path. *)
let evictor =
  let* won = Retry.tas_aux (settle_lock 0) in
  let* _ = if won then Retry.tas_aux free_flag else Program.return false in
  let* () = Program.write_word ~idx:0 ~value:1 in
  handler ~tries:1

(* Mutant: the evictor *reads* the settle lock instead of TASing it —
   the dedup entry is evicted on a mere observation that nothing has
   committed yet.  A delivery caught in its hold window can still
   commit at epoch 0 while the published flag lets a late duplicate
   re-execute at epoch 1: the same request grants twice.  The leading
   yields let fair round-robin land the original's commit before the
   evictor's read, so the baseline schedule is clean and the bug needs
   a genuine preemption inside the hold window. *)
let rec park k = if k = 0 then Program.return () else Program.bind Program.yield (fun () -> park (k - 1))

let unfenced_evictor =
  let* () = park 4 in
  let* settled = Retry.read_aux (settle_lock 0) in
  let* _ = if not settled then Retry.tas_aux free_flag else Program.return false in
  let* () = Program.write_word ~idx:0 ~value:1 in
  handler ~tries:1

let build ~evictor:evict ~n =
  if n < 2 then invalid_arg "Net_dedup.instance: n must be >= 2";
  let memory = Memory.create ~namespace:1 ~aux:((2 * max_epoch) + 1) ~words:1 () in
  let programs =
    Array.init n (fun pid ->
        if pid = 0 then original
        else if pid = 1 then evict
        else handler ~tries:2)
  in
  { Executor.memory; programs; label = Printf.sprintf "net-dedup(n=%d)" n }

let instance ~n ~seed:_ = build ~evictor ~n

let instance_evict ~n ~seed:_ = build ~evictor:unfenced_evictor ~n
