type stats = {
  mutable fresh : int;
  mutable replays : int;
  mutable stale : int;
  mutable evictions : int;
}

type 'r entry = { mutable e_seq : int; mutable e_reply : 'r option; mutable e_touched : float }

type 'r t = { window : float; table : (int, 'r entry) Hashtbl.t; st : stats }

let create ?(window = infinity) () =
  if window <= 0. then invalid_arg "Dedup.create: window must be > 0";
  {
    window;
    table = Hashtbl.create 64;
    st = { fresh = 0; replays = 0; stale = 0; evictions = 0 };
  }

type 'r verdict = Fresh | Replay of 'r | Stale

let admit t ~client ~seq ~now =
  match Hashtbl.find_opt t.table client with
  | None ->
    t.st.fresh <- t.st.fresh + 1;
    Fresh
  | Some e ->
    e.e_touched <- now;
    if seq > e.e_seq then begin
      t.st.fresh <- t.st.fresh + 1;
      Fresh
    end
    else if seq = e.e_seq then begin
      t.st.replays <- t.st.replays + 1;
      match e.e_reply with
      | Some r -> Replay r
      | None -> Stale  (* recorded seq with no reply cannot happen via [record] *)
    end
    else begin
      t.st.stale <- t.st.stale + 1;
      Stale
    end

let record t ~client ~seq ~now reply =
  match Hashtbl.find_opt t.table client with
  | Some e when seq >= e.e_seq ->
    e.e_seq <- seq;
    e.e_reply <- Some reply;
    e.e_touched <- now
  | Some _ -> ()  (* stale execution result: never regress the window *)
  | None -> Hashtbl.replace t.table client { e_seq = seq; e_reply = Some reply; e_touched = now }

let sweep t ~now =
  if t.window = infinity then 0
  else begin
    let doomed =
      Hashtbl.fold
        (fun client e acc -> if now -. e.e_touched > t.window then client :: acc else acc)
        t.table []
    in
    (* Sort for deterministic eviction order (Hashtbl.fold order is
       unspecified); the count is what callers observe but determinism
       is a repo-wide invariant. *)
    let doomed = List.sort compare doomed in
    List.iter (Hashtbl.remove t.table) doomed;
    let n = List.length doomed in
    t.st.evictions <- t.st.evictions + n;
    n
  end

let entries t = Hashtbl.length t.table
let stats t = t.st
