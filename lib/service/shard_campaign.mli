(** Partition chaos campaign for the sharded renaming service: a grid
    of {!Shard_churn} cells × seeds exercising rebalancing under Zipf
    skew, correlated shard crashes, crash-during-handoff, and stall
    routing, with machine-readable results
    (schema ["renaming.chaos-sharded/1"]). *)

type cell = { cell_name : string; cell_cfg : Shard_churn.config }

type spec = { cells : cell list; seeds : int64 array }

val default_spec : ?sessions_per_cell:int -> ?seeds:int64 array -> unit -> spec
(** Four cells: [hot-rebalance] (Zipf skew forcing the auto-rebalancer),
    [shard-crash] (correlated burst, absorb after grace),
    [handoff-crash] (forced transfers crashed mid-transit) and
    [stall-routing] (rotating stalls straddling the grace). *)

type cell_result = { cr_name : string; cr_seed : int64; cr_summary : Shard_churn.summary }

type summary = {
  results : cell_result list;
  total_sessions : int;
  total_handoffs_started : int;
  total_handoffs_completed : int;
  total_handoffs_aborted : int;
  total_handoffs_orphaned : int;
  total_adoptions : int;
  total_redirects : int;
  total_shard_down_busy : int;
  total_in_handoff_busy : int;
  total_shard_crashes : int;
  total_shard_stalls : int;
  total_expected_fenced : int;
  total_unexpected_fenced : int;  (** must be 0: clean handoffs never fence *)
  total_lost_tickets : int;
  total_stale_ops : int;
  total_stale_ok : int;  (** must be 0: no fencing holes *)
  total_audit_near_misses : int;
  total_violations : int;  (** must be 0: per-slice and cross-shard audits *)
  total_livelocks : int;
}

val run :
  ?progress:(done_:int -> total:int -> unit) ->
  ?obs:Renaming_obs.Obs.t ->
  spec ->
  summary

val to_json : summary -> string
val pp : Format.formatter -> summary -> unit
