(** Independent safety auditor for the lease service.

    The auditor maintains its own mirror of who holds what, fed only by
    the event stream the service emits, and raises {!Violation} the
    moment an event contradicts the lease-safety invariants.  It shares
    no state with {!Lease} — a bug in the table cannot also hide the
    evidence (same pattern as {!Renaming_faults.Monitor}).

    Invariants checked:
    - {b double-grant}: a grant names a slot the mirror believes is held;
    - {b capacity-exceeded}: grants outrun [capacity];
    - {b slot-range}: a granted name falls outside [0, slots);
    - {b stale-accept}: a renew/validate/release succeeded for a fence
      the mirror knows was fenced off (the crashed-client safety
      property);
    - {b fenced-live}: the service fenced an operation whose fence the
      mirror believes is current (liveness-side complement);
    - {b expiry-regression}: a renewal moved a lease's expiry backwards;
    - {b early-reclaim}: a reclamation fired before the lease's expiry;
    - {b time-regression}: the event clock went backwards. *)

exception Violation of { kind : string; message : string }

type t

val create : ?obs:Renaming_obs.Obs.t -> capacity:int -> slots:int -> unit -> t
(** With [?obs], registers [audit/violations] and [audit/near_misses]
    counters in the metrics registry so `renaming metrics` and the chaos
    reports surface them uniformly (previously only visible on raise). *)

type event =
  | Granted of { fence : Lease.fence; expires : float }
  | Renewed of { fence : Lease.fence; expires : float; accepted : bool }
  | Validated of { fence : Lease.fence; accepted : bool }
  | Released of { fence : Lease.fence; accepted : bool }
  | Reclaimed of { fence : Lease.fence; expired_at : float }

val observe : t -> now:float -> event -> unit
(** Feed one service event; raises {!Violation} on contradiction. *)

val live : t -> int
(** Leases the mirror believes are currently live. *)

val events : t -> int
(** Total events observed. *)

val violations : t -> int
(** Violations detected (each also raised {!Violation}). *)

val near_misses : t -> int
(** Stale operations that arrived and were {e correctly} fenced off —
    the fence doing its job.  Zero violations with zero near misses
    means fencing was never exercised at all. *)
