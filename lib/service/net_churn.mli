(** Churn workload for the sharded service over an unreliable network.

    Unlike {!Shard_churn}, where clients call the router in-process,
    every operation here is a typed envelope through {!Transport}:
    clients send requests to the router node, the router resolves the
    slice through its directory and failure-detector view ({!Router.route})
    and forwards to the owning shard with the directory epoch, the shard
    executes against its resident slice body and replies directly to the
    client.  Messages are dropped, duplicated, reordered, delayed and
    partitioned per the configured {!Transport.faults}, so the protocol
    layers under test are:

    - {b at-most-once dedup} ({!Dedup}, one table per slice, moving with
      the body on clean handoff and dying with it on a crash): duplicate
      deliveries replay the cached reply, reordered stragglers are
      discarded, and a fresh execution is recorded before its reply is
      sent;
    - {b timeout/retry}: clients retransmit the same request id on a
      timeout (same sequence number — the dedup key), back off between
      whole attempts with {!Renaming_faults.Retry.jittered_delay}, and
      abandon after bounded attempts;
    - {b failure detection}: shards heartbeat the router; the router
      suspects silence, orphans suspected shards' slices, re-owns them on
      recovery and adopts them after grace ({!Router.enable_detector}).
      Shard crashes are {e silent} ([Shard.crash] directly, not
      [Router.crash_shard]) — the router only ever learns from missing
      heartbeats or a higher incarnation number.

    The run aborts on the first audit violation, and additionally audits
    {e at-most-once} end-to-end: a request id whose acquire executes
    effectfully twice without the slice provably losing its body in
    between is a [double_grants] — the exact failure the dedup window
    bound exists to prevent (docs/fault_model.md §8).

    Config validation enforces the safety sizing rules rather than
    documenting them: [suspicion > hb_every],
    [grace >= ttl + hb_every + 2·max network delay], and
    [dedup_window >= retransmit horizon + 2·max network delay]. *)

type partition_plan = {
  p_every : float;  (** mean time between partition injections *)
  p_duration : float;
  p_both : float;
      (** P[the partition also blocks router→shard, isolating the shard
          fully; otherwise only shard→router (heartbeats) is cut — the
          classic false-suspicion asymmetry] *)
}

type crash_plan = {
  c_every : float;  (** mean time between silent shard crashes *)
  c_restart : float;
      (** mean restart delay, jittered ×[0.5, 1.5] so restarts land both
          inside the suspicion window (exercising incarnation orphans)
          and outside it (exercising sweep suspicions) *)
}

type config = {
  clients : int;
  sessions_target : int;
  router : Router.config;
  faults : Transport.faults;
  hb_every : float;  (** heartbeat period *)
  suspicion : float;  (** heartbeat silence before suspicion *)
  dedup_window : float;  (** per-slice dedup entry idle eviction age *)
  rto : float;  (** client retransmit timeout *)
  zipf_s : float;
  mean_hold : float;
  mean_think : float;
  renew_every : float;
  crash_rate : float;  (** P[client crashes while holding] *)
  stale_wakeup : float;  (** P[a crashed client's ghost replays its fence] *)
  client_restart_delay : float;
  max_attempts : int;  (** whole-request attempts before abandoning *)
  rto_retries : int;  (** same-rid retransmits before a fresh attempt *)
  backoff_unit : float;  (** scales jittered backoff ticks to sim time *)
  arrival : Renaming_workload.Arrival.pattern;
  partition : partition_plan option;
  shard_crash : crash_plan option;
  max_events : int;
}

val make_config :
  ?clients:int ->
  ?sessions_target:int ->
  ?router:Router.config ->
  ?faults:Transport.faults ->
  ?hb_every:float ->
  ?suspicion:float ->
  ?dedup_window:float ->
  ?rto:float ->
  ?zipf_s:float ->
  ?mean_hold:float ->
  ?mean_think:float ->
  ?renew_every:float ->
  ?crash_rate:float ->
  ?stale_wakeup:float ->
  ?client_restart_delay:float ->
  ?max_attempts:int ->
  ?rto_retries:int ->
  ?backoff_unit:float ->
  ?arrival:Renaming_workload.Arrival.pattern ->
  ?partition:partition_plan ->
  ?shard_crash:crash_plan ->
  ?max_events:int ->
  unit ->
  config
(** Raises on any violated sizing rule (see module doc).  Default router
    config: 4 shards × 8 slices, [ttl = 15], [grace = 24], auto
    rebalancing off (ownership moves only through failure detection). *)

type summary = {
  sessions : int;
  client_crashes : int;
  client_restarts : int;
  shard_crashes : int;
  shard_restarts : int;
  partitions : int;
  abandoned : int;
  resends : int;  (** same-rid retransmits (timeout, poll and renew) *)
  timeouts : int;  (** rid retransmit budgets exhausted *)
  lost_tickets : int;
  redirects : int;
  shard_down_busy : int;
  in_handoff_busy : int;
  sheds : int;
  expected_fenced : int;
  unexpected_fenced : int;  (** fenced with no disruption to blame — must be 0 *)
  releases_dropped : int;
  late_grants_released : int;
      (** grants nobody was waiting for (abandoned or crashed requester),
          handed straight back *)
  double_grants : int;
      (** at-most-once violations: a rid executed effectfully twice with
          no body loss in between — must be 0 *)
  stale_ops : int;
  stale_rejected : int;
  stale_ok : int;  (** ghost operations that succeeded — must be 0 *)
  events : int;
  sim_time : float;
  peak_held : int;
  final_held : int;
  livelocked : bool;
  violation : (string * string) option;
  audit_near_misses : int;
  gaudit_violations : int;
  gaudit_live : int;
  net : Transport.stats;
  dedup : Dedup.stats;  (** aggregated over every slice table, including
                            tables retired by crashes *)
  detector : Router.detector_stats;
  router : Router.stats;
}

val run :
  ?obs:Renaming_obs.Obs.t ->
  ?tap:(Router.tap_event -> unit) ->
  config ->
  seed:int64 ->
  summary
(** Deterministic for a given [(config, seed)].  [?tap] is passed
    through to {!Router.create} (audit events + slice absorbs, for the
    refinement harness).  Observation only — retransmits, dedup
    replays and fenced ghosts are invisible at the audit level and
    refine to stutters for free. *)
