(** Model-checkable core of the router's slice-handoff fencing
    (docs/fault_model.md §7), generalizing {!Handoff} from a single
    lease to a whole slice of [width] names.

    Shared state: an epoch register (word 0) plus, per (epoch, name), a
    {e grant} lock and a {e settle} lock, and per name a set-once
    {e transfer-freedom} flag.  A grantor at the old epoch claims the
    grant lock, sits in a one-step hold window, then commits via a TAS
    on the settle lock.  The slice taker fences {e every} name of the
    old epoch by TASing its settle lock: winning proves the name was
    never committed and publishes the freedom flag; losing means a live
    lease transfers intact and must never be regranted.  Only then does
    the taker bump the epoch and regrant through the new-epoch path,
    which is gated on the freedom flag.

    Safety (checked exhaustively at small [n]): no name is ever returned
    by two processes — a name committed at the old epoch can never see
    its freedom flag set, and each epoch's settle lock admits one
    committer.

    The mutant taker validates by {e reading} the settle lock instead of
    TASing it — handing the slice over without actually fencing it.  An
    owner caught in its hold window then commits concurrently with the
    new epoch's regrant of the same name: a global double grant, which
    the checker and fuzzer must find. *)

val width : int
(** Names per slice in the model (2). *)

val instance : n:int -> seed:int64 -> Renaming_sched.Executor.instance
(** [n >= 2] processes: the epoch-0 owner of name 0, the slice taker,
    and [n - 2] extra grantors spread over the slice's names. *)

val instance_unfenced : n:int -> seed:int64 -> Renaming_sched.Executor.instance
(** Same roster with the unfenced (read-instead-of-TAS) mutant taker;
    duplicate grants of name 0 are reachable. *)
