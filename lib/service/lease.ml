module Longlived = Renaming_longlived.Longlived
module Sample = Renaming_rng.Sample

type config = { capacity : int; epsilon : float; ttl : float; probe_cap : int }

let make_config ?(epsilon = 0.5) ?(ttl = 10.0) ?probe_cap ~capacity () =
  if capacity < 1 then invalid_arg "Lease.make_config: capacity must be >= 1";
  if epsilon <= 0. then invalid_arg "Lease.make_config: epsilon must be positive";
  if ttl <= 0. then invalid_arg "Lease.make_config: ttl must be positive";
  let slots = Longlived.namespace_for ~sessions:capacity ~epsilon in
  let probe_cap = match probe_cap with Some c -> c | None -> 64 * slots in
  if probe_cap < 0 then invalid_arg "Lease.make_config: probe_cap must be >= 0";
  { capacity; epsilon; ttl; probe_cap }

type fence = { f_name : int; f_session : int; f_epoch : int }

type t = {
  cfg : config;
  n_slots : int;
  epochs : int array;  (* bumped on every grant and every release/reclaim *)
  holders : int array;  (* session id, or -1 when free *)
  expiries : float array;  (* valid only while held *)
  grant_times : float array;
  expiry_queue : (int * int) Heap.t;  (* (name, epoch) — lazy deletion *)
  mutable n_held : int;
  mutable compactions : int;
}

let create cfg =
  let n_slots = Longlived.namespace_for ~sessions:cfg.capacity ~epsilon:cfg.epsilon in
  {
    cfg;
    n_slots;
    epochs = Array.make n_slots 0;
    holders = Array.make n_slots (-1);
    expiries = Array.make n_slots 0.;
    grant_times = Array.make n_slots 0.;
    expiry_queue = Heap.create ();
    n_held = 0;
    compactions = 0;
  }

let slots t = t.n_slots
let held t = t.n_held
let utilization t = float_of_int t.n_held /. float_of_int t.cfg.capacity

type grant = { g_fence : fence; g_probes : int; g_swept : bool }

let fence_matches t fence =
  fence.f_name >= 0 && fence.f_name < t.n_slots
  && t.holders.(fence.f_name) = fence.f_session
  && t.epochs.(fence.f_name) = fence.f_epoch

let grant_slot t ~name ~session ~now =
  t.epochs.(name) <- t.epochs.(name) + 1;
  t.holders.(name) <- session;
  t.expiries.(name) <- now +. t.cfg.ttl;
  t.grant_times.(name) <- now;
  t.n_held <- t.n_held + 1;
  let fence = { f_name = name; f_session = session; f_epoch = t.epochs.(name) } in
  Heap.push t.expiry_queue ~time:t.expiries.(name) (name, fence.f_epoch);
  fence

let acquire t ~session ~now ~rng =
  if t.n_held >= t.cfg.capacity then Error `At_capacity
  else begin
    let rec probe k =
      if k >= t.cfg.probe_cap then None
      else
        let name = Sample.uniform_int rng t.n_slots in
        if t.holders.(name) < 0 then Some (name, k + 1) else probe (k + 1)
    in
    match probe 0 with
    | Some (name, probes) ->
      Ok { g_fence = grant_slot t ~name ~session ~now; g_probes = probes; g_swept = false }
    | None ->
      (* Deterministic sweep: held < capacity <= slots, so a free slot
         exists and the sweep cannot fail. *)
      let rec sweep i = if t.holders.(i) < 0 then i else sweep (i + 1) in
      let name = sweep 0 in
      Ok
        {
          g_fence = grant_slot t ~name ~session ~now;
          g_probes = t.cfg.probe_cap + name + 1;
          g_swept = true;
        }
  end

(* A heap entry is live iff it is the slot's *current* expiry under the
   current epoch: renewed, released and reclaimed leases all leave dead
   entries behind (lazy deletion), which compaction discards. *)
let entry_live t ~time (name, epoch) =
  t.epochs.(name) = epoch && t.holders.(name) >= 0 && t.expiries.(name) = time

let maybe_compact t =
  let sz = Heap.size t.expiry_queue in
  if sz > 32 && sz > 2 * t.n_held then begin
    Heap.compact t.expiry_queue ~live:(fun ~time v -> entry_live t ~time v);
    t.compactions <- t.compactions + 1
  end

let renew t ~fence ~now =
  if not (fence_matches t fence) then Error `Fenced
  else begin
    let expiry = now +. t.cfg.ttl in
    t.expiries.(fence.f_name) <- expiry;
    Heap.push t.expiry_queue ~time:expiry (fence.f_name, fence.f_epoch);
    maybe_compact t;
    Ok expiry
  end

let validate t ~fence = if fence_matches t fence then Ok () else Error `Fenced

let free_slot t ~name =
  t.epochs.(name) <- t.epochs.(name) + 1;
  t.holders.(name) <- -1;
  t.n_held <- t.n_held - 1

let release t ~fence ~now =
  if not (fence_matches t fence) then Error `Fenced
  else begin
    let held_for = now -. t.grant_times.(fence.f_name) in
    free_slot t ~name:fence.f_name;
    Ok held_for
  end

type reclaimed = { r_fence : fence; r_expired_at : float; r_lateness : float }

let reclaim_expired t ~now =
  let rec drain acc =
    match Heap.peek_time t.expiry_queue with
    | Some time when time <= now -> (
      match Heap.pop t.expiry_queue with
      | None -> List.rev acc
      | Some (_, (name, epoch)) ->
        if t.epochs.(name) <> epoch || t.holders.(name) < 0 then
          (* Stale entry: the lease was renewed, released, or already
             reclaimed since this heap entry was pushed. *)
          drain acc
        else if t.expiries.(name) > now then
          (* Renewed to a later expiry under the same epoch — the newer
             heap entry will cover it. *)
          drain acc
        else begin
          let expired_at = t.expiries.(name) in
          let fence = { f_name = name; f_session = t.holders.(name); f_epoch = epoch } in
          free_slot t ~name;
          drain
            ({ r_fence = fence; r_expired_at = expired_at; r_lateness = now -. expired_at }
            :: acc)
        end)
    | _ -> List.rev acc
  in
  let reclaimed = drain [] in
  maybe_compact t;
  reclaimed

let holder t ~name =
  if name < 0 || name >= t.n_slots then None
  else if t.holders.(name) < 0 then None
  else Some t.holders.(name)

let pending_expiries t = Heap.size t.expiry_queue
let compactions t = t.compactions
