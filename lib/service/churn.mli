(** Closed-loop churn workload against the lease service.

    A fixed population of [clients] runs session loops forever (until
    [sessions_target] sessions have been minted): mint a session id,
    request a name, hold it while renewing, release, think, repeat.
    Client heat is Zipf-skewed ({!Renaming_workload.Zipf}): hot clients
    think less and re-arrive sooner.  Arrival offsets come from
    {!Renaming_workload.Arrival}.

    Crash-restart churn: with probability [crash_rate] a grant ends in a
    crash at a uniform point of the hold instead of a release — no
    release is sent, the name must be recovered by lease reclamation —
    and the client restarts later as a fresh session.  With probability
    [stale_wakeup] the crashed incarnation also wakes up long past its
    lease and replays renew/use/release with the dead fence; every such
    operation must be rejected ([`Fenced]), which the independent
    {!Audit} mirror enforces.  Optional correlated bursts
    ({!Renaming_workload.Crash_pattern.burst}) crash many holders at
    once.

    The whole run is a deterministic discrete-event simulation: one
    event heap, a virtual clock read by the service, all randomness from
    the seed. *)

type burst = { b_at : int; b_width : int; b_failures : int }

type config = {
  clients : int;
  sessions_target : int;  (** stop minting new sessions past this *)
  capacity : int;
  epsilon : float;
  ttl : float;
  renew_every : float;
  queue_limit : int;
  request_timeout : float;
  high_water : float;
  crash_rate : float;
  stale_wakeup : float;  (** P(crashed incarnation replays its fence) *)
  zipf_s : float;
  mean_hold : float;
  mean_think : float;
  restart_delay : float;
  max_attempts : int;  (** shed/timeout retries before abandoning *)
  backoff_unit : float;  (** clock units per {!Renaming_faults.Retry} backoff step *)
  arrival : Renaming_workload.Arrival.pattern;
  burst : burst option;
  max_events : int;  (** livelock guard *)
}

val make_config :
  ?clients:int ->
  ?sessions_target:int ->
  ?capacity:int ->
  ?epsilon:float ->
  ?ttl:float ->
  ?renew_every:float ->
  ?queue_limit:int ->
  ?request_timeout:float ->
  ?high_water:float ->
  ?crash_rate:float ->
  ?stale_wakeup:float ->
  ?zipf_s:float ->
  ?mean_hold:float ->
  ?mean_think:float ->
  ?restart_delay:float ->
  ?max_attempts:int ->
  ?backoff_unit:float ->
  ?arrival:Renaming_workload.Arrival.pattern ->
  ?burst:burst ->
  ?max_events:int ->
  unit ->
  config

type summary = {
  sessions : int;  (** session ids minted *)
  crashes : int;
  restarts : int;
  abandoned : int;  (** sessions given up after [max_attempts] *)
  stale_ops : int;  (** replayed dead-fence operations *)
  stale_rejected : int;  (** ... of which fenced (must equal [stale_ops]) *)
  retries : int;  (** re-admissions after shed/timeout *)
  unexpected_fenced : int;  (** live-path fenced results (should be 0) *)
  events : int;
  sim_time : float;
  peak_held : int;
  final_held : int;
  livelocked : bool;
  violation : (string * string) option;  (** audit (kind, message), if any *)
  audit_near_misses : int;  (** stale operations the audit saw correctly fenced *)
  audit_violations : int;  (** audit violations detected (0 unless [violation]) *)
  service : Service.stats;
  h_probes : Renaming_obs.Hist.t;
  h_reclaim : Renaming_obs.Hist.t;
  h_wait : Renaming_obs.Hist.t;
  h_lifetime : Renaming_obs.Hist.t;
}

val run :
  ?obs:Renaming_obs.Obs.t ->
  ?tap:(now:float -> Audit.event -> unit) ->
  config ->
  seed:int64 ->
  summary
(** [?tap] is passed through to {!Service.create}: it hears every audit
    event after the mirror accepted it (the refinement harness's feed).
    Observation only — results are identical either way. *)
