type status = Alive | Stalled of { since : float; until : float } | Crashed of { since : float }

type slice = { sl_id : int; mutable sl_epoch : int; mutable sl_svc : Service.t }

type stats = {
  mutable crashes : int;
  mutable restarts : int;
  mutable stalls : int;
  mutable dropped_slices : int;
}

type t = {
  id : int;
  mutable status : status;
  mutable slices : slice list;  (* bodies resident here, sorted by sl_id *)
  st : stats;
}

let create ~id =
  { id; status = Alive; slices = []; st = { crashes = 0; restarts = 0; stalls = 0; dropped_slices = 0 } }

let id t = t.id
let stats t = t.st
let slices t = t.slices

(* A stall heals by itself once the clock passes [until]; crashes only
   heal through an explicit restart. *)
let status t ~now =
  match t.status with
  | Stalled { until; _ } when now >= until ->
    t.status <- Alive;
    Alive
  | s -> s

let alive t ~now = status t ~now = Alive

let find_slice t ~slice =
  List.find_opt (fun sl -> sl.sl_id = slice) t.slices

let attach t sl =
  t.slices <- List.sort (fun a b -> compare a.sl_id b.sl_id) (sl :: t.slices)

let detach t ~slice =
  match find_slice t ~slice with
  | None -> None
  | Some sl ->
    t.slices <- List.filter (fun s -> s.sl_id <> slice) t.slices;
    Some sl

let drop t ~slice =
  match detach t ~slice with
  | None -> ()
  | Some _ -> t.st.dropped_slices <- t.st.dropped_slices + 1

(* Crashing loses every resident slice body — the state is gone, exactly
   like a process crash in the fault model.  The router moves the
   directory entries to orphaned; reclamation happens by lease expiry. *)
let crash t ~now =
  t.status <- Crashed { since = now };
  t.st.crashes <- t.st.crashes + 1;
  t.slices <- []

let restart t =
  (match t.status with Crashed _ -> t.st.restarts <- t.st.restarts + 1 | _ -> ());
  t.status <- Alive

let stall t ~now ~until =
  if until > now then begin
    t.status <- Stalled { since = now; until };
    t.st.stalls <- t.st.stalls + 1
  end

let held t = List.fold_left (fun acc sl -> acc + Service.held sl.sl_svc) 0 t.slices

let capacity t =
  List.fold_left (fun acc sl -> acc + Service.slots sl.sl_svc) 0 t.slices

let utilization t ~slice_capacity =
  let cap = List.length t.slices * slice_capacity in
  if cap = 0 then 1.0 else float_of_int (held t) /. float_of_int cap
