(** Small-n model of the at-most-once retry/dedup/fence protocol, for
    exhaustive model checking and schedule fuzzing.

    One client request (one {e rid}) is delivered several times — the
    original plus network duplicates, each delivery a concurrent handler
    process — and the granted name must be returned by {e exactly one}
    of them.  The model strips {!Dedup} and the transport down to their
    synchronisation skeleton over TAS-able aux registers:

    - {b dedup admission} is a per-rid grant lock: the handler that TASes
      it first is the fresh execution, every loser is a duplicate and
      returns nothing (the replayed cached reply carries no new grant);
    - {b commit} is a settle lock taken after an observable hold window
      (grant written to the reply cache), the analogue of {!Dedup.record};
    - {b eviction} of the rid's dedup entry is fenced: the evictor TASes
      the {e same} settle lock — winning proves no handler committed and
      forecloses every in-flight duplicate from committing later — and
      only then re-arms the rid under a bumped epoch, where a late
      duplicate may execute as fresh.

    The checked property is global uniqueness of the returned name
    across both epochs; processes return names guarded by the aux locks
    rather than namespace TAS, so ownership checking must be off (the
    rosters' [check_ownership_of] handles this by prefix).

    {!instance_evict} is the seeded mutant: the evictor merely {e reads}
    the settle lock — evicting the dedup entry while a duplicate still
    sits in its hold window — so the old-epoch commit and the new-epoch
    re-execution both grant name 0.  Clean under fair round-robin (the
    mutant parks long enough for the original to commit first); the bug
    needs a genuine preemption inside the hold window, which is the
    fuzzer's job to find. *)

val instance : n:int -> seed:int64 -> Renaming_sched.Executor.instance
(** [n >= 2]: process 0 handles the original delivery, process 1 is the
    evictor (evict + handle a late duplicate at the new epoch), processes
    2.. are in-flight duplicate handlers. *)

val instance_evict : n:int -> seed:int64 -> Renaming_sched.Executor.instance
(** The unfenced-eviction mutant; must violate uniqueness under an
    adversarial schedule and stay clean under fair round-robin. *)
