module Json = Renaming_obs.Json

type cell = { cell_name : string; cell_cfg : Net_churn.config }

type spec = { cells : cell list; seeds : int64 array }

let default_spec ?(sessions_per_cell = 65_000) ?(seeds = [| 0x5EED_2015L; 0xC0FFEEL |])
    () =
  let base = Net_churn.make_config ~sessions_target:sessions_per_cell in
  let faults = Transport.make_faults in
  let router = Router.make_config ~ttl:15.0 ~grace:24.0 in
  {
    seeds;
    cells =
      [
        (* Message loss, duplication and reordering while the
           auto-rebalancer moves Zipf-hot slices between shards: clean
           handoffs meet in-flight duplicates, so the per-slice dedup
           table must travel with the body and the epoch carried by
           stale forwards must bounce them. *)
        {
          cell_name = "lossy";
          cell_cfg =
            base ~zipf_s:1.4 ~mean_think:1.5
              ~faults:
                (faults ~drop:0.05 ~duplicate:0.02 ~reorder:0.10 ~reorder_extra:0.3 ())
              ~router:
                (router ~auto_rebalance:true ~hot_util:0.55 ~cold_util:0.45 ())
              ();
        };
        (* Duplication-dominated: a quarter of all messages delivered
           twice and another quarter reordered, hammering replay and
           stale-duplicate discard on every path. *)
        {
          cell_name = "dup-storm";
          cell_cfg =
            base
              ~faults:
                (faults ~drop:0.01 ~duplicate:0.25 ~reorder:0.25 ~reorder_extra:0.45 ())
              ();
        };
        (* Directional partitions long enough for the router to suspect
           (heartbeats cut), short enough to heal before grace: false
           suspicion, recovery, and same-epoch re-own with every lease
           intact.  Half the partitions also cut router→shard, turning
           false suspicion into real unavailability. *)
        {
          cell_name = "partition";
          cell_cfg =
            base
              ~faults:
                (faults ~drop:0.02 ~duplicate:0.02 ~reorder:0.05 ~reorder_extra:0.2 ())
              ~partition:{ Net_churn.p_every = 40.0; p_duration = 12.0; p_both = 0.5 }
              ();
        };
        (* Silent shard crashes the router discovers only through
           heartbeat loss; restart delays straddle the suspicion window,
           so some restarts announce themselves by incarnation bump
           (before the sweep fires) and some by recovery-from-suspicion
           over an amnesiac body.  Orphans are adopted after grace. *)
        {
          cell_name = "crash-detect";
          cell_cfg =
            base
              ~faults:
                (faults ~drop:0.03 ~duplicate:0.03 ~reorder:0.05 ~reorder_extra:0.2 ())
              ~shard_crash:{ Net_churn.c_every = 45.0; c_restart = 2.0 }
              ();
        };
      ];
  }

type cell_result = { cr_name : string; cr_seed : int64; cr_summary : Net_churn.summary }

type summary = {
  results : cell_result list;
  total_sessions : int;
  total_dropped : int;
  total_duplicated : int;
  total_reordered : int;
  total_blocked : int;
  total_resends : int;
  total_timeouts : int;
  total_replays : int;
  total_stale_dups : int;
  total_evictions : int;
  total_suspicions : int;
  total_recoveries : int;
  total_reowns : int;
  total_incarnation_orphans : int;
  total_adoptions : int;
  total_partitions : int;
  total_shard_crashes : int;
  total_redirects : int;
  total_abandoned : int;
  total_lost_tickets : int;
  total_late_grants_released : int;
  total_expected_fenced : int;
  total_unexpected_fenced : int;
  total_double_grants : int;
  total_stale_ops : int;
  total_stale_ok : int;
  total_audit_near_misses : int;
  total_violations : int;
  total_livelocks : int;
}

let summarize results =
  let add f = List.fold_left (fun acc r -> acc + f r.cr_summary) 0 results in
  {
    results;
    total_sessions = add (fun s -> s.Net_churn.sessions);
    total_dropped = add (fun s -> s.Net_churn.net.Transport.dropped);
    total_duplicated = add (fun s -> s.Net_churn.net.Transport.duplicated);
    total_reordered = add (fun s -> s.Net_churn.net.Transport.reordered);
    total_blocked = add (fun s -> s.Net_churn.net.Transport.blocked);
    total_resends = add (fun s -> s.Net_churn.resends);
    total_timeouts = add (fun s -> s.Net_churn.timeouts);
    total_replays = add (fun s -> s.Net_churn.dedup.Dedup.replays);
    total_stale_dups = add (fun s -> s.Net_churn.dedup.Dedup.stale);
    total_evictions = add (fun s -> s.Net_churn.dedup.Dedup.evictions);
    total_suspicions = add (fun s -> s.Net_churn.detector.Router.suspicions);
    total_recoveries = add (fun s -> s.Net_churn.detector.Router.recoveries);
    total_reowns = add (fun s -> s.Net_churn.detector.Router.reowns);
    total_incarnation_orphans =
      add (fun s -> s.Net_churn.detector.Router.incarnation_orphans);
    total_adoptions = add (fun s -> s.Net_churn.router.Router.adoptions);
    total_partitions = add (fun s -> s.Net_churn.partitions);
    total_shard_crashes = add (fun s -> s.Net_churn.shard_crashes);
    total_redirects = add (fun s -> s.Net_churn.redirects);
    total_abandoned = add (fun s -> s.Net_churn.abandoned);
    total_lost_tickets = add (fun s -> s.Net_churn.lost_tickets);
    total_late_grants_released = add (fun s -> s.Net_churn.late_grants_released);
    total_expected_fenced = add (fun s -> s.Net_churn.expected_fenced);
    total_unexpected_fenced = add (fun s -> s.Net_churn.unexpected_fenced);
    total_double_grants = add (fun s -> s.Net_churn.double_grants);
    total_stale_ops = add (fun s -> s.Net_churn.stale_ops);
    total_stale_ok = add (fun s -> s.Net_churn.stale_ok);
    total_audit_near_misses = add (fun s -> s.Net_churn.audit_near_misses);
    total_violations =
      add (fun s ->
          s.Net_churn.gaudit_violations
          + (match s.Net_churn.violation with Some _ -> 1 | None -> 0));
    total_livelocks = add (fun s -> if s.Net_churn.livelocked then 1 else 0);
  }

let run ?progress ?obs spec =
  let total = List.length spec.cells * Array.length spec.seeds in
  let done_ = ref 0 in
  let results =
    List.concat_map
      (fun cell ->
        Array.to_list
          (Array.map
             (fun seed ->
               let summary = Net_churn.run ?obs cell.cell_cfg ~seed in
               incr done_;
               (match progress with Some f -> f ~done_:!done_ ~total | None -> ());
               { cr_name = cell.cell_name; cr_seed = seed; cr_summary = summary })
             spec.seeds))
      spec.cells
  in
  let summary = summarize results in
  (match obs with
  | Some o ->
    let record name v =
      Renaming_obs.Metrics.add (Renaming_obs.Obs.counter o name) v
    in
    record "chaos_net/runs" (List.length results);
    record "chaos_net/sessions" summary.total_sessions;
    record "chaos_net/dropped" summary.total_dropped;
    record "chaos_net/replays" summary.total_replays;
    record "chaos_net/suspicions" summary.total_suspicions;
    record "chaos_net/double_grants" summary.total_double_grants;
    record "chaos_net/violations" summary.total_violations;
    record "chaos_net/livelocks" summary.total_livelocks
  | None -> ());
  summary

let result_json r =
  let s = r.cr_summary in
  let net = s.Net_churn.net in
  let dd = s.Net_churn.dedup in
  let fd = s.Net_churn.detector in
  Json.Obj
    [
      ("cell", Json.String r.cr_name);
      ("seed", Json.String (Printf.sprintf "0x%Lx" r.cr_seed));
      ("sessions", Json.Int s.Net_churn.sessions);
      ("events", Json.Int s.Net_churn.events);
      ("sim_time", Json.Float s.Net_churn.sim_time);
      ("sent", Json.Int net.Transport.sent);
      ("delivered", Json.Int net.Transport.delivered);
      ("dropped", Json.Int net.Transport.dropped);
      ("duplicated", Json.Int net.Transport.duplicated);
      ("reordered", Json.Int net.Transport.reordered);
      ("blocked", Json.Int net.Transport.blocked);
      ("dedup_fresh", Json.Int dd.Dedup.fresh);
      ("dedup_replays", Json.Int dd.Dedup.replays);
      ("dedup_stale", Json.Int dd.Dedup.stale);
      ("dedup_evictions", Json.Int dd.Dedup.evictions);
      ("suspicions", Json.Int fd.Router.suspicions);
      ("recoveries", Json.Int fd.Router.recoveries);
      ("reowns", Json.Int fd.Router.reowns);
      ("incarnation_orphans", Json.Int fd.Router.incarnation_orphans);
      ("adoptions", Json.Int s.Net_churn.router.Router.adoptions);
      ("partitions", Json.Int s.Net_churn.partitions);
      ("shard_crashes", Json.Int s.Net_churn.shard_crashes);
      ("shard_restarts", Json.Int s.Net_churn.shard_restarts);
      ("client_crashes", Json.Int s.Net_churn.client_crashes);
      ("resends", Json.Int s.Net_churn.resends);
      ("timeouts", Json.Int s.Net_churn.timeouts);
      ("redirects", Json.Int s.Net_churn.redirects);
      ("shard_down_busy", Json.Int s.Net_churn.shard_down_busy);
      ("in_handoff_busy", Json.Int s.Net_churn.in_handoff_busy);
      ("sheds", Json.Int s.Net_churn.sheds);
      ("abandoned", Json.Int s.Net_churn.abandoned);
      ("lost_tickets", Json.Int s.Net_churn.lost_tickets);
      ("late_grants_released", Json.Int s.Net_churn.late_grants_released);
      ("releases_dropped", Json.Int s.Net_churn.releases_dropped);
      ("expected_fenced", Json.Int s.Net_churn.expected_fenced);
      ("unexpected_fenced", Json.Int s.Net_churn.unexpected_fenced);
      ("double_grants", Json.Int s.Net_churn.double_grants);
      ("stale_ops", Json.Int s.Net_churn.stale_ops);
      ("stale_rejected", Json.Int s.Net_churn.stale_rejected);
      ("stale_ok", Json.Int s.Net_churn.stale_ok);
      ("audit_near_misses", Json.Int s.Net_churn.audit_near_misses);
      ("gaudit_violations", Json.Int s.Net_churn.gaudit_violations);
      ("gaudit_live", Json.Int s.Net_churn.gaudit_live);
      ("peak_held", Json.Int s.Net_churn.peak_held);
      ("final_held", Json.Int s.Net_churn.final_held);
      ("livelocked", Json.Bool s.Net_churn.livelocked);
      ( "violation",
        match s.Net_churn.violation with
        | None -> Json.Null
        | Some (kind, message) ->
          Json.Obj [ ("kind", Json.String kind); ("message", Json.String message) ] );
    ]

let to_json summary =
  Json.to_string
    (Json.Obj
       [
         ("schema", Json.String "renaming.chaos-net/1");
         ("total_sessions", Json.Int summary.total_sessions);
         ("total_dropped", Json.Int summary.total_dropped);
         ("total_duplicated", Json.Int summary.total_duplicated);
         ("total_reordered", Json.Int summary.total_reordered);
         ("total_blocked", Json.Int summary.total_blocked);
         ("total_resends", Json.Int summary.total_resends);
         ("total_timeouts", Json.Int summary.total_timeouts);
         ("total_replays", Json.Int summary.total_replays);
         ("total_stale_dups", Json.Int summary.total_stale_dups);
         ("total_evictions", Json.Int summary.total_evictions);
         ("total_suspicions", Json.Int summary.total_suspicions);
         ("total_recoveries", Json.Int summary.total_recoveries);
         ("total_reowns", Json.Int summary.total_reowns);
         ("total_incarnation_orphans", Json.Int summary.total_incarnation_orphans);
         ("total_adoptions", Json.Int summary.total_adoptions);
         ("total_partitions", Json.Int summary.total_partitions);
         ("total_shard_crashes", Json.Int summary.total_shard_crashes);
         ("total_redirects", Json.Int summary.total_redirects);
         ("total_abandoned", Json.Int summary.total_abandoned);
         ("total_lost_tickets", Json.Int summary.total_lost_tickets);
         ("total_late_grants_released", Json.Int summary.total_late_grants_released);
         ("total_expected_fenced", Json.Int summary.total_expected_fenced);
         ("total_unexpected_fenced", Json.Int summary.total_unexpected_fenced);
         ("total_double_grants", Json.Int summary.total_double_grants);
         ("total_stale_ops", Json.Int summary.total_stale_ops);
         ("total_stale_ok", Json.Int summary.total_stale_ok);
         ("total_audit_near_misses", Json.Int summary.total_audit_near_misses);
         ("total_violations", Json.Int summary.total_violations);
         ("total_livelocks", Json.Int summary.total_livelocks);
         ("runs", Json.List (List.map result_json summary.results));
       ])

let pp fmt summary =
  Format.fprintf fmt
    "net chaos: %d runs, %d sessions, net %d dropped / %d dup / %d reordered / %d \
     blocked, dedup %d replays / %d stale / %d evictions, detector %d suspicions / %d \
     recoveries / %d reowns / %d incarnation, %d adoptions, fenced %d expected / %d \
     unexpected, %d double grants, %d violations, %d livelocks@."
    (List.length summary.results)
    summary.total_sessions summary.total_dropped summary.total_duplicated
    summary.total_reordered summary.total_blocked summary.total_replays
    summary.total_stale_dups summary.total_evictions summary.total_suspicions
    summary.total_recoveries summary.total_reowns summary.total_incarnation_orphans
    summary.total_adoptions summary.total_expected_fenced
    summary.total_unexpected_fenced summary.total_double_grants
    summary.total_violations summary.total_livelocks;
  List.iter
    (fun r ->
      let s = r.cr_summary in
      let net = s.Net_churn.net in
      let dd = s.Net_churn.dedup in
      let fd = s.Net_churn.detector in
      Format.fprintf fmt
        "  %-12s seed=0x%Lx sessions=%d sent=%d drop=%d dup=%d block=%d replays=%d \
         evict=%d suspect=%d/%d/%d adopt=%d fenced=%d/%d dbl=%d peak=%d%s%s@."
        r.cr_name r.cr_seed s.Net_churn.sessions net.Transport.sent
        net.Transport.dropped net.Transport.duplicated net.Transport.blocked
        dd.Dedup.replays dd.Dedup.evictions fd.Router.suspicions fd.Router.recoveries
        fd.Router.reowns s.Net_churn.router.Router.adoptions
        s.Net_churn.expected_fenced s.Net_churn.unexpected_fenced
        s.Net_churn.double_grants s.Net_churn.peak_held
        (if s.Net_churn.livelocked then " LIVELOCK" else "")
        (match s.Net_churn.violation with
        | Some (kind, _) -> " VIOLATION:" ^ kind
        | None -> ""))
    summary.results
