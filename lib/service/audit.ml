module Obs = Renaming_obs.Obs
module Metrics = Renaming_obs.Metrics

exception Violation of { kind : string; message : string }

type slot = { s_fence : Lease.fence; s_expires : float }

type counters = { c_violations : Metrics.counter; c_near_misses : Metrics.counter }

type t = {
  capacity : int;
  n_slots : int;
  mirror : slot option array;
  mutable n_live : int;
  mutable n_events : int;
  mutable n_violations : int;
  mutable n_near_misses : int;
  mutable last_now : float;
  counters : counters option;
}

let create ?obs ~capacity ~slots () =
  let counters =
    Option.map
      (fun o ->
        {
          c_violations = Obs.counter o "audit/violations";
          c_near_misses = Obs.counter o "audit/near_misses";
        })
      obs
  in
  {
    capacity;
    n_slots = slots;
    mirror = Array.make slots None;
    n_live = 0;
    n_events = 0;
    n_violations = 0;
    n_near_misses = 0;
    last_now = neg_infinity;
    counters;
  }

type event =
  | Granted of { fence : Lease.fence; expires : float }
  | Renewed of { fence : Lease.fence; expires : float; accepted : bool }
  | Validated of { fence : Lease.fence; accepted : bool }
  | Released of { fence : Lease.fence; accepted : bool }
  | Reclaimed of { fence : Lease.fence; expired_at : float }

let fail t ~kind fmt =
  Printf.ksprintf
    (fun message ->
      t.n_violations <- t.n_violations + 1;
      (match t.counters with Some c -> Metrics.incr c.c_violations | None -> ());
      raise (Violation { kind; message }))
    fmt

(* A near miss is the fence doing its job: a stale operation arrived and
   was correctly rejected.  Zero violations with zero near misses means
   fencing was never exercised — the counter makes that distinction
   observable instead of silent. *)
let near_miss t =
  t.n_near_misses <- t.n_near_misses + 1;
  match t.counters with Some c -> Metrics.incr c.c_near_misses | None -> ()

let pp_fence (f : Lease.fence) =
  Printf.sprintf "name=%d session=%d epoch=%d" f.Lease.f_name f.Lease.f_session
    f.Lease.f_epoch

let current t (fence : Lease.fence) =
  fence.Lease.f_name >= 0
  && fence.Lease.f_name < t.n_slots
  &&
  match t.mirror.(fence.Lease.f_name) with
  | Some s -> s.s_fence = fence
  | None -> false

let free_slot t (fence : Lease.fence) =
  t.mirror.(fence.Lease.f_name) <- None;
  t.n_live <- t.n_live - 1

let observe t ~now event =
  t.n_events <- t.n_events + 1;
  if now < t.last_now then
    fail t ~kind:"time-regression" "clock moved from %g back to %g" t.last_now now;
  t.last_now <- now;
  match event with
  | Granted { fence; expires } ->
    if fence.Lease.f_name < 0 || fence.Lease.f_name >= t.n_slots then
      fail t ~kind:"slot-range" "grant outside namespace: %s (slots=%d)" (pp_fence fence)
        t.n_slots;
    (match t.mirror.(fence.Lease.f_name) with
    | Some held ->
      fail t ~kind:"double-grant" "slot granted while held: new=%s held-by=%s"
        (pp_fence fence) (pp_fence held.s_fence)
    | None -> ());
    if t.n_live >= t.capacity then
      fail t ~kind:"capacity-exceeded" "grant %s would make %d live leases (capacity %d)"
        (pp_fence fence) (t.n_live + 1) t.capacity;
    t.mirror.(fence.Lease.f_name) <- Some { s_fence = fence; s_expires = expires };
    t.n_live <- t.n_live + 1
  | Renewed { fence; expires; accepted } ->
    if accepted then begin
      if not (current t fence) then
        fail t ~kind:"stale-accept" "renew accepted for dead fence %s" (pp_fence fence);
      let s = Option.get t.mirror.(fence.Lease.f_name) in
      if expires < s.s_expires then
        fail t ~kind:"expiry-regression" "renew moved expiry of %s from %g back to %g"
          (pp_fence fence) s.s_expires expires;
      t.mirror.(fence.Lease.f_name) <- Some { s with s_expires = expires }
    end
    else if current t fence then
      fail t ~kind:"fenced-live" "renew fenced for live fence %s" (pp_fence fence)
    else near_miss t
  | Validated { fence; accepted } ->
    if accepted then begin
      if not (current t fence) then
        fail t ~kind:"stale-accept" "validate accepted for dead fence %s (crashed client wrote)"
          (pp_fence fence)
    end
    else if current t fence then
      fail t ~kind:"fenced-live" "validate fenced for live fence %s" (pp_fence fence)
    else near_miss t
  | Released { fence; accepted } ->
    if accepted then begin
      if not (current t fence) then
        fail t ~kind:"stale-accept" "release accepted for dead fence %s" (pp_fence fence);
      free_slot t fence
    end
    else if current t fence then
      fail t ~kind:"fenced-live" "release fenced for live fence %s" (pp_fence fence)
    else near_miss t
  | Reclaimed { fence; expired_at } ->
    if not (current t fence) then
      fail t ~kind:"stale-accept" "reclaim of a slot not held by %s" (pp_fence fence);
    let s = Option.get t.mirror.(fence.Lease.f_name) in
    if now < s.s_expires then
      fail t ~kind:"early-reclaim" "reclaim of %s at %g before expiry %g" (pp_fence fence)
        now s.s_expires;
    if expired_at > now then
      fail t ~kind:"early-reclaim" "reclaim of %s reports future expiry %g at %g"
        (pp_fence fence) expired_at now;
    free_slot t fence

let live t = t.n_live
let events t = t.n_events
let violations t = t.n_violations
let near_misses t = t.n_near_misses
