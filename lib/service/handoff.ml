module Program = Renaming_sched.Program
module Executor = Renaming_sched.Executor
module Memory = Renaming_sched.Memory
module Retry = Renaming_faults.Retry
open Program.Syntax

let max_epoch = 2

let grant_lock e = 2 * e
let settle_lock e = (2 * e) + 1

let read_epoch =
  let* v = Program.read_word 0 in
  Program.return (max 0 (min v (max_epoch - 1)))

let rec claimant ~tries =
  if tries <= 0 then Program.return None
  else
    let* e = read_epoch in
    let* won = Retry.tas_aux (grant_lock e) in
    if not won then claimant ~tries:(tries - 1)
    else
      (* Hold window: one observable step between grant and commit, so
         the adversary can interleave the reclaimer here. *)
      let* _ = Retry.read_aux (grant_lock e) in
      let* committed = Retry.tas_aux (settle_lock e) in
      if committed then Program.return (Some 0) else claimant ~tries:(tries - 1)

let holder = claimant ~tries:1

let reclaimer =
  let* e = read_epoch in
  let* revoked = Retry.tas_aux (settle_lock e) in
  if revoked && e + 1 < max_epoch then
    let* () = Program.write_word ~idx:0 ~value:(e + 1) in
    Program.return None
  else Program.return None

(* Mutant: validate by re-reading the epoch register instead of taking
   the settle lock.  Between the read and the return the reclaimer may
   revoke and advance — the stale holder then "commits" anyway. *)
let stale_holder =
  let* e = read_epoch in
  let* won = Retry.tas_aux (grant_lock e) in
  if not won then Program.return None
  else
    let* _ = Retry.read_aux (grant_lock e) in
    let* e' = read_epoch in
    if e' = e then Program.return (Some 0) else Program.return None

let build ~first ~n =
  if n < 2 then invalid_arg "Handoff.instance: n must be >= 2";
  let memory = Memory.create ~namespace:1 ~aux:(2 * max_epoch) ~words:1 () in
  let programs =
    Array.init n (fun pid ->
        if pid = 0 then first
        else if pid = 1 then reclaimer
        else claimant ~tries:2)
  in
  { Executor.memory; programs; label = Printf.sprintf "lease-handoff(n=%d)" n }

let instance ~n ~seed:_ = build ~first:holder ~n

let instance_stale_write ~n ~seed:_ = build ~first:stale_holder ~n
