(** Deterministic simulated network for the sharded renaming service.

    Carries typed envelopes between client, router and shard nodes of
    the discrete-event simulation, with injectable message faults:

    - {b drop}: a send vanishes with probability [drop];
    - {b duplicate}: a send is delivered twice, each copy with an
      independently sampled delay, with probability [duplicate];
    - {b bounded delay}: every delivery is delayed uniformly within
      [[delay_min, delay_max]];
    - {b reorder}: with probability [reorder] a message is additionally
      delayed by up to [reorder_extra], letting later sends overtake it;
    - {b directional partitions}: messages from [src] to [dst] are
      discarded until a deadline, one direction at a time (an asymmetric
      partition — e.g. a shard's heartbeats lost while requests still
      reach it — is two independent rules).

    Delivery is {e bounded}: a message that is delivered at all arrives
    within {!max_delay} of its send.  That bound is what makes dedup
    window eviction and failure-detector timeouts sound, so it is
    exposed rather than implied (docs/fault_model.md §8).

    Fully deterministic: fault draws come from the injected {!Xoshiro}
    generator and delivery order is keyed [(time, send sequence)], so
    two runs with the same seed and send sequence deliver identically.
    The transport never reads a clock — callers pass [now] explicitly
    and pull due deliveries from the event loop. *)

type addr = Client of int | Router | Shard of int

type faults = {
  drop : float;  (** P[a send is lost] *)
  duplicate : float;  (** P[a send is delivered twice] *)
  delay_min : float;
  delay_max : float;  (** uniform per-delivery delay bounds *)
  reorder : float;  (** P[extra delay, letting later sends overtake] *)
  reorder_extra : float;  (** max extra delay of a reordered message *)
}

val make_faults :
  ?drop:float ->
  ?duplicate:float ->
  ?delay_min:float ->
  ?delay_max:float ->
  ?reorder:float ->
  ?reorder_extra:float ->
  unit ->
  faults
(** Defaults: no drop/duplicate/reorder, delay uniform in [0.01, 0.05].
    Raises on probabilities outside [0, 1] or malformed delay bounds. *)

val perfect : faults
(** No faults, zero delay: function-call semantics over the envelope
    path, for differential tests. *)

type stats = {
  mutable sent : int;  (** accepted sends (excludes dropped/blocked) *)
  mutable delivered : int;
  mutable dropped : int;
  mutable duplicated : int;
  mutable reordered : int;
  mutable blocked : int;  (** discarded by a directional partition *)
}

type 'a t

val create : ?faults:faults -> rng:Renaming_rng.Xoshiro.t -> unit -> 'a t

val max_delay : 'a t -> float
(** The delivery bound: [delay_max + reorder_extra].  No message is in
    flight longer than this. *)

val send : 'a t -> now:float -> src:addr -> dst:addr -> 'a -> unit

val partition : 'a t -> src:addr -> dst:addr -> until:float -> unit
(** Discard messages sent from [src] to [dst] until [until] (checked at
    send time).  Re-partitioning a pair extends/replaces its deadline;
    in-flight messages already past the send check are unaffected. *)

val heal : 'a t -> src:addr -> dst:addr -> unit
(** Remove the [src -> dst] rule now, before its deadline. *)

val partitioned : 'a t -> now:float -> src:addr -> dst:addr -> bool

val next_delivery : 'a t -> float option
(** Earliest in-flight delivery time; [None] when nothing is in flight. *)

val deliver : 'a t -> now:float -> (addr * addr * 'a) list
(** Pop every message due at or before [now] as [(src, dst, payload)],
    in deterministic [(time, send seq)] order. *)

val in_flight : 'a t -> int
val stats : 'a t -> stats
