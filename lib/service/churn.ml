module Clock = Renaming_clock.Clock
module Stream = Renaming_rng.Stream
module Sample = Renaming_rng.Sample
module Retry = Renaming_faults.Retry
module Arrival = Renaming_workload.Arrival
module Crash_pattern = Renaming_workload.Crash_pattern
module Zipf = Renaming_workload.Zipf
module Hist = Renaming_obs.Hist

type burst = { b_at : int; b_width : int; b_failures : int }

type config = {
  clients : int;
  sessions_target : int;
  capacity : int;
  epsilon : float;
  ttl : float;
  renew_every : float;
  queue_limit : int;
  request_timeout : float;
  high_water : float;
  crash_rate : float;
  stale_wakeup : float;
  zipf_s : float;
  mean_hold : float;
  mean_think : float;
  restart_delay : float;
  max_attempts : int;
  backoff_unit : float;
  arrival : Arrival.pattern;
  burst : burst option;
  max_events : int;
}

let make_config ?(clients = 128) ?(sessions_target = 10_000) ?(capacity = 64)
    ?(epsilon = 0.5) ?(ttl = 10.0) ?(renew_every = 3.0) ?(queue_limit = 64)
    ?(request_timeout = 5.0) ?(high_water = 0.85) ?(crash_rate = 0.2)
    ?(stale_wakeup = 0.25) ?(zipf_s = 1.0) ?(mean_hold = 6.0) ?(mean_think = 4.0)
    ?(restart_delay = 8.0) ?(max_attempts = 6) ?(backoff_unit = 0.25)
    ?(arrival = Arrival.Staggered { gap = 1 }) ?burst ?(max_events = 200_000_000) () =
  if clients < 1 then invalid_arg "Churn.make_config: clients must be >= 1";
  if sessions_target < 1 then invalid_arg "Churn.make_config: sessions_target must be >= 1";
  if capacity < 1 then invalid_arg "Churn.make_config: capacity must be >= 1";
  if renew_every <= 0. || renew_every >= ttl then
    invalid_arg "Churn.make_config: renew_every must be in (0, ttl)";
  if crash_rate < 0. || crash_rate > 1. then
    invalid_arg "Churn.make_config: crash_rate must be in [0, 1]";
  if stale_wakeup < 0. || stale_wakeup > 1. then
    invalid_arg "Churn.make_config: stale_wakeup must be in [0, 1]";
  {
    clients;
    sessions_target;
    capacity;
    epsilon;
    ttl;
    renew_every;
    queue_limit;
    request_timeout;
    high_water;
    crash_rate;
    stale_wakeup;
    zipf_s;
    mean_hold;
    mean_think;
    restart_delay;
    max_attempts;
    backoff_unit;
    arrival;
    burst;
    max_events;
  }

type phase =
  | Idle
  | Waiting of int  (* ticket *)
  | Holding of Lease.fence
  | Crashed
  | Finished

type client = {
  rank : int;
  think_scale : float;
  mutable phase : phase;
  mutable gen : int;  (* bumped at every transition; stale timers are dropped *)
  mutable session : int option;  (* minted id of the in-flight session *)
  mutable attempts : int;
  mutable hold_end : float;
}

type ev =
  | E_start of { client : int; gen : int }
  | E_poll of { client : int; gen : int }
  | E_renew of { client : int; gen : int }
  | E_finish of { client : int; gen : int }
  | E_crash of { client : int; gen : int }
  | E_restart of { client : int; gen : int }
  | E_stale of { client : int; fence : Lease.fence }
  | E_burst_crash of { client : int }

type summary = {
  sessions : int;
  crashes : int;
  restarts : int;
  abandoned : int;
  stale_ops : int;
  stale_rejected : int;
  retries : int;
  unexpected_fenced : int;
  events : int;
  sim_time : float;
  peak_held : int;
  final_held : int;
  livelocked : bool;
  violation : (string * string) option;
  audit_near_misses : int;
  audit_violations : int;
  service : Service.stats;
  h_probes : Hist.t;
  h_reclaim : Hist.t;
  h_wait : Hist.t;
  h_lifetime : Hist.t;
}

let run ?obs ?tap cfg ~seed =
  let stream = Stream.create seed in
  let rng = Stream.fork_named stream ~name:"churn-driver" in
  let service_rng = Stream.fork_named stream ~name:"service" in
  let minter_rng = Stream.fork_named stream ~name:"minter" in
  let sim_now = ref 0. in
  let clock = Clock.of_fn ~label:"churn-sim" (fun () -> !sim_now) in
  let lease_cfg =
    Lease.make_config ~epsilon:cfg.epsilon ~ttl:cfg.ttl ~capacity:cfg.capacity ()
  in
  let admission_cfg =
    Admission.make_config ~queue_limit:cfg.queue_limit
      ~request_timeout:cfg.request_timeout ~high_water:cfg.high_water ()
  in
  let svc =
    Service.create ?obs ?tap ~clock ~rng:service_rng
      { Service.lease = lease_cfg; admission = admission_cfg }
  in
  let minter = Minter.create ~rng:minter_rng () in
  let zipf = Zipf.create ~s:cfg.zipf_s ~n:cfg.clients () in
  let retry_policy = Retry.make_policy ~attempts:(cfg.max_attempts + 1) () in
  let clients =
    Array.init cfg.clients (fun rank ->
        (* Hot (low-rank) clients re-arrive sooner: think time shrinks
           with the client's Zipf pressure, floored so the simulation
           keeps a spread of time scales. *)
        let pressure = Zipf.relative_pressure zipf rank in
        let think_scale = max 0.05 (1. /. sqrt pressure) in
        {
          rank;
          think_scale;
          phase = Idle;
          gen = 0;
          session = None;
          attempts = 0;
          hold_end = 0.;
        })
  in
  let heap : ev Heap.t = Heap.create () in
  let minted = ref 0 in
  let crashes = ref 0 in
  let restarts = ref 0 in
  let abandoned = ref 0 in
  let stale_ops = ref 0 in
  let stale_rejected = ref 0 in
  let retries = ref 0 in
  let unexpected_fenced = ref 0 in
  let peak_held = ref 0 in
  let n_events = ref 0 in
  let livelocked = ref false in
  let violation = ref None in
  (* ticket -> client index, for resolving pump completions *)
  let waiting = ref [] in
  let jitter ~around = around *. (0.5 +. Sample.float_unit rng) in
  let schedule ~at ev = Heap.push heap ~time:(max at !sim_now) ev in

  let think c = jitter ~around:(cfg.mean_think *. c.think_scale) in

  let begin_session_attempt idx ~at =
    let c = clients.(idx) in
    c.gen <- c.gen + 1;
    c.phase <- Idle;
    schedule ~at (E_start { client = idx; gen = c.gen })
  in

  let finish_session idx ~next_in =
    let c = clients.(idx) in
    c.session <- None;
    c.attempts <- 0;
    if !minted >= cfg.sessions_target then begin
      c.gen <- c.gen + 1;
      c.phase <- Finished
    end
    else begin_session_attempt idx ~at:(!sim_now +. next_in)
  in

  let enter_holding idx (grant : Lease.grant) =
    let c = clients.(idx) in
    c.gen <- c.gen + 1;
    c.attempts <- 0;
    c.phase <- Holding grant.Lease.g_fence;
    let hold = jitter ~around:cfg.mean_hold in
    c.hold_end <- !sim_now +. hold;
    if Sample.bernoulli rng cfg.crash_rate then
      schedule
        ~at:(!sim_now +. (Sample.float_unit rng *. hold))
        (E_crash { client = idx; gen = c.gen })
    else begin
      schedule ~at:c.hold_end (E_finish { client = idx; gen = c.gen });
      if !sim_now +. cfg.renew_every < c.hold_end then
        schedule ~at:(!sim_now +. cfg.renew_every) (E_renew { client = idx; gen = c.gen })
    end
  in

  let handle_completions completions =
    List.iter
      (fun completion ->
        match completion with
        | Service.Done { ticket; grant; _ } -> (
          match List.assoc_opt ticket !waiting with
          | None -> ()
          | Some idx ->
            waiting := List.remove_assoc ticket !waiting;
            let c = clients.(idx) in
            (match c.phase with
            | Waiting t when t = ticket -> enter_holding idx grant
            | _ ->
              (* The client is no longer waiting (e.g. burst-crashed):
                 hand the name straight back. *)
              ignore (Service.release svc ~fence:grant.Lease.g_fence)))
        | Service.Timed_out { ticket; _ } -> (
          match List.assoc_opt ticket !waiting with
          | None -> ()
          | Some idx ->
            waiting := List.remove_assoc ticket !waiting;
            let c = clients.(idx) in
            (match c.phase with
            | Waiting t when t = ticket ->
              c.gen <- c.gen + 1;
              c.phase <- Idle;
              c.attempts <- c.attempts + 1;
              if c.attempts > cfg.max_attempts then begin
                incr abandoned;
                finish_session idx ~next_in:(think c)
              end
              else begin
                incr retries;
                let delay =
                  float_of_int (Retry.backoff_delay retry_policy ~attempt:c.attempts)
                  *. cfg.backoff_unit
                in
                schedule ~at:(!sim_now +. delay) (E_start { client = idx; gen = c.gen })
              end
            | _ -> ())))
      completions
  in

  let crash_holding idx =
    let c = clients.(idx) in
    match c.phase with
    | Holding fence ->
      incr crashes;
      c.gen <- c.gen + 1;
      c.phase <- Crashed;
      schedule
        ~at:(!sim_now +. jitter ~around:cfg.restart_delay)
        (E_restart { client = idx; gen = c.gen });
      if Sample.bernoulli rng cfg.stale_wakeup then
        (* The dead incarnation wakes long after its lease could have
           survived: 1.5–2.5 TTLs later, well past expiry. *)
        schedule
          ~at:(!sim_now +. (1.5 *. cfg.ttl) +. (Sample.float_unit rng *. cfg.ttl))
          (E_stale { client = idx; fence })
    | _ -> ()
  in

  (* Seed arrivals. *)
  let arrivals = Arrival.times cfg.arrival ~n:cfg.clients in
  Array.iteri
    (fun idx at -> begin_session_attempt idx ~at:(float_of_int at *. 0.5))
    arrivals;
  (* Seed correlated crash bursts, reusing the crash-pattern generator:
     each (time, pid) pair becomes a forced crash of that client if it
     is holding a lease when the burst fires. *)
  (match cfg.burst with
  | None -> ()
  | Some b ->
    List.iter
      (fun (time, pid) ->
        schedule ~at:(float_of_int time) (E_burst_crash { client = pid }))
      (Crash_pattern.burst ~rng ~n:cfg.clients ~failures:b.b_failures ~at:b.b_at
         ~width:b.b_width));

  let fresh c gen = c.gen = gen in
  (try
     let continue_ = ref true in
     while !continue_ do
       if !n_events > cfg.max_events then begin
         livelocked := true;
         continue_ := false
       end
       else
         match Heap.pop heap with
         | None -> continue_ := false
         | Some (time, ev) ->
           incr n_events;
           sim_now := max !sim_now time;
           handle_completions (Service.pump svc);
           (match ev with
           | E_start { client = idx; gen } ->
             let c = clients.(idx) in
             if fresh c gen then begin
               (match c.session with
               | Some _ -> ()
               | None ->
                 if !minted < cfg.sessions_target then begin
                   c.session <- Some (Minter.mint minter);
                   incr minted
                 end);
               match c.session with
               | None ->
                 c.gen <- c.gen + 1;
                 c.phase <- Finished
               | Some session -> (
                 match Service.acquire svc ~session with
                 | Service.Granted grant -> enter_holding idx grant
                 | Service.Queued ticket ->
                   c.gen <- c.gen + 1;
                   c.phase <- Waiting ticket;
                   waiting := (ticket, idx) :: !waiting;
                   schedule
                     ~at:(!sim_now +. cfg.request_timeout +. 0.001)
                     (E_poll { client = idx; gen = c.gen })
                 | Service.Shed _ ->
                   c.attempts <- c.attempts + 1;
                   if c.attempts > cfg.max_attempts then begin
                     incr abandoned;
                     finish_session idx ~next_in:(think c)
                   end
                   else begin
                     incr retries;
                     c.gen <- c.gen + 1;
                     let delay =
                       float_of_int (Retry.backoff_delay retry_policy ~attempt:c.attempts)
                       *. cfg.backoff_unit
                     in
                     schedule ~at:(!sim_now +. delay)
                       (E_start { client = idx; gen = c.gen })
                   end)
             end
           | E_poll { client = idx; gen } ->
             (* Completions were handled by the pump above; the poll
                event only exists so a timeout cannot sit unprocessed
                when no other event touches the service. *)
             ignore (fresh clients.(idx) gen)
           | E_renew { client = idx; gen } ->
             let c = clients.(idx) in
             if fresh c gen then (
               match c.phase with
               | Holding fence -> (
                 match Service.renew svc ~fence with
                 | Ok _ ->
                   if !sim_now +. cfg.renew_every < c.hold_end then
                     schedule
                       ~at:(!sim_now +. cfg.renew_every)
                       (E_renew { client = idx; gen = c.gen })
                 | Error `Fenced ->
                   (* A live, renewing client must never be fenced. *)
                   incr unexpected_fenced;
                   c.gen <- c.gen + 1;
                   finish_session idx ~next_in:(think c))
               | _ -> ())
           | E_finish { client = idx; gen } ->
             let c = clients.(idx) in
             if fresh c gen then (
               match c.phase with
               | Holding fence ->
                 (match Service.use svc ~fence with
                 | Ok () -> ()
                 | Error `Fenced -> incr unexpected_fenced);
                 (match Service.release svc ~fence with
                 | Ok _ -> ()
                 | Error `Fenced -> incr unexpected_fenced);
                 c.gen <- c.gen + 1;
                 finish_session idx ~next_in:(think c)
               | _ -> ())
           | E_crash { client = idx; gen } ->
             let c = clients.(idx) in
             if fresh c gen then crash_holding idx
           | E_restart { client = idx; gen } ->
             let c = clients.(idx) in
             if fresh c gen then begin
               incr restarts;
               c.session <- None;
               c.attempts <- 0;
               if !minted >= cfg.sessions_target then begin
                 c.gen <- c.gen + 1;
                 c.phase <- Finished
               end
               else begin_session_attempt idx ~at:!sim_now
             end
           | E_stale { client = _; fence } ->
             (* The ghost of a crashed incarnation replays its fence.
                All three operations must come back [`Fenced]. *)
             let fenced = ref 0 in
             incr stale_ops;
             (match Service.renew svc ~fence with
             | Error `Fenced -> incr fenced
             | Ok _ -> ());
             (match Service.use svc ~fence with
             | Error `Fenced -> incr fenced
             | Ok () -> ());
             (match Service.release svc ~fence with
             | Error `Fenced -> incr fenced
             | Ok _ -> ());
             if !fenced = 3 then incr stale_rejected
           | E_burst_crash { client = idx } -> crash_holding idx);
           peak_held := max !peak_held (Service.held svc)
     done
   with Audit.Violation { kind; message } -> violation := Some (kind, message));
  {
    sessions = !minted;
    crashes = !crashes;
    restarts = !restarts;
    abandoned = !abandoned;
    stale_ops = !stale_ops;
    stale_rejected = !stale_rejected;
    retries = !retries;
    unexpected_fenced = !unexpected_fenced;
    events = !n_events;
    sim_time = !sim_now;
    peak_held = !peak_held;
    final_held = Service.held svc;
    livelocked = !livelocked;
    violation = !violation;
    audit_near_misses = Service.audit_near_misses svc;
    audit_violations = Service.audit_violations svc;
    service = Service.stats svc;
    h_probes = Service.probes_hist svc;
    h_reclaim = Service.reclaim_lateness_hist svc;
    h_wait = Service.queue_wait_hist svc;
    h_lifetime = Service.lifetime_hist svc;
  }
