(** The lease-handoff protocol, reduced to the shared-memory substrate
    for exhaustive checking.

    {!Lease} fences stale clients with epoch counters maintained inside
    the (sequential) service; its correctness argument is the classic
    fencing-token one.  This module re-expresses one slot's
    grant/reclaim/handoff cycle as racing {!Renaming_sched.Program}s
    over raw TAS registers, so mcheck can verify the argument over
    {e all} schedules (and fuzz can hunt it at larger n):

    - a shared word register holds the slot {e epoch} [e];
    - aux register [2e] is the epoch-[e] {e grant} lock, aux [2e+1] the
      epoch-[e] {e settle} lock;
    - a {e claimant} reads the epoch, TASes the grant lock, and — after
      a hold window — commits by TASing the settle lock; only a
      committed claimant returns the name (0);
    - the {e reclaimer} revokes epoch [e] by TASing the same settle
      lock and, on success, advances the epoch register.

    Safety (the no-double-grant property the auditor checks in the
    service): at most one process ever returns the name, because
    committing at epoch [e] and opening epoch [e+1] race for the one
    settle-lock TAS — a claimant that lost it is exactly a fenced stale
    client.  All namespace traffic goes through {!Renaming_faults.Retry},
    so the protocol also survives transient-fault injection. *)

val max_epoch : int
(** Epochs modelled (2: one reclamation cycle). *)

val claimant : tries:int -> int option Renaming_sched.Program.t
(** Read epoch, grab the grant lock, hold, commit via the settle lock;
    returns [Some 0] iff committed, retrying a fresh epoch read up to
    [tries] times. *)

val holder : int option Renaming_sched.Program.t
(** [claimant ~tries:1] — the incumbent whose lease is being taken. *)

val reclaimer : int option Renaming_sched.Program.t
(** Revoke the current epoch (settle-lock TAS) and advance the epoch
    register; never returns a name. *)

val stale_holder : int option Renaming_sched.Program.t
(** Seeded mutant: validates by {e re-reading the epoch register}
    instead of taking the settle lock — the time-of-check/time-of-use
    bug fencing exists to prevent.  A schedule where the holder
    validates before the reclaimer advances the epoch yields two
    committed holders; fuzz must find it. *)

val instance : n:int -> seed:int64 -> Renaming_sched.Executor.instance
(** [n >= 2] processes: the holder, the reclaimer, and [n - 2]
    claimants (two tries each).  Deterministic — [seed] is unused but
    kept for roster-builder uniformity. *)

val instance_stale_write : n:int -> seed:int64 -> Renaming_sched.Executor.instance
(** Same shape with {!stale_holder} in place of {!holder}. *)
