module Clock = Renaming_clock.Clock
module Stream = Renaming_rng.Stream
module Sample = Renaming_rng.Sample
module Retry = Renaming_faults.Retry
module Arrival = Renaming_workload.Arrival
module Zipf = Renaming_workload.Zipf

type partition_plan = { p_every : float; p_duration : float; p_both : float }
type crash_plan = { c_every : float; c_restart : float }

type config = {
  clients : int;
  sessions_target : int;
  router : Router.config;
  faults : Transport.faults;
  hb_every : float;
  suspicion : float;
  dedup_window : float;
  rto : float;
  zipf_s : float;
  mean_hold : float;
  mean_think : float;
  renew_every : float;
  crash_rate : float;
  stale_wakeup : float;
  client_restart_delay : float;
  max_attempts : int;
  rto_retries : int;
  backoff_unit : float;
  arrival : Arrival.pattern;
  partition : partition_plan option;
  shard_crash : crash_plan option;
  max_events : int;
}

let make_config ?(clients = 96) ?(sessions_target = 8_000)
    ?(router = Router.make_config ~ttl:15.0 ~grace:24.0 ~auto_rebalance:false ())
    ?(faults = Transport.make_faults ()) ?(hb_every = 1.0) ?(suspicion = 2.5)
    ?(dedup_window = 60.0) ?(rto = 0.75) ?(zipf_s = 1.0) ?(mean_hold = 6.0)
    ?(mean_think = 4.0) ?(renew_every = 3.0) ?(crash_rate = 0.1)
    ?(stale_wakeup = 0.2) ?(client_restart_delay = 8.0) ?(max_attempts = 8)
    ?(rto_retries = 3) ?(backoff_unit = 0.25)
    ?(arrival = Arrival.Staggered { gap = 1 }) ?partition ?shard_crash
    ?(max_events = 200_000_000) () =
  let maxd = faults.Transport.delay_max +. faults.Transport.reorder_extra in
  if clients < 1 then invalid_arg "Net_churn.make_config: clients must be >= 1";
  if sessions_target < 1 then
    invalid_arg "Net_churn.make_config: sessions_target must be >= 1";
  if hb_every <= 0. then invalid_arg "Net_churn.make_config: hb_every must be > 0";
  if suspicion <= hb_every then
    invalid_arg "Net_churn.make_config: suspicion must exceed hb_every";
  if rto <= 0. then invalid_arg "Net_churn.make_config: rto must be > 0";
  if renew_every <= 0. || renew_every >= router.Router.ttl then
    invalid_arg "Net_churn.make_config: renew_every must be in (0, ttl)";
  if crash_rate < 0. || crash_rate > 1. then
    invalid_arg "Net_churn.make_config: crash_rate must be in [0, 1]";
  if stale_wakeup < 0. || stale_wakeup > 1. then
    invalid_arg "Net_churn.make_config: stale_wakeup must be in [0, 1]";
  (* Holds must end safely inside the unrenewed lease lifetime: renewals
     are belt and braces over a lossy network, never load-bearing. *)
  if (1.5 *. mean_hold) +. (4. *. rto) >= router.Router.ttl then
    invalid_arg "Net_churn.make_config: 1.5*mean_hold + 4*rto must stay below ttl";
  (* A silently crashed shard may have served renews until one heartbeat
     period after its last heartbeat; suspicion starts the grace clock at
     last + suspicion, so grace must absorb a full lease lifetime plus
     the heartbeat period plus in-flight delivery on both legs. *)
  if router.Router.grace < router.Router.ttl +. hb_every +. (2. *. maxd) then
    invalid_arg "Net_churn.make_config: grace must be >= ttl + hb_every + 2*max_delay";
  (* Safe-eviction bound: no duplicate of a rid can arrive after its
     client's last possible retransmit plus the delivery bound.  The
     retransmit horizon is dominated by queue polling (a queued rid is
     re-polled every rto until the queue outcome is known). *)
  let max_polls =
    int_of_float (ceil ((router.Router.request_timeout +. router.Router.ttl) /. rto)) + 4
  in
  let horizon = rto *. float_of_int (max_polls + rto_retries + 8) in
  if dedup_window < horizon +. (2. *. maxd) then
    invalid_arg "Net_churn.make_config: dedup_window below the retransmit horizon";
  (match partition with
  | Some p when p.p_duration <= 0. || p.p_every <= 0. || p.p_both < 0. || p.p_both > 1.
    ->
    invalid_arg "Net_churn.make_config: malformed partition plan"
  | _ -> ());
  (match shard_crash with
  | Some c when c.c_every <= 0. || c.c_restart <= 0. ->
    invalid_arg "Net_churn.make_config: malformed crash plan"
  | _ -> ());
  {
    clients;
    sessions_target;
    router;
    faults;
    hb_every;
    suspicion;
    dedup_window;
    rto;
    zipf_s;
    mean_hold;
    mean_think;
    renew_every;
    crash_rate;
    stale_wakeup;
    client_restart_delay;
    max_attempts;
    rto_retries;
    backoff_unit;
    arrival;
    partition;
    shard_crash;
    max_events;
  }

(* {2 Wire types} *)

type op =
  | Op_acquire of { session : int; key : int; hint : int option }
  | Op_renew of Router.gfence
  | Op_use of Router.gfence
  | Op_release of Router.gfence

type req = { rq_client : int; rq_seq : int; rq_op : op }

type body =
  | B_granted of { slice : int; shard : int; fence : Router.gfence }
  | B_queued
  | B_shed
  | B_busy of [ `Down | `Handoff ]
  | B_redirect of { shard : int }
  | B_timeout
  | B_fenced
  | B_ok

type msg =
  | M_req of req
  | M_fwd of { shard : int; slice : int; epoch : int; req : req }
  | M_rep of { rp_client : int; rp_seq : int; rp_body : body }
  | M_hb of { shard : int; incarnation : int }

(* {2 Client state} *)

type phase =
  | Idle
  | Acquiring of { seq : int }
  | Queued_wait of { seq : int }
  | Holding of Router.gfence
  | Releasing of { seq : int; fence : Router.gfence }
  | Crashed
  | Finished

type client = {
  key : int;
  c_slice : int;
  think_scale : float;
  mutable phase : phase;
  mutable gen : int;  (* bumped at every transition; stale timers are dropped *)
  mutable session : int option;
  mutable seq : int;  (* strictly increasing request ids — the dedup key *)
  mutable attempts : int;  (* whole-request attempts this session *)
  mutable rto_count : int;  (* retransmits of the rid in flight *)
  mutable prev_delay : int;  (* decorrelated-jitter walk state *)
  mutable renew_pending : (int * int) option;  (* seq, resends *)
  mutable hold_end : float;
  mutable hint : int option;
  mutable acq_d_gen : int;  (* slice disruption gen when the rid was first sent *)
  mutable d_gen : int;  (* ... when the grant was accepted *)
}

type ev =
  | E_start of { client : int; gen : int }
  | E_rto of { client : int; gen : int }
  | E_renew of { client : int; gen : int }
  | E_renew_rto of { client : int; gen : int; seq : int }
  | E_finish of { client : int; gen : int }
  | E_client_crash of { client : int; gen : int }
  | E_client_restart of { client : int; gen : int }
  | E_stale of { fence : Router.gfence }
  | E_hb of { shard : int }
  | E_partition of unit
  | E_shard_crash of unit
  | E_shard_restart of { shard : int }
  | E_tick of unit

type summary = {
  sessions : int;
  client_crashes : int;
  client_restarts : int;
  shard_crashes : int;
  shard_restarts : int;
  partitions : int;
  abandoned : int;
  resends : int;
  timeouts : int;
  lost_tickets : int;
  redirects : int;
  shard_down_busy : int;
  in_handoff_busy : int;
  sheds : int;
  expected_fenced : int;
  unexpected_fenced : int;
  releases_dropped : int;
  late_grants_released : int;
  double_grants : int;
  stale_ops : int;
  stale_rejected : int;
  stale_ok : int;
  events : int;
  sim_time : float;
  peak_held : int;
  final_held : int;
  livelocked : bool;
  violation : (string * string) option;
  audit_near_misses : int;
  gaudit_violations : int;
  gaudit_live : int;
  net : Transport.stats;
  dedup : Dedup.stats;
  detector : Router.detector_stats;
  router : Router.stats;
}

let run ?obs ?tap (cfg : config) ~seed =
  let stream = Stream.create seed in
  let rng = Stream.fork_named stream ~name:"net-churn-driver" in
  let net_rng = Stream.fork_named stream ~name:"net-transport" in
  let minter_rng = Stream.fork_named stream ~name:"minter" in
  let sim_now = ref 0. in
  let clock = Clock.of_fn ~label:"net-churn-sim" (fun () -> !sim_now) in
  let router =
    Router.create ?obs ?tap ~clock ~seed:(Int64.logxor seed 0x7E7_D0_5EL) cfg.router
  in
  Router.enable_detector router ~suspicion:cfg.suspicion;
  let net : msg Transport.t = Transport.create ~faults:cfg.faults ~rng:net_rng () in
  let minter = Minter.create ~rng:minter_rng () in
  let zipf = Zipf.create ~s:cfg.zipf_s ~n:cfg.clients () in
  let retry_policy = Retry.make_policy ~attempts:(cfg.max_attempts + 1) () in
  let n_slices = Router.slices router in
  let n_shards = cfg.router.Router.shards in
  let max_polls =
    int_of_float
      (ceil ((cfg.router.Router.request_timeout +. cfg.router.Router.ttl) /. cfg.rto))
    + 4
  in
  (* Bumped whenever a slice provably loses (or will lose) its body;
     grants accepted before the bump are *expected* to be fenced. *)
  let disruption = Array.make n_slices 0 in
  (* One dedup table per slice: the table is part of the slice state, so
     a clean handoff carries it along (same index) and a crash loses it
     together with the body (see [retire_dedup]). *)
  let dedup = Array.init n_slices (fun _ -> Dedup.create ~window:cfg.dedup_window ()) in
  let dedup_retired =
    { Dedup.fresh = 0; replays = 0; stale = 0; evictions = 0 }
  in
  let retire_dedup slice =
    let s = Dedup.stats dedup.(slice) in
    dedup_retired.Dedup.fresh <- dedup_retired.Dedup.fresh + s.Dedup.fresh;
    dedup_retired.Dedup.replays <- dedup_retired.Dedup.replays + s.Dedup.replays;
    dedup_retired.Dedup.stale <- dedup_retired.Dedup.stale + s.Dedup.stale;
    dedup_retired.Dedup.evictions <- dedup_retired.Dedup.evictions + s.Dedup.evictions;
    dedup.(slice) <- Dedup.create ~window:cfg.dedup_window ()
  in
  (* rid -> slice disruption generation at its (only legitimate) grant
     execution; a second execution at the same generation is an
     at-most-once violation. *)
  let granted_rids : (int * int, int) Hashtbl.t = Hashtbl.create 1024 in
  let incarnation = Array.make n_shards 0 in
  let clients =
    Array.init cfg.clients (fun rank ->
        let pressure = Zipf.relative_pressure zipf rank in
        let think_scale = max 0.05 (1. /. sqrt pressure) in
        let key = rank * n_slices / cfg.clients in
        {
          key;
          c_slice = Router.slice_of_key router ~key;
          think_scale;
          phase = Idle;
          gen = 0;
          session = None;
          seq = 0;
          attempts = 0;
          rto_count = 0;
          prev_delay = 0;
          renew_pending = None;
          hold_end = 0.;
          hint = None;
          acq_d_gen = 0;
          d_gen = 0;
        })
  in
  let heap : ev Heap.t = Heap.create () in
  let minted = ref 0 in
  let client_crashes = ref 0 in
  let client_restarts = ref 0 in
  let shard_crashes = ref 0 in
  let shard_restarts = ref 0 in
  let partitions = ref 0 in
  let abandoned = ref 0 in
  let resends = ref 0 in
  let timeouts = ref 0 in
  let lost_tickets = ref 0 in
  let redirects = ref 0 in
  let shard_down_busy = ref 0 in
  let in_handoff_busy = ref 0 in
  let sheds = ref 0 in
  let expected_fenced = ref 0 in
  let unexpected_fenced = ref 0 in
  let releases_dropped = ref 0 in
  let late_grants_released = ref 0 in
  let double_grants = ref 0 in
  let stale_ops = ref 0 in
  let stale_rejected = ref 0 in
  let stale_ok = ref 0 in
  let peak_held = ref 0 in
  let n_events = ref 0 in
  let livelocked = ref false in
  let violation = ref None in
  let active_clients = ref cfg.clients in
  let partition_rr = ref 0 in
  let crash_rr = ref 0 in
  let ghost_next = ref cfg.clients in
  (* (slice, ticket) -> (client, rid seq), for turning queue completions
     back into replies to the rid that enqueued. *)
  let waiting = ref [] in
  let jitter ~around = around *. (0.5 +. Sample.float_unit rng) in
  let schedule ~at ev = Heap.push heap ~time:(max at !sim_now) ev in
  let think c = jitter ~around:(cfg.mean_think *. c.think_scale) in

  let send ~src ~dst m = Transport.send net ~now:!sim_now ~src ~dst m in
  let send_req idx (o : op) =
    let c = clients.(idx) in
    c.seq <- c.seq + 1;
    send ~src:(Transport.Client idx) ~dst:Transport.Router
      (M_req { rq_client = idx; rq_seq = c.seq; rq_op = o });
    c.seq
  in
  let resend_req idx ~seq (o : op) =
    incr resends;
    send ~src:(Transport.Client idx) ~dst:Transport.Router
      (M_req { rq_client = idx; rq_seq = seq; rq_op = o })
  in
  let acquire_op c = Op_acquire { session = Option.get c.session; key = c.key; hint = c.hint } in

  let note_grant ~client ~seq ~slice =
    let rid = (client, seq) in
    let gen = disruption.(slice) in
    (match Hashtbl.find_opt granted_rids rid with
    | Some g when g = gen -> incr double_grants
    | _ -> ());
    Hashtbl.replace granted_rids rid gen
  in

  let set_finished c =
    if c.phase <> Finished then begin
      c.gen <- c.gen + 1;
      c.phase <- Finished;
      decr active_clients
    end
  in

  let begin_session_attempt idx ~at =
    let c = clients.(idx) in
    c.gen <- c.gen + 1;
    c.phase <- Idle;
    schedule ~at (E_start { client = idx; gen = c.gen })
  in

  let finish_session idx ~next_in =
    let c = clients.(idx) in
    c.session <- None;
    c.attempts <- 0;
    c.prev_delay <- 0;
    c.renew_pending <- None;
    if !minted >= cfg.sessions_target then set_finished c
    else begin_session_attempt idx ~at:(!sim_now +. next_in)
  in

  let backoff c =
    let d = Retry.jittered_delay retry_policy ~rng ~prev:c.prev_delay in
    c.prev_delay <- d;
    float_of_int d *. cfg.backoff_unit
  in

  let retry_or_abandon idx =
    let c = clients.(idx) in
    c.attempts <- c.attempts + 1;
    if c.attempts > cfg.max_attempts then begin
      incr abandoned;
      finish_session idx ~next_in:(think c)
    end
    else begin
      c.gen <- c.gen + 1;
      c.phase <- Idle;
      schedule ~at:(!sim_now +. backoff c) (E_start { client = idx; gen = c.gen })
    end
  in

  let classify_fenced idx slice =
    let c = clients.(idx) in
    if disruption.(slice) > c.d_gen then incr expected_fenced
    else incr unexpected_fenced
  in

  let send_renew idx =
    let c = clients.(idx) in
    match c.phase with
    | Holding fence when c.renew_pending = None ->
      let seq = send_req idx (Op_renew fence) in
      c.renew_pending <- Some (seq, 0);
      schedule ~at:(!sim_now +. cfg.rto) (E_renew_rto { client = idx; gen = c.gen; seq })
    | _ -> ()
  in

  let enter_holding idx ~slice ~shard fence =
    let c = clients.(idx) in
    c.gen <- c.gen + 1;
    c.attempts <- 0;
    c.rto_count <- 0;
    c.hint <- Some shard;
    c.d_gen <- c.acq_d_gen;
    c.renew_pending <- None;
    ignore slice;
    c.phase <- Holding fence;
    let hold = jitter ~around:cfg.mean_hold in
    c.hold_end <- !sim_now +. hold;
    if Sample.bernoulli rng cfg.crash_rate then
      schedule
        ~at:(!sim_now +. (Sample.float_unit rng *. hold))
        (E_client_crash { client = idx; gen = c.gen })
    else begin
      schedule ~at:c.hold_end (E_finish { client = idx; gen = c.gen });
      schedule ~at:(!sim_now +. cfg.renew_every) (E_renew { client = idx; gen = c.gen })
    end;
    (* Renew immediately: the grant may have spent several reply-loss
       poll rounds in flight, so refresh the lease's expiry before the
       hold clock starts mattering. *)
    send_renew idx
  in

  (* {2 Fault injection} *)

  let disrupt_owned ~shard =
    for slice = 0 to n_slices - 1 do
      if Router.owner router ~slice = Some shard then
        disruption.(slice) <- disruption.(slice) + 1
    done
  in

  let silent_crash shard =
    let sh = Router.shard router ~id:shard in
    if Shard.alive sh ~now:!sim_now then begin
      disrupt_owned ~shard;
      List.iter
        (fun (slice, from_, _to) ->
          if from_ = shard then disruption.(slice) <- disruption.(slice) + 1)
        (Router.in_transit router);
      (* The body and its dedup tables die together; pending tickets on
         the lost slices can never complete. *)
      for slice = 0 to n_slices - 1 do
        if Router.owner router ~slice = Some shard then begin
          retire_dedup slice;
          waiting := List.filter (fun ((s, _), _) -> s <> slice) !waiting
        end
      done;
      Shard.crash sh ~now:!sim_now;
      incr shard_crashes;
      match cfg.shard_crash with
      | Some c ->
        schedule
          ~at:(!sim_now +. jitter ~around:c.c_restart)
          (E_shard_restart { shard })
      | None -> ()
    end
  in

  (* {2 Node message handlers} *)

  let reply_from src (req : req) body =
    send ~src ~dst:(Transport.Client req.rq_client)
      (M_rep { rp_client = req.rq_client; rp_seq = req.rq_seq; rp_body = body })
  in

  let on_router m =
    match m with
    | M_hb { shard; incarnation } -> Router.heartbeat router ~shard ~incarnation
    | M_req req -> (
      let forward ~slice =
        match Router.route router ~slice with
        | Error (Router.In_handoff _) -> reply_from Transport.Router req (B_busy `Handoff)
        | Error (Router.Shard_down _ | Router.Redirected _) ->
          reply_from Transport.Router req (B_busy `Down)
        | Ok (shard, epoch) ->
          send ~src:Transport.Router ~dst:(Transport.Shard shard)
            (M_fwd { shard; slice; epoch; req })
      in
      match req.rq_op with
      | Op_acquire { key; hint; _ } -> (
        let slice = Router.slice_of_key router ~key in
        match Router.route router ~slice with
        | Error (Router.In_handoff _) -> reply_from Transport.Router req (B_busy `Handoff)
        | Error (Router.Shard_down _ | Router.Redirected _) ->
          reply_from Transport.Router req (B_busy `Down)
        | Ok (shard, epoch) -> (
          match hint with
          | Some h when h <> shard -> reply_from Transport.Router req (B_redirect { shard })
          | _ ->
            send ~src:Transport.Router ~dst:(Transport.Shard shard)
              (M_fwd { shard; slice; epoch; req })))
      | Op_renew gf | Op_use gf | Op_release gf -> forward ~slice:gf.Router.gf_slice)
    | M_fwd _ | M_rep _ -> ()
  in

  let execute sl ~slice ~shard (req : req) =
    match req.rq_op with
    | Op_acquire { session; _ } -> (
      match Service.acquire sl.Shard.sl_svc ~session with
      | Service.Granted grant ->
        note_grant ~client:req.rq_client ~seq:req.rq_seq ~slice;
        B_granted
          {
            slice;
            shard;
            fence = { Router.gf_slice = slice; gf_fence = grant.Lease.g_fence };
          }
      | Service.Queued ticket ->
        waiting := ((slice, ticket), (req.rq_client, req.rq_seq)) :: !waiting;
        B_queued
      | Service.Shed _ -> B_shed)
    | Op_renew gf -> (
      match Service.renew sl.Shard.sl_svc ~fence:gf.Router.gf_fence with
      | Ok _ -> B_ok
      | Error `Fenced -> B_fenced)
    | Op_use gf -> (
      match Service.use sl.Shard.sl_svc ~fence:gf.Router.gf_fence with
      | Ok () -> B_ok
      | Error `Fenced -> B_fenced)
    | Op_release gf -> (
      match Service.release sl.Shard.sl_svc ~fence:gf.Router.gf_fence with
      | Ok _ -> B_ok
      | Error `Fenced -> B_fenced)
  in

  let on_shard s m =
    match m with
    | M_fwd { shard; slice; epoch; req } when shard = s -> (
      let sh = Router.shard router ~id:s in
      if Shard.alive sh ~now:!sim_now then begin
        let d = dedup.(slice) in
        match Dedup.admit d ~client:req.rq_client ~seq:req.rq_seq ~now:!sim_now with
        | Dedup.Replay b -> reply_from (Transport.Shard s) req b
        | Dedup.Stale -> ()
        | Dedup.Fresh -> (
          match Shard.find_slice sh ~slice with
          | Some sl when sl.Shard.sl_epoch = epoch ->
            let b = execute sl ~slice ~shard:s req in
            Dedup.record d ~client:req.rq_client ~seq:req.rq_seq ~now:!sim_now b;
            reply_from (Transport.Shard s) req b
          | _ ->
            (* The directory moved on while the forward was in flight:
               refuse without recording — the retransmit will be routed
               afresh and must be allowed to execute. *)
            reply_from (Transport.Shard s) req (B_busy `Down))
      end)
    | M_fwd _ | M_req _ | M_rep _ | M_hb _ -> ()
  in

  (* {2 Client reply handlers} *)

  let acquire_reply idx body =
    let c = clients.(idx) in
    match body with
    | B_granted { slice; shard; fence } -> enter_holding idx ~slice ~shard fence
    | B_queued ->
      c.gen <- c.gen + 1;
      c.rto_count <- 0;
      (match c.phase with Acquiring { seq } -> c.phase <- Queued_wait { seq } | _ -> ());
      schedule ~at:(!sim_now +. cfg.rto) (E_rto { client = idx; gen = c.gen })
    | B_redirect { shard } ->
      incr redirects;
      c.hint <- Some shard;
      (match c.phase with
      | Acquiring { seq } -> resend_req idx ~seq (acquire_op c)
      | _ -> ())
    | B_shed ->
      incr sheds;
      retry_or_abandon idx
    | B_busy `Down ->
      incr shard_down_busy;
      c.hint <- None;
      retry_or_abandon idx
    | B_busy `Handoff ->
      incr in_handoff_busy;
      retry_or_abandon idx
    | B_timeout -> retry_or_abandon idx
    | B_fenced | B_ok -> ()
  in

  let queued_reply idx body =
    match body with
    | B_granted { slice; shard; fence } -> enter_holding idx ~slice ~shard fence
    | B_timeout -> retry_or_abandon idx
    | B_busy `Down -> incr shard_down_busy
    | B_busy `Handoff -> incr in_handoff_busy
    | B_queued | B_shed | B_redirect _ | B_fenced | B_ok -> ()
  in

  let renew_reply idx fence body =
    let c = clients.(idx) in
    match body with
    | B_ok -> c.renew_pending <- None
    | B_fenced ->
      c.renew_pending <- None;
      classify_fenced idx fence.Router.gf_slice;
      finish_session idx ~next_in:(think c)
    | B_busy `Down -> incr shard_down_busy
    | B_busy `Handoff -> incr in_handoff_busy
    | B_granted _ | B_queued | B_shed | B_redirect _ | B_timeout -> ()
  in

  let release_reply idx fence body =
    let c = clients.(idx) in
    match body with
    | B_ok -> finish_session idx ~next_in:(think c)
    | B_fenced ->
      classify_fenced idx fence.Router.gf_slice;
      finish_session idx ~next_in:(think c)
    | B_busy `Down -> incr shard_down_busy
    | B_busy `Handoff -> incr in_handoff_busy
    | B_granted _ | B_queued | B_shed | B_redirect _ | B_timeout -> ()
  in

  let ghost_reply body =
    match body with
    | B_ok -> incr stale_ok
    | B_fenced | B_busy _ | B_timeout -> incr stale_rejected
    | B_granted _ | B_queued | B_shed | B_redirect _ -> ()
  in

  let on_client idx (rp_seq : int) body =
    if idx >= cfg.clients then ghost_reply body
    else begin
      let c = clients.(idx) in
      let handled =
        match c.phase with
        | Acquiring { seq } when rp_seq = seq ->
          acquire_reply idx body;
          true
        | Queued_wait { seq } when rp_seq = seq ->
          queued_reply idx body;
          true
        | Holding fence
          when match c.renew_pending with Some (s, _) -> rp_seq = s | None -> false ->
          renew_reply idx fence body;
          true
        | Releasing { seq; fence } when rp_seq = seq ->
          release_reply idx fence body;
          true
        | _ -> false
      in
      if not handled then
        match body with
        | B_granted { fence; _ } ->
          (* A grant nobody is waiting for.  A duplicate delivery of the
             lease we already hold is ignored; anything else (abandoned
             rid, crashed requester) is handed straight back. *)
          let held =
            match c.phase with
            | Holding f -> Some f
            | Releasing { fence = f; _ } -> Some f
            | _ -> None
          in
          if held <> Some fence then begin
            incr late_grants_released;
            ignore (send_req idx (Op_release fence))
          end
        | _ -> ()
    end
  in

  let handle_msg (_src, dst, m) =
    incr n_events;
    match (dst : Transport.addr) with
    | Transport.Router -> on_router m
    | Transport.Shard s -> on_shard s m
    | Transport.Client i -> (
      match m with
      | M_rep { rp_seq; rp_body; _ } -> on_client i rp_seq rp_body
      | M_req _ | M_fwd _ | M_hb _ -> ())
  in

  (* Queue completions surface at the owning shard: record the final
     outcome over the provisional B_queued (so later retransmits replay
     it) and push a reply to the rid's client. *)
  let handle_completions completions =
    List.iter
      (fun { Router.c_slice; c_shard; c_done } ->
        let ticket, body =
          match c_done with
          | Service.Done { ticket; grant; _ } ->
            ( ticket,
              B_granted
                {
                  slice = c_slice;
                  shard = c_shard;
                  fence =
                    { Router.gf_slice = c_slice; gf_fence = grant.Lease.g_fence };
                } )
          | Service.Timed_out { ticket; _ } -> (ticket, B_timeout)
        in
        let key = (c_slice, ticket) in
        match List.assoc_opt key !waiting with
        | Some (client, seq) ->
          waiting := List.remove_assoc key !waiting;
          (match c_done with
          | Service.Done _ -> note_grant ~client ~seq ~slice:c_slice
          | Service.Timed_out _ -> ());
          Dedup.record dedup.(c_slice) ~client ~seq ~now:!sim_now body;
          send ~src:(Transport.Shard c_shard) ~dst:(Transport.Client client)
            (M_rep { rp_client = client; rp_seq = seq; rp_body = body })
        | None -> (
          (* The rid bookkeeping died with a crashed body: nobody will
             ever claim this grant, so hand it back at once. *)
          match c_done with
          | Service.Done { grant; _ } ->
            incr late_grants_released;
            ignore
              (Router.release router
                 ~fence:{ Router.gf_slice = c_slice; gf_fence = grant.Lease.g_fence })
          | Service.Timed_out _ -> ()))
      completions
  in

  let pump () = handle_completions (Router.pump router) in

  let crash_holding idx =
    let c = clients.(idx) in
    match c.phase with
    | Holding fence ->
      incr client_crashes;
      c.gen <- c.gen + 1;
      c.phase <- Crashed;
      c.renew_pending <- None;
      schedule
        ~at:(!sim_now +. jitter ~around:cfg.client_restart_delay)
        (E_client_restart { client = idx; gen = c.gen });
      if Sample.bernoulli rng cfg.stale_wakeup then
        schedule
          ~at:
            (!sim_now +. (1.5 *. cfg.router.Router.ttl)
            +. (Sample.float_unit rng *. cfg.router.Router.ttl))
          (E_stale { fence })
    | _ -> ()
  in

  (* {2 Seeding} *)

  let arrivals = Arrival.times cfg.arrival ~n:cfg.clients in
  Array.iteri
    (fun idx at -> begin_session_attempt idx ~at:(float_of_int at *. 0.5))
    arrivals;
  for shard = 0 to n_shards - 1 do
    schedule
      ~at:(float_of_int shard *. cfg.hb_every /. float_of_int n_shards)
      (E_hb { shard })
  done;
  (match cfg.partition with
  | None -> ()
  | Some p -> schedule ~at:p.p_every (E_partition ()));
  (match cfg.shard_crash with
  | None -> ()
  | Some c -> schedule ~at:c.c_every (E_shard_crash ()));
  schedule ~at:(cfg.router.Router.ttl /. 2.) (E_tick ());

  let fresh c gen = c.gen = gen in

  let handle_event ev =
    match ev with
    | E_start { client = idx; gen } ->
      let c = clients.(idx) in
      if fresh c gen then begin
        (match c.session with
        | Some _ -> ()
        | None ->
          if !minted < cfg.sessions_target then begin
            c.session <- Some (Minter.mint minter);
            incr minted
          end);
        match c.session with
        | None -> set_finished c
        | Some _ ->
          c.gen <- c.gen + 1;
          c.rto_count <- 0;
          c.acq_d_gen <- disruption.(c.c_slice);
          let seq = send_req idx (acquire_op c) in
          c.phase <- Acquiring { seq };
          schedule ~at:(!sim_now +. cfg.rto) (E_rto { client = idx; gen = c.gen })
      end
    | E_rto { client = idx; gen } ->
      let c = clients.(idx) in
      if fresh c gen then (
        match c.phase with
        | Acquiring { seq } ->
          c.rto_count <- c.rto_count + 1;
          if c.rto_count > cfg.rto_retries then begin
            incr timeouts;
            retry_or_abandon idx
          end
          else begin
            resend_req idx ~seq (acquire_op c);
            schedule ~at:(!sim_now +. cfg.rto) (E_rto { client = idx; gen = c.gen })
          end
        | Queued_wait { seq } ->
          c.rto_count <- c.rto_count + 1;
          if c.rto_count > max_polls then begin
            incr lost_tickets;
            retry_or_abandon idx
          end
          else begin
            resend_req idx ~seq (acquire_op c);
            schedule ~at:(!sim_now +. cfg.rto) (E_rto { client = idx; gen = c.gen })
          end
        | Releasing { seq; fence } ->
          c.rto_count <- c.rto_count + 1;
          if c.rto_count > 3 then begin
            (* Give up releasing into a lossy/dark path: the lease
               expires and is reclaimed on its own. *)
            incr releases_dropped;
            finish_session idx ~next_in:(think c)
          end
          else begin
            resend_req idx ~seq (Op_release fence);
            schedule ~at:(!sim_now +. cfg.rto) (E_rto { client = idx; gen = c.gen })
          end
        | Idle | Holding _ | Crashed | Finished -> ())
    | E_renew { client = idx; gen } ->
      let c = clients.(idx) in
      if fresh c gen then (
        match c.phase with
        | Holding _ ->
          send_renew idx;
          if !sim_now +. cfg.renew_every < c.hold_end then
            schedule ~at:(!sim_now +. cfg.renew_every)
              (E_renew { client = idx; gen = c.gen })
        | _ -> ())
    | E_renew_rto { client = idx; gen; seq } ->
      let c = clients.(idx) in
      if fresh c gen then (
        match (c.phase, c.renew_pending) with
        | Holding fence, Some (s, tries) when s = seq ->
          if tries >= 4 then c.renew_pending <- None
          else begin
            c.renew_pending <- Some (s, tries + 1);
            resend_req idx ~seq (Op_renew fence);
            schedule ~at:(!sim_now +. cfg.rto)
              (E_renew_rto { client = idx; gen = c.gen; seq })
          end
        | _ -> ())
    | E_finish { client = idx; gen } ->
      let c = clients.(idx) in
      if fresh c gen then (
        match c.phase with
        | Holding fence ->
          c.gen <- c.gen + 1;
          c.rto_count <- 0;
          c.renew_pending <- None;
          let seq = send_req idx (Op_release fence) in
          c.phase <- Releasing { seq; fence };
          schedule ~at:(!sim_now +. cfg.rto) (E_rto { client = idx; gen = c.gen })
        | _ -> ())
    | E_client_crash { client = idx; gen } ->
      let c = clients.(idx) in
      if fresh c gen then crash_holding idx
    | E_client_restart { client = idx; gen } ->
      let c = clients.(idx) in
      if fresh c gen then begin
        incr client_restarts;
        c.session <- None;
        c.attempts <- 0;
        c.prev_delay <- 0;
        if !minted >= cfg.sessions_target then set_finished c
        else begin_session_attempt idx ~at:!sim_now
      end
    | E_stale { fence } ->
      (* The ghost of a crashed incarnation replays its fence from a
         fresh network identity; every operation must come back fenced,
         busy, or not at all — a B_ok is a fencing hole. *)
      let g = !ghost_next in
      ghost_next := g + 1;
      stale_ops := !stale_ops + 3;
      List.iteri
        (fun i o ->
          send ~src:(Transport.Client g) ~dst:Transport.Router
            (M_req { rq_client = g; rq_seq = i + 1; rq_op = o }))
        [ Op_renew fence; Op_use fence; Op_release fence ]
    | E_hb { shard } ->
      let sh = Router.shard router ~id:shard in
      if Shard.alive sh ~now:!sim_now then
        send ~src:(Transport.Shard shard) ~dst:Transport.Router
          (M_hb { shard; incarnation = incarnation.(shard) });
      if !active_clients > 0 then
        schedule ~at:(!sim_now +. cfg.hb_every) (E_hb { shard })
    | E_partition () -> (
      match cfg.partition with
      | None -> ()
      | Some p ->
        let shard = !partition_rr mod n_shards in
        incr partition_rr;
        if
          Shard.alive (Router.shard router ~id:shard) ~now:!sim_now
          && not (Transport.partitioned net ~now:!sim_now
                    ~src:(Transport.Shard shard) ~dst:Transport.Router)
        then begin
          incr partitions;
          let until = !sim_now +. jitter ~around:p.p_duration in
          Transport.partition net ~src:(Transport.Shard shard) ~dst:Transport.Router
            ~until;
          if Sample.bernoulli rng p.p_both then
            Transport.partition net ~src:Transport.Router ~dst:(Transport.Shard shard)
              ~until;
          (* A partition long enough to trigger suspicion can cost the
             shard its slices (adoption) or its holders their renews;
             either way the fences issued before it are doomed. *)
          if until -. !sim_now >= cfg.suspicion then disrupt_owned ~shard
        end;
        if !active_clients > 0 then
          schedule ~at:(!sim_now +. p.p_every) (E_partition ()))
    | E_shard_crash () -> (
      match cfg.shard_crash with
      | None -> ()
      | Some c ->
        let alive =
          let n = ref 0 in
          for s = 0 to n_shards - 1 do
            if Shard.alive (Router.shard router ~id:s) ~now:!sim_now then incr n
          done;
          !n
        in
        if alive * 2 > n_shards then begin
          let shard = !crash_rr mod n_shards in
          incr crash_rr;
          silent_crash shard
        end;
        if !active_clients > 0 then
          schedule ~at:(!sim_now +. c.c_every) (E_shard_crash ()))
    | E_shard_restart { shard } ->
      let sh = Router.shard router ~id:shard in
      Shard.restart sh;
      incarnation.(shard) <- incarnation.(shard) + 1;
      incr shard_restarts;
      (* A rebooted shard announces itself immediately rather than
         waiting for its next heartbeat slot — this is the race the
         incarnation number exists for: if the announcement lands before
         the suspicion sweep, the router learns of the amnesiac restart
         only through the bump. *)
      send ~src:(Transport.Shard shard) ~dst:Transport.Router
        (M_hb { shard; incarnation = incarnation.(shard) })
    | E_tick () ->
      Array.iter (fun d -> ignore (Dedup.sweep d ~now:!sim_now)) dedup;
      if !active_clients > 0 then
        schedule ~at:(!sim_now +. (cfg.router.Router.ttl /. 2.)) (E_tick ())
  in

  (try
     let continue_ = ref true in
     while !continue_ do
       if !n_events > cfg.max_events then begin
         livelocked := true;
         continue_ := false
       end
       else begin
         let t_heap = Heap.peek_time heap in
         let t_net = Transport.next_delivery net in
         match (t_heap, t_net) with
         | None, None -> continue_ := false
         | _ ->
           let th = Option.value t_heap ~default:infinity in
           let tn = Option.value t_net ~default:infinity in
           if tn <= th then begin
             sim_now := max !sim_now tn;
             pump ();
             List.iter handle_msg (Transport.deliver net ~now:!sim_now)
           end
           else begin
             match Heap.pop heap with
             | None -> ()
             | Some (time, ev) ->
               incr n_events;
               sim_now := max !sim_now time;
               pump ();
               handle_event ev
           end;
           peak_held := max !peak_held (Router.total_held router)
       end
     done
   with Audit.Violation { kind; message } -> violation := Some (kind, message));
  let dedup_total =
    Array.fold_left
      (fun (acc : Dedup.stats) d ->
        let s = Dedup.stats d in
        acc.Dedup.fresh <- acc.Dedup.fresh + s.Dedup.fresh;
        acc.Dedup.replays <- acc.Dedup.replays + s.Dedup.replays;
        acc.Dedup.stale <- acc.Dedup.stale + s.Dedup.stale;
        acc.Dedup.evictions <- acc.Dedup.evictions + s.Dedup.evictions;
        acc)
      dedup_retired dedup
  in
  {
    sessions = !minted;
    client_crashes = !client_crashes;
    client_restarts = !client_restarts;
    shard_crashes = !shard_crashes;
    shard_restarts = !shard_restarts;
    partitions = !partitions;
    abandoned = !abandoned;
    resends = !resends;
    timeouts = !timeouts;
    lost_tickets = !lost_tickets;
    redirects = !redirects;
    shard_down_busy = !shard_down_busy;
    in_handoff_busy = !in_handoff_busy;
    sheds = !sheds;
    expected_fenced = !expected_fenced;
    unexpected_fenced = !unexpected_fenced;
    releases_dropped = !releases_dropped;
    late_grants_released = !late_grants_released;
    double_grants = !double_grants;
    stale_ops = !stale_ops;
    stale_rejected = !stale_rejected;
    stale_ok = !stale_ok;
    events = !n_events;
    sim_time = !sim_now;
    peak_held = !peak_held;
    final_held = Router.total_held router;
    livelocked = !livelocked;
    violation = !violation;
    audit_near_misses = Router.audit_near_misses router;
    gaudit_violations = Router.gaudit_violations router;
    gaudit_live = Router.gaudit_live router;
    net = Transport.stats net;
    dedup = dedup_total;
    detector = Option.get (Router.detector_stats router);
    router = Router.stats router;
  }
