(** Session-id minting on top of the token dispenser.

    Every client session — including a crashed client's restart — needs
    a globally unique id.  We mint them from
    {!Renaming_apps.Token_dispenser} blocks: each block is a dispenser
    of bounded capacity, and when it runs dry we chain a fresh one at
    the next id offset.  Uniqueness is then exactly the dispenser's
    guarantee, block by block, forever. *)

type t

val create : ?block_capacity:int -> ?tau:int -> rng:Renaming_rng.Xoshiro.t -> unit -> t
(** [block_capacity] ids per dispenser block (default 4096); [tau] is
    the per-device threshold passed through to the dispenser. *)

val mint : t -> int
(** A fresh, never-before-returned session id. *)

val minted : t -> int
(** Total ids handed out. *)

val blocks : t -> int
(** Dispenser blocks chained so far. *)

val probes : t -> int
(** Cumulative dispenser probes across all mints (cost telemetry). *)
