(** The lease table: names with TTLs, epochs, and fenced operations.

    Every granted name is a {e lease}: it expires [ttl] after its grant
    (or last renewal) on the service clock.  Expiry is {e permission to
    reclaim}, not automatic revocation — a slow-but-alive client keeps
    working until the service actually reclaims the slot.  Reclamation
    bumps the slot's {e epoch}; the epoch captured in the client's
    {!fence} then no longer matches, so every later operation by the
    stale client ([renew]/[validate]/[release]) is rejected with
    [`Fenced].  This is the standard fencing-token construction: the
    token is checked at the resource, not trusted at the client.

    Slot sizing reuses the long-lived probing discipline
    ({!Renaming_longlived.Longlived.namespace_for}): [slots =
    max (capacity+1) ⌈(1+ε)·capacity⌉], acquires probe uniformly random
    slots up to [probe_cap] and then fall back to a deterministic sweep
    (which always succeeds while [held < capacity ≤ slots]). *)

type config = {
  capacity : int;  (** max simultaneously-held leases (admission bound) *)
  epsilon : float;  (** namespace slack, as in the long-lived algorithm *)
  ttl : float;  (** lease duration on the service clock *)
  probe_cap : int;  (** random probes before the deterministic sweep *)
}

val make_config : ?epsilon:float -> ?ttl:float -> ?probe_cap:int -> capacity:int -> unit -> config
(** Defaults: [epsilon = 0.5], [ttl = 10.0], [probe_cap = 64 · slots]. *)

type fence = { f_name : int; f_session : int; f_epoch : int }
(** The client's capability for one lease: the name, the session that
    holds it, and the slot epoch at grant time.  Compared wholesale on
    every fenced operation. *)

type t

val create : config -> t

val slots : t -> int
val held : t -> int
val utilization : t -> float
(** [held / capacity] — the admission controller's load signal. *)

type grant = { g_fence : fence; g_probes : int; g_swept : bool }

val acquire : t -> session:int -> now:float -> rng:Renaming_rng.Xoshiro.t -> (grant, [ `At_capacity ]) result
(** Grant a fresh lease expiring at [now + ttl].  [`At_capacity] when
    [held = capacity]; otherwise always succeeds ([g_swept] marks the
    probe-cap-exhausted slow path). *)

val renew : t -> fence:fence -> now:float -> (float, [ `Fenced ]) result
(** Extend the lease to [now + ttl] and return the new expiry.  Lenient:
    a lease past its expiry but not yet reclaimed renews fine — expiry
    only licenses reclamation, and fencing happens there. *)

val validate : t -> fence:fence -> (unit, [ `Fenced ]) result
(** The "am I still the holder?" check a client performs before acting
    on its name — the operation a stale client must never pass. *)

val release : t -> fence:fence -> now:float -> (float, [ `Fenced ]) result
(** Voluntary release; returns the held duration.  Bumps the epoch so
    the released fence is dead immediately. *)

type reclaimed = { r_fence : fence; r_expired_at : float; r_lateness : float }
(** [r_lateness = reclaim time − expiry]: how long the name sat expired
    before the sweep caught it. *)

val reclaim_expired : t -> now:float -> reclaimed list
(** Reclaim every lease whose expiry is [≤ now], oldest first.  Renewed
    leases are skipped (their heap entries are stale — lazy deletion);
    reclaimed slots get an epoch bump and return to the free pool. *)

val holder : t -> name:int -> int option
(** Session currently holding [name], if any (for auditing). *)

val pending_expiries : t -> int
(** Current expiry-heap size, dead entries included — the quantity the
    compaction policy bounds at [max 32 (2 · held)]. *)

val compactions : t -> int
(** How many times the expiry heap has been compacted (dead lazy-deletion
    entries exceeded half the heap), for tests and telemetry. *)
