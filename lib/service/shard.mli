(** One shard of the sharded renaming service: a failure domain that
    hosts {e slice bodies}.

    A {e slice} is an independent {!Service} stack (lease table,
    admission queue, audit mirror) owning a contiguous range of the
    global namespace; a shard is the process-like unit that slices live
    on and that the fault injector targets.  Ownership — which shard
    serves which slice — is {e not} recorded here: the {!Router}'s
    directory is the single source of truth, so a stalled shard holding
    a stale body cannot be reached once the directory has moved on.

    Failure modes:
    - {b crash}: every resident slice body is lost (state gone); the
      names its leases covered come back only by lease expiry at the
      adopting shard;
    - {b stall}: the shard stops serving until [until] (injectable-clock
      pause); bodies are retained and serve again on wake — unless the
      router has reassigned them in the meantime, in which case the
      bodies are dropped as fenced. *)

type status =
  | Alive
  | Stalled of { since : float; until : float }
  | Crashed of { since : float }

type slice = { sl_id : int; mutable sl_epoch : int; mutable sl_svc : Service.t }
(** A slice body: its id, its {e slice epoch} (bumped on every ownership
    transfer) and the service stack holding its leases. *)

type stats = {
  mutable crashes : int;
  mutable restarts : int;
  mutable stalls : int;
  mutable dropped_slices : int;  (** stale bodies discarded after losing ownership *)
}

type t

val create : id:int -> t
val id : t -> int
val stats : t -> stats
val slices : t -> slice list

val status : t -> now:float -> status
(** Effective status at [now]; an elapsed stall heals in place. *)

val alive : t -> now:float -> bool

val find_slice : t -> slice:int -> slice option
val attach : t -> slice -> unit
val detach : t -> slice:int -> slice option
val drop : t -> slice:int -> unit
(** [detach] + count as a fenced stale body. *)

val crash : t -> now:float -> unit
val restart : t -> unit
val stall : t -> now:float -> until:float -> unit

val held : t -> int
val capacity : t -> int
val utilization : t -> slice_capacity:int -> float
(** Held leases over nominal capacity of the resident slices; 1.0 when
    the shard owns nothing (so rebalancing never targets it as cold). *)
