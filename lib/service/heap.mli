(** A deterministic binary min-heap keyed by [(time, insertion order)].

    Both the lease table (expiry queue) and the churn driver (event
    queue) need a priority queue whose pop order is a pure function of
    the push sequence: ties on [time] are broken by insertion order, so
    two runs with the same inputs drain in byte-identical order. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> time:float -> 'a -> unit

val pop : 'a t -> (float * 'a) option
(** Smallest [(time, seq)] first; [None] when empty. *)

val peek_time : 'a t -> float option

val size : 'a t -> int

val is_empty : 'a t -> bool

val compact : 'a t -> live:(time:float -> 'a -> bool) -> unit
(** Drop every entry for which [live] is false and re-heapify in place.
    Surviving entries keep their [(time, seq)] keys, so their relative
    pop order is exactly what it would have been without compaction.
    Owners using lazy deletion (the lease table) call this when dead
    entries dominate, bounding heap memory under long churn; the
    backing array is shrunk when mostly empty. *)
