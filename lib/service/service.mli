(** The lease-based renaming service façade.

    One object ties the pieces together: the {!Lease} table (names,
    TTLs, fencing epochs), the {!Admission} queue (bounded waiting,
    shedding, request deadlines), an independent {!Audit} mirror that
    raises on any safety violation, and telemetry (plain counters always,
    {!Renaming_obs.Obs} registration when a capability is supplied).

    Time comes exclusively from the injected {!Renaming_clock.Clock} —
    the service never reads the wall clock — so simulated runs are
    deterministic and tests drive expiry by hand.

    Call {!pump} periodically (the churn driver does so at every event):
    it reclaims expired leases, expires overdue queued requests, and
    grants to the head of the queue while capacity allows. *)

type config = { lease : Lease.config; admission : Admission.config }

val make_config : ?lease:Lease.config -> ?admission:Admission.config -> unit -> config

type t

val create :
  ?obs:Renaming_obs.Obs.t ->
  ?tap:(now:float -> Audit.event -> unit) ->
  clock:Renaming_clock.Clock.t ->
  rng:Renaming_rng.Xoshiro.t ->
  config ->
  t
(** [?tap] hears every audit event after the mirror has accepted it —
    the sharded router uses it to feed a cross-shard global-uniqueness
    mirror without the service knowing about shards. *)

(** {2 Client operations} *)

type outcome =
  | Granted of Lease.grant
  | Queued of int  (** ticket; resolution arrives from {!pump} *)
  | Shed of Admission.shed_reason

val acquire : t -> session:int -> outcome
(** Fast path grants immediately when the queue is empty, utilization is
    below the high-water mark and capacity remains; otherwise the
    request queues or sheds. *)

val renew : t -> fence:Lease.fence -> (float, [ `Fenced ]) result
val release : t -> fence:Lease.fence -> (float, [ `Fenced ]) result

val use : t -> fence:Lease.fence -> (unit, [ `Fenced ]) result
(** Fenced access check — the operation a reclaimed (stale) client must
    always see rejected. *)

(** {2 Service loop} *)

type completion =
  | Done of { ticket : int; session : int; grant : Lease.grant; waited : float }
  | Timed_out of { ticket : int; session : int; waited : float }

val pump : t -> completion list
(** Reclaim expired leases, expire overdue queued requests, then grant
    from the queue head while capacity allows. *)

(** {2 Introspection} *)

type stats = {
  mutable grants : int;
  mutable queued : int;
  mutable renews : int;
  mutable releases : int;
  mutable fenced : int;  (** stale operations rejected by epoch fencing *)
  mutable sheds_high_water : int;
  mutable sheds_queue_full : int;
  mutable expired_requests : int;
  mutable reclaims : int;
  mutable validates : int;
}

val stats : t -> stats
val held : t -> int
val utilization : t -> float
val slots : t -> int
val queue_depth : t -> int

val deadline_expired : t -> int
(** Requests that hit their deadline while queued
    ({!Admission.expired_total}); also published as the
    [admission/deadline_expired] obs counter when the service was
    created with [?obs]. *)

val audit_live : t -> int

val audit_near_misses : t -> int
(** Stale operations the audit mirror saw correctly fenced. *)

val audit_violations : t -> int
(** Violations the audit mirror detected (each also raised). *)

val probes_hist : t -> Renaming_obs.Hist.t
(** Probes per grant. *)

val reclaim_lateness_hist : t -> Renaming_obs.Hist.t
(** Centiticks between lease expiry and its reclamation. *)

val queue_wait_hist : t -> Renaming_obs.Hist.t
(** Centiticks queued requests waited before grant or timeout. *)

val lifetime_hist : t -> Renaming_obs.Hist.t
(** Centiticks between grant and voluntary release. *)

val centiticks : float -> int
(** The fixed time→bucket scaling used by the histograms above
    (1 clock unit = 100 centiticks). *)
