(** Client-facing router over the sharded lease service.

    The namespace is partitioned into [slices] contiguous slices, each
    an independent {!Service} stack ({!Shard.slice}) resident on one of
    [shards] failure domains.  The router owns the {e slice-ownership
    directory} — the single source of truth mapping every slice to its
    serving shard and the slice's current {e epoch} — and resolves every
    client operation through it, so a stalled shard holding a stale body
    is simply unreachable.

    {b Epoch-fenced slice handoff.}  Rebalancing moves a whole slice
    between shards through an explicit in-transit state:
    [Owned (from, e)] → [In_transit (from, to, e)] → [Owned (to, e+1)].
    The epoch bump is coupled to the transfer commit, and every
    resolution checks the body's recorded epoch against the directory,
    so a crash at any point of the handoff can only lose availability:
    - source crashes mid-transit: the body (and its leases) die with it;
      the slice is orphaned and adopted fresh after [grace] — it can
      never be served twice;
    - destination crashes mid-transit: the source keeps the body under a
      bumped epoch ([e+1]) and service resumes — no name is stranded;
    - a clean handoff moves the body {e intact}: live leases survive,
      clients are redirected, nobody is fenced.

    {b Degraded-mode routing.}  Operations against a crashed, stalled or
    in-transit slice resolve to structured {!busy} outcomes — never
    hang, never unsafe.  A dead shard's slices are {e absorbed} by the
    least-loaded survivor only after [grace ≥ ttl] has elapsed since
    orphaning, by which point every lease the lost body issued has
    provably expired; in between the slice is dark (partial
    availability).  Stale clients of the old body are fenced by the
    fresh lease table.

    {b Cross-shard audit.}  Every slice service's audit stream is tapped
    into a global mirror asserting that no global name is ever backed by
    two live leases — the only observer that can see two shards granting
    the same name — and that no absorb fires before its grace. *)

type config = {
  shards : int;
  slices : int;  (** total slices ([>= shards]) *)
  slice_capacity : int;  (** lease capacity per slice *)
  epsilon : float;
  ttl : float;
  queue_limit : int;
  request_timeout : float;
  high_water : float;
  grace : float;  (** orphan age before absorption; must be [>= ttl] *)
  hot_util : float;  (** shard utilization that triggers rebalancing *)
  cold_util : float;  (** max utilization of a rebalance destination *)
  auto_rebalance : bool;
}

val make_config :
  ?shards:int ->
  ?slices:int ->
  ?slice_capacity:int ->
  ?epsilon:float ->
  ?ttl:float ->
  ?queue_limit:int ->
  ?request_timeout:float ->
  ?high_water:float ->
  ?grace:float ->
  ?hot_util:float ->
  ?cold_util:float ->
  ?auto_rebalance:bool ->
  unit ->
  config
(** Defaults: 4 shards × 8 slices × 16 capacity, [grace = 1.5·ttl].
    Raises if [grace < ttl] — absorbing before expiry would regrant
    live names. *)

type t

(** External observation of the audit-relevant surface: every per-slice
    audit event (delivered after the cross-shard mirror accepted it)
    plus every slice absorb.  The refinement harness taps this to feed
    its centralized spec; clean handoffs move slice bodies intact and
    are deliberately invisible here (they refine to stutters). *)
type tap_event =
  | Tap_audit of { slice : int; now : float; ev : Audit.event }
  | Tap_absorb of { slice : int; now : float }

val create :
  ?obs:Renaming_obs.Obs.t ->
  ?tap:(tap_event -> unit) ->
  clock:Renaming_clock.Clock.t ->
  seed:int64 ->
  config ->
  t
(** Slices are placed in contiguous ranges ([slice · shards / slices]),
    so a Zipf-hot key range concentrates on one shard.  All randomness
    derives from [seed] via named streams — runs are replayable. *)

(** {2 Routing} *)

type busy =
  | Shard_down of { shard : int }  (** owner crashed/stalled/orphaned — retry later *)
  | In_handoff of { slice : int }  (** ownership in transit — retry later *)
  | Redirected of { shard : int }  (** stale shard hint — retry at [shard] now *)

type sgrant = { sg_slice : int; sg_shard : int; sg_epoch : int; sg_grant : Lease.grant }

type gfence = { gf_slice : int; gf_fence : Lease.fence }
(** The client's capability: the slice plus the in-slice lease fence.
    Validity is decided by the lease fence at whichever shard currently
    owns the slice — a clean handoff keeps it alive, an absorb kills it. *)

val fence_of_grant : sgrant -> gfence

type outcome =
  | Granted of sgrant
  | Queued of { slice : int; shard : int; ticket : int }
  | Shed of Admission.shed_reason
  | Busy of busy

val route : t -> slice:int -> (int * int, busy) result
(** Resolve [slice] to its [(shard, epoch)] from the directory and the
    failure detector's availability view {e only} — no shard-body
    inspection, so this is what a real router node can decide before
    forwarding.  The shard itself must check the carried epoch against
    its resident body at delivery time (a mismatch means the directory
    moved on while the request was in flight, and the request must be
    refused, not served).  Does not update routing stats. *)

val acquire : ?hint:int -> t -> session:int -> key:int -> outcome
(** [key] is the placement key ([slice = key mod slices]).  When [hint]
    (the client's cached owner for the slice) no longer matches the
    directory, the outcome is [Busy (Redirected ...)] with the current
    owner and no side effect. *)

val renew : t -> fence:gfence -> (float, [ `Fenced | `Busy of busy ]) result
val use : t -> fence:gfence -> (unit, [ `Fenced | `Busy of busy ]) result
val release : t -> fence:gfence -> (float, [ `Fenced | `Busy of busy ]) result

type completion = { c_slice : int; c_shard : int; c_done : Service.completion }

val pump : t -> completion list
(** Router maintenance, then the per-slice service pumps: heal elapsed
    stalls and drop fenced bodies, progress/abort in-transit handoffs,
    orphan the slices of shards stalled past [grace], absorb orphans
    past [grace] into the least-loaded survivor, trigger auto
    rebalancing, then reclaim/expire/grant on every reachable slice. *)

(** {2 Fault injection} *)

val crash_shard : t -> id:int -> unit
(** Lose every resident slice body; its slices become orphaned now. *)

val restart_shard : t -> id:int -> unit
(** The shard returns empty and becomes eligible to adopt slices. *)

val stall_shard : t -> id:int -> until:float -> unit
(** The shard stops serving until [until] on the injected clock.  If the
    stall outlives [grace], its slices are reassigned and the woken
    shard drops its stale bodies. *)

(** {2 Failure detection}

    By default the router consults shard status directly (an omniscient
    single-process shortcut).  {!enable_detector} replaces that with a
    timeout-based failure detector: shards are {e available} only while
    their latest heartbeat is younger than [suspicion], and routing
    ({!route}, {!resolve}-based operations, adopter choice) runs on that
    view alone.  On suspicion the shard's slices are orphaned from the
    instant routing stopped forwarding ([last heartbeat + suspicion]);
    if heartbeats resume before adoption, the orphans are handed back at
    the same epoch with every lease intact (a false suspicion costs
    availability, never safety).  A heartbeat with a higher incarnation
    number announces an amnesiac restart and orphans the previous
    incarnation's slices immediately.  Callers must size
    [grace >= ttl + heartbeat period + 2 * max network delay] so every
    lease the suspected body could still have renewed has expired by
    adoption (docs/fault_model.md §8). *)

type detector_stats = {
  mutable suspicions : int;
  mutable recoveries : int;  (** suspicions cleared by a late heartbeat *)
  mutable reowns : int;  (** orphaned slices handed back on recovery *)
  mutable incarnation_orphans : int;  (** slices orphaned by a restart heartbeat *)
}

val enable_detector : t -> suspicion:float -> unit
(** Switch routing to the detector view; every shard starts unsuspected
    with a heartbeat as of now.  Raises if [suspicion <= 0]. *)

val heartbeat : t -> shard:int -> incarnation:int -> unit
(** Record a heartbeat arrival.  No-op without a detector. *)

val suspected : t -> shard:int -> bool
(** Current suspicion flag (set by the pump's sweep, cleared by
    {!heartbeat}); [false] without a detector. *)

val detector_stats : t -> detector_stats option

(** {2 Handoff} *)

val begin_handoff : t -> slice:int -> to_:int -> (unit, [ `Unavailable ]) result
(** Start moving [slice] to shard [to_]; completes (or aborts) on a
    strictly later {!pump}, leaving a window for crash injection.
    [`Unavailable] if the slice is not currently owned by a live shard,
    the destination is down, or [to_] already owns it. *)

(** {2 Introspection} *)

type stats = {
  mutable handoffs_started : int;
  mutable handoffs_completed : int;
  mutable handoffs_aborted : int;  (** destination died; source kept the slice (epoch bumped) *)
  mutable handoffs_orphaned : int;  (** source died mid-transit; slice went dark *)
  mutable adoptions : int;  (** orphaned slices absorbed after grace *)
  mutable redirects : int;
  mutable shard_downs : int;
  mutable in_handoff_busy : int;
  mutable fenced_ops : int;
}

val stats : t -> stats
val slices : t -> int
val slice_width : t -> int
val slice_of_key : t -> key:int -> int
val owner : t -> slice:int -> int option
val slice_epoch : t -> slice:int -> int
val in_transit : t -> (int * int * int) list
(** [(slice, from_, to_)] currently in transit. *)

val shard : t -> id:int -> Shard.t
val alive_shards : t -> now:float -> int
val total_held : t -> int

val audit_near_misses : t -> int
(** Sum of the resident slice auditors' near-miss counters. *)

val gaudit_violations : t -> int
val gaudit_live : t -> int
(** Names the cross-shard mirror believes are live, over all slices. *)
