module Token_dispenser = Renaming_apps.Token_dispenser

type t = {
  block_capacity : int;
  tau : int;
  rng : Renaming_rng.Xoshiro.t;
  mutable dispenser : Token_dispenser.t;
  mutable offset : int;
  mutable n_minted : int;
  mutable n_blocks : int;
  mutable n_probes : int;
}

let create ?(block_capacity = 4096) ?(tau = 16) ~rng () =
  if block_capacity < 1 then invalid_arg "Minter.create: block_capacity must be >= 1";
  {
    block_capacity;
    tau;
    rng;
    dispenser = Token_dispenser.create ~tau ~capacity:block_capacity ();
    offset = 0;
    n_minted = 0;
    n_blocks = 1;
    n_probes = 0;
  }

let rec mint t =
  match Token_dispenser.try_acquire t.dispenser ~pid:0 ~rng:t.rng with
  | Some { Token_dispenser.token; probes } ->
    t.n_probes <- t.n_probes + probes;
    t.n_minted <- t.n_minted + 1;
    t.offset + token
  | None ->
    (* Block exhausted: chain a fresh dispenser at the next offset.  The
       stride is the id-range width [device_count · 2 · tau] (token ids
       are device-local slots, so the range exceeds the capacity); with
       disjoint ranges, global uniqueness reduces to per-block
       uniqueness — the dispenser's own guarantee. *)
    t.offset <- t.offset + (Token_dispenser.device_count t.dispenser * 2 * t.tau);
    t.dispenser <- Token_dispenser.create ~tau:t.tau ~capacity:t.block_capacity ();
    t.n_blocks <- t.n_blocks + 1;
    mint t

let minted t = t.n_minted
let blocks t = t.n_blocks
let probes t = t.n_probes
