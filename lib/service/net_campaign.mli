(** Chaos campaign for the sharded service over the unreliable network:
    a grid of {!Net_churn} cells × seeds crossing message loss,
    duplication, reordering, directional partitions and silent shard
    crashes over the Zipf churn workload, with machine-readable results
    (schema ["renaming.chaos-net/1"]).

    The safety assertions the CLI enforces on a run: no audit
    violations, no at-most-once double grants, no unexpected fences, no
    successful ghost operations, no livelocks — {e and} every piece of
    machinery demonstrably exercised (drops, duplicates, reorders,
    partition blocks, dedup replays and evictions, suspicions,
    recoveries, re-owns, incarnation orphans, adoptions, redirects), so
    a clean report cannot come from faults silently not firing. *)

type cell = { cell_name : string; cell_cfg : Net_churn.config }

type spec = { cells : cell list; seeds : int64 array }

val default_spec : ?sessions_per_cell:int -> ?seeds:int64 array -> unit -> spec
(** Four cells: [lossy] (loss + duplication + reordering with the
    auto-rebalancer moving hot slices, so handoffs meet in-flight
    duplicates), [dup-storm] (heavy duplication and reordering),
    [partition] (directional partitions long enough to trigger
    suspicion, short enough to heal before grace — false suspicion,
    recovery and same-epoch re-own), and [crash-detect] (silent shard
    crashes discovered only by heartbeat loss, restarts straddling the
    suspicion window to exercise both sweep suspicions and incarnation
    orphans, orphans adopted after grace). *)

type cell_result = { cr_name : string; cr_seed : int64; cr_summary : Net_churn.summary }

type summary = {
  results : cell_result list;
  total_sessions : int;
  total_dropped : int;
  total_duplicated : int;
  total_reordered : int;
  total_blocked : int;
  total_resends : int;
  total_timeouts : int;
  total_replays : int;
  total_stale_dups : int;
  total_evictions : int;
  total_suspicions : int;
  total_recoveries : int;
  total_reowns : int;
  total_incarnation_orphans : int;
  total_adoptions : int;
  total_partitions : int;
  total_shard_crashes : int;
  total_redirects : int;
  total_abandoned : int;
  total_lost_tickets : int;
  total_late_grants_released : int;
  total_expected_fenced : int;
  total_unexpected_fenced : int;  (** must be 0 *)
  total_double_grants : int;  (** must be 0: at-most-once end to end *)
  total_stale_ops : int;
  total_stale_ok : int;  (** must be 0 *)
  total_audit_near_misses : int;
  total_violations : int;  (** must be 0 *)
  total_livelocks : int;
}

val run :
  ?progress:(done_:int -> total:int -> unit) ->
  ?obs:Renaming_obs.Obs.t ->
  spec ->
  summary

val to_json : summary -> string
val pp : Format.formatter -> summary -> unit
