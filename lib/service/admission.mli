(** Bounded admission queue with load shedding and request deadlines.

    Requests that cannot be granted immediately wait in a FIFO queue of
    bounded length.  Two degradation mechanisms keep the service
    responsive instead of collapsing under churn:
    - {e load shedding}: when utilization is at or above the high-water
      mark, or the queue is full, new requests are refused outright with
      a structured [shed_reason] (clients back off and retry);
    - {e request timeouts}: a queued request that waits longer than
      [request_timeout] expires and is answered [`Expired] rather than
      holding its queue slot forever. *)

type config = {
  queue_limit : int;  (** max waiting requests *)
  request_timeout : float;  (** max queue wait before [`Expired] *)
  high_water : float;
      (** utilization at which shedding starts.  Below 1.0 the service
          refuses new work while capacity remains (headroom reserved for
          reclaim churn and queue drain); set above 1.0 to disable
          utilization shedding entirely — admission then degrades
          through the bounded queue alone ([Queue_full] / timeouts). *)
}

val make_config :
  ?queue_limit:int -> ?request_timeout:float -> ?high_water:float -> unit -> config
(** Defaults: [queue_limit = 64], [request_timeout = 5.0],
    [high_water = 0.85]. *)

type shed_reason = High_water | Queue_full

type t

val create : config -> t

val depth : t -> int

val offer : t -> session:int -> now:float -> utilization:float -> (int, shed_reason) result
(** Enqueue a request; returns its ticket.  Sheds (without enqueueing)
    when utilization has reached the high-water mark or the queue is
    full. *)

type expired = { x_ticket : int; x_session : int; x_waited : float }

val expire : t -> now:float -> expired list
(** Drop every queued request whose wait exceeds [request_timeout]
    (FIFO order makes the overdue requests a prefix). *)

val expired_total : t -> int
(** Requests that hit their deadline while still queued, over the
    queue's lifetime — the admission queue's own count, independent of
    how callers fold the {!expired} records into their outcomes.
    {!Service} exposes it in the obs registry as
    [admission/deadline_expired]. *)

val take : t -> now:float -> (int * int * float) option
(** Dequeue the oldest still-valid request as
    [(ticket, session, waited)]; [None] when empty.  Call {!expire}
    first so deadline misses are reported, not silently granted. *)
