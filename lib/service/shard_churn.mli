(** Discrete-event chaos driver for the sharded renaming service.

    A population of clients keyed by Zipf rank works sessions against a
    {!Router}: acquire (with cached shard hints), renew while holding,
    release — under client crashes with ghost (stale-fence) wakeups,
    {e shard} crashes and stalls, and slice handoffs, some of which are
    deliberately crashed mid-transit.

    The driver asserts graceful degradation, not availability: every
    operation against a dark or moving slice must resolve to a
    structured outcome ([`Fenced] or [`Busy]) and be retried or shed —
    nothing may hang ([lost_tickets] resolves tickets that died with a
    slice body), and nothing may be fenced {e unexpectedly}.  A fence is
    expected only when the driver itself disrupted the slice (crashed
    its owner, or stalled it past the grace) after the lease was
    granted; [unexpected_fenced > 0] means a clean handoff broke a live
    lease.  Global name uniqueness is asserted continuously by the
    router's cross-shard audit mirror; a violation aborts the run and is
    reported in [violation].

    Fully deterministic: all randomness derives from [seed]. *)

type burst = { b_at : int; b_width : int; b_failures : int }
(** Correlated shard crashes: [b_failures] shards out of the fleet crash
    within [b_width] ticks of [b_at] (reuses
    {!Renaming_workload.Crash_pattern.burst} over the shard space). *)

type stall_plan = { st_every : float; st_duration : float }
(** Every [st_every], stall the next shard (round-robin) for
    [st_duration].  A stall longer than the router grace gets the
    shard's slices reassigned under it. *)

type handoff_plan = {
  h_every : float;
  h_crash_src : float;  (** P[crash the source shard mid-transit] *)
  h_crash_dst : float;  (** P[crash the destination shard mid-transit] *)
}
(** Every [h_every], force a slice handoff to the next live shard; each
    observed transit is crashed at the source or destination with the
    given probabilities, in the window before the completing pump. *)

type config = {
  clients : int;
  sessions_target : int;
  router : Router.config;
  zipf_s : float;
  mean_hold : float;
  mean_think : float;
  renew_every : float;
  crash_rate : float;  (** P[client crashes while holding] *)
  stale_wakeup : float;  (** P[crashed client's ghost replays its fence] *)
  client_restart_delay : float;
  shard_restart_delay : float;
  max_attempts : int;
  backoff_unit : float;
  arrival : Renaming_workload.Arrival.pattern;
  shard_burst : burst option;
  stall : stall_plan option;
  handoff : handoff_plan option;
  max_events : int;  (** livelock guard *)
}

val make_config :
  ?clients:int ->
  ?sessions_target:int ->
  ?router:Router.config ->
  ?zipf_s:float ->
  ?mean_hold:float ->
  ?mean_think:float ->
  ?renew_every:float ->
  ?crash_rate:float ->
  ?stale_wakeup:float ->
  ?client_restart_delay:float ->
  ?shard_restart_delay:float ->
  ?max_attempts:int ->
  ?backoff_unit:float ->
  ?arrival:Renaming_workload.Arrival.pattern ->
  ?shard_burst:burst ->
  ?stall:stall_plan ->
  ?handoff:handoff_plan ->
  ?max_events:int ->
  unit ->
  config

type summary = {
  sessions : int;
  client_crashes : int;
  client_restarts : int;
  shard_crashes : int;
  shard_restarts : int;
  shard_stalls : int;
  abandoned : int;  (** sessions that gave up after [max_attempts] *)
  stale_ops : int;
  stale_rejected : int;  (** ghost replays with no [Ok] outcome *)
  stale_ok : int;  (** fencing holes — must be 0 *)
  retries : int;
  redirects : int;  (** stale shard hints corrected by the directory *)
  shard_down_busy : int;
  in_handoff_busy : int;
  expected_fenced : int;  (** fenced after a fault we injected on that slice *)
  unexpected_fenced : int;  (** fenced with no injected cause — must be 0 *)
  releases_dropped : int;  (** releases into a dark slice, left to expiry *)
  lost_tickets : int;  (** queue tickets that died with a slice body *)
  events : int;
  sim_time : float;
  peak_held : int;
  final_held : int;
  livelocked : bool;
  violation : (string * string) option;
  audit_near_misses : int;
  gaudit_violations : int;
  gaudit_live : int;
  router : Router.stats;
}

val run :
  ?obs:Renaming_obs.Obs.t ->
  ?tap:(Router.tap_event -> unit) ->
  config ->
  seed:int64 ->
  summary
(** [?tap] is passed through to {!Router.create} (audit events + slice
    absorbs, for the refinement harness).  Observation only. *)
