module Clock = Renaming_clock.Clock
module Stream = Renaming_rng.Stream
module Sample = Renaming_rng.Sample
module Retry = Renaming_faults.Retry
module Arrival = Renaming_workload.Arrival
module Crash_pattern = Renaming_workload.Crash_pattern
module Zipf = Renaming_workload.Zipf

type burst = { b_at : int; b_width : int; b_failures : int }
type stall_plan = { st_every : float; st_duration : float }

type handoff_plan = {
  h_every : float;
  h_crash_src : float;  (** P[crash the source shard mid-transit] *)
  h_crash_dst : float;  (** P[crash the destination shard mid-transit] *)
}

type config = {
  clients : int;
  sessions_target : int;
  router : Router.config;
  zipf_s : float;
  mean_hold : float;
  mean_think : float;
  renew_every : float;
  crash_rate : float;
  stale_wakeup : float;
  client_restart_delay : float;
  shard_restart_delay : float;
  max_attempts : int;
  backoff_unit : float;
  arrival : Arrival.pattern;
  shard_burst : burst option;
  stall : stall_plan option;
  handoff : handoff_plan option;
  max_events : int;
}

let make_config ?(clients = 96) ?(sessions_target = 8_000)
    ?(router = Router.make_config ()) ?(zipf_s = 1.0) ?(mean_hold = 6.0)
    ?(mean_think = 4.0) ?(renew_every = 3.0) ?(crash_rate = 0.1)
    ?(stale_wakeup = 0.2) ?(client_restart_delay = 8.0)
    ?(shard_restart_delay = 30.0) ?(max_attempts = 8) ?(backoff_unit = 0.25)
    ?(arrival = Arrival.Staggered { gap = 1 }) ?shard_burst ?stall ?handoff
    ?(max_events = 200_000_000) () =
  if clients < 1 then invalid_arg "Shard_churn.make_config: clients must be >= 1";
  if sessions_target < 1 then
    invalid_arg "Shard_churn.make_config: sessions_target must be >= 1";
  if renew_every <= 0. || renew_every >= router.Router.ttl then
    invalid_arg "Shard_churn.make_config: renew_every must be in (0, ttl)";
  if crash_rate < 0. || crash_rate > 1. then
    invalid_arg "Shard_churn.make_config: crash_rate must be in [0, 1]";
  if stale_wakeup < 0. || stale_wakeup > 1. then
    invalid_arg "Shard_churn.make_config: stale_wakeup must be in [0, 1]";
  (match handoff with
  | Some h when h.h_crash_src +. h.h_crash_dst > 1.0 ->
    invalid_arg "Shard_churn.make_config: handoff crash probabilities exceed 1"
  | _ -> ());
  {
    clients;
    sessions_target;
    router;
    zipf_s;
    mean_hold;
    mean_think;
    renew_every;
    crash_rate;
    stale_wakeup;
    client_restart_delay;
    shard_restart_delay;
    max_attempts;
    backoff_unit;
    arrival;
    shard_burst;
    stall;
    handoff;
    max_events;
  }

type phase =
  | Idle
  | Waiting of int * int  (* slice, ticket *)
  | Holding of Router.gfence
  | Crashed
  | Finished

type client = {
  rank : int;
  key : int;
  think_scale : float;
  mutable phase : phase;
  mutable gen : int;  (* bumped at every transition; stale timers are dropped *)
  mutable session : int option;
  mutable attempts : int;
  mutable prev_delay : int;  (* decorrelated-jitter walk state *)
  mutable hold_end : float;
  mutable hint : int option;  (* cached owning shard for the client's slice *)
  mutable d_gen : int;  (* slice disruption generation at grant time *)
}

type ev =
  | E_start of { client : int; gen : int }
  | E_poll of { client : int; gen : int }
  | E_renew of { client : int; gen : int }
  | E_finish of { client : int; gen : int }
  | E_client_crash of { client : int; gen : int }
  | E_client_restart of { client : int; gen : int }
  | E_stale of { fence : Router.gfence }
  | E_shard_crash of { shard : int }
  | E_shard_restart of { shard : int }
  | E_shard_stall of unit
  | E_handoff of unit
  | E_tick of unit

type summary = {
  sessions : int;
  client_crashes : int;
  client_restarts : int;
  shard_crashes : int;
  shard_restarts : int;
  shard_stalls : int;
  abandoned : int;
  stale_ops : int;
  stale_rejected : int;
  stale_ok : int;
  retries : int;
  redirects : int;
  shard_down_busy : int;
  in_handoff_busy : int;
  expected_fenced : int;
  unexpected_fenced : int;
  releases_dropped : int;
  lost_tickets : int;
  events : int;
  sim_time : float;
  peak_held : int;
  final_held : int;
  livelocked : bool;
  violation : (string * string) option;
  audit_near_misses : int;
  gaudit_violations : int;
  gaudit_live : int;
  router : Router.stats;
}

let run ?obs ?tap (cfg : config) ~seed =
  let stream = Stream.create seed in
  let rng = Stream.fork_named stream ~name:"shard-churn-driver" in
  let minter_rng = Stream.fork_named stream ~name:"minter" in
  let sim_now = ref 0. in
  let clock = Clock.of_fn ~label:"shard-churn-sim" (fun () -> !sim_now) in
  let router =
    Router.create ?obs ?tap ~clock ~seed:(Int64.logxor seed 0x51A2DE5L) cfg.router
  in
  let minter = Minter.create ~rng:minter_rng () in
  let zipf = Zipf.create ~s:cfg.zipf_s ~n:cfg.clients () in
  let retry_policy = Retry.make_policy ~attempts:(cfg.max_attempts + 1) () in
  let n_slices = Router.slices router in
  let n_shards = cfg.router.Router.shards in
  let grace = cfg.router.Router.grace in
  (* Bumped whenever a slice provably loses (or will lose) its body to a
     fault we inject; a holder granted before the bump is *expected* to
     be fenced, anything else fenced is a routing/handoff bug. *)
  let disruption = Array.make n_slices 0 in
  let clients =
    Array.init cfg.clients (fun rank ->
        (* Hot (low-rank) clients re-arrive sooner and all land on the
           low slices, which the initial contiguous placement puts on
           shard 0 — Zipf skew becomes shard skew and forces the
           rebalancer's hand. *)
        let pressure = Zipf.relative_pressure zipf rank in
        let think_scale = max 0.05 (1. /. sqrt pressure) in
        {
          rank;
          key = rank * n_slices / cfg.clients;
          think_scale;
          phase = Idle;
          gen = 0;
          session = None;
          attempts = 0;
          prev_delay = 0;
          hold_end = 0.;
          hint = None;
          d_gen = 0;
        })
  in
  let heap : ev Heap.t = Heap.create () in
  let minted = ref 0 in
  let client_crashes = ref 0 in
  let client_restarts = ref 0 in
  let shard_crashes = ref 0 in
  let shard_restarts = ref 0 in
  let shard_stalls = ref 0 in
  let abandoned = ref 0 in
  let stale_ops = ref 0 in
  let stale_rejected = ref 0 in
  let stale_ok = ref 0 in
  let retries = ref 0 in
  let redirects = ref 0 in
  let shard_down_busy = ref 0 in
  let in_handoff_busy = ref 0 in
  let expected_fenced = ref 0 in
  let unexpected_fenced = ref 0 in
  let releases_dropped = ref 0 in
  let lost_tickets = ref 0 in
  let peak_held = ref 0 in
  let n_events = ref 0 in
  let livelocked = ref false in
  let violation = ref None in
  let active_clients = ref cfg.clients in
  let stall_rr = ref 0 in
  let handoff_rr = ref 0 in
  (* (slice, ticket) -> client index, for resolving pump completions;
     tickets are minted per-slice service, so the slice is part of the
     key. *)
  let waiting = ref [] in
  let jitter ~around = around *. (0.5 +. Sample.float_unit rng) in
  let schedule ~at ev = Heap.push heap ~time:(max at !sim_now) ev in

  let think c = jitter ~around:(cfg.mean_think *. c.think_scale) in

  let set_finished c =
    if c.phase <> Finished then begin
      c.gen <- c.gen + 1;
      c.phase <- Finished;
      decr active_clients
    end
  in

  let begin_session_attempt idx ~at =
    let c = clients.(idx) in
    c.gen <- c.gen + 1;
    c.phase <- Idle;
    schedule ~at (E_start { client = idx; gen = c.gen })
  in

  let finish_session idx ~next_in =
    let c = clients.(idx) in
    c.session <- None;
    c.attempts <- 0;
    c.prev_delay <- 0;
    if !minted >= cfg.sessions_target then set_finished c
    else begin_session_attempt idx ~at:(!sim_now +. next_in)
  in

  (* Decorrelated jitter: each client's next delay depends on its own
     previous draw, so clients shed off the same overloaded shard do not
     re-arrive in lockstep the way a shared exponential ladder makes
     them. *)
  let backoff c =
    let d = Retry.jittered_delay retry_policy ~rng ~prev:c.prev_delay in
    c.prev_delay <- d;
    float_of_int d *. cfg.backoff_unit
  in

  let retry_or_abandon idx =
    let c = clients.(idx) in
    c.attempts <- c.attempts + 1;
    if c.attempts > cfg.max_attempts then begin
      incr abandoned;
      finish_session idx ~next_in:(think c)
    end
    else begin
      incr retries;
      c.gen <- c.gen + 1;
      c.phase <- Idle;
      schedule ~at:(!sim_now +. backoff c) (E_start { client = idx; gen = c.gen })
    end
  in

  let enter_holding idx ~slice ~shard (grant : Lease.grant) =
    let c = clients.(idx) in
    c.gen <- c.gen + 1;
    c.attempts <- 0;
    c.hint <- Some shard;
    c.d_gen <- disruption.(slice);
    let fence = { Router.gf_slice = slice; gf_fence = grant.Lease.g_fence } in
    c.phase <- Holding fence;
    let hold = jitter ~around:cfg.mean_hold in
    c.hold_end <- !sim_now +. hold;
    if Sample.bernoulli rng cfg.crash_rate then
      schedule
        ~at:(!sim_now +. (Sample.float_unit rng *. hold))
        (E_client_crash { client = idx; gen = c.gen })
    else begin
      schedule ~at:c.hold_end (E_finish { client = idx; gen = c.gen });
      if !sim_now +. cfg.renew_every < c.hold_end then
        schedule ~at:(!sim_now +. cfg.renew_every) (E_renew { client = idx; gen = c.gen })
    end
  in

  let classify_fenced idx slice =
    let c = clients.(idx) in
    if disruption.(slice) > c.d_gen then incr expected_fenced
    else incr unexpected_fenced
  in

  (* Mark every slice currently owned by [shard] as disrupted: its body
     is about to be lost and every lease it issued is doomed. *)
  let disrupt_owned ~shard =
    for slice = 0 to n_slices - 1 do
      if Router.owner router ~slice = Some shard then
        disruption.(slice) <- disruption.(slice) + 1
    done
  in

  let crash_shard shard =
    if Shard.alive (Router.shard router ~id:shard) ~now:!sim_now then begin
      disrupt_owned ~shard;
      (* A slice in transit *from* this shard also dies with it. *)
      List.iter
        (fun (slice, from_, _to) ->
          if from_ = shard then disruption.(slice) <- disruption.(slice) + 1)
        (Router.in_transit router);
      Router.crash_shard router ~id:shard;
      incr shard_crashes;
      schedule ~at:(!sim_now +. cfg.shard_restart_delay) (E_shard_restart { shard })
    end
  in

  let handle_completions completions =
    List.iter
      (fun { Router.c_slice; c_shard; c_done } ->
        match c_done with
        | Service.Done { ticket; grant; _ } -> (
          let key = (c_slice, ticket) in
          match List.assoc_opt key !waiting with
          | None -> ()
          | Some idx ->
            waiting := List.remove_assoc key !waiting;
            let c = clients.(idx) in
            (match c.phase with
            | Waiting (s, t) when s = c_slice && t = ticket ->
              enter_holding idx ~slice:c_slice ~shard:c_shard grant
            | _ ->
              (* The client moved on (e.g. crashed while queued): hand
                 the name straight back. *)
              let fence =
                { Router.gf_slice = c_slice; gf_fence = grant.Lease.g_fence }
              in
              ignore (Router.release router ~fence)))
        | Service.Timed_out { ticket; _ } -> (
          let key = (c_slice, ticket) in
          match List.assoc_opt key !waiting with
          | None -> ()
          | Some idx ->
            waiting := List.remove_assoc key !waiting;
            let c = clients.(idx) in
            (match c.phase with
            | Waiting (s, t) when s = c_slice && t = ticket -> retry_or_abandon idx
            | _ -> ())))
      completions
  in

  let pump () =
    handle_completions (Router.pump router);
    (* Crash-during-handoff injection: a transit observed right after a
       pump has not completed yet (completion needs a strictly later
       pump), so a crash scheduled at the same instant lands mid-
       handoff by construction. *)
    match cfg.handoff with
    | None -> ()
    | Some h ->
      List.iter
        (fun (_slice, from_, to_) ->
          let u = Sample.float_unit rng in
          if u < h.h_crash_src then schedule ~at:!sim_now (E_shard_crash { shard = from_ })
          else if u < h.h_crash_src +. h.h_crash_dst then
            schedule ~at:!sim_now (E_shard_crash { shard = to_ }))
        (Router.in_transit router)
  in

  let crash_holding idx =
    let c = clients.(idx) in
    match c.phase with
    | Holding fence ->
      incr client_crashes;
      c.gen <- c.gen + 1;
      c.phase <- Crashed;
      schedule
        ~at:(!sim_now +. jitter ~around:cfg.client_restart_delay)
        (E_client_restart { client = idx; gen = c.gen });
      if Sample.bernoulli rng cfg.stale_wakeup then
        schedule
          ~at:
            (!sim_now +. (1.5 *. cfg.router.Router.ttl)
            +. (Sample.float_unit rng *. cfg.router.Router.ttl))
          (E_stale { fence })
    | _ -> ()
  in

  (* Seed arrivals. *)
  let arrivals = Arrival.times cfg.arrival ~n:cfg.clients in
  Array.iteri
    (fun idx at -> begin_session_attempt idx ~at:(float_of_int at *. 0.5))
    arrivals;
  (* Correlated shard crashes, reusing the crash-pattern generator over
     the shard space instead of the process space. *)
  (match cfg.shard_burst with
  | None -> ()
  | Some b ->
    List.iter
      (fun (time, shard) -> schedule ~at:(float_of_int time) (E_shard_crash { shard }))
      (Crash_pattern.burst ~rng ~n:n_shards ~failures:b.b_failures ~at:b.b_at
         ~width:b.b_width));
  (match cfg.stall with
  | None -> ()
  | Some st -> schedule ~at:st.st_every (E_shard_stall ()));
  (match cfg.handoff with
  | None -> ()
  | Some h -> schedule ~at:h.h_every (E_handoff ()));
  (* Maintenance heartbeat: keeps orphan adoption and queue timeouts
     progressing even when every client is backing off. *)
  schedule ~at:(cfg.router.Router.ttl /. 2.) (E_tick ());

  let fresh c gen = c.gen = gen in
  (try
     let continue_ = ref true in
     while !continue_ do
       if !n_events > cfg.max_events then begin
         livelocked := true;
         continue_ := false
       end
       else
         match Heap.pop heap with
         | None -> continue_ := false
         | Some (time, ev) ->
           incr n_events;
           sim_now := max !sim_now time;
           pump ();
           (match ev with
           | E_start { client = idx; gen } ->
             let c = clients.(idx) in
             if fresh c gen then begin
               (match c.session with
               | Some _ -> ()
               | None ->
                 if !minted < cfg.sessions_target then begin
                   c.session <- Some (Minter.mint minter);
                   incr minted
                 end);
               match c.session with
               | None -> set_finished c
               | Some session -> (
                 match Router.acquire ?hint:c.hint router ~session ~key:c.key with
                 | Router.Granted g ->
                   enter_holding idx ~slice:g.Router.sg_slice ~shard:g.Router.sg_shard
                     g.Router.sg_grant
                 | Router.Queued { slice; shard; ticket } ->
                   c.gen <- c.gen + 1;
                   c.hint <- Some shard;
                   c.phase <- Waiting (slice, ticket);
                   waiting := ((slice, ticket), idx) :: !waiting;
                   schedule
                     ~at:(!sim_now +. cfg.router.Router.request_timeout +. 0.001)
                     (E_poll { client = idx; gen = c.gen })
                 | Router.Shed _ -> retry_or_abandon idx
                 | Router.Busy (Router.Redirected { shard }) ->
                   (* Fresh routing information: follow it immediately
                      rather than burning an attempt. *)
                   incr redirects;
                   c.hint <- Some shard;
                   c.gen <- c.gen + 1;
                   schedule ~at:(!sim_now +. 0.001) (E_start { client = idx; gen = c.gen })
                 | Router.Busy (Router.Shard_down _) ->
                   incr shard_down_busy;
                   c.hint <- None;
                   retry_or_abandon idx
                 | Router.Busy (Router.In_handoff _) ->
                   incr in_handoff_busy;
                   c.hint <- None;
                   retry_or_abandon idx)
             end
           | E_poll { client = idx; gen } ->
             (* Normally the pump above resolved the ticket (granted or
                timed out) and bumped the generation, making this event
                stale.  If the client is *still* waiting, the ticket
                died with its slice body — resolve it here so nothing
                hangs on a crashed shard. *)
             let c = clients.(idx) in
             if fresh c gen then (
               match c.phase with
               | Waiting (slice, ticket) ->
                 waiting := List.remove_assoc (slice, ticket) !waiting;
                 incr lost_tickets;
                 retry_or_abandon idx
               | _ -> ())
           | E_renew { client = idx; gen } ->
             let c = clients.(idx) in
             if fresh c gen then (
               match c.phase with
               | Holding fence -> (
                 let reschedule ~after =
                   if !sim_now +. after < c.hold_end then
                     schedule ~at:(!sim_now +. after)
                       (E_renew { client = idx; gen = c.gen })
                 in
                 match Router.renew router ~fence with
                 | Ok _ -> reschedule ~after:cfg.renew_every
                 | Error (`Busy b) ->
                   (* The slice is dark or moving: keep the lease warm
                      by retrying; if the body really died we will be
                      fenced (expectedly) after adoption. *)
                   (match b with
                   | Router.Shard_down _ -> incr shard_down_busy
                   | Router.In_handoff _ -> incr in_handoff_busy
                   | Router.Redirected { shard } ->
                     incr redirects;
                     c.hint <- Some shard);
                   reschedule ~after:cfg.backoff_unit
                 | Error `Fenced ->
                   classify_fenced idx fence.Router.gf_slice;
                   finish_session idx ~next_in:(think c))
               | _ -> ())
           | E_finish { client = idx; gen } ->
             let c = clients.(idx) in
             if fresh c gen then (
               match c.phase with
               | Holding fence -> (
                 match Router.release router ~fence with
                 | Ok _ -> finish_session idx ~next_in:(think c)
                 | Error `Fenced ->
                   classify_fenced idx fence.Router.gf_slice;
                   finish_session idx ~next_in:(think c)
                 | Error (`Busy b) ->
                   (match b with
                   | Router.Shard_down _ -> incr shard_down_busy
                   | Router.In_handoff _ -> incr in_handoff_busy
                   | Router.Redirected { shard } ->
                     incr redirects;
                     c.hint <- Some shard);
                   c.attempts <- c.attempts + 1;
                   if c.attempts > 3 then begin
                     (* Give up releasing into a dark slice: the lease
                        expires and is reclaimed on its own. *)
                     incr releases_dropped;
                     finish_session idx ~next_in:(think c)
                   end
                   else
                     schedule ~at:(!sim_now +. backoff c)
                       (E_finish { client = idx; gen = c.gen }))
               | _ -> ())
           | E_client_crash { client = idx; gen } ->
             let c = clients.(idx) in
             if fresh c gen then crash_holding idx
           | E_client_restart { client = idx; gen } ->
             let c = clients.(idx) in
             if fresh c gen then begin
               incr client_restarts;
               c.session <- None;
               c.attempts <- 0;
               if !minted >= cfg.sessions_target then set_finished c
               else begin_session_attempt idx ~at:!sim_now
             end
           | E_stale { fence } ->
             (* The ghost of a crashed incarnation replays its fence,
                possibly against a slice that has since moved shards.
                Every operation must resolve to [`Fenced] or a
                structured [`Busy] — an [Ok] is a fencing hole. *)
             incr stale_ops;
             let ok = ref 0 in
             (match Router.renew router ~fence with Ok _ -> incr ok | Error _ -> ());
             (match Router.use router ~fence with Ok _ -> incr ok | Error _ -> ());
             (match Router.release router ~fence with Ok _ -> incr ok | Error _ -> ());
             if !ok = 0 then incr stale_rejected else stale_ok := !stale_ok + !ok
           | E_shard_crash { shard } -> crash_shard shard
           | E_shard_restart { shard } ->
             Router.restart_shard router ~id:shard;
             incr shard_restarts
           | E_shard_stall () -> (
             match cfg.stall with
             | None -> ()
             | Some st ->
               let shard = !stall_rr mod n_shards in
               incr stall_rr;
               if Shard.alive (Router.shard router ~id:shard) ~now:!sim_now then begin
                 if st.st_duration > grace then disrupt_owned ~shard;
                 Router.stall_shard router ~id:shard ~until:(!sim_now +. st.st_duration);
                 incr shard_stalls
               end;
               if !active_clients > 0 then
                 schedule ~at:(!sim_now +. st.st_every) (E_shard_stall ()))
           | E_handoff () -> (
             match cfg.handoff with
             | None -> ()
             | Some h ->
               (* Forced rebalancing: rotate through the slices looking
                  for one that can legally move to the next live shard.
                  Crash injection happens at the post-pump transit scan. *)
               let started = ref false in
               let tries = ref 0 in
               while (not !started) && !tries < n_slices do
                 let slice = !handoff_rr mod n_slices in
                 incr handoff_rr;
                 incr tries;
                 (match Router.owner router ~slice with
                 | None -> ()
                 | Some from_ ->
                   let dst = ref ((from_ + 1) mod n_shards) in
                   let dtries = ref 0 in
                   while
                     !dtries < n_shards - 1
                     && not (Shard.alive (Router.shard router ~id:!dst) ~now:!sim_now)
                   do
                     dst := (!dst + 1) mod n_shards;
                     if !dst = from_ then dst := (!dst + 1) mod n_shards;
                     incr dtries
                   done;
                   if
                     !dst <> from_
                     && Shard.alive (Router.shard router ~id:!dst) ~now:!sim_now
                   then
                     match Router.begin_handoff router ~slice ~to_:!dst with
                     | Ok () -> started := true
                     | Error `Unavailable -> ())
               done;
               if !active_clients > 0 then
                 schedule ~at:(!sim_now +. h.h_every) (E_handoff ()))
           | E_tick () ->
             if !active_clients > 0 then
               schedule
                 ~at:(!sim_now +. (cfg.router.Router.ttl /. 2.))
                 (E_tick ()));
           peak_held := max !peak_held (Router.total_held router)
     done
   with Audit.Violation { kind; message } -> violation := Some (kind, message));
  {
    sessions = !minted;
    client_crashes = !client_crashes;
    client_restarts = !client_restarts;
    shard_crashes = !shard_crashes;
    shard_restarts = !shard_restarts;
    shard_stalls = !shard_stalls;
    abandoned = !abandoned;
    stale_ops = !stale_ops;
    stale_rejected = !stale_rejected;
    stale_ok = !stale_ok;
    retries = !retries;
    redirects = !redirects;
    shard_down_busy = !shard_down_busy;
    in_handoff_busy = !in_handoff_busy;
    expected_fenced = !expected_fenced;
    unexpected_fenced = !unexpected_fenced;
    releases_dropped = !releases_dropped;
    lost_tickets = !lost_tickets;
    events = !n_events;
    sim_time = !sim_now;
    peak_held = !peak_held;
    final_held = Router.total_held router;
    livelocked = !livelocked;
    violation = !violation;
    audit_near_misses = Router.audit_near_misses router;
    gaudit_violations = Router.gaudit_violations router;
    gaudit_live = Router.gaudit_live router;
    router = Router.stats router;
  }
