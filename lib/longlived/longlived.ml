module Program = Renaming_sched.Program
module Executor = Renaming_sched.Executor
module Memory = Renaming_sched.Memory
module Adversary = Renaming_sched.Adversary
module Stream = Renaming_rng.Stream
module Sample = Renaming_rng.Sample
module Summary = Renaming_stats.Summary
open Program.Syntax

type config = { sessions : int; rounds : int; epsilon : float; probe_cap : int option }

let make_config ?(epsilon = 0.5) ?(rounds = 8) ?probe_cap ~sessions () =
  if sessions < 1 then invalid_arg "Longlived.make_config: sessions must be >= 1";
  if rounds < 1 then invalid_arg "Longlived.make_config: rounds must be >= 1";
  if epsilon <= 0. then invalid_arg "Longlived.make_config: epsilon must be positive";
  (match probe_cap with
  | Some c when c < 0 -> invalid_arg "Longlived.make_config: probe_cap must be >= 0"
  | _ -> ());
  { sessions; rounds; epsilon; probe_cap }

let namespace_for ~sessions ~epsilon =
  max (sessions + 1) (int_of_float (ceil ((1. +. epsilon) *. float_of_int sessions)))

let namespace cfg = namespace_for ~sessions:cfg.sessions ~epsilon:cfg.epsilon

type stats = {
  acquires : int;
  releases : int;
  release_failures : int;
  probe_summary : Summary.t;
  max_held : int;
  cap_exhaustions : int;
  aborted_sessions : int;
}

let create_stats () =
  ref
    {
      acquires = 0;
      releases = 0;
      release_failures = 0;
      probe_summary = Summary.create ();
      max_held = 0;
      cap_exhaustions = 0;
      aborted_sessions = 0;
    }

let predicted_probes cfg = (1. +. cfg.epsilon) /. cfg.epsilon

let probe_cap cfg =
  match cfg.probe_cap with Some c -> c | None -> 64 * namespace cfg

(* One session process: [rounds] acquire/hold/release cycles.  The hold
   phase is a read of the held register (one step) — enough to give the
   adversary a window to interleave. *)
let program ?stats cfg ~held_counter ~rng =
  let m = namespace cfg in
  let bump f = match stats with Some s -> s := f !s | None -> () in
  let cap = probe_cap cfg in
  (* Random probing up to the cap, then one deterministic sweep.  The
     cap is unreachable in practice (success probability has a positive
     floor), but when it does trip — adversarial schedules, tiny
     namespaces, injected contention — the outcome is *structured*:
     the exhaustion is counted in [stats.cap_exhaustions], the sweep
     either recovers a name or fails, and a failed sweep aborts the
     session ([stats.aborted_sessions]) instead of looping forever. *)
  let rec acquire probes =
    if probes >= cap then begin
      bump (fun s -> { s with cap_exhaustions = s.cap_exhaustions + 1 });
      let* name = Program.scan_names ~first:0 ~count:m in
      match name with
      | Some nm -> Program.return (Some (nm, probes + m))
      | None -> Program.return None
    end
    else
      let target = Sample.uniform_int rng m in
      let* won = Program.tas_name target in
      if won then Program.return (Some (target, probes + 1)) else acquire (probes + 1)
  in
  let rec cycle r =
    if r = 0 then Program.return None
    else
      let* acquired = acquire 0 in
      match acquired with
      | None ->
        (* Probe cap tripped and the recovery sweep found every register
           held: give the session up gracefully rather than livelock. *)
        bump (fun s -> { s with aborted_sessions = s.aborted_sessions + 1 });
        Program.return None
      | Some (name, probes) ->
        bump (fun s -> { s with acquires = s.acquires + 1 });
        (match stats with
        | Some s -> Summary.add_int !s.probe_summary probes
        | None -> ());
        incr held_counter;
        bump (fun s -> { s with max_held = max s.max_held !held_counter });
        let* _ = Program.read_name name in
        decr held_counter;
        let* released = Program.release_name name in
        bump (fun s ->
            if released then { s with releases = s.releases + 1 }
            else { s with release_failures = s.release_failures + 1 });
        cycle (r - 1)
  in
  cycle cfg.rounds

let instance ?stats cfg ~stream =
  let memory = Memory.create ~namespace:(namespace cfg) () in
  let held_counter = ref 0 in
  let programs =
    Array.init cfg.sessions (fun pid ->
        program ?stats cfg ~held_counter ~rng:(Stream.fork stream ~index:pid))
  in
  {
    Executor.memory;
    programs;
    label = Printf.sprintf "longlived(sessions=%d,rounds=%d)" cfg.sessions cfg.rounds;
  }

let run ?stats ?adversary cfg ~seed =
  let stream = Stream.create seed in
  let inst = instance ?stats cfg ~stream in
  let adversary = match adversary with Some a -> a | None -> Adversary.round_robin () in
  Executor.run ~adversary inst
