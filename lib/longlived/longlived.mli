(** Long-lived loose renaming: names are acquired, used, and released.

    The paper's algorithms are one-shot; the long-lived variant (related
    work [13], Eberly–Higham–Warpechowska-Gruca) lets each of [sessions]
    processes repeatedly acquire a distinct name, hold it, and give it
    back.  We reproduce the randomized probing approach in the paper's
    hardware-TAS model: the namespace holds
    [m = ⌈(1+ε)·sessions⌉] releasable registers, an acquire probes
    uniform names until it wins one (success probability at least
    [ε/(1+ε)] regardless of churn, since at most [sessions] names are
    ever held), and a release frees the register.

    Guarantees, enforced structurally by the substrate and checked by
    the tests:
    - mutual exclusion: a register is held by at most one process at a
      time (TAS wins only on free registers; release is owner-checked);
    - lock-freedom under churn: every acquire terminates (the geometric
      success probability has a positive floor, plus a deterministic
      sweep cap) — and the cap itself is a *structured* outcome: a
      tripped probe cap is counted in [stats.cap_exhaustions], and a
      session whose recovery sweep also fails aborts gracefully
      ([stats.aborted_sessions]) instead of spinning;
    - the amortized step complexity of an acquire concentrates around
      [(1+ε)/ε] probes — measured by experiment T15. *)

type config = {
  sessions : int;  (** concurrent processes, each holding ≤ 1 name *)
  rounds : int;  (** acquire/release cycles per process *)
  epsilon : float;  (** namespace slack *)
  probe_cap : int option;
      (** random probes before the deterministic sweep; [None] means the
          default [64 · m].  Exposed so tests (and embedders such as
          {!Renaming_service}) can exercise the exhaustion path. *)
}

val make_config :
  ?epsilon:float -> ?rounds:int -> ?probe_cap:int -> sessions:int -> unit -> config
(** [epsilon] defaults to 0.5, [rounds] to 8, [probe_cap] to [64 · m]. *)

val namespace : config -> int

val namespace_for : sessions:int -> epsilon:float -> int
(** [max (sessions+1) ⌈(1+ε)·sessions⌉] — the namespace the long-lived
    probing discipline needs for [sessions] concurrent holders.  Shared
    with the lease-based service layer ({!Renaming_service.Lease}),
    which sizes its slot table with the same slack. *)

val probe_cap : config -> int
(** The effective probe cap ([config.probe_cap] or the [64 · m]
    default). *)

type stats = {
  acquires : int;
  releases : int;
  release_failures : int;  (** owner-check refusals; must be 0 *)
  probe_summary : Renaming_stats.Summary.t;  (** probes per successful acquire *)
  max_held : int;  (** peak simultaneously-held names observed *)
  cap_exhaustions : int;
      (** probe-cap trips (each followed by a deterministic sweep);
          0 in every fair run of sensible configurations *)
  aborted_sessions : int;
      (** sessions that gave up after a tripped cap *and* a failed
          sweep — the structured form of the former "unreachable in
          practice" branch *)
}

val create_stats : unit -> stats ref

val program :
  ?stats:stats ref ->
  config ->
  held_counter:int ref ->
  rng:Renaming_rng.Xoshiro.t ->
  int option Renaming_sched.Program.t
(** One session's program (exposed for tests and embedders that need to
    run it against a custom memory, e.g. to force the exhaustion
    path). *)

val instance :
  ?stats:stats ref -> config -> stream:Renaming_rng.Stream.t -> Renaming_sched.Executor.instance
(** Every program returns [None]; the outcome of a long-lived run is
    its [stats], not an assignment. *)

val run :
  ?stats:stats ref ->
  ?adversary:Renaming_sched.Adversary.t ->
  config ->
  seed:int64 ->
  Renaming_sched.Report.t

val predicted_probes : config -> float
(** [(1+ε)/ε], the geometric mean of probes per acquire when all other
    sessions hold a name. *)
