(** The canonical observable-event vocabulary of the refinement layer.

    Every backend — the one-shot executors, the lease service, the
    sharded router, the net path — is reduced to a stream of these
    events by an adapter ({!Exec_adapter}, {!Lease_adapter}); the
    stream is then replayed against the centralized {!Spec}.  Anything
    a backend does that has no counterpart here (handoffs, retransmits,
    dedup replays, renewals) is an internal step and must refine to a
    spec stutter.

    [session] identifies the party a name is accounted to: the pid for
    the one-shot executors, the minted session id for the lease
    service.  [name] is always a {e global} name (adapters globalize
    slice-local names before emitting). *)

type t =
  | Invoked of { session : int }  (** the session asked for a name *)
  | Granted of { session : int; name : int }  (** the backend assigned [name] *)
  | Claimed of { session : int; name : int }
      (** the session {e asserted} it holds [name] (a returned value, a
          successful ownership probe) — checked against the spec but
          never changes spec state *)
  | Released of { session : int; name : int }  (** an accepted release *)
  | Crashed of { session : int }
  | Recovered of { session : int }
  | Reclaimed of { session : int; name : int }
      (** the backend recovered [name] from a dead or expired holder *)
  | Shed of { session : int }  (** the request was refused before any grant *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** {2 Announce encoding}

    Model programs written against the plain executor announce their
    observable events by writing an encoded event to a dedicated
    read/write word register (word 0 by convention — see
    {!Grant_model}).  The encoding packs the constructor tag in bits
    0–3 (tags 1–8; 0 is reserved so an untouched register never decodes
    to an event), the session in bits 4–15 and the name above. *)

val encode : t -> int
val decode : int -> t option
(** [None] on tag 0 or an out-of-range tag — the adapter reports a
    malformed announce rather than guessing. *)
