module Audit = Renaming_service.Audit
module Router = Renaming_service.Router
module Lease = Renaming_service.Lease

type t = { check : Check.t }

let create ?obs ~namespace () =
  { check = Check.create ?obs ~config:{ Spec.namespace; one_shot = false } () }

let check t = t.check

(* Never raise: violations accumulate on the check and the campaign
   runner reports them after the simulation. *)
let feed t ev = ignore (Check.observe t.check ev : [ `Ok | `Violation of Check.violation ])

let audit_event t ~offset (ev : Audit.event) =
  match ev with
  | Audit.Granted { fence = { Lease.f_name; f_session; _ }; _ } ->
      feed t (Obs_event.Invoked { session = f_session });
      feed t (Obs_event.Granted { session = f_session; name = offset + f_name })
  | Audit.Released { fence = { Lease.f_name; f_session; _ }; accepted = true } ->
      feed t (Obs_event.Released { session = f_session; name = offset + f_name })
  | Audit.Reclaimed { fence = { Lease.f_name; f_session; _ }; _ } ->
      feed t (Obs_event.Reclaimed { session = f_session; name = offset + f_name })
  | Audit.Released { accepted = false; _ } | Audit.Renewed _ | Audit.Validated _ ->
      (* Renewals, validations and fenced-off ghosts change nothing the
         spec can see. *)
      Check.stutter t.check

let service_tap t ~now:_ ev = audit_event t ~offset:0 ev

let router_tap t ~slice_width (ev : Router.tap_event) =
  match ev with
  | Router.Tap_audit { slice; ev; _ } -> audit_event t ~offset:(slice * slice_width) ev
  | Router.Tap_absorb { slice; _ } ->
      (* The absorb discards an orphaned slice body after grace >= ttl:
         every lease it issued has expired, so the spec frees whatever
         it still accounts to the slice's global range. *)
      let base = slice * slice_width in
      for name = base to base + slice_width - 1 do
        match Spec.holder (Check.spec t.check) ~name with
        | Some session -> feed t (Obs_event.Reclaimed { session; name })
        | None -> ()
      done
