module Obs = Renaming_obs.Obs
module Metrics = Renaming_obs.Metrics

type violation = { v_index : int; v_event : Obs_event.t; v_reason : string }

let pp_violation ppf v =
  Format.fprintf ppf "event %d (%a): %s" v.v_index Obs_event.pp v.v_event v.v_reason

type counters = { c_events : Metrics.counter; c_stutters : Metrics.counter; c_violations : Metrics.counter }

type t = {
  spec : Spec.t;
  mutable events : int;
  mutable steps : int;
  mutable stutters : int;
  mutable violations : int;
  mutable first : violation option;
  counters : counters option;
}

let create ?obs ~config () =
  let counters =
    Option.map
      (fun o ->
        let m = Obs.metrics o in
        {
          c_events = Metrics.counter m "refine/events";
          c_stutters = Metrics.counter m "refine/stutters";
          c_violations = Metrics.counter m "refine/violations";
        })
      obs
  in
  {
    spec = Spec.create config;
    events = 0;
    steps = 0;
    stutters = 0;
    violations = 0;
    first = None;
    counters;
  }

let observe t ev =
  let index = t.events in
  t.events <- t.events + 1;
  Option.iter (fun c -> Metrics.incr c.c_events) t.counters;
  match Spec.apply t.spec ev with
  | `Step ->
      t.steps <- t.steps + 1;
      `Ok
  | `Stutter ->
      t.stutters <- t.stutters + 1;
      Option.iter (fun c -> Metrics.incr c.c_stutters) t.counters;
      `Ok
  | `Reject reason ->
      t.violations <- t.violations + 1;
      Option.iter (fun c -> Metrics.incr c.c_violations) t.counters;
      let v = { v_index = index; v_event = ev; v_reason = reason } in
      if t.first = None then t.first <- Some v;
      `Violation v

let stutter t =
  t.events <- t.events + 1;
  t.stutters <- t.stutters + 1;
  Option.iter
    (fun c ->
      Metrics.incr c.c_events;
      Metrics.incr c.c_stutters)
    t.counters

let spec t = t.spec
let events t = t.events
let steps t = t.steps
let stutters t = t.stutters
let violations t = t.violations
let first_violation t = t.first
