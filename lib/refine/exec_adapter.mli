(** Adapter from {!Renaming_sched.Executor.event} streams to the
    {!Obs_event} vocabulary, for the one-shot executor backends
    ([Executor.run] / [Directed.run] — chaos, mcheck, fuzz).

    Three extraction modes, chosen by target name ({!mode_of_name}):

    - {!Tas}: the paper algorithms.  A name is granted by winning its
      namespace TAS register, released by [Release_name], asserted by a
      successful [Owned_name] probe or a [Some] return value; a return
      of a name {e nobody} holds is itself the grant (the τ-device
      admission algorithms claim names their namespace registers never
      see).  Faulted operations never touch memory, so they are
      stutters.
    - {!Returns}: the service protocol models ([Handoff],
      [Shard_handoff], [Net_dedup] and their mutants).  Names live in
      model-internal words/aux registers, so the only observable grant
      is the returned value; everything else is a stutter.
    - {!Announce}: models that narrate their own observable events by
      writing {!Obs_event.encode}d values to word 0 ({!Grant_model}).

    A refinement violation is raised as
    [Renaming_faults.Monitor.Violation] with kind
    ["refine:<reason>"], so every existing catch / shrink / repro path
    handles it with no new plumbing. *)

type mode = Tas | Returns | Announce

val mode_of_name : string -> mode
(** By target-name prefix: the service-model families ([lease-handoff],
    [shard-handoff], [net-dedup] and their mutants) map to {!Returns},
    the [refine-grant] / [mutant-refine] family to {!Announce},
    everything else to {!Tas}. *)

type t

val create : ?obs:Renaming_obs.Obs.t -> mode:mode -> namespace:int -> unit -> t
(** One adapter per run (it owns the trace's {!Check.t}); [namespace]
    is the instance's [Memory.namespace]. *)

val hook : t -> Renaming_sched.Executor.event -> unit
(** Compose after the safety monitor's hook.  Raises
    [Renaming_faults.Monitor.Violation { kind = "refine:..."; _ }] on
    the first inexplicable event. *)

val check : t -> Check.t

val hook_for :
  ?obs:Renaming_obs.Obs.t -> name:string -> namespace:int -> unit ->
  Renaming_sched.Executor.event -> unit
(** [create] + [hook] with the mode resolved from [name] — the shape
    the campaign runners' [?refine] factories want. *)
