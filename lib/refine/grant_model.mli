(** The refinement layer's seeded-mutant self-test: a small
    grant/reclaim protocol over the plain executor whose processes
    narrate their observable events through the announce register
    (word 0, {!Obs_event.encode}), checked in {!Exec_adapter.Announce}
    mode.

    [n - 1] clients (session [i] works name [i]) and one reclaimer
    (pid [n - 1]).  A client announces [Invoked] then [Granted],
    publishes its grant in a table word, holds through one yield, then
    races the reclaimer for the name's settle lock (an aux TAS): the
    winner of the lock is the one allowed to announce the name's fate
    ([Released] by the client, [Reclaimed] by the reclaimer), so the
    clean protocol is legal under {e every} schedule, crash pattern and
    fault injection.

    {!instance_regrant} is the spec-divergent mutant: after a
    successful reclaim the reclaimer {e also} announces a re-grant of
    the name to the original session — which never re-invoked.  No
    per-backend monitor objects (the namespace is never touched, the
    returned values are all [None], uniqueness holds: each per-monitor
    check would need bespoke code to see it), but the centralized spec
    rejects it as [refine:grant-without-invoke].  The bug needs one
    preemption: park a client between its table publish and its settle
    TAS, so the reclaimer wins the lock; fair round-robin always lets
    the client settle first, so the baseline stays clean. *)

val instance : n:int -> seed:int64 -> Renaming_sched.Executor.instance
(** Clean variant ([n >= 2]; [seed] unused — the model is
    deterministic). *)

val instance_regrant : n:int -> seed:int64 -> Renaming_sched.Executor.instance
(** The post-reclaim double-grant mutant. *)
