(** Online refinement checker: feed one backend's adapted event stream
    through the centralized {!Spec} and record the simulation outcome.

    One checker per trace (the spec state is the simulation relation's
    abstract state); violations carry the event index and the first
    inexplicable event, which is everything a counterexample needs to
    be replayed — the executor adapters turn it into a
    {!Renaming_faults.Monitor.Violation} so the existing ddmin /
    [.repro] machinery applies unchanged. *)

type violation = { v_index : int; v_event : Obs_event.t; v_reason : string }

val pp_violation : Format.formatter -> violation -> unit

type t

val create : ?obs:Renaming_obs.Obs.t -> config:Spec.config -> unit -> t
(** With [?obs], the [refine/events], [refine/stutters] and
    [refine/violations] counters are registered on the metrics registry
    and bumped as the trace is consumed (get-or-create: many checkers
    may share one registry). *)

val observe : t -> Obs_event.t -> [ `Ok | `Violation of violation ]
(** Applies the event to the spec.  A rejected event leaves the spec
    state unchanged and is reported; checking continues, so one run
    can count several violations (the first is kept in
    {!first_violation}). *)

val stutter : t -> unit
(** Count one adapter-level stutter: an internal backend event
    (renewal, retransmit, dedup replay, handoff) heard and mapped to
    no spec transition at all. *)

val spec : t -> Spec.t
val events : t -> int
val steps : t -> int
val stutters : t -> int
val violations : t -> int
val first_violation : t -> violation option
