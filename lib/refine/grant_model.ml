module Executor = Renaming_sched.Executor
module Memory = Renaming_sched.Memory
module Program = Renaming_sched.Program

(* Memory layout: word 0 is the announce register, word 1+i is client
   i's table entry (1 = granted); aux i is name i's settle lock.  The
   namespace array exists only to size the spec ([Memory.namespace] =
   n-1 names); nobody TASes it. *)

let announce ev = Program.write_word ~idx:0 ~value:(Obs_event.encode ev)

let client i =
  let open Program.Syntax in
  (* Crash-recovery re-runs the program from scratch, so the grant
     sequence is guarded by the publish word: once a previous
     incarnation has published, re-announcing would race the reclaimer
     (its Reclaimed can land between our Invoked stutter and Granted,
     and the re-announced grant is then inexplicable to the spec). *)
  let* published = Program.read_word (1 + i) in
  let* () =
    if published = 1 then Program.return ()
    else
      let* () = announce (Obs_event.Invoked { session = i }) in
      let* () = announce (Obs_event.Granted { session = i; name = i }) in
      (* Publish after announcing, so the reclaimer can only reclaim a
         grant the spec has already heard. *)
      Program.write_word ~idx:(1 + i) ~value:1
  in
  (* Hold window: the preemption point the mutant needs. *)
  let* () = Program.yield in
  let* settled = Program.try_tas_aux i in
  match settled with
  | Ok true ->
      let* () = announce (Obs_event.Released { session = i; name = i }) in
      Program.return None
  | Ok false | Error `Faulted ->
      (* The reclaimer settled the name first (or the TAS was hit by a
         fault and conveyed nothing): the client no longer owns its
         fate and must not announce. *)
      Program.return None

let reclaimer ~clients ~mutant =
  let open Program.Syntax in
  let rec yields k =
    if k = 0 then Program.return () else Program.bind Program.yield (fun () -> yields (k - 1))
  in
  let rec sweep i =
    if i >= clients then Program.return None
    else
      let* occupied = Program.read_word (1 + i) in
      if occupied <> 1 then sweep (i + 1)
      else
        let* settled = Program.try_tas_aux i in
        match settled with
        | Ok true ->
            let* () = announce (Obs_event.Reclaimed { session = i; name = i }) in
            if mutant then
              (* The bug: hand the reclaimed name straight back to a
                 session that never re-invoked.  Inexplicable to the
                 centralized spec, invisible to every per-run monitor. *)
              let* () = announce (Obs_event.Granted { session = i; name = i }) in
              sweep (i + 1)
            else sweep (i + 1)
        | Ok false | Error `Faulted -> sweep (i + 1)
  in
  (* Grace period: six yields per client round keep fair round-robin
     clean — every client reaches its settle TAS (6th step) before the
     reclaimer's first one (8th). *)
  let* () = yields 6 in
  sweep 0

let make ~n ~mutant label =
  if n < 2 then invalid_arg "Grant_model: n must be >= 2";
  let clients = n - 1 in
  let memory = Memory.create ~namespace:clients ~aux:clients ~words:(1 + clients) () in
  let programs =
    Array.init n (fun pid -> if pid < clients then client pid else reclaimer ~clients ~mutant)
  in
  { Executor.memory; programs; label }

let instance ~n ~seed:_ = make ~n ~mutant:false "refine-grant"
let instance_regrant ~n ~seed:_ = make ~n ~mutant:true "mutant-refine-regrant"
