(** Adapter from the lease-service audit streams to the {!Obs_event}
    vocabulary — the refinement view of the {!Renaming_service.Service}
    stack, the sharded {!Renaming_service.Router} and the net path.

    The mapping rides the taps the service layer already exposes
    ([Service.create ?tap], [Router.create ?tap]), so observing changes
    nothing about the run:

    - [Granted] → [Invoked] + [Granted] (sessions are minted per
      attempt, so the invocation is implicit in the grant);
    - accepted [Released] → [Released]; a {e fenced} release/renew/
      validate is the fence doing its job — a stutter;
    - [Reclaimed] → [Reclaimed];
    - renewals and validations → stutters;
    - a router slice absorb → [Reclaimed] for every name the spec
      still believes is held in the slice's global range (the absorb
      fires only after [grace ≥ ttl], so every such lease has expired);
    - clean slice handoffs move the body intact and emit no audit
      events at all — they refine to stutters for free.

    Unlike the executor adapters this one never raises: the discrete
    event simulations drive millions of sessions and a violation is
    reported through {!Check.violations} / {!Check.first_violation} at
    the end of the run.

    The spec runs in lease mode ([one_shot = false]): a session may
    legally hold several leases at once (a queue ticket abandoned after
    a timeout can still grant after the session's retry already did),
    so only the uniqueness / namespace-bound / fencing invariants
    bind. *)

type t

val create : ?obs:Renaming_obs.Obs.t -> namespace:int -> unit -> t
(** [namespace]: total slots — [Lease.slots] for a single service,
    [slices × slice_width] for a router. *)

val check : t -> Check.t

val service_tap : t -> now:float -> Renaming_service.Audit.event -> unit
(** Shape of [Service.create ?tap]. *)

val router_tap : t -> slice_width:int -> Renaming_service.Router.tap_event -> unit
(** Shape of [Router.create ?tap] (partially applied on
    [slice_width]); globalizes slice-local names. *)
