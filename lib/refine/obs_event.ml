type t =
  | Invoked of { session : int }
  | Granted of { session : int; name : int }
  | Claimed of { session : int; name : int }
  | Released of { session : int; name : int }
  | Crashed of { session : int }
  | Recovered of { session : int }
  | Reclaimed of { session : int; name : int }
  | Shed of { session : int }

let pp ppf = function
  | Invoked { session } -> Format.fprintf ppf "invoked s%d" session
  | Granted { session; name } -> Format.fprintf ppf "granted s%d name %d" session name
  | Claimed { session; name } -> Format.fprintf ppf "claimed s%d name %d" session name
  | Released { session; name } -> Format.fprintf ppf "released s%d name %d" session name
  | Crashed { session } -> Format.fprintf ppf "crashed s%d" session
  | Recovered { session } -> Format.fprintf ppf "recovered s%d" session
  | Reclaimed { session; name } -> Format.fprintf ppf "reclaimed s%d name %d" session name
  | Shed { session } -> Format.fprintf ppf "shed s%d" session

let to_string ev = Format.asprintf "%a" pp ev

(* Tag 0 is reserved: a zero-initialised announce register must never
   decode to an event. *)
let tag_of = function
  | Invoked _ -> 1
  | Granted _ -> 2
  | Claimed _ -> 3
  | Released _ -> 4
  | Crashed _ -> 5
  | Recovered _ -> 6
  | Reclaimed _ -> 7
  | Shed _ -> 8

let session_of = function
  | Invoked { session }
  | Granted { session; _ }
  | Claimed { session; _ }
  | Released { session; _ }
  | Crashed { session }
  | Recovered { session }
  | Reclaimed { session; _ }
  | Shed { session } ->
      session

let name_of = function
  | Granted { name; _ } | Claimed { name; _ } | Released { name; _ } | Reclaimed { name; _ } ->
      name
  | Invoked _ | Crashed _ | Recovered _ | Shed _ -> 0

let encode ev =
  let session = session_of ev and name = name_of ev in
  if session < 0 || session > 0xfff then invalid_arg "Obs_event.encode: session out of range";
  if name < 0 then invalid_arg "Obs_event.encode: negative name";
  tag_of ev lor (session lsl 4) lor (name lsl 16)

let decode v =
  if v <= 0 then None
  else
    let tag = v land 0xf in
    let session = (v lsr 4) land 0xfff in
    let name = v lsr 16 in
    match tag with
    | 1 -> Some (Invoked { session })
    | 2 -> Some (Granted { session; name })
    | 3 -> Some (Claimed { session; name })
    | 4 -> Some (Released { session; name })
    | 5 -> Some (Crashed { session })
    | 6 -> Some (Recovered { session })
    | 7 -> Some (Reclaimed { session; name })
    | 8 -> Some (Shed { session })
    | _ -> None
