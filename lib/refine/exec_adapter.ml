module Executor = Renaming_sched.Executor
module Op = Renaming_sched.Op
module Monitor = Renaming_faults.Monitor

type mode = Tas | Returns | Announce

let has_prefix s ~prefix =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

let returns_prefixes =
  [ "lease-handoff"; "mutant-lease"; "shard-handoff"; "mutant-shard"; "net-dedup"; "mutant-net" ]

let announce_prefixes = [ "refine-grant"; "mutant-refine" ]

let mode_of_name name =
  if List.exists (fun prefix -> has_prefix name ~prefix) returns_prefixes then Returns
  else if List.exists (fun prefix -> has_prefix name ~prefix) announce_prefixes then Announce
  else Tas

type t = { mode : mode; check : Check.t; invoked : (int, unit) Hashtbl.t }

let create ?obs ~mode ~namespace () =
  {
    mode;
    check = Check.create ?obs ~config:{ Spec.namespace; one_shot = true } ();
    invoked = Hashtbl.create 8;
  }

let check t = t.check

let violate v =
  raise
    (Monitor.Violation
       {
         kind = "refine:" ^ v.Check.v_reason;
         message = Format.asprintf "refinement: %a" Check.pp_violation v;
       })

let feed t ev = match Check.observe t.check ev with `Ok -> () | `Violation v -> violate v

(* The lazy invocation of the one-shot world: a pid has asked for a name
   the moment it takes its first step. *)
let ensure_invoked t pid =
  if not (Hashtbl.mem t.invoked pid) then (
    Hashtbl.replace t.invoked pid ();
    feed t (Obs_event.Invoked { session = pid }))

let on_tas t (ev : Executor.event) =
  match ev with
  | Stepped { pid; response = Op.Faulted; _ } ->
      (* An injected fault: the op did not touch memory. *)
      ensure_invoked t pid;
      Check.stutter t.check
  | Stepped { pid; op; response; _ } -> (
      ensure_invoked t pid;
      match (op, response) with
      | Op.Tas_name name, Op.Bool true -> feed t (Obs_event.Granted { session = pid; name })
      | Op.Release_name name, Op.Bool true -> feed t (Obs_event.Released { session = pid; name })
      | Op.Owned_name name, Op.Bool true -> feed t (Obs_event.Claimed { session = pid; name })
      | _ -> Check.stutter t.check)
  | Crashed { pid; _ } -> feed t (Obs_event.Crashed { session = pid })
  | Recovered { pid; _ } -> feed t (Obs_event.Recovered { session = pid })
  | Returned { pid; value = Some name; _ } -> (
      ensure_invoked t pid;
      (* Returning a name the session TAS-won is a re-assertion of the
         grant; returning one with no holder is the grant itself — the
         device-admission algorithms (τ-slots) claim names the namespace
         registers never see.  Either way, returning a name someone else
         holds is inexplicable. *)
      match Spec.holder (Check.spec t.check) ~name with
      | Some h when h = pid -> feed t (Obs_event.Claimed { session = pid; name })
      | _ -> feed t (Obs_event.Granted { session = pid; name }))
  | Returned { value = None; _ } -> Check.stutter t.check

let on_returns t (ev : Executor.event) =
  match ev with
  | Stepped { pid; _ } ->
      ensure_invoked t pid;
      Check.stutter t.check
  | Crashed { pid; _ } -> feed t (Obs_event.Crashed { session = pid })
  | Recovered { pid; _ } -> feed t (Obs_event.Recovered { session = pid })
  | Returned { pid; value = Some name; _ } ->
      ensure_invoked t pid;
      feed t (Obs_event.Granted { session = pid; name })
  | Returned { value = None; _ } -> Check.stutter t.check

let on_announce t (ev : Executor.event) =
  match ev with
  | Stepped { response = Op.Faulted; _ } -> Check.stutter t.check
  | Stepped { op = Op.Write_word { idx = 0; value }; _ } -> (
      match Obs_event.decode value with
      | Some obs_ev -> feed t obs_ev
      | None ->
          raise
            (Monitor.Violation
               {
                 kind = "refine:bad-announce";
                 message = Printf.sprintf "announce register wrote undecodable value %d" value;
               }))
  | Stepped _ | Crashed _ | Recovered _ | Returned _ ->
      (* Executor crashes hit pids, not the model's announced sessions;
         the model's own narration is the only observable. *)
      Check.stutter t.check

let hook t =
  match t.mode with Tas -> on_tas t | Returns -> on_returns t | Announce -> on_announce t

let hook_for ?obs ~name ~namespace () =
  hook (create ?obs ~mode:(mode_of_name name) ~namespace ())
