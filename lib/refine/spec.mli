(** The centralized renaming specification — the whole correctness
    argument of every backend, in one state machine small enough to
    read in a sitting.

    State: which session holds which name, plus per-session
    invoked/crashed flags.  The safety invariants are enabledness
    conditions on {!apply}:

    - {b uniqueness}: [Granted] is disabled while another session holds
      the name;
    - {b namespace-bound}: [Granted]/[Claimed] are disabled outside
      [0, namespace);
    - {b fencing}: [Released]/[Reclaimed]/[Claimed] are disabled unless
      the named session actually holds the name — an {e accepted}
      operation on a name the session does not hold is exactly the
      fenced-off ghost the lease layer must reject;
    - {b invocation} (one-shot mode): [Granted] is disabled unless the
      session has invoked and holds nothing — and [Reclaimed]/[Shed]
      clear the invocation, so a post-reclaim re-grant to a session
      that never re-invoked is inexplicable no matter which backend
      produced it.  A [Crashed] session abandons its live claims: the
      names it held stay consumed (granting one to another session is
      still inexplicable, and the recovered session re-discovering its
      old name is a stutter), but the recovered re-run may win a fresh
      name without tripping the one-claim rule.

    A backend trace refines the spec iff every adapted event is either
    an enabled transition ([`Step]), or changes nothing ([`Stutter]).
    [`Reject] names the first inexplicable event. *)

type config = {
  namespace : int;  (** names live in [0, namespace) *)
  one_shot : bool;
      (** [true]: the executor discipline — a session acquires at most
          one name and must re-invoke after a reclaim.  [false]: the
          lease discipline — a session may hold several leases (an
          abandoned queue ticket can grant after the retry already
          did), and only the fencing/uniqueness invariants bind. *)
}

type t

val create : config -> t
val config : t -> config

type verdict = [ `Step | `Stutter | `Reject of string ]

val apply : t -> Obs_event.t -> verdict
(** Deterministic; [`Reject] leaves the state unchanged. *)

val holder : t -> name:int -> int option
(** The session currently holding [name], if any. *)

val held : t -> int
(** Names currently held. *)

val snapshot : t -> string
(** Canonical rendering of the full state (sorted), for determinism
    tests and counterexample reports. *)
