type config = { namespace : int; one_shot : bool }

type session = { mutable invoked : bool; mutable crashed : bool; mutable holds : int list }

type t = {
  cfg : config;
  holders : (int, int) Hashtbl.t;  (* name -> session *)
  sessions : (int, session) Hashtbl.t;
}

let create cfg =
  if cfg.namespace <= 0 then invalid_arg "Spec.create: namespace must be positive";
  { cfg; holders = Hashtbl.create 64; sessions = Hashtbl.create 64 }

let config t = t.cfg

type verdict = [ `Step | `Stutter | `Reject of string ]

let session t id =
  match Hashtbl.find_opt t.sessions id with
  | Some s -> s
  | None ->
      let s = { invoked = false; crashed = false; holds = [] } in
      Hashtbl.replace t.sessions id s;
      s

let holder t ~name = Hashtbl.find_opt t.holders name

let held t = Hashtbl.length t.holders

let in_range t name = name >= 0 && name < t.cfg.namespace

let apply t (ev : Obs_event.t) : verdict =
  match ev with
  | Invoked { session = id } ->
      let s = session t id in
      if s.crashed then `Reject "invoke-while-crashed"
      else if s.invoked then `Stutter
      else (
        s.invoked <- true;
        `Step)
  | Granted { session = id; name } ->
      if not (in_range t name) then `Reject "name-out-of-range"
      else
        let s = session t id in
        if s.crashed then `Reject "grant-while-crashed"
        else (
          match holder t ~name with
          | Some h when h = id ->
              (* Re-announcing a grant the session already holds:
                 recovery re-discovery, handoff adoption, retransmit. *)
              `Stutter
          | Some _ -> `Reject "name-held"
          | None ->
              if t.cfg.one_shot && not s.invoked then `Reject "grant-without-invoke"
              else if t.cfg.one_shot && s.holds <> [] then `Reject "double-hold"
              else (
                Hashtbl.replace t.holders name id;
                s.holds <- name :: s.holds;
                `Step))
  | Claimed { session = id; name } ->
      if not (in_range t name) then `Reject "name-out-of-range"
      else (
        match holder t ~name with
        | Some h when h = id -> `Stutter
        | Some _ | None -> `Reject "claim-unbacked")
  | Released { session = id; name } -> (
      match holder t ~name with
      | Some h when h = id ->
          Hashtbl.remove t.holders name;
          let s = session t id in
          s.holds <- List.filter (fun n -> n <> name) s.holds;
          `Step
      | Some _ | None -> `Reject "release-not-holder")
  | Reclaimed { session = id; name } -> (
      match holder t ~name with
      | Some h when h = id ->
          Hashtbl.remove t.holders name;
          let s = session t id in
          s.holds <- List.filter (fun n -> n <> name) s.holds;
          (* The reclaimed party must ask again before being granted. *)
          if t.cfg.one_shot then s.invoked <- false;
          `Step
      | Some _ | None -> `Reject "reclaim-not-holder")
  | Crashed { session = id } ->
      let s = session t id in
      if s.crashed then `Reject "double-crash"
      else (
        s.crashed <- true;
        (* One-shot mode: the crash abandons the session's live claims.
           The names stay consumed ([holders] keeps them — the registers
           are still physically set, so granting one to anyone else
           remains inexplicable), but the recovered re-run competes
           afresh: it may win a new name without tripping [double-hold],
           and re-discovering its old one is a stutter. *)
        if t.cfg.one_shot then s.holds <- [];
        `Step)
  | Recovered { session = id } ->
      let s = session t id in
      if not s.crashed then `Reject "recover-of-live"
      else (
        s.crashed <- false;
        `Step)
  | Shed { session = id } ->
      if t.cfg.one_shot then (
        let s = session t id in
        s.invoked <- false;
        `Step)
      else `Stutter

let snapshot t =
  let buf = Buffer.create 128 in
  let holders =
    Hashtbl.fold (fun name s acc -> (name, s) :: acc) t.holders []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  Buffer.add_string buf "holders:";
  List.iter (fun (name, s) -> Buffer.add_string buf (Printf.sprintf " %d->s%d" name s)) holders;
  let sessions =
    (* A default record (never invoked, live, holding nothing) is
       indistinguishable from an absent one; lookups create them
       lazily, so rendering them would make rejected events look like
       state changes. *)
    Hashtbl.fold
      (fun id s acc -> if s.invoked || s.crashed || s.holds <> [] then (id, s) :: acc else acc)
      t.sessions []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  Buffer.add_string buf "\nsessions:";
  List.iter
    (fun (id, s) ->
      Buffer.add_string buf
        (Printf.sprintf " s%d[%s%s holds=%s]" id
           (if s.invoked then "i" else "-")
           (if s.crashed then "c" else "-")
           (String.concat "," (List.map string_of_int (List.sort compare s.holds)))))
    sessions;
  Buffer.contents buf
