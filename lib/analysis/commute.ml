module Op = Renaming_sched.Op
module Memory = Renaming_sched.Memory
module Executor = Renaming_sched.Executor
module Adversary = Renaming_sched.Adversary
module Tas_array = Renaming_shm.Tas_array
module Tau_register = Renaming_device.Tau_register

type failure = { f_check : string; f_detail : string }

type audit = { a_checked : int; a_failures : failure list }

let pp_failure fmt f = Format.fprintf fmt "[%s] %s" f.f_check f.f_detail

let string_of_op op = Format.asprintf "%a" Op.pp op

let string_of_response r = Format.asprintf "%a" Op.pp_response r

(* --- pairwise commutation audit --- *)

(* The audit memory: enough room for a shared index and a disjoint
   index in every region, plus two τ-registers so device operations are
   executable (they never are under a sound table, which must declare
   them Opaque — but a broken table should fail the audit, not crash
   it). *)
let fresh_memory () =
  let taus =
    Array.init 2 (fun i -> Tau_register.create ~base:(2 + i) ~tau:1 ~width:2 ())
  in
  Memory.create ~namespace:4 ~aux:4 ~words:4 ~taus ()

(* Everything observable about the audit memory except the τ-register
   device state — device operations are excluded from pair execution
   (see [audit_pairs]), so two executions agree iff their fingerprints
   and responses agree. *)
let fingerprint mem =
  let cells arr =
    String.concat ","
      (List.init (Tas_array.size arr) (fun i ->
           match Tas_array.owner arr i with None -> "-" | Some p -> string_of_int p))
  in
  Printf.sprintf "names:%s|aux:%s|words:%s"
    (cells (Memory.names mem))
    (cells (Memory.aux mem))
    (String.concat "," (Array.to_list (Array.map string_of_int (Memory.words mem))))

let is_device (op : Op.t) = match op with Op.Tau_submit _ | Op.Tau_poll _ -> true | _ -> false

(* Initial states the pairs are executed from: TAS outcomes, ownership
   tests and releases all behave differently depending on who (if
   anyone) holds the touched cells, so commutation must hold from every
   representative pre-state, not just the empty one. *)
let prestates =
  let claim_all ~pid mem =
    List.iter
      (fun idx ->
        ignore (Memory.apply mem ~pid (Op.Tas_name idx));
        ignore (Memory.apply mem ~pid (Op.Tas_aux idx)))
      [ 0; 1 ]
  in
  [
    ("empty", fun _ -> ());
    ( "shared-owned-by-first",
      fun mem ->
        ignore (Memory.apply mem ~pid:0 (Op.Tas_name 0));
        ignore (Memory.apply mem ~pid:0 (Op.Tas_aux 0));
        ignore (Memory.apply mem ~pid:0 (Op.Write_word { idx = 0; value = 5 })) );
    ( "shared-owned-by-second",
      fun mem ->
        ignore (Memory.apply mem ~pid:1 (Op.Tas_name 0));
        ignore (Memory.apply mem ~pid:1 (Op.Tas_aux 0)) );
    ( "shared-owned-by-third-party",
      fun mem ->
        ignore (Memory.apply mem ~pid:2 (Op.Tas_name 0));
        ignore (Memory.apply mem ~pid:2 (Op.Tas_aux 0));
        ignore (Memory.apply mem ~pid:2 (Op.Write_word { idx = 1; value = 9 })) );
    ("all-claimed-by-third-party", claim_all ~pid:2);
  ]

let run_order ~prepare ~first:(pid_a, op_a) ~second:(pid_b, op_b) =
  let mem = fresh_memory () in
  prepare mem;
  let ra = Memory.apply mem ~pid:pid_a op_a in
  let rb = Memory.apply mem ~pid:pid_b op_b in
  (ra, rb, fingerprint mem)

let audit_pairs ?(table = Footprint.of_op) () =
  let failures = ref [] in
  let checked = ref 0 in
  let fail check detail = failures := { f_check = check; f_detail = detail } :: !failures in
  let ops_a = Op.representatives ~idx:0 ~value:17 in
  let ops_b = Op.representatives ~idx:0 ~value:29 @ Op.representatives ~idx:1 ~value:29 in
  (* The representatives provably cover every constructor. *)
  let tags = List.sort_uniq compare (List.map Op.tag ops_a) in
  if List.length tags <> Op.n_tags then
    fail "representative-coverage"
      (Printf.sprintf "representatives cover %d of %d constructors" (List.length tags) Op.n_tags);
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          (* The relation must be symmetric... *)
          if Footprint.independent_under ~table a b <> Footprint.independent_under ~table b a
          then
            fail "symmetry"
              (Printf.sprintf "independence of %s / %s is asymmetric" (string_of_op a)
                 (string_of_op b));
          if Footprint.independent_under ~table a b then
            if is_device a || is_device b then
              (* ...device answers depend on the clock phase, so no table
                 may ever commute them past anything. *)
              fail "device-independence"
                (Printf.sprintf
                   "%s / %s: τ-register operations are position-sensitive and must be declared \
                    Opaque"
                   (string_of_op a) (string_of_op b))
            else
              List.iter
                (fun (state, prepare) ->
                  incr checked;
                  let ra1, rb1, fp1 = run_order ~prepare ~first:(0, a) ~second:(1, b) in
                  let rb2, ra2, fp2 = run_order ~prepare ~first:(1, b) ~second:(0, a) in
                  if ra1 <> ra2 || rb1 <> rb2 || fp1 <> fp2 then
                    fail "commutation"
                      (Printf.sprintf
                         "%s (pid 0) / %s (pid 1) claimed independent but orders differ from \
                          state %s: responses %s,%s vs %s,%s; state %S vs %S"
                         (string_of_op a) (string_of_op b) state (string_of_response ra1)
                         (string_of_response rb1) (string_of_response ra2) (string_of_response rb2)
                         fp1 fp2))
                prestates)
        ops_b)
    ops_a;
  { a_checked = !checked; a_failures = List.rev !failures }

(* --- dependence-relation audit (the DPOR race relation) --- *)

(* The model checker's race detection takes an opaque [dependent]
   predicate (in practice [Renaming_mcheck.Races.dependent], injected
   here by bin/ and the tests — lib/analysis sits below lib/mcheck in
   the build).  DPOR only stays sound if every pair that predicate
   declares independent really commutes, so the audit holds it against
   both the static table and the executable oracle: symmetry, exact
   agreement with [Footprint.independent_under], and both-orders
   execution from every representative pre-state for each pair it would
   let the checker reorder. *)
let audit_dependence ?(table = Footprint.of_op) ~dependent () =
  let failures = ref [] in
  let checked = ref 0 in
  let fail check detail = failures := { f_check = check; f_detail = detail } :: !failures in
  let ops_a = Op.representatives ~idx:0 ~value:17 in
  let ops_b = Op.representatives ~idx:0 ~value:29 @ Op.representatives ~idx:1 ~value:29 in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if dependent a b <> dependent b a then
            fail "dependence-symmetry"
              (Printf.sprintf "dependence of %s / %s is asymmetric" (string_of_op a)
                 (string_of_op b));
          if dependent a b = Footprint.independent_under ~table a b then
            fail "table-agreement"
              (Printf.sprintf
                 "race relation calls %s / %s %s but the audited footprint table says otherwise"
                 (string_of_op a) (string_of_op b)
                 (if dependent a b then "dependent" else "independent"));
          if not (dependent a b) then
            if is_device a || is_device b then
              fail "device-dependence"
                (Printf.sprintf
                   "%s / %s: τ-register operations are position-sensitive; the race relation \
                    must treat them as dependent"
                   (string_of_op a) (string_of_op b))
            else
              List.iter
                (fun (state, prepare) ->
                  incr checked;
                  let ra1, rb1, fp1 = run_order ~prepare ~first:(0, a) ~second:(1, b) in
                  let rb2, ra2, fp2 = run_order ~prepare ~first:(1, b) ~second:(0, a) in
                  if ra1 <> ra2 || rb1 <> rb2 || fp1 <> fp2 then
                    fail "race-soundness"
                      (Printf.sprintf
                         "%s (pid 0) / %s (pid 1): the race relation would let DPOR reorder \
                          these, but orders differ from state %s: responses %s,%s vs %s,%s; \
                          state %S vs %S"
                         (string_of_op a) (string_of_op b) state (string_of_response ra1)
                         (string_of_response rb1) (string_of_response ra2)
                         (string_of_response rb2) fp1 fp2))
                prestates)
        ops_b)
    ops_a;
  { a_checked = !checked; a_failures = List.rev !failures }

(* --- dynamic coverage audit --- *)

let coverage_logger ~table ~label ~count ~failures () ~pid op accesses =
  ignore pid;
  incr count;
  let claim = table op in
  List.iter
    (fun access ->
      if not (Footprint.covers claim access) then
        failures :=
          {
            f_check = "coverage";
            f_detail =
              Format.asprintf
                "%s: executed %a performed %a, not covered by its static footprint %a" label Op.pp
                op Memory.pp_access access Footprint.pp claim;
          }
          :: !failures)
    accesses

let audit_coverage ?(table = Footprint.of_op) ?(max_ticks = 2_000_000) instances =
  let failures = ref [] in
  let count = ref 0 in
  List.iter
    (fun (label, build) ->
      let inst = build () in
      Memory.set_access_logger inst.Executor.memory
        (Some (coverage_logger ~table ~label ~count ~failures ()));
      (* Round-robin keeps every process in contention, so TAS losses,
         failed releases and ownership misses all get logged, not just
         the happy paths a solo run would exercise. *)
      match Executor.run ~max_ticks ~adversary:(Adversary.round_robin ()) inst with
      | _report -> ()
      | exception e ->
        failures :=
          {
            f_check = "coverage-run";
            f_detail = Printf.sprintf "%s: instrumented run raised %s" label (Printexc.to_string e);
          }
          :: !failures)
    instances;
  (* The roster only exercises the operations the algorithms use; sweep
     the representatives over a scratch memory so rare operations
     (releases, word writes, device traffic) are dynamically checked
     too. *)
  List.iter
    (fun (_state, prepare) ->
      let mem = fresh_memory () in
      prepare mem;
      Memory.set_access_logger mem
        (Some (coverage_logger ~table ~label:"representatives" ~count ~failures ()));
      List.iter
        (fun pid ->
          List.iter
            (fun op -> ignore (Memory.apply mem ~pid op))
            (Op.representatives ~idx:(pid mod 2) ~value:(40 + pid)))
        [ 0; 1; 2 ])
    prestates;
  { a_checked = !count; a_failures = List.rev !failures }

(* A deliberately broken table for tests and the `--inject` self-check:
   TAS on the namespace misdeclared as a pure read, which makes the
   table claim e.g. tas-name[i] / read-name[i] commute — they do not. *)
let broken_table (op : Op.t) : Footprint.t =
  match (op, Footprint.of_op op) with
  | Op.Tas_name _, Footprint.Cell c -> Footprint.Cell { c with Footprint.writes = false }
  | _, fp -> fp
