(** The commutation oracle: machine-checks the {!Footprint} table the
    model checker prunes with, instead of trusting it.

    Three legs, all parameterised by the relation under audit so tests
    can verify that a misdeclaration is actually caught:

    - {!audit_pairs} executes every ordered pair of representative
      operations (one per [Op.t] constructor, shared and disjoint
      indices, distinct pids, several pre-states) in both orders on
      fresh memories and fails if the table claims independence where
      the orders produce different responses or final states;
    - {!audit_coverage} replays instrumented instances (the
      model-checking roster) under a {!Renaming_sched.Memory} access
      logger and fails if any executed operation performs a concrete
      access its static footprint does not cover;
    - {!audit_dependence} holds the model checker's race-detection
      predicate against both the table and the executable oracle. *)

type failure = { f_check : string; f_detail : string }

type audit = {
  a_checked : int;  (** pair executions / logged operations examined *)
  a_failures : failure list;
}

val pp_failure : Format.formatter -> failure -> unit

val audit_pairs : ?table:(Renaming_sched.Op.t -> Footprint.t) -> unit -> audit
(** Exhaustive pairwise commutation check of [table] (default: the
    shipped {!Footprint.of_op}).  Also checks that the representatives
    cover every constructor, that independence is symmetric, and that
    no table ever declares τ-register device operations independent of
    anything. *)

val audit_dependence :
  ?table:(Renaming_sched.Op.t -> Footprint.t) ->
  dependent:(Renaming_sched.Op.t -> Renaming_sched.Op.t -> bool) ->
  unit ->
  audit
(** Soundness audit of the DPOR race relation ([dependent] — in
    practice [Renaming_mcheck.Races.dependent], injected by callers
    above lib/mcheck in the build graph): symmetry, exact agreement
    with [Footprint.independent_under ~table], and, for every pair the
    relation would let the checker reorder, both-orders execution from
    every representative pre-state (device operations must always be
    dependent). *)

val audit_coverage :
  ?table:(Renaming_sched.Op.t -> Footprint.t) ->
  ?max_ticks:int ->
  (string * (unit -> Renaming_sched.Executor.instance)) list ->
  audit
(** Run each labelled instance under a round-robin adversary with the
    access logger attached, checking every logged access against the
    table; then sweep the representative operations over scratch
    memories so operations the instances never issue are covered too. *)

val broken_table : Renaming_sched.Op.t -> Footprint.t
(** The shipped table with [Tas_name] misdeclared as a pure read — a
    seeded bug that both audits must detect (used by tests and the
    [--inject broken-footprint] self-check of [renaming analyze]). *)
