type t = {
  pairs : Commute.audit;
  coverage : Commute.audit;
  dependence : Commute.audit option;
  lint_files : int;
  lint : Lint.finding list;
}

let run ?table ?dependent ?(lint_root = Some "lib") ~roster () =
  let pairs = Commute.audit_pairs ?table () in
  let coverage = Commute.audit_coverage ?table roster in
  let dependence =
    Option.map (fun dependent -> Commute.audit_dependence ?table ~dependent ()) dependent
  in
  let lint_files, lint =
    match lint_root with None -> (0, []) | Some root -> Lint.lint_dir root
  in
  { pairs; coverage; dependence; lint_files; lint }

let ok t =
  t.pairs.Commute.a_failures = []
  && t.coverage.Commute.a_failures = []
  && (match t.dependence with None -> true | Some a -> a.Commute.a_failures = [])
  && Lint.active t.lint = []

let pp fmt t =
  let audit_line name (a : Commute.audit) =
    Format.fprintf fmt "%-22s %8d checked %3d failures@ " name a.Commute.a_checked
      (List.length a.Commute.a_failures);
    List.iter (fun f -> Format.fprintf fmt "  %a@ " Commute.pp_failure f) a.Commute.a_failures
  in
  Format.fprintf fmt "@[<v>";
  audit_line "pairwise commutation" t.pairs;
  audit_line "footprint coverage" t.coverage;
  (match t.dependence with
  | Some a -> audit_line "dpor dependence" a
  | None -> Format.fprintf fmt "%-22s %8s skipped@ " "dpor dependence" "");
  Format.fprintf fmt "%-22s %8d files   %3d findings (%d waived)@ " "source lint" t.lint_files
    (List.length t.lint)
    (List.length t.lint - List.length (Lint.active t.lint));
  List.iter (fun f -> Format.fprintf fmt "  %a@ " Lint.pp_finding f) t.lint;
  Format.fprintf fmt "verdict: %s@]" (if ok t then "ok" else "FAILED")

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let audit_json (a : Commute.audit) =
  Printf.sprintf "{\"checked\":%d,\"failures\":[%s]}" a.Commute.a_checked
    (String.concat ","
       (List.map
          (fun (f : Commute.failure) ->
            Printf.sprintf "{\"check\":\"%s\",\"detail\":\"%s\"}" (json_escape f.Commute.f_check)
              (json_escape f.Commute.f_detail))
          a.Commute.a_failures))

let finding_json (f : Lint.finding) =
  Printf.sprintf "{\"file\":\"%s\",\"line\":%d,\"rule\":\"%s\",\"message\":\"%s\",\"waived\":%b}"
    (json_escape f.Lint.l_file) f.Lint.l_line (json_escape f.Lint.l_rule)
    (json_escape f.Lint.l_message) f.Lint.l_waived

let to_json t =
  Printf.sprintf
    "{\"ok\":%b,\"footprint\":{\"pairs\":%s,\"coverage\":%s,\"dependence\":%s},\"lint\":{\"files\":%d,\"active\":%d,\"waived\":%d,\"findings\":[%s]}}"
    (ok t) (audit_json t.pairs) (audit_json t.coverage)
    (match t.dependence with None -> "null" | Some a -> audit_json a)
    t.lint_files
    (List.length (Lint.active t.lint))
    (List.length t.lint - List.length (Lint.active t.lint))
    (String.concat "," (List.map finding_json t.lint))
