(** The static footprint table behind the model checker's sleep-set
    pruning.

    Two operations are declared *independent* when executing them in
    either order provably yields the same memory state and the same two
    responses — the property sleep sets rely on to prune one of the two
    orders.  This module is the single source of truth for that
    relation; {!Renaming_mcheck} consumes it, and {!Commute} audits it
    against the concrete behaviour of [Memory.apply] (both by replaying
    the model-checking roster under an access logger and by executing
    every representative operation pair in both orders). *)

type region = Names | Aux | Words

type cell = {
  region : region;
  idx : int;
  reads : bool;  (** the operation may read the cell *)
  writes : bool;  (** the operation may write the cell *)
  pid_sensitive : bool;
      (** result or effect depends on the calling pid (ownership tests,
          TAS wins that record the winner) *)
}

type t =
  | Silent  (** touches no shared state ([Yield]) *)
  | Cell of cell  (** touches exactly one cell *)
  | Opaque
      (** position-sensitive, conservatively dependent on everything —
          the τ-register device operations, whose answers depend on the
          device clock phase *)

val of_op : Renaming_sched.Op.t -> t
(** The shipped table.  Exhaustive match: a new [Op.t] constructor is a
    compile error here, not a silent mispruning. *)

val independent_under : table:(Renaming_sched.Op.t -> t) -> Renaming_sched.Op.t -> Renaming_sched.Op.t -> bool
(** The independence relation induced by an arbitrary table — the
    commutation oracle audits candidate tables through this. *)

val independent : Renaming_sched.Op.t -> Renaming_sched.Op.t -> bool
(** [independent_under ~table:of_op]: different regions, different
    indices of the same region, or two non-writing operations on the
    same cell; [Silent] commutes with everything, [Opaque] with
    nothing. *)

val covers : t -> Renaming_sched.Memory.access -> bool
(** Does this static claim admit the given concrete access?  A [Cell]
    claim covers accesses to exactly its cell, with reads/writes and
    pid-sensitivity no stronger than declared; [Silent] covers nothing;
    [Opaque] covers everything. *)

val pp : Format.formatter -> t -> unit
