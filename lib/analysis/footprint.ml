module Op = Renaming_sched.Op
module Memory = Renaming_sched.Memory

type region = Names | Aux | Words

type cell = {
  region : region;
  idx : int;
  reads : bool;
  writes : bool;
  pid_sensitive : bool;
}

type t = Silent | Cell of cell | Opaque

(* The static footprint table the model checker's sleep-set pruning is
   built on.  The match is exhaustive on purpose: adding an operation
   constructor breaks this build rather than silently mispruning, and
   the commutation oracle ([Commute]) cross-checks every entry against
   what [Memory.apply] concretely does. *)
let of_op (op : Op.t) : t =
  match op with
  | Tas_name i -> Cell { region = Names; idx = i; reads = true; writes = true; pid_sensitive = true }
  | Tas_aux i -> Cell { region = Aux; idx = i; reads = true; writes = true; pid_sensitive = true }
  | Read_name i ->
    Cell { region = Names; idx = i; reads = true; writes = false; pid_sensitive = false }
  | Read_aux i -> Cell { region = Aux; idx = i; reads = true; writes = false; pid_sensitive = false }
  | Owned_name i ->
    Cell { region = Names; idx = i; reads = true; writes = false; pid_sensitive = true }
  | Release_name i ->
    Cell { region = Names; idx = i; reads = true; writes = true; pid_sensitive = true }
  | Read_word i ->
    Cell { region = Words; idx = i; reads = true; writes = false; pid_sensitive = false }
  | Write_word { idx; _ } ->
    Cell { region = Words; idx; reads = false; writes = true; pid_sensitive = false }
  | Yield -> Silent
  | Tau_submit _ | Tau_poll _ -> Opaque

let independent_under ~table a b =
  match (table a, table b) with
  | Opaque, _ | _, Opaque -> false
  | Silent, _ | _, Silent -> true
  | Cell fa, Cell fb ->
    fa.region <> fb.region || fa.idx <> fb.idx || ((not fa.writes) && not fb.writes)

let independent a b = independent_under ~table:of_op a b

let region_of_memory (r : Memory.region) =
  match r with
  | Memory.Names -> Some Names
  | Memory.Aux -> Some Aux
  | Memory.Words -> Some Words
  | Memory.Device -> None

let covers t (a : Memory.access) =
  match t with
  | Opaque -> true (* declared dependent on everything: maximally conservative *)
  | Silent -> false
  | Cell c -> (
    match region_of_memory a.Memory.acc_region with
    | None -> false (* a device access needs an Opaque declaration *)
    | Some region ->
      region = c.region && a.Memory.acc_idx = c.idx
      && (if a.Memory.acc_write then c.writes else c.reads)
      && ((not a.Memory.acc_pid_sensitive) || c.pid_sensitive))

let region_name = function Names -> "names" | Aux -> "aux" | Words -> "words"

let pp fmt = function
  | Silent -> Format.fprintf fmt "silent"
  | Opaque -> Format.fprintf fmt "opaque"
  | Cell c ->
    Format.fprintf fmt "%s[%d]{%s%s%s}" (region_name c.region) c.idx
      (if c.reads then "r" else "")
      (if c.writes then "w" else "")
      (if c.pid_sensitive then ",pid" else "")
