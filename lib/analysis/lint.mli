(** Source-level concurrency lint for the library tree.

    Parses each [.ml] file with the toolchain's own compiler-libs
    parser and flags patterns that undermine determinism or confine-
    ment of shared state (docs/static_analysis.md has the catalogue):

    - [global-mutable]: module-level bindings that allocate mutable
      state at load time ([ref ...], [Atomic.make ...],
      [Hashtbl.create ...], [Array.make ...], ...);
    - [atomic-outside-shm]: any [Atomic.*] use outside the whitelisted
      directories (default: [lib/concurrent], [lib/shm]);
    - [obj-magic]: any [Obj.*] use;
    - [nondeterministic-rng]: any [Random.*] use (hidden global state;
      [Random.self_init] additionally seeds from the wall clock);
    - [wall-clock]: [Unix.gettimeofday], [Unix.time], [Sys.time], ...;
    - [unstable-hash]: [Hashtbl.hash] and friends, whose output may
      change between OCaml releases;
    - [stdout-print]: direct channel printing ([Printf.printf],
      [Printf.eprintf], [Format.printf], [print_endline], [prerr_*],
      ...) outside the print-whitelisted directories (default:
      [lib/obs], whose exporters render output for the [bin/] edge) —
      library code returns data instead of writing to channels.

    A finding is waived with an inline comment on the same line or the
    line above: [(* lint: allow wall-clock — benchmarking *)]; waived
    findings stay in the report but do not fail the run. *)

type finding = {
  l_file : string;
  l_line : int;
  l_rule : string;
  l_message : string;
  l_waived : bool;
}

val rules : (string * string) list
(** Rule id, one-line description. *)

val default_whitelist : string list
(** Directory basenames exempt from the shared-mutable-state rules:
    [["concurrent"; "shm"]]. *)

val default_print_whitelist : string list
(** Directory basenames exempt from [stdout-print]: [["obs"]]. *)

val lint_file :
  ?whitelist:string list -> ?print_whitelist:string list -> string -> finding list

val lint_dir :
  ?whitelist:string list -> ?print_whitelist:string list -> string -> int * finding list
(** Walk [root] recursively (skipping [_build] and dotted directories)
    and lint every [.ml] file; returns (files linted, findings). *)

val active : finding list -> finding list
(** The findings that are not waived — the ones that fail the run. *)

val pp_finding : Format.formatter -> finding -> unit
