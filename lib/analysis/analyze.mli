(** One-shot driver for the whole static-analysis layer: the pairwise
    commutation audit, the dynamic footprint-coverage audit over a
    roster of instances, the DPOR dependence-relation audit, and the
    source lint — aggregated into the [results/analyze.json] payload of
    [renaming analyze]. *)

type t = {
  pairs : Commute.audit;
  coverage : Commute.audit;
  dependence : Commute.audit option;
      (** {!Commute.audit_dependence} of the model checker's race
          relation; [None] when no [dependent] predicate was supplied *)
  lint_files : int;
  lint : Lint.finding list;
}

val run :
  ?table:(Renaming_sched.Op.t -> Footprint.t) ->
  ?dependent:(Renaming_sched.Op.t -> Renaming_sched.Op.t -> bool) ->
  ?lint_root:string option ->
  roster:(string * (unit -> Renaming_sched.Executor.instance)) list ->
  unit ->
  t
(** [table] defaults to the shipped {!Footprint.of_op}; [dependent] is
    the model checker's race relation (callers above lib/mcheck pass
    [Renaming_mcheck.Races.dependent]; omitting it skips that leg);
    [lint_root] defaults to [Some "lib"] ([None] skips the lint leg). *)

val ok : t -> bool
(** No audit failures and no unwaived lint findings. *)

val pp : Format.formatter -> t -> unit

val to_json : t -> string
