(* Source-level concurrency lint over the library tree, built on
   compiler-libs (the parser and Ast_iterator of the toolchain that
   compiles this very code, so there is no AST-version skew). *)

type finding = {
  l_file : string;
  l_line : int;
  l_rule : string;
  l_message : string;
  l_waived : bool;
}

let rules =
  [
    ( "global-mutable",
      "module-level mutable state (ref / Atomic.make / Hashtbl.create / Array.make ...) is \
       cross-process shared state; confine it to lib/concurrent or lib/shm" );
    ("atomic-outside-shm", "Atomic.* outside the whitelisted lib/concurrent / lib/shm modules");
    ("obj-magic", "Obj.* defeats the type system");
    ( "nondeterministic-rng",
      "Random.* uses hidden global state (and Random.self_init wall-clock entropy); use \
       Renaming_rng streams" );
    ("wall-clock", "wall-clock reads (Unix.gettimeofday / Sys.time ...) in library code");
    ( "blocking-sleep",
      "Unix.sleep/Unix.sleepf blocks the whole domain and stalls every process the scheduler \
       multiplexes onto it; poll cooperatively or drive timing through the executor" );
    ( "unstable-hash",
      "Hashtbl.hash is not stable across OCaml versions; derive keys with a pinned hash" );
    ( "stdout-print",
      "direct stdout/stderr printing (Printf.printf / print_endline / Format.printf ...) in \
       library code; return data or emit through the Renaming_obs exporters" );
    ("parse-error", "file does not parse");
  ]

(* --- waivers ---

   A finding is waived by an inline comment on the same line or the
   line above it:

     let t0 = Unix.gettimeofday () in  (* lint: allow wall-clock — benchmarking *)

   `lint: allow all` waives every rule on that line. *)

let waiver_mentions ~rule line =
  match String.index_opt line 'l' with
  | None -> false
  | Some _ -> (
    let needle = "lint: allow " in
    let nlen = String.length needle in
    let len = String.length line in
    let rec find i =
      if i + nlen > len then None
      else if String.sub line i nlen = needle then Some (i + nlen)
      else find (i + 1)
    in
    match find 0 with
    | None -> false
    | Some start ->
      let rest = String.sub line start (len - start) in
      let is_word_char c =
        (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '-' || c = ','
      in
      let stop = ref 0 in
      while !stop < String.length rest && (is_word_char rest.[!stop] || rest.[!stop] = ' ') do
        incr stop
      done;
      let listed = String.sub rest 0 !stop in
      let items =
        List.concat_map (String.split_on_char ',') (String.split_on_char ' ' listed)
        |> List.filter (fun s -> s <> "")
      in
      List.mem rule items || List.mem "all" items)

let is_waived ~lines ~rule ~line =
  let mentions n = n >= 1 && n <= Array.length lines && waiver_mentions ~rule lines.(n - 1) in
  mentions line || mentions (line - 1)

(* --- identifier classification --- *)

let rec path_of (lid : Longident.t) =
  match lid with
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (l, s) -> path_of l @ [ s ]
  | Longident.Lapply _ -> []

let normalize = function "Stdlib" :: rest -> rest | path -> path

let ident_rule ~whitelisted ~print_whitelisted lid =
  match normalize (path_of lid) with
  | "Obj" :: _ -> Some ("obj-magic", "use of Obj")
  | "Random" :: _ -> Some ("nondeterministic-rng", "use of Random")
  | [ "Unix"; ("gettimeofday" | "time" | "localtime" | "gmtime" | "mktime") ] | [ "Sys"; "time" ]
    ->
    Some ("wall-clock", "wall-clock read")
  | [ "Unix"; ("sleep" | "sleepf") ] -> Some ("blocking-sleep", "blocking sleep")
  | [ "Hashtbl"; ("hash" | "seeded_hash" | "hash_param") ] ->
    Some ("unstable-hash", "version-unstable Hashtbl.hash")
  | "Atomic" :: _ when not whitelisted -> Some ("atomic-outside-shm", "use of Atomic")
  | ( [ ("Printf" | "Format"); ("printf" | "eprintf") ]
    | [ "Format"; ("print_string" | "print_newline") ]
    | [
        ( "print_endline" | "print_string" | "print_newline" | "print_char" | "print_int"
        | "print_float" | "prerr_endline" | "prerr_string" | "prerr_newline" );
      ] )
    when not print_whitelisted ->
    Some ("stdout-print", "direct stdout/stderr print in library code")
  | _ -> None

(* Does a module-level binding's right-hand side immediately allocate
   mutable state?  Chase let/sequence/constraint wrappers to the head
   application; a [fun] head means the binding is a function and the
   allocation happens per call, which is fine. *)
let rec allocates_mutable (e : Parsetree.expression) =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_let (_, _, body) | Parsetree.Pexp_sequence (_, body) -> allocates_mutable body
  | Parsetree.Pexp_constraint (e, _) | Parsetree.Pexp_open (_, e) -> allocates_mutable e
  | Parsetree.Pexp_apply (f, _) -> (
    match f.Parsetree.pexp_desc with
    | Parsetree.Pexp_ident { txt; _ } -> (
      match normalize (path_of txt) with
      | [ "ref" ]
      | [ "Atomic"; "make" ]
      | [ ("Hashtbl" | "Queue" | "Stack" | "Buffer"); "create" ]
      | [ "Array"; ("make" | "create_float" | "make_matrix") ]
      | [ "Bytes"; ("make" | "create") ] ->
        true
      | _ -> false)
    | _ -> false)
  | _ -> false

(* --- the walk --- *)

let lint_source ~whitelisted ~print_whitelisted ~path contents =
  let findings = ref [] in
  let lines = Array.of_list (String.split_on_char '\n' contents) in
  let add ~(loc : Location.t) rule message =
    let line = loc.Location.loc_start.Lexing.pos_lnum in
    findings :=
      {
        l_file = path;
        l_line = line;
        l_rule = rule;
        l_message = message;
        l_waived = is_waived ~lines ~rule ~line;
      }
      :: !findings
  in
  match
    let lexbuf = Lexing.from_string contents in
    Lexing.set_filename lexbuf path;
    Parse.implementation lexbuf
  with
  | exception _ ->
    [ { l_file = path; l_line = 1; l_rule = "parse-error"; l_message = "unparseable"; l_waived = false } ]
  | structure ->
    let expr_iter (it : Ast_iterator.iterator) (e : Parsetree.expression) =
      (match e.Parsetree.pexp_desc with
      | Parsetree.Pexp_ident { txt; loc } -> (
        match ident_rule ~whitelisted ~print_whitelisted txt with
        | Some (rule, message) -> add ~loc rule message
        | None -> ())
      | _ -> ());
      Ast_iterator.default_iterator.Ast_iterator.expr it e
    in
    (* Module-level bindings only: a ref inside a function body is
       per-call state, not shared state. *)
    let structure_item_iter (it : Ast_iterator.iterator) (si : Parsetree.structure_item) =
      (match si.Parsetree.pstr_desc with
      | Parsetree.Pstr_value (_, bindings) ->
        List.iter
          (fun (vb : Parsetree.value_binding) ->
            if allocates_mutable vb.Parsetree.pvb_expr then
              add ~loc:vb.Parsetree.pvb_loc "global-mutable"
                "module-level mutable state allocated at load time")
          bindings
      | _ -> ());
      Ast_iterator.default_iterator.Ast_iterator.structure_item it si
    in
    let iterator =
      { Ast_iterator.default_iterator with Ast_iterator.expr = expr_iter; structure_item = structure_item_iter }
    in
    iterator.Ast_iterator.structure iterator structure;
    List.rev !findings

(* --- filesystem walk --- *)

let default_whitelist = [ "concurrent"; "shm" ]

(* Directories whose job is rendering output for the bin/ edge: the obs
   exporters may talk to channels, everything else returns data. *)
let default_print_whitelist = [ "obs" ]

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let lint_file ?(whitelist = default_whitelist) ?(print_whitelist = default_print_whitelist) path
    =
  let dir = Filename.basename (Filename.dirname path) in
  let whitelisted = List.mem dir whitelist in
  let print_whitelisted = List.mem dir print_whitelist in
  lint_source ~whitelisted ~print_whitelisted ~path (read_file path)

let rec ml_files dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | entries ->
    Array.sort compare entries;
    Array.fold_left
      (fun acc entry ->
        let path = Filename.concat dir entry in
        if Sys.is_directory path then
          if entry = "_build" || String.length entry > 0 && entry.[0] = '.' then acc
          else acc @ ml_files path
        else if Filename.check_suffix entry ".ml" then acc @ [ path ]
        else acc)
      [] entries

let lint_dir ?whitelist ?print_whitelist root =
  let files = ml_files root in
  (List.length files, List.concat_map (lint_file ?whitelist ?print_whitelist) files)

let active findings = List.filter (fun f -> not f.l_waived) findings

let pp_finding fmt f =
  Format.fprintf fmt "%s:%d: [%s] %s%s" f.l_file f.l_line f.l_rule f.l_message
    (if f.l_waived then " (waived)" else "")
