(* Tests for the telemetry capability: histogram merge laws, the
   bounded event ring, the JSON emitter/parser pair, exporter
   round-trips and determinism, and the guarantee that threading the
   capability through a run does not change the run itself. *)

module Json = Renaming_obs.Json
module Hist = Renaming_obs.Hist
module Ring = Renaming_obs.Ring
module Metrics = Renaming_obs.Metrics
module Obs = Renaming_obs.Obs
module Export = Renaming_obs.Export
module Tight = Renaming_core.Tight
module Geometric = Renaming_core.Loose_geometric
module Params = Renaming_core.Params
module Report = Renaming_sched.Report

let check = Alcotest.check

(* --- Json: emitter and validating parser --- *)

let roundtrip v = Json.of_string (Json.to_string v)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("null", Json.Null);
        ("bool", Json.Bool true);
        ("int", Json.Int (-42));
        ("float", Json.Float 1.5);
        ("str", Json.String "a \"quoted\"\nline\twith \\ specials");
        ("list", Json.List [ Json.Int 1; Json.String "x"; Json.Obj [] ]);
      ]
  in
  match roundtrip v with
  | Ok v' -> check Alcotest.bool "round-trips" true (v = v')
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_json_nonfinite_is_null () =
  check Alcotest.string "nan renders null" "null" (Json.to_string (Json.Float nan));
  check Alcotest.string "inf renders null" "null" (Json.to_string (Json.Float infinity))

let test_json_rejects_garbage () =
  List.iter
    (fun s ->
      match Json.of_string s with
      | Ok _ -> Alcotest.failf "accepted garbage: %s" s
      | Error _ -> ())
    [ "{"; "[1,"; "truex"; "\"unterminated"; "{\"a\" 1}"; "[1] trailing"; "" ]

(* --- Hist: fixed buckets and merge laws --- *)

let hist_of values =
  let h = Hist.create () in
  List.iter (fun v -> Hist.observe h v) values;
  h

let value_gen = QCheck.(list_of_size (Gen.int_range 0 60) (int_range 0 3_000_000))

let qcheck_merge_commutative =
  QCheck.Test.make ~count:200 ~name:"hist merge commutes" (QCheck.pair value_gen value_gen)
    (fun (a, b) -> Hist.equal (Hist.merge (hist_of a) (hist_of b)) (Hist.merge (hist_of b) (hist_of a)))

let qcheck_merge_associative =
  QCheck.Test.make ~count:200 ~name:"hist merge associates"
    (QCheck.triple value_gen value_gen value_gen) (fun (a, b, c) ->
      Hist.equal
        (Hist.merge (hist_of a) (Hist.merge (hist_of b) (hist_of c)))
        (Hist.merge (Hist.merge (hist_of a) (hist_of b)) (hist_of c)))

let qcheck_merge_conserves =
  QCheck.Test.make ~count:200 ~name:"hist merge conserves count and sum"
    (QCheck.pair value_gen value_gen) (fun (a, b) ->
      let m = Hist.merge (hist_of a) (hist_of b) in
      Hist.count m = List.length a + List.length b
      && Hist.sum m = List.fold_left ( + ) 0 a + List.fold_left ( + ) 0 b)

let test_hist_bucket_placement () =
  let h = Hist.create ~bounds:[| 1; 2; 4 |] () in
  List.iter (Hist.observe h) [ 0; 1; 2; 3; 4; 5; 100 ];
  (* buckets: <=1, <=2, <=4, overflow *)
  check (Alcotest.array Alcotest.int) "bucket counts" [| 2; 1; 2; 2 |] (Hist.counts h);
  check Alcotest.int "max" 100 (Hist.max_value h);
  check Alcotest.int "count" 7 (Hist.count h)

let test_hist_merge_rejects_mismatched_bounds () =
  let a = Hist.create ~bounds:[| 1; 2 |] () in
  let b = Hist.create ~bounds:[| 1; 3 |] () in
  Alcotest.check_raises "bounds must match" (Invalid_argument "Hist.merge: bucket bounds differ")
    (fun () -> ignore (Hist.merge a b))

(* --- Ring: bounded, drop-oldest --- *)

let mk_event i =
  { Ring.ev_ts = i; ev_pid = i mod 4; ev_kind = Ring.Instant; ev_name = "e"; ev_args = [] }

let test_ring_drops_oldest () =
  let r = Ring.create ~capacity:4 () in
  for i = 1 to 10 do
    Ring.add r (mk_event i)
  done;
  check Alcotest.int "length capped" 4 (Ring.length r);
  check Alcotest.int "drops counted" 6 (Ring.dropped r);
  check (Alcotest.list Alcotest.int) "most recent window, oldest first" [ 7; 8; 9; 10 ]
    (List.map (fun e -> e.Ring.ev_ts) (Ring.to_list r))

(* --- Metrics: registry snapshot --- *)

let test_metrics_snapshot_sorted_and_typed () =
  let m = Metrics.create () in
  let c = Metrics.counter m "z/count" in
  Metrics.add c 3;
  Hist.observe (Metrics.histogram m "a/steps") 7;
  Metrics.gauge m "m/load" (fun () -> 0.5);
  check (Alcotest.list Alcotest.string) "sorted names" [ "a/steps"; "m/load"; "z/count" ]
    (List.map fst (Metrics.snapshot m));
  check (Alcotest.option Alcotest.int) "counter readback" (Some 3) (Metrics.find_counter m "z/count");
  check Alcotest.bool "histogram readback" true
    (match Metrics.find_histogram m "a/steps" with Some h -> Hist.count h = 1 | None -> false)

let test_metrics_kind_clash_rejected () =
  let m = Metrics.create () in
  ignore (Metrics.counter m "x");
  (match Metrics.histogram m "x" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "histogram under a counter name must be rejected")

(* --- Export: JSONL round-trip and Chrome trace --- *)

let sample_events =
  [
    { Ring.ev_ts = 0; ev_pid = 0; ev_kind = Ring.Span_begin; ev_name = "round"; ev_args = [ ("round", 1) ] };
    { Ring.ev_ts = 3; ev_pid = 1; ev_kind = Ring.Instant; ev_name = "probe"; ev_args = [ ("target", 9) ] };
    { Ring.ev_ts = 5; ev_pid = 0; ev_kind = Ring.Span_end; ev_name = "round"; ev_args = [] };
  ]

let test_jsonl_roundtrip () =
  match Export.events_of_jsonl (Export.jsonl sample_events) with
  | Ok events -> check Alcotest.bool "events survive" true (events = sample_events)
  | Error e -> Alcotest.failf "jsonl parse failed: %s" e

let trace_of_seeded_run () =
  let obs = Obs.create () in
  let cfg = { Geometric.n = 32; ell = 2 } in
  let instr = Geometric.create_instrumentation ~obs cfg in
  ignore (Geometric.run ~instr ~obs cfg ~seed:42L);
  Export.chrome_trace ~process_name:"test" (Obs.events obs)

let test_chrome_trace_deterministic_and_covering () =
  let t1 = trace_of_seeded_run () and t2 = trace_of_seeded_run () in
  check Alcotest.bool "byte-identical across runs" true (String.equal t1 t2);
  match Json.of_string t1 with
  | Error e -> Alcotest.failf "trace is not valid JSON: %s" e
  | Ok doc -> (
      match Option.bind (Json.member "traceEvents" doc) Json.to_items with
      | None -> Alcotest.fail "missing traceEvents array"
      | Some items ->
          let covered = Hashtbl.create 32 in
          List.iter
            (fun item ->
              match
                ( Option.bind (Json.member "ph" item) Json.to_str,
                  Option.bind (Json.member "tid" item) Json.to_int )
              with
              | Some "M", _ | _, None -> ()
              | Some _, Some tid -> Hashtbl.replace covered tid ()
              | None, _ -> Alcotest.fail "trace event without ph")
            items;
          check Alcotest.int "every pid has a track with events" 32 (Hashtbl.length covered))

(* --- the capability must not change the run it observes --- *)

let test_obs_does_not_change_the_run () =
  let params = Params.make ~policy:Params.Mass_conserving ~n:64 () in
  let plain = Tight.run ~params ~seed:11L () in
  let obs = Obs.create () in
  let instr = Tight.create_instrumentation ~obs params in
  let observed = Tight.run ~instr ~obs ~params ~seed:11L () in
  check Alcotest.int "same ticks" plain.Report.ticks observed.Report.ticks;
  check Alcotest.int "same max steps" (Report.max_steps plain) (Report.max_steps observed);
  check Alcotest.bool "same assignment" true
    (plain.Report.assignment.Renaming_shm.Assignment.names
    = observed.Report.assignment.Renaming_shm.Assignment.names);
  check Alcotest.bool "and the observed run actually recorded" true
    (Obs.events obs <> [] && Metrics.find_counter (Obs.metrics obs) "tight/wins" <> None)

let tests =
  [
    ( "obs.json",
      [
        Alcotest.test_case "emit/parse round-trip" `Quick test_json_roundtrip;
        Alcotest.test_case "non-finite floats render null" `Quick test_json_nonfinite_is_null;
        Alcotest.test_case "parser rejects garbage" `Quick test_json_rejects_garbage;
      ] );
    ( "obs.hist",
      [
        QCheck_alcotest.to_alcotest qcheck_merge_commutative;
        QCheck_alcotest.to_alcotest qcheck_merge_associative;
        QCheck_alcotest.to_alcotest qcheck_merge_conserves;
        Alcotest.test_case "bucket placement" `Quick test_hist_bucket_placement;
        Alcotest.test_case "merge rejects mismatched bounds" `Quick
          test_hist_merge_rejects_mismatched_bounds;
      ] );
    ( "obs.ring",
      [ Alcotest.test_case "bounded, drop-oldest" `Quick test_ring_drops_oldest ] );
    ( "obs.metrics",
      [
        Alcotest.test_case "snapshot sorted and typed" `Quick test_metrics_snapshot_sorted_and_typed;
        Alcotest.test_case "kind clash rejected" `Quick test_metrics_kind_clash_rejected;
      ] );
    ( "obs.export",
      [
        Alcotest.test_case "jsonl round-trip" `Quick test_jsonl_roundtrip;
        Alcotest.test_case "chrome trace deterministic, one track per pid" `Quick
          test_chrome_trace_deterministic_and_covering;
      ] );
    ( "obs.capability",
      [ Alcotest.test_case "observing does not change the run" `Quick test_obs_does_not_change_the_run ] );
  ]
