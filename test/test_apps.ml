(* Tests for the counting-device applications: token dispenser, barrier,
   leader election. *)

module Dispenser = Renaming_apps.Token_dispenser
module Barrier = Renaming_apps.Barrier
module Leader = Renaming_apps.Leader
module Xoshiro = Renaming_rng.Xoshiro

let check = Alcotest.check

let test_dispenser_exact_capacity () =
  let rng = Xoshiro.create 1L in
  List.iter
    (fun capacity ->
      let d = Dispenser.create ~capacity () in
      let granted = ref 0 in
      (* Far more acquisition attempts than capacity. *)
      for pid = 0 to (3 * capacity) - 1 do
        match Dispenser.try_acquire d ~pid ~rng with
        | Some _ -> incr granted
        | None -> ()
      done;
      check Alcotest.int (Printf.sprintf "capacity %d granted exactly" capacity) capacity !granted;
      check Alcotest.bool "exhausted" true (Dispenser.is_exhausted d);
      check Alcotest.int "remaining 0" 0 (Dispenser.remaining d);
      match Dispenser.check_invariants d with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)
    [ 1; 3; 16; 17; 100 ]

let test_dispenser_tokens_distinct () =
  let rng = Xoshiro.create 2L in
  let d = Dispenser.create ~capacity:50 () in
  let tokens = Hashtbl.create 64 in
  for pid = 0 to 49 do
    match Dispenser.try_acquire d ~pid ~rng with
    | Some g ->
      check Alcotest.bool "token fresh" false (Hashtbl.mem tokens g.Dispenser.token);
      Hashtbl.add tokens g.Dispenser.token ()
    | None -> Alcotest.fail "dispenser ran dry early"
  done;
  check Alcotest.int "50 distinct tokens" 50 (Hashtbl.length tokens)

let test_dispenser_device_count () =
  let d = Dispenser.create ~tau:16 ~capacity:100 () in
  check Alcotest.int "ceil(100/16) devices" 7 (Dispenser.device_count d)

let test_dispenser_small_tau () =
  let rng = Xoshiro.create 3L in
  let d = Dispenser.create ~tau:1 ~capacity:5 () in
  let granted = ref 0 in
  for pid = 0 to 9 do
    if Dispenser.try_acquire d ~pid ~rng <> None then incr granted
  done;
  check Alcotest.int "5 tokens via tau=1 devices" 5 !granted

let test_dispenser_validation () =
  Alcotest.check_raises "capacity 0"
    (Invalid_argument "Token_dispenser.create: capacity must be >= 1") (fun () ->
      ignore (Dispenser.create ~capacity:0 ()));
  Alcotest.check_raises "tau too big"
    (Invalid_argument "Token_dispenser.create: tau must be in [1, 31]") (fun () ->
      ignore (Dispenser.create ~tau:32 ~capacity:10 ()))

let test_dispenser_ledger_consistent () =
  (* The deterministic grant ledger must agree with the device state at
     every point of the dispenser's lifetime, not just at the end. *)
  let rng = Xoshiro.create 12L in
  let d = Dispenser.create ~capacity:40 () in
  let grants = ref 0 in
  for pid = 0 to 119 do
    (match Dispenser.try_acquire d ~pid ~rng with
    | Some _ -> incr grants
    | None -> ());
    match Dispenser.check_invariants d with
    | Ok () -> check Alcotest.int "ledger = granted" !grants (Dispenser.granted d)
    | Error e -> Alcotest.fail e
  done;
  check Alcotest.int "exhausted at capacity" 40 !grants

let test_barrier_releases_exactly_at_parties () =
  let rng = Xoshiro.create 4L in
  let b = Barrier.create ~parties:10 () in
  for pid = 0 to 8 do
    check Alcotest.bool "admitted" true (Barrier.arrive b ~pid ~rng);
    check Alcotest.bool "not yet released" false (Barrier.is_released b)
  done;
  check Alcotest.bool "10th admitted" true (Barrier.arrive b ~pid:9 ~rng);
  check Alcotest.bool "released" true (Barrier.is_released b);
  (* Spurious extra arrivals bounce off. *)
  check Alcotest.bool "11th rejected" false (Barrier.arrive b ~pid:10 ~rng);
  check Alcotest.int "count stays" 10 (Barrier.arrived b)

let test_leader_unique () =
  let l = Leader.create () in
  check Alcotest.(option int) "no leader yet" None (Leader.leader l);
  let winners = ref 0 in
  for pid = 0 to 9 do
    if Leader.compete l ~pid then incr winners
  done;
  check Alcotest.int "exactly one leader" 1 !winners;
  check Alcotest.bool "leader recorded" true (Leader.leader l <> None)

let test_leader_first_wins () =
  let l = Leader.create () in
  check Alcotest.bool "first competitor wins" true (Leader.compete l ~pid:7);
  check Alcotest.(option int) "leader is 7" (Some 7) (Leader.leader l);
  check Alcotest.bool "second loses" false (Leader.compete l ~pid:8)

let qcheck_dispenser_never_overshoots =
  QCheck.Test.make ~count:60 ~name:"dispenser never grants more than capacity"
    QCheck.(triple small_int (int_range 1 60) (int_range 1 31))
    (fun (seed, capacity, tau) ->
      let rng = Xoshiro.create (Int64.of_int seed) in
      let d = Dispenser.create ~tau ~capacity () in
      let granted = ref 0 in
      for pid = 0 to (2 * capacity) + 5 do
        if Dispenser.try_acquire d ~pid ~rng <> None then incr granted
      done;
      !granted = capacity && Dispenser.check_invariants d = Ok ())

let tests =
  [
    ( "apps",
      [
        Alcotest.test_case "dispenser exact capacity" `Quick test_dispenser_exact_capacity;
        Alcotest.test_case "dispenser distinct tokens" `Quick test_dispenser_tokens_distinct;
        Alcotest.test_case "dispenser device count" `Quick test_dispenser_device_count;
        Alcotest.test_case "dispenser tau=1" `Quick test_dispenser_small_tau;
        Alcotest.test_case "dispenser validation" `Quick test_dispenser_validation;
        Alcotest.test_case "dispenser ledger consistent" `Quick test_dispenser_ledger_consistent;
        Alcotest.test_case "barrier release" `Quick test_barrier_releases_exactly_at_parties;
        Alcotest.test_case "leader unique" `Quick test_leader_unique;
        Alcotest.test_case "leader first wins" `Quick test_leader_first_wins;
        QCheck_alcotest.to_alcotest qcheck_dispenser_never_overshoots;
      ] );
  ]
