(* Tests for schedule trace recording and replay. *)

module Trace = Renaming_sched.Trace
module Program = Renaming_sched.Program
module Memory = Renaming_sched.Memory
module Executor = Renaming_sched.Executor
module Adversary = Renaming_sched.Adversary
module Report = Renaming_sched.Report
module Stream = Renaming_rng.Stream
module Geometric = Renaming_core.Loose_geometric

let check = Alcotest.check

let scan_competition ~n =
  let memory = Memory.create ~namespace:n () in
  let programs = Array.init n (fun _ -> Program.scan_names ~first:0 ~count:n) in
  { Executor.memory; programs; label = "competition" }

let test_record_counts_events () =
  let trace = Trace.create () in
  let adversary = Trace.recording trace ~base:(Adversary.round_robin ()) in
  let report = Executor.run ~adversary (scan_competition ~n:8) in
  check Alcotest.int "one event per tick" report.Report.ticks (Trace.length trace)

let test_replay_reproduces_run () =
  (* Record a run under a random adversary, then replay: the reports
     must match field by field. *)
  let trace = Trace.create () in
  let rng = Stream.fork_named (Stream.create 11L) ~name:"adv" in
  let adversary = Trace.recording trace ~base:(Adversary.uniform rng) in
  let original = Executor.run ~adversary (scan_competition ~n:12) in
  let replayed = Executor.run ~adversary:(Trace.replaying trace) (scan_competition ~n:12) in
  check Alcotest.int "same ticks" original.Report.ticks replayed.Report.ticks;
  check
    Alcotest.(array (option int))
    "same assignment" original.Report.assignment.Renaming_shm.Assignment.names
    replayed.Report.assignment.Renaming_shm.Assignment.names;
  check Alcotest.int "same max steps" (Report.max_steps original) (Report.max_steps replayed)

let test_replay_reproduces_randomized_algorithm () =
  (* Same but with a randomized algorithm: seeds pin the coin flips, the
     trace pins the schedule. *)
  let cfg = { Geometric.n = 256; ell = 2 } in
  let trace = Trace.create () in
  let rng = Stream.fork_named (Stream.create 13L) ~name:"adv" in
  let build () = Geometric.instance cfg ~stream:(Stream.create 77L) in
  let original =
    Executor.run ~adversary:(Trace.recording trace ~base:(Adversary.uniform rng)) (build ())
  in
  let replayed = Executor.run ~adversary:(Trace.replaying trace) (build ()) in
  check
    Alcotest.(array (option int))
    "identical assignment" original.Report.assignment.Renaming_shm.Assignment.names
    replayed.Report.assignment.Renaming_shm.Assignment.names

let test_replay_with_crashes () =
  let base =
    Adversary.with_crashes ~base:(Adversary.round_robin ()) ~crash_times:[ (3, 1); (5, 4) ]
  in
  let trace = Trace.create () in
  let original =
    Executor.run ~adversary:(Trace.recording trace ~base) (scan_competition ~n:8)
  in
  let replayed = Executor.run ~adversary:(Trace.replaying trace) (scan_competition ~n:8) in
  check Alcotest.(list int) "same crash set" original.Report.crashed replayed.Report.crashed

let test_census () =
  let trace = Trace.create () in
  let adversary = Trace.recording trace ~base:(Adversary.round_robin ()) in
  ignore (Executor.run ~adversary (scan_competition ~n:4));
  let census = Trace.census trace in
  match List.assoc_opt "tas-name" census with
  | Some count -> check Alcotest.bool "tas ops recorded" true (count > 0)
  | None -> Alcotest.fail "expected tas-name in census"

let test_replay_divergence_detected () =
  let trace = Trace.create () in
  let adversary = Trace.recording trace ~base:(Adversary.round_robin ()) in
  ignore (Executor.run ~adversary (scan_competition ~n:6));
  (* Replaying against a SMALLER instance diverges: pids in the trace
     are eventually not runnable (they finish earlier with fewer
     competitors), or the trace outlives the run.  The failure must be
     the structured {!Trace.Divergence}, not a bare Failure. *)
  (match Executor.run ~adversary:(Trace.replaying trace) (scan_competition ~n:3) with
  | exception Trace.Divergence d ->
    check Alcotest.bool "failing event index in range" true
      (d.Trace.at >= 0 && d.Trace.at <= Trace.length trace);
    check Alcotest.bool "expected action names a trace pid or exhaustion" true
      (match d.Trace.expected with
      | `Schedule pid | `Fault pid | `Crash pid | `Recover pid -> pid >= 0 && pid < 6
      | `Exhausted -> true);
    (* The runnable set the replayer actually saw: a subset of the small
       instance's pids, sorted. *)
    List.iter
      (fun pid -> check Alcotest.bool "runnable pid in small instance" true (pid >= 0 && pid < 3))
      d.Trace.runnable;
    check Alcotest.(list int) "runnable sorted" (List.sort compare d.Trace.runnable)
      d.Trace.runnable;
    check Alcotest.(list int) "nobody crashed" [] d.Trace.crashed;
    (* pp_divergence renders without raising and mentions the index. *)
    let rendered = Format.asprintf "%a" Trace.pp_divergence d in
    check Alcotest.bool "pretty-printer mentions decision index" true
      (let needle = Printf.sprintf "decision %d" d.Trace.at in
       let n = String.length rendered and m = String.length needle in
       let rec go i = i + m <= n && (String.sub rendered i m = needle || go (i + 1)) in
       go 0)
  | _ -> Alcotest.fail "expected Trace.Divergence")

let test_replay_divergence_on_exhaustion () =
  (* A recorded schedule runs out of events while processes of a larger
     instance are still runnable: `Exhausted, at the trace length. *)
  let trace = Trace.create () in
  let adversary = Trace.recording trace ~base:(Adversary.round_robin ()) in
  ignore (Executor.run ~adversary (scan_competition ~n:2));
  match Executor.run ~adversary:(Trace.replaying trace) (scan_competition ~n:4) with
  | exception Trace.Divergence d ->
    check Alcotest.bool "exhausted" true (d.Trace.expected = `Exhausted);
    check Alcotest.int "at the end of the trace" (Trace.length trace) d.Trace.at;
    check Alcotest.bool "someone still runnable" true (d.Trace.runnable <> [])
  | _ -> Alcotest.fail "expected Trace.Divergence (trace exhausted)"

let tests =
  [
    ( "trace",
      [
        Alcotest.test_case "records events" `Quick test_record_counts_events;
        Alcotest.test_case "replay reproduces run" `Quick test_replay_reproduces_run;
        Alcotest.test_case "replay randomized algorithm" `Quick test_replay_reproduces_randomized_algorithm;
        Alcotest.test_case "replay with crashes" `Quick test_replay_with_crashes;
        Alcotest.test_case "census" `Quick test_census;
        Alcotest.test_case "replay divergence" `Quick test_replay_divergence_detected;
        Alcotest.test_case "replay divergence on exhaustion" `Quick
          test_replay_divergence_on_exhaustion;
      ] );
  ]

(* --- appended: timeline rendering --- *)

let test_timeline_renders () =
  let trace = Trace.create () in
  let adversary = Trace.recording trace ~base:(Adversary.round_robin ()) in
  ignore (Executor.run ~adversary (scan_competition ~n:3));
  let s = Format.asprintf "%a" (Trace.pp_timeline ?max_pids:None ?max_events:None) trace in
  check Alcotest.bool "has lanes" true (String.length s > 0);
  (* three lanes expected *)
  let lines = String.split_on_char '\n' s |> List.filter (fun l -> String.length l > 2 && l.[0] = 'p') in
  check Alcotest.int "three lanes" 3 (List.length lines)

let timeline_tests =
  [ ("trace-timeline", [ Alcotest.test_case "timeline renders" `Quick test_timeline_renders ]) ]

let tests = tests @ timeline_tests
