(* Tests for the static-analysis layer: the audited footprint table,
   the commutation oracle (shipped table passes, seeded misdeclarations
   are caught), the dynamic coverage audit, and the source lint with
   its waiver syntax. *)

module Op = Renaming_sched.Op
module Memory = Renaming_sched.Memory
module Footprint = Renaming_analysis.Footprint
module Commute = Renaming_analysis.Commute
module Lint = Renaming_analysis.Lint
module Analyze = Renaming_analysis.Analyze
module Roster = Renaming_harness.Mcheck_roster

let check = Alcotest.check

let roster_instances () =
  List.map
    (fun e -> (e.Roster.e_name, fun () -> e.Roster.e_build ~seed:e.Roster.e_seed))
    (Roster.roster ())

(* --- the footprint table itself --- *)

let representatives = Op.representatives ~idx:0 ~value:1 @ Op.representatives ~idx:1 ~value:2

let test_footprint_symmetric_and_irreflexive_on_writes () =
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          check Alcotest.bool "symmetric" (Footprint.independent a b) (Footprint.independent b a))
        representatives;
      (* No operation that writes may commute with itself on the same
         cell; reads may. *)
      match Footprint.of_op a with
      | Footprint.Cell { writes = true; _ } ->
        check Alcotest.bool "write not self-independent" false (Footprint.independent a a)
      | _ -> ())
    representatives

let test_footprint_known_relations () =
  let indep = Footprint.independent in
  check Alcotest.bool "same-cell TAS conflict" false (indep (Op.Tas_name 0) (Op.Tas_name 0));
  check Alcotest.bool "disjoint TAS commute" true (indep (Op.Tas_name 0) (Op.Tas_name 1));
  check Alcotest.bool "same-cell reads commute" true (indep (Op.Read_name 0) (Op.Read_name 0));
  check Alcotest.bool "read vs TAS conflict" false (indep (Op.Read_name 0) (Op.Tas_name 0));
  check Alcotest.bool "cross-region commute" true (indep (Op.Tas_name 0) (Op.Tas_aux 0));
  check Alcotest.bool "yield commutes with all" true (indep Op.Yield (Op.Tas_name 0));
  check Alcotest.bool "device commutes with nothing" false
    (indep (Op.Tau_poll 0) (Op.Read_word 3));
  check Alcotest.bool "device vs device conflict" false
    (indep (Op.Tau_submit { reg = 0; bit = 0 }) (Op.Tau_poll 1))

let test_representatives_cover_all_constructors () =
  let tags = List.sort_uniq compare (List.map Op.tag (Op.representatives ~idx:0 ~value:1)) in
  check Alcotest.int "every constructor represented" Op.n_tags (List.length tags)

(* --- the commutation oracle --- *)

let test_shipped_table_passes_pairwise_audit () =
  let audit = Commute.audit_pairs () in
  check Alcotest.bool "pairs executed" true (audit.Commute.a_checked > 500);
  check (Alcotest.list Alcotest.string) "no failures" []
    (List.map (fun f -> f.Commute.f_detail) audit.Commute.a_failures)

let test_broken_table_fails_pairwise_audit () =
  let audit = Commute.audit_pairs ~table:Commute.broken_table () in
  check Alcotest.bool "misdeclared TAS caught" true
    (List.exists (fun f -> f.Commute.f_check = "commutation") audit.Commute.a_failures)

let test_device_independence_claim_rejected () =
  (* A table that claims τ-register traffic is Silent must be rejected
     outright — device answers are position-sensitive. *)
  let table (op : Op.t) =
    match op with
    | Op.Tau_submit _ | Op.Tau_poll _ -> Footprint.Silent
    | op -> Footprint.of_op op
  in
  let audit = Commute.audit_pairs ~table () in
  check Alcotest.bool "device independence rejected" true
    (List.exists (fun f -> f.Commute.f_check = "device-independence") audit.Commute.a_failures)

let test_shipped_table_covers_roster_accesses () =
  let audit = Commute.audit_coverage (roster_instances ()) in
  check Alcotest.bool "operations logged" true (audit.Commute.a_checked > 100);
  check (Alcotest.list Alcotest.string) "every access covered" []
    (List.map (fun f -> f.Commute.f_detail) audit.Commute.a_failures)

let test_broken_table_fails_coverage_audit () =
  let audit = Commute.audit_coverage ~table:Commute.broken_table (roster_instances ()) in
  check Alcotest.bool "uncovered write detected" true
    (List.exists (fun f -> f.Commute.f_check = "coverage") audit.Commute.a_failures)

(* --- the dependence-relation audit (the DPOR race predicate) --- *)

let test_dependence_shipped_predicate_passes () =
  let audit = Commute.audit_dependence ~dependent:Renaming_mcheck.Races.dependent () in
  check Alcotest.bool "pairs executed" true (audit.Commute.a_checked > 500);
  check (Alcotest.list Alcotest.string) "no failures" []
    (List.map (fun f -> f.Commute.f_detail) audit.Commute.a_failures)

let test_dependence_everything_independent_rejected () =
  (* A predicate that lets DPOR reorder everything must fail the
     table-agreement, both-orders and device checks. *)
  let audit = Commute.audit_dependence ~dependent:(fun _ _ -> false) () in
  let checks = List.map (fun f -> f.Commute.f_check) audit.Commute.a_failures in
  check Alcotest.bool "table drift caught" true (List.mem "table-agreement" checks);
  check Alcotest.bool "unsound reorderings caught" true (List.mem "race-soundness" checks);
  check Alcotest.bool "device reorderings caught" true (List.mem "device-dependence" checks)

let test_dependence_asymmetry_rejected () =
  let skew a b = Op.tag a < Op.tag b || Renaming_mcheck.Races.dependent a b in
  let audit = Commute.audit_dependence ~dependent:skew () in
  check Alcotest.bool "asymmetric predicate caught" true
    (List.exists (fun f -> f.Commute.f_check = "dependence-symmetry") audit.Commute.a_failures)

let test_dependence_tracks_audited_table () =
  (* Auditing the shipped predicate against a *broken* table must fail
     agreement: the relation DPOR prunes with and the relation that was
     commutation-audited may never drift apart. *)
  let audit =
    Commute.audit_dependence ~table:Commute.broken_table
      ~dependent:Renaming_mcheck.Races.dependent ()
  in
  check Alcotest.bool "drift from audited table caught" true
    (List.exists (fun f -> f.Commute.f_check = "table-agreement") audit.Commute.a_failures)

(* --- the access logger --- *)

let test_access_logger_records_concrete_effects () =
  let mem = Memory.create ~namespace:2 () in
  let log = ref [] in
  Memory.set_access_logger mem (Some (fun ~pid:_ op accesses -> log := (op, accesses) :: !log));
  ignore (Memory.apply mem ~pid:0 (Op.Tas_name 0));
  ignore (Memory.apply mem ~pid:1 (Op.Tas_name 0));
  Memory.set_access_logger mem None;
  ignore (Memory.apply mem ~pid:1 (Op.Tas_name 1));
  match List.rev !log with
  | [ (_, first); (_, second) ] ->
    check Alcotest.int "winning TAS logs read+write" 2 (List.length first);
    check Alcotest.int "losing TAS logs only the read" 1 (List.length second);
    check Alcotest.bool "write is pid-sensitive" true
      (List.exists (fun a -> a.Memory.acc_write && a.Memory.acc_pid_sensitive) first)
  | log -> Alcotest.failf "expected 2 logged operations, got %d" (List.length log)

(* --- the source lint --- *)

let with_temp_source contents f =
  let dir = Filename.temp_file "renaming-lint" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let path = Filename.concat dir "probe.ml" in
  let oc = open_out path in
  output_string oc contents;
  close_out oc;
  Fun.protect
    ~finally:(fun () ->
      Sys.remove path;
      Sys.rmdir dir)
    (fun () -> f path)

let rules_of findings = List.sort_uniq compare (List.map (fun f -> f.Lint.l_rule) findings)

let test_lint_flags_each_rule () =
  let source =
    String.concat "\n"
      [
        "let counter = ref 0";
        "let cell = Atomic.make 0";
        "let seed () = Random.self_init ()";
        "let cast (x : int) : bool = Obj.magic x";
        "let h name = Hashtbl.hash name";
        "let now () = Unix.gettimeofday ()";
        "let nap () = Unix.sleepf 0.1";
        "";
      ]
  in
  with_temp_source source (fun path ->
      let findings = Lint.lint_file path in
      check (Alcotest.list Alcotest.string) "every rule fires"
        [ "atomic-outside-shm"; "blocking-sleep"; "global-mutable"; "nondeterministic-rng";
          "obj-magic"; "unstable-hash"; "wall-clock" ]
        (rules_of (Lint.active findings)))

let test_lint_local_mutability_not_flagged () =
  let source =
    "let bump xs =\n  let total = ref 0 in\n  List.iter (fun x -> total := !total + x) xs;\n  !total\n"
  in
  with_temp_source source (fun path ->
      check Alcotest.int "function-local ref is fine" 0 (List.length (Lint.lint_file path)))

let test_lint_waiver_suppresses_but_reports () =
  let source =
    "(* lint: allow wall-clock — timing demo *)\nlet now () = Unix.gettimeofday ()\n"
  in
  with_temp_source source (fun path ->
      let findings = Lint.lint_file path in
      check Alcotest.int "finding still reported" 1 (List.length findings);
      check Alcotest.int "but waived" 0 (List.length (Lint.active findings));
      check Alcotest.bool "marked waived" true (List.for_all (fun f -> f.Lint.l_waived) findings))

let test_lint_waiver_is_rule_specific () =
  let source = "(* lint: allow obj-magic *)\nlet now () = Unix.gettimeofday ()\n" in
  with_temp_source source (fun path ->
      check Alcotest.int "wrong rule does not waive" 1
        (List.length (Lint.active (Lint.lint_file path))))

let test_lint_whitelist_exempts_atomics () =
  let source = "let make () = Atomic.make 0\n" in
  with_temp_source source (fun path ->
      let dir = Filename.basename (Filename.dirname path) in
      check Alcotest.int "whitelisted dir may use Atomic" 0
        (List.length (Lint.lint_file ~whitelist:[ dir ] path));
      check Alcotest.int "otherwise flagged" 1 (List.length (Lint.lint_file path)))

let test_lint_stdout_print_rule () =
  let source = "let report x = Printf.printf \"%d\\n\" x\nlet shout s = print_endline s\n" in
  with_temp_source source (fun path ->
      check (Alcotest.list Alcotest.string) "printing flagged" [ "stdout-print" ]
        (rules_of (Lint.lint_file path));
      check Alcotest.int "both sites reported" 2 (List.length (Lint.lint_file path));
      let dir = Filename.basename (Filename.dirname path) in
      check Alcotest.int "exporter directories may print" 0
        (List.length (Lint.lint_file ~print_whitelist:[ dir ] path)))

let test_lint_stdout_print_waiver () =
  let source = "(* lint: allow stdout-print — progress line *)\nlet go () = print_endline \"hi\"\n" in
  with_temp_source source (fun path ->
      let findings = Lint.lint_file path in
      check Alcotest.int "reported" 1 (List.length findings);
      check Alcotest.int "waived" 0 (List.length (Lint.active findings)))

let test_lint_blocking_sleep_rule () =
  (* Both sleep variants are flagged; the watchdog-style waiver
     suppresses without hiding. *)
  let source = "let nap () = Unix.sleep 1\nlet doze () = Unix.sleepf 0.5\n" in
  with_temp_source source (fun path ->
      check (Alcotest.list Alcotest.string) "sleeps flagged" [ "blocking-sleep" ]
        (rules_of (Lint.lint_file path));
      check Alcotest.int "both sites reported" 2 (List.length (Lint.lint_file path)));
  let waived = "(* lint: allow blocking-sleep — watchdog domain *)\nlet nap () = Unix.sleepf 0.1\n" in
  with_temp_source waived (fun path ->
      let findings = Lint.lint_file path in
      check Alcotest.int "reported" 1 (List.length findings);
      check Alcotest.int "waived" 0 (List.length (Lint.active findings)))

let test_lint_parse_error_is_a_finding () =
  with_temp_source "let let let" (fun path ->
      check (Alcotest.list Alcotest.string) "parse error surfaces" [ "parse-error" ]
        (rules_of (Lint.lint_file path)))

(* --- the aggregate driver --- *)

let json_contains json needle =
  let nlen = String.length needle in
  let rec go i = i + nlen <= String.length json && (String.sub json i nlen = needle || go (i + 1)) in
  go 0

let test_analyze_shipped_tree_ok () =
  let result =
    Analyze.run ~dependent:Renaming_mcheck.Races.dependent ~lint_root:None
      ~roster:(roster_instances ()) ()
  in
  check Alcotest.bool "audits pass without lint leg" true (Analyze.ok result);
  let json = Analyze.to_json result in
  check Alcotest.bool "json says ok" true
    (String.length json > 2 && String.sub json 0 10 = "{\"ok\":true");
  check Alcotest.bool "dependence audit serialised" true
    (json_contains json "\"dependence\":{\"checked\":")

let test_analyze_dependence_leg_optional_and_gating () =
  (* Without a predicate the leg is skipped and reported as null... *)
  let skipped = Analyze.run ~lint_root:None ~roster:(roster_instances ()) () in
  check Alcotest.bool "skipped leg does not gate" true (Analyze.ok skipped);
  check Alcotest.bool "null when skipped" true
    (json_contains (Analyze.to_json skipped) "\"dependence\":null");
  (* ...with a broken predicate the whole layer fails. *)
  let broken =
    Analyze.run ~dependent:(fun _ _ -> false) ~lint_root:None ~roster:(roster_instances ()) ()
  in
  check Alcotest.bool "broken predicate fails the layer" false (Analyze.ok broken)

let test_analyze_broken_table_fails_and_reports () =
  let result =
    Analyze.run ~table:Commute.broken_table ~lint_root:None ~roster:(roster_instances ()) ()
  in
  check Alcotest.bool "broken table rejected" false (Analyze.ok result);
  let json = Analyze.to_json result in
  check Alcotest.bool "json says not ok" true (String.sub json 0 11 = "{\"ok\":false");
  check Alcotest.bool "failures serialised" true
    (String.length json > 100
    &&
    let rec contains i =
      i + 13 <= String.length json
      && (String.sub json i 13 = "\"commutation\"" || contains (i + 1))
    in
    contains 0)

let tests =
  [
    ( "analysis.footprint",
      [
        Alcotest.test_case "symmetric, writes conflict" `Quick
          test_footprint_symmetric_and_irreflexive_on_writes;
        Alcotest.test_case "known relations" `Quick test_footprint_known_relations;
        Alcotest.test_case "representatives cover constructors" `Quick
          test_representatives_cover_all_constructors;
      ] );
    ( "analysis.commute",
      [
        Alcotest.test_case "shipped table passes pairwise audit" `Quick
          test_shipped_table_passes_pairwise_audit;
        Alcotest.test_case "broken table fails pairwise audit" `Quick
          test_broken_table_fails_pairwise_audit;
        Alcotest.test_case "device independence rejected" `Quick
          test_device_independence_claim_rejected;
        Alcotest.test_case "shipped table covers roster accesses" `Slow
          test_shipped_table_covers_roster_accesses;
        Alcotest.test_case "broken table fails coverage audit" `Slow
          test_broken_table_fails_coverage_audit;
        Alcotest.test_case "access logger records concrete effects" `Quick
          test_access_logger_records_concrete_effects;
      ] );
    ( "analysis.dependence",
      [
        Alcotest.test_case "shipped race predicate passes" `Quick
          test_dependence_shipped_predicate_passes;
        Alcotest.test_case "everything-independent rejected" `Quick
          test_dependence_everything_independent_rejected;
        Alcotest.test_case "asymmetry rejected" `Quick test_dependence_asymmetry_rejected;
        Alcotest.test_case "tracks the audited table" `Quick test_dependence_tracks_audited_table;
      ] );
    ( "analysis.lint",
      [
        Alcotest.test_case "each rule fires" `Quick test_lint_flags_each_rule;
        Alcotest.test_case "local mutability is fine" `Quick test_lint_local_mutability_not_flagged;
        Alcotest.test_case "waiver suppresses but reports" `Quick
          test_lint_waiver_suppresses_but_reports;
        Alcotest.test_case "waiver is rule-specific" `Quick test_lint_waiver_is_rule_specific;
        Alcotest.test_case "whitelist exempts atomics" `Quick test_lint_whitelist_exempts_atomics;
        Alcotest.test_case "stdout-print rule" `Quick test_lint_stdout_print_rule;
        Alcotest.test_case "stdout-print waiver" `Quick test_lint_stdout_print_waiver;
        Alcotest.test_case "blocking-sleep rule" `Quick test_lint_blocking_sleep_rule;
        Alcotest.test_case "parse error is a finding" `Quick test_lint_parse_error_is_a_finding;
      ] );
    ( "analysis.analyze",
      [
        Alcotest.test_case "shipped tree ok" `Slow test_analyze_shipped_tree_ok;
        Alcotest.test_case "broken table fails and reports" `Slow
          test_analyze_broken_table_fails_and_reports;
        Alcotest.test_case "dependence leg optional and gating" `Slow
          test_analyze_dependence_leg_optional_and_gating;
      ] );
  ]
