(* Tests for the refinement layer: the centralized spec's transition
   rules and invariants (unit + qcheck), the announce encoding, the
   executor and lease adapters, the shared telemetry counters, the
   observation-changes-nothing guarantee, and the seeded spec-divergence
   mutant (caught, shrunk, artifact round-trips). *)

module Spec = Renaming_refine.Spec
module Obs_event = Renaming_refine.Obs_event
module Check = Renaming_refine.Check
module Exec_adapter = Renaming_refine.Exec_adapter
module Lease_adapter = Renaming_refine.Lease_adapter
module Grant_model = Renaming_refine.Grant_model
module Executor = Renaming_sched.Executor
module Memory = Renaming_sched.Memory
module Adversary = Renaming_sched.Adversary
module Report = Renaming_sched.Report
module Shrink = Renaming_faults.Shrink
module Fuzz = Renaming_fuzz.Fuzz
module Fuzz_roster = Renaming_harness.Fuzz_roster
module Refine_campaign = Renaming_harness.Refine_campaign
module Churn = Renaming_service.Churn
module Longlived = Renaming_longlived.Longlived
module Obs = Renaming_obs.Obs
module Metrics = Renaming_obs.Metrics

let check = Alcotest.check

let verdict : Spec.verdict Alcotest.testable =
  Alcotest.testable
    (fun fmt -> function
      | `Step -> Format.pp_print_string fmt "Step"
      | `Stutter -> Format.pp_print_string fmt "Stutter"
      | `Reject r -> Format.fprintf fmt "Reject %s" r)
    ( = )

let spec ?(namespace = 4) ?(one_shot = true) () = Spec.create { Spec.namespace; one_shot }

let feed t evs = List.map (Spec.apply t) evs

(* --- Obs_event: announce encoding --- *)

let some_events ~session ~name =
  [
    Obs_event.Invoked { session };
    Obs_event.Granted { session; name };
    Obs_event.Claimed { session; name };
    Obs_event.Released { session; name };
    Obs_event.Crashed { session };
    Obs_event.Recovered { session };
    Obs_event.Reclaimed { session; name };
    Obs_event.Shed { session };
  ]

let test_encode_roundtrip () =
  List.iter
    (fun (session, name) ->
      List.iter
        (fun ev ->
          match Obs_event.decode (Obs_event.encode ev) with
          | Some ev' -> check Alcotest.bool (Obs_event.to_string ev) true (ev = ev')
          | None -> Alcotest.failf "decode failed: %s" (Obs_event.to_string ev))
        (some_events ~session ~name))
    [ (0, 0); (1, 5); (4095, 100_000) ]

let test_decode_rejects_garbage () =
  (* Tag 0 is reserved (an untouched register is not an event) and tags
     past the constructor count are malformed. *)
  check Alcotest.bool "zero" true (Obs_event.decode 0 = None);
  List.iter
    (fun tag -> check Alcotest.bool "bad tag" true (Obs_event.decode tag = None))
    [ 9; 10; 15 ]

(* --- Spec: unit transitions --- *)

let test_spec_lifecycle () =
  let t = spec () in
  check (Alcotest.list verdict) "invoke/grant/claim/release"
    [ `Step; `Step; `Stutter; `Step ]
    (feed t
       [
         Obs_event.Invoked { session = 0 };
         Obs_event.Granted { session = 0; name = 1 };
         Obs_event.Claimed { session = 0; name = 1 };
         Obs_event.Released { session = 0; name = 1 };
       ]);
  check Alcotest.int "nothing held" 0 (Spec.held t)

let test_spec_uniqueness () =
  let t = spec () in
  check (Alcotest.list verdict) "second grant of a held name is inexplicable"
    [ `Step; `Step; `Step; `Reject "name-held" ]
    (feed t
       [
         Obs_event.Invoked { session = 0 };
         Obs_event.Granted { session = 0; name = 2 };
         Obs_event.Invoked { session = 1 };
         Obs_event.Granted { session = 1; name = 2 };
       ]);
  check Alcotest.(option int) "holder unchanged" (Some 0) (Spec.holder t ~name:2)

let test_spec_namespace_bound () =
  let t = spec ~namespace:4 () in
  ignore (Spec.apply t (Obs_event.Invoked { session = 0 }));
  check verdict "grant out of range"
    (`Reject "name-out-of-range")
    (Spec.apply t (Obs_event.Granted { session = 0; name = 4 }));
  check verdict "claim out of range"
    (`Reject "name-out-of-range")
    (Spec.apply t (Obs_event.Claimed { session = 0; name = 7 }))

let test_spec_fencing () =
  let t = spec () in
  check verdict "release of an unheld name is the fenced ghost"
    (`Reject "release-not-holder")
    (Spec.apply t (Obs_event.Released { session = 0; name = 1 }));
  check verdict "so is a reclaim"
    (`Reject "reclaim-not-holder")
    (Spec.apply t (Obs_event.Reclaimed { session = 0; name = 1 }));
  check verdict "and an ownership assertion"
    (`Reject "claim-unbacked")
    (Spec.apply t (Obs_event.Claimed { session = 0; name = 1 }))

let test_spec_one_shot_invocation () =
  let t = spec () in
  check verdict "grant needs an invocation"
    (`Reject "grant-without-invoke")
    (Spec.apply t (Obs_event.Granted { session = 0; name = 0 }));
  check (Alcotest.list verdict) "reclaim clears the invocation"
    [ `Step; `Step; `Step ]
    (feed t
       [
         Obs_event.Invoked { session = 0 };
         Obs_event.Granted { session = 0; name = 0 };
         Obs_event.Reclaimed { session = 0; name = 0 };
       ]);
  check verdict "post-reclaim regrant without re-invoke is the seeded bug"
    (`Reject "grant-without-invoke")
    (Spec.apply t (Obs_event.Granted { session = 0; name = 0 }));
  check (Alcotest.list verdict) "re-invoking re-enables the grant"
    [ `Step; `Step ]
    (feed t [ Obs_event.Invoked { session = 0 }; Obs_event.Granted { session = 0; name = 0 } ]);
  check verdict "one claim per one-shot session" (`Reject "double-hold")
    (Spec.apply t (Obs_event.Granted { session = 0; name = 1 }))

let test_spec_lease_mode () =
  (* Lease discipline: no invocation bookkeeping, several live leases
     per session are legal (an abandoned queue ticket can grant after
     the retry already did). *)
  let t = spec ~one_shot:false () in
  check (Alcotest.list verdict) "multi-hold without invocations"
    [ `Step; `Step ]
    (feed t
       [ Obs_event.Granted { session = 0; name = 0 }; Obs_event.Granted { session = 0; name = 1 } ]);
  check verdict "uniqueness still binds" (`Reject "name-held")
    (Spec.apply t (Obs_event.Granted { session = 1; name = 0 }))

let test_spec_crash_abandons_claims () =
  let t = spec () in
  check (Alcotest.list verdict) "grant, crash"
    [ `Step; `Step; `Step ]
    (feed t
       [
         Obs_event.Invoked { session = 0 };
         Obs_event.Granted { session = 0; name = 0 };
         Obs_event.Crashed { session = 0 };
       ]);
  ignore (Spec.apply t (Obs_event.Invoked { session = 1 }));
  check verdict "the crashed holder's name stays consumed"
    (`Reject "name-held")
    (Spec.apply t (Obs_event.Granted { session = 1; name = 0 }));
  check verdict "no grant while crashed" (`Reject "grant-while-crashed")
    (Spec.apply t (Obs_event.Granted { session = 0; name = 1 }));
  check (Alcotest.list verdict)
    "the recovered re-run may re-discover its old name and win a fresh one"
    [ `Step; `Stutter; `Step ]
    (feed t
       [
         Obs_event.Recovered { session = 0 };
         Obs_event.Claimed { session = 0; name = 0 };
         Obs_event.Granted { session = 0; name = 1 };
       ])

(* --- Spec: qcheck properties --- *)

let event_gen =
  QCheck.Gen.(
    let session = int_range 0 3 in
    (* Names deliberately straddle the namespace bound (4) so the
       generator exercises rejects too. *)
    let name = int_range 0 5 in
    oneof
      [
        map (fun s -> Obs_event.Invoked { session = s }) session;
        map2 (fun s n -> Obs_event.Granted { session = s; name = n }) session name;
        map2 (fun s n -> Obs_event.Claimed { session = s; name = n }) session name;
        map2 (fun s n -> Obs_event.Released { session = s; name = n }) session name;
        map (fun s -> Obs_event.Crashed { session = s }) session;
        map (fun s -> Obs_event.Recovered { session = s }) session;
        map2 (fun s n -> Obs_event.Reclaimed { session = s; name = n }) session name;
        map (fun s -> Obs_event.Shed { session = s }) session;
      ])

let trace_arb =
  QCheck.make
    ~print:(fun evs -> String.concat "; " (List.map Obs_event.to_string evs))
    QCheck.Gen.(list_size (int_range 0 60) event_gen)

let qcheck_spec_deterministic =
  QCheck.Test.make ~name:"spec: same trace, same verdicts, same state" ~count:300 trace_arb
    (fun evs ->
      List.iter
        (fun one_shot ->
          let a = spec ~one_shot () and b = spec ~one_shot () in
          let va = feed a evs and vb = feed b evs in
          if va <> vb then QCheck.Test.fail_report "verdicts diverged";
          if Spec.snapshot a <> Spec.snapshot b then QCheck.Test.fail_report "state diverged")
        [ true; false ];
      true)

let qcheck_spec_invariants =
  (* After every event — accepted, stuttered or rejected — the reachable
     state satisfies the invariants, and a reject changes nothing. *)
  QCheck.Test.make ~name:"spec: invariants hold along every trace, rejects change nothing"
    ~count:300 trace_arb (fun evs ->
      let t = spec () in
      List.iter
        (fun ev ->
          let before = Spec.snapshot t in
          let v = Spec.apply t ev in
          (match v with
          | `Reject _ ->
              if Spec.snapshot t <> before then
                QCheck.Test.fail_report "a rejected event changed the state"
          | `Stutter ->
              if Spec.snapshot t <> before then
                QCheck.Test.fail_report "a stutter changed the state"
          | `Step -> ());
          let held = ref 0 in
          for name = 0 to 3 do
            match Spec.holder t ~name with
            | Some s ->
                incr held;
                if s < 0 || s > 3 then QCheck.Test.fail_report "holder out of session range"
            | None -> ()
          done;
          if Spec.held t <> !held then
            QCheck.Test.fail_report "held count disagrees with the holder map")
        evs;
      true)

let relabel perm ev =
  let p s = perm.(s) in
  match ev with
  | Obs_event.Invoked { session } -> Obs_event.Invoked { session = p session }
  | Obs_event.Granted { session; name } -> Obs_event.Granted { session = p session; name }
  | Obs_event.Claimed { session; name } -> Obs_event.Claimed { session = p session; name }
  | Obs_event.Released { session; name } -> Obs_event.Released { session = p session; name }
  | Obs_event.Crashed { session } -> Obs_event.Crashed { session = p session }
  | Obs_event.Recovered { session } -> Obs_event.Recovered { session = p session }
  | Obs_event.Reclaimed { session; name } -> Obs_event.Reclaimed { session = p session; name }
  | Obs_event.Shed { session } -> Obs_event.Shed { session = p session }

let qcheck_spec_session_symmetry =
  (* Sessions are interchangeable: relabelling a trace through any
     bijection yields the same verdict sequence, so legal traces are
     closed under pid permutation. *)
  QCheck.Test.make ~name:"spec: verdicts invariant under session permutation" ~count:300
    (QCheck.pair trace_arb (QCheck.make QCheck.Gen.(shuffle_l [ 0; 1; 2; 3 ])))
    (fun (evs, perm_l) ->
      let perm = Array.of_list perm_l in
      List.iter
        (fun one_shot ->
          let a = spec ~one_shot () and b = spec ~one_shot () in
          if feed a evs <> feed b (List.map (relabel perm) evs) then
            QCheck.Test.fail_report "permuted trace produced different verdicts")
        [ true; false ];
      true)

(* --- Exec_adapter --- *)

let test_mode_of_name () =
  let mode = Alcotest.testable (fun fmt (m : Exec_adapter.mode) ->
      Format.pp_print_string fmt
        (match m with Tas -> "Tas" | Returns -> "Returns" | Announce -> "Announce")) ( = )
  in
  check mode "paper algorithm" Exec_adapter.Tas (Exec_adapter.mode_of_name "tight");
  check mode "handoff model" Exec_adapter.Returns (Exec_adapter.mode_of_name "lease-handoff-n3");
  check mode "shard mutant" Exec_adapter.Returns
    (Exec_adapter.mode_of_name "mutant-shard-unfenced-handoff");
  check mode "announce model" Exec_adapter.Announce (Exec_adapter.mode_of_name "refine-grant-n2");
  check mode "announce mutant" Exec_adapter.Announce
    (Exec_adapter.mode_of_name "mutant-refine-regrant")

let linear_scan ~n = Renaming_baselines.Linear_scan.instance { Renaming_baselines.Linear_scan.n; m = n }

let test_tas_adapter_clean_run () =
  let inst = linear_scan ~n:3 in
  let adapter =
    Exec_adapter.create ~mode:Exec_adapter.Tas ~namespace:(Memory.namespace inst.Executor.memory) ()
  in
  let report =
    Executor.run ~adversary:(Adversary.round_robin ()) ~on_event:(Exec_adapter.hook adapter) inst
  in
  let c = Exec_adapter.check adapter in
  check Alcotest.int "all named" 3 (Report.named_count report);
  check Alcotest.int "no violations" 0 (Check.violations c);
  check Alcotest.bool "grants stepped the spec" true (Check.steps c >= 3);
  check Alcotest.int "everything granted is still held" 3 (Spec.held (Check.spec c))

let test_observation_changes_nothing_executor () =
  let bare = Executor.run ~adversary:(Adversary.round_robin ()) (linear_scan ~n:4) in
  let inst = linear_scan ~n:4 in
  let hook =
    Exec_adapter.hook_for ~name:"linear-scan-n4" ~namespace:(Memory.namespace inst.Executor.memory)
      ()
  in
  let observed = Executor.run ~adversary:(Adversary.round_robin ()) ~on_event:hook inst in
  check Alcotest.bool "identical report" true (bare = observed)

let test_announce_model_clean_round_robin () =
  (* Fair schedules never let the reclaimer settle first — both the
     clean model and the mutant are clean here, which is exactly why the
     mutant needs the fuzzer (and the refinement checker) to be seen. *)
  List.iter
    (fun (label, inst) ->
      let adapter =
        Exec_adapter.create ~mode:Exec_adapter.Announce
          ~namespace:(Memory.namespace inst.Executor.memory) ()
      in
      ignore
        (Executor.run ~adversary:(Adversary.round_robin ()) ~on_event:(Exec_adapter.hook adapter)
           inst);
      check Alcotest.int (label ^ ": no violations") 0 (Check.violations (Exec_adapter.check adapter));
      check Alcotest.bool (label ^ ": announces heard") true
        (Check.steps (Exec_adapter.check adapter) > 0))
    [
      ("clean", Grant_model.instance ~n:2 ~seed:0L);
      ("mutant", Grant_model.instance_regrant ~n:2 ~seed:0L);
    ]

(* --- telemetry counters --- *)

let test_obs_counters () =
  let obs = Obs.create () in
  let run_once () =
    let inst = linear_scan ~n:3 in
    let adapter =
      Exec_adapter.create ~obs ~mode:Exec_adapter.Tas
        ~namespace:(Memory.namespace inst.Executor.memory) ()
    in
    ignore
      (Executor.run ~adversary:(Adversary.round_robin ()) ~on_event:(Exec_adapter.hook adapter) inst);
    Exec_adapter.check adapter
  in
  (* Two checkers sharing one registry: the counters are get-or-create
     and accumulate across traces. *)
  let c1 = run_once () in
  let c2 = run_once () in
  let m = Obs.metrics obs in
  check Alcotest.(option int) "refine/events"
    (Some (Check.events c1 + Check.events c2))
    (Metrics.find_counter m "refine/events");
  check Alcotest.(option int) "refine/stutters"
    (Some (Check.stutters c1 + Check.stutters c2))
    (Metrics.find_counter m "refine/stutters");
  check Alcotest.(option int) "refine/violations" (Some 0)
    (Metrics.find_counter m "refine/violations")

(* --- Lease_adapter over the service backend --- *)

let churn_config () = Churn.make_config ~clients:8 ~sessions_target:150 ~capacity:16 ()

let test_lease_adapter_clean_churn () =
  let cfg = churn_config () in
  let namespace = Longlived.namespace_for ~sessions:cfg.Churn.capacity ~epsilon:cfg.Churn.epsilon in
  let adapter = Lease_adapter.create ~namespace () in
  let summary = Churn.run ~tap:(Lease_adapter.service_tap adapter) cfg ~seed:7L in
  let c = Lease_adapter.check adapter in
  check Alcotest.bool "churn ran" true (summary.Churn.sessions >= 150);
  check Alcotest.int "no violations" 0 (Check.violations c);
  check Alcotest.bool "grants heard" true (Check.steps c > 0);
  check Alcotest.bool "renewals stuttered" true (Check.stutters c > 0)

let test_observation_changes_nothing_service () =
  let cfg = churn_config () in
  let namespace = Longlived.namespace_for ~sessions:cfg.Churn.capacity ~epsilon:cfg.Churn.epsilon in
  let bare = Churn.run cfg ~seed:7L in
  let adapter = Lease_adapter.create ~namespace () in
  let tapped = Churn.run ~tap:(Lease_adapter.service_tap adapter) cfg ~seed:7L in
  check Alcotest.bool "identical summary" true (bare = tapped)

(* --- the seeded spec-divergence mutant --- *)

let test_refine_mutant_caught_and_shrunk () =
  let refine ~name ~namespace = Exec_adapter.hook_for ~name ~namespace () in
  let summary = Fuzz.run ~refine ~seed:1L ~iterations:50 (Fuzz_roster.refine_mutants ()) in
  check Alcotest.bool "fuzz campaign ok (mutant found, shrunk)" true (Fuzz.ok summary);
  let v =
    match List.concat_map (fun r -> r.Fuzz.r_violations) summary.Fuzz.s_results with
    | v :: _ -> v
    | [] -> Alcotest.fail "no violation recorded"
  in
  check Alcotest.string "the refinement checker named the divergence"
    "refine:grant-without-invoke" v.Fuzz.v_kind;
  match v.Fuzz.v_repro with
  | None -> Alcotest.fail "violation was not shrunk to a repro"
  | Some r -> (
      check Alcotest.bool "minimal prefix is short" true (List.length r.Shrink.rp_choices <= 16);
      match Shrink.repro_of_string (Shrink.repro_to_string r) with
      | Error e -> Alcotest.failf "artifact does not round-trip: %s" e
      | Ok r' ->
          check Alcotest.string "algorithm survives" r.Shrink.rp_algorithm r'.Shrink.rp_algorithm;
          check Alcotest.string "kind survives" r.Shrink.rp_kind r'.Shrink.rp_kind;
          check Alcotest.bool "choices survive" true (r.Shrink.rp_choices = r'.Shrink.rp_choices))

let tests =
  [
    ( "refine",
      [
        Alcotest.test_case "obs_event: encode/decode round-trip" `Quick test_encode_roundtrip;
        Alcotest.test_case "obs_event: malformed announces rejected" `Quick
          test_decode_rejects_garbage;
        Alcotest.test_case "spec: grant lifecycle" `Quick test_spec_lifecycle;
        Alcotest.test_case "spec: uniqueness" `Quick test_spec_uniqueness;
        Alcotest.test_case "spec: namespace bound" `Quick test_spec_namespace_bound;
        Alcotest.test_case "spec: fencing" `Quick test_spec_fencing;
        Alcotest.test_case "spec: one-shot invocation discipline" `Quick
          test_spec_one_shot_invocation;
        Alcotest.test_case "spec: lease mode" `Quick test_spec_lease_mode;
        Alcotest.test_case "spec: crash abandons claims" `Quick test_spec_crash_abandons_claims;
        QCheck_alcotest.to_alcotest qcheck_spec_deterministic;
        QCheck_alcotest.to_alcotest qcheck_spec_invariants;
        QCheck_alcotest.to_alcotest qcheck_spec_session_symmetry;
        Alcotest.test_case "exec adapter: mode resolution" `Quick test_mode_of_name;
        Alcotest.test_case "exec adapter: clean tas run refines" `Quick test_tas_adapter_clean_run;
        Alcotest.test_case "exec adapter: observation changes nothing" `Quick
          test_observation_changes_nothing_executor;
        Alcotest.test_case "announce model: clean under fair schedules" `Quick
          test_announce_model_clean_round_robin;
        Alcotest.test_case "telemetry: refine/* counters shared get-or-create" `Quick
          test_obs_counters;
        Alcotest.test_case "lease adapter: churn refines via the audit tap" `Quick
          test_lease_adapter_clean_churn;
        Alcotest.test_case "lease adapter: observation changes nothing" `Quick
          test_observation_changes_nothing_service;
        Alcotest.test_case "mutant: caught, shrunk, artifact round-trips" `Quick
          test_refine_mutant_caught_and_shrunk;
      ] );
  ]
