let () =
  Alcotest.run "renaming"
    (List.concat
       [
         Test_rng.tests;
         Test_bitops.tests;
         Test_stats.tests;
         Test_shm.tests;
         Test_device.tests;
         Test_sched.tests;
         Test_sortnet.tests;
         Test_core.tests;
         Test_baselines.tests;
         Test_workload.tests;
         Test_concurrent.tests;
         Test_harness.tests;
         Test_adaptive.tests;
         Test_splitter.tests;
         Test_apps.tests;
         Test_fastsim.tests;
         Test_trace.tests;
         Test_longlived.tests;
         Test_faults.tests;
         Test_mcheck.tests;
         Test_analysis.tests;
         Test_adversary.tests;
         Test_fuzz.tests;
       ])
