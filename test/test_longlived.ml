(* Tests for long-lived renaming (acquire/release under churn). *)

module Longlived = Renaming_longlived.Longlived
module Tas_array = Renaming_shm.Tas_array
module Adversary = Renaming_sched.Adversary
module Report = Renaming_sched.Report
module Stream = Renaming_rng.Stream
module Summary = Renaming_stats.Summary

let check = Alcotest.check

let test_release_owner_checked () =
  let t = Tas_array.create 4 in
  ignore (Tas_array.test_and_set t ~idx:1 ~pid:5);
  check Alcotest.bool "wrong owner refused" false (Tas_array.release t ~idx:1 ~pid:6);
  check Alcotest.bool "still held" true (Tas_array.is_set t 1);
  check Alcotest.bool "owner releases" true (Tas_array.release t ~idx:1 ~pid:5);
  check Alcotest.bool "free again" false (Tas_array.is_set t 1);
  check Alcotest.int "set count restored" 0 (Tas_array.set_count t);
  check Alcotest.bool "double release refused" false (Tas_array.release t ~idx:1 ~pid:5)

let test_release_then_reacquire () =
  let t = Tas_array.create 2 in
  ignore (Tas_array.test_and_set t ~idx:0 ~pid:1);
  ignore (Tas_array.release t ~idx:0 ~pid:1);
  check Alcotest.bool "reacquired by another" true (Tas_array.test_and_set t ~idx:0 ~pid:2);
  check Alcotest.(option int) "new owner" (Some 2) (Tas_array.owner t 0)

let test_config_validation () =
  Alcotest.check_raises "bad epsilon"
    (Invalid_argument "Longlived.make_config: epsilon must be positive") (fun () ->
      ignore (Longlived.make_config ~epsilon:(-1.) ~sessions:4 ()));
  Alcotest.check_raises "bad sessions"
    (Invalid_argument "Longlived.make_config: sessions must be >= 1") (fun () ->
      ignore (Longlived.make_config ~sessions:0 ()))

let test_namespace_strictly_larger () =
  let cfg = Longlived.make_config ~epsilon:0.01 ~sessions:10 () in
  check Alcotest.bool "m > sessions" true (Longlived.namespace cfg > 10)

let run_churn ?adversary ~sessions ~rounds ~epsilon ~seed () =
  let cfg = Longlived.make_config ~epsilon ~rounds ~sessions () in
  let stats = Longlived.create_stats () in
  let report = Longlived.run ?adversary ~stats cfg ~seed in
  (cfg, !stats, report)

let test_all_cycles_complete () =
  let sessions = 32 and rounds = 6 in
  let _, stats, report = run_churn ~sessions ~rounds ~epsilon:0.5 ~seed:1L () in
  check Alcotest.int "acquires = sessions*rounds" (sessions * rounds) stats.Longlived.acquires;
  check Alcotest.int "releases match" (sessions * rounds) stats.Longlived.releases;
  check Alcotest.int "no failed releases" 0 stats.Longlived.release_failures;
  (* Long-lived programs return no names. *)
  check Alcotest.int "no residual names" 0 (Report.named_count report)

let test_mutual_exclusion_bound () =
  let sessions = 24 in
  let _, stats, _ = run_churn ~sessions ~rounds:5 ~epsilon:0.25 ~seed:2L () in
  check Alcotest.bool "held <= sessions" true (stats.Longlived.max_held <= sessions);
  check Alcotest.bool "some concurrency observed" true (stats.Longlived.max_held >= 1)

let test_probe_costs_reasonable () =
  let cfg, stats, _ = run_churn ~sessions:64 ~rounds:8 ~epsilon:0.5 ~seed:3L () in
  let mean = Summary.mean stats.Longlived.probe_summary in
  check Alcotest.bool "mean probes below worst-case ceiling" true
    (mean <= Longlived.predicted_probes cfg +. 1.)

let test_under_adversaries () =
  List.iter
    (fun adversary ->
      let _, stats, _ =
        run_churn ~adversary ~sessions:16 ~rounds:4 ~epsilon:0.5 ~seed:4L ()
      in
      check Alcotest.int "all acquires done" (16 * 4) stats.Longlived.acquires;
      check Alcotest.int "no failed releases" 0 stats.Longlived.release_failures)
    [
      Adversary.lifo;
      Adversary.adaptive_contention;
      Adversary.colluding;
      Adversary.uniform (Stream.fork_named (Stream.create 5L) ~name:"a");
    ]

(* Probe-cap exhaustion (the structured slow path): run one session's
   program against a pre-filled namespace so random probes keep losing.
   With one free slot the deterministic sweep must recover; with none
   the session must abort gracefully instead of spinning. *)

module Memory = Renaming_sched.Memory
module Op = Renaming_sched.Op
module Executor = Renaming_sched.Executor
module Xoshiro = Renaming_rng.Xoshiro

let run_prefilled ~prefill ~rounds ~seed =
  let cfg = Longlived.make_config ~epsilon:0.5 ~rounds ~probe_cap:1 ~sessions:4 () in
  let m = Longlived.namespace cfg in
  let memory = Memory.create ~namespace:m () in
  for i = 0 to prefill m - 1 do
    ignore (Memory.apply memory ~pid:9 (Op.Tas_name i))
  done;
  let stats = Longlived.create_stats () in
  let program =
    Longlived.program ~stats cfg ~held_counter:(ref 0) ~rng:(Xoshiro.create seed)
  in
  let report =
    Executor.run ~adversary:(Adversary.round_robin ())
      { Executor.memory; programs = [| program |]; label = "longlived-capped" }
  in
  (!stats, report)

let test_probe_cap_exhaustion_recovers () =
  let stats, _ = run_prefilled ~prefill:(fun m -> m - 1) ~rounds:3 ~seed:21L in
  check Alcotest.int "all acquires still complete" 3 stats.Longlived.acquires;
  check Alcotest.int "all releases follow" 3 stats.Longlived.releases;
  check Alcotest.bool "cap tripped at least once" true
    (stats.Longlived.cap_exhaustions >= 1);
  check Alcotest.int "no aborts: the sweep recovered" 0
    stats.Longlived.aborted_sessions

let test_probe_cap_abort_graceful () =
  let stats, report = run_prefilled ~prefill:(fun m -> m) ~rounds:3 ~seed:22L in
  check Alcotest.int "no acquires in a full namespace" 0 stats.Longlived.acquires;
  check Alcotest.bool "cap tripped" true (stats.Longlived.cap_exhaustions >= 1);
  check Alcotest.int "aborted exactly once" 1 stats.Longlived.aborted_sessions;
  check Alcotest.int "returns no name" 0 (Report.named_count report)

let test_probe_cap_config () =
  let cfg = Longlived.make_config ~probe_cap:7 ~sessions:4 () in
  check Alcotest.int "explicit cap" 7 (Longlived.probe_cap cfg);
  let cfg' = Longlived.make_config ~sessions:4 () in
  check Alcotest.int "default cap is 64m" (64 * Longlived.namespace cfg')
    (Longlived.probe_cap cfg');
  Alcotest.check_raises "bad cap"
    (Invalid_argument "Longlived.make_config: probe_cap must be >= 0") (fun () ->
      ignore (Longlived.make_config ~probe_cap:(-1) ~sessions:4 ()))

let qcheck_longlived_exclusion =
  QCheck.Test.make ~count:25 ~name:"long-lived churn never violates exclusion"
    QCheck.(triple small_int (int_range 1 32) (int_range 1 6))
    (fun (seed, sessions, rounds) ->
      let _, stats, _ =
        run_churn ~sessions ~rounds ~epsilon:0.5 ~seed:(Int64.of_int seed) ()
      in
      stats.Longlived.release_failures = 0
      && stats.Longlived.max_held <= sessions
      && stats.Longlived.acquires = sessions * rounds)

let tests =
  [
    ( "longlived",
      [
        Alcotest.test_case "release owner-checked" `Quick test_release_owner_checked;
        Alcotest.test_case "release then reacquire" `Quick test_release_then_reacquire;
        Alcotest.test_case "config validation" `Quick test_config_validation;
        Alcotest.test_case "namespace larger" `Quick test_namespace_strictly_larger;
        Alcotest.test_case "cycles complete" `Quick test_all_cycles_complete;
        Alcotest.test_case "mutual exclusion" `Quick test_mutual_exclusion_bound;
        Alcotest.test_case "probe costs" `Quick test_probe_costs_reasonable;
        Alcotest.test_case "under adversaries" `Quick test_under_adversaries;
        Alcotest.test_case "probe-cap exhaustion recovers" `Quick test_probe_cap_exhaustion_recovers;
        Alcotest.test_case "probe-cap abort graceful" `Quick test_probe_cap_abort_graceful;
        Alcotest.test_case "probe-cap config" `Quick test_probe_cap_config;
        QCheck_alcotest.to_alcotest qcheck_longlived_exclusion;
      ] );
  ]
