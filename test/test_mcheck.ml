(* Tests for the bounded model checker: directed execution, the
   analytic schedule-count vector, sleep-set pruning cross-checks,
   detection + shrinking of seeded broken algorithms, and the tier-1
   roster. *)

module Program = Renaming_sched.Program
module Op = Renaming_sched.Op
module Memory = Renaming_sched.Memory
module Executor = Renaming_sched.Executor
module Report = Renaming_sched.Report
module Trace = Renaming_sched.Trace
module Directed = Renaming_sched.Directed
module Monitor = Renaming_faults.Monitor
module Shrink = Renaming_faults.Shrink
module Retry = Renaming_faults.Retry
module Mcheck = Renaming_mcheck.Mcheck
module Roster = Renaming_harness.Mcheck_roster

let check = Alcotest.check
open Program.Syntax

let instance ~namespace ~label programs = { Executor.memory = Memory.create ~namespace (); programs; label }

let target ?(check_ownership = false) ~label build =
  { Mcheck.t_name = label; t_build = build; t_check_ownership = check_ownership }

let bounds ?(preemptions = 2) ?(crashes = 0) ?(recoveries = 0) ?(faults = 0) ?(sleep = true) () =
  {
    Mcheck.default_bounds with
    Mcheck.b_preemptions = preemptions;
    b_crashes = crashes;
    b_recoveries = recoveries;
    b_faults = faults;
    b_sleep = sleep;
  }

(* --- directed execution --- *)

let solo_tas reg =
  let* _won = Program.tas_name reg in
  Program.return None

let test_directed_strict_divergence () =
  let inst () = instance ~namespace:1 ~label:"solo" [| solo_tas 0 |] in
  let run = Directed.run ~strict:true ~prefix:[ Directed.Step 5 ] (inst ()) in
  (match run.Directed.outcome with
  | Directed.Raised (Trace.Divergence d) ->
    check Alcotest.int "diverged at decision 0" 0 d.Trace.at;
    check Alcotest.bool "expected schedule of pid 5" true (d.Trace.expected = `Schedule 5);
    check Alcotest.(list int) "runnable" [ 0 ] d.Trace.runnable
  | _ -> Alcotest.fail "expected Trace.Divergence");
  (* An infeasible Fault (pending op not faultable) also diverges. *)
  let yield_first =
    let* () = Program.yield in
    solo_tas 0
  in
  let run =
    Directed.run ~strict:true ~prefix:[ Directed.Fault 0 ]
      (instance ~namespace:1 ~label:"yield-first" [| yield_first |])
  in
  match run.Directed.outcome with
  | Directed.Raised (Trace.Divergence d) ->
    check Alcotest.bool "expected fault of pid 0" true (d.Trace.expected = `Fault 0)
  | _ -> Alcotest.fail "expected Trace.Divergence for unfaultable op"

let test_directed_permissive_drops () =
  let inst () = instance ~namespace:2 ~label:"pair" [| solo_tas 0; solo_tas 1 |] in
  let run = Directed.run ~prefix:[ Directed.Step 7; Directed.Step 1 ] (inst ()) in
  check Alcotest.int "infeasible choice dropped" 1 run.Directed.dropped;
  (match run.Directed.outcome with
  | Directed.Finished report -> check Alcotest.bool "completed" true (not (Report.is_livelock report))
  | Directed.Raised _ -> Alcotest.fail "unexpected exception");
  (* The feasible part of the prefix was honoured. *)
  check Alcotest.bool "first decision steps pid 1" true
    (Array.length run.Directed.taken > 0 && run.Directed.taken.(0) = Directed.Step 1)

let test_directed_same_prefix_same_execution () =
  let inst () = instance ~namespace:2 ~label:"pair" [| solo_tas 0; solo_tas 1 |] in
  let go () =
    let r = Directed.run ~prefix:[ Directed.Step 1 ] (inst ()) in
    Array.to_list r.Directed.taken
  in
  check Alcotest.bool "deterministic" true (go () = go ())

let test_choice_strings_roundtrip () =
  List.iter
    (fun c ->
      match Directed.choice_of_string (Directed.choice_to_string c) with
      | Ok c' -> check Alcotest.bool "round-trips" true (c = c')
      | Error e -> Alcotest.failf "parse failed: %s" e)
    [ Directed.Step 0; Directed.Fault 3; Directed.Crash 12; Directed.Recover 1 ];
  check Alcotest.bool "garbage rejected" true
    (Result.is_error (Directed.choice_of_string "teleport 3"));
  check Alcotest.bool "bad pid rejected" true (Result.is_error (Directed.choice_of_string "step x"))

(* --- the analytic schedule-count vector ---

   Two processes, two TAS steps each, all on the same register: every
   operation conflicts, so sleep sets must prune nothing and the
   schedule counts are exactly the by-hand interleaving counts
   {aabb,bbaa} / +{abba,baab} / +{abab,baba} at preemption bounds
   0 / 1 / 2. *)

let two_tas =
  let* _ = Program.tas_name 0 in
  let* _ = Program.tas_name 0 in
  Program.return None

let conflict_target =
  target ~label:"two-tas" (fun () -> instance ~namespace:1 ~label:"two-tas" [| two_tas; two_tas |])

let test_schedule_counts_match_enumeration () =
  List.iter
    (fun (preemptions, expected) ->
      List.iter
        (fun sleep ->
          let stats = Mcheck.check ~bounds:(bounds ~preemptions ~sleep ()) conflict_target in
          check Alcotest.int
            (Printf.sprintf "bound %d (sleep %b)" preemptions sleep)
            expected stats.Mcheck.s_schedules;
          check Alcotest.int "fully dependent ops: nothing slept" 0 stats.Mcheck.s_slept;
          check Alcotest.int "no violations" 0 stats.Mcheck.s_violations)
        [ true; false ])
    [ (0, 2); (1, 4); (2, 6) ]

(* --- sleep sets prune commuting interleavings, soundly --- *)

let disjoint_target =
  (* p0 touches registers {0,2}, p1 touches {1,3}: every pair of
     operations commutes, so of the 6 interleavings only the
     Mazurkiewicz representatives need exploring. *)
  let p0 =
    let* _ = Program.tas_name 0 in
    let* _ = Program.tas_name 2 in
    Program.return None
  in
  let p1 =
    let* _ = Program.tas_name 1 in
    let* _ = Program.tas_name 3 in
    Program.return None
  in
  target ~label:"disjoint" (fun () -> instance ~namespace:4 ~label:"disjoint" [| p0; p1 |])

let test_sleep_sets_prune_but_stay_sound () =
  let with_sleep = Mcheck.check ~bounds:(bounds ~preemptions:2 ~sleep:true ()) disjoint_target in
  let without = Mcheck.check ~bounds:(bounds ~preemptions:2 ~sleep:false ()) disjoint_target in
  check Alcotest.int "unpruned count is the full interleaving count" 6 without.Mcheck.s_schedules;
  check Alcotest.bool "sleep prunes something" true
    (with_sleep.Mcheck.s_schedules < without.Mcheck.s_schedules);
  check Alcotest.bool "sleep records pruned alternatives" true (with_sleep.Mcheck.s_slept > 0);
  check Alcotest.int "no violations with sleep" 0 with_sleep.Mcheck.s_violations;
  check Alcotest.int "no violations without sleep" 0 without.Mcheck.s_violations

(* --- a seeded broken algorithm is found and shrunk --- *)

(* Check-then-act double claim: correct solo, broken when the two reads
   interleave before either TAS lands. *)
let racy_claim =
  let* set = Program.read_name 0 in
  if set then Program.return None
  else
    let* _won = Program.tas_name 0 in
    Program.return (Some 0)

let broken_target =
  target ~label:"broken-double-claim" (fun () ->
      instance ~namespace:2 ~label:"broken-double-claim" [| racy_claim; racy_claim |])

let test_mcheck_finds_and_shrinks_double_claim () =
  List.iter
    (fun sleep ->
      let stats = Mcheck.check ~bounds:(bounds ~preemptions:2 ~sleep ()) broken_target in
      check Alcotest.bool
        (Printf.sprintf "violations found (sleep %b)" sleep)
        true
        (stats.Mcheck.s_violations > 0);
      match stats.Mcheck.s_cases with
      | [] -> Alcotest.fail "no case recorded"
      | c :: _ -> (
        check Alcotest.string "kind" "duplicate-name" c.Mcheck.v_kind;
        match c.Mcheck.v_shrunk with
        | None -> Alcotest.fail "violation was not shrunk"
        | Some r ->
          (* 1-minimal: read of one process, then a context switch to
             the other's read.  Exactly two choices. *)
          check Alcotest.int "minimal counterexample" 2 (List.length r.Shrink.r_choices);
          check Alcotest.string "same failure after shrinking" "duplicate-name"
            r.Shrink.r_failure.Shrink.f_kind;
          (* The minimal trace replays deterministically. *)
          let input =
            {
              Shrink.label = "broken-double-claim";
              build = broken_target.Mcheck.t_build;
              check_ownership = false;
              choices = r.Shrink.r_choices;
              max_ticks = 1_000;
              tau_cadence = 1;
            }
          in
          let kind () =
            match Shrink.execute input r.Shrink.r_choices with
            | _, Some f -> f.Shrink.f_kind
            | _, None -> "no-failure"
          in
          check Alcotest.string "replays" "duplicate-name" (kind ());
          check Alcotest.string "deterministically" (kind ()) (kind ())))
    [ true; false ]

(* --- the fault branch: a claim based on a faulted TAS --- *)

let fault_claimer =
  (* One retry attempt, then claim regardless: correct in fault-free
     runs (solo TAS always wins), unbacked when the TAS is faulted. *)
  let* _won = Retry.tas_name ~policy:(Retry.make_policy ~attempts:1 ()) 0 in
  Program.return (Some 0)

let fault_target =
  target ~check_ownership:true ~label:"fault-claimer" (fun () ->
      instance ~namespace:1 ~label:"fault-claimer" [| fault_claimer |])

let test_mcheck_fault_injection_finds_unbacked_claim () =
  (* Without a fault budget the instance is clean... *)
  let clean = Mcheck.check ~bounds:(bounds ~preemptions:1 ()) fault_target in
  check Alcotest.int "fault-free: no violations" 0 clean.Mcheck.s_violations;
  (* ...with one injectable fault the checker must find the unbacked
     claim and shrink it to the single Fault decision. *)
  let stats = Mcheck.check ~bounds:(bounds ~preemptions:1 ~faults:1 ()) fault_target in
  check Alcotest.bool "violation found" true (stats.Mcheck.s_violations > 0);
  match stats.Mcheck.s_cases with
  | { Mcheck.v_kind = "unbacked-claim"; v_shrunk = Some r; _ } :: _ ->
    check Alcotest.bool "minimal trace is the single fault" true
      (r.Shrink.r_choices = [ Directed.Fault 0 ])
  | c :: _ -> Alcotest.failf "unexpected first case kind %s" c.Mcheck.v_kind
  | [] -> Alcotest.fail "no case recorded"

(* --- crash/recovery decisions explore without false positives --- *)

let test_mcheck_crash_recovery_clean () =
  let scans =
    target ~check_ownership:true ~label:"scan-crash" (fun () ->
        instance ~namespace:2 ~label:"scan-crash"
          [| Program.scan_names ~first:0 ~count:2; Program.scan_names ~first:0 ~count:2 |])
  in
  let pure = Mcheck.check ~bounds:(bounds ~preemptions:1 ()) scans in
  let crashy = Mcheck.check ~bounds:(bounds ~preemptions:1 ~crashes:1 ~recoveries:1 ()) scans in
  check Alcotest.int "pure schedules clean" 0 pure.Mcheck.s_violations;
  check Alcotest.int "crash/recovery schedules clean" 0 crashy.Mcheck.s_violations;
  check Alcotest.bool "crash decisions widen the tree" true
    (crashy.Mcheck.s_schedules > pure.Mcheck.s_schedules)

(* --- the roster --- *)

let test_roster_tier1_clean () =
  List.iter
    (fun e ->
      let stats = Roster.run_entry e in
      check Alcotest.int (e.Roster.e_name ^ ": zero violations") 0 stats.Mcheck.s_violations;
      check Alcotest.int (e.Roster.e_name ^ ": zero livelocks") 0 stats.Mcheck.s_livelocks;
      check Alcotest.bool (e.Roster.e_name ^ ": explored") true (stats.Mcheck.s_schedules > 0);
      check Alcotest.bool (e.Roster.e_name ^ ": exhaustive (not capped)") true
        (not stats.Mcheck.s_capped))
    (Roster.tier1 ())

let test_roster_deterministic_json () =
  match Roster.tier1 () with
  | [] -> Alcotest.fail "empty tier-1 roster"
  | e :: _ ->
    let go () = Mcheck.to_json [ Roster.run_entry e ] in
    check Alcotest.string "identical stats json" (go ()) (go ())

let test_roster_builder_resolves () =
  check Alcotest.bool "roster entry resolves" true
    (Roster.builder ~name:"uniform-probing-n3" ~n:3 <> None);
  check Alcotest.bool "chaos algorithm resolves" true
    (Roster.builder ~name:"loose-geometric" ~n:16 <> None);
  check Alcotest.bool "unknown name rejected" true (Roster.builder ~name:"no-such" ~n:4 = None)

let tests =
  [
    ( "mcheck.directed",
      [
        Alcotest.test_case "strict divergence" `Quick test_directed_strict_divergence;
        Alcotest.test_case "permissive drops" `Quick test_directed_permissive_drops;
        Alcotest.test_case "same prefix, same execution" `Quick
          test_directed_same_prefix_same_execution;
        Alcotest.test_case "choice strings round-trip" `Quick test_choice_strings_roundtrip;
      ] );
    ( "mcheck.explore",
      [
        Alcotest.test_case "schedule counts match enumeration" `Quick
          test_schedule_counts_match_enumeration;
        Alcotest.test_case "sleep sets prune soundly" `Quick test_sleep_sets_prune_but_stay_sound;
        Alcotest.test_case "finds and shrinks double claim" `Quick
          test_mcheck_finds_and_shrinks_double_claim;
        Alcotest.test_case "fault injection finds unbacked claim" `Quick
          test_mcheck_fault_injection_finds_unbacked_claim;
        Alcotest.test_case "crash/recovery exploration clean" `Quick
          test_mcheck_crash_recovery_clean;
      ] );
    ( "mcheck.roster",
      [
        Alcotest.test_case "tier-1 roster clean" `Slow test_roster_tier1_clean;
        Alcotest.test_case "deterministic json" `Quick test_roster_deterministic_json;
        Alcotest.test_case "builder resolves names" `Quick test_roster_builder_resolves;
      ] );
  ]
