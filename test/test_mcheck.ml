(* Tests for the bounded model checker: directed execution, the
   analytic schedule-count vector, sleep-set pruning cross-checks,
   detection + shrinking of seeded broken algorithms, and the tier-1
   roster. *)

module Program = Renaming_sched.Program
module Op = Renaming_sched.Op
module Memory = Renaming_sched.Memory
module Executor = Renaming_sched.Executor
module Report = Renaming_sched.Report
module Trace = Renaming_sched.Trace
module Directed = Renaming_sched.Directed
module Monitor = Renaming_faults.Monitor
module Shrink = Renaming_faults.Shrink
module Retry = Renaming_faults.Retry
module Mcheck = Renaming_mcheck.Mcheck
module Races = Renaming_mcheck.Races
module Wakeup = Renaming_mcheck.Wakeup
module Roster = Renaming_harness.Mcheck_roster

let check = Alcotest.check
open Program.Syntax

let instance ~namespace ~label programs = { Executor.memory = Memory.create ~namespace (); programs; label }

let target ?(check_ownership = false) ~label build =
  { Mcheck.t_name = label; t_build = build; t_check_ownership = check_ownership }

let bounds ?(preemptions = 2) ?(crashes = 0) ?(recoveries = 0) ?(faults = 0) ?(sleep = true) () =
  {
    Mcheck.default_bounds with
    Mcheck.b_preemptions = preemptions;
    b_crashes = crashes;
    b_recoveries = recoveries;
    b_faults = faults;
    b_sleep = sleep;
  }

(* --- directed execution --- *)

let solo_tas reg =
  let* _won = Program.tas_name reg in
  Program.return None

let test_directed_strict_divergence () =
  let inst () = instance ~namespace:1 ~label:"solo" [| solo_tas 0 |] in
  let run = Directed.run ~strict:true ~prefix:[ Directed.Step 5 ] (inst ()) in
  (match run.Directed.outcome with
  | Directed.Raised (Trace.Divergence d) ->
    check Alcotest.int "diverged at decision 0" 0 d.Trace.at;
    check Alcotest.bool "expected schedule of pid 5" true (d.Trace.expected = `Schedule 5);
    check Alcotest.(list int) "runnable" [ 0 ] d.Trace.runnable
  | _ -> Alcotest.fail "expected Trace.Divergence");
  (* An infeasible Fault (pending op not faultable) also diverges. *)
  let yield_first =
    let* () = Program.yield in
    solo_tas 0
  in
  let run =
    Directed.run ~strict:true ~prefix:[ Directed.Fault 0 ]
      (instance ~namespace:1 ~label:"yield-first" [| yield_first |])
  in
  match run.Directed.outcome with
  | Directed.Raised (Trace.Divergence d) ->
    check Alcotest.bool "expected fault of pid 0" true (d.Trace.expected = `Fault 0)
  | _ -> Alcotest.fail "expected Trace.Divergence for unfaultable op"

let test_directed_permissive_drops () =
  let inst () = instance ~namespace:2 ~label:"pair" [| solo_tas 0; solo_tas 1 |] in
  let run = Directed.run ~prefix:[ Directed.Step 7; Directed.Step 1 ] (inst ()) in
  check Alcotest.int "infeasible choice dropped" 1 run.Directed.dropped;
  (match run.Directed.outcome with
  | Directed.Finished report -> check Alcotest.bool "completed" true (not (Report.is_livelock report))
  | Directed.Raised _ -> Alcotest.fail "unexpected exception");
  (* The feasible part of the prefix was honoured. *)
  check Alcotest.bool "first decision steps pid 1" true
    (Array.length run.Directed.taken > 0 && run.Directed.taken.(0) = Directed.Step 1)

let test_directed_same_prefix_same_execution () =
  let inst () = instance ~namespace:2 ~label:"pair" [| solo_tas 0; solo_tas 1 |] in
  let go () =
    let r = Directed.run ~prefix:[ Directed.Step 1 ] (inst ()) in
    Array.to_list r.Directed.taken
  in
  check Alcotest.bool "deterministic" true (go () = go ())

let test_choice_strings_roundtrip () =
  List.iter
    (fun c ->
      match Directed.choice_of_string (Directed.choice_to_string c) with
      | Ok c' -> check Alcotest.bool "round-trips" true (c = c')
      | Error e -> Alcotest.failf "parse failed: %s" e)
    [ Directed.Step 0; Directed.Fault 3; Directed.Crash 12; Directed.Recover 1 ];
  check Alcotest.bool "garbage rejected" true
    (Result.is_error (Directed.choice_of_string "teleport 3"));
  check Alcotest.bool "bad pid rejected" true (Result.is_error (Directed.choice_of_string "step x"))

(* --- the analytic schedule-count vector ---

   Two processes, two TAS steps each, all on the same register: every
   operation conflicts, so sleep sets must prune nothing and the
   schedule counts are exactly the by-hand interleaving counts
   {aabb,bbaa} / +{abba,baab} / +{abab,baba} at preemption bounds
   0 / 1 / 2. *)

let two_tas =
  let* _ = Program.tas_name 0 in
  let* _ = Program.tas_name 0 in
  Program.return None

let conflict_target =
  target ~label:"two-tas" (fun () -> instance ~namespace:1 ~label:"two-tas" [| two_tas; two_tas |])

let test_schedule_counts_match_enumeration () =
  List.iter
    (fun (preemptions, expected) ->
      (* The legacy sleep-set DFS, with and without pruning... *)
      List.iter
        (fun sleep ->
          let stats =
            Mcheck.check ~engine:`Legacy_dfs ~bounds:(bounds ~preemptions ~sleep ())
              conflict_target
          in
          check Alcotest.int
            (Printf.sprintf "legacy bound %d (sleep %b)" preemptions sleep)
            expected stats.Mcheck.s_schedules;
          check Alcotest.int "fully dependent ops: nothing pruned" 0 stats.Mcheck.s_pruned;
          check Alcotest.int "no violations" 0 stats.Mcheck.s_violations)
        [ true; false ];
      (* ...and source-DPOR must land on exactly the same analytic
         vector: with every operation pair dependent there is nothing to
         reduce, only races to reverse within the preemption budget. *)
      let stats = Mcheck.check ~bounds:(bounds ~preemptions ()) conflict_target in
      check Alcotest.int
        (Printf.sprintf "dpor bound %d" preemptions)
        expected stats.Mcheck.s_schedules;
      check Alcotest.int "no violations (dpor)" 0 stats.Mcheck.s_violations)
    [ (0, 2); (1, 4); (2, 6) ]

(* --- sleep sets prune commuting interleavings, soundly --- *)

let disjoint_target =
  (* p0 touches registers {0,2}, p1 touches {1,3}: every pair of
     operations commutes, so of the 6 interleavings only the
     Mazurkiewicz representatives need exploring. *)
  let p0 =
    let* _ = Program.tas_name 0 in
    let* _ = Program.tas_name 2 in
    Program.return None
  in
  let p1 =
    let* _ = Program.tas_name 1 in
    let* _ = Program.tas_name 3 in
    Program.return None
  in
  target ~label:"disjoint" (fun () -> instance ~namespace:4 ~label:"disjoint" [| p0; p1 |])

let test_sleep_sets_prune_but_stay_sound () =
  let legacy sleep =
    Mcheck.check ~engine:`Legacy_dfs ~bounds:(bounds ~preemptions:2 ~sleep ()) disjoint_target
  in
  let with_sleep = legacy true in
  let without = legacy false in
  check Alcotest.int "unpruned count is the full interleaving count" 6 without.Mcheck.s_schedules;
  check Alcotest.bool "sleep prunes something" true
    (with_sleep.Mcheck.s_schedules < without.Mcheck.s_schedules);
  check Alcotest.bool "sleep records pruned alternatives" true (with_sleep.Mcheck.s_pruned > 0);
  check Alcotest.int "no violations with sleep" 0 with_sleep.Mcheck.s_violations;
  check Alcotest.int "no violations without sleep" 0 without.Mcheck.s_violations;
  (* Fully independent processes have no races at all, so source-DPOR
     explores exactly one schedule: the initial execution. *)
  let dpor = Mcheck.check ~bounds:(bounds ~preemptions:2 ()) disjoint_target in
  check Alcotest.int "dpor explores a single representative" 1 dpor.Mcheck.s_schedules;
  check Alcotest.int "dpor detects no races" 0 dpor.Mcheck.s_races;
  check Alcotest.int "no violations (dpor)" 0 dpor.Mcheck.s_violations

(* --- a seeded broken algorithm is found and shrunk --- *)

(* Check-then-act double claim: correct solo, broken when the two reads
   interleave before either TAS lands. *)
let racy_claim =
  let* set = Program.read_name 0 in
  if set then Program.return None
  else
    let* _won = Program.tas_name 0 in
    Program.return (Some 0)

let broken_target =
  target ~label:"broken-double-claim" (fun () ->
      instance ~namespace:2 ~label:"broken-double-claim" [| racy_claim; racy_claim |])

let test_mcheck_finds_and_shrinks_double_claim () =
  List.iter
    (fun engine ->
      let stats = Mcheck.check ~engine ~bounds:(bounds ~preemptions:2 ()) broken_target in
      check Alcotest.bool
        (Printf.sprintf "violations found (%s)" (Mcheck.engine_name engine))
        true
        (stats.Mcheck.s_violations > 0);
      match stats.Mcheck.s_cases with
      | [] -> Alcotest.fail "no case recorded"
      | c :: _ -> (
        check Alcotest.string "kind" "duplicate-name" c.Mcheck.v_kind;
        match c.Mcheck.v_shrunk with
        | None -> Alcotest.fail "violation was not shrunk"
        | Some r ->
          (* 1-minimal: read of one process, then a context switch to
             the other's read.  Exactly two choices. *)
          check Alcotest.int "minimal counterexample" 2 (List.length r.Shrink.r_choices);
          check Alcotest.string "same failure after shrinking" "duplicate-name"
            r.Shrink.r_failure.Shrink.f_kind;
          (* The minimal trace replays deterministically. *)
          let input =
            {
              Shrink.label = "broken-double-claim";
              build = broken_target.Mcheck.t_build;
              check_ownership = false;
              choices = r.Shrink.r_choices;
              max_ticks = 1_000;
              tau_cadence = 1;
            }
          in
          let kind () =
            match Shrink.execute input r.Shrink.r_choices with
            | _, Some f -> f.Shrink.f_kind
            | _, None -> "no-failure"
          in
          check Alcotest.string "replays" "duplicate-name" (kind ());
          check Alcotest.string "deterministically" (kind ()) (kind ())))
    [ `Dpor; `Legacy_dfs ]

(* --- the fault branch: a claim based on a faulted TAS --- *)

let fault_claimer =
  (* One retry attempt, then claim regardless: correct in fault-free
     runs (solo TAS always wins), unbacked when the TAS is faulted. *)
  let* _won = Retry.tas_name ~policy:(Retry.make_policy ~attempts:1 ()) 0 in
  Program.return (Some 0)

let fault_target =
  target ~check_ownership:true ~label:"fault-claimer" (fun () ->
      instance ~namespace:1 ~label:"fault-claimer" [| fault_claimer |])

let test_mcheck_fault_injection_finds_unbacked_claim () =
  (* Without a fault budget the instance is clean... *)
  let clean = Mcheck.check ~bounds:(bounds ~preemptions:1 ()) fault_target in
  check Alcotest.int "fault-free: no violations" 0 clean.Mcheck.s_violations;
  (* ...with one injectable fault the checker must find the unbacked
     claim and shrink it to the single Fault decision. *)
  let stats = Mcheck.check ~bounds:(bounds ~preemptions:1 ~faults:1 ()) fault_target in
  check Alcotest.bool "violation found" true (stats.Mcheck.s_violations > 0);
  match stats.Mcheck.s_cases with
  | { Mcheck.v_kind = "unbacked-claim"; v_shrunk = Some r; _ } :: _ ->
    check Alcotest.bool "minimal trace is the single fault" true
      (r.Shrink.r_choices = [ Directed.Fault 0 ])
  | c :: _ -> Alcotest.failf "unexpected first case kind %s" c.Mcheck.v_kind
  | [] -> Alcotest.fail "no case recorded"

(* --- crash/recovery decisions explore without false positives --- *)

let test_mcheck_crash_recovery_clean () =
  let scans =
    target ~check_ownership:true ~label:"scan-crash" (fun () ->
        instance ~namespace:2 ~label:"scan-crash"
          [| Program.scan_names ~first:0 ~count:2; Program.scan_names ~first:0 ~count:2 |])
  in
  let pure = Mcheck.check ~bounds:(bounds ~preemptions:1 ()) scans in
  let crashy = Mcheck.check ~bounds:(bounds ~preemptions:1 ~crashes:1 ~recoveries:1 ()) scans in
  check Alcotest.int "pure schedules clean" 0 pure.Mcheck.s_violations;
  check Alcotest.int "crash/recovery schedules clean" 0 crashy.Mcheck.s_violations;
  check Alcotest.bool "crash decisions widen the tree" true
    (crashy.Mcheck.s_schedules > pure.Mcheck.s_schedules)

(* --- race detection on hand-built traces ---

   The DPOR engine's correctness reduces to [Races] reporting exactly
   the reversible races of an execution, so these pin the relation on
   traces small enough to enumerate by hand. *)

let tas i = Op.Tas_name i

let sorted_races rs =
  List.sort compare (List.map (fun r -> (r.Races.r_first, r.Races.r_second)) rs)

let test_races_hand_built () =
  (* Two adjacent dependent steps of different pids: one race. *)
  let _, rs =
    Races.races ~pids:2 [| Races.step ~pid:0 (tas 0); Races.step ~pid:1 (tas 0) |]
  in
  check Alcotest.(list (pair int int)) "adjacent conflict races" [ (0, 1) ] (sorted_races rs);
  (* Same pid is program order, never a race. *)
  let _, rs =
    Races.races ~pids:2 [| Races.step ~pid:0 (tas 0); Races.step ~pid:0 (tas 0) |]
  in
  check Alcotest.(list (pair int int)) "program order" [] (sorted_races rs);
  (* Independent operations never race. *)
  let _, rs =
    Races.races ~pids:2 [| Races.step ~pid:0 (tas 0); Races.step ~pid:1 (tas 1) |]
  in
  check Alcotest.(list (pair int int)) "disjoint registers" [] (sorted_races rs);
  (* A happens-before chain through a middle conflicting step makes the
     outer pair non-reversible: only the two adjacent races remain. *)
  let _, rs =
    Races.races ~pids:3
      [| Races.step ~pid:0 (tas 0); Races.step ~pid:1 (tas 0); Races.step ~pid:2 (tas 0) |]
  in
  check Alcotest.(list (pair int int)) "hb chain blocks outer pair" [ (0, 1); (1, 2) ]
    (sorted_races rs);
  (* An injection barrier is dependent with everything: no race is ever
     detected across it, in either direction. *)
  let _, rs =
    Races.races ~pids:3
      [| Races.step ~pid:0 (tas 0); Races.barrier ~pid:1; Races.step ~pid:2 (tas 0) |]
  in
  check Alcotest.(list (pair int int)) "barrier blocks races" [] (sorted_races rs);
  (* [from] skips races already handled on the explored prefix. *)
  let events =
    [| Races.step ~pid:0 (tas 0); Races.step ~pid:1 (tas 0); Races.step ~pid:0 (tas 1);
       Races.step ~pid:1 (tas 1) |]
  in
  let _, all = Races.races ~pids:2 events in
  let _, tail = Races.races ~from:3 ~pids:2 events in
  check Alcotest.(list (pair int int)) "all races" [ (0, 1); (2, 3) ] (sorted_races all);
  check Alcotest.(list (pair int int)) "from skips settled prefix" [ (2, 3) ]
    (sorted_races tail)

let test_races_witness () =
  (* p1's independent step between the racing pair is not ordered after
     the race's first event, so the witness carries it along. *)
  let events =
    [| Races.step ~pid:0 (tas 0); Races.step ~pid:1 (tas 1); Races.step ~pid:1 (tas 0) |]
  in
  let clocks, rs = Races.races ~pids:2 events in
  check Alcotest.(list (pair int int)) "one race" [ (0, 2) ] (sorted_races rs);
  let r = List.hd rs in
  check Alcotest.(list int) "witness keeps the independent step" [ 1; 2 ]
    (Races.witness ~clocks events r);
  (* Same shape, but the middle step belongs to the first event's pid:
     program order puts it after the race, so the witness is just the
     second event. *)
  let events =
    [| Races.step ~pid:0 (tas 0); Races.step ~pid:0 (tas 1); Races.step ~pid:1 (tas 0) |]
  in
  let clocks, rs = Races.races ~pids:2 events in
  check Alcotest.(list (pair int int)) "one race" [ (0, 2) ] (sorted_races rs);
  check Alcotest.(list int) "witness drops hb-after events" [ 2 ]
    (Races.witness ~clocks events (List.hd rs))

let test_races_clocks () =
  let events =
    [| Races.step ~pid:0 (tas 0); Races.step ~pid:1 (tas 1); Races.step ~pid:1 (tas 0) |]
  in
  let clocks = Races.clocks ~pids:2 events in
  let hb = Races.happens_before ~clocks events in
  check Alcotest.bool "reflexive" true (hb 1 1);
  check Alcotest.bool "program order" true (hb 1 2);
  check Alcotest.bool "dependence order" true (hb 0 2);
  check Alcotest.bool "independent steps unordered" false (hb 0 1)

(* --- wakeup-tree invariants --- *)

let test_wakeup_insert_and_order () =
  let t = Wakeup.create () in
  check Alcotest.bool "fresh tree empty" true (Wakeup.is_empty t);
  check Alcotest.bool "empty sequence covered" true
    (Wakeup.insert t [] = Wakeup.Covered);
  check Alcotest.bool "first sequence inserted" true
    (Wakeup.insert t [ (0, tas 0) ] = Wakeup.Inserted);
  check Alcotest.bool "duplicate covered" true
    (Wakeup.insert t [ (0, tas 0) ] = Wakeup.Covered);
  check Alcotest.bool "second sequence inserted" true
    (Wakeup.insert t [ (1, tas 1) ] = Wakeup.Inserted);
  (* Branch order is insertion order, never rearranged. *)
  check Alcotest.(list int) "insertion order preserved" [ 0; 1 ]
    (List.map (fun b -> b.Wakeup.b_pid) (Wakeup.branches t));
  check Alcotest.int "size counts every branch" 2 (Wakeup.size t);
  (match Wakeup.pop t with
  | Some b -> check Alcotest.int "pop is leftmost" 0 b.Wakeup.b_pid
  | None -> Alcotest.fail "pop on non-empty tree");
  check Alcotest.(list int) "pop removes the branch" [ 1 ]
    (List.map (fun b -> b.Wakeup.b_pid) (Wakeup.branches t))

let test_wakeup_weak_initial_coverage () =
  (* A sequence whose weak initial matches an existing leaf is covered:
     the scheduled branch already reaches an equivalent state. *)
  let t = Wakeup.create () in
  check Alcotest.bool "seed branch" true (Wakeup.insert t [ (0, tas 0) ] = Wakeup.Inserted);
  check Alcotest.bool "weak-initial-equivalent covered" true
    (Wakeup.insert t [ (1, tas 1); (0, tas 0) ] = Wakeup.Covered);
  (* A dependent chain is NOT equivalent and must be planted whole. *)
  let t = Wakeup.create () in
  check Alcotest.bool "chain inserted" true
    (Wakeup.insert t [ (0, tas 0); (1, tas 0) ] = Wakeup.Inserted);
  check Alcotest.int "chain is nested" 2 (Wakeup.size t);
  check Alcotest.bool "prefix of a chain covered" true
    (Wakeup.insert t [ (0, tas 0) ] = Wakeup.Covered);
  (* The reversal is a genuinely new state: appended to the right. *)
  check Alcotest.bool "reversal inserted" true
    (Wakeup.insert t [ (1, tas 0); (0, tas 0) ] = Wakeup.Inserted);
  check Alcotest.(list int) "reversal appended rightmost" [ 0; 1 ]
    (List.map (fun b -> b.Wakeup.b_pid) (Wakeup.branches t))

let test_wakeup_weak_initials () =
  (* The first event of each pid counts while everything before it is
     independent; a dependent predecessor blocks it. *)
  let seq = [ (1, tas 1); (0, tas 0); (2, tas 1) ] in
  check Alcotest.(list int) "weak initial pids" [ 1; 0 ]
    (List.map fst (Wakeup.weak_initials seq));
  check Alcotest.bool "the first event is a weak initial" true
    (Wakeup.weak_initial_mem seq ~pid:1 ~op:(tas 1));
  check Alcotest.bool "an independent later event is a weak initial" true
    (Wakeup.weak_initial_mem seq ~pid:0 ~op:(tas 0));
  check Alcotest.bool "a dependent later event is not" false
    (Wakeup.weak_initial_mem seq ~pid:2 ~op:(tas 1))

(* --- DPOR never revisits a schedule --- *)

let test_dpor_schedules_unique () =
  List.iter
    (fun (label, tgt, b) ->
      let seen = Hashtbl.create 64 in
      let dups = ref 0 in
      let on_schedule choices =
        let key =
          String.concat ";"
            (Array.to_list (Array.map Directed.choice_to_string choices))
        in
        if Hashtbl.mem seen key then incr dups else Hashtbl.add seen key ();
      in
      let stats = Mcheck.check ~bounds:b ~shrink:false ~on_schedule tgt in
      check Alcotest.int (label ^ ": no schedule revisited") 0 !dups;
      check Alcotest.int
        (label ^ ": every counted schedule distinct")
        stats.Mcheck.s_schedules (Hashtbl.length seen))
    [
      ("two-tas", conflict_target, bounds ~preemptions:2 ());
      ("broken-double-claim", broken_target, bounds ~preemptions:2 ());
      ("fault-claimer", fault_target, bounds ~preemptions:1 ~faults:1 ());
    ]

(* --- engine differential: random programs, identical verdicts ---

   Both engines bound preemptions with the same cost model, so with a
   budget generous enough to cover every interleaving of these small
   programs they must agree on whether a violation exists — and DPOR
   must never explore more schedules than the unpruned enumeration. *)

let qcheck_engine_differential =
  let build_proc (ops, (tail_kind, reg)) =
    let tail =
      match tail_kind mod 3 with
      | 0 -> Program.return None
      | 1 ->
        (* check-then-act double claim: racy by construction *)
        let* set = Program.read_name reg in
        if set then Program.return None
        else
          let* _won = Program.tas_name reg in
          Program.return (Some reg)
      | _ ->
        let* won = Program.tas_name reg in
        Program.return (if won then Some reg else None)
    in
    List.fold_right
      (fun (kind, r) acc ->
        match kind mod 3 with
        | 0 ->
          let* _ = Program.tas_name r in
          acc
        | 1 ->
          let* _ = Program.read_name r in
          acc
        | _ ->
          let* () = Program.yield in
          acc)
      ops tail
  in
  let proc_gen =
    QCheck.(
      pair
        (list_of_size (QCheck.Gen.int_bound 3) (pair (int_bound 2) (int_bound 1)))
        (pair (int_bound 2) (int_bound 1)))
  in
  QCheck.Test.make ~count:30 ~name:"dpor and legacy dfs agree on random programs"
    QCheck.(pair proc_gen proc_gen)
    (fun (spec0, spec1) ->
      let tgt =
        target ~label:"differential" (fun () ->
            instance ~namespace:2 ~label:"differential"
              [| build_proc spec0; build_proc spec1 |])
      in
      let b = bounds ~preemptions:10 () in
      let dpor = Mcheck.check ~engine:`Dpor ~bounds:b ~shrink:false tgt in
      let legacy = Mcheck.check ~engine:`Legacy_dfs ~bounds:b ~shrink:false tgt in
      let unpruned =
        Mcheck.check ~engine:`Legacy_dfs ~bounds:(bounds ~preemptions:10 ~sleep:false ())
          ~shrink:false tgt
      in
      if (dpor.Mcheck.s_violations > 0) <> (legacy.Mcheck.s_violations > 0) then
        QCheck.Test.fail_reportf "verdicts differ: dpor %d vs legacy %d violations"
          dpor.Mcheck.s_violations legacy.Mcheck.s_violations;
      if dpor.Mcheck.s_schedules > unpruned.Mcheck.s_schedules then
        QCheck.Test.fail_reportf "dpor explored %d schedules > %d unpruned"
          dpor.Mcheck.s_schedules unpruned.Mcheck.s_schedules;
      true)

(* --- the roster --- *)

let test_roster_tier1_clean () =
  List.iter
    (fun e ->
      let stats = Roster.run_entry e in
      check Alcotest.int (e.Roster.e_name ^ ": zero violations") 0 stats.Mcheck.s_violations;
      check Alcotest.int (e.Roster.e_name ^ ": zero livelocks") 0 stats.Mcheck.s_livelocks;
      check Alcotest.bool (e.Roster.e_name ^ ": explored") true (stats.Mcheck.s_schedules > 0);
      check Alcotest.bool (e.Roster.e_name ^ ": exhaustive (not capped)") true
        (not stats.Mcheck.s_capped))
    (Roster.tier1 ())

let test_roster_deterministic_json () =
  match Roster.tier1 () with
  | [] -> Alcotest.fail "empty tier-1 roster"
  | e :: _ ->
    let go () = Mcheck.to_json [ Roster.run_entry e ] in
    check Alcotest.string "identical stats json" (go ()) (go ())

let test_roster_builder_resolves () =
  check Alcotest.bool "roster entry resolves" true
    (Roster.builder ~name:"uniform-probing-n3" ~n:3 <> None);
  check Alcotest.bool "chaos algorithm resolves" true
    (Roster.builder ~name:"loose-geometric" ~n:16 <> None);
  check Alcotest.bool "unknown name rejected" true (Roster.builder ~name:"no-such" ~n:4 = None)

let tests =
  [
    ( "mcheck.directed",
      [
        Alcotest.test_case "strict divergence" `Quick test_directed_strict_divergence;
        Alcotest.test_case "permissive drops" `Quick test_directed_permissive_drops;
        Alcotest.test_case "same prefix, same execution" `Quick
          test_directed_same_prefix_same_execution;
        Alcotest.test_case "choice strings round-trip" `Quick test_choice_strings_roundtrip;
      ] );
    ( "mcheck.explore",
      [
        Alcotest.test_case "schedule counts match enumeration" `Quick
          test_schedule_counts_match_enumeration;
        Alcotest.test_case "sleep sets prune soundly" `Quick test_sleep_sets_prune_but_stay_sound;
        Alcotest.test_case "finds and shrinks double claim" `Quick
          test_mcheck_finds_and_shrinks_double_claim;
        Alcotest.test_case "fault injection finds unbacked claim" `Quick
          test_mcheck_fault_injection_finds_unbacked_claim;
        Alcotest.test_case "crash/recovery exploration clean" `Quick
          test_mcheck_crash_recovery_clean;
      ] );
    ( "mcheck.races",
      [
        Alcotest.test_case "hand-built traces" `Quick test_races_hand_built;
        Alcotest.test_case "reordering witnesses" `Quick test_races_witness;
        Alcotest.test_case "vector clocks" `Quick test_races_clocks;
      ] );
    ( "mcheck.wakeup",
      [
        Alcotest.test_case "insert and branch order" `Quick test_wakeup_insert_and_order;
        Alcotest.test_case "weak-initial coverage" `Quick test_wakeup_weak_initial_coverage;
        Alcotest.test_case "weak initials" `Quick test_wakeup_weak_initials;
      ] );
    ( "mcheck.dpor",
      [
        Alcotest.test_case "no schedule revisited" `Quick test_dpor_schedules_unique;
        QCheck_alcotest.to_alcotest qcheck_engine_differential;
      ] );
    ( "mcheck.roster",
      [
        Alcotest.test_case "tier-1 roster clean" `Slow test_roster_tier1_clean;
        Alcotest.test_case "deterministic json" `Quick test_roster_deterministic_json;
        Alcotest.test_case "builder resolves names" `Quick test_roster_builder_resolves;
      ] );
  ]
