(* Direct unit tests for the scheduling adversaries: views are built by
   hand so each strategy's decision rule is pinned down without running
   a whole simulation. *)

module Adversary = Renaming_sched.Adversary
module Memory = Renaming_sched.Memory
module Op = Renaming_sched.Op

let check = Alcotest.check

let view ?(time = 0) ?(crashed = []) ?(ops = []) ~memory runnable =
  let runnable = Array.of_list runnable in
  {
    Adversary.time;
    runnable_count = Array.length runnable;
    runnable_nth = (fun i -> runnable.(i));
    is_runnable = (fun pid -> Array.exists (Int.equal pid) runnable);
    is_crashed = (fun pid -> List.mem pid crashed);
    pending_op = (fun pid -> match List.assoc_opt pid ops with Some op -> op | None -> Op.Yield);
    memory;
  }

let decision_to_string = function
  | Adversary.Schedule p -> Printf.sprintf "schedule %d" p
  | Adversary.Crash p -> Printf.sprintf "crash %d" p
  | Adversary.Recover p -> Printf.sprintf "recover %d" p

let decision =
  Alcotest.testable (fun ppf d -> Format.pp_print_string ppf (decision_to_string d)) ( = )

let test_round_robin_fair () =
  let memory = Memory.create ~namespace:4 () in
  let v = view ~memory [ 0; 1; 2 ] in
  let a = Adversary.round_robin () in
  let counts = Array.make 3 0 in
  for _ = 1 to 300 do
    match a.Adversary.decide v with
    | Adversary.Schedule p -> counts.(p) <- counts.(p) + 1
    | d -> Alcotest.failf "round-robin made a non-schedule decision %s" (decision_to_string d)
  done;
  Array.iteri
    (fun pid c -> check Alcotest.int (Printf.sprintf "pid %d scheduled equally" pid) 100 c)
    counts;
  (* The sweep is cyclic, not merely balanced. *)
  let b = Adversary.round_robin () in
  let order = List.init 6 (fun _ -> b.Adversary.decide v) in
  check (Alcotest.list decision) "cyclic order"
    Adversary.[ Schedule 0; Schedule 1; Schedule 2; Schedule 0; Schedule 1; Schedule 2 ]
    order

let test_round_robin_fresh_cursor () =
  (* Each call to [round_robin ()] must return an independent scheduler:
     a shared cursor would couple unrelated executions. *)
  let memory = Memory.create ~namespace:4 () in
  let v = view ~memory [ 0; 1 ] in
  let a = Adversary.round_robin () in
  ignore (a.Adversary.decide v);
  let b = Adversary.round_robin () in
  check decision "fresh scheduler starts at index 0" (Adversary.Schedule 0) (b.Adversary.decide v)

let test_adaptive_contention_prefers_doomed_tas () =
  let memory = Memory.create ~namespace:4 () in
  (* Name 0 is already taken, so pid 2's pending TAS on it is wasted. *)
  ignore (Memory.apply memory ~pid:7 (Op.Tas_name 0));
  let ops = [ (1, Op.Tas_name 1); (2, Op.Tas_name 0) ] in
  let v = view ~memory ~ops [ 1; 2 ] in
  check decision "schedules the doomed TAS" (Adversary.Schedule 2)
    (Adversary.adaptive_contention.Adversary.decide v);
  (* Nobody doomed: falls back to the lowest runnable pid. *)
  let v' = view ~memory ~ops:[ (1, Op.Tas_name 1); (2, Op.Tas_name 2) ] [ 1; 2 ] in
  check decision "fallback is lowest pid" (Adversary.Schedule 1)
    (Adversary.adaptive_contention.Adversary.decide v')

let test_colluding_groups_shared_target () =
  let memory = Memory.create ~namespace:4 () in
  (* Pids 1 and 3 both target free register 2; pid 0 targets register 1
     alone.  The colluding adversary runs the largest group, lowest pid
     first, so all but one of its TAS operations lose. *)
  let ops = [ (0, Op.Tas_name 1); (1, Op.Tas_name 2); (3, Op.Tas_name 2) ] in
  let v = view ~memory ~ops [ 0; 1; 3 ] in
  check decision "schedules the shared-target group" (Adversary.Schedule 1)
    (Adversary.colluding.Adversary.decide v);
  (* No shared targets: lowest runnable pid. *)
  let v' = view ~memory ~ops:[ (0, Op.Tas_name 1); (1, Op.Tas_name 2) ] [ 0; 1 ] in
  check decision "fallback is lowest pid" (Adversary.Schedule 0)
    (Adversary.colluding.Adversary.decide v')

let test_with_crashes_respects_budget () =
  let memory = Memory.create ~namespace:4 () in
  (* Two crash entries: the adversary must issue exactly two crashes, at
     or after their scheduled times, and then behave like its base. *)
  let a = Adversary.with_crashes ~base:(Adversary.round_robin ()) ~crash_times:[ (0, 1); (2, 2) ] in
  check decision "first crash fires" (Adversary.Crash 1)
    (a.Adversary.decide (view ~memory ~time:0 [ 0; 1; 2 ]));
  (* Time 1: the second crash (due at 2) is not due yet. *)
  check decision "not due yet" (Adversary.Schedule 0)
    (a.Adversary.decide (view ~memory ~time:1 [ 0; 2 ]));
  check decision "second crash fires" (Adversary.Crash 2)
    (a.Adversary.decide (view ~memory ~time:2 [ 0; 2 ]));
  (* Budget exhausted: only schedules from here on. *)
  for t = 3 to 20 do
    match a.Adversary.decide (view ~memory ~time:t [ 0 ]) with
    | Adversary.Schedule _ -> ()
    | d -> Alcotest.failf "crash budget exceeded at t=%d: %s" t (decision_to_string d)
  done

let test_with_crashes_never_kills_last_runnable () =
  let memory = Memory.create ~namespace:4 () in
  let a = Adversary.with_crashes ~base:(Adversary.round_robin ()) ~crash_times:[ (0, 0) ] in
  (* Pid 0 is the only runnable process: the crash must be skipped
     (dropped, not deferred), leaving a plain schedule. *)
  check decision "skips the crash" (Adversary.Schedule 0)
    (a.Adversary.decide (view ~memory ~time:5 [ 0 ]));
  (* The skipped entry is dropped, not deferred: no crash later either. *)
  (match a.Adversary.decide (view ~memory ~time:6 [ 0; 1 ]) with
  | Adversary.Schedule _ -> ()
  | d -> Alcotest.failf "dropped crash came back: %s" (decision_to_string d))

let test_with_crash_recovery_schedule () =
  let memory = Memory.create ~namespace:4 () in
  let a =
    Adversary.with_crash_recovery ~base:(Adversary.round_robin ()) ~crashes:[ (0, 1) ]
      ~recover_after:3
  in
  check decision "crash fires" (Adversary.Crash 1)
    (a.Adversary.decide (view ~memory ~time:0 [ 0; 1; 2 ]));
  (* Recovery is due at time 3, not before. *)
  check decision "too early to recover" (Adversary.Schedule 0)
    (a.Adversary.decide (view ~memory ~time:2 ~crashed:[ 1 ] [ 0; 2 ]));
  check decision "recovery fires" (Adversary.Recover 1)
    (a.Adversary.decide (view ~memory ~time:3 ~crashed:[ 1 ] [ 0; 2 ]));
  Alcotest.check_raises "recover_after must be positive"
    (Invalid_argument "Adversary.with_crash_recovery: recover_after must be >= 1") (fun () ->
      ignore
        (Adversary.with_crash_recovery ~base:(Adversary.round_robin ()) ~crashes:[]
           ~recover_after:0))

let tests =
  [
    ( "sched.adversary",
      [
        Alcotest.test_case "round-robin is fair and cyclic" `Quick test_round_robin_fair;
        Alcotest.test_case "round-robin cursor is per-instance" `Quick test_round_robin_fresh_cursor;
        Alcotest.test_case "adaptive contention wastes doomed TAS" `Quick
          test_adaptive_contention_prefers_doomed_tas;
        Alcotest.test_case "colluding targets shared registers" `Quick
          test_colluding_groups_shared_target;
        Alcotest.test_case "crash injection respects the budget" `Quick
          test_with_crashes_respects_budget;
        Alcotest.test_case "never crashes the last runnable" `Quick
          test_with_crashes_never_kills_last_runnable;
        Alcotest.test_case "crash-recovery timing" `Quick test_with_crash_recovery_schedule;
      ] );
  ]
