(* Tests for the fault-injection subsystem: retry combinators under
   injection, injector determinism, crash-recovery in the executor, the
   online safety monitor (including negative tests that seed violations)
   and a deterministic mini chaos campaign. *)

module Program = Renaming_sched.Program
module Op = Renaming_sched.Op
module Memory = Renaming_sched.Memory
module Adversary = Renaming_sched.Adversary
module Executor = Renaming_sched.Executor
module Report = Renaming_sched.Report
module Stream = Renaming_rng.Stream
module Xoshiro = Renaming_rng.Xoshiro
module Retry = Renaming_faults.Retry
module Clock = Renaming_clock.Clock
module Injector = Renaming_faults.Injector
module Monitor = Renaming_faults.Monitor
module Campaign = Renaming_faults.Campaign
module Chaos = Renaming_harness.Chaos
module Assignment = Renaming_shm.Assignment

let check = Alcotest.check
open Program.Syntax

let run_single ?inject ?on_event program ~namespace =
  let memory = Memory.create ~namespace () in
  let instance = { Executor.memory; programs = [| program |]; label = "test" } in
  (Executor.run ?inject ?on_event ~adversary:(Adversary.round_robin ()) instance, memory)

(* Fault the first [k] faultable operations, whatever they are. *)
let fault_first k =
  let left = ref k in
  fun ~time:_ ~pid:_ ~op ->
    if Op.faultable op && !left > 0 then begin
      decr left;
      true
    end
    else false

(* --- retry --- *)

let test_backoff_delays () =
  let policy = Retry.make_policy ~attempts:8 ~base_delay:1 ~max_delay:64 () in
  check Alcotest.(list int) "doubling, capped"
    [ 1; 2; 4; 8; 16; 32; 64; 64 ]
    (List.map (fun a -> Retry.backoff_delay policy ~attempt:a) [ 1; 2; 3; 4; 5; 6; 7; 8 ])

let test_jittered_delay_bounds () =
  let policy = Retry.make_policy ~attempts:8 ~base_delay:1 ~max_delay:64 () in
  let rng = Xoshiro.create 99L in
  (* Walk a long decorrelated chain: every step stays inside the policy
     envelope [base, max] and inside the decorrelation cap 3*prev (with
     prev clamped up to base, so a zero seed cannot pin the chain). *)
  let prev = ref 0 in
  for _ = 1 to 2_000 do
    let d = Retry.jittered_delay policy ~rng ~prev:!prev in
    check Alcotest.bool "at least base delay" true (d >= 1);
    check Alcotest.bool "at most max delay" true (d <= 64);
    check Alcotest.bool "within 3x the previous delay" true (d <= 3 * max 1 !prev);
    prev := d
  done;
  (* The chain must actually spread: a degenerate implementation that
     always answers base would pass the bounds above. *)
  let rng = Xoshiro.create 7L in
  let seen = Hashtbl.create 16 in
  let p = ref 1 in
  for _ = 1 to 200 do
    p := Retry.jittered_delay policy ~rng ~prev:!p;
    Hashtbl.replace seen !p ()
  done;
  check Alcotest.bool "delays spread over the range" true (Hashtbl.length seen >= 8);
  (* Determinism: the same rng seed walks the same chain. *)
  let walk seed =
    let rng = Xoshiro.create seed in
    let p = ref 1 in
    List.init 50 (fun _ ->
        p := Retry.jittered_delay policy ~rng ~prev:!p;
        !p)
  in
  check Alcotest.(list int) "same seed, same chain" (walk 21L) (walk 21L)

let test_retry_tas_wins_after_faults () =
  let program =
    let* won = Retry.tas_name 0 in
    Program.return (if won then Some 0 else None)
  in
  let report, memory = run_single program ~namespace:1 ~inject:(fault_first 3) in
  check Alcotest.(option int) "eventually wins" (Some 0)
    report.Report.assignment.Assignment.names.(0);
  check Alcotest.bool "register really owned" true
    (Renaming_shm.Tas_array.owner (Memory.names memory) 0 = Some 0);
  (* 3 faulted attempts + backoff yields (1+2+4) + winning attempt. *)
  check Alcotest.int "step cost" 11 report.Report.ticks

let test_retry_tas_exhaustion_is_lost () =
  (* Every attempt faults: the TAS must report lost, not claim name 0. *)
  let policy = Retry.make_policy ~attempts:3 () in
  let program =
    let* won = Retry.tas_name ~policy 0 in
    Program.return (if won then Some 0 else None)
  in
  let report, memory = run_single program ~namespace:1 ~inject:(fun ~time:_ ~pid:_ ~op -> Op.faultable op) in
  check Alcotest.int "no name claimed" 0 (Report.named_count report);
  check Alcotest.bool "register untouched" true
    (Renaming_shm.Tas_array.owner (Memory.names memory) 0 = None)

let test_retry_time_budget_on_virtual_clock () =
  (* Attempts are plentiful, but a 3-second budget on a unit-step
     virtual clock exhausts after the third faulted attempt: the clock
     is read once when the combinator starts (0.) and once per fault
     (1., 2., 3. — and 3.0 >= budget). *)
  let policy = Retry.make_policy ~attempts:1000 ~base_delay:0 ~time_budget:3.0 () in
  let program =
    let* won = Retry.tas_name ~policy ~clock:(Clock.virtual_ ()) 0 in
    Program.return (if won then Some 0 else None)
  in
  let report, memory =
    run_single program ~namespace:1 ~inject:(fun ~time:_ ~pid:_ ~op -> Op.faultable op)
  in
  check Alcotest.int "gave up in the safe direction" 0 (Report.named_count report);
  check Alcotest.bool "register untouched" true
    (Renaming_shm.Tas_array.owner (Memory.names memory) 0 = None);
  check Alcotest.int "budget cut the retries to three attempts" 3 report.Report.ticks

let test_retry_time_budget_inert_without_clock () =
  (* The same budget under the default absent clock never binds: all
     attempts are available and the TAS wins once the faults stop. *)
  let policy = Retry.make_policy ~attempts:5 ~base_delay:0 ~time_budget:3.0 () in
  let program =
    let* won = Retry.tas_name ~policy 0 in
    Program.return (if won then Some 0 else None)
  in
  let report, _ = run_single program ~namespace:1 ~inject:(fault_first 4) in
  check Alcotest.(option int) "budget never binds, tas wins" (Some 0)
    report.Report.assignment.Assignment.names.(0);
  check Alcotest.int "all five attempts used" 5 report.Report.ticks;
  Alcotest.check_raises "budget must be positive"
    (Invalid_argument "Retry.make_policy: time_budget must be > 0") (fun () ->
      ignore (Retry.make_policy ~time_budget:0. ()))

let test_retry_read_exhaustion_is_set () =
  (* A read whose retries exhaust reports "set" — the safe direction: a
     scanner skips the register instead of claiming on no information. *)
  let policy = Retry.make_policy ~attempts:2 () in
  let program =
    let* set = Retry.read_name ~policy 0 in
    Program.return (if set then None else Some 0)
  in
  let report, _ =
    run_single program ~namespace:1 ~inject:(fun ~time:_ ~pid:_ ~op -> Op.faultable op)
  in
  check Alcotest.int "treated as set, nothing claimed" 0 (Report.named_count report)

let test_retry_scan_skips_faulty_register () =
  (* A register whose TAS retries exhaust is skipped as if taken; the
     scan takes the next free one. *)
  let policy = Retry.make_policy ~attempts:2 () in
  let program = Retry.scan_names ~policy ~first:0 ~count:2 () in
  let inject ~time:_ ~pid:_ ~op = match op with Op.Tas_name 0 -> true | _ -> false in
  let report, memory = run_single program ~namespace:2 ~inject in
  check Alcotest.(option int) "skips faulty register, takes next" (Some 1)
    report.Report.assignment.Assignment.names.(0);
  check Alcotest.bool "faulty register never set" true
    (Renaming_shm.Tas_array.owner (Memory.names memory) 0 = None)

let test_retry_fault_free_cost_matches_plain () =
  (* Zero overhead when nothing faults: same ticks as the plain scan. *)
  let plain = Program.scan_names ~first:0 ~count:4 in
  let retried = Retry.scan_names ~first:0 ~count:4 () in
  let r1, _ = run_single plain ~namespace:4 in
  let r2, _ = run_single retried ~namespace:4 in
  check Alcotest.int "identical step cost" r1.Report.ticks r2.Report.ticks;
  check Alcotest.(option int) "identical result"
    r1.Report.assignment.Assignment.names.(0)
    r2.Report.assignment.Assignment.names.(0)

(* --- injectors --- *)

let test_injector_deterministic () =
  let hits rate seed =
    let inj = Injector.bernoulli ~rate ~rng:(Xoshiro.create seed) in
    List.init 200 (fun i -> inj ~time:i ~pid:0 ~op:(Op.Tas_name 0))
  in
  check Alcotest.(list bool) "same seed, same faults" (hits 0.3 7L) (hits 0.3 7L);
  check Alcotest.bool "some faults at rate 0.3" true (List.mem true (hits 0.3 7L));
  check Alcotest.bool "no faults at rate 0" false (List.mem true (hits 0. 7L))

let test_injector_respects_faultable () =
  let inj = Injector.bernoulli ~rate:1.0 ~rng:(Xoshiro.create 7L) in
  check Alcotest.bool "faults tas" true (inj ~time:0 ~pid:0 ~op:(Op.Tas_name 0));
  check Alcotest.bool "never faults yield" false (inj ~time:0 ~pid:0 ~op:Op.Yield);
  check Alcotest.bool "never faults owned-name" false (inj ~time:0 ~pid:0 ~op:(Op.Owned_name 0));
  check Alcotest.bool "never faults tau" false
    (inj ~time:0 ~pid:0 ~op:(Op.Tau_submit { reg = 0; bit = 0 }))

let test_injector_window_and_counting () =
  let inj = Injector.window ~from_:10 ~until:20 ~rate:1.0 ~rng:(Xoshiro.create 7L) in
  check Alcotest.bool "before window" false (inj ~time:9 ~pid:0 ~op:(Op.Tas_name 0));
  check Alcotest.bool "inside window" true (inj ~time:10 ~pid:0 ~op:(Op.Tas_name 0));
  check Alcotest.bool "after window" false (inj ~time:20 ~pid:0 ~op:(Op.Tas_name 0));
  let counted, count = Injector.counting (Injector.bernoulli ~rate:1.0 ~rng:(Xoshiro.create 7L)) in
  ignore (counted ~time:0 ~pid:0 ~op:(Op.Tas_name 0));
  ignore (counted ~time:1 ~pid:0 ~op:Op.Yield);
  ignore (counted ~time:2 ~pid:0 ~op:(Op.Read_name 0));
  check Alcotest.int "two hits counted" 2 (count ())

(* --- crash recovery in the executor --- *)

(* pid 0 wins register 0 then spins on yields so the adversary can crash
   it mid-flight; after recovery the default preamble must re-discover
   the win instead of leaking it. *)
let rec idle k =
  if k = 0 then Program.return () else Program.bind Program.yield (fun () -> idle (k - 1))

let win_then_linger ~spin =
  let* won = Program.tas_name 0 in
  let* () = idle spin in
  Program.return (if won then Some 0 else None)

(* Companion that outlives the crash window (both crash wrappers refuse
   to kill the last runnable process). *)
let linger_then_scan ~spin ~count =
  let* () = idle spin in
  Program.scan_names ~first:0 ~count

let test_recovered_process_keeps_won_name () =
  let memory = Memory.create ~namespace:2 () in
  let instance =
    {
      Executor.memory;
      programs = [| win_then_linger ~spin:6; linger_then_scan ~spin:20 ~count:2 |];
      label = "recovery-test";
    }
  in
  let adversary =
    Adversary.with_crash_recovery ~base:(Adversary.round_robin ())
      ~crashes:[ (4, 0) ] ~recover_after:3
  in
  let report = Executor.run ~adversary instance in
  check Alcotest.(list int) "pid 0 recovered" [ 0 ] report.Report.recovered;
  check Alcotest.(list int) "nobody dead at end" [] report.Report.crashed;
  check Alcotest.(option int) "kept the won name" (Some 0)
    report.Report.assignment.Assignment.names.(0);
  check Alcotest.(option int) "scanner got the other" (Some 1)
    report.Report.assignment.Assignment.names.(1);
  check Alcotest.bool "sound" true (Report.is_sound report)

let test_permanent_crash_still_reported () =
  let memory = Memory.create ~namespace:2 () in
  let instance =
    {
      Executor.memory;
      programs = [| win_then_linger ~spin:6; linger_then_scan ~spin:20 ~count:2 |];
      label = "crash-test";
    }
  in
  let adversary =
    Adversary.with_crashes ~base:(Adversary.round_robin ()) ~crash_times:[ (4, 0) ]
  in
  let report = Executor.run ~adversary instance in
  check Alcotest.(list int) "pid 0 dead" [ 0 ] report.Report.crashed;
  check Alcotest.(list int) "nobody recovered" [] report.Report.recovered;
  (* The won register stays burnt; the scanner must route around it. *)
  check Alcotest.(option int) "scanner avoids burnt name" (Some 1)
    report.Report.assignment.Assignment.names.(1)

let test_recovery_under_monitor () =
  (* Same recovery scenario with the monitor attached: no violation. *)
  let memory = Memory.create ~namespace:2 () in
  let instance =
    {
      Executor.memory;
      programs = [| win_then_linger ~spin:6; linger_then_scan ~spin:20 ~count:2 |];
      label = "recovery-monitored";
    }
  in
  let monitor = Monitor.create ~check_ownership:true ~memory ~processes:2 () in
  let adversary =
    Adversary.with_crash_recovery ~base:(Adversary.round_robin ())
      ~crashes:[ (4, 0) ] ~recover_after:3
  in
  let report = Executor.run ~on_event:(Monitor.hook monitor) ~adversary instance in
  Monitor.finalize monitor report;
  check Alcotest.int "no violations" 0 (Monitor.violation_count monitor)

(* --- monitor negative tests: seeded violations must be caught --- *)

let expect_violation name f =
  match f () with
  | exception Monitor.Violation _ -> ()
  | _ -> Alcotest.failf "%s: expected Monitor.Violation" name

let test_monitor_catches_duplicate_name () =
  (* Mutation: both processes return name 0 (the second one lies). *)
  let memory = Memory.create ~namespace:4 () in
  let liar =
    let* won = Program.tas_name 0 in
    ignore won;
    Program.return (Some 0)
  in
  let instance = { Executor.memory; programs = [| liar; liar |]; label = "dup-mutation" } in
  let monitor = Monitor.create ~memory ~processes:2 () in
  expect_violation "duplicate name" (fun () ->
      Executor.run ~on_event:(Monitor.hook monitor) ~adversary:(Adversary.round_robin ()) instance);
  check Alcotest.bool "violation recorded" true (Monitor.violation_count monitor > 0)

let test_monitor_catches_out_of_range () =
  let memory = Memory.create ~namespace:4 () in
  let instance =
    { Executor.memory; programs = [| Program.return (Some 99) |]; label = "range-mutation" }
  in
  let monitor = Monitor.create ~memory ~processes:1 () in
  expect_violation "out of range" (fun () ->
      Executor.run ~on_event:(Monitor.hook monitor) ~adversary:(Adversary.round_robin ()) instance)

let test_monitor_catches_unbacked_claim () =
  (* The ownership check: returning a name whose register the process
     never won. *)
  let memory = Memory.create ~namespace:4 () in
  let instance =
    { Executor.memory; programs = [| Program.return (Some 2) |]; label = "ownership-mutation" }
  in
  let monitor = Monitor.create ~check_ownership:true ~memory ~processes:1 () in
  expect_violation "unbacked claim" (fun () ->
      Executor.run ~on_event:(Monitor.hook monitor) ~adversary:(Adversary.round_robin ()) instance)

let test_monitor_catches_step_after_crash () =
  (* Synthetic event feed: activity by a crashed process. *)
  let memory = Memory.create ~namespace:2 () in
  let monitor = Monitor.create ~memory ~processes:2 () in
  Monitor.hook monitor (Executor.Crashed { time = 0; pid = 1 });
  expect_violation "step after crash" (fun () ->
      Monitor.hook monitor
        (Executor.Stepped { time = 1; pid = 1; op = Op.Tas_name 0; response = Op.Bool true }))

let test_monitor_catches_recover_of_live () =
  let memory = Memory.create ~namespace:2 () in
  let monitor = Monitor.create ~memory ~processes:2 () in
  expect_violation "recover of live pid" (fun () ->
      Monitor.hook monitor (Executor.Recovered { time = 0; pid = 0 }))

let test_monitor_violation_carries_trace () =
  let memory = Memory.create ~namespace:2 () in
  let monitor = Monitor.create ~memory ~processes:2 () in
  Monitor.hook monitor
    (Executor.Stepped { time = 0; pid = 0; op = Op.Tas_name 0; response = Op.Bool true });
  Monitor.hook monitor (Executor.Crashed { time = 1; pid = 0 });
  (match
     Monitor.hook monitor (Executor.Returned { time = 2; pid = 0; value = Some 0 })
   with
  | exception Monitor.Violation { kind; message } ->
    check Alcotest.string "structured kind" "return-while-crashed" kind;
    check Alcotest.bool "message embeds trace excerpt" true
      (let contains s sub =
         let n = String.length s and m = String.length sub in
         let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
         go 0
       in
       contains message "crash")
  | _ -> Alcotest.fail "expected Monitor.Violation")

let test_monitor_violation_kinds () =
  (* Every check reports a stable machine-readable kind — the shrinker's
     "same failure" oracle. *)
  let kind_of f =
    match f () with
    | exception Monitor.Violation { kind; _ } -> kind
    | _ -> "no-violation"
  in
  let fresh ?(check_ownership = true) () =
    Monitor.create ~check_ownership ~memory:(Memory.create ~namespace:2 ()) ~processes:2 ()
  in
  check Alcotest.string "duplicate-name" "duplicate-name"
    (kind_of (fun () ->
         (* Ownership checking off: the synthetic feed never touches the
            registers, and unbacked-claim would otherwise fire first. *)
         let m = fresh ~check_ownership:false () in
         Monitor.hook m (Executor.Stepped { time = 0; pid = 0; op = Op.Tas_name 0; response = Op.Bool true });
         Monitor.hook m (Executor.Returned { time = 1; pid = 0; value = Some 0 });
         Monitor.hook m (Executor.Returned { time = 2; pid = 1; value = Some 0 })));
  check Alcotest.string "double-crash" "double-crash"
    (kind_of (fun () ->
         let m = fresh () in
         Monitor.hook m (Executor.Crashed { time = 0; pid = 0 });
         Monitor.hook m (Executor.Crashed { time = 1; pid = 0 })));
  check Alcotest.string "recover-of-live" "recover-of-live"
    (kind_of (fun () ->
         let m = fresh () in
         Monitor.hook m (Executor.Recovered { time = 0; pid = 0 })));
  check Alcotest.string "out-of-range-name" "out-of-range-name"
    (kind_of (fun () ->
         let m = fresh () in
         Monitor.hook m (Executor.Returned { time = 0; pid = 0; value = Some 7 })));
  check Alcotest.string "unbacked-claim" "unbacked-claim"
    (kind_of (fun () ->
         let m = fresh () in
         Monitor.hook m (Executor.Returned { time = 0; pid = 0; value = Some 1 })))

(* --- satellite 4: soundness property across algorithms, adversaries,
   crash-recovery, seeds --- *)

let algorithm_builders ~n =
  List.map (fun a -> (a.Campaign.algo_name, a.Campaign.build)) (Chaos.algorithms ~n)

let test_property_no_duplicates_under_adversity () =
  let adversaries =
    [
      ("adaptive-contention", fun () -> Adversary.adaptive_contention);
      ("colluding", fun () -> Adversary.colluding);
      ( "crash-recovery",
        fun () ->
          Adversary.with_crash_recovery ~base:(Adversary.round_robin ())
            ~crashes:[ (5, 1); (9, 3); (13, 5) ] ~recover_after:6 );
    ]
  in
  List.iter
    (fun (algo_name, build) ->
      List.iter
        (fun (adv_name, make_adv) ->
          Array.iter
            (fun seed ->
              let report =
                Executor.run ~max_ticks:500_000 ~adversary:(make_adv ()) (build ~seed)
              in
              if not (Report.is_sound report) then
                Alcotest.failf "%s under %s seed %Ld: duplicate or out-of-range name" algo_name
                  adv_name seed;
              if Report.is_livelock report then
                Alcotest.failf "%s under %s seed %Ld: livelock" algo_name adv_name seed)
            (Renaming_harness.Seeds.take 3))
        adversaries)
    (algorithm_builders ~n:12)

(* --- campaign --- *)

let test_campaign_tier1_zero_violations () =
  let summary = Campaign.run (Chaos.tier1_spec ()) in
  check Alcotest.int "zero violations" 0 summary.Campaign.total_violations;
  check Alcotest.int "zero livelocks" 0 summary.Campaign.total_livelocks;
  check Alcotest.bool "faults were injected" true (summary.Campaign.total_injected > 0);
  check Alcotest.bool "recoveries happened" true
    (List.exists (fun c -> c.Campaign.c_recovered > 0) summary.Campaign.cells)

let test_campaign_deterministic () =
  let spec =
    { (Chaos.tier1_spec ()) with Campaign.fault_rates = [ 0.1 ]; seeds = Renaming_harness.Seeds.take 1 }
  in
  let s1 = Campaign.run spec and s2 = Campaign.run spec in
  check Alcotest.string "identical json" (Campaign.to_json s1) (Campaign.to_json s2)

let test_campaign_json_shape () =
  let spec =
    { (Chaos.tier1_spec ()) with Campaign.fault_rates = [ 0.05 ]; seeds = Renaming_harness.Seeds.take 1 }
  in
  let json = Campaign.to_json (Campaign.run spec) in
  let contains sub =
    let n = String.length json and m = String.length sub in
    let rec go i = i + m <= n && (String.sub json i m = sub || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "has totals" true (contains "\"total_violations\":0");
  check Alcotest.bool "has cells" true (contains "\"cells\":[");
  check Alcotest.bool "has degradation" true (contains "\"degradation\":");
  check Alcotest.bool "has repros array" true (contains "\"repros\":[")

(* --- auto-shrinking of campaign violations --- *)

module Shrink = Renaming_faults.Shrink
module Directed = Renaming_sched.Directed

(* Deliberately broken double-claim: check-then-act without trusting the
   TAS result.  Correct when run solo; two interleaved reads both see
   the register free and both claim name 0. *)
let racy_claim =
  let* set = Program.read_name 0 in
  if set then Program.return None
  else
    let* _won = Program.tas_name 0 in
    Program.return (Some 0)

let broken_algorithm =
  {
    Campaign.algo_name = "broken-double-claim";
    build =
      (fun ~seed:_ ->
        {
          Executor.memory = Memory.create ~namespace:2 ();
          programs = [| racy_claim; racy_claim |];
          label = "broken-double-claim";
        });
    check_ownership = false;
  }

let broken_spec =
  {
    Campaign.algorithms = [ broken_algorithm ];
    adversaries =
      [ { Campaign.adv_name = "round-robin"; make_adversary = (fun ~seed:_ -> Adversary.round_robin ()) } ];
    patterns = [ Campaign.no_crashes ];
    fault_rates = [ 0. ];
    seeds = Renaming_harness.Seeds.take 1;
    max_ticks = 1_000;
  }

let test_campaign_autoshrinks_violations () =
  (* Round-robin interleaves the two reads, so the campaign must catch
     the duplicate claim and hand a 1-minimal repro back. *)
  let summary = Campaign.run broken_spec in
  check Alcotest.int "violation detected" 1 summary.Campaign.total_violations;
  match List.concat_map (fun c -> c.Campaign.c_repros) summary.Campaign.cells with
  | [ repro ] ->
    check Alcotest.string "kind" "duplicate-name" repro.Shrink.rp_kind;
    (* 1-minimal: one process reads, then the other is scheduled before
       the first TAS lands.  Two choices, no more. *)
    check Alcotest.int "minimal repro has two choices" 2 (List.length repro.Shrink.rp_choices);
    (* The artifact replays deterministically to the same violation. *)
    let input =
      {
        Shrink.label = "broken-double-claim";
        build = (fun () -> broken_algorithm.Campaign.build ~seed:repro.Shrink.rp_seed);
        check_ownership = false;
        choices = repro.Shrink.rp_choices;
        max_ticks = 1_000;
        tau_cadence = 1;
      }
    in
    let replay () =
      match Shrink.execute input repro.Shrink.rp_choices with
      | _, Some f -> f.Shrink.f_kind
      | _, None -> "no-failure"
    in
    check Alcotest.string "replays to the violation" "duplicate-name" (replay ());
    check Alcotest.string "replay is deterministic" (replay ()) (replay ())
  | repros -> Alcotest.failf "expected exactly one repro, got %d" (List.length repros)

let test_shrink_none_when_input_passes () =
  let input =
    {
      Shrink.label = "clean";
      build =
        (fun () ->
          {
            Executor.memory = Memory.create ~namespace:2 ();
            programs = [| Program.scan_names ~first:0 ~count:2; Program.scan_names ~first:0 ~count:2 |];
            label = "clean";
          });
      check_ownership = true;
      choices = [ Directed.Step 0; Directed.Step 1 ];
      max_ticks = 1_000;
      tau_cadence = 1;
    }
  in
  check Alcotest.bool "no failure, no result" true (Shrink.shrink input = None)

let test_repro_roundtrip () =
  let repro =
    {
      Shrink.rp_trace_format = Shrink.Choices;
      rp_algorithm = "uniform-probing-n3";
      rp_n = 3;
      rp_seed = 0x5EED_2015L;
      rp_check_ownership = true;
      rp_max_ticks = 50_000;
      rp_tau_cadence = 2;
      rp_kind = "duplicate-name";
      rp_choices = [ Directed.Step 0; Directed.Fault 2; Directed.Crash 1; Directed.Recover 1 ];
    }
  in
  match Shrink.repro_of_string (Shrink.repro_to_string repro) with
  | Ok r ->
    check Alcotest.string "algorithm" repro.Shrink.rp_algorithm r.Shrink.rp_algorithm;
    check Alcotest.int "n" repro.Shrink.rp_n r.Shrink.rp_n;
    check Alcotest.bool "seed" true (Int64.equal repro.Shrink.rp_seed r.Shrink.rp_seed);
    check Alcotest.bool "ownership" repro.Shrink.rp_check_ownership r.Shrink.rp_check_ownership;
    check Alcotest.int "max-ticks" repro.Shrink.rp_max_ticks r.Shrink.rp_max_ticks;
    check Alcotest.int "tau-cadence" repro.Shrink.rp_tau_cadence r.Shrink.rp_tau_cadence;
    check Alcotest.string "kind" repro.Shrink.rp_kind r.Shrink.rp_kind;
    check Alcotest.bool "choices" true (repro.Shrink.rp_choices = r.Shrink.rp_choices)
  | Error e -> Alcotest.failf "round-trip failed: %s" e

let test_repro_tau_cadence_header_optional () =
  (* Artifacts written before the tau-cadence header existed must still
     parse, with the executor-default cadence. *)
  match
    Shrink.repro_of_string
      "algorithm: x\nn: 2\nseed: 1\ncheck-ownership: true\nmax-ticks: 10\nkind: k\ntrace:\nstep 0\n"
  with
  | Ok r -> check Alcotest.int "default cadence" 1 r.Shrink.rp_tau_cadence
  | Error e -> Alcotest.failf "legacy artifact rejected: %s" e

let test_repro_rejects_garbage () =
  check Alcotest.bool "no trace section" true
    (Result.is_error (Shrink.repro_of_string "algorithm: x\nn: 2\n"));
  check Alcotest.bool "bad verb" true
    (Result.is_error (Shrink.repro_of_string "algorithm: x\nn: 2\nseed: 1\ncheck-ownership: true\nmax-ticks: 10\nkind: k\ntrace:\nteleport 3\n"));
  check Alcotest.bool "unknown trace format" true
    (Result.is_error
       (Shrink.repro_of_string
          "algorithm: x\nn: 2\nseed: 1\ncheck-ownership: true\nmax-ticks: 10\nkind: k\ntrace-format: interpretive-dance\ntrace:\nstep 0\n"))

let test_repro_condensed_roundtrip () =
  (* The condensed body renders runs, faults, crashes and recoveries,
     and must parse back to the identical decision list. *)
  let repro =
    {
      Shrink.rp_trace_format = Shrink.Condensed;
      rp_algorithm = "uniform-probing-n3";
      rp_n = 3;
      rp_seed = 7L;
      rp_check_ownership = false;
      rp_max_ticks = 50_000;
      rp_tau_cadence = 1;
      rp_kind = "duplicate-name";
      rp_choices =
        [
          Directed.Step 0; Directed.Step 0; Directed.Step 1; Directed.Fault 1;
          Directed.Crash 0; Directed.Recover 0; Directed.Step 1;
        ];
    }
  in
  let text = Shrink.repro_to_string repro in
  check Alcotest.bool "declares the format" true
    (let rec mem = function
       | [] -> false
       | l :: rest -> String.trim l = "trace-format: condensed" || mem rest
     in
     mem (String.split_on_char '\n' text));
  match Shrink.repro_of_string text with
  | Ok r ->
    check Alcotest.bool "format preserved" true (r.Shrink.rp_trace_format = Shrink.Condensed);
    check Alcotest.bool "choices identical" true (r.Shrink.rp_choices = repro.Shrink.rp_choices)
  | Error e -> Alcotest.failf "condensed round-trip failed: %s" e

(* A pre-existing artifact from results/repros/, embedded verbatim: the
   shard-handoff mutant's shrunk counterexample as the fuzzer wrote it
   before the trace-format header existed.  It must parse (defaulting to
   the legacy choices body), replay to the same violation against the
   roster-rebuilt instance, and survive re-serialisation in the
   condensed format. *)
let preexisting_artifact =
  "algorithm: mutant-shard-unfenced-handoff\n\
   n: 3\n\
   seed: 1342224629192912732\n\
   check-ownership: false\n\
   max-ticks: 50000\n\
   tau-cadence: 1\n\
   kind: duplicate-name\n\
   trace:\n\
   step 1\nstep 1\nstep 1\nstep 1\nstep 1\nstep 2\n"

let test_repro_preexisting_artifact_replays () =
  let module Fuzz_roster = Renaming_harness.Fuzz_roster in
  let replay (r : Shrink.repro) =
    match Fuzz_roster.builder ~name:r.Shrink.rp_algorithm ~n:r.Shrink.rp_n with
    | None -> Alcotest.failf "roster cannot rebuild %s" r.Shrink.rp_algorithm
    | Some build ->
      let input =
        {
          Shrink.label = r.Shrink.rp_algorithm;
          build = (fun () -> build ~seed:r.Shrink.rp_seed);
          check_ownership = r.Shrink.rp_check_ownership;
          choices = r.Shrink.rp_choices;
          max_ticks = r.Shrink.rp_max_ticks;
          tau_cadence = r.Shrink.rp_tau_cadence;
        }
      in
      (match Shrink.execute input r.Shrink.rp_choices with
      | _, Some f -> check Alcotest.string "replays to the same kind" r.Shrink.rp_kind f.Shrink.f_kind
      | _, None -> Alcotest.fail "pre-existing artifact no longer reproduces")
  in
  match Shrink.repro_of_string preexisting_artifact with
  | Error e -> Alcotest.failf "pre-existing artifact rejected: %s" e
  | Ok r ->
    check Alcotest.bool "headerless artifact defaults to choices" true
      (r.Shrink.rp_trace_format = Shrink.Choices);
    replay r;
    (* Re-serialise condensed: same decisions, same replay. *)
    (match Shrink.repro_of_string
             (Shrink.repro_to_string { r with Shrink.rp_trace_format = Shrink.Condensed })
     with
    | Error e -> Alcotest.failf "condensed re-serialisation rejected: %s" e
    | Ok r' ->
      check Alcotest.bool "condensed body carries identical decisions" true
        (r'.Shrink.rp_choices = r.Shrink.rp_choices);
      replay r')

let tests =
  [
    ( "faults.retry",
      [
        Alcotest.test_case "backoff delays" `Quick test_backoff_delays;
        Alcotest.test_case "jittered delay bounds" `Quick test_jittered_delay_bounds;
        Alcotest.test_case "tas wins after faults" `Quick test_retry_tas_wins_after_faults;
        Alcotest.test_case "tas exhaustion is lost" `Quick test_retry_tas_exhaustion_is_lost;
        Alcotest.test_case "time budget on a virtual clock" `Quick
          test_retry_time_budget_on_virtual_clock;
        Alcotest.test_case "time budget inert without a clock" `Quick
          test_retry_time_budget_inert_without_clock;
        Alcotest.test_case "read exhaustion is set" `Quick test_retry_read_exhaustion_is_set;
        Alcotest.test_case "scan skips faulty register" `Quick
          test_retry_scan_skips_faulty_register;
        Alcotest.test_case "fault-free cost matches plain" `Quick
          test_retry_fault_free_cost_matches_plain;
      ] );
    ( "faults.injector",
      [
        Alcotest.test_case "deterministic" `Quick test_injector_deterministic;
        Alcotest.test_case "respects faultable" `Quick test_injector_respects_faultable;
        Alcotest.test_case "window and counting" `Quick test_injector_window_and_counting;
      ] );
    ( "faults.recovery",
      [
        Alcotest.test_case "recovered process keeps won name" `Quick
          test_recovered_process_keeps_won_name;
        Alcotest.test_case "permanent crash reported" `Quick test_permanent_crash_still_reported;
        Alcotest.test_case "recovery under monitor" `Quick test_recovery_under_monitor;
      ] );
    ( "faults.monitor",
      [
        Alcotest.test_case "catches duplicate name" `Quick test_monitor_catches_duplicate_name;
        Alcotest.test_case "catches out-of-range name" `Quick test_monitor_catches_out_of_range;
        Alcotest.test_case "catches unbacked claim" `Quick test_monitor_catches_unbacked_claim;
        Alcotest.test_case "catches step after crash" `Quick test_monitor_catches_step_after_crash;
        Alcotest.test_case "catches recover of live pid" `Quick
          test_monitor_catches_recover_of_live;
        Alcotest.test_case "violation carries trace" `Quick test_monitor_violation_carries_trace;
        Alcotest.test_case "violation kinds are stable" `Quick test_monitor_violation_kinds;
      ] );
    ( "faults.property",
      [
        Alcotest.test_case "no duplicates under adversity" `Slow
          test_property_no_duplicates_under_adversity;
      ] );
    ( "faults.campaign",
      [
        Alcotest.test_case "tier1 campaign zero violations" `Slow
          test_campaign_tier1_zero_violations;
        Alcotest.test_case "deterministic" `Quick test_campaign_deterministic;
        Alcotest.test_case "json shape" `Quick test_campaign_json_shape;
      ] );
    ( "faults.shrink",
      [
        Alcotest.test_case "campaign auto-shrinks violations" `Quick
          test_campaign_autoshrinks_violations;
        Alcotest.test_case "clean input yields no result" `Quick test_shrink_none_when_input_passes;
        Alcotest.test_case "repro round-trips" `Quick test_repro_roundtrip;
        Alcotest.test_case "tau-cadence header optional" `Quick
          test_repro_tau_cadence_header_optional;
        Alcotest.test_case "repro rejects garbage" `Quick test_repro_rejects_garbage;
        Alcotest.test_case "condensed trace round-trips" `Quick test_repro_condensed_roundtrip;
        Alcotest.test_case "pre-existing artifact replays" `Quick
          test_repro_preexisting_artifact_replays;
      ] );
  ]
