(* Tests for the program monad, memory, adversaries and the executor. *)

module Program = Renaming_sched.Program
module Op = Renaming_sched.Op
module Memory = Renaming_sched.Memory
module Adversary = Renaming_sched.Adversary
module Executor = Renaming_sched.Executor
module Report = Renaming_sched.Report
module Stream = Renaming_rng.Stream

let check = Alcotest.check
open Program.Syntax

let test_program_pure () =
  check Alcotest.(option int) "pure program" (Some 5) (Program.run_local (Program.return 5))

let test_program_parks_on_op () =
  check Alcotest.(option bool) "parked program" None (Program.run_local (Program.tas_name 0))

let test_program_bind_associative_observation () =
  (* (p >>= f) >>= g and p >>= (fun x -> f x >>= g) behave identically
     under execution. *)
  let p1 = Program.bind (Program.bind (Program.return 1) (fun x -> Program.return (x + 1)))
      (fun y -> Program.return (y * 2)) in
  let p2 =
    Program.bind (Program.return 1) (fun x ->
        Program.bind (Program.return (x + 1)) (fun y -> Program.return (y * 2)))
  in
  check Alcotest.(option int) "assoc left" (Some 4) (Program.run_local p1);
  check Alcotest.(option int) "assoc right" (Some 4) (Program.run_local p2)

let run_single program ~namespace =
  let memory = Memory.create ~namespace () in
  let instance = { Executor.memory; programs = [| program |]; label = "test" } in
  Executor.run ~adversary:(Adversary.round_robin ()) instance

let test_scan_names_finds_first_free () =
  let program =
    let* a = Program.tas_name 0 in
    let* b = Program.scan_names ~first:0 ~count:3 in
    ignore a;
    Program.return b
  in
  let report = run_single program ~namespace:3 in
  (* The process took name 0 itself, so the scan must return name 1. *)
  check Alcotest.(option int) "scan skips taken" (Some 1)
    report.Report.assignment.Renaming_shm.Assignment.names.(0)

let test_scan_names_exhausted () =
  let program =
    let* _ = Program.tas_name 0 in
    Program.scan_names ~first:0 ~count:1
  in
  let report = run_single program ~namespace:1 in
  (* Process owns register 0 already; the scan finds nothing free. *)
  check Alcotest.int "no name from scan" 0 (Report.named_count report)

let test_memory_apply_ops () =
  let memory = Memory.create ~namespace:2 ~aux:2 () in
  check Alcotest.bool "tas name" true (Memory.apply memory ~pid:0 (Op.Tas_name 1) = Op.Bool true);
  check Alcotest.bool "tas name again" true
    (Memory.apply memory ~pid:1 (Op.Tas_name 1) = Op.Bool false);
  check Alcotest.bool "read name" true (Memory.apply memory ~pid:2 (Op.Read_name 1) = Op.Bool true);
  check Alcotest.bool "read free name" true
    (Memory.apply memory ~pid:2 (Op.Read_name 0) = Op.Bool false);
  check Alcotest.bool "tas aux" true (Memory.apply memory ~pid:0 (Op.Tas_aux 0) = Op.Bool true);
  check Alcotest.bool "read aux" true (Memory.apply memory ~pid:0 (Op.Read_aux 0) = Op.Bool true)

let test_memory_tau_roundtrip () =
  let tau = Renaming_device.Tau_register.create ~base:0 ~tau:2 ~width:4 () in
  let memory = Memory.create ~namespace:4 ~taus:[| tau |] () in
  check Alcotest.bool "submit" true
    (Memory.apply memory ~pid:0 (Op.Tau_submit { reg = 0; bit = 1 }) = Op.Unit);
  check Alcotest.bool "pending before tick" true
    (Memory.apply memory ~pid:0 (Op.Tau_poll 0) = Op.Tau Renaming_device.Tau_register.Pending);
  Memory.tick_taus memory;
  check Alcotest.bool "won after tick" true
    (Memory.apply memory ~pid:0 (Op.Tau_poll 0) = Op.Tau Renaming_device.Tau_register.Won_bit)

let simple_competition ~n ~namespace ~adversary =
  (* n processes all scan the same namespace: a gauntlet for winner
     uniqueness under any schedule. *)
  let memory = Memory.create ~namespace () in
  let programs = Array.init n (fun _ -> Program.scan_names ~first:0 ~count:namespace) in
  let instance = { Executor.memory; programs; label = "competition" } in
  Executor.run ~adversary instance

let test_executor_all_named_when_space () =
  let report = simple_competition ~n:8 ~namespace:8 ~adversary:(Adversary.round_robin ()) in
  check Alcotest.bool "sound" true (Report.is_sound report);
  check Alcotest.int "all named" 8 (Report.named_count report)

let test_executor_excess_processes_fail_cleanly () =
  let report = simple_competition ~n:5 ~namespace:3 ~adversary:(Adversary.round_robin ()) in
  check Alcotest.bool "sound" true (Report.is_sound report);
  check Alcotest.int "three named" 3 (Report.named_count report);
  check Alcotest.int "two unnamed" 2 (List.length (Report.surviving_unnamed report))

let all_adversaries () =
  [
    Adversary.round_robin ();
    Adversary.uniform (Stream.fork_named (Stream.create 3L) ~name:"adv");
    Adversary.lifo;
    Adversary.adaptive_contention;
    Adversary.colluding;
  ]

let test_soundness_under_all_adversaries () =
  List.iter
    (fun adversary ->
      let report = simple_competition ~n:10 ~namespace:10 ~adversary in
      check Alcotest.bool ("sound under " ^ report.Report.adversary) true (Report.is_sound report);
      check Alcotest.int ("complete under " ^ report.Report.adversary) 10
        (Report.named_count report))
    (all_adversaries ())

let test_step_accounting () =
  (* One process, three operations: ledger must say 3. *)
  let program =
    let* _ = Program.read_name 0 in
    let* _ = Program.read_name 1 in
    let* _ = Program.tas_name 0 in
    Program.return (Some 0)
  in
  let report = run_single program ~namespace:2 in
  check Alcotest.int "steps" 3 (Renaming_shm.Step_ledger.steps_of report.Report.ledger ~pid:0);
  check Alcotest.int "ticks" 3 report.Report.ticks

let test_crash_adversary () =
  let adversary =
    Adversary.with_crashes ~base:(Adversary.round_robin ()) ~crash_times:[ (0, 0); (2, 3) ]
  in
  let report = simple_competition ~n:6 ~namespace:6 ~adversary in
  check Alcotest.(list int) "crashed pids" [ 0; 3 ] report.Report.crashed;
  check Alcotest.bool "sound" true (Report.is_sound report);
  (* The four survivors must all be named. *)
  check Alcotest.int "survivors named" 0 (List.length (Report.surviving_unnamed report))

let test_crash_adversary_skips_finished () =
  (* Crashing a pid far in the future after it finished must not blow
     up. *)
  let adversary =
    Adversary.with_crashes ~base:(Adversary.round_robin ()) ~crash_times:[ (1000000, 0) ]
  in
  let report = simple_competition ~n:2 ~namespace:2 ~adversary in
  check Alcotest.(list int) "nobody crashed" [] report.Report.crashed

let test_lifo_starves_low_pids () =
  (* Under LIFO with a single free register, the highest pid wins it. *)
  let report = simple_competition ~n:4 ~namespace:1 ~adversary:Adversary.lifo in
  let names = report.Report.assignment.Renaming_shm.Assignment.names in
  check Alcotest.(option int) "pid 3 wins" (Some 0) names.(3)

let test_max_ticks_guard () =
  (* A livelocked run ends with a structured Livelock outcome (so chaos
     sweeps can record it) instead of an exception. *)
  let rec spin () =
    let* _ = Program.read_name 0 in
    spin ()
  in
  let memory = Memory.create ~namespace:1 () in
  let instance = { Executor.memory; programs = [| spin () |]; label = "spinner" } in
  let report = Executor.run ~max_ticks:100 ~adversary:(Adversary.round_robin ()) instance in
  check Alcotest.bool "livelock detected" true (Report.is_livelock report);
  check Alcotest.string "outcome name" "livelock" (Report.outcome_name report);
  check Alcotest.bool "ticks bounded" true (report.Report.ticks <= 101);
  check Alcotest.int "nobody named" 0 (Report.named_count report)

let test_on_tick_hook () =
  let ops = ref [] in
  let program =
    let* _ = Program.tas_name 0 in
    Program.return (Some 0)
  in
  let memory = Memory.create ~namespace:1 () in
  let instance = { Executor.memory; programs = [| program |]; label = "hook" } in
  ignore
    (Executor.run
       ~on_tick:(fun ~time ~pid ~op -> ops := (time, pid, op) :: !ops)
       ~adversary:(Adversary.round_robin ()) instance);
  match !ops with
  | [ (0, 0, Op.Tas_name 0) ] -> ()
  | _ -> Alcotest.fail "expected exactly one hook call for Tas_name 0"

let test_adversary_arrival_pattern_wrap () =
  (* Arrival-delayed round robin still names everyone. *)
  let pattern = Renaming_workload.Arrival.Staggered { gap = 3 } in
  let adversary =
    Renaming_workload.Arrival.adversary pattern ~n:6 ~base:(Adversary.round_robin ())
  in
  let report = simple_competition ~n:6 ~namespace:6 ~adversary in
  check Alcotest.int "all named" 6 (Report.named_count report);
  check Alcotest.bool "sound" true (Report.is_sound report)

let qcheck_competition_sound_any_seed =
  QCheck.Test.make ~count:50 ~name:"competition is sound under uniform adversary, any seed"
    QCheck.(pair small_int (int_range 1 30))
    (fun (seed, n) ->
      let adversary =
        Adversary.uniform (Stream.fork_named (Stream.create (Int64.of_int seed)) ~name:"a")
      in
      let report = simple_competition ~n ~namespace:n ~adversary in
      Report.is_sound report && Report.named_count report = n)

let tests =
  [
    ( "sched",
      [
        Alcotest.test_case "pure program" `Quick test_program_pure;
        Alcotest.test_case "program parks" `Quick test_program_parks_on_op;
        Alcotest.test_case "bind associativity" `Quick test_program_bind_associative_observation;
        Alcotest.test_case "scan finds free" `Quick test_scan_names_finds_first_free;
        Alcotest.test_case "scan exhausted" `Quick test_scan_names_exhausted;
        Alcotest.test_case "memory ops" `Quick test_memory_apply_ops;
        Alcotest.test_case "memory tau roundtrip" `Quick test_memory_tau_roundtrip;
        Alcotest.test_case "executor names all" `Quick test_executor_all_named_when_space;
        Alcotest.test_case "executor excess processes" `Quick test_executor_excess_processes_fail_cleanly;
        Alcotest.test_case "soundness all adversaries" `Quick test_soundness_under_all_adversaries;
        Alcotest.test_case "step accounting" `Quick test_step_accounting;
        Alcotest.test_case "crash adversary" `Quick test_crash_adversary;
        Alcotest.test_case "crash skips finished" `Quick test_crash_adversary_skips_finished;
        Alcotest.test_case "lifo starves" `Quick test_lifo_starves_low_pids;
        Alcotest.test_case "max ticks guard" `Quick test_max_ticks_guard;
        Alcotest.test_case "on_tick hook" `Quick test_on_tick_hook;
        Alcotest.test_case "arrival adversary" `Quick test_adversary_arrival_pattern_wrap;
        QCheck_alcotest.to_alcotest qcheck_competition_sound_any_seed;
      ] );
  ]

(* --- appended: crash_random and printer coverage --- *)

let test_crash_random_adversary () =
  let rng = Stream.fork_named (Stream.create 17L) ~name:"cr" in
  let adversary =
    Adversary.crash_random ~fraction:0.2 ~rng ~base:(Adversary.round_robin ())
  in
  let report = simple_competition ~n:20 ~namespace:20 ~adversary in
  check Alcotest.bool "sound" true (Report.is_sound report);
  (* At least one process survives (the adversary never crashes the last
     runner), and all survivors are named. *)
  check Alcotest.bool "not everyone crashed" true (List.length report.Report.crashed < 20);
  check Alcotest.int "survivors named" 0 (List.length (Report.surviving_unnamed report))

let contains_substring haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_report_pp_smoke () =
  let report = simple_competition ~n:4 ~namespace:4 ~adversary:(Adversary.round_robin ()) in
  let s = Format.asprintf "%a" Report.pp report in
  check Alcotest.bool "mentions adversary" true (contains_substring s "round-robin")

let extra_sched_tests =
  [
    ( "sched-extra",
      [
        Alcotest.test_case "crash_random adversary" `Quick test_crash_random_adversary;
        Alcotest.test_case "report pp" `Quick test_report_pp_smoke;
      ] );
  ]

let tests = tests @ extra_sched_tests
