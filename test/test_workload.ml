(* Tests for arrival patterns and crash patterns. *)

module Arrival = Renaming_workload.Arrival
module Crash_pattern = Renaming_workload.Crash_pattern

let check = Alcotest.check

let test_all_at_once () =
  check Alcotest.(array int) "zeros" [| 0; 0; 0 |] (Arrival.times Arrival.All_at_once ~n:3)

let test_staggered () =
  check Alcotest.(array int) "gaps" [| 0; 5; 10; 15 |]
    (Arrival.times (Arrival.Staggered { gap = 5 }) ~n:4)

let test_bursty () =
  let times = Arrival.times (Arrival.Bursty { bursts = 2; gap = 10 }) ~n:6 in
  check Alcotest.(array int) "two bursts" [| 0; 0; 0; 10; 10; 10 |] times

let test_bursty_uneven () =
  let times = Arrival.times (Arrival.Bursty { bursts = 3; gap = 2 }) ~n:4 in
  (* per_burst = 1; pids 0,1,2 in bursts 0,1,2, pid 3 clamped to last. *)
  check Alcotest.(array int) "clamped" [| 0; 2; 4; 4 |] times

let test_explicit () =
  let times = Arrival.times (Arrival.Explicit [| 3; 1 |]) ~n:2 in
  check Alcotest.(array int) "copied" [| 3; 1 |] times;
  Alcotest.check_raises "wrong length" (Invalid_argument "Arrival.times: wrong array length")
    (fun () -> ignore (Arrival.times (Arrival.Explicit [| 1 |]) ~n:2))

let test_crash_random_properties () =
  let rng = Renaming_rng.Xoshiro.create 9L in
  let crashes = Crash_pattern.random ~rng ~n:100 ~failures:20 ~horizon:50 in
  check Alcotest.int "count" 20 (List.length crashes);
  let pids = List.map snd crashes in
  let distinct = List.sort_uniq compare pids in
  check Alcotest.int "distinct pids" 20 (List.length distinct);
  List.iter
    (fun (t, pid) ->
      check Alcotest.bool "time in horizon" true (t >= 0 && t < 50);
      check Alcotest.bool "pid in range" true (pid >= 0 && pid < 100))
    crashes

let test_crash_early_half () =
  let crashes = Crash_pattern.early_half ~n:10 ~failures:4 in
  check
    Alcotest.(list (pair int int))
    "prefix at time zero"
    [ (0, 0); (0, 1); (0, 2); (0, 3) ]
    crashes

let test_crash_spread () =
  let crashes = Crash_pattern.spread ~n:100 ~failures:4 ~horizon:40 in
  check
    Alcotest.(list (pair int int))
    "even spread"
    [ (0, 0); (10, 25); (20, 50); (30, 75) ]
    crashes

let test_crash_burst_properties () =
  let rng = Renaming_rng.Xoshiro.create 11L in
  let crashes = Crash_pattern.burst ~rng ~n:50 ~failures:12 ~at:30 ~width:5 in
  check Alcotest.int "count" 12 (List.length crashes);
  let distinct = List.sort_uniq compare (List.map snd crashes) in
  check Alcotest.int "distinct pids" 12 (List.length distinct);
  List.iter
    (fun (t, pid) ->
      check Alcotest.bool "time in window" true (t >= 30 && t < 35);
      check Alcotest.bool "pid in range" true (pid >= 0 && pid < 50))
    crashes

let test_crash_burst_width_one () =
  (* width 1 degenerates to "everyone at tick [at]". *)
  let rng = Renaming_rng.Xoshiro.create 11L in
  let crashes = Crash_pattern.burst ~rng ~n:8 ~failures:3 ~at:7 ~width:1 in
  List.iter (fun (t, _) -> check Alcotest.int "pinned time" 7 t) crashes

let test_crash_burst_validation () =
  let rng = Renaming_rng.Xoshiro.create 11L in
  Alcotest.check_raises "too many failures"
    (Invalid_argument "Crash_pattern: failures must be in [0, n)") (fun () ->
      ignore (Crash_pattern.burst ~rng ~n:4 ~failures:4 ~at:0 ~width:2));
  Alcotest.check_raises "negative at"
    (Invalid_argument "Crash_pattern.burst: at must be >= 0") (fun () ->
      ignore (Crash_pattern.burst ~rng ~n:4 ~failures:2 ~at:(-1) ~width:2));
  Alcotest.check_raises "zero width"
    (Invalid_argument "Crash_pattern.burst: width must be >= 1") (fun () ->
      ignore (Crash_pattern.burst ~rng ~n:4 ~failures:2 ~at:0 ~width:0));
  (* A zero-crash "burst" is always an upstream bug (integer-division
     underflow at small [n]); unlike [random]/[spread] it must refuse
     rather than silently degrade the cell to a fault-free run. *)
  Alcotest.check_raises "zero failures"
    (Invalid_argument "Crash_pattern.burst: failures must be >= 1") (fun () ->
      ignore (Crash_pattern.burst ~rng ~n:4 ~failures:0 ~at:0 ~width:2))

(* Shared bounds contract: every pattern emits distinct in-range pids and
   non-negative times, exactly [failures] of them. *)
let test_crash_bounds_all_patterns () =
  let n = 40 and failures = 9 and horizon = 25 in
  let rng () = Renaming_rng.Xoshiro.create 13L in
  let patterns =
    [
      ("random", Crash_pattern.random ~rng:(rng ()) ~n ~failures ~horizon);
      ("early_half", Crash_pattern.early_half ~n ~failures);
      ("spread", Crash_pattern.spread ~n ~failures ~horizon);
      ("burst", Crash_pattern.burst ~rng:(rng ()) ~n ~failures ~at:6 ~width:4);
    ]
  in
  List.iter
    (fun (name, crashes) ->
      check Alcotest.int (name ^ ": count") failures (List.length crashes);
      let distinct = List.sort_uniq compare (List.map snd crashes) in
      check Alcotest.int (name ^ ": distinct pids") failures (List.length distinct);
      List.iter
        (fun (t, pid) ->
          check Alcotest.bool (name ^ ": time >= 0") true (t >= 0);
          check Alcotest.bool (name ^ ": pid in [0,n)") true (pid >= 0 && pid < n))
        crashes)
    patterns

let test_crash_validation () =
  let rng = Renaming_rng.Xoshiro.create 9L in
  Alcotest.check_raises "too many failures"
    (Invalid_argument "Crash_pattern: failures must be in [0, n)") (fun () ->
      ignore (Crash_pattern.random ~rng ~n:10 ~failures:10 ~horizon:5))

let test_crash_empty () =
  check Alcotest.(list (pair int int)) "no failures" [] (Crash_pattern.spread ~n:10 ~failures:0 ~horizon:5)

let tests =
  [
    ( "workload",
      [
        Alcotest.test_case "all at once" `Quick test_all_at_once;
        Alcotest.test_case "staggered" `Quick test_staggered;
        Alcotest.test_case "bursty" `Quick test_bursty;
        Alcotest.test_case "bursty uneven" `Quick test_bursty_uneven;
        Alcotest.test_case "explicit" `Quick test_explicit;
        Alcotest.test_case "crash random" `Quick test_crash_random_properties;
        Alcotest.test_case "crash early half" `Quick test_crash_early_half;
        Alcotest.test_case "crash spread" `Quick test_crash_spread;
        Alcotest.test_case "crash burst" `Quick test_crash_burst_properties;
        Alcotest.test_case "crash burst width one" `Quick test_crash_burst_width_one;
        Alcotest.test_case "crash burst validation" `Quick test_crash_burst_validation;
        Alcotest.test_case "crash bounds all patterns" `Quick test_crash_bounds_all_patterns;
        Alcotest.test_case "crash validation" `Quick test_crash_validation;
        Alcotest.test_case "crash empty" `Quick test_crash_empty;
      ] );
  ]
