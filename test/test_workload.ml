(* Tests for arrival patterns, crash patterns, and Zipf skew. *)

module Arrival = Renaming_workload.Arrival
module Crash_pattern = Renaming_workload.Crash_pattern
module Zipf = Renaming_workload.Zipf
module Xoshiro = Renaming_rng.Xoshiro

let check = Alcotest.check

let test_all_at_once () =
  check Alcotest.(array int) "zeros" [| 0; 0; 0 |] (Arrival.times Arrival.All_at_once ~n:3)

let test_staggered () =
  check Alcotest.(array int) "gaps" [| 0; 5; 10; 15 |]
    (Arrival.times (Arrival.Staggered { gap = 5 }) ~n:4)

let test_bursty () =
  let times = Arrival.times (Arrival.Bursty { bursts = 2; gap = 10 }) ~n:6 in
  check Alcotest.(array int) "two bursts" [| 0; 0; 0; 10; 10; 10 |] times

let test_bursty_uneven () =
  let times = Arrival.times (Arrival.Bursty { bursts = 3; gap = 2 }) ~n:4 in
  (* per_burst = 1; pids 0,1,2 in bursts 0,1,2, pid 3 clamped to last. *)
  check Alcotest.(array int) "clamped" [| 0; 2; 4; 4 |] times

let test_explicit () =
  let times = Arrival.times (Arrival.Explicit [| 3; 1 |]) ~n:2 in
  check Alcotest.(array int) "copied" [| 3; 1 |] times;
  Alcotest.check_raises "wrong length" (Invalid_argument "Arrival.times: wrong array length")
    (fun () -> ignore (Arrival.times (Arrival.Explicit [| 1 |]) ~n:2))

let test_crash_random_properties () =
  let rng = Renaming_rng.Xoshiro.create 9L in
  let crashes = Crash_pattern.random ~rng ~n:100 ~failures:20 ~horizon:50 in
  check Alcotest.int "count" 20 (List.length crashes);
  let pids = List.map snd crashes in
  let distinct = List.sort_uniq compare pids in
  check Alcotest.int "distinct pids" 20 (List.length distinct);
  List.iter
    (fun (t, pid) ->
      check Alcotest.bool "time in horizon" true (t >= 0 && t < 50);
      check Alcotest.bool "pid in range" true (pid >= 0 && pid < 100))
    crashes

let test_crash_early_half () =
  let crashes = Crash_pattern.early_half ~n:10 ~failures:4 in
  check
    Alcotest.(list (pair int int))
    "prefix at time zero"
    [ (0, 0); (0, 1); (0, 2); (0, 3) ]
    crashes

let test_crash_spread () =
  let crashes = Crash_pattern.spread ~n:100 ~failures:4 ~horizon:40 in
  check
    Alcotest.(list (pair int int))
    "even spread"
    [ (0, 0); (10, 25); (20, 50); (30, 75) ]
    crashes

let test_crash_burst_properties () =
  let rng = Renaming_rng.Xoshiro.create 11L in
  let crashes = Crash_pattern.burst ~rng ~n:50 ~failures:12 ~at:30 ~width:5 in
  check Alcotest.int "count" 12 (List.length crashes);
  let distinct = List.sort_uniq compare (List.map snd crashes) in
  check Alcotest.int "distinct pids" 12 (List.length distinct);
  List.iter
    (fun (t, pid) ->
      check Alcotest.bool "time in window" true (t >= 30 && t < 35);
      check Alcotest.bool "pid in range" true (pid >= 0 && pid < 50))
    crashes

let test_crash_burst_width_one () =
  (* width 1 degenerates to "everyone at tick [at]". *)
  let rng = Renaming_rng.Xoshiro.create 11L in
  let crashes = Crash_pattern.burst ~rng ~n:8 ~failures:3 ~at:7 ~width:1 in
  List.iter (fun (t, _) -> check Alcotest.int "pinned time" 7 t) crashes

let test_crash_burst_validation () =
  let rng = Renaming_rng.Xoshiro.create 11L in
  Alcotest.check_raises "too many failures"
    (Invalid_argument "Crash_pattern: failures must be in [0, n)") (fun () ->
      ignore (Crash_pattern.burst ~rng ~n:4 ~failures:4 ~at:0 ~width:2));
  Alcotest.check_raises "negative at"
    (Invalid_argument "Crash_pattern.burst: at must be >= 0") (fun () ->
      ignore (Crash_pattern.burst ~rng ~n:4 ~failures:2 ~at:(-1) ~width:2));
  Alcotest.check_raises "zero width"
    (Invalid_argument "Crash_pattern.burst: width must be >= 1") (fun () ->
      ignore (Crash_pattern.burst ~rng ~n:4 ~failures:2 ~at:0 ~width:0));
  (* A zero-crash "burst" is always an upstream bug (integer-division
     underflow at small [n]); unlike [random]/[spread] it must refuse
     rather than silently degrade the cell to a fault-free run. *)
  Alcotest.check_raises "zero failures"
    (Invalid_argument "Crash_pattern.burst: failures must be >= 1") (fun () ->
      ignore (Crash_pattern.burst ~rng ~n:4 ~failures:0 ~at:0 ~width:2))

let test_crash_burst_wider_than_population () =
  (* A burst window far wider than the population is legal: the window
     bounds *times*, not pids, so the schedule simply spreads the few
     crashes thinly across it. *)
  let rng = Renaming_rng.Xoshiro.create 17L in
  let crashes = Crash_pattern.burst ~rng ~n:4 ~failures:3 ~at:2 ~width:100 in
  check Alcotest.int "count" 3 (List.length crashes);
  let distinct = List.sort_uniq compare (List.map snd crashes) in
  check Alcotest.int "distinct pids" 3 (List.length distinct);
  List.iter
    (fun (t, pid) ->
      check Alcotest.bool "time in the wide window" true (t >= 2 && t < 102);
      check Alcotest.bool "pid in the small population" true (pid >= 0 && pid < 4))
    crashes

let test_crash_zero_length_schedule () =
  (* The patterns that document [failures = 0] yield an empty schedule —
     a run with no crash events, not an error. *)
  let rng = Renaming_rng.Xoshiro.create 17L in
  check
    Alcotest.(list (pair int int))
    "random: empty" []
    (Crash_pattern.random ~rng ~n:6 ~failures:0 ~horizon:10);
  check
    Alcotest.(list (pair int int))
    "spread: empty" []
    (Crash_pattern.spread ~n:6 ~failures:0 ~horizon:10);
  check
    Alcotest.(list (pair int int))
    "early_half: empty" []
    (Crash_pattern.early_half ~n:6 ~failures:0)

let test_crash_back_to_back_bursts () =
  (* Two bursts whose windows tile without a gap ([at, at+w) then
     [at+w, at+2w)) compose into one schedule: correlated failure waves
     hitting in quick succession.  Times stay inside their own window,
     so the waves never interleave even though the draws share an rng. *)
  let rng = Renaming_rng.Xoshiro.create 23L in
  let wave1 = Crash_pattern.burst ~rng ~n:20 ~failures:4 ~at:5 ~width:3 in
  let wave2 = Crash_pattern.burst ~rng ~n:20 ~failures:4 ~at:8 ~width:3 in
  List.iter
    (fun (t, _) -> check Alcotest.bool "wave 1 inside [5, 8)" true (t >= 5 && t < 8))
    wave1;
  List.iter
    (fun (t, _) -> check Alcotest.bool "wave 2 inside [8, 11)" true (t >= 8 && t < 11))
    wave2;
  let combined = wave1 @ wave2 in
  check Alcotest.int "combined schedule size" 8 (List.length combined);
  (* Within a wave pids are distinct; across waves they may repeat (a
     restarted process can be hit again), which the combined schedule
     must tolerate without collapsing entries. *)
  let per_wave w = List.length (List.sort_uniq compare (List.map snd w)) in
  check Alcotest.int "wave 1 distinct pids" 4 (per_wave wave1);
  check Alcotest.int "wave 2 distinct pids" 4 (per_wave wave2)

(* Shared bounds contract: every pattern emits distinct in-range pids and
   non-negative times, exactly [failures] of them. *)
let test_crash_bounds_all_patterns () =
  let n = 40 and failures = 9 and horizon = 25 in
  let rng () = Renaming_rng.Xoshiro.create 13L in
  let patterns =
    [
      ("random", Crash_pattern.random ~rng:(rng ()) ~n ~failures ~horizon);
      ("early_half", Crash_pattern.early_half ~n ~failures);
      ("spread", Crash_pattern.spread ~n ~failures ~horizon);
      ("burst", Crash_pattern.burst ~rng:(rng ()) ~n ~failures ~at:6 ~width:4);
    ]
  in
  List.iter
    (fun (name, crashes) ->
      check Alcotest.int (name ^ ": count") failures (List.length crashes);
      let distinct = List.sort_uniq compare (List.map snd crashes) in
      check Alcotest.int (name ^ ": distinct pids") failures (List.length distinct);
      List.iter
        (fun (t, pid) ->
          check Alcotest.bool (name ^ ": time >= 0") true (t >= 0);
          check Alcotest.bool (name ^ ": pid in [0,n)") true (pid >= 0 && pid < n))
        crashes)
    patterns

let test_crash_validation () =
  let rng = Renaming_rng.Xoshiro.create 9L in
  Alcotest.check_raises "too many failures"
    (Invalid_argument "Crash_pattern: failures must be in [0, n)") (fun () ->
      ignore (Crash_pattern.random ~rng ~n:10 ~failures:10 ~horizon:5))

let test_crash_empty () =
  check Alcotest.(list (pair int int)) "no failures" [] (Crash_pattern.spread ~n:10 ~failures:0 ~horizon:5)

(* --- Zipf skew edge cases --- *)

let close ?(eps = 1e-9) msg expected actual =
  check Alcotest.bool msg true (Float.abs (expected -. actual) < eps)

let test_zipf_single () =
  (* n = 1 is the degenerate distribution: every draw is rank 0 with
     probability exactly 1, and the hottest rank is also the coldest. *)
  let z = Zipf.create ~s:1.2 ~n:1 () in
  check Alcotest.int "n" 1 (Zipf.n z);
  close "weight 0" 1.0 (Zipf.weight z 0);
  close "pressure 0" 1.0 (Zipf.relative_pressure z 0);
  let rng = Xoshiro.create 77L in
  for _ = 1 to 50 do
    check Alcotest.int "draw" 0 (Zipf.draw z ~rng)
  done

let test_zipf_uniform () =
  (* s = 0 degenerates to uniform: every rank weighs 1/n and no rank is
     hotter than the coldest. *)
  let n = 10 in
  let z = Zipf.create ~s:0.0 ~n () in
  for k = 0 to n - 1 do
    close (Printf.sprintf "weight %d" k) (1.0 /. float_of_int n) (Zipf.weight z k);
    close (Printf.sprintf "pressure %d" k) 1.0 (Zipf.relative_pressure z k)
  done

let test_zipf_high_skew () =
  (* Very high skew: nearly all mass on rank 0, weights still strictly
     decreasing and the hot/cold pressure ratio finite but huge. *)
  let n = 16 in
  let z = Zipf.create ~s:8.0 ~n () in
  check Alcotest.bool "rank 0 dominates" true (Zipf.weight z 0 > 0.99);
  for k = 1 to n - 1 do
    check Alcotest.bool
      (Printf.sprintf "decreasing at %d" k)
      true
      (Zipf.weight z k < Zipf.weight z (k - 1))
  done;
  let p = Zipf.relative_pressure z 0 in
  check Alcotest.bool "pressure finite" true (Float.is_finite p);
  check Alcotest.bool "pressure huge" true (p > 1e9);
  (* Sampling agrees: the head rank swallows nearly every draw. *)
  let rng = Xoshiro.create 123L in
  let hits = ref 0 in
  for _ = 1 to 1000 do
    if Zipf.draw z ~rng = 0 then incr hits
  done;
  check Alcotest.bool "draws concentrate" true (!hits > 950)

let qcheck_zipf_cdf_and_draws =
  QCheck.Test.make ~name:"zipf: CDF monotone, sums to 1, draws in range" ~count:200
    QCheck.(triple (int_range 1 64) (float_range 0.0 4.0) (int_range 1 10_000))
    (fun (n, s, seed) ->
      let z = Zipf.create ~s ~n () in
      (* Cumulative weights are a proper CDF: monotone nondecreasing,
         positive steps, ending at 1. *)
      let cum = ref 0.0 in
      for k = 0 to n - 1 do
        let w = Zipf.weight z k in
        if w <= 0.0 || w > 1.0 +. 1e-9 then
          QCheck.Test.fail_reportf "weight %d out of (0,1]: %g" k w;
        let prev = !cum in
        cum := !cum +. w;
        if !cum < prev then QCheck.Test.fail_reportf "CDF decreased at %d" k
      done;
      if Float.abs (!cum -. 1.0) > 1e-6 then
        QCheck.Test.fail_reportf "CDF ends at %g, not 1" !cum;
      (* Draws always land in [0, n). *)
      let rng = Xoshiro.create (Int64.of_int seed) in
      for _ = 1 to 100 do
        let k = Zipf.draw z ~rng in
        if k < 0 || k >= n then QCheck.Test.fail_reportf "draw %d out of [0,%d)" k n
      done;
      true)

let tests =
  [
    ( "workload",
      [
        Alcotest.test_case "all at once" `Quick test_all_at_once;
        Alcotest.test_case "staggered" `Quick test_staggered;
        Alcotest.test_case "bursty" `Quick test_bursty;
        Alcotest.test_case "bursty uneven" `Quick test_bursty_uneven;
        Alcotest.test_case "explicit" `Quick test_explicit;
        Alcotest.test_case "crash random" `Quick test_crash_random_properties;
        Alcotest.test_case "crash early half" `Quick test_crash_early_half;
        Alcotest.test_case "crash spread" `Quick test_crash_spread;
        Alcotest.test_case "crash burst" `Quick test_crash_burst_properties;
        Alcotest.test_case "crash burst width one" `Quick test_crash_burst_width_one;
        Alcotest.test_case "crash burst validation" `Quick test_crash_burst_validation;
        Alcotest.test_case "crash burst wider than population" `Quick
          test_crash_burst_wider_than_population;
        Alcotest.test_case "crash zero-length schedule" `Quick test_crash_zero_length_schedule;
        Alcotest.test_case "crash back-to-back bursts" `Quick test_crash_back_to_back_bursts;
        Alcotest.test_case "crash bounds all patterns" `Quick test_crash_bounds_all_patterns;
        Alcotest.test_case "crash validation" `Quick test_crash_validation;
        Alcotest.test_case "crash empty" `Quick test_crash_empty;
        Alcotest.test_case "zipf single rank" `Quick test_zipf_single;
        Alcotest.test_case "zipf uniform" `Quick test_zipf_uniform;
        Alcotest.test_case "zipf high skew" `Quick test_zipf_high_skew;
        QCheck_alcotest.to_alcotest qcheck_zipf_cdf_and_draws;
      ] );
  ]
