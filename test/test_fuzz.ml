(* Tests for the coverage-guided schedule fuzzer: the PCT adversary,
   the interleaving-coverage signature, the corpus, and the campaign
   runner over the seeded-mutant roster. *)

module Pct = Renaming_fuzz.Pct
module Coverage = Renaming_fuzz.Coverage
module Corpus = Renaming_fuzz.Corpus
module Fuzz = Renaming_fuzz.Fuzz
module Fuzz_roster = Renaming_harness.Fuzz_roster
module Adversary = Renaming_sched.Adversary
module Directed = Renaming_sched.Directed
module Memory = Renaming_sched.Memory
module Op = Renaming_sched.Op
module Shrink = Renaming_faults.Shrink
module Xoshiro = Renaming_rng.Xoshiro

let check = Alcotest.check

(* --- PCT adversary --- *)

let view ?(time = 0) ~memory runnable =
  let runnable = Array.of_list runnable in
  {
    Adversary.time;
    runnable_count = Array.length runnable;
    runnable_nth = (fun i -> runnable.(i));
    is_runnable = (fun pid -> Array.exists (Int.equal pid) runnable);
    is_crashed = (fun _ -> false);
    pending_op = (fun _ -> Op.Yield);
    memory;
  }

let schedule_of = function
  | Adversary.Schedule p -> p
  | Adversary.Crash p -> Alcotest.failf "unexpected crash of %d" p
  | Adversary.Recover p -> Alcotest.failf "unexpected recovery of %d" p

let test_pct_depth1_is_stable_priorities () =
  (* depth 1 means zero change points: the same (highest-priority)
     process is scheduled at every decision while it stays runnable. *)
  let memory = Memory.create ~namespace:4 () in
  let v = view ~memory [ 0; 1; 2 ] in
  let a = Pct.adversary ~depth:1 ~n:3 ~k:50 ~rng:(Xoshiro.create 9L) () in
  let first = schedule_of (a.Adversary.decide v) in
  for _ = 1 to 30 do
    check Alcotest.int "stable top priority" first (schedule_of (a.Adversary.decide v))
  done

let test_pct_only_schedules_runnable () =
  let memory = Memory.create ~namespace:4 () in
  let a = Pct.adversary ~depth:3 ~n:4 ~k:10 ~rng:(Xoshiro.create 5L) () in
  for t = 0 to 20 do
    let p = schedule_of (a.Adversary.decide (view ~time:t ~memory [ 2 ])) in
    check Alcotest.int "only runnable pid" 2 p
  done

let test_pct_deterministic () =
  let memory = Memory.create ~namespace:4 () in
  let run () =
    let a = Pct.adversary ~depth:3 ~n:3 ~k:12 ~rng:(Xoshiro.create 77L) () in
    List.init 24 (fun t -> schedule_of (a.Adversary.decide (view ~time:t ~memory [ 0; 1; 2 ])))
  in
  check (Alcotest.list Alcotest.int) "same seed, same schedule" (run ()) (run ())

let test_pct_change_points_preempt () =
  (* Depth 3 over a short horizon must preempt at least once on some
     seed: the scheduled pid changes even though the runnable set does
     not.  (Each individual seed may or may not place its change points
     early; scan a few.) *)
  let memory = Memory.create ~namespace:4 () in
  let preempted seed =
    let a = Pct.adversary ~depth:3 ~n:3 ~k:8 ~rng:(Xoshiro.create seed) () in
    let v = view ~memory [ 0; 1; 2 ] in
    let ps = List.init 8 (fun _ -> schedule_of (a.Adversary.decide v)) in
    List.exists (fun p -> p <> List.hd ps) ps
  in
  check Alcotest.bool "some seed preempts" true
    (List.exists preempted [ 1L; 2L; 3L; 4L; 5L ])

let test_pct_with_crashes_respects_budget () =
  (* The crash-spending variant must crash at most [failures] processes,
     recover each one, and never crash the last runnable process. *)
  let memory = Memory.create ~namespace:4 () in
  let n = 3 in
  let a =
    Pct.with_crashes ~depth:3 ~n ~k:6 ~failures:1 ~recover_after:3 ~rng:(Xoshiro.create 3L) ()
  in
  let crashed = ref [] in
  let crashes = ref 0 and recoveries = ref 0 in
  for t = 0 to 29 do
    let runnable = List.filter (fun p -> not (List.mem p !crashed)) [ 0; 1; 2 ] in
    let runnable = Array.of_list runnable in
    let v =
      {
        Adversary.time = t;
        runnable_count = Array.length runnable;
        runnable_nth = (fun i -> runnable.(i));
        is_runnable = (fun pid -> Array.exists (Int.equal pid) runnable);
        is_crashed = (fun pid -> List.mem pid !crashed);
        pending_op = (fun _ -> Op.Yield);
        memory;
      }
    in
    match a.Adversary.decide v with
    | Adversary.Schedule p -> check Alcotest.bool "scheduled pid runnable" true (v.Adversary.is_runnable p)
    | Adversary.Crash p ->
      check Alcotest.bool "crash leaves a runnable process" true (v.Adversary.runnable_count > 1);
      crashed := p :: !crashed;
      incr crashes
    | Adversary.Recover p ->
      check Alcotest.bool "only crashed pids recover" true (List.mem p !crashed);
      crashed := List.filter (fun q -> q <> p) !crashed;
      incr recoveries
  done;
  check Alcotest.bool "failure budget respected" true (!crashes <= 1);
  check Alcotest.int "every crash recovered" !crashes !recoveries

(* --- coverage signatures --- *)

let acc ?(write = true) idx =
  { Memory.acc_region = Memory.Names; acc_idx = idx; acc_write = write; acc_pid_sensitive = false }

let test_coverage_conflict_edges () =
  let c = Coverage.create () in
  (* Same pid touching the same cell twice: no conflict. *)
  Coverage.record c ~pid:0 (Op.Tas_name 0) [ acc 0 ];
  Coverage.record c ~pid:0 (Op.Tas_name 0) [ acc 0 ];
  check Alcotest.int "no self-edge" 0 (Coverage.edge_count c);
  (* A different pid writing the same cell: one edge. *)
  Coverage.record c ~pid:1 (Op.Tas_name 0) [ acc 0 ];
  check Alcotest.int "write-write conflict" 1 (Coverage.edge_count c);
  (* Different cell: no interaction. *)
  Coverage.record c ~pid:1 (Op.Tas_name 3) [ acc 3 ];
  check Alcotest.int "distinct cells don't conflict" 1 (Coverage.edge_count c);
  Coverage.reset c;
  check Alcotest.int "reset clears edges" 0 (Coverage.edge_count c)

let test_coverage_read_read_no_edge () =
  let c = Coverage.create () in
  Coverage.record c ~pid:0 (Op.Read_name 0) [ acc ~write:false 0 ];
  Coverage.record c ~pid:1 (Op.Read_name 0) [ acc ~write:false 0 ];
  check Alcotest.int "read-read is not a conflict" 0 (Coverage.edge_count c);
  (* A write after the reads does conflict. *)
  Coverage.record c ~pid:0 (Op.Tas_name 0) [ acc 0 ];
  check Alcotest.int "read-write is" 1 (Coverage.edge_count c)

let test_coverage_pid_permutation_invariant () =
  (* Edges hash operation shapes, not process identities: relabeling the
     pids must produce the same signature. *)
  let play pids =
    let c = Coverage.create () in
    Coverage.record c ~pid:pids.(0) (Op.Tas_name 0) [ acc 0 ];
    Coverage.record c ~pid:pids.(1) (Op.Tas_name 0) [ acc 0 ];
    Coverage.record c ~pid:pids.(1) (Op.Read_name 1) [ acc ~write:false 1 ];
    Coverage.record c ~pid:pids.(0) (Op.Tas_name 1) [ acc 1 ];
    Coverage.edges c
  in
  check (Alcotest.list Alcotest.int64) "pid relabeling preserves edges"
    (play [| 0; 1 |])
    (play [| 5; 2 |])

(* --- corpus --- *)

let test_corpus_admission () =
  let c = Corpus.create () in
  check Alcotest.int "fresh edges admit" 2
    (Corpus.observe c ~iteration:0 ~prefix:[ Directed.Step 0 ] [ 1L; 2L ]);
  check Alcotest.int "one entry" 1 (Corpus.size c);
  (* The same edges again — even under a different prefix — are stale. *)
  check Alcotest.int "stale edges don't admit" 0
    (Corpus.observe c ~iteration:1 ~prefix:[ Directed.Step 1 ] [ 2L; 1L ]);
  check Alcotest.int "still one entry" 1 (Corpus.size c);
  check Alcotest.int "partially fresh admits" 1
    (Corpus.observe c ~iteration:2 ~prefix:[ Directed.Step 2 ] [ 2L; 3L ]);
  check Alcotest.int "two entries" 2 (Corpus.size c);
  check Alcotest.int "seen edges accumulate" 3 (Corpus.seen_edges c)

let test_corpus_pick_and_mutate () =
  let rng = Xoshiro.create 11L in
  let c = Corpus.create () in
  check (Alcotest.list Alcotest.string) "empty corpus picks the empty prefix" []
    (List.map Directed.choice_to_string (Corpus.pick c rng));
  ignore (Corpus.observe c ~iteration:0 ~prefix:[ Directed.Step 0; Directed.Step 1 ] [ 1L ]);
  check Alcotest.bool "pick returns the entry" true
    (Corpus.pick c rng = [ Directed.Step 0; Directed.Step 1 ]);
  (* Gated choice kinds never leak into mutants when disallowed. *)
  let base = List.init 6 (fun i -> Directed.Step (i mod 3)) in
  for _ = 1 to 200 do
    let m = Corpus.mutate ~rng ~n:3 ~allow_faults:false ~allow_crashes:false base in
    List.iter
      (fun choice ->
        match choice with
        | Directed.Step _ -> ()
        | c -> Alcotest.failf "disallowed choice %s" (Directed.choice_to_string c))
      m
  done;
  (* With crashes allowed (but faults not), faults still never appear. *)
  for _ = 1 to 200 do
    let m = Corpus.mutate ~rng ~n:3 ~allow_faults:false ~allow_crashes:true base in
    List.iter
      (fun choice ->
        match choice with
        | Directed.Fault _ -> Alcotest.fail "fault choice while disallowed"
        | _ -> ())
      m
  done

(* --- the campaign over the seeded-mutant roster --- *)

let test_fuzzer_finds_all_mutants () =
  let summary = Fuzz.run ~seed:1L ~iterations:200 (Fuzz_roster.mutants ()) in
  check Alcotest.bool "campaign ok" true (Fuzz.ok summary);
  List.iter
    (fun r ->
      check Alcotest.bool (r.Fuzz.r_target ^ " found") true (r.Fuzz.r_violations <> []);
      List.iter
        (fun v ->
          check Alcotest.bool (r.Fuzz.r_target ^ " has a shrunk repro") true (v.Fuzz.v_repro <> None))
        r.Fuzz.r_violations)
    summary.Fuzz.s_results

let test_fuzzer_repros_replay () =
  (* Every shrunk artifact must reproduce its violation when replayed
     through the directed executor against a roster-rebuilt instance —
     the same path `renaming shrink` takes. *)
  let summary = Fuzz.run ~seed:1L ~iterations:200 (Fuzz_roster.mutants ()) in
  let repros = Fuzz.repros summary in
  check Alcotest.int "one repro per mutant"
    (List.length (Fuzz_roster.mutants ()))
    (List.length repros);
  List.iter
    (fun (r : Shrink.repro) ->
      match Fuzz_roster.builder ~name:r.Shrink.rp_algorithm ~n:r.Shrink.rp_n with
      | None -> Alcotest.failf "roster cannot rebuild %s" r.Shrink.rp_algorithm
      | Some build ->
        let input =
          {
            Shrink.label = r.Shrink.rp_algorithm;
            build = (fun () -> build ~seed:r.Shrink.rp_seed);
            check_ownership = r.Shrink.rp_check_ownership;
            choices = r.Shrink.rp_choices;
            max_ticks = r.Shrink.rp_max_ticks;
            tau_cadence = r.Shrink.rp_tau_cadence;
          }
        in
        (match Shrink.execute input r.Shrink.rp_choices with
        | _, Some f ->
          check Alcotest.string (r.Shrink.rp_algorithm ^ " kind") r.Shrink.rp_kind
            f.Shrink.f_kind
        | _, None -> Alcotest.failf "%s repro does not replay" r.Shrink.rp_algorithm))
    repros

let test_fuzzer_clean_targets_stay_clean () =
  let clean =
    List.filter (fun t -> t.Fuzz.fz_name = "linear-scan-n4") (Fuzz_roster.clean ())
  in
  let summary = Fuzz.run ~seed:7L ~iterations:120 clean in
  check Alcotest.bool "clean campaign ok" true (Fuzz.ok summary);
  List.iter
    (fun r -> check Alcotest.int (r.Fuzz.r_target ^ " violation-free") 0
        (List.length r.Fuzz.r_violations))
    summary.Fuzz.s_results

let test_fuzzer_deterministic () =
  let run () = Fuzz.to_json (Fuzz.run ~seed:42L ~iterations:60 (Fuzz_roster.mutants ())) in
  check Alcotest.string "same seed, same campaign" (run ()) (run ())

let test_fuzzer_coverage_grows () =
  let summary = Fuzz.run ~seed:1L ~iterations:40 (Fuzz_roster.clean ()) in
  List.iter
    (fun r ->
      check Alcotest.bool (r.Fuzz.r_target ^ " has coverage") true (r.Fuzz.r_edges > 0);
      (* The growth curve is ascending in both coordinates and ends at
         the final edge count. *)
      let rec ascending = function
        | a :: (b :: _ as rest) ->
          a.Fuzz.g_iteration < b.Fuzz.g_iteration && a.Fuzz.g_edges < b.Fuzz.g_edges
          && ascending rest
        | _ -> true
      in
      check Alcotest.bool "growth curve ascending" true (ascending r.Fuzz.r_growth);
      match List.rev r.Fuzz.r_growth with
      | last :: _ -> check Alcotest.int "curve ends at edge count" r.Fuzz.r_edges last.Fuzz.g_edges
      | [] -> Alcotest.fail "empty growth curve despite coverage")
    summary.Fuzz.s_results

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub haystack i nn = needle || at (i + 1)) in
  at 0

let test_fuzz_json_shape () =
  let summary = Fuzz.run ~seed:1L ~iterations:40 (Fuzz_roster.mutants ()) in
  let json = Fuzz.to_json summary in
  List.iter
    (fun needle -> check Alcotest.bool ("json mentions " ^ needle) true (contains json needle))
    [ "\"seed\""; "\"pct_depth\""; "\"targets\""; "\"coverage_growth\""; "\"violations\"" ]

let tests =
  [
    ( "fuzz.pct",
      [
        Alcotest.test_case "depth 1 is stable priorities" `Quick test_pct_depth1_is_stable_priorities;
        Alcotest.test_case "schedules only runnable pids" `Quick test_pct_only_schedules_runnable;
        Alcotest.test_case "deterministic given the rng" `Quick test_pct_deterministic;
        Alcotest.test_case "change points preempt" `Quick test_pct_change_points_preempt;
        Alcotest.test_case "crash variant respects budgets" `Quick
          test_pct_with_crashes_respects_budget;
      ] );
    ( "fuzz.coverage",
      [
        Alcotest.test_case "conflict edges" `Quick test_coverage_conflict_edges;
        Alcotest.test_case "read-read is no conflict" `Quick test_coverage_read_read_no_edge;
        Alcotest.test_case "pid-permutation invariant" `Quick test_coverage_pid_permutation_invariant;
      ] );
    ( "fuzz.corpus",
      [
        Alcotest.test_case "admission on new edges only" `Quick test_corpus_admission;
        Alcotest.test_case "pick and gated mutation" `Quick test_corpus_pick_and_mutate;
      ] );
    ( "fuzz.campaign",
      [
        Alcotest.test_case "finds all seeded mutants" `Quick test_fuzzer_finds_all_mutants;
        Alcotest.test_case "shrunk repros replay" `Quick test_fuzzer_repros_replay;
        Alcotest.test_case "clean targets stay clean" `Quick test_fuzzer_clean_targets_stay_clean;
        Alcotest.test_case "campaign is deterministic" `Quick test_fuzzer_deterministic;
        Alcotest.test_case "coverage grows" `Quick test_fuzzer_coverage_grows;
        Alcotest.test_case "json shape" `Quick test_fuzz_json_shape;
      ] );
  ]
