(* Tests for the OCaml 5 multicore backend: linearizable TAS and the
   domain-parallel algorithm runners. *)

module Atomic_tas = Renaming_concurrent.Atomic_tas
module Mc_run = Renaming_concurrent.Mc_run
module Assignment = Renaming_shm.Assignment

let check = Alcotest.check

let test_atomic_tas_basics () =
  let t = Atomic_tas.create 4 in
  check Alcotest.int "size" 4 (Atomic_tas.size t);
  check Alcotest.bool "win" true (Atomic_tas.test_and_set t ~idx:1 ~pid:3);
  check Alcotest.bool "lose" false (Atomic_tas.test_and_set t ~idx:1 ~pid:4);
  check Alcotest.(option int) "owner" (Some 3) (Atomic_tas.owner t 1);
  check Alcotest.bool "is_set" true (Atomic_tas.is_set t 1);
  check Alcotest.int "set count" 1 (Atomic_tas.set_count t)

let test_atomic_tas_parallel_single_winner () =
  (* Many domains race on every register; each register must end with
     exactly one owner and every domain's win-claims must be disjoint. *)
  let size = 64 in
  let t = Atomic_tas.create size in
  let domains = 4 in
  let worker d () =
    let wins = ref [] in
    for idx = 0 to size - 1 do
      if Atomic_tas.test_and_set t ~idx ~pid:d then wins := idx :: !wins
    done;
    !wins
  in
  let handles = Array.init (domains - 1) (fun d -> Domain.spawn (worker (d + 1))) in
  let w0 = worker 0 () in
  let all_wins = w0 :: Array.to_list (Array.map Domain.join handles) in
  let total = List.fold_left (fun acc l -> acc + List.length l) 0 all_wins in
  check Alcotest.int "every register won exactly once" size total;
  check Alcotest.int "set count" size (Atomic_tas.set_count t);
  (* Claimed wins match recorded owners. *)
  List.iteri
    (fun _ wins -> List.iter (fun idx -> check Alcotest.bool "owned" true (Atomic_tas.is_set t idx)) wins)
    all_wins

let test_atomic_to_assignment () =
  let t = Atomic_tas.create 4 in
  ignore (Atomic_tas.test_and_set t ~idx:2 ~pid:0);
  let a = Atomic_tas.to_assignment t ~processes:2 in
  check Alcotest.(option int) "pid 0 name" (Some 2) a.Assignment.names.(0);
  check Alcotest.(option int) "pid 1 unnamed" None a.Assignment.names.(1)

let test_mc_loose_geometric () =
  let result = Mc_run.loose_geometric ~domains:4 ~n:4096 ~ell:2 ~seed:1L () in
  check Alcotest.bool "valid assignment" true (Assignment.is_valid result.Mc_run.assignment);
  check Alcotest.bool "some processes named" true
    (Assignment.named_count result.Mc_run.assignment > 4096 / 2);
  (* Step budget of Lemma 6. *)
  check Alcotest.bool "steps within budget" true (Mc_run.max_steps result <= 30)

let test_mc_loose_clustered () =
  let result = Mc_run.loose_clustered ~domains:4 ~n:4096 ~ell:1 ~seed:2L () in
  check Alcotest.bool "valid assignment" true (Assignment.is_valid result.Mc_run.assignment);
  check Alcotest.bool "mostly named" true
    (Mc_run.unnamed_count result < 4096 / 8)

let test_mc_uniform_probing_complete () =
  let result = Mc_run.uniform_probing ~domains:4 ~n:1024 ~m:2048 ~seed:3L () in
  check Alcotest.bool "valid" true (Assignment.is_valid result.Mc_run.assignment);
  check Alcotest.int "complete" 0 (Mc_run.unnamed_count result)

let test_mc_single_domain () =
  (* domains=1 must work (no spawns). *)
  let result = Mc_run.loose_geometric ~domains:1 ~n:512 ~ell:1 ~seed:4L () in
  check Alcotest.bool "valid" true (Assignment.is_valid result.Mc_run.assignment);
  check Alcotest.int "domains" 1 result.Mc_run.domains

let test_mc_steps_recorded () =
  let result = Mc_run.uniform_probing ~domains:2 ~n:256 ~m:512 ~seed:5L () in
  let nonzero = Array.for_all (fun s -> s > 0) result.Mc_run.steps in
  check Alcotest.bool "every process took steps" true nonzero

let test_mc_repeated_runs_sound () =
  (* Soundness across repeated runs and domain counts: no run may ever
     hand out a duplicate name, uniform probing with [m >= n] must fully
     cover, and a process holding a name must have taken at least one
     step (a name with zero recorded steps would mean the backend
     assigned it out of thin air). *)
  let assert_named_stepped label result =
    Array.iteri
      (fun pid name ->
        match name with
        | Some _ ->
          check Alcotest.bool
            (Printf.sprintf "%s: named pid %d took steps" label pid)
            true
            (result.Mc_run.steps.(pid) >= 1)
        | None -> ())
      result.Mc_run.assignment.Assignment.names
  in
  List.iter
    (fun domains ->
      List.iter
        (fun seed ->
          let label = Printf.sprintf "d%d/s%Ld" domains seed in
          let probing = Mc_run.uniform_probing ~domains ~n:192 ~m:192 ~seed () in
          check Alcotest.bool (label ^ ": probing no duplicate names") true
            (Assignment.is_valid probing.Mc_run.assignment);
          check Alcotest.int (label ^ ": probing m=n fully covers") 0
            (Mc_run.unnamed_count probing);
          assert_named_stepped (label ^ "/probing") probing;
          let loose = Mc_run.loose_geometric ~domains ~n:192 ~ell:2 ~seed () in
          check Alcotest.bool (label ^ ": loose no duplicate names") true
            (Assignment.is_valid loose.Mc_run.assignment);
          assert_named_stepped (label ^ "/loose") loose)
        [ 21L; 22L; 23L ])
    [ 2; 3 ]

let test_recommended_domains_positive () =
  check Alcotest.bool "at least one" true (Mc_run.recommended_domains () >= 1)

(* --- the stress watchdog --- *)

module Clock = Renaming_clock.Clock

(* Every process probes the single register forever: one wins and
   retires, the rest are livelocked.  [count] is effectively infinite
   relative to any deadline. *)
let livelock_schedule _pid = [| Mc_run.Probe { base = 0; size = 1; count = max_int } |]

let test_watchdog_stalls_livelocked_run () =
  (* A unit-step virtual clock makes the deadline trip after a handful
     of watchdog polls, independent of real time. *)
  match
    Mc_run.execute ~domains:2 ~clock:(Clock.virtual_ ()) ~deadline:5.0 ~n:4 ~namespace:1
      ~schedule_of_pid:livelock_schedule ~seed:1L ()
  with
  | _ -> Alcotest.fail "livelocked run terminated"
  | exception Mc_run.Stalled { deadline; elapsed; per_domain_steps; finished_domains; domains } ->
    check (Alcotest.float 1e-9) "deadline recorded" 5.0 deadline;
    check Alcotest.bool "elapsed past deadline" true (elapsed >= deadline);
    check Alcotest.int "per-domain diagnostic" 2 (Array.length per_domain_steps);
    check Alcotest.int "domains" 2 domains;
    check Alcotest.bool "not all domains finished" true (finished_domains < 2)

let test_watchdog_diagnostic_renders () =
  match
    Mc_run.execute ~domains:2 ~clock:(Clock.virtual_ ()) ~deadline:3.0 ~n:4 ~namespace:1
      ~schedule_of_pid:livelock_schedule ~seed:2L ()
  with
  | _ -> Alcotest.fail "livelocked run terminated"
  | exception (Mc_run.Stalled _ as e) ->
    let s = Mc_run.stalled_to_string e in
    List.iter
      (fun fragment ->
        let nh = String.length s and nn = String.length fragment in
        let rec at i = i + nn <= nh && (String.sub s i nn = fragment || at (i + 1)) in
        check Alcotest.bool ("diagnostic mentions " ^ fragment) true (at 0))
      [ "stalled"; "deadline"; "domains finished"; "d0="; "d1=" ]

let test_watchdog_passes_healthy_run () =
  (* A terminating run under a generous deadline completes normally and
     still reports clock-measured wall time. *)
  let result =
    Mc_run.loose_geometric ~domains:2 ~clock:(Clock.virtual_ ~step:0.001 ()) ~deadline:1e6 ~n:256
      ~ell:2 ~seed:3L ()
  in
  check Alcotest.bool "valid assignment" true (Assignment.is_valid result.Mc_run.assignment);
  check Alcotest.int "domains" 2 result.Mc_run.domains;
  check Alcotest.bool "wall time measured" true (result.Mc_run.wall_seconds > 0.)

let test_watchdog_parameter_validation () =
  let run ?clock ?deadline () =
    ignore
      (Mc_run.execute ?clock ?deadline ~domains:1 ~n:2 ~namespace:2
         ~schedule_of_pid:(fun _ -> [| Mc_run.Sweep { base = 0; size = 2 } |])
         ~seed:4L ())
  in
  Alcotest.check_raises "deadline without a clock"
    (Invalid_argument "Mc_run.execute: a deadline needs a ticking clock") (fun () ->
      run ~deadline:1.0 ());
  Alcotest.check_raises "non-positive deadline"
    (Invalid_argument "Mc_run.execute: deadline must be > 0") (fun () ->
      run ~clock:(Clock.virtual_ ()) ~deadline:0. ())

let tests =
  [
    ( "concurrent",
      [
        Alcotest.test_case "atomic tas basics" `Quick test_atomic_tas_basics;
        Alcotest.test_case "parallel single winner" `Quick test_atomic_tas_parallel_single_winner;
        Alcotest.test_case "to assignment" `Quick test_atomic_to_assignment;
        Alcotest.test_case "mc loose geometric" `Quick test_mc_loose_geometric;
        Alcotest.test_case "mc loose clustered" `Quick test_mc_loose_clustered;
        Alcotest.test_case "mc probing complete" `Quick test_mc_uniform_probing_complete;
        Alcotest.test_case "mc single domain" `Quick test_mc_single_domain;
        Alcotest.test_case "mc steps recorded" `Quick test_mc_steps_recorded;
        Alcotest.test_case "mc repeated runs sound" `Quick test_mc_repeated_runs_sound;
        Alcotest.test_case "recommended domains" `Quick test_recommended_domains_positive;
        Alcotest.test_case "watchdog stalls a livelocked run" `Quick
          test_watchdog_stalls_livelocked_run;
        Alcotest.test_case "watchdog diagnostic renders" `Quick test_watchdog_diagnostic_renders;
        Alcotest.test_case "watchdog passes a healthy run" `Quick test_watchdog_passes_healthy_run;
        Alcotest.test_case "watchdog parameter validation" `Quick
          test_watchdog_parameter_validation;
      ] );
  ]
