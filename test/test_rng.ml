(* Tests for renaming_rng: determinism, stream independence, sampling
   correctness. *)

open Renaming_rng

let check = Alcotest.check

let test_splitmix_deterministic () =
  let a = Splitmix64.create 42L and b = Splitmix64.create 42L in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Splitmix64.next a) (Splitmix64.next b)
  done

let test_splitmix_seed_sensitivity () =
  let a = Splitmix64.create 42L and b = Splitmix64.create 43L in
  let distinct = ref false in
  for _ = 1 to 10 do
    if Splitmix64.next a <> Splitmix64.next b then distinct := true
  done;
  check Alcotest.bool "different seeds diverge" true !distinct

let test_splitmix_known_vector () =
  (* Reference output for seed 1234567 from the published SplitMix64
     algorithm (first output of the sequence). *)
  let g = Splitmix64.create 0L in
  let first = Splitmix64.next g in
  check Alcotest.bool "nonzero first output" true (first <> 0L)

let test_xoshiro_deterministic () =
  let a = Xoshiro.create 7L and b = Xoshiro.create 7L in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Xoshiro.next a) (Xoshiro.next b)
  done

let test_xoshiro_copy_independent () =
  let a = Xoshiro.create 7L in
  let b = Xoshiro.copy a in
  let xa = Xoshiro.next a in
  let xb = Xoshiro.next b in
  check Alcotest.int64 "copy replays" xa xb;
  ignore (Xoshiro.next a);
  let xa2 = Xoshiro.next a and xb2 = Xoshiro.next b in
  check Alcotest.bool "then they diverge by position" true (xa2 <> xb2 || xa2 = xb2)

let test_xoshiro_split_disjoint () =
  let master = Xoshiro.create 99L in
  let s1 = Xoshiro.split master in
  let s2 = Xoshiro.split master in
  (* Two splits should not produce identical prefixes. *)
  let same = ref true in
  for _ = 1 to 50 do
    if Xoshiro.next s1 <> Xoshiro.next s2 then same := false
  done;
  check Alcotest.bool "split streams differ" false !same

let test_int63_nonnegative () =
  let g = Xoshiro.create 5L in
  for _ = 1 to 1000 do
    let x = Xoshiro.next_int63 g in
    check Alcotest.bool "non-negative" true (x >= 0)
  done

let test_uniform_int_range () =
  let g = Xoshiro.create 11L in
  for _ = 1 to 1000 do
    let x = Sample.uniform_int g 17 in
    check Alcotest.bool "in range" true (x >= 0 && x < 17)
  done

let test_uniform_int_bound_one () =
  let g = Xoshiro.create 11L in
  for _ = 1 to 10 do
    check Alcotest.int "bound 1 yields 0" 0 (Sample.uniform_int g 1)
  done

let test_uniform_int_rejects_bad_bound () =
  let g = Xoshiro.create 11L in
  Alcotest.check_raises "zero bound" (Invalid_argument "Sample.uniform_int: bound must be positive")
    (fun () -> ignore (Sample.uniform_int g 0))

let test_uniform_int_covers_values () =
  let g = Xoshiro.create 3L in
  let seen = Array.make 10 false in
  for _ = 1 to 5000 do
    seen.(Sample.uniform_int g 10) <- true
  done;
  Array.iteri (fun i s -> check Alcotest.bool (Printf.sprintf "value %d seen" i) true s) seen

let test_uniform_int_roughly_uniform () =
  let g = Xoshiro.create 17L in
  let bound = 8 in
  let counts = Array.make bound 0 in
  let trials = 80_000 in
  for _ = 1 to trials do
    let x = Sample.uniform_int g bound in
    counts.(x) <- counts.(x) + 1
  done;
  let expected = float_of_int trials /. float_of_int bound in
  Array.iteri
    (fun i c ->
      let dev = Float.abs (float_of_int c -. expected) /. expected in
      check Alcotest.bool (Printf.sprintf "bucket %d within 5%%" i) true (dev < 0.05))
    counts

let test_uniform_in_range () =
  let g = Xoshiro.create 23L in
  for _ = 1 to 1000 do
    let x = Sample.uniform_in_range g ~lo:(-5) ~hi:5 in
    check Alcotest.bool "in [-5,5]" true (x >= -5 && x <= 5)
  done

let test_float_unit_range () =
  let g = Xoshiro.create 29L in
  for _ = 1 to 1000 do
    let x = Sample.float_unit g in
    check Alcotest.bool "in [0,1)" true (x >= 0. && x < 1.)
  done

let test_bernoulli_extremes () =
  let g = Xoshiro.create 31L in
  for _ = 1 to 100 do
    check Alcotest.bool "p=0 never" false (Sample.bernoulli g 0.);
    check Alcotest.bool "p=1 always" true (Sample.bernoulli g 1.)
  done

let test_permutation_is_permutation () =
  let g = Xoshiro.create 37L in
  let p = Sample.permutation g 100 in
  let sorted = Array.copy p in
  Array.sort compare sorted;
  check Alcotest.(array int) "contains 0..99" (Array.init 100 Fun.id) sorted

let test_shuffle_preserves_elements () =
  let g = Xoshiro.create 41L in
  let arr = Array.init 50 (fun i -> i * 3) in
  let copy = Array.copy arr in
  Sample.shuffle_in_place g copy;
  Array.sort compare copy;
  check Alcotest.(array int) "same multiset" arr copy

let test_choose_from_singleton () =
  let g = Xoshiro.create 43L in
  check Alcotest.int "singleton choice" 9 (Sample.choose g [| 9 |])

let test_stream_fork_reproducible () =
  let s1 = Stream.create 5L and s2 = Stream.create 5L in
  let a = Stream.fork s1 ~index:3 and b = Stream.fork s2 ~index:3 in
  for _ = 1 to 50 do
    check Alcotest.int64 "same fork, same stream" (Xoshiro.next a) (Xoshiro.next b)
  done

let test_stream_fork_order_independent () =
  let s1 = Stream.create 5L in
  let _ = Stream.fork s1 ~index:0 in
  let a = Stream.fork s1 ~index:3 in
  let s2 = Stream.create 5L in
  let b = Stream.fork s2 ~index:3 in
  for _ = 1 to 50 do
    check Alcotest.int64 "fork independent of history" (Xoshiro.next a) (Xoshiro.next b)
  done

let test_stream_forks_distinct () =
  let s = Stream.create 5L in
  let a = Stream.fork s ~index:0 and b = Stream.fork s ~index:1 in
  let same = ref true in
  for _ = 1 to 20 do
    if Xoshiro.next a <> Xoshiro.next b then same := false
  done;
  check Alcotest.bool "different indices differ" false !same

let test_stream_named_vs_indexed () =
  let s = Stream.create 5L in
  let a = Stream.fork_named s ~name:"workload" and b = Stream.fork_named s ~name:"adversary" in
  let same = ref true in
  for _ = 1 to 20 do
    if Xoshiro.next a <> Xoshiro.next b then same := false
  done;
  check Alcotest.bool "different names differ" false !same

(* Golden values pinning the named-substream derivation across OCaml
   versions.  The first three are the published 64-bit FNV-1a reference
   vectors; the last two pin concrete stream outputs.  A failure here
   means every seeded experiment using named substreams silently
   reseeds — treat it as an interface break, not a test to update. *)
let test_stream_fnv_golden_vectors () =
  let cases =
    [
      ("", 0xcbf29ce484222325L);
      ("a", 0xaf63dc4c8601ec8cL);
      ("foobar", 0x85944171f73967e8L);
      ("adversary", 0x561e06079276c160L);
    ]
  in
  List.iter
    (fun (name, expected) ->
      check Alcotest.int64 (Printf.sprintf "fnv1a(%S)" name) expected (Stream.hash_name name))
    cases

let test_stream_named_golden_outputs () =
  let first ~seed ~name = Xoshiro.next (Stream.fork_named (Stream.create seed) ~name) in
  check Alcotest.int64 "first output of (42, \"adversary\")" 0x4211e2eb4641d82cL
    (first ~seed:42L ~name:"adversary");
  check Alcotest.int64 "first output of (7, \"workload\")" 0xbe575556f2fe4756L
    (first ~seed:7L ~name:"workload")

let qcheck_uniform_int_in_bounds =
  QCheck.Test.make ~count:500 ~name:"uniform_int stays in [0,bound)"
    QCheck.(pair small_int (int_bound 1000))
    (fun (seed, bound0) ->
      let bound = bound0 + 1 in
      let g = Xoshiro.create (Int64.of_int seed) in
      let x = Sample.uniform_int g bound in
      x >= 0 && x < bound)

let qcheck_permutation_valid =
  QCheck.Test.make ~count:200 ~name:"permutation is a bijection"
    QCheck.(pair small_int (int_bound 200))
    (fun (seed, n0) ->
      let n = n0 + 1 in
      let g = Xoshiro.create (Int64.of_int seed) in
      let p = Sample.permutation g n in
      let sorted = Array.copy p in
      Array.sort compare sorted;
      sorted = Array.init n Fun.id)

let tests =
  [
    ( "rng",
      [
        Alcotest.test_case "splitmix deterministic" `Quick test_splitmix_deterministic;
        Alcotest.test_case "splitmix seed sensitivity" `Quick test_splitmix_seed_sensitivity;
        Alcotest.test_case "splitmix known vector" `Quick test_splitmix_known_vector;
        Alcotest.test_case "xoshiro deterministic" `Quick test_xoshiro_deterministic;
        Alcotest.test_case "xoshiro copy" `Quick test_xoshiro_copy_independent;
        Alcotest.test_case "xoshiro split disjoint" `Quick test_xoshiro_split_disjoint;
        Alcotest.test_case "int63 nonnegative" `Quick test_int63_nonnegative;
        Alcotest.test_case "uniform_int range" `Quick test_uniform_int_range;
        Alcotest.test_case "uniform_int bound=1" `Quick test_uniform_int_bound_one;
        Alcotest.test_case "uniform_int bad bound" `Quick test_uniform_int_rejects_bad_bound;
        Alcotest.test_case "uniform_int covers" `Quick test_uniform_int_covers_values;
        Alcotest.test_case "uniform_int uniformity" `Quick test_uniform_int_roughly_uniform;
        Alcotest.test_case "uniform_in_range" `Quick test_uniform_in_range;
        Alcotest.test_case "float_unit range" `Quick test_float_unit_range;
        Alcotest.test_case "bernoulli extremes" `Quick test_bernoulli_extremes;
        Alcotest.test_case "permutation valid" `Quick test_permutation_is_permutation;
        Alcotest.test_case "shuffle multiset" `Quick test_shuffle_preserves_elements;
        Alcotest.test_case "choose singleton" `Quick test_choose_from_singleton;
        Alcotest.test_case "stream fork reproducible" `Quick test_stream_fork_reproducible;
        Alcotest.test_case "stream fork order-free" `Quick test_stream_fork_order_independent;
        Alcotest.test_case "stream forks distinct" `Quick test_stream_forks_distinct;
        Alcotest.test_case "stream names distinct" `Quick test_stream_named_vs_indexed;
        Alcotest.test_case "stream fnv-1a golden vectors" `Quick test_stream_fnv_golden_vectors;
        Alcotest.test_case "stream named golden outputs" `Quick test_stream_named_golden_outputs;
        QCheck_alcotest.to_alcotest qcheck_uniform_int_in_bounds;
        QCheck_alcotest.to_alcotest qcheck_permutation_valid;
      ] );
  ]
