(* Tests for the lease-based renaming service: the deterministic heap,
   the lease table (fencing, expiry, reclamation), the admission queue,
   session minting, the independent audit mirror, the service façade
   under a hand-driven clock, and determinism of the churn simulation. *)

module Heap = Renaming_service.Heap
module Lease = Renaming_service.Lease
module Admission = Renaming_service.Admission
module Minter = Renaming_service.Minter
module Audit = Renaming_service.Audit
module Service = Renaming_service.Service
module Churn = Renaming_service.Churn
module Clock = Renaming_clock.Clock
module Xoshiro = Renaming_rng.Xoshiro

let check = Alcotest.check

let manual_clock () =
  let t = ref 0.0 in
  (t, Clock.of_fn ~label:"test-manual" (fun () -> !t))

(* ------------------------------------------------------------------ *)
(* Heap: deterministic pop order, ties broken by insertion sequence.  *)

let test_heap_deterministic_order () =
  let h = Heap.create () in
  List.iter (fun (time, v) -> Heap.push h ~time v)
    [ (3.0, "late"); (1.0, "first"); (2.0, "mid"); (1.0, "second") ];
  check Alcotest.int "size" 4 (Heap.size h);
  check (Alcotest.option (Alcotest.float 1e-9)) "peek" (Some 1.0) (Heap.peek_time h);
  let drain = ref [] in
  let rec go () =
    match Heap.pop h with
    | Some (_, v) -> drain := v :: !drain; go ()
    | None -> ()
  in
  go ();
  check Alcotest.(list string) "FIFO within equal times"
    [ "first"; "second"; "mid"; "late" ] (List.rev !drain);
  check Alcotest.bool "empty after drain" true (Heap.is_empty h)

(* ------------------------------------------------------------------ *)
(* Lease table: capacity, fencing, release epoch bump.                *)

let test_lease_capacity_and_release () =
  let rng = Xoshiro.create 7L in
  let lease = Lease.create (Lease.make_config ~capacity:2 ~ttl:10.0 ()) in
  let grant session =
    match Lease.acquire lease ~session ~now:0.0 ~rng with
    | Ok g -> g.Lease.g_fence
    | Error `At_capacity -> Alcotest.fail "unexpected At_capacity"
  in
  let f1 = grant 1 in
  let f2 = grant 2 in
  check Alcotest.int "held" 2 (Lease.held lease);
  check Alcotest.bool "distinct names" true (f1.Lease.f_name <> f2.Lease.f_name);
  (match Lease.acquire lease ~session:3 ~now:0.0 ~rng with
  | Error `At_capacity -> ()
  | Ok _ -> Alcotest.fail "third grant must hit capacity");
  (match Lease.release lease ~fence:f1 ~now:4.0 with
  | Ok dur -> check (Alcotest.float 1e-9) "held duration" 4.0 dur
  | Error `Fenced -> Alcotest.fail "live release fenced");
  (* The released fence is dead immediately: the epoch bumped. *)
  (match Lease.validate lease ~fence:f1 with
  | Error `Fenced -> ()
  | Ok () -> Alcotest.fail "released fence validated");
  (* Capacity is available again. *)
  let f3 = grant 3 in
  check Alcotest.bool "slot in range" true
    (f3.Lease.f_name >= 0 && f3.Lease.f_name < Lease.slots lease);
  check Alcotest.(option int) "holder tracked" (Some 3)
    (Lease.holder lease ~name:f3.Lease.f_name)

let test_lease_reclaim_skips_renewed () =
  let rng = Xoshiro.create 8L in
  let lease = Lease.create (Lease.make_config ~capacity:2 ~ttl:5.0 ()) in
  let fence s =
    match Lease.acquire lease ~session:s ~now:0.0 ~rng with
    | Ok g -> g.Lease.g_fence
    | Error `At_capacity -> Alcotest.fail "capacity"
  in
  let live = fence 1 in
  let dead = fence 2 in
  (* Renew the live one at t=4 (new expiry 9); leave the other to rot. *)
  (match Lease.renew lease ~fence:live ~now:4.0 with
  | Ok e -> check (Alcotest.float 1e-9) "renewed expiry" 9.0 e
  | Error `Fenced -> Alcotest.fail "live renew fenced");
  let reclaimed = Lease.reclaim_expired lease ~now:6.0 in
  check Alcotest.int "one lease reclaimed" 1 (List.length reclaimed);
  let r = List.hd reclaimed in
  check Alcotest.int "the unrenewed one" dead.Lease.f_session
    r.Lease.r_fence.Lease.f_session;
  check (Alcotest.float 1e-9) "lateness = now - expiry" 1.0 r.Lease.r_lateness;
  (match Lease.validate lease ~fence:live with
  | Ok () -> ()
  | Error `Fenced -> Alcotest.fail "renewed lease was revoked");
  (match Lease.validate lease ~fence:dead with
  | Error `Fenced -> ()
  | Ok () -> Alcotest.fail "reclaimed fence still validates")

(* ------------------------------------------------------------------ *)
(* Admission: shedding, queue bound, deadline expiry.                 *)

let test_admission_shed_and_expire () =
  let adm =
    Admission.create
      (Admission.make_config ~queue_limit:2 ~request_timeout:1.0 ~high_water:0.9 ())
  in
  (match Admission.offer adm ~session:1 ~now:0.0 ~utilization:0.95 with
  | Error Admission.High_water -> ()
  | _ -> Alcotest.fail "high utilization must shed");
  let t1 =
    match Admission.offer adm ~session:1 ~now:0.0 ~utilization:0.1 with
    | Ok t -> t
    | Error _ -> Alcotest.fail "offer 1"
  in
  (match Admission.offer adm ~session:2 ~now:0.2 ~utilization:0.1 with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "offer 2");
  (match Admission.offer adm ~session:3 ~now:0.3 ~utilization:0.1 with
  | Error Admission.Queue_full -> ()
  | _ -> Alcotest.fail "bounded queue must refuse the third");
  check Alcotest.int "depth" 2 (Admission.depth adm);
  (* Take the head before it times out. *)
  (match Admission.take adm ~now:0.5 with
  | Some (ticket, session, waited) ->
    check Alcotest.int "head ticket" t1 ticket;
    check Alcotest.int "head session" 1 session;
    check (Alcotest.float 1e-9) "waited" 0.5 waited
  | None -> Alcotest.fail "take");
  (* The second request (queued at 0.2, timeout 1.0) expires past 1.2. *)
  let expired = Admission.expire adm ~now:2.0 in
  check Alcotest.int "one expiry" 1 (List.length expired);
  let x = List.hd expired in
  check Alcotest.int "expired session" 2 x.Admission.x_session;
  check (Alcotest.float 1e-9) "expired wait" 1.8 x.Admission.x_waited;
  check
    (Alcotest.option (Alcotest.triple Alcotest.int Alcotest.int (Alcotest.float 1e-9)))
    "queue drained" None
    (Admission.take adm ~now:2.0)

(* ------------------------------------------------------------------ *)
(* Minter: global uniqueness across dispenser blocks.                 *)

let test_minter_unique_across_blocks () =
  let rng = Xoshiro.create 9L in
  let m = Minter.create ~block_capacity:8 ~rng () in
  let seen = Hashtbl.create 128 in
  for _ = 1 to 100 do
    let id = Minter.mint m in
    check Alcotest.bool "session id fresh" false (Hashtbl.mem seen id);
    Hashtbl.add seen id ()
  done;
  check Alcotest.int "minted" 100 (Minter.minted m);
  check Alcotest.bool "chained blocks" true (Minter.blocks m > 1);
  check Alcotest.bool "probes counted" true (Minter.probes m >= 100)

(* ------------------------------------------------------------------ *)
(* Audit mirror: each invariant fires on a contradicting stream.      *)

let expect_violation ~kind f =
  match f () with
  | () -> Alcotest.fail (Printf.sprintf "expected %s violation" kind)
  | exception Audit.Violation v ->
    check Alcotest.string "violation kind" kind v.kind

let fence ~name ~session ~epoch =
  { Lease.f_name = name; f_session = session; f_epoch = epoch }

let test_audit_catches_double_grant () =
  let a = Audit.create ~capacity:4 ~slots:8 in
  Audit.observe a ~now:0.0
    (Audit.Granted { fence = fence ~name:0 ~session:1 ~epoch:1; expires = 10.0 });
  expect_violation ~kind:"double-grant" (fun () ->
      Audit.observe a ~now:1.0
        (Audit.Granted { fence = fence ~name:0 ~session:2 ~epoch:2; expires = 11.0 }))

let test_audit_catches_stale_accept () =
  let a = Audit.create ~capacity:4 ~slots:8 in
  let f = fence ~name:3 ~session:1 ~epoch:1 in
  Audit.observe a ~now:0.0 (Audit.Granted { fence = f; expires = 2.0 });
  Audit.observe a ~now:5.0 (Audit.Reclaimed { fence = f; expired_at = 2.0 });
  expect_violation ~kind:"stale-accept" (fun () ->
      Audit.observe a ~now:6.0 (Audit.Validated { fence = f; accepted = true }))

let test_audit_catches_early_reclaim () =
  let a = Audit.create ~capacity:4 ~slots:8 in
  let f = fence ~name:2 ~session:1 ~epoch:1 in
  Audit.observe a ~now:0.0 (Audit.Granted { fence = f; expires = 10.0 });
  expect_violation ~kind:"early-reclaim" (fun () ->
      Audit.observe a ~now:5.0 (Audit.Reclaimed { fence = f; expired_at = 10.0 }))

let test_audit_catches_time_regression () =
  let a = Audit.create ~capacity:4 ~slots:8 in
  Audit.observe a ~now:5.0
    (Audit.Granted { fence = fence ~name:0 ~session:1 ~epoch:1; expires = 15.0 });
  expect_violation ~kind:"time-regression" (fun () ->
      Audit.observe a ~now:4.0
        (Audit.Granted { fence = fence ~name:1 ~session:2 ~epoch:1; expires = 14.0 }))

(* ------------------------------------------------------------------ *)
(* Service façade under a hand-driven clock.                          *)

let service ?(capacity = 2) ?(ttl = 10.0) ?(queue_limit = 4)
    ?(request_timeout = 1.5) ?(high_water = 1.5) () =
  let time, clock = manual_clock () in
  let cfg =
    Service.make_config
      ~lease:(Lease.make_config ~capacity ~ttl ())
      ~admission:
        (Admission.make_config ~queue_limit ~request_timeout ~high_water ())
      ()
  in
  (time, Service.create ~clock ~rng:(Xoshiro.create 21L) cfg)

let test_service_queue_then_reclaim_grant () =
  let time, svc = service ~ttl:5.0 () in
  let g session =
    match Service.acquire svc ~session with
    | Service.Granted g -> g.Lease.g_fence
    | _ -> Alcotest.fail "expected immediate grant"
  in
  let _f1 = g 1 in
  let _f2 = g 2 in
  let ticket =
    match Service.acquire svc ~session:3 with
    | Service.Queued t -> t
    | _ -> Alcotest.fail "expected queueing at capacity"
  in
  check Alcotest.int "queue depth" 1 (Service.queue_depth svc);
  check Alcotest.int "nothing to grant yet" 0 (List.length (Service.pump svc));
  (* Neither holder releases; their leases expire at t=5 and the queued
     request (timeout 1.5 — already overdue, but grants beat the check
     only if capacity frees first; here it timed out long before). *)
  time := 1.0;
  (match Service.pump svc with
  | [ Service.Timed_out _ ] -> Alcotest.fail "not yet overdue"
  | [] -> ()
  | _ -> Alcotest.fail "unexpected completions");
  time := 6.0;
  (match Service.pump svc with
  | [ Service.Timed_out { ticket = t; session; _ } ] ->
    check Alcotest.int "timed-out ticket" ticket t;
    check Alcotest.int "timed-out session" 3 session
  | _ -> Alcotest.fail "expected a request timeout");
  (* The two original leases were reclaimed by the same pump. *)
  check Alcotest.int "all reclaimed" 0 (Service.held svc);
  let s = Service.stats svc in
  check Alcotest.int "reclaims" 2 s.Service.reclaims;
  check Alcotest.int "expired requests" 1 s.Service.expired_requests;
  check Alcotest.int "audit live agrees" 0 (Service.audit_live svc)

let test_service_queue_drain_done () =
  let time, svc = service ~ttl:5.0 ~request_timeout:50.0 () in
  (match Service.acquire svc ~session:1 with
  | Service.Granted _ -> ()
  | _ -> Alcotest.fail "grant 1");
  (match Service.acquire svc ~session:2 with
  | Service.Granted _ -> ()
  | _ -> Alcotest.fail "grant 2");
  let ticket =
    match Service.acquire svc ~session:3 with
    | Service.Queued t -> t
    | _ -> Alcotest.fail "queue 3"
  in
  time := 6.0;
  (match Service.pump svc with
  | [ Service.Done { ticket = t; session; grant; waited } ] ->
    check Alcotest.int "done ticket" ticket t;
    check Alcotest.int "done session" 3 session;
    check (Alcotest.float 1e-9) "waited" 6.0 waited;
    check Alcotest.int "grant fence session" 3 grant.Lease.g_fence.Lease.f_session
  | _ -> Alcotest.fail "expected queued request granted after reclaim");
  check Alcotest.int "one live lease" 1 (Service.held svc)

let test_service_high_water_shed () =
  let _, svc = service ~capacity:4 ~high_water:0.5 () in
  (match Service.acquire svc ~session:1 with
  | Service.Granted _ -> ()
  | _ -> Alcotest.fail "grant 1");
  (match Service.acquire svc ~session:2 with
  | Service.Granted _ -> ()
  | _ -> Alcotest.fail "grant 2");
  (* utilization = 0.5 = high water: shed, do not queue. *)
  (match Service.acquire svc ~session:3 with
  | Service.Shed Admission.High_water -> ()
  | _ -> Alcotest.fail "expected high-water shed");
  let s = Service.stats svc in
  check Alcotest.int "shed counted" 1 s.Service.sheds_high_water;
  check Alcotest.int "nothing queued" 0 (Service.queue_depth svc)

let test_service_stale_fence_rejected () =
  let time, svc = service ~ttl:2.0 () in
  let f =
    match Service.acquire svc ~session:1 with
    | Service.Granted g -> g.Lease.g_fence
    | _ -> Alcotest.fail "grant"
  in
  time := 10.0;
  ignore (Service.pump svc);
  check Alcotest.int "reclaimed" 0 (Service.held svc);
  (match Service.use svc ~fence:f with
  | Error `Fenced -> ()
  | Ok () -> Alcotest.fail "stale use accepted");
  (match Service.renew svc ~fence:f with
  | Error `Fenced -> ()
  | Ok _ -> Alcotest.fail "stale renew accepted");
  (match Service.release svc ~fence:f with
  | Error `Fenced -> ()
  | Ok _ -> Alcotest.fail "stale release accepted");
  let s = Service.stats svc in
  check Alcotest.int "three fenced ops" 3 s.Service.fenced;
  (* The slot is reusable and the new fence does not revive the old. *)
  (match Service.acquire svc ~session:2 with
  | Service.Granted _ -> ()
  | _ -> Alcotest.fail "regrant after reclaim");
  (match Service.use svc ~fence:f with
  | Error `Fenced -> ()
  | Ok () -> Alcotest.fail "old fence revived by regrant")

(* ------------------------------------------------------------------ *)
(* Churn simulation: deterministic, safe, and it actually reclaims.   *)

let churn_config () =
  Churn.make_config ~clients:24 ~sessions_target:400 ~capacity:12 ~ttl:6.0
    ~renew_every:2.0 ~queue_limit:16 ~request_timeout:3.0 ~crash_rate:0.4
    ~stale_wakeup:0.5 ~mean_hold:4.0 ~mean_think:2.0 ~restart_delay:5.0 ()

let test_churn_safety_and_reclaim () =
  let s = Churn.run (churn_config ()) ~seed:42L in
  check Alcotest.(option (pair string string)) "no audit violation" None s.Churn.violation;
  check Alcotest.bool "no livelock" false s.Churn.livelocked;
  check Alcotest.bool "sessions ran" true (s.Churn.sessions >= 400);
  check Alcotest.bool "crashes happened" true (s.Churn.crashes > 0);
  check Alcotest.bool "names reclaimed" true (s.Churn.service.Service.reclaims > 0);
  check Alcotest.int "every stale op fenced" s.Churn.stale_ops s.Churn.stale_rejected;
  check Alcotest.bool "stale wakeups exercised" true (s.Churn.stale_ops > 0);
  check Alcotest.int "no live-path fencing" 0 s.Churn.unexpected_fenced;
  check Alcotest.bool "capacity respected" true (s.Churn.peak_held <= 12)

let test_churn_deterministic () =
  let a = Churn.run (churn_config ()) ~seed:11L in
  let b = Churn.run (churn_config ()) ~seed:11L in
  check Alcotest.int "sessions" a.Churn.sessions b.Churn.sessions;
  check Alcotest.int "crashes" a.Churn.crashes b.Churn.crashes;
  check Alcotest.int "restarts" a.Churn.restarts b.Churn.restarts;
  check Alcotest.int "stale ops" a.Churn.stale_ops b.Churn.stale_ops;
  check Alcotest.int "retries" a.Churn.retries b.Churn.retries;
  check Alcotest.int "events" a.Churn.events b.Churn.events;
  check (Alcotest.float 1e-9) "sim time" a.Churn.sim_time b.Churn.sim_time;
  check Alcotest.int "grants" a.Churn.service.Service.grants
    b.Churn.service.Service.grants;
  check Alcotest.int "reclaims" a.Churn.service.Service.reclaims
    b.Churn.service.Service.reclaims;
  check Alcotest.int "sheds"
    (a.Churn.service.Service.sheds_high_water + a.Churn.service.Service.sheds_queue_full)
    (b.Churn.service.Service.sheds_high_water + b.Churn.service.Service.sheds_queue_full)

(* ------------------------------------------------------------------ *)
(* QCheck properties (the ISSUE's S3 trio).                           *)

let qcheck_expiry_monotone =
  QCheck.Test.make ~count:60
    ~name:"lease expiry is monotone under renewals on an advancing clock"
    (QCheck.pair QCheck.small_int
       (QCheck.list_of_size (QCheck.Gen.int_range 1 30) (QCheck.int_range 0 400)))
    (fun (seed, steps) ->
      QCheck.assume (steps <> []);
      let rng = Xoshiro.create (Int64.of_int (succ seed)) in
      let ttl = 5.0 in
      let lease = Lease.create (Lease.make_config ~capacity:4 ~ttl ()) in
      match Lease.acquire lease ~session:1 ~now:0.0 ~rng with
      | Error `At_capacity -> false
      | Ok g ->
        let fence = g.Lease.g_fence in
        let now = ref 0.0 and last = ref ttl in
        List.for_all
          (fun centis ->
            now := !now +. (float_of_int centis /. 100.);
            (* Never reclaimed, so the lenient renew must accept even
               past expiry, and each new expiry is >= the previous. *)
            match Lease.renew lease ~fence ~now:!now with
            | Error `Fenced -> false
            | Ok expires ->
              let ok = expires >= !last && expires = !now +. ttl in
              last := expires;
              ok)
          steps)

let qcheck_reclaim_never_revokes_renewed =
  QCheck.Test.make ~count:60
    ~name:"reclamation never revokes a lease that keeps renewing"
    (QCheck.pair QCheck.small_int
       (QCheck.list_of_size (QCheck.Gen.int_range 1 25) (QCheck.int_range 1 99)))
    (fun (seed, jitters) ->
      QCheck.assume (jitters <> []);
      let rng = Xoshiro.create (Int64.of_int (seed + 101)) in
      let ttl = 2.0 in
      let lease = Lease.create (Lease.make_config ~capacity:6 ~ttl ()) in
      (* A victim that never renews keeps the reclaimer genuinely busy. *)
      (match Lease.acquire lease ~session:99 ~now:0.0 ~rng with
      | Ok _ -> ()
      | Error `At_capacity -> assert false);
      match Lease.acquire lease ~session:1 ~now:0.0 ~rng with
      | Error `At_capacity -> false
      | Ok g ->
        let fence = g.Lease.g_fence in
        let now = ref 0.0 in
        List.for_all
          (fun pct ->
            (* Advance by strictly less than ttl, renew first, then let
               the reclaimer sweep at the same instant. *)
            now := !now +. (ttl *. float_of_int pct /. 100.);
            match Lease.renew lease ~fence ~now:!now with
            | Error `Fenced -> false
            | Ok _ ->
              let reclaimed = Lease.reclaim_expired lease ~now:!now in
              List.for_all
                (fun r -> r.Lease.r_fence.Lease.f_session <> 1)
                reclaimed
              && (match Lease.validate lease ~fence with
                 | Ok () -> true
                 | Error `Fenced -> false))
          jitters
        && Lease.holder lease ~name:fence.Lease.f_name = Some 1)

let qcheck_stale_fence_never_writes =
  QCheck.Test.make ~count:60
    ~name:"a fenced stale client can never write after reclamation"
    QCheck.(pair small_int (int_range 0 500))
    (fun (seed, extra_centis) ->
      let rng = Xoshiro.create (Int64.of_int (seed + 211)) in
      let ttl = 1.0 in
      let lease = Lease.create (Lease.make_config ~capacity:4 ~ttl ()) in
      match Lease.acquire lease ~session:1 ~now:0.0 ~rng with
      | Error `At_capacity -> false
      | Ok g ->
        let fence = g.Lease.g_fence in
        let now = ttl +. (float_of_int extra_centis /. 100.) in
        let reclaimed = Lease.reclaim_expired lease ~now in
        List.exists (fun r -> r.Lease.r_fence = fence) reclaimed
        && Lease.held lease = 0
        (* Every path a stale client could write through is fenced. *)
        && (match Lease.renew lease ~fence ~now with
           | Error `Fenced -> true
           | Ok _ -> false)
        && (match Lease.validate lease ~fence with
           | Error `Fenced -> true
           | Ok () -> false)
        && (match Lease.release lease ~fence ~now with
           | Error `Fenced -> true
           | Ok _ -> false)
        (* ... and stays fenced even after the slot is regranted. *)
        && (match Lease.acquire lease ~session:2 ~now ~rng with
           | Error `At_capacity -> false
           | Ok _ -> (
             match Lease.validate lease ~fence with
             | Error `Fenced -> true
             | Ok () -> false)))

let tests =
  [
    ( "service",
      [
        Alcotest.test_case "heap deterministic order" `Quick test_heap_deterministic_order;
        Alcotest.test_case "lease capacity + release" `Quick test_lease_capacity_and_release;
        Alcotest.test_case "reclaim skips renewed" `Quick test_lease_reclaim_skips_renewed;
        Alcotest.test_case "admission shed + expire" `Quick test_admission_shed_and_expire;
        Alcotest.test_case "minter uniqueness" `Quick test_minter_unique_across_blocks;
        Alcotest.test_case "audit: double grant" `Quick test_audit_catches_double_grant;
        Alcotest.test_case "audit: stale accept" `Quick test_audit_catches_stale_accept;
        Alcotest.test_case "audit: early reclaim" `Quick test_audit_catches_early_reclaim;
        Alcotest.test_case "audit: time regression" `Quick test_audit_catches_time_regression;
        Alcotest.test_case "service: queue + reclaim" `Quick test_service_queue_then_reclaim_grant;
        Alcotest.test_case "service: queue drains" `Quick test_service_queue_drain_done;
        Alcotest.test_case "service: high-water shed" `Quick test_service_high_water_shed;
        Alcotest.test_case "service: stale fence" `Quick test_service_stale_fence_rejected;
        Alcotest.test_case "churn: safety + reclaim" `Quick test_churn_safety_and_reclaim;
        Alcotest.test_case "churn: deterministic" `Quick test_churn_deterministic;
        QCheck_alcotest.to_alcotest qcheck_expiry_monotone;
        QCheck_alcotest.to_alcotest qcheck_reclaim_never_revokes_renewed;
        QCheck_alcotest.to_alcotest qcheck_stale_fence_never_writes;
      ] );
  ]
